package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (run them with `go test -bench=. -benchmem`),
// plus ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the hot substrate paths.
//
// The figure benches report the regenerated quantities as custom metrics
// (b.ReportMetric), so a single -bench run prints the reproduced series
// alongside the usual ns/op.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/pagetable"
	"repro/internal/pomtlb"
	"repro/internal/tlb"
	"repro/internal/virt"
	"repro/internal/workloads"
)

// metricName sanitizes a label for b.ReportMetric (no whitespace allowed).
func metricName(label string) string {
	return strings.ReplaceAll(label, " ", "_")
}

// benchOpts is a reduced campaign so a full -bench run stays tractable;
// use cmd/experiments for publication-scale runs.
func benchOpts(names ...string) experiments.Options {
	o := experiments.DefaultOptions()
	o.Cores = 2
	o.WarmupRefs = 120_000
	o.MaxRefs = 60_000
	o.Workloads = names
	return o
}

// --- Figure 1: the 2D nested walk ---------------------------------------

func BenchmarkFig1NestedWalk(b *testing.B) {
	hyp := virt.NewHypervisor(virt.DefaultConfig())
	vm, err := hyp.NewVM(1)
	if err != nil {
		b.Fatal(err)
	}
	va := addr.VA(0x7f00_0000_1000)
	if _, err := vm.Touch(1, va, addr.Page4K); err != nil {
		b.Fatal(err)
	}
	w := pagetable.NewWalker(pagetable.DefaultWalkerConfig(),
		func(a addr.HPA, write bool) uint64 { return 100 })
	var refs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.InvalidateAll() // keep every walk cold: the Figure 1 case
		res := w.Translate2D(vm.GuestTable(1), vm.EPT(), 1, 1, va)
		refs = res.Refs
	}
	b.ReportMetric(float64(refs), "refs/walk")
}

// --- Figure 2: baseline translation cycles per L2 TLB miss ---------------

func BenchmarkFig2TranslationCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts("mcf", "gups", "streamcluster"))
		rows, err := experiments.Figure2(r)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.SimCyc, row.Name+"_cyc")
		}
	}
}

// --- Figure 3: virtualized over native translation cost ------------------

func BenchmarkFig3VirtNativeRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts("mcf", "gups"))
		rows, err := experiments.Figure3(r)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.SimRatio, row.Name+"_ratio")
		}
	}
}

// --- Figure 4: SRAM latency scaling --------------------------------------

func BenchmarkFig4SRAMScaling(b *testing.B) {
	m := cacti.Default()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, pt := range m.Sweep() {
			last = pt.Normalized
		}
	}
	b.ReportMetric(last, "norm_lat_16MB")
}

// --- Figure 8: the headline speedups --------------------------------------

func BenchmarkFig8Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts("mcf", "gups", "streamcluster"))
		_, sum, err := experiments.Figure8(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.POMGeomeanPct, "pom_%")
		b.ReportMetric(sum.SharedGeomeanPct, "shared_%")
		b.ReportMetric(sum.TSBGeomeanPct, "tsb_%")
	}
}

// --- Figure 9: hit ratios per level ---------------------------------------

func BenchmarkFig9HitRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts("mcf", "lbm"))
		rows, err := experiments.Figure9(r)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(100*row.L2D, row.Name+"_L2D%")
			b.ReportMetric(100*row.WalkEl, row.Name+"_elim%")
		}
	}
}

// --- Figure 10: predictor accuracy ----------------------------------------

func BenchmarkFig10Predictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts("mcf", "lbm"))
		rows, err := experiments.Figure10(r)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(100*row.SizeAcc, row.Name+"_size%")
			b.ReportMetric(100*row.BypassAcc, row.Name+"_bypass%")
		}
	}
}

// --- Figure 11: row-buffer hits --------------------------------------------

func BenchmarkFig11RowBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts("streamcluster", "gups"))
		rows, err := experiments.Figure11(r)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(100*row.RBH, row.Name+"_rbh%")
		}
	}
}

// --- Figure 12: caching ablation -------------------------------------------

func BenchmarkFig12Caching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOpts("mcf", "lbm"))
		_, withAvg, noAvg, err := experiments.Figure12(r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(withAvg, "with_%")
		b.ReportMetric(noAvg, "without_%")
	}
}

// --- §4.6 and design-choice ablations ---------------------------------------

func BenchmarkAblationCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationCapacity(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.MeanImprovementPct, metricName(p.Label)+"_%")
		}
	}
}

func BenchmarkAblationCores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationCores(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.MeanImprovementPct, metricName(p.Label)+"_%")
		}
	}
}

func BenchmarkAblationAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationAssociativity(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(100*p.WalkElimination, metricName(p.Label)+"_elim%")
		}
	}
}

func BenchmarkAblationBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationBypass(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.MeanPenalty, metricName(p.Label)+"_Pavg")
		}
	}
}

// --- Micro-benchmarks of the hot substrate paths ----------------------------

func BenchmarkPOMTLBSearch(b *testing.B) {
	t := pomtlb.New(pomtlb.DefaultConfig())
	for vpn := uint64(0); vpn < 10_000; vpn++ {
		t.Small.Insert(pomtlb.Entry{Valid: true, VM: 1, PID: 1, VPN: vpn, PFN: vpn, Size: addr.Page4K})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Small.Search(1, 1, addr.VA(uint64(i%10_000)<<12))
	}
}

func BenchmarkPOMTLBEntryCodec(b *testing.B) {
	e := pomtlb.Entry{Valid: true, VM: 3, PID: 7, VPN: 0x12345, PFN: 0x6789A,
		Size: addr.Page2M, LRU: 2, Attr: 0x5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := pomtlb.DecodeEntry(e.Encode()); !got.Valid {
			b.Fatal("roundtrip lost entry")
		}
	}
}

func BenchmarkSRAMTLBLookup(b *testing.B) {
	t := tlb.MustNew(tlb.L2Unified())
	for vpn := uint64(0); vpn < 1536; vpn++ {
		t.Insert(tlb.Entry{VM: 1, PID: 1, VPN: vpn, PFN: vpn, Size: addr.Page4K, Valid: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(1, 1, addr.VA(uint64(i%1536)<<12))
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.MustNew(cache.L2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i % 8192)
		if !c.Access(line, false, cache.Data) {
			c.Fill(line, false, cache.Data)
		}
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	ch := dram.MustNew(dram.DieStacked())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Access(uint64(i)*10, addr.HPA(uint64(i%100_000)*64), false)
	}
}

func BenchmarkNestedWalkWarm(b *testing.B) {
	hyp := virt.NewHypervisor(virt.DefaultConfig())
	vm, _ := hyp.NewVM(1)
	va := addr.VA(0x7f00_0000_1000)
	vm.Touch(1, va, addr.Page4K)
	w := pagetable.NewWalker(pagetable.DefaultWalkerConfig(),
		func(a addr.HPA, write bool) uint64 { return 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Translate2D(vm.GuestTable(1), vm.EPT(), 1, 1, va)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p, _ := workloads.ByName("mcf")
	g := p.Generator(8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// End-to-end: simulated references per second through the full
	// POM-TLB system.
	cfg := core.DefaultConfig()
	cfg.Cores = 2
	cfg.WarmupRefs = 0
	cfg.MaxRefs = b.N + 1
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := workloads.ByName("gups")
	g := p.Generator(cfg.Cores, 1)
	b.ResetTimer()
	if _, err := sys.Run(context.Background(), g, "bench"); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAblationTLBAwareCaching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationTLBAwareCaching(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.MeanPenalty, metricName(p.Label)+"_Pavg")
		}
	}
}

func BenchmarkAblationNeighborPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationNeighborPrefetch(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.MeanImprovementPct, metricName(p.Label)+"_%")
		}
	}
}

func BenchmarkUnifiedSkewedSearch(b *testing.B) {
	u := pomtlb.NewUnified(16<<20, 4)
	for vpn := uint64(0); vpn < 10_000; vpn++ {
		u.Insert(pomtlb.Entry{Valid: true, VM: 1, PID: 1, VPN: vpn, PFN: vpn, Size: addr.Page4K})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Search(1, 1, addr.VA(uint64(i%10_000)<<12))
	}
}

func BenchmarkTradeoffL4VsPOM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TradeoffStudy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.POMSpeedupPct-row.L4SpeedupPct, row.Name+"_pom_minus_l4_%")
		}
	}
}

func BenchmarkFRFCFSScheduler(b *testing.B) {
	s := dram.NewScheduler(dram.DieStacked())
	reqs := make([]dram.Request, 10_000)
	x := uint64(0x9E3779B9)
	for i := range reqs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		reqs[i] = dram.Request{Arrival: uint64(i) * 30, Addr: (x % (1 << 28)) &^ 63}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := s.Run(reqs)
		if i == 0 {
			b.ReportMetric(100*dram.RowBufferHitRate(cs), "rbh_%")
		}
	}
}

func BenchmarkNativeStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NativeStudy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			if row.Name == "mcf" || row.Name == "gups" {
				b.ReportMetric(row.ImprovementPct, row.Name+"_native_%")
			}
		}
	}
}
