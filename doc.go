// Package repro is a from-scratch Go reproduction of "Rethinking TLB
// Designs in Virtualized Environments: A Very Large Part-of-Memory TLB"
// (Ryoo, Gulur, Song, John — ISCA 2017).
//
// The repository implements the paper's contribution — a memory-mapped,
// DRAM-resident L3 TLB whose entries are cached in the ordinary data
// caches — together with every substrate its evaluation needs: radix-4
// guest/host page tables with a 2D nested walker, page-structure caches
// and a nested TLB, SRAM L1/L2 TLBs, a three-level cache hierarchy, a
// bank/row-buffer DRAM timing model, synthetic SPEC/PARSEC/graph workload
// generators calibrated to the paper's Table 2, the Shared_L2 and SPARC
// TSB comparison schemes, and the linear performance model of Equations
// (2)–(5).
//
// Start with the README, run examples/quickstart, and regenerate the
// paper's tables and figures with cmd/experiments. The benchmark harness
// in bench_test.go has one testing.B benchmark per table and figure.
package repro
