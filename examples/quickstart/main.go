// Quickstart: build the paper's 8-core virtualized system, run one
// TLB-intensive workload under the baseline and under the POM-TLB, and
// print the headline comparison — the 60-second tour of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/workloads"
)

func main() {
	const benchmark = "mcf"
	p, ok := workloads.ByName(benchmark)
	if !ok {
		log.Fatalf("unknown workload %q", benchmark)
	}

	run := func(mode core.Mode) core.Result {
		cfg := core.DefaultConfig() // Table 1 parameters
		cfg.Mode = mode
		cfg.Cores = 4
		cfg.WarmupRefs = 300_000
		cfg.MaxRefs = 200_000
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(context.Background(), p.Generator(cfg.Cores, 1), p.Name)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(core.Baseline)
	pom := run(core.POMTLB)

	fmt.Printf("workload: %s — %d MB footprint, %.0f%% 2MB pages\n\n",
		p.Name, p.FootprintBytes>>20, p.LargePagePct)
	fmt.Printf("baseline (2D page walks):  %6.1f cycles per L2 TLB miss\n", base.AvgPenalty())
	fmt.Printf("POM-TLB:                   %6.1f cycles per L2 TLB miss\n", pom.AvgPenalty())
	fmt.Printf("page walks eliminated:     %6.1f%%\n", 100*pom.WalkEliminationRate())
	fmt.Printf("POM entries found in L2D$: %6.1f%%, in L3D$: %.1f%%\n",
		100*pom.L2DProbe.Ratio(), 100*pom.L3DProbe.Ratio())

	// The paper's performance model combines the measured baseline
	// (Table 2) with the simulated POM-TLB penalty.
	pen := pom.AvgPenalty()
	if pen > p.CyclesPerMissVirt {
		pen = p.CyclesPerMissVirt
	}
	imp, err := perfmodel.ImprovementPct(perfmodel.FromProfile(p, pen))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodelled speedup over the measured Skylake baseline: +%.2f%%\n", imp)
}
