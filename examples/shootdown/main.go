// Shootdown demonstrates the Section 2.2 consistency protocol: when the
// guest OS remaps a page, every copy of the stale translation — per-core
// L1/L2 TLBs, walker caches, the POM-TLB entry, and the cached copies of
// its 64 B set line in the data caches — must be invalidated before the
// new mapping is visible.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Cores = 2
	cfg.WarmupRefs = 0
	cfg.MaxRefs = 50_000
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Warm every structure with a small hot footprint.
	params := trace.Params{
		Seed: 1, FootprintBytes: 16 << 20, LargeFrac: 0,
		Threads: cfg.Cores, MeanGap: 5, WriteFrac: 0.2,
	}
	if _, err := sys.Run(context.Background(), trace.NewUniform(params), "warm"); err != nil {
		log.Fatal(err)
	}

	vm, _ := sys.Hypervisor().VM(1)
	// Find a mapped page.
	var va addr.VA
	for vpn := uint64(0); ; vpn++ {
		va = addr.VA(0x10_0000_0000 + vpn<<addr.Shift4K)
		if _, _, ok := vm.Translate(1, va); ok {
			break
		}
	}
	before, _, _ := vm.Translate(1, va)
	fmt.Printf("page %v currently maps to %v\n", va, before)
	fmt.Printf("POM-TLB holds %d translations\n\n", sys.POM().Small.Count())

	fmt.Println("OS remaps the page → TLB shootdown:")
	if !sys.Shootdown(1, 1, va, addr.Page4K) {
		log.Fatal("shootdown found nothing")
	}
	fmt.Println("  ✓ guest mapping removed")
	fmt.Println("  ✓ all cores' L1/L2 TLB entries invalidated")
	fmt.Println("  ✓ walker PSCs and nested TLBs flushed")
	fmt.Println("  ✓ POM-TLB entry invalidated")
	fmt.Println("  ✓ cached copies of the POM-TLB set line dropped from L2D$/L3D$")

	if _, _, ok := vm.Translate(1, va); ok {
		log.Fatal("stale mapping survived!")
	}

	// Touch the page again: the OS installs a fresh frame; the next
	// translation walks and repopulates every level coherently.
	if _, err := vm.Touch(1, va, addr.Page4K); err != nil {
		log.Fatal(err)
	}
	after, _, _ := vm.Translate(1, va)
	fmt.Printf("\nafter remap, %v maps to %v (fresh frame: %v)\n",
		va, after, before != after)
}
