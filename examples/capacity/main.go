// Capacity reproduces the Section 4.6 ablation: sweeping the POM-TLB from
// 8 MB to 32 MB barely moves the results, because even 8 MB holds orders
// of magnitude more translations than any SRAM TLB reaches — while
// shrinking it to a cache-like 256 KB finally shows capacity misses.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	p, _ := workloads.ByName("mcf")

	fmt.Printf("workload: %s (%d MB footprint)\n\n", p.Name, p.FootprintBytes>>20)
	fmt.Println("POM-TLB size | entries  | walk elim | P_avg | POM DRAM hit")
	fmt.Println("-------------+----------+-----------+-------+-------------")
	for _, kb := range []uint64{256, 8 << 10, 16 << 10, 32 << 10} {
		cfg := core.DefaultConfig()
		cfg.Mode = core.POMTLB
		cfg.Cores = 4
		cfg.POM.SizeBytes = kb << 10
		cfg.WarmupRefs = 300_000
		cfg.MaxRefs = 200_000
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(context.Background(), p.Generator(cfg.Cores, 1), p.Name)
		if err != nil {
			log.Fatal(err)
		}
		entries := sys.POM().Small.Entries() + sys.POM().Large.Entries()
		fmt.Printf("%8d KB | %8d | %8.1f%% | %5.1f | %10.1f%%\n",
			kb, entries, 100*res.WalkEliminationRate(), res.AvgPenalty(),
			100*res.POMDRAM.Ratio())
	}

	fmt.Println()
	fmt.Println("8→32 MB: nearly identical (the paper reports <1% difference);")
	fmt.Println("only an unrealistically small 256 KB TLB shows capacity pressure.")
}
