// Multivm reproduces the Section 5.2 study: several virtual machines
// share one POM-TLB, which is large enough to retain every VM's hot
// translations simultaneously — where the SRAM TLBs thrash on every VM
// switch, the DRAM TLB keeps all tenants' working sets resident.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	p, _ := workloads.ByName("gups") // TLB-hostile tenant workload

	fmt.Println("VMs sharing the machine | walk elimination | P_avg (cyc) | POM entries")
	fmt.Println("------------------------+------------------+-------------+------------")
	for _, vms := range []int{1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.Mode = core.POMTLB
		cfg.Cores = 4
		cfg.VMs = vms
		cfg.WarmupRefs = 300_000
		cfg.MaxRefs = 200_000
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(context.Background(), p.Generator(cfg.Cores, 1), p.Name)
		if err != nil {
			log.Fatal(err)
		}
		entries := sys.POM().Small.Count() + sys.POM().Large.Count()
		fmt.Printf("%23d | %15.1f%% | %11.1f | %d\n",
			vms, 100*res.WalkEliminationRate(), res.AvgPenalty(), entries)
	}

	fmt.Println()
	fmt.Println("Even with four VMs running the same hot footprint, the 16 MB POM-TLB")
	fmt.Println("retains every tenant's translations (VM-ID-hashed set indexing keeps")
	fmt.Println("them from colliding), so page walks stay eliminated across VM switches.")
}
