// Nestedwalk reproduces Figure 1: it maps one guest page under a
// hypervisor and prints every memory reference of the cold two-dimensional
// page walk — up to 24 of them — then shows how the page-structure caches
// and nested TLB collapse the warm walk to a single reference.
package main

import (
	"fmt"
	"log"

	"repro/internal/addr"
	"repro/internal/pagetable"
	"repro/internal/virt"
)

func main() {
	hyp := virt.NewHypervisor(virt.DefaultConfig())
	vm, err := hyp.NewVM(1)
	if err != nil {
		log.Fatal(err)
	}

	va := addr.VA(0x7f12_3456_7000)
	if _, err := vm.Touch(1, va, addr.Page4K); err != nil {
		log.Fatal(err)
	}

	// A walker whose memory callback prints each PTE reference in the
	// Figure 1 order: four host levels per guest level, then the guest
	// PTE read, and a final host walk for the data address.
	ref := 0
	walker := pagetable.NewWalker(pagetable.DefaultWalkerConfig(),
		func(a addr.HPA, write bool) uint64 {
			ref++
			fmt.Printf("  ref %2d: read PTE at %v\n", ref, a)
			return 100 // flat 100-cycle memory for illustration
		})

	fmt.Printf("cold 2D walk of %v (guest VM 1):\n", va)
	res := walker.Translate2D(vm.GuestTable(1), vm.EPT(), 1, 1, va)
	if !res.OK {
		log.Fatal("walk faulted")
	}
	fmt.Printf("→ %d references, %d cycles, hPFN %#x (%s page)\n\n",
		res.Refs, res.Latency, res.HPFN, res.Size)

	fmt.Println("warm walk of the same address (PSC + nested TLB hits):")
	ref = 0
	res = walker.Translate2D(vm.GuestTable(1), vm.EPT(), 1, 1, va)
	fmt.Printf("→ %d reference(s), %d cycles\n\n", res.Refs, res.Latency)

	fmt.Println("for comparison, a cold native (non-virtualized) walk:")
	if _, _, err := hyp.TouchNative(1, va, addr.Page4K); err != nil {
		log.Fatal(err)
	}
	ref = 0
	nat := pagetable.NewWalker(pagetable.DefaultWalkerConfig(),
		func(a addr.HPA, write bool) uint64 {
			ref++
			fmt.Printf("  ref %2d: read PTE at %v\n", ref, a)
			return 100
		})
	nres := nat.TranslateNative(hyp.NativeProcess(1), 0, 1, va)
	fmt.Printf("→ %d references, %d cycles\n", nres.Refs, nres.Latency)

	fmt.Println("\nvirtualization turns a 4-reference walk into a 24-reference one,")
	fmt.Println("which is why the paper adds a DRAM L3 TLB that resolves misses in")
	fmt.Println("ONE access.")
}
