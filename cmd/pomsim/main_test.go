package main

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

func TestParseMode(t *testing.T) {
	for _, name := range []string{"baseline", "pom-tlb", "pom-tlb-nocache", "shared-l2", "tsb", "l4-cache"} {
		if _, err := core.ParseMode(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := core.ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mcf") || !strings.Contains(sb.String(), "gups") {
		t.Errorf("list output:\n%s", sb.String())
	}
}

func TestRunSimulation(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-workload", "gups", "-cores", "2",
		"-refs", "20000", "-warmup", "40000"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"gups", "pom-tlb", "P_avg", "page walks eliminated", "modelled improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBaselineNative(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-workload", "streamcluster", "-mode", "baseline", "-native",
		"-cores", "2", "-refs", "10000", "-warmup", "10000"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "modelled improvement") {
		t.Error("baseline run should not model an improvement")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-workload", "nope", "-refs", "10", "-warmup", "0"}, &sb); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(context.Background(), []string{"-mode", "nope"}, &sb); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(context.Background(), []string{"-config", "/does/not/exist.json"}, &sb); err == nil {
		t.Error("missing config accepted")
	}
}

func TestRunFromConfigFile(t *testing.T) {
	f := config.Default()
	f.Workload = "gups"
	f.Config.Mode = core.Baseline
	f.Config.Cores = 2
	f.Config.MaxRefs = 10_000
	f.Config.WarmupRefs = 10_000
	path := filepath.Join(t.TempDir(), "c.json")
	if err := config.Save(path, f); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-config", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "baseline") {
		t.Errorf("config file not honoured:\n%s", sb.String())
	}
}

func TestCapPen(t *testing.T) {
	if capPen(200, 100) != 100 || capPen(50, 100) != 50 {
		t.Error("capPen wrong")
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-workload", "gups", "-cores", "2",
		"-refs", "5000", "-warmup", "5000", "-json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := jsonUnmarshal(sb.String(), &decoded); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if _, ok := decoded["L2TLB"]; !ok {
		t.Error("JSON missing L2TLB field")
	}
}

func jsonUnmarshal(s string, v any) error {
	return json.Unmarshal([]byte(s), v)
}

func TestRunCompare(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-workload", "gups", "-cores", "2",
		"-refs", "8000", "-warmup", "20000", "-compare"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"baseline", "pom-tlb", "shared-l2", "tsb", "l4-cache", "walk elim"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
}

func TestRunGeometrySweep(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-workload", "gups", "-cores", "2",
		"-refs", "4000", "-warmup", "4000",
		"-sweep", "schemes=pom-tlb,tsb:pom-mb=4,16"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "4-cell geometry sweep") {
		t.Errorf("sweep header missing:\n%s", out)
	}
	for _, want := range []string{"pom-tlb", "tsb", "pom-mb=4", "pom-mb=16", "P_avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep table missing %q:\n%s", want, out)
		}
	}
}

func TestSweepFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"shards":        {"-sweep", "schemes=pom-tlb", "-shards", "0"},
		"retry budget":  {"-sweep", "schemes=pom-tlb", "-retry-budget", "-1"},
		"quarantine":    {"-sweep", "schemes=pom-tlb", "-quarantine-after", "0"},
		"bad spec":      {"-sweep", "bogus-axis=1"},
		"sweep+compare": {"-sweep", "schemes=pom-tlb", "-compare"},
	}
	for name, args := range cases {
		var sb strings.Builder
		if err := run(context.Background(), args, &sb); err == nil {
			t.Errorf("%s: args %v accepted, want error", name, args)
		}
	}
}
