// Command pomsim runs one POM-TLB simulation and prints its statistics.
//
// Usage:
//
//	pomsim -workload mcf -mode pom-tlb -cores 8 -refs 500000
//	pomsim -workload mcf -sweep 'schemes=pom-tlb,tsb:pom-mb=4,8,16'
//	pomsim -workload consol-zipf -compare               # consolidation scenario
//	pomsim -workload consol-churn -tenants 200 -churn 5000
//	pomsim -config experiment.json
//	pomsim -list
//
// SIGINT/SIGTERM cancel an in-flight simulation; pomsim exits non-zero
// with a message saying how far the run got.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/experiments/sweep"
	"repro/internal/perfmodel"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pomsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pomsim", flag.ContinueOnError)
	var (
		workload = fs.String("workload", "mcf", "Table 2 benchmark name")
		mode     = fs.String("mode", "pom-tlb", "translation scheme: "+strings.Join(core.ModeNames(), ", "))
		cores    = fs.Int("cores", 8, "simulated cores")
		vms      = fs.Int("vms", 1, "virtual machines")
		refs     = fs.Int("refs", 500_000, "measured memory references")
		warmup   = fs.Int("warmup", 500_000, "warmup references")
		pomMB    = fs.Uint64("pom-mb", 16, "POM-TLB capacity in MB")
		native   = fs.Bool("native", false, "bare-metal run (no virtualization)")
		seed     = fs.Uint64("seed", 1, "trace generator seed")
		cfgPath  = fs.String("config", "", "JSON config file (overrides other flags)")
		trcPath  = fs.String("trace", "", "replay a binary trace file instead of the synthetic generator")
		jsonOut  = fs.Bool("json", false, "emit the full result as JSON instead of the summary table")
		compare  = fs.Bool("compare", false, "run every scheme on the workload and print a comparison")
		selfchk  = fs.Bool("selfcheck", false, "run the differential-verification matrix (workloads × schemes under lockstep reference models) and exit non-zero on any divergence")
		list     = fs.Bool("list", false, "list workloads and exit")
		tenants  = fs.Int("tenants", 0, "consolidation: override the preset's guest count (0 = preset)")
		churn    = fs.Int("churn", 0, "consolidation: override the storm interval in records (-1 = off, 0 = preset)")
		phases   = fs.Int("phases", 0, "consolidation: override the working-set phase count (0 = preset)")

		sweepSpec = fs.String("sweep", "", "sweep the workload over this geometry grid, e.g. 'schemes=pom-tlb,tsb:pom-mb=4,8,16:pom-ways=2,4'")
		shards    = fs.Int("shards", runtime.GOMAXPROCS(0), "sweep worker shards (work-stealing pool size)")
		budget    = fs.Int("retry-budget", 16, "global retry budget shared by every sweep cell")
		quarAfter = fs.Int("quarantine-after", sweep.DefaultQuarantineAfter, "per-cell attempt cap before a sweep cell is quarantined")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate flag values up front so a bad invocation fails with a
	// usage error instead of a panic from deep inside the simulator.
	switch {
	case *cores <= 0:
		return fmt.Errorf("-cores must be positive (got %d)", *cores)
	case *cores > 256:
		return fmt.Errorf("-cores must be at most 256 (got %d; trace threads are 8-bit)", *cores)
	case *vms <= 0:
		return fmt.Errorf("-vms must be positive (got %d)", *vms)
	case *refs <= 0:
		return fmt.Errorf("-refs must be positive (got %d)", *refs)
	case *warmup < 0:
		return fmt.Errorf("-warmup must be non-negative (got %d)", *warmup)
	case *pomMB == 0:
		return fmt.Errorf("-pom-mb must be positive")
	case *shards <= 0:
		return fmt.Errorf("-shards must be positive (got %d)", *shards)
	case *budget <= 0:
		return fmt.Errorf("-retry-budget must be positive (got %d)", *budget)
	case *quarAfter < 1:
		return fmt.Errorf("-quarantine-after must be at least 1 (got %d)", *quarAfter)
	case *sweepSpec != "" && (*compare || *selfchk || *trcPath != "" || *cfgPath != ""):
		return fmt.Errorf("-sweep cannot be combined with -compare/-selfcheck/-trace/-config")
	case *tenants < 0 || (*tenants > 0 && *tenants < 3):
		return fmt.Errorf("-tenants must be 0 (inherit) or at least 3 (got %d)", *tenants)
	case *churn < -1:
		return fmt.Errorf("-churn must be a positive interval, -1 (off) or 0 (inherit) (got %d)", *churn)
	case *phases < 0:
		return fmt.Errorf("-phases must be non-negative (got %d)", *phases)
	}
	if *list {
		for _, name := range workloads.Names() {
			fmt.Fprintln(out, name)
		}
		for _, c := range workloads.Consolidations() {
			fmt.Fprintf(out, "%s — %s\n", c.Name, c.Description)
		}
		return nil
	}

	var file config.File
	if *cfgPath != "" {
		var err error
		file, err = config.Load(*cfgPath)
		if err != nil {
			return err
		}
	} else {
		m, err := core.ParseMode(*mode)
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig()
		cfg.Mode = m
		cfg.Cores = *cores
		cfg.VMs = *vms
		cfg.Virtualized = !*native
		cfg.MaxRefs = *refs
		cfg.WarmupRefs = *warmup
		cfg.POM.SizeBytes = *pomMB << 20
		cfg.Seed = *seed
		file = config.File{Workload: *workload, Config: cfg}
	}

	cfg := file.Config
	base := experiments.Options{
		Cores:        cfg.Cores,
		VMs:          cfg.VMs,
		WarmupRefs:   cfg.WarmupRefs,
		MaxRefs:      cfg.MaxRefs,
		Seed:         cfg.Seed,
		Virtualized:  cfg.Virtualized,
		POMSizeBytes: cfg.POM.SizeBytes,
		Tenants:      *tenants,
		ChurnEvery:   *churn,
		Phases:       *phases,
		Workloads:    []string{file.Workload},
	}

	if preset, isConsol := workloads.ConsolidationByName(file.Workload); isConsol {
		if *trcPath != "" {
			return fmt.Errorf("-trace replay cannot drive consolidation scenario %q", file.Workload)
		}
		switch {
		case *sweepSpec != "":
			return runGeometrySweep(ctx, out, file.Workload, base, *sweepSpec, *shards, *budget, *quarAfter)
		case *selfchk:
			return runSelfCheck(ctx, out, cfg)
		case *compare:
			return runConsolidationComparison(ctx, out, preset, base)
		}
		res, err := experiments.SimulateCell(ctx, base, preset.Name, cfg.Mode)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(res)
		}
		printConsolidationResult(out, preset, base, res)
		return nil
	}

	p, ok := workloads.ByName(file.Workload)
	if !ok {
		return fmt.Errorf("unknown workload %q (try -list)", file.Workload)
	}
	if *sweepSpec != "" {
		return runGeometrySweep(ctx, out, p.Name, base, *sweepSpec, *shards, *budget, *quarAfter)
	}
	if *selfchk {
		return runSelfCheck(ctx, out, file.Config)
	}
	if *compare {
		return runComparison(ctx, out, p, file.Config)
	}
	sys, err := core.NewSystem(file.Config)
	if err != nil {
		return err
	}
	var gen trace.Generator = p.Generator(file.Config.Cores, file.Config.Seed)
	label := p.Name
	if *trcPath != "" {
		f, err := os.Open(*trcPath)
		if err != nil {
			return err
		}
		defer f.Close()
		replay, err := trace.LoadReplay(f)
		switch {
		case errors.Is(err, trace.ErrBadMagic):
			return fmt.Errorf("%s is not a POMTRC01 trace (%v); generate one with cmd/tracegen", *trcPath, err)
		case errors.Is(err, trace.ErrTruncated):
			return fmt.Errorf("%s is cut off mid-stream (%v); the recording was interrupted — regenerate it with cmd/tracegen", *trcPath, err)
		case err != nil:
			return err
		}
		gen = replay
		label = *trcPath
	}
	res, err := sys.Run(ctx, gen, label)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	printResult(out, p, res)
	return nil
}

func printResult(out io.Writer, p workloads.Profile, res core.Result) {
	fmt.Fprintf(out, "workload  %s (%s, %d MB footprint, %.1f%% large pages)\n",
		p.Name, p.Pattern, p.FootprintBytes>>20, p.LargePagePct)
	fmt.Fprintf(out, "scheme    %s\n", res.Mode)
	fmt.Fprintf(out, "refs      %d  (IPC %.3f)\n\n", res.Records, res.IPC())

	t := stats.NewTable("metric", "value")
	t.AddRow("L1 TLB hit", stats.Pct(res.L1TLB.Ratio()))
	t.AddRow("L2 TLB hit", stats.Pct(res.L2TLB.Ratio()))
	t.AddRow("P_avg (cycles per L2 TLB miss)", fmt.Sprintf("%.1f", res.AvgPenalty()))
	t.AddRow("page walks eliminated", stats.Pct(res.WalkEliminationRate()))
	if res.L2DProbe.Total() > 0 {
		t.AddRow("POM set hits in L2D$", stats.Pct(res.L2DProbe.Ratio()))
		t.AddRow("POM set hits in L3D$", stats.Pct(res.L3DProbe.Ratio()))
	}
	if res.POMDRAM.Total() > 0 {
		t.AddRow("POM-TLB (DRAM) hit", stats.Pct(res.POMDRAM.Ratio()))
		t.AddRow("POM-TLB row-buffer hit", stats.Pct(res.POMDRAMStats.RowBufferHitRate()))
	}
	if res.SizePred.Total() > 0 {
		t.AddRow("size predictor accuracy", stats.Pct(res.SizePred.Ratio()))
	}
	if res.BypassPred.Total() > 0 {
		t.AddRow("bypass predictor accuracy", stats.Pct(res.BypassPred.Ratio()))
	}
	if res.SharedTLB.Total() > 0 {
		t.AddRow("shared TLB hit", stats.Pct(res.SharedTLB.Ratio()))
	}
	if res.TSBLookups.Total() > 0 {
		t.AddRow("TSB hit", stats.Pct(res.TSBLookups.Ratio()))
	}
	if res.Victima.Total() > 0 {
		t.AddRow("Victima store hit", stats.Pct(res.Victima.Ratio()))
	}
	if res.DCache.Access[cache.Data].Total() > 0 {
		t.AddRow("walk DRAM-cache hit", stats.Pct(res.DCache.Access[cache.Data].Ratio()))
		t.AddRow("walk DRAM-cache row-buffer hit", stats.Pct(res.DCacheDRAM.RowBufferHitRate()))
	}
	t.AddRow("mean data-access latency", fmt.Sprintf("%.1f cycles", res.DataLat.Value()))
	fmt.Fprint(out, t.String())

	if res.Mode != core.Baseline && core.CalibratedWalks(res.Mode) {
		if imp, err := perfmodel.ImprovementPct(perfmodel.FromProfile(p, capPen(res.AvgPenalty(), p.CyclesPerMissVirt))); err == nil {
			fmt.Fprintf(out, "\nmodelled improvement over measured baseline: %.2f%%\n", imp)
		}
	}

	fmt.Fprintf(out, "\nresolved at: ")
	for lvl := core.ResL1TLB; lvl < core.ResWalk+1; lvl++ {
		if n := res.Resolved[lvl]; n > 0 {
			fmt.Fprintf(out, "%s=%d ", lvl, n)
		}
	}
	fmt.Fprintln(out)
}

// runGeometrySweep runs one workload across the -sweep geometry grid on
// the sharded sweep engine and prints the per-cell metrics as a table.
// Quarantined cells are listed after the table and make the command exit
// non-zero without suppressing the completed rows.
func runGeometrySweep(ctx context.Context, out io.Writer, name string, base experiments.Options,
	specStr string, shards, budget, quarAfter int) error {
	spec, err := sweep.ParseSpec(specStr)
	if err != nil {
		return err
	}
	base.Workloads = []string{name}
	rep, runErr := sweep.Run(ctx, sweep.Config{
		Base:            base,
		Spec:            spec,
		Shards:          shards,
		RetryBudget:     budget,
		QuarantineAfter: quarAfter,
		Collect:         true,
	})
	if rep == nil {
		return runErr
	}

	t := stats.NewTable("scheme", "variant", "P_avg", "walk elim", "L2 TLB hit", "IPC")
	for _, r := range rep.Results {
		t.AddRow(r.Cell.Mode.String(), r.Cell.Variant.Label(),
			fmt.Sprintf("%.1f", r.Res.AvgPenalty()),
			stats.Pct(r.Res.WalkEliminationRate()),
			stats.Pct(r.Res.L2TLB.Ratio()),
			fmt.Sprintf("%.3f", r.Res.IPC()))
	}
	fmt.Fprintf(out, "workload %s — %d-cell geometry sweep\n\n%s", name, rep.Total, t.String())
	for _, q := range rep.Quarantined {
		fmt.Fprintf(out, "quarantined: %s after %d attempt(s): %s\n", q.Key, q.Attempts, q.Error)
	}
	if runErr != nil {
		return runErr
	}
	if n := len(rep.Quarantined); n > 0 {
		return fmt.Errorf("sweep degraded: %d of %d cell(s) quarantined", n, rep.Total)
	}
	return nil
}

// runComparison runs every registered translation scheme on one workload
// and prints the per-scheme penalties and modelled improvements side by
// side. The improvement column stays "—" for the baseline itself and for
// schemes whose benefit lives inside the simulated walk (CalibratedWalks
// false), where mixing in the measured baseline would misstate the gain.
func runComparison(ctx context.Context, out io.Writer, p workloads.Profile, base core.Config) error {
	t := stats.NewTable("scheme", "P_avg", "walk elim", "improvement %")
	for _, mode := range core.Modes() {
		cfg := base
		cfg.Mode = mode
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		res, err := sys.Run(ctx, p.Generator(cfg.Cores, cfg.Seed), p.Name)
		if err != nil {
			return err
		}
		imp := "—"
		if mode != core.Baseline && core.CalibratedWalks(mode) {
			if v, err := perfmodel.ImprovementPct(perfmodel.FromProfile(p,
				capPen(res.AvgPenalty(), p.CyclesPerMissVirt))); err == nil {
				imp = fmt.Sprintf("%.2f", v)
			}
		}
		t.AddRow(mode.String(), fmt.Sprintf("%.1f", res.AvgPenalty()),
			stats.Pct(res.WalkEliminationRate()), imp)
	}
	fmt.Fprintf(out, "workload %s — all schemes, identical trace\n\n%s", p.Name, t.String())
	return nil
}

// selfCheckWorkloads span the access-pattern space: uniformly random
// (gups), pointer-chasing with locality (mcf), and bursty graph
// traversal (graph500). Three patterns × three schemes exercise every
// production structure against its reference model.
var selfCheckWorkloads = []string{"gups", "mcf", "graph500"}

// runSelfCheck executes the differential-verification matrix: each
// workload runs under each translation scheme with lockstep reference
// models attached to every TLB, cache, DRAM channel and POM-TLB
// partition, plus periodic structural-invariant sweeps and result
// accounting checks. Any divergence fails the command.
func runSelfCheck(ctx context.Context, out io.Writer, base core.Config) error {
	t := stats.NewTable("workload", "scheme", "decisions", "divergences", "status")
	failed := false
	for _, name := range selfCheckWorkloads {
		p, ok := workloads.ByName(name)
		if !ok {
			return fmt.Errorf("selfcheck workload %q missing", name)
		}
		for _, mode := range []core.Mode{core.Baseline, core.POMTLB, core.TSB, core.Victima, core.DRAMCache} {
			cfg := base
			cfg.Mode = mode
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return err
			}
			sc := sys.EnableSelfCheck()
			res, err := sys.Run(ctx, p.Generator(cfg.Cores, cfg.Seed), p.Name)
			if err != nil {
				return err
			}
			status := "ok"
			if err := sc.Err(); err != nil {
				status = "FAIL"
				failed = true
				fmt.Fprintf(out, "%s/%s: %v\n%s\n", name, mode, err, sc.Report())
			} else if err := res.CheckAccounting(); err != nil {
				status = "FAIL"
				failed = true
				fmt.Fprintf(out, "%s/%s: %v\n", name, mode, err)
			}
			t.AddRow(name, mode.String(), fmt.Sprint(sc.Harness().Decisions()),
				fmt.Sprint(sc.Harness().Divergences()), status)
		}
	}
	fmt.Fprint(out, t.String())
	if failed {
		return fmt.Errorf("self-check found divergences")
	}
	fmt.Fprintln(out, "\nself-check clean: production models agree with reference models")
	return nil
}

// printConsolidationResult renders one consolidation run: the scenario
// shape, the headline metrics, and the per-tenant-tier breakdown.
func printConsolidationResult(out io.Writer, preset workloads.Consolidation, opts experiments.Options, res core.Result) {
	guests := preset.Guests
	if opts.Tenants > 0 {
		guests = opts.Tenants
	}
	fmt.Fprintf(out, "scenario  %s — %s\n", preset.Name, preset.Description)
	fmt.Fprintf(out, "guests    %d (Zipf tenant popularity, hot/warm/cold tiers)\n", guests)
	fmt.Fprintf(out, "scheme    %s\n", res.Mode)
	fmt.Fprintf(out, "refs      %d  (IPC %.3f)\n\n", res.Records, res.IPC())

	t := stats.NewTable("metric", "value")
	t.AddRow("L1 TLB hit", stats.Pct(res.L1TLB.Ratio()))
	t.AddRow("L2 TLB hit", stats.Pct(res.L2TLB.Ratio()))
	t.AddRow("P_avg (cycles per L2 TLB miss)", fmt.Sprintf("%.1f", res.AvgPenalty()))
	t.AddRow("page walks eliminated", stats.Pct(res.WalkEliminationRate()))
	if res.POMDRAM.Total() > 0 {
		t.AddRow("POM-TLB (DRAM) hit", stats.Pct(res.POMDRAM.Ratio()))
	}
	fmt.Fprint(out, t.String())

	if res.HasTiers() {
		fmt.Fprintln(out)
		tt := stats.NewTable("tier", "ref share", "SRAM TLB hit", "walk elim", "P_avg")
		for tier := 0; tier < core.NumTiers; tier++ {
			tt.AddRow(core.TierNames[tier],
				stats.Pct(res.TierShare(tier)),
				stats.Pct(res.TierSRAMHitRatio(tier)),
				stats.Pct(res.TierWalkElim(tier)),
				fmt.Sprintf("%.1f", res.TierAvgPenalty(tier)))
		}
		fmt.Fprint(out, tt.String())
	}
}

// runConsolidationComparison runs the scenario under every registered
// scheme on the identical tenant plan and prints headline plus hot/cold
// tier penalties side by side. Improvement columns are omitted: no
// measured baseline exists for a synthetic tenant mix.
func runConsolidationComparison(ctx context.Context, out io.Writer, preset workloads.Consolidation, base experiments.Options) error {
	t := stats.NewTable("scheme", "P_avg", "walk elim", "hot elim", "cold elim", "cold P_avg")
	for _, mode := range core.Modes() {
		res, err := experiments.SimulateCell(ctx, base, preset.Name, mode)
		if err != nil {
			return err
		}
		t.AddRow(mode.String(), fmt.Sprintf("%.1f", res.AvgPenalty()),
			stats.Pct(res.WalkEliminationRate()),
			stats.Pct(res.TierWalkElim(0)),
			stats.Pct(res.TierWalkElim(2)),
			fmt.Sprintf("%.1f", res.TierAvgPenalty(2)))
	}
	fmt.Fprintf(out, "scenario %s — all schemes, identical tenant plan\n\n%s", preset.Name, t.String())
	return nil
}

func capPen(pen, base float64) float64 {
	if pen > base {
		return base
	}
	return pen
}
