// Command pomsimd serves the simulator over HTTP: clients create
// sessions, stream POMTRC01 trace records at them, and read live
// statistics back — many tenants multiplexed onto one simulator fleet,
// the way the POM-TLB consolidates many VMs' translations into one
// structure.
//
// Usage:
//
//	pomsimd -addr :8080
//	pomsimd -addr :8080 -rate 500000 -burst 1000000 -idle-timeout 2m
//
// A quickstart conversation with curl:
//
//	id=$(curl -s -XPOST localhost:8080/sessions \
//	      -d '{"workload":"mcf","mode":"pom-tlb","cores":8}' | jq -r .id)
//	tracegen -workload mcf -n 2000000 -o mcf.trc
//	curl -s -XPOST --data-binary @mcf.trc localhost:8080/sessions/$id/records
//	curl -s -XPOST localhost:8080/sessions/$id/finish
//	curl -s localhost:8080/sessions/$id/metrics | jq .walk_elimination_rate
//
// SIGINT/SIGTERM drain gracefully: new sessions and ingest are refused
// while in-flight sessions run to completion (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pomsimd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("pomsimd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		maxSessions  = fs.Int("max-sessions", 64, "cap on concurrently live sessions")
		queueCap     = fs.Int("queue-cap", 65536, "per-session ingest backlog cap in records")
		rate         = fs.Float64("rate", 0, "per-tenant ingest rate in records/sec (0 = unlimited)")
		burst        = fs.Float64("burst", 0, "per-tenant burst allowance in records (0 = same as -rate)")
		enqueueWait  = fs.Duration("enqueue-wait", 100*time.Millisecond, "how long ingest blocks for queue space before shedding with 429")
		maxThrottle  = fs.Duration("max-throttle", 200*time.Millisecond, "longest rate-limit wait absorbed in-handler; longer waits are shed with 429")
		idleTimeout  = fs.Duration("idle-timeout", 5*time.Minute, "reap sessions with no ingest activity for this long (0 = never)")
		maxIngest    = fs.Int("max-ingest-records", 8<<20, "per-session upload cap in records (sessions keep their trace in memory; <0 = unlimited)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight sessions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *maxSessions <= 0:
		return fmt.Errorf("-max-sessions must be positive (got %d)", *maxSessions)
	case *queueCap <= 0:
		return fmt.Errorf("-queue-cap must be positive (got %d)", *queueCap)
	case *rate < 0:
		return fmt.Errorf("-rate must be non-negative (got %g)", *rate)
	case *burst < 0:
		return fmt.Errorf("-burst must be non-negative (got %g)", *burst)
	case *rate > 0 && *burst == 0:
		*burst = *rate
	}
	switch {
	case *enqueueWait <= 0:
		return fmt.Errorf("-enqueue-wait must be positive (got %s)", *enqueueWait)
	case *maxThrottle <= 0:
		return fmt.Errorf("-max-throttle must be positive (got %s)", *maxThrottle)
	case *idleTimeout < 0:
		return fmt.Errorf("-idle-timeout must be non-negative (got %s)", *idleTimeout)
	case *drainTimeout <= 0:
		return fmt.Errorf("-drain-timeout must be positive (got %s)", *drainTimeout)
	}

	logger := log.New(logw, "pomsimd: ", log.LstdFlags)
	srv := server.New(server.Config{
		MaxSessions:      *maxSessions,
		QueueCap:         *queueCap,
		EnqueueWait:      *enqueueWait,
		RatePerSec:       *rate,
		Burst:            *burst,
		MaxThrottle:      *maxThrottle,
		IdleTimeout:      *idleTimeout,
		MaxIngestRecords: *maxIngest,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("listening on %s (max-sessions %d, queue-cap %d, rate %g rec/s)",
		ln.Addr(), *maxSessions, *queueCap, *rate)

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (deadline %s)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return drainErr
	}
	logger.Printf("drained cleanly")
	return nil
}
