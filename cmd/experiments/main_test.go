package main

import (
	"context"
	"strings"
	"testing"
)

func quickArgs(extra ...string) []string {
	return append([]string{"-quick", "-workloads", "gups,streamcluster"}, extra...)
}

func TestTables(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-table", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "L2 Unified TLB") {
		t.Error("table 1 output wrong")
	}
	sb.Reset()
	if err := run(context.Background(), []string{"-table", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mcf") {
		t.Error("table 2 output wrong")
	}
}

func TestFigures(t *testing.T) {
	for _, fig := range []string{"4", "8", "9", "10", "11", "12"} {
		var sb strings.Builder
		if err := run(context.Background(), quickArgs("-fig", fig), &sb); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(sb.String()) == 0 {
			t.Errorf("fig %s produced no output", fig)
		}
	}
}

func TestNoArgsErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), nil, &sb); err == nil {
		t.Error("no action should error")
	}
}
