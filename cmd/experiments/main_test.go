package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func quickArgs(extra ...string) []string {
	return append([]string{"-quick", "-workloads", "gups,streamcluster"}, extra...)
}

func TestTables(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-table", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "L2 Unified TLB") {
		t.Error("table 1 output wrong")
	}
	sb.Reset()
	if err := run(context.Background(), []string{"-table", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mcf") {
		t.Error("table 2 output wrong")
	}
}

func TestFigures(t *testing.T) {
	for _, fig := range []string{"4", "8", "9", "10", "11", "12"} {
		var sb strings.Builder
		if err := run(context.Background(), quickArgs("-fig", fig), &sb); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(sb.String()) == 0 {
			t.Errorf("fig %s produced no output", fig)
		}
	}
}

func TestNoArgsErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), nil, &sb); err == nil {
		t.Error("no action should error")
	}
}

func TestSweepFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"shards":           {"-sweep", "schemes=pom-tlb", "-shards", "0"},
		"negative shards":  {"-sweep", "schemes=pom-tlb", "-shards", "-4"},
		"retry budget":     {"-sweep", "schemes=pom-tlb", "-retry-budget", "0"},
		"quarantine":       {"-sweep", "schemes=pom-tlb", "-quarantine-after", "0"},
		"fault rate":       {"-sweep", "schemes=pom-tlb", "-fault-rate", "1.5"},
		"panic rate":       {"-sweep", "schemes=pom-tlb", "-fault-panic-rate", "-0.1"},
		"sweep+fig":        {"-sweep", "schemes=pom-tlb", "-fig", "8"},
		"faults w/o sweep": {"-fault-rate", "0.5"},
		"csv w/o sweep":    {"-sweep-csv", "x.csv"},
		"bad spec":         {"-sweep", "pom-mb="},
		"resume w/o ckpt":  {"-sweep", "schemes=pom-tlb", "-resume"},
	}
	for name, args := range cases {
		var sb strings.Builder
		if err := run(context.Background(), args, &sb); err == nil {
			t.Errorf("%s: args %v accepted, want error", name, args)
		}
	}
}

func TestSweepRunAndResume(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal")
	csvPath := filepath.Join(dir, "sweep.csv")
	args := quickArgs("-sweep", "schemes=pom-tlb,shared-l2:pom-mb=1,2",
		"-checkpoint", journal, "-sweep-csv", csvPath, "-shards", "2")

	var sb strings.Builder
	if err := run(context.Background(), args, &sb); err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, sb.String())
	}
	csv1, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(csv1), "\n"); got != 9 { // header + 2 wl × 2 schemes × 2 sizes
		t.Fatalf("sweep CSV has %d lines, want 9:\n%s", got, csv1)
	}

	// Without -resume an existing journal must be refused.
	sb.Reset()
	if err := run(context.Background(), args, &sb); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("existing journal not refused: %v", err)
	}

	// With -resume every cell is served from the journal and the CSV is
	// reproduced byte for byte.
	sb.Reset()
	if err := run(context.Background(), append(args, "-resume"), &sb); err != nil {
		t.Fatalf("resume failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "8 from journal") {
		t.Errorf("resume did not serve cells from the journal:\n%s", sb.String())
	}
	csv2, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(csv1) != string(csv2) {
		t.Error("resumed CSV differs from the original run")
	}

	// A resume whose grid does not match the journal's fingerprint must
	// be refused with a clear error.
	sb.Reset()
	err = run(context.Background(), quickArgs("-sweep", "schemes=pom-tlb:pom-mb=1,2,4",
		"-checkpoint", journal, "-resume"), &sb)
	if err == nil || !strings.Contains(err.Error(), "different options or grid geometry") {
		t.Fatalf("grid mismatch not refused: %v", err)
	}
}

func TestSweepQuarantineManifest(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "quarantine.json")
	var sb strings.Builder
	err := run(context.Background(), quickArgs("-sweep", "schemes=pom-tlb:pom-mb=1,2",
		"-fault-panic-rate", "1", "-manifest", manifest), &sb)
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("fully panicking sweep must exit degraded, got: %v", err)
	}
	raw, rerr := os.ReadFile(manifest)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, want := range []string{`"quarantined"`, `"stack"`, "scheduled panic"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("manifest missing %q:\n%s", want, raw)
		}
	}
}
