// Command experiments regenerates the paper's tables and figures, and
// runs design-space sweeps over the workload × scheme × geometry grid.
//
// Usage:
//
//	experiments -all                      # every figure + ablations
//	experiments -fig 8                    # one figure
//	experiments -table 2                  # one table
//	experiments -report EXPERIMENTS.md    # write the full markdown report
//	experiments -quick -fig 8             # short traces, 2 cores
//	experiments -consolidation consol-zipf        # per-tenant-tier table
//	experiments -workloads consol-churn -tenants 200 -churn 5000 -fig 8
//	experiments -all -checkpoint c.json   # journal completed cells
//	experiments -all -checkpoint c.json -resume   # skip journaled cells
//
//	experiments -sweep 'schemes=pom-tlb,tsb:pom-mb=4,8,16:pom-ways=2,4' \
//	    -shards 8 -retry-budget 64 -quarantine-after 3 \
//	    -sweep-csv sweep.csv -manifest quarantine.json \
//	    -checkpoint sweep.journal [-resume]
//
// Sweeps shard the grid over a work-stealing worker pool; every cell runs
// inside the resilience envelope, failed cells are quarantined into the
// -manifest instead of aborting the sweep, and the -checkpoint journal is
// append-only and fsynced per cell, so even a SIGKILL mid-shard resumes
// with exactly the missing cells.
//
// SIGINT/SIGTERM cancel the in-flight simulations; the command still
// emits every completed row (and the checkpoint keeps every completed
// cell) before exiting non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/sweep"
	"repro/internal/resilience/faultinject"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// validFigs are the figure numbers this command can regenerate.
var validFigs = map[int]bool{2: true, 3: true, 4: true, 8: true, 9: true, 10: true, 11: true, 12: true}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all       = fs.Bool("all", false, "run every figure and ablation")
		fig       = fs.Int("fig", 0, "figure number to regenerate (2,3,4,8,9,10,11,12)")
		table     = fs.Int("table", 0, "table number to print (1,2)")
		report    = fs.String("report", "", "write the full markdown report to this file")
		quick     = fs.Bool("quick", false, "short traces and 2 cores (smoke test)")
		cores     = fs.Int("cores", 8, "simulated cores")
		refs      = fs.Int("refs", 500_000, "measured references per run")
		warmup    = fs.Int("warmup", 500_000, "warmup references per run")
		wl        = fs.String("workloads", "", "comma-separated benchmark subset")
		ablations = fs.Bool("ablations", false, "include the §4.6 ablation sweeps")
		consol    = fs.String("consolidation", "", "run a consolidation scenario and print the per-tenant-tier cross-scheme table: "+strings.Join(workloads.ConsolidationNames(), ", "))
		tenants   = fs.Int("tenants", 0, "override a consolidation preset's guest count (0 = preset)")
		churn     = fs.Int("churn", 0, "override a consolidation preset's shootdown-storm interval in records (-1 = off, 0 = preset)")
		phases    = fs.Int("phases", 0, "override a consolidation preset's working-set phase count (0 = preset)")
		csvDir    = fs.String("csv", "", "write per-figure CSV files into this directory")
		ckptPath  = fs.String("checkpoint", "", "journal completed (workload, scheme) cells to this JSON file")
		resume    = fs.Bool("resume", false, "reuse cells already journaled in -checkpoint and run only the missing ones")
		timeout   = fs.Duration("timeout", 0, "per-workload simulation deadline (0 = none), e.g. 90s")

		sweepSpec  = fs.String("sweep", "", "run a design-space sweep over this grid, e.g. 'schemes=pom-tlb,tsb:pom-mb=4,8:pom-ways=2,4'")
		shards     = fs.Int("shards", runtime.GOMAXPROCS(0), "sweep worker shards (work-stealing pool size)")
		budget     = fs.Int("retry-budget", 64, "global retry budget shared by every sweep cell")
		quarAfter  = fs.Int("quarantine-after", sweep.DefaultQuarantineAfter, "per-cell attempt cap before a sweep cell is quarantined")
		sweepCSV   = fs.String("sweep-csv", "", "stream sweep results to this CSV file (default: stdout)")
		manifest   = fs.String("manifest", "", "write the sweep quarantine manifest (JSON) to this file")
		faultRate  = fs.Float64("fault-rate", 0, "chaos testing: per-cell probability of one injected transient failure")
		faultPanic = fs.Float64("fault-panic-rate", 0, "chaos testing: per-cell probability of an injected panic on every attempt")
		faultSeed  = fs.Uint64("fault-seed", 1, "seed for the deterministic chaos plan")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *cores <= 0:
		return fmt.Errorf("-cores must be positive (got %d)", *cores)
	case *refs <= 0:
		return fmt.Errorf("-refs must be positive (got %d)", *refs)
	case *warmup < 0:
		return fmt.Errorf("-warmup must be non-negative (got %d)", *warmup)
	case *timeout < 0:
		return fmt.Errorf("-timeout must be non-negative (got %v)", *timeout)
	case *fig != 0 && !validFigs[*fig]:
		return fmt.Errorf("-fig %d: valid figures are 2, 3, 4, 8, 9, 10, 11, 12", *fig)
	case *table != 0 && *table != 1 && *table != 2:
		return fmt.Errorf("-table %d: valid tables are 1 and 2", *table)
	case *resume && *ckptPath == "":
		return fmt.Errorf("-resume requires -checkpoint FILE")
	case *shards <= 0:
		return fmt.Errorf("-shards must be positive (got %d)", *shards)
	case *budget <= 0:
		return fmt.Errorf("-retry-budget must be positive (got %d)", *budget)
	case *quarAfter < 1:
		return fmt.Errorf("-quarantine-after must be at least 1 (got %d)", *quarAfter)
	case *faultRate < 0 || *faultRate > 1:
		return fmt.Errorf("-fault-rate must be in [0, 1] (got %g)", *faultRate)
	case *faultPanic < 0 || *faultPanic > 1:
		return fmt.Errorf("-fault-panic-rate must be in [0, 1] (got %g)", *faultPanic)
	case *tenants < 0 || (*tenants > 0 && *tenants < 3):
		return fmt.Errorf("-tenants must be 0 (inherit) or at least 3 (got %d)", *tenants)
	case *churn < -1:
		return fmt.Errorf("-churn must be a positive interval, -1 (off) or 0 (inherit) (got %d)", *churn)
	case *phases < 0:
		return fmt.Errorf("-phases must be non-negative (got %d)", *phases)
	case *sweepSpec != "" && (*all || *fig != 0 || *table != 0 || *report != "" || *csvDir != "" || *consol != ""):
		return fmt.Errorf("-sweep cannot be combined with -all/-fig/-table/-report/-csv/-consolidation")
	case *consol != "" && (*all || *fig != 0 || *table != 0 || *report != ""):
		return fmt.Errorf("-consolidation cannot be combined with -all/-fig/-table/-report")
	case *sweepSpec == "" && (*faultRate > 0 || *faultPanic > 0):
		return fmt.Errorf("-fault-rate/-fault-panic-rate require -sweep")
	case *sweepSpec == "" && (*sweepCSV != "" || *manifest != ""):
		return fmt.Errorf("-sweep-csv/-manifest require -sweep")
	}

	opts := experiments.DefaultOptions()
	opts.Cores = *cores
	opts.MaxRefs = *refs
	opts.WarmupRefs = *warmup
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *wl != "" {
		opts.Workloads = strings.Split(*wl, ",")
		for _, n := range opts.Workloads {
			if _, ok := workloads.ByName(n); ok {
				continue
			}
			if _, ok := workloads.ConsolidationByName(n); ok {
				continue
			}
			return fmt.Errorf("unknown workload %q (known: %s; consolidation: %s)", n,
				strings.Join(workloads.Names(), ", "), strings.Join(workloads.ConsolidationNames(), ", "))
		}
	}
	opts.WorkloadTimeout = *timeout
	opts.Tenants = *tenants
	opts.ChurnEvery = *churn
	opts.Phases = *phases

	if *consol != "" {
		preset, ok := workloads.ConsolidationByName(*consol)
		if !ok {
			return fmt.Errorf("unknown consolidation preset %q (known: %s)", *consol, strings.Join(workloads.ConsolidationNames(), ", "))
		}
		fmt.Fprintf(out, "%s — %s\n\n", preset.Name, preset.Description)
		rows, err := experiments.ConsolidationTiersContext(ctx, experiments.NewRunner(opts), preset.Name, nil)
		experiments.WriteConsolidationTiers(out, rows)
		return describeDegraded(out, err)
	}

	if *sweepSpec != "" {
		return runSweep(ctx, out, opts, sweepFlags{
			spec:            *sweepSpec,
			shards:          *shards,
			retryBudget:     *budget,
			quarantineAfter: *quarAfter,
			csvPath:         *sweepCSV,
			manifestPath:    *manifest,
			journalPath:     *ckptPath,
			resume:          *resume,
			cellTimeout:     *timeout,
			faultRate:       *faultRate,
			faultPanicRate:  *faultPanic,
			faultSeed:       *faultSeed,
		})
	}

	if *ckptPath != "" {
		if !*resume {
			if _, err := os.Stat(*ckptPath); err == nil {
				return fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or remove the file", *ckptPath)
			}
		}
		cp, err := experiments.LoadCheckpoint(*ckptPath, experiments.Fingerprint(opts))
		if err != nil {
			return err
		}
		if *resume && cp.Len() > 0 {
			fmt.Fprintf(out, "resuming: %d cell(s) already journaled in %s\n", cp.Len(), *ckptPath)
		}
		opts.Checkpoint = cp
	}

	if *csvDir != "" {
		paths, err := experiments.WriteCSVsContext(ctx, *csvDir, experiments.NewRunner(opts))
		for _, p := range paths {
			fmt.Fprintln(out, p)
		}
		return describeDegraded(out, err)
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		rerr := experiments.ReportContext(ctx, f, opts, true)
		fmt.Fprintf(out, "wrote %s\n", *report)
		return describeDegraded(out, rerr)
	}
	if *all {
		return describeDegraded(out, experiments.ReportContext(ctx, out, opts, *ablations))
	}

	r := experiments.NewRunner(opts)
	switch {
	case *table == 1:
		fmt.Fprint(out, experiments.Table1())
	case *table == 2:
		fmt.Fprint(out, experiments.Table2())
	case *fig == 2:
		rows, err := experiments.Figure2Context(ctx, r)
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, row.SimCyc
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 2 — simulated baseline cycles per L2 TLB miss", names, vals, "cyc"))
		return describeDegraded(out, err)
	case *fig == 3:
		rows, err := experiments.Figure3Context(ctx, r)
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, row.SimRatio
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 3 — virtualized / native translation cost", names, vals, "x"))
		return describeDegraded(out, err)
	case *fig == 4:
		t := stats.NewTable("capacity", "normalized latency")
		for _, pt := range experiments.Figure4() {
			t.AddRow(fmt.Sprintf("%dKB", pt.CapacityBytes>>10), fmt.Sprintf("%.2f", pt.Normalized))
		}
		fmt.Fprint(out, t.String())
	case *fig == 8:
		rows, sum, err := experiments.Figure8Context(ctx, r)
		t := stats.NewTable("benchmark", "POM-TLB %", "Shared_L2 %", "TSB %")
		for _, row := range rows {
			t.AddRow(row.Name, fmt.Sprintf("%.2f", row.POM),
				fmt.Sprintf("%.2f", row.Shared), fmt.Sprintf("%.2f", row.TSB))
		}
		if len(rows) > 0 {
			t.AddRow("GEOMEAN", fmt.Sprintf("%.2f", sum.POMGeomeanPct),
				fmt.Sprintf("%.2f", sum.SharedGeomeanPct), fmt.Sprintf("%.2f", sum.TSBGeomeanPct))
		}
		fmt.Fprint(out, t.String())
		return describeDegraded(out, err)
	case *fig == 9:
		rows, err := experiments.Figure9Context(ctx, r)
		t := stats.NewTable("benchmark", "L2D$", "L3D$", "POM-TLB", "walk elim")
		for _, row := range rows {
			t.AddRow(row.Name, stats.Pct(row.L2D), stats.Pct(row.L3D),
				stats.Pct(row.POM), stats.Pct(row.WalkEl))
		}
		fmt.Fprint(out, t.String())
		return describeDegraded(out, err)
	case *fig == 10:
		rows, err := experiments.Figure10Context(ctx, r)
		t := stats.NewTable("benchmark", "size acc", "bypass acc")
		for _, row := range rows {
			t.AddRow(row.Name, stats.Pct(row.SizeAcc), stats.Pct(row.BypassAcc))
		}
		fmt.Fprint(out, t.String())
		return describeDegraded(out, err)
	case *fig == 11:
		rows, err := experiments.Figure11Context(ctx, r)
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, 100*row.RBH
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 11 — POM-TLB row-buffer hit rate", names, vals, "%"))
		return describeDegraded(out, err)
	case *fig == 12:
		rows, withAvg, noAvg, err := experiments.Figure12Context(ctx, r)
		t := stats.NewTable("benchmark", "with caching %", "without %")
		for _, row := range rows {
			t.AddRow(row.Name, fmt.Sprintf("%.2f", row.WithCache), fmt.Sprintf("%.2f", row.NoCache))
		}
		if len(rows) > 0 {
			t.AddRow("GEOMEAN", fmt.Sprintf("%.2f", withAvg), fmt.Sprintf("%.2f", noAvg))
		}
		fmt.Fprint(out, t.String())
		return describeDegraded(out, err)
	default:
		return fmt.Errorf("nothing to do: pass -all, -fig N, -table N or -report FILE")
	}
	return nil
}

// sweepFlags carries the validated -sweep command line into runSweep.
type sweepFlags struct {
	spec            string
	shards          int
	retryBudget     int
	quarantineAfter int
	csvPath         string
	manifestPath    string
	journalPath     string
	resume          bool
	cellTimeout     time.Duration
	faultRate       float64
	faultPanicRate  float64
	faultSeed       uint64
}

// runSweep drives one design-space sweep: parse the grid, open (or
// resume) the append-only journal, optionally seed the chaos plan, run
// the sharded engine, then emit the CSV, the quarantine manifest, and a
// one-line summary. A sweep with quarantined cells still emits
// everything and then exits non-zero, so automation notices the
// degradation without losing the completed grid.
func runSweep(ctx context.Context, out io.Writer, opts experiments.Options, f sweepFlags) error {
	spec, err := sweep.ParseSpec(f.spec)
	if err != nil {
		return err
	}
	cfg := sweep.Config{
		Base:            opts,
		Spec:            spec,
		Shards:          f.shards,
		RetryBudget:     f.retryBudget,
		QuarantineAfter: f.quarantineAfter,
		CellTimeout:     f.cellTimeout,
	}

	names := opts.Workloads
	if len(names) == 0 {
		names = workloads.Names()
	}
	if f.faultRate > 0 || f.faultPanicRate > 0 {
		s := faultinject.NewSchedule()
		plan := sweep.SeedChaos(s, spec.Cells(names), f.faultPanicRate, f.faultRate, f.faultSeed)
		cfg.Faults = s
		fmt.Fprintf(out, "chaos plan (seed %d): %d cell(s) panic, %d flaky\n",
			f.faultSeed, len(plan.Panicked), len(plan.Flaky))
	}

	if f.journalPath != "" {
		if !f.resume {
			if _, err := os.Stat(f.journalPath); err == nil {
				return fmt.Errorf("sweep journal %s already exists; pass -resume to continue it or remove the file", f.journalPath)
			}
		}
		j, err := experiments.OpenSweepJournal(f.journalPath, experiments.SweepFingerprint(opts, spec.Canonical()))
		if err != nil {
			return err
		}
		defer j.Close()
		if n := j.TruncatedRecords(); n > 0 {
			fmt.Fprintf(out, "journal %s: dropped %d torn trailing record(s) left by an interrupted append\n", f.journalPath, n)
		}
		if f.resume && j.Len() > 0 {
			fmt.Fprintf(out, "resuming: %d cell(s) already journaled in %s\n", j.Len(), f.journalPath)
		}
		cfg.Journal = j
	}

	// The CSV streams to a temp file renamed into place only when the
	// sweep ran to completion: a killed run leaves no half-written
	// sweep.csv, and the journal already preserves every finished cell
	// for the resume to replay.
	var tmp *os.File
	if f.csvPath != "" {
		tmp, err = os.CreateTemp(filepath.Dir(f.csvPath), filepath.Base(f.csvPath)+".tmp-*")
		if err != nil {
			return err
		}
		defer func() {
			if tmp != nil {
				tmp.Close()
				os.Remove(tmp.Name())
			}
		}()
		cfg.CSV = tmp
		cfg.Progress = out
	} else {
		cfg.CSV = out
	}

	rep, runErr := sweep.Run(ctx, cfg)
	if rep == nil {
		return runErr
	}
	if tmp != nil && runErr == nil {
		name := tmp.Name()
		if err := tmp.Sync(); err != nil {
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		if err := os.Rename(name, f.csvPath); err != nil {
			return err
		}
		tmp = nil
		fmt.Fprintf(out, "wrote %s (%d row(s))\n", f.csvPath, rep.Completed)
	}

	budgetLeft := "unlimited"
	if rep.BudgetRemaining >= 0 {
		budgetLeft = fmt.Sprintf("%d left", rep.BudgetRemaining)
	}
	fmt.Fprintf(out, "sweep: %d/%d cell(s) completed (%d from journal, %d retried, %d quarantined, retry budget %s)\n",
		rep.Completed, rep.Total, rep.FromJournal, rep.Retried, len(rep.Quarantined), budgetLeft)

	if f.manifestPath != "" {
		mf, err := os.Create(f.manifestPath)
		if err != nil {
			return err
		}
		if err := rep.WriteManifest(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote quarantine manifest %s\n", f.manifestPath)
	} else if len(rep.Quarantined) > 0 && runErr == nil {
		if err := rep.WriteManifest(out); err != nil {
			return err
		}
	}

	if runErr != nil {
		return runErr
	}
	if n := len(rep.Quarantined); n > 0 {
		return fmt.Errorf("sweep degraded: %d of %d cell(s) quarantined (the rest completed; see the manifest)", n, rep.Total)
	}
	return nil
}

// describeDegraded turns a campaign's aggregate error into a short
// explanation after the partial rows have already been emitted, so an
// interrupted or degraded run never hides the work that completed.
func describeDegraded(out io.Writer, err error) error {
	if err == nil {
		return nil
	}
	var ce *experiments.CampaignError
	if errors.As(err, &ce) {
		fmt.Fprintf(out, "\npartial results above; %d cell(s) did not complete.\n", len(ce.Failures))
	}
	return err
}
