// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -all                      # every figure + ablations
//	experiments -fig 8                    # one figure
//	experiments -table 2                  # one table
//	experiments -report EXPERIMENTS.md    # write the full markdown report
//	experiments -quick -fig 8             # short traces, 2 cores
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all       = fs.Bool("all", false, "run every figure and ablation")
		fig       = fs.Int("fig", 0, "figure number to regenerate (2,3,4,8,9,10,11,12)")
		table     = fs.Int("table", 0, "table number to print (1,2)")
		report    = fs.String("report", "", "write the full markdown report to this file")
		quick     = fs.Bool("quick", false, "short traces and 2 cores (smoke test)")
		cores     = fs.Int("cores", 8, "simulated cores")
		refs      = fs.Int("refs", 500_000, "measured references per run")
		warmup    = fs.Int("warmup", 500_000, "warmup references per run")
		wl        = fs.String("workloads", "", "comma-separated benchmark subset")
		ablations = fs.Bool("ablations", false, "include the §4.6 ablation sweeps")
		csvDir    = fs.String("csv", "", "write per-figure CSV files into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.DefaultOptions()
	opts.Cores = *cores
	opts.MaxRefs = *refs
	opts.WarmupRefs = *warmup
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *wl != "" {
		opts.Workloads = strings.Split(*wl, ",")
	}

	if *csvDir != "" {
		paths, err := experiments.WriteCSVs(*csvDir, experiments.NewRunner(opts))
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Fprintln(out, p)
		}
		return nil
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.Report(f, opts, true); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *report)
		return nil
	}
	if *all {
		return experiments.Report(out, opts, *ablations)
	}

	r := experiments.NewRunner(opts)
	switch {
	case *table == 1:
		fmt.Fprint(out, experiments.Table1())
	case *table == 2:
		fmt.Fprint(out, experiments.Table2())
	case *fig == 2:
		rows, err := experiments.Figure2(r)
		if err != nil {
			return err
		}
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, row.SimCyc
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 2 — simulated baseline cycles per L2 TLB miss", names, vals, "cyc"))
	case *fig == 3:
		rows, err := experiments.Figure3(r)
		if err != nil {
			return err
		}
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, row.SimRatio
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 3 — virtualized / native translation cost", names, vals, "x"))
	case *fig == 4:
		t := stats.NewTable("capacity", "normalized latency")
		for _, pt := range experiments.Figure4() {
			t.AddRow(fmt.Sprintf("%dKB", pt.CapacityBytes>>10), fmt.Sprintf("%.2f", pt.Normalized))
		}
		fmt.Fprint(out, t.String())
	case *fig == 8:
		rows, sum, err := experiments.Figure8(r)
		if err != nil {
			return err
		}
		t := stats.NewTable("benchmark", "POM-TLB %", "Shared_L2 %", "TSB %")
		for _, row := range rows {
			t.AddRow(row.Name, fmt.Sprintf("%.2f", row.POM),
				fmt.Sprintf("%.2f", row.Shared), fmt.Sprintf("%.2f", row.TSB))
		}
		t.AddRow("GEOMEAN", fmt.Sprintf("%.2f", sum.POMGeomeanPct),
			fmt.Sprintf("%.2f", sum.SharedGeomeanPct), fmt.Sprintf("%.2f", sum.TSBGeomeanPct))
		fmt.Fprint(out, t.String())
	case *fig == 9:
		rows, err := experiments.Figure9(r)
		if err != nil {
			return err
		}
		t := stats.NewTable("benchmark", "L2D$", "L3D$", "POM-TLB", "walk elim")
		for _, row := range rows {
			t.AddRow(row.Name, stats.Pct(row.L2D), stats.Pct(row.L3D),
				stats.Pct(row.POM), stats.Pct(row.WalkEl))
		}
		fmt.Fprint(out, t.String())
	case *fig == 10:
		rows, err := experiments.Figure10(r)
		if err != nil {
			return err
		}
		t := stats.NewTable("benchmark", "size acc", "bypass acc")
		for _, row := range rows {
			t.AddRow(row.Name, stats.Pct(row.SizeAcc), stats.Pct(row.BypassAcc))
		}
		fmt.Fprint(out, t.String())
	case *fig == 11:
		rows, err := experiments.Figure11(r)
		if err != nil {
			return err
		}
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, 100*row.RBH
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 11 — POM-TLB row-buffer hit rate", names, vals, "%"))
	case *fig == 12:
		rows, withAvg, noAvg, err := experiments.Figure12(r)
		if err != nil {
			return err
		}
		t := stats.NewTable("benchmark", "with caching %", "without %")
		for _, row := range rows {
			t.AddRow(row.Name, fmt.Sprintf("%.2f", row.WithCache), fmt.Sprintf("%.2f", row.NoCache))
		}
		t.AddRow("GEOMEAN", fmt.Sprintf("%.2f", withAvg), fmt.Sprintf("%.2f", noAvg))
		fmt.Fprint(out, t.String())
	default:
		return fmt.Errorf("nothing to do: pass -all, -fig N, -table N or -report FILE")
	}
	return nil
}
