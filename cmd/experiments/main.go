// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -all                      # every figure + ablations
//	experiments -fig 8                    # one figure
//	experiments -table 2                  # one table
//	experiments -report EXPERIMENTS.md    # write the full markdown report
//	experiments -quick -fig 8             # short traces, 2 cores
//	experiments -all -checkpoint c.json   # journal completed cells
//	experiments -all -checkpoint c.json -resume   # skip journaled cells
//
// SIGINT/SIGTERM cancel the in-flight simulations; the command still
// emits every completed row (and the checkpoint keeps every completed
// cell) before exiting non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// validFigs are the figure numbers this command can regenerate.
var validFigs = map[int]bool{2: true, 3: true, 4: true, 8: true, 9: true, 10: true, 11: true, 12: true}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all       = fs.Bool("all", false, "run every figure and ablation")
		fig       = fs.Int("fig", 0, "figure number to regenerate (2,3,4,8,9,10,11,12)")
		table     = fs.Int("table", 0, "table number to print (1,2)")
		report    = fs.String("report", "", "write the full markdown report to this file")
		quick     = fs.Bool("quick", false, "short traces and 2 cores (smoke test)")
		cores     = fs.Int("cores", 8, "simulated cores")
		refs      = fs.Int("refs", 500_000, "measured references per run")
		warmup    = fs.Int("warmup", 500_000, "warmup references per run")
		wl        = fs.String("workloads", "", "comma-separated benchmark subset")
		ablations = fs.Bool("ablations", false, "include the §4.6 ablation sweeps")
		csvDir    = fs.String("csv", "", "write per-figure CSV files into this directory")
		ckptPath  = fs.String("checkpoint", "", "journal completed (workload, scheme) cells to this JSON file")
		resume    = fs.Bool("resume", false, "reuse cells already journaled in -checkpoint and run only the missing ones")
		timeout   = fs.Duration("timeout", 0, "per-workload simulation deadline (0 = none), e.g. 90s")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *cores <= 0:
		return fmt.Errorf("-cores must be positive (got %d)", *cores)
	case *refs <= 0:
		return fmt.Errorf("-refs must be positive (got %d)", *refs)
	case *warmup < 0:
		return fmt.Errorf("-warmup must be non-negative (got %d)", *warmup)
	case *timeout < 0:
		return fmt.Errorf("-timeout must be non-negative (got %v)", *timeout)
	case *fig != 0 && !validFigs[*fig]:
		return fmt.Errorf("-fig %d: valid figures are 2, 3, 4, 8, 9, 10, 11, 12", *fig)
	case *table != 0 && *table != 1 && *table != 2:
		return fmt.Errorf("-table %d: valid tables are 1 and 2", *table)
	case *resume && *ckptPath == "":
		return fmt.Errorf("-resume requires -checkpoint FILE")
	}

	opts := experiments.DefaultOptions()
	opts.Cores = *cores
	opts.MaxRefs = *refs
	opts.WarmupRefs = *warmup
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *wl != "" {
		opts.Workloads = strings.Split(*wl, ",")
		for _, n := range opts.Workloads {
			if _, ok := workloads.ByName(n); !ok {
				return fmt.Errorf("unknown workload %q (known: %s)", n, strings.Join(workloads.Names(), ", "))
			}
		}
	}
	opts.WorkloadTimeout = *timeout
	if *ckptPath != "" {
		if !*resume {
			if _, err := os.Stat(*ckptPath); err == nil {
				return fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or remove the file", *ckptPath)
			}
		}
		cp, err := experiments.LoadCheckpoint(*ckptPath, experiments.Fingerprint(opts))
		if err != nil {
			return err
		}
		if *resume && cp.Len() > 0 {
			fmt.Fprintf(out, "resuming: %d cell(s) already journaled in %s\n", cp.Len(), *ckptPath)
		}
		opts.Checkpoint = cp
	}

	if *csvDir != "" {
		paths, err := experiments.WriteCSVsContext(ctx, *csvDir, experiments.NewRunner(opts))
		for _, p := range paths {
			fmt.Fprintln(out, p)
		}
		return describeDegraded(out, err)
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		defer f.Close()
		rerr := experiments.ReportContext(ctx, f, opts, true)
		fmt.Fprintf(out, "wrote %s\n", *report)
		return describeDegraded(out, rerr)
	}
	if *all {
		return describeDegraded(out, experiments.ReportContext(ctx, out, opts, *ablations))
	}

	r := experiments.NewRunner(opts)
	switch {
	case *table == 1:
		fmt.Fprint(out, experiments.Table1())
	case *table == 2:
		fmt.Fprint(out, experiments.Table2())
	case *fig == 2:
		rows, err := experiments.Figure2Context(ctx, r)
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, row.SimCyc
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 2 — simulated baseline cycles per L2 TLB miss", names, vals, "cyc"))
		return describeDegraded(out, err)
	case *fig == 3:
		rows, err := experiments.Figure3Context(ctx, r)
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, row.SimRatio
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 3 — virtualized / native translation cost", names, vals, "x"))
		return describeDegraded(out, err)
	case *fig == 4:
		t := stats.NewTable("capacity", "normalized latency")
		for _, pt := range experiments.Figure4() {
			t.AddRow(fmt.Sprintf("%dKB", pt.CapacityBytes>>10), fmt.Sprintf("%.2f", pt.Normalized))
		}
		fmt.Fprint(out, t.String())
	case *fig == 8:
		rows, sum, err := experiments.Figure8Context(ctx, r)
		t := stats.NewTable("benchmark", "POM-TLB %", "Shared_L2 %", "TSB %")
		for _, row := range rows {
			t.AddRow(row.Name, fmt.Sprintf("%.2f", row.POM),
				fmt.Sprintf("%.2f", row.Shared), fmt.Sprintf("%.2f", row.TSB))
		}
		if len(rows) > 0 {
			t.AddRow("GEOMEAN", fmt.Sprintf("%.2f", sum.POMGeomeanPct),
				fmt.Sprintf("%.2f", sum.SharedGeomeanPct), fmt.Sprintf("%.2f", sum.TSBGeomeanPct))
		}
		fmt.Fprint(out, t.String())
		return describeDegraded(out, err)
	case *fig == 9:
		rows, err := experiments.Figure9Context(ctx, r)
		t := stats.NewTable("benchmark", "L2D$", "L3D$", "POM-TLB", "walk elim")
		for _, row := range rows {
			t.AddRow(row.Name, stats.Pct(row.L2D), stats.Pct(row.L3D),
				stats.Pct(row.POM), stats.Pct(row.WalkEl))
		}
		fmt.Fprint(out, t.String())
		return describeDegraded(out, err)
	case *fig == 10:
		rows, err := experiments.Figure10Context(ctx, r)
		t := stats.NewTable("benchmark", "size acc", "bypass acc")
		for _, row := range rows {
			t.AddRow(row.Name, stats.Pct(row.SizeAcc), stats.Pct(row.BypassAcc))
		}
		fmt.Fprint(out, t.String())
		return describeDegraded(out, err)
	case *fig == 11:
		rows, err := experiments.Figure11Context(ctx, r)
		names, vals := make([]string, len(rows)), make([]float64, len(rows))
		for i, row := range rows {
			names[i], vals[i] = row.Name, 100*row.RBH
		}
		fmt.Fprint(out, experiments.RenderBars("Figure 11 — POM-TLB row-buffer hit rate", names, vals, "%"))
		return describeDegraded(out, err)
	case *fig == 12:
		rows, withAvg, noAvg, err := experiments.Figure12Context(ctx, r)
		t := stats.NewTable("benchmark", "with caching %", "without %")
		for _, row := range rows {
			t.AddRow(row.Name, fmt.Sprintf("%.2f", row.WithCache), fmt.Sprintf("%.2f", row.NoCache))
		}
		if len(rows) > 0 {
			t.AddRow("GEOMEAN", fmt.Sprintf("%.2f", withAvg), fmt.Sprintf("%.2f", noAvg))
		}
		fmt.Fprint(out, t.String())
		return describeDegraded(out, err)
	default:
		return fmt.Errorf("nothing to do: pass -all, -fig N, -table N or -report FILE")
	}
	return nil
}

// describeDegraded turns a campaign's aggregate error into a short
// explanation after the partial rows have already been emitted, so an
// interrupted or degraded run never hides the work that completed.
func describeDegraded(out io.Writer, err error) error {
	if err == nil {
		return nil
	}
	var ce *experiments.CampaignError
	if errors.As(err, &ce) {
		fmt.Fprintf(out, "\npartial results above; %d cell(s) did not complete.\n", len(ce.Failures))
	}
	return err
}
