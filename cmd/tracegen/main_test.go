package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gups.trc")
	var sb strings.Builder
	if err := run([]string{"-workload", "gups", "-n", "5000", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "5000 records") {
		t.Errorf("generate output: %s", sb.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() < 5000*16 {
		t.Fatalf("trace file wrong: %v, %v", fi, err)
	}

	sb.Reset()
	if err := run([]string{"-inspect", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"records        5000", "threads", "distinct pages", "VA range"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect missing %q:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "nope"}, &sb); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-inspect", "/does/not/exist"}, &sb); err == nil {
		t.Error("missing trace accepted")
	}
	// Not a trace file.
	bad := filepath.Join(t.TempDir(), "bad.trc")
	os.WriteFile(bad, []byte("garbage garbage"), 0o644)
	if err := run([]string{"-inspect", bad}, &sb); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestAnalyzeFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "mcf", "-n", "20000", "-analyze"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mcf", "footprint", "page reuse", "hot set"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis missing %q:\n%s", want, out)
		}
	}
}
