// Command tracegen generates the synthetic memory traces the simulator
// consumes, writes them in the binary trace format, and inspects existing
// trace files.
//
// Usage:
//
//	tracegen -workload gups -n 1000000 -o gups.trc
//	tracegen -inspect gups.trc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		workload = fs.String("workload", "gups", "Table 2 benchmark name")
		n        = fs.Int("n", 1_000_000, "records to generate")
		threads  = fs.Int("threads", 8, "trace threads")
		seed     = fs.Uint64("seed", 1, "generator seed")
		outPath  = fs.String("o", "", "output file (default <workload>.trc)")
		inspect  = fs.String("inspect", "", "summarize an existing trace file and exit")
		analyze  = fs.Bool("analyze", false, "print a locality analysis instead of writing a file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate flag values up front so a bad invocation fails with a
	// usage error instead of a panic from inside the generator.
	switch {
	case *n <= 0:
		return fmt.Errorf("-n must be positive (got %d)", *n)
	case *threads <= 0:
		return fmt.Errorf("-threads must be positive (got %d)", *threads)
	case *threads > 256:
		return fmt.Errorf("-threads must be at most 256 (got %d; the trace format stores 8-bit thread ids)", *threads)
	}
	if *inspect != "" {
		return summarize(out, *inspect)
	}

	p, ok := workloads.ByName(*workload)
	if !ok {
		return fmt.Errorf("unknown workload %q (known: %s)", *workload, strings.Join(workloads.Names(), ", "))
	}
	if *analyze {
		a := trace.Analyze(p.Generator(*threads, *seed), *n)
		fmt.Fprintf(out, "%s (%s pattern)\n%s", p.Name, p.Pattern, a)
		fmt.Fprintf(out, "hot set (90%% of reuses): ≈ %d pages\n", a.HotSetPages(0.9))
		return nil
	}
	path := *outPath
	if path == "" {
		path = p.Name + ".trc"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	if err := trace.WriteAll(w, p.Generator(*threads, *seed), *n); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d records for %s to %s\n", w.Count(), p.Name, path)
	return nil
}

func summarize(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var (
		n, writes, large uint64
		gaps             float64
		pages            = map[uint64]bool{}
		threads          = map[uint8]bool{}
		minVA, maxVA     addr.VA
	)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if n == 0 || rec.VA < minVA {
			minVA = rec.VA
		}
		if rec.VA > maxVA {
			maxVA = rec.VA
		}
		n++
		if rec.Write {
			writes++
		}
		if rec.Size == addr.Page2M {
			large++
		}
		gaps += float64(rec.Gap)
		pages[rec.VA.VPN(rec.Size)] = true
		threads[rec.Thread] = true
	}
	if n == 0 {
		return fmt.Errorf("trace is empty")
	}
	fmt.Fprintf(out, "records        %d\n", n)
	fmt.Fprintf(out, "threads        %d\n", len(threads))
	fmt.Fprintf(out, "distinct pages %d\n", len(pages))
	fmt.Fprintf(out, "writes         %.1f%%\n", 100*float64(writes)/float64(n))
	fmt.Fprintf(out, "2MB accesses   %.1f%%\n", 100*float64(large)/float64(n))
	fmt.Fprintf(out, "mean gap       %.1f instructions\n", gaps/float64(n))
	fmt.Fprintf(out, "VA range       %v .. %v\n", minVA, maxVA)
	return nil
}
