// Command perf measures and compares the simulator's performance
// trajectory.
//
// Measure mode (default) times the steady-state record loop for every
// translation scheme and writes a schema-versioned trajectory file:
//
//	go run ./cmd/perf                    # writes BENCH_<today>.json
//	go run ./cmd/perf -out /tmp/b.json   # explicit output path
//	go run ./cmd/perf -quick             # shrunk geometry for CI smoke
//
// Compare mode diffs two trajectory files on records/sec and exits 1
// when any scheme regressed beyond the tolerance — the CI bench gate:
//
//	go run ./cmd/perf -compare BENCH_old.json -against BENCH_new.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/perf"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "shrunk geometry for CI smoke runs")
		out       = flag.String("out", "", "output path (default BENCH_<date>.json)")
		date      = flag.String("date", "", "date stamp (default today, YYYY-MM-DD)")
		compare   = flag.String("compare", "", "baseline trajectory file; enables compare mode")
		against   = flag.String("against", "", "candidate trajectory file (compare mode)")
		tolerance = flag.Float64("tolerance", 0.05, "allowed fractional records/sec slowdown (compare mode)")
		cores     = flag.Int("cores", 0, "override simulated core count")
		warmup    = flag.Int("warmup", 0, "override warmup records")
		refs      = flag.Int("refs", 0, "override measured records per window")
		repeats   = flag.Int("repeats", 0, "override timed windows per scheme")
	)
	flag.Parse()

	if *compare != "" {
		runCompare(*compare, *against, *tolerance)
		return
	}

	cfg := perf.DefaultConfig()
	if *quick {
		cfg = perf.QuickConfig()
	}
	if *cores > 0 {
		cfg.Cores = *cores
	}
	if *warmup > 0 {
		cfg.WarmupRefs = *warmup
	}
	if *refs > 0 {
		cfg.MeasureRefs = *refs
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	stamp := *date
	if stamp == "" {
		stamp = time.Now().UTC().Format("2006-01-02")
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", stamp)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("measuring trajectory: %d cores, %d MB footprint, %d warmup + %d×%d measured records/scheme\n",
		cfg.Cores, cfg.FootprintBytes>>20, cfg.WarmupRefs, cfg.Repeats, cfg.MeasureRefs)
	t, err := perf.Measure(ctx, cfg, stamp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perf:", err)
		os.Exit(1)
	}
	if err := t.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "perf:", err)
		os.Exit(1)
	}

	fmt.Printf("\n%-12s %14s %12s %14s %14s\n",
		"scheme", "records/sec", "ns/transl", "allocs/record", "bytes/record")
	for _, s := range t.Schemes {
		fmt.Printf("%-12s %14.0f %12.1f %14.4f %14.1f\n",
			s.Scheme, s.RecordsPerSec, s.NsPerTranslation, s.AllocsPerRecord, s.BytesPerRecord)
	}
	fmt.Printf("\nwrote %s\n", path)
}

func runCompare(oldPath, newPath string, tolerance float64) {
	if newPath == "" {
		fmt.Fprintln(os.Stderr, "perf: -compare requires -against <new.json>")
		os.Exit(2)
	}
	oldT, err := perf.Load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newT, err := perf.Load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	c := perf.Compare(oldT, newT, tolerance)
	fmt.Printf("baseline %s (%s) vs candidate %s (%s), tolerance %.0f%%\n\n",
		oldPath, oldT.Date, newPath, newT.Date, tolerance*100)
	fmt.Print(c.String())
	if c.Regressed() {
		fmt.Printf("\nFAIL: records/sec regressed more than %.0f%%\n", tolerance*100)
		os.Exit(1)
	}
	fmt.Println("\nOK: no scheme regressed beyond tolerance")
}
