// Package dramcache models a die-stacked DRAM cache dedicated to page
// walks (after Patil et al., arXiv 2002.01073): the walker's page-table
// entry reads that miss the on-chip data caches are serviced from a large
// stacked-DRAM array before going off chip, shortening every walk rather
// than eliminating walks the way a translation structure does. The
// structure is an SRAM tag directory (a cache.Cache, so hits and
// replacement are modelled exactly like the L4 trade-off machine) whose
// hits cost one access on a die-stacked dram.Channel.
package dramcache

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dram"
)

// Config describes the cache.
type Config struct {
	// SizeBytes is the capacity of the stacked array.
	SizeBytes uint64
	// Ways is the tag directory's associativity.
	Ways int
	// DRAM times the die-stacked array itself.
	DRAM dram.Config
}

// DefaultConfig returns a POM-TLB-comparable machine: the same 16 MB of
// die-stacked silicon the paper's headline TLB spends, on the same
// stacked-DRAM timing.
func DefaultConfig() Config {
	return Config{
		SizeBytes: 16 << 20,
		Ways:      16,
		DRAM:      dram.DieStacked(),
	}
}

// tagConfig materializes the tag-directory cache config. The directory's
// own SRAM probe is folded into the miss path already charged (the L3
// lookup preceding it), so its Latency is 0 and a hit costs exactly one
// die-stacked access — the same convention as the L4 trade-off machine.
func (c Config) tagConfig() cache.Config {
	return cache.Config{Name: "DCache", SizeBytes: c.SizeBytes, Ways: c.Ways}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.tagConfig().Validate(); err != nil {
		return fmt.Errorf("dramcache: %w", err)
	}
	if err := c.DRAM.Validate(); err != nil {
		return fmt.Errorf("dramcache: %w", err)
	}
	return nil
}

// Cache is the die-stacked page-walk cache.
type Cache struct {
	cfg  Config
	tags *cache.Cache
	ch   *dram.Channel
}

// New builds the cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{
		cfg:  cfg,
		tags: cache.MustNew(cfg.tagConfig()),
		ch:   dram.MustNew(cfg.DRAM),
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Cache {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the configuration.
func (d *Cache) Config() Config { return d.cfg }

// Tags exposes the tag directory (for the differential oracle).
func (d *Cache) Tags() *cache.Cache { return d.tags }

// Channel exposes the die-stacked channel (for the differential oracle).
func (d *Cache) Channel() *dram.Channel { return d.ch }

// Probe looks the line up at time now. On a hit it returns the
// die-stacked access latency and true; on a miss it returns (0, false)
// and the caller fetches from backing memory.
func (d *Cache) Probe(now uint64, a addr.HPA, write bool) (uint64, bool) {
	if d.tags.Access(a.Line(), write, cache.Data) {
		return d.ch.Access(now, a.LineBase(), false).Latency, true
	}
	return 0, false
}

// Fill installs a line fetched from backing memory. The stacked write is
// off the critical path, so no latency is returned; a dirty victim line
// is handed back for the caller to retire to backing memory.
func (d *Cache) Fill(now uint64, a addr.HPA) (victim uint64, dirty bool) {
	ev := d.tags.Fill(a.Line(), false, cache.Data)
	d.ch.Access(now, a.LineBase(), true)
	if ev.Valid && ev.Dirty {
		return ev.Line, true
	}
	return 0, false
}

// CheckInvariants validates both halves.
func (d *Cache) CheckInvariants() error {
	if err := d.tags.CheckInvariants(); err != nil {
		return err
	}
	return d.ch.CheckInvariants()
}

// Stats returns the tag directory's counters.
func (d *Cache) Stats() cache.Stats { return d.tags.Stats() }

// DRAMStats returns the die-stacked channel's counters.
func (d *Cache) DRAMStats() dram.Stats { return d.ch.Stats() }

// ResetStats clears both halves' counters (contents stay warm).
func (d *Cache) ResetStats() {
	d.tags.ResetStats()
	d.ch.ResetStats()
}
