package addr

import "testing"

// TestPageBoundaryEdges pins the behaviour at the exact page boundaries,
// where an off-by-one in masking silently merges or splits neighbouring
// pages.
func TestPageBoundaryEdges(t *testing.T) {
	for _, s := range []PageSize{Page4K, Page2M, Page1G} {
		b := s.Bytes()
		last := VA(b - 1)       // final byte of page 0
		first := VA(b)          // first byte of page 1
		if last.VPN(s) != 0 || first.VPN(s) != 1 {
			t.Errorf("%s: VPN across boundary = %d,%d; want 0,1", s, last.VPN(s), first.VPN(s))
		}
		if last.PageBase(s) != 0 || first.PageBase(s) != VA(b) {
			t.Errorf("%s: PageBase across boundary = %#x,%#x", s,
				uint64(last.PageBase(s)), uint64(first.PageBase(s)))
		}
		if last.Offset(s) != b-1 || first.Offset(s) != 0 {
			t.Errorf("%s: Offset across boundary = %#x,%#x", s, last.Offset(s), first.Offset(s))
		}
		// PageBase is idempotent and already offset-free.
		if got := last.PageBase(s).PageBase(s); got != last.PageBase(s) {
			t.Errorf("%s: PageBase not idempotent", s)
		}
	}
}

// TestTopOfCanonicalRange exercises the highest 48-bit canonical
// addresses: VPN extraction and Translate must round-trip with bit 47
// set, and Canonical must be a fixed point there.
func TestTopOfCanonicalRange(t *testing.T) {
	top := Canonical(1<<64 - 1) // 0x0000_FFFF_FFFF_FFFF
	if Canonical(uint64(top)) != top {
		t.Fatalf("Canonical not idempotent at %#x", uint64(top))
	}
	for _, s := range []PageSize{Page4K, Page2M} {
		wantVPN := ((uint64(1) << 48) - 1) >> s.Shift()
		if got := top.VPN(s); got != wantVPN {
			t.Errorf("%s: top VPN = %#x, want %#x", s, got, wantVPN)
		}
		h := Translate(top, wantVPN, s)
		if h.PFN(s) != wantVPN || uint64(h)&(s.Bytes()-1) != top.Offset(s) {
			t.Errorf("%s: Translate at top of range lost bits: %v", s, h)
		}
	}
	// Every radix index at the top address is the full 9-bit value.
	for l := PML4; l <= PT; l++ {
		if got := Index(top, l); got != 0x1FF {
			t.Errorf("Index(%v) at top = %#x, want 0x1ff", l, got)
		}
	}
}

// TestFromPFNMasksOversizedOffset documents that an offset larger than
// the page is truncated to the in-page bits rather than corrupting the
// frame number.
func TestFromPFNMasksOversizedOffset(t *testing.T) {
	for _, s := range []PageSize{Page4K, Page2M} {
		h := FromPFN(7, s, s.Bytes()+3) // 3 bytes past a full page
		if h.PFN(s) != 7 {
			t.Errorf("%s: oversized offset leaked into PFN: %v", s, h)
		}
		if uint64(h)&(s.Bytes()-1) != 3 {
			t.Errorf("%s: offset = %#x, want 3", s, uint64(h)&(s.Bytes()-1))
		}
	}
}

// TestLineEdges pins the 64 B line arithmetic at its boundaries.
func TestLineEdges(t *testing.T) {
	if HPA(63).Line() != 0 || HPA(64).Line() != 1 {
		t.Error("HPA line boundary at 64 B wrong")
	}
	if VA(63).Line() != 0 || VA(64).Line() != 1 {
		t.Error("VA line boundary at 64 B wrong")
	}
	if HPA(64).LineBase() != 64 || HPA(127).LineBase() != 64 {
		t.Error("LineBase of second line wrong")
	}
	// A 4 KB page is exactly 64 lines; the last line of page 0 and the
	// first line of page 1 must differ.
	if VA(Bytes4K-1).Line() == VA(Bytes4K).Line() {
		t.Error("page boundary fell inside one line")
	}
}

// TestMisclassifiedSize documents what happens when a VPN computed at one
// page size is reused at the other — the failure mode the POM-TLB's
// dual-partition probing must avoid. The values differ by exactly the
// shift delta, so confusing them is always detectable.
func TestMisclassifiedSize(t *testing.T) {
	v := VA(0x1234_5678_9000)
	small, large := v.VPN(Page4K), v.VPN(Page2M)
	if small>>(Shift2M-Shift4K) != large {
		t.Errorf("VPN(4K)>>9 = %#x, VPN(2M) = %#x; sizes disagree", small>>9, large)
	}
	// Translating with a frame number from the wrong size class changes
	// the address: the offsets differ whenever the address is not 2 MB
	// aligned.
	if Translate(v, 1, Page4K) == Translate(v, 1, Page2M) {
		t.Error("4K and 2M translations of an unaligned address collided")
	}
}

// FuzzAddrPacking fuzzes the address packing round trips: Translate /
// PFN / Offset / PageBase must agree for every canonical address, frame
// number and page size, and the radix indices must always rebuild the
// 4 KB VPN.
func FuzzAddrPacking(f *testing.F) {
	f.Add(uint64(0), uint64(0), false)
	f.Add(uint64(0xFFFF_FFFF_FFFF_FFFF), uint64(1)<<40-1, true)
	f.Add(uint64(0x7fff_1234_5678), uint64(0x42), false)
	f.Add(uint64(Bytes2M-1), uint64(99), true)
	f.Fuzz(func(t *testing.T, raw, pfn uint64, large bool) {
		s := Page4K
		if large {
			s = Page2M
		}
		v := Canonical(raw)
		if uint64(v.PageBase(s))+v.Offset(s) != uint64(v) {
			t.Fatalf("PageBase+Offset != VA for %v at %s", v, s)
		}
		h := Translate(v, pfn, s)
		if got := uint64(h) & (s.Bytes() - 1); got != v.Offset(s) {
			t.Fatalf("Translate dropped offset: %#x != %#x", got, v.Offset(s))
		}
		if wantPFN := pfn & (^uint64(0) >> s.Shift()); h.PFN(s) != wantPFN {
			t.Fatalf("PFN round trip: %#x != %#x", h.PFN(s), wantPFN)
		}
		if h2 := FromPFN(h.PFN(s), s, v.Offset(s)); h2 != h {
			t.Fatalf("FromPFN(PFN, Offset) = %v, want %v", h2, h)
		}
		var rebuilt uint64
		for l := PML4; l <= PT; l++ {
			rebuilt = rebuilt<<9 | Index(v, l)
		}
		if rebuilt != v.VPN(Page4K) {
			t.Fatalf("radix indices rebuild %#x, want %#x", rebuilt, v.VPN(Page4K))
		}
	})
}
