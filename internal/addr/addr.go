// Package addr provides address arithmetic shared by every layer of the
// POM-TLB simulator: virtual/physical address types, the two page sizes the
// system supports (4 KB and 2 MB), page-number extraction, and the small
// identifier types (virtual-machine and process IDs) carried by TLB entries.
//
// The simulator distinguishes three address spaces, mirroring the paper's
// terminology:
//
//	gVA — guest virtual address (what the application issues)
//	gPA — guest physical address (what the guest OS thinks is physical)
//	hPA — host physical address (what the hypervisor actually maps)
//
// All three are 64-bit values; the distinction is carried in the type system
// so a guest-physical address cannot silently be used where a host-physical
// one is required.
package addr

import "fmt"

// VA is a guest virtual address.
type VA uint64

// GPA is a guest physical address: the output of the guest page table and
// the input of the host page table.
type GPA uint64

// HPA is a host physical address: the final output of a 2D translation and
// the address space the data caches and DRAM are indexed with.
type HPA uint64

// VMID identifies a virtual machine, mirroring Intel's VPID. VMID 0 is
// reserved for the host/native execution context.
type VMID uint16

// PID identifies a process within a virtual machine.
type PID uint16

// PageSize enumerates the two translation granularities the system supports.
type PageSize uint8

const (
	// Page4K is a small 4 KB page (12 offset bits).
	Page4K PageSize = iota
	// Page2M is a large 2 MB page (21 offset bits).
	Page2M
	// Page1G is a huge 1 GB page (30 offset bits). Table 1's system has
	// 1 GB L1 TLB entries, but — as the paper notes — the workloads never
	// use them, and the POM-TLB's partitions cover only 4 KB and 2 MB.
	Page1G
)

// Shift constants for the two page sizes.
const (
	Shift4K = 12
	Shift2M = 21
	Shift1G = 30

	// Bytes4K, Bytes2M and Bytes1G are the page sizes in bytes.
	Bytes4K = 1 << Shift4K
	Bytes2M = 1 << Shift2M
	Bytes1G = 1 << Shift1G

	// CacheLineSize is the transfer granularity between caches and DRAM,
	// and — deliberately — the size of one POM-TLB set (4 × 16 B entries).
	CacheLineSize = 64

	// CacheLineShift is log2(CacheLineSize).
	CacheLineShift = 6
)

// Shift returns the number of page-offset bits for the size.
func (s PageSize) Shift() uint {
	switch s {
	case Page2M:
		return Shift2M
	case Page1G:
		return Shift1G
	}
	return Shift4K
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return 1 << s.Shift() }

// String implements fmt.Stringer.
func (s PageSize) String() string {
	switch s {
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return "4KB"
}

// Other returns the opposite POM-TLB page size, used when a page-size
// prediction misses and the alternate partition must be probed. 1 GB pages
// have no partition (the paper's design covers 4 KB and 2 MB only), so
// they are not part of this toggle.
func (s PageSize) Other() PageSize {
	if s == Page2M {
		return Page4K
	}
	return Page2M
}

// VPN returns the virtual page number of v at the given page size.
func (v VA) VPN(s PageSize) uint64 { return uint64(v) >> s.Shift() }

// PageBase returns the address of the first byte of the page containing v.
func (v VA) PageBase(s PageSize) VA { return v &^ VA(s.Bytes()-1) }

// Offset returns the byte offset of v within its page.
func (v VA) Offset(s PageSize) uint64 { return uint64(v) & (s.Bytes() - 1) }

// Line returns the cache-line index of the address (address >> 6).
func (v VA) Line() uint64 { return uint64(v) >> CacheLineShift }

// PFN returns the guest physical frame number at the given page size.
func (p GPA) PFN(s PageSize) uint64 { return uint64(p) >> s.Shift() }

// PageBase returns the first byte of the guest physical frame containing p.
func (p GPA) PageBase(s PageSize) GPA { return p &^ GPA(s.Bytes()-1) }

// PFN returns the host physical frame number at the given page size.
func (p HPA) PFN(s PageSize) uint64 { return uint64(p) >> s.Shift() }

// PageBase returns the first byte of the host physical frame containing p.
func (p HPA) PageBase(s PageSize) HPA { return p &^ HPA(s.Bytes()-1) }

// Line returns the cache-line index of the host physical address.
func (p HPA) Line() uint64 { return uint64(p) >> CacheLineShift }

// LineBase returns the address of the first byte of the 64 B line
// containing p.
func (p HPA) LineBase() HPA { return p &^ (CacheLineSize - 1) }

// FromPFN reconstructs a host physical address from a frame number, page
// size and in-page offset.
func FromPFN(pfn uint64, s PageSize, offset uint64) HPA {
	return HPA(pfn<<s.Shift() | offset&(s.Bytes()-1))
}

// Translate combines a host frame number with the page offset of a virtual
// address to produce the final host physical address.
func Translate(v VA, hpfn uint64, s PageSize) HPA {
	return HPA(hpfn<<s.Shift() | v.Offset(s))
}

// String implementations give hex forms that make simulator logs readable.

func (v VA) String() string  { return fmt.Sprintf("gVA:%#x", uint64(v)) }
func (p GPA) String() string { return fmt.Sprintf("gPA:%#x", uint64(p)) }
func (p HPA) String() string { return fmt.Sprintf("hPA:%#x", uint64(p)) }

// Radix-4 page-table index extraction. x86-64 uses 9 bits per level over a
// 48-bit canonical address: PML4 (bits 47:39), PDPT (38:30), PD (29:21),
// PT (20:12).

// Level identifies one of the four radix levels, ordered from the root.
type Level uint8

const (
	// PML4 is the root level of a radix-4 x86 table.
	PML4 Level = iota
	// PDPT is the page-directory-pointer level.
	PDPT
	// PD is the page-directory level; a 2 MB mapping terminates here.
	PD
	// PT is the leaf page-table level for 4 KB mappings.
	PT

	// NumLevels is the number of radix levels.
	NumLevels = 4
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case PML4:
		return "PML4"
	case PDPT:
		return "PDPT"
	case PD:
		return "PD"
	case PT:
		return "PT"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// indexShift returns the bit position of the 9-bit index for level l.
func (l Level) indexShift() uint { return 12 + 9*(3-uint(l)) }

// Index extracts the 9-bit radix index of v for level l.
func Index(v VA, l Level) uint64 {
	return (uint64(v) >> l.indexShift()) & 0x1FF
}

// IndexGPA extracts the 9-bit radix index of a guest physical address for
// level l; used when the host tables translate guest-physical pointers.
func IndexGPA(p GPA, l Level) uint64 {
	return (uint64(p) >> l.indexShift()) & 0x1FF
}

// Canonical truncates an address to the 48-bit canonical range used by the
// 4-level tables. Synthetic workload generators use it to keep addresses
// inside the translatable region.
func Canonical(x uint64) VA { return VA(x & ((1 << 48) - 1)) }
