package addr

import (
	"testing"
	"testing/quick"
)

func TestPageSizeShift(t *testing.T) {
	if Page4K.Shift() != 12 {
		t.Errorf("Page4K.Shift() = %d, want 12", Page4K.Shift())
	}
	if Page2M.Shift() != 21 {
		t.Errorf("Page2M.Shift() = %d, want 21", Page2M.Shift())
	}
	if Page4K.Bytes() != 4096 {
		t.Errorf("Page4K.Bytes() = %d, want 4096", Page4K.Bytes())
	}
	if Page2M.Bytes() != 2<<20 {
		t.Errorf("Page2M.Bytes() = %d, want %d", Page2M.Bytes(), 2<<20)
	}
}

func TestPageSizeString(t *testing.T) {
	if got := Page4K.String(); got != "4KB" {
		t.Errorf("Page4K.String() = %q", got)
	}
	if got := Page2M.String(); got != "2MB" {
		t.Errorf("Page2M.String() = %q", got)
	}
}

func TestPageSizeOther(t *testing.T) {
	if Page4K.Other() != Page2M {
		t.Error("Page4K.Other() != Page2M")
	}
	if Page2M.Other() != Page4K {
		t.Error("Page2M.Other() != Page4K")
	}
}

func TestVPN(t *testing.T) {
	v := VA(0x7fff_1234_5678)
	if got := v.VPN(Page4K); got != 0x7fff_1234_5678>>12 {
		t.Errorf("VPN(4K) = %#x", got)
	}
	if got := v.VPN(Page2M); got != 0x7fff_1234_5678>>21 {
		t.Errorf("VPN(2M) = %#x", got)
	}
}

func TestPageBaseAndOffset(t *testing.T) {
	v := VA(0x1234_5FFF)
	if got := v.PageBase(Page4K); got != VA(0x1234_5000) {
		t.Errorf("PageBase(4K) = %#x", uint64(got))
	}
	if got := v.Offset(Page4K); got != 0xFFF {
		t.Errorf("Offset(4K) = %#x", got)
	}
	base2m := v.PageBase(Page2M)
	if uint64(base2m)%Page2M.Bytes() != 0 {
		t.Errorf("PageBase(2M) = %#x not 2MB aligned", uint64(base2m))
	}
}

func TestTranslatePreservesOffset(t *testing.T) {
	v := VA(0xdead_beef)
	h := Translate(v, 0x42, Page4K)
	if h.PFN(Page4K) != 0x42 {
		t.Errorf("Translate PFN = %#x, want 0x42", h.PFN(Page4K))
	}
	if uint64(h)&0xFFF != uint64(v)&0xFFF {
		t.Errorf("offset not preserved: %#x vs %#x", uint64(h)&0xFFF, uint64(v)&0xFFF)
	}
}

func TestFromPFN(t *testing.T) {
	h := FromPFN(0x99, Page2M, 0x1_0042)
	if h.PFN(Page2M) != 0x99 {
		t.Errorf("FromPFN PFN = %#x", h.PFN(Page2M))
	}
	if uint64(h)&(Page2M.Bytes()-1) != 0x1_0042 {
		t.Errorf("FromPFN offset = %#x", uint64(h)&(Page2M.Bytes()-1))
	}
}

func TestLevelIndexShift(t *testing.T) {
	want := map[Level]uint{PML4: 39, PDPT: 30, PD: 21, PT: 12}
	for l, shift := range want {
		if got := l.indexShift(); got != shift {
			t.Errorf("%v.indexShift() = %d, want %d", l, got, shift)
		}
	}
}

func TestIndexExtraction(t *testing.T) {
	// Construct an address with known indices: PML4=1, PDPT=2, PD=3, PT=4.
	v := VA(1<<39 | 2<<30 | 3<<21 | 4<<12 | 0x5)
	if got := Index(v, PML4); got != 1 {
		t.Errorf("Index(PML4) = %d", got)
	}
	if got := Index(v, PDPT); got != 2 {
		t.Errorf("Index(PDPT) = %d", got)
	}
	if got := Index(v, PD); got != 3 {
		t.Errorf("Index(PD) = %d", got)
	}
	if got := Index(v, PT); got != 4 {
		t.Errorf("Index(PT) = %d", got)
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{PML4: "PML4", PDPT: "PDPT", PD: "PD", PT: "PT", Level(9): "Level(9)"}
	for l, want := range names {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint8(l), got, want)
		}
	}
}

func TestLineBase(t *testing.T) {
	p := HPA(0x1FF)
	if got := p.LineBase(); got != HPA(0x1C0) {
		t.Errorf("LineBase = %#x, want 0x1c0", uint64(got))
	}
	if p.Line() != 0x1FF>>6 {
		t.Errorf("Line = %#x", p.Line())
	}
}

// Property: translation through Translate always preserves the in-page
// offset and the requested frame number, for both page sizes.
func TestTranslateProperty(t *testing.T) {
	f := func(raw uint64, pfn uint32, large bool) bool {
		s := Page4K
		if large {
			s = Page2M
		}
		v := Canonical(raw)
		h := Translate(v, uint64(pfn), s)
		return h.PFN(s) == uint64(pfn) && uint64(h)&(s.Bytes()-1) == v.Offset(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: VPN and PageBase agree — PageBase is VPN shifted back up.
func TestVPNPageBaseProperty(t *testing.T) {
	f := func(raw uint64, large bool) bool {
		s := Page4K
		if large {
			s = Page2M
		}
		v := Canonical(raw)
		return uint64(v.PageBase(s)) == v.VPN(s)<<s.Shift()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: radix indices are always 9 bits and reconstruct the VPN.
func TestRadixIndexProperty(t *testing.T) {
	f := func(raw uint64) bool {
		v := Canonical(raw)
		var rebuilt uint64
		for l := PML4; l <= PT; l++ {
			idx := Index(v, l)
			if idx > 0x1FF {
				return false
			}
			rebuilt = rebuilt<<9 | idx
		}
		return rebuilt == v.VPN(Page4K)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonical(t *testing.T) {
	v := Canonical(0xFFFF_FFFF_FFFF_FFFF)
	if uint64(v) != (1<<48)-1 {
		t.Errorf("Canonical = %#x", uint64(v))
	}
}

func TestStringForms(t *testing.T) {
	if VA(0x10).String() != "gVA:0x10" {
		t.Errorf("VA.String() = %q", VA(0x10).String())
	}
	if GPA(0x20).String() != "gPA:0x20" {
		t.Errorf("GPA.String() = %q", GPA(0x20).String())
	}
	if HPA(0x30).String() != "hPA:0x30" {
		t.Errorf("HPA.String() = %q", HPA(0x30).String())
	}
}

func TestPage1G(t *testing.T) {
	if Page1G.Shift() != 30 || Page1G.Bytes() != 1<<30 {
		t.Error("Page1G geometry wrong")
	}
	if Page1G.String() != "1GB" {
		t.Errorf("Page1G.String() = %q", Page1G.String())
	}
	v := VA(0x40_0000_0000 + 12345)
	if v.VPN(Page1G) != 0x100 {
		t.Errorf("VPN(1G) = %#x", v.VPN(Page1G))
	}
	if v.Offset(Page1G) != 12345 {
		t.Errorf("Offset(1G) = %d", v.Offset(Page1G))
	}
}
