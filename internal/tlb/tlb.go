// Package tlb implements the on-chip SRAM TLBs of Table 1: per-core split
// L1 TLBs (64-entry 4 KB + 32-entry 2 MB, both 4-way) and a unified
// 1536-entry 12-way L2 TLB holding both page sizes. The same structure
// also backs the Shared_L2 comparison scheme (one large TLB shared by all
// cores) and supports the invalidation operations TLB shootdowns need.
package tlb

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/stats"
)

// Entry is one cached translation: (VM, process, virtual page) → host frame.
// Unlike a page-table entry, it represents the *complete* 2D translation,
// which is exactly the property the POM-TLB exploits.
type Entry struct {
	VM    addr.VMID
	PID   addr.PID
	VPN   uint64 // virtual page number at Size granularity
	PFN   uint64 // host physical frame number at Size granularity
	Size  addr.PageSize
	Valid bool
}

// matches reports whether the entry translates the given page.
func (e Entry) matches(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	return e.Valid && e.VM == vm && e.PID == pid && e.VPN == vpn && e.Size == size
}

// Config describes one SRAM TLB.
type Config struct {
	// Name labels the TLB in stats output.
	Name string
	// Entries is the total entry count.
	Entries int
	// Ways is the associativity.
	Ways int
	// Latency is the lookup latency in cycles (L1 TLB lookups are folded
	// into the pipeline, so L1 configs use 0; the L2 TLB's 9-cycle cost is
	// the L1 miss penalty of Table 1).
	Latency uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0 || c.Ways <= 0:
		return fmt.Errorf("tlb %q: entries and ways must be positive", c.Name)
	case c.Entries%c.Ways != 0:
		return fmt.Errorf("tlb %q: %d entries not divisible by %d ways", c.Name, c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb %q: %d sets is not a power of two", c.Name, sets)
	}
	return nil
}

// Table 1 TLB configurations.

// L1Small returns the 64-entry 4-way 4 KB L1 TLB.
func L1Small() Config { return Config{Name: "L1TLB-4K", Entries: 64, Ways: 4} }

// L1Large returns the 32-entry 4-way 2 MB L1 TLB.
func L1Large() Config { return Config{Name: "L1TLB-2M", Entries: 32, Ways: 4} }

// L1Huge returns the 1 GB L1 TLB (present in the Table 1 system; the
// paper's applications never use it).
func L1Huge() Config { return Config{Name: "L1TLB-1G", Entries: 4, Ways: 4} }

// L2Unified returns the 1536-entry 12-way unified L2 TLB.
func L2Unified() Config { return Config{Name: "L2TLB", Entries: 1536, Ways: 12, Latency: 9} }

// SharedL2 returns the Shared_L2 comparison scheme's TLB: the combined
// capacity of N cores' private L2 TLBs in one shared structure (modelled
// after Bhattacharjee et al.). The latency reflects the Figure 4 scaling
// argument: a 12K-entry (~200 KB) SRAM array is ≈2.4× slower than a
// 16 KB one, plus a cross-core interconnect round trip — which is exactly
// why the paper argues against simply growing SRAM TLBs.
func SharedL2(cores int) Config {
	return Config{
		Name:    "Shared-L2TLB",
		Entries: 1536 * cores,
		Ways:    12,
		Latency: 24,
	}
}

// Shadow observes every decision the TLB makes, in program order. The
// differential oracle (internal/oracle) attaches one per TLB and replays
// each operation against an independent map+LRU-list reference model,
// flagging any disagreement in hit/miss outcome, returned entry or
// eviction choice. A nil shadow costs one branch per operation.
type Shadow interface {
	// LookupSize reports one single-size probe: the production outcome
	// (hit and, on a hit, the entry) for (vm, pid, va) at size.
	LookupSize(vm addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize, hit bool, e Entry)
	// Insert reports one insertion and the production eviction decision.
	Insert(e Entry, victim Entry, evicted bool)
	// InvalidatePage reports a single-page shootdown and whether the page
	// was present.
	InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize, found bool)
	// InvalidateProcess reports a process flush and how many entries the
	// production model dropped.
	InvalidateProcess(vm addr.VMID, pid addr.PID, n int)
	// InvalidateVM reports a VM flush and how many entries were dropped.
	InvalidateVM(vm addr.VMID, n int)
	// InvalidateAll reports a full flush.
	InvalidateAll()
}

// slot is one TLB way.
type slot struct {
	entry Entry
	lru   uint64
}

// hook wraps an attached Shadow behind a concrete pointer: the
// unobserved hot path pays a single-word nil check instead of a
// two-word interface comparison, and the virtual call sits behind a
// branch the CPU predicts never-taken when no oracle is attached.
type hook struct{ s Shadow }

// TLB is a set-associative translation lookaside buffer for a single page
// size class, or for both when used as a unified structure (the page size
// is part of the tag and the set index is computed at each size). All
// ways live in one contiguous slot array; set i occupies
// slots[i*Ways : (i+1)*Ways].
type TLB struct {
	cfg     Config
	slots   []slot
	ways    int
	setMask uint64
	clock   uint64
	stats   stats.HitMiss
	shadow  *hook
}

// New creates a TLB, reporting configuration errors.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Entries / cfg.Ways
	return &TLB{
		cfg:     cfg,
		slots:   make([]slot, cfg.Entries),
		ways:    cfg.Ways,
		setMask: uint64(n - 1),
	}, nil
}

// MustNew is New but panics on invalid configuration — the historical
// behavior, used by call sites whose configuration was already validated.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// SetShadow attaches (or, with nil, detaches) a lockstep observer.
func (t *TLB) SetShadow(s Shadow) {
	if s == nil {
		t.shadow = nil
		return
	}
	t.shadow = &hook{s}
}

// Latency returns the lookup latency in cycles.
func (t *TLB) Latency() uint64 { return t.cfg.Latency }

// setFor returns the set for a VPN.
func (t *TLB) setFor(vpn uint64) []slot {
	i := (vpn & t.setMask) * uint64(t.ways)
	return t.slots[i : i+uint64(t.ways)]
}

// lookupSize probes one page-size interpretation of va.
func (t *TLB) lookupSize(vm addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) (Entry, bool) {
	vpn := va.VPN(size)
	set := t.setFor(vpn)
	for i := range set {
		if set[i].entry.matches(vm, pid, vpn, size) {
			t.clock++
			set[i].lru = t.clock
			if t.shadow != nil {
				t.shadow.s.LookupSize(vm, pid, va, size, true, set[i].entry)
			}
			return set[i].entry, true
		}
	}
	if t.shadow != nil {
		t.shadow.s.LookupSize(vm, pid, va, size, false, Entry{})
	}
	return Entry{}, false
}

// Lookup probes both page-size interpretations of va (hardware probes the
// split/unified structures in parallel) and records one hit or miss.
func (t *TLB) Lookup(vm addr.VMID, pid addr.PID, va addr.VA) (Entry, bool) {
	if e, ok := t.lookupSize(vm, pid, va, addr.Page4K); ok {
		t.stats.Hit()
		return e, true
	}
	if e, ok := t.lookupSize(vm, pid, va, addr.Page2M); ok {
		t.stats.Hit()
		return e, true
	}
	if e, ok := t.lookupSize(vm, pid, va, addr.Page1G); ok {
		t.stats.Hit()
		return e, true
	}
	t.stats.Miss()
	return Entry{}, false
}

// LookupOnly probes for a specific page size without touching statistics or
// LRU state; used by consistency checks in tests.
func (t *TLB) LookupOnly(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	for _, s := range t.setFor(vpn) {
		if s.entry.matches(vm, pid, vpn, size) {
			return true
		}
	}
	return false
}

// Insert adds a translation, evicting the set's LRU entry when full. The
// displaced entry (if any) is returned so a caller can maintain a victim
// path or (for the POM-TLB hierarchy) write it down a level.
func (t *TLB) Insert(e Entry) (victim Entry, evicted bool) {
	if !e.Valid {
		return Entry{}, false
	}
	t.clock++
	set := t.setFor(e.VPN)
	// Scan the whole set for a match before choosing a victim: stopping
	// the search at an invalid way would miss a matching entry beyond it
	// and install a duplicate.
	for i := range set {
		s := &set[i]
		if s.entry.matches(e.VM, e.PID, e.VPN, e.Size) {
			s.entry = e // refresh (PFN may have changed after remap)
			s.lru = t.clock
			if t.shadow != nil {
				t.shadow.s.Insert(e, Entry{}, false)
			}
			return Entry{}, false
		}
	}
	vi := 0
	for i := range set {
		if !set[i].entry.Valid {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	s := &set[vi]
	if s.entry.Valid {
		victim, evicted = s.entry, true
	}
	s.entry = e
	s.lru = t.clock
	if t.shadow != nil {
		t.shadow.s.Insert(e, victim, evicted)
	}
	return victim, evicted
}

// InvalidatePage drops one translation (TLB shootdown of a single page).
func (t *TLB) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	found := false
	set := t.setFor(vpn)
	for i := range set {
		if set[i].entry.matches(vm, pid, vpn, size) {
			set[i] = slot{}
			found = true
			break
		}
	}
	if t.shadow != nil {
		t.shadow.s.InvalidatePage(vm, pid, vpn, size, found)
	}
	return found
}

// InvalidateVM drops every translation belonging to a VM (VM teardown) and
// returns how many entries were removed.
func (t *TLB) InvalidateVM(vm addr.VMID) int {
	n := 0
	for i := range t.slots {
		if t.slots[i].entry.Valid && t.slots[i].entry.VM == vm {
			t.slots[i] = slot{}
			n++
		}
	}
	if t.shadow != nil {
		t.shadow.s.InvalidateVM(vm, n)
	}
	return n
}

// InvalidateProcess drops every translation of (vm, pid) — the shootdown
// a process exit requires before its PID can be recycled (§2.2).
func (t *TLB) InvalidateProcess(vm addr.VMID, pid addr.PID) int {
	n := 0
	for i := range t.slots {
		e := t.slots[i].entry
		if e.Valid && e.VM == vm && e.PID == pid {
			t.slots[i] = slot{}
			n++
		}
	}
	if t.shadow != nil {
		t.shadow.s.InvalidateProcess(vm, pid, n)
	}
	return n
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.slots {
		t.slots[i] = slot{}
	}
	if t.shadow != nil {
		t.shadow.s.InvalidateAll()
	}
}

// Count returns the number of valid entries (for occupancy tests).
func (t *TLB) Count() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].entry.Valid {
			n++
		}
	}
	return n
}

// CheckInvariants validates the TLB's internal structural invariants:
// every valid entry resides in the set its VPN indexes, LRU stamps are
// unique within a set and never ahead of the TLB clock (the LRU stack
// property), and no translation is duplicated anywhere in the structure.
// It returns the first violation found, or nil.
func (t *TLB) CheckInvariants() error {
	type key struct {
		vm   addr.VMID
		pid  addr.PID
		vpn  uint64
		size addr.PageSize
	}
	seen := make(map[key]uint64, t.cfg.Entries)
	numSets := len(t.slots) / t.ways
	for si := 0; si < numSets; si++ {
		set := t.slots[si*t.ways : (si+1)*t.ways]
		stamps := make(map[uint64]int, len(set))
		for wi := range set {
			e := set[wi].entry
			if !e.Valid {
				continue
			}
			if want := e.VPN & t.setMask; want != uint64(si) {
				return fmt.Errorf("tlb %q: entry %v resident in set %d, its VPN indexes set %d",
					t.cfg.Name, e, si, want)
			}
			lru := set[wi].lru
			if lru > t.clock {
				return fmt.Errorf("tlb %q: set %d way %d LRU stamp %d ahead of clock %d",
					t.cfg.Name, si, wi, lru, t.clock)
			}
			if prev, dup := stamps[lru]; dup {
				return fmt.Errorf("tlb %q: set %d ways %d and %d share LRU stamp %d",
					t.cfg.Name, si, prev, wi, lru)
			}
			stamps[lru] = wi
			k := key{e.VM, e.PID, e.VPN, e.Size}
			if prev, dup := seen[k]; dup {
				return fmt.Errorf("tlb %q: %v duplicated in sets %d and %d",
					t.cfg.Name, e, prev, si)
			}
			seen[k] = uint64(si)
		}
	}
	return nil
}

// Stats returns the hit/miss counters.
func (t *TLB) Stats() stats.HitMiss { return t.stats }

// ResetStats clears counters; contents are untouched.
func (t *TLB) ResetStats() { t.stats = stats.HitMiss{} }

// SplitL1 models the per-core trio of L1 TLBs — one per page size, as in
// Skylake (Table 1: separate L1 TLBs for 4 KB, 2 MB and 1 GB, 9-cycle miss
// penalty into the unified L2).
type SplitL1 struct {
	Small *TLB
	Large *TLB
	Huge  *TLB
}

// NewSplitL1 builds a split L1 from per-size configurations, reporting
// configuration errors.
func NewSplitL1(small, large, huge Config) (*SplitL1, error) {
	s, err := New(small)
	if err != nil {
		return nil, err
	}
	l, err := New(large)
	if err != nil {
		return nil, err
	}
	h, err := New(huge)
	if err != nil {
		return nil, err
	}
	return &SplitL1{Small: s, Large: l, Huge: h}, nil
}

// MustNewSplitL1 is NewSplitL1 but panics on invalid configuration,
// following the New/MustNew convention.
func MustNewSplitL1(small, large, huge Config) *SplitL1 {
	l, err := NewSplitL1(small, large, huge)
	if err != nil {
		panic(err)
	}
	return l
}

// DefaultSplitL1 builds the Table 1 L1 TLB set.
func DefaultSplitL1() *SplitL1 {
	return MustNewSplitL1(L1Small(), L1Large(), L1Huge())
}

// Lookup probes all structures in parallel (single cycle in hardware).
func (l *SplitL1) Lookup(vm addr.VMID, pid addr.PID, va addr.VA) (Entry, bool) {
	if e, ok := l.Small.lookupSize(vm, pid, va, addr.Page4K); ok {
		l.Small.stats.Hit()
		return e, true
	}
	if e, ok := l.Large.lookupSize(vm, pid, va, addr.Page2M); ok {
		l.Large.stats.Hit()
		return e, true
	}
	if e, ok := l.Huge.lookupSize(vm, pid, va, addr.Page1G); ok {
		l.Huge.stats.Hit()
		return e, true
	}
	l.Small.stats.Miss()
	return Entry{}, false
}

// structFor returns the structure holding entries of the given size.
func (l *SplitL1) structFor(size addr.PageSize) *TLB {
	switch size {
	case addr.Page2M:
		return l.Large
	case addr.Page1G:
		return l.Huge
	}
	return l.Small
}

// Insert routes the entry to the structure for its page size.
func (l *SplitL1) Insert(e Entry) {
	l.structFor(e.Size).Insert(e)
}

// InvalidatePage shoots one page out of whichever structure holds it.
func (l *SplitL1) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	return l.structFor(size).InvalidatePage(vm, pid, vpn, size)
}

// InvalidateAll flushes all structures.
func (l *SplitL1) InvalidateAll() {
	l.Small.InvalidateAll()
	l.Large.InvalidateAll()
	l.Huge.InvalidateAll()
}

// MissRatio returns the combined L1 miss ratio (misses are recorded on the
// small structure's counter once per joint probe).
func (l *SplitL1) MissRatio() float64 {
	hm := l.Small.Stats()
	hm.Add(l.Large.Stats())
	return hm.MissRatio()
}
