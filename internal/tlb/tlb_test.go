package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func entry4K(vm addr.VMID, pid addr.PID, vpn, pfn uint64) Entry {
	return Entry{VM: vm, PID: pid, VPN: vpn, PFN: pfn, Size: addr.Page4K, Valid: true}
}

func TestTable1Configs(t *testing.T) {
	for _, cfg := range []Config{L1Small(), L1Large(), L2Unified(), SharedL2(8)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if L2Unified().Entries != 1536 || L2Unified().Ways != 12 {
		t.Error("L2Unified geometry wrong")
	}
	if SharedL2(8).Entries != 1536*8 {
		t.Error("SharedL2 should combine 8 cores' capacity")
	}
}

func TestValidateRejectsBad(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "indiv", Entries: 10, Ways: 3},
		{Name: "npo2", Entries: 12, Ways: 2}, // 6 sets
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("%s should be invalid", c.Name)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestLookupInsertRoundtrip(t *testing.T) {
	tl := MustNew(L2Unified())
	va := addr.VA(0x7f12_3456_7000)
	if _, ok := tl.Lookup(1, 2, va); ok {
		t.Error("cold lookup should miss")
	}
	tl.Insert(entry4K(1, 2, va.VPN(addr.Page4K), 0x42))
	e, ok := tl.Lookup(1, 2, va)
	if !ok || e.PFN != 0x42 || e.Size != addr.Page4K {
		t.Errorf("lookup after insert = %+v, %v", e, ok)
	}
}

func TestTwoPageSizesCoexist(t *testing.T) {
	tl := MustNew(L2Unified())
	va := addr.VA(0x4000_0000)
	tl.Insert(entry4K(1, 1, va.VPN(addr.Page4K), 0x10))
	tl.Insert(Entry{VM: 1, PID: 1, VPN: addr.VA(0x8000_0000).VPN(addr.Page2M), PFN: 0x20, Size: addr.Page2M, Valid: true})
	if e, ok := tl.Lookup(1, 1, va); !ok || e.Size != addr.Page4K {
		t.Errorf("4K lookup = %+v, %v", e, ok)
	}
	if e, ok := tl.Lookup(1, 1, 0x8000_0123); !ok || e.Size != addr.Page2M || e.PFN != 0x20 {
		t.Errorf("2M lookup = %+v, %v", e, ok)
	}
}

func TestVMIsolation(t *testing.T) {
	tl := MustNew(L2Unified())
	va := addr.VA(0x1000)
	tl.Insert(entry4K(1, 1, va.VPN(addr.Page4K), 0x42))
	if _, ok := tl.Lookup(2, 1, va); ok {
		t.Error("VM 2 should not see VM 1's translation")
	}
	if _, ok := tl.Lookup(1, 9, va); ok {
		t.Error("PID 9 should not see PID 1's translation")
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := Config{Name: "t", Entries: 4, Ways: 2} // 2 sets
	tl := MustNew(cfg)
	// Set 0 entries: VPNs 0, 2, 4 (all even → set 0).
	tl.Insert(entry4K(1, 1, 0, 100))
	tl.Insert(entry4K(1, 1, 2, 102))
	tl.Lookup(1, 1, 0) // touch VPN 0; VPN 2 is LRU
	victim, evicted := tl.Insert(entry4K(1, 1, 4, 104))
	if !evicted || victim.VPN != 2 {
		t.Errorf("victim = %+v, evicted = %v, want VPN 2", victim, evicted)
	}
	if !tl.LookupOnly(1, 1, 0, addr.Page4K) || !tl.LookupOnly(1, 1, 4, addr.Page4K) {
		t.Error("expected VPNs 0 and 4 resident")
	}
}

func TestInsertRefreshExisting(t *testing.T) {
	tl := MustNew(L2Unified())
	tl.Insert(entry4K(1, 1, 5, 100))
	victim, evicted := tl.Insert(entry4K(1, 1, 5, 200)) // remap
	if evicted {
		t.Errorf("refresh should not evict, got %+v", victim)
	}
	e, ok := tl.Lookup(1, 1, addr.VA(5<<12))
	if !ok || e.PFN != 200 {
		t.Errorf("remapped entry = %+v", e)
	}
	if tl.Count() != 1 {
		t.Errorf("Count = %d, want 1", tl.Count())
	}
}

func TestInsertInvalidIgnored(t *testing.T) {
	tl := MustNew(L2Unified())
	tl.Insert(Entry{})
	if tl.Count() != 0 {
		t.Error("invalid entry should not be inserted")
	}
}

func TestInvalidatePage(t *testing.T) {
	tl := MustNew(L2Unified())
	tl.Insert(entry4K(1, 1, 7, 100))
	if !tl.InvalidatePage(1, 1, 7, addr.Page4K) {
		t.Error("InvalidatePage should find the entry")
	}
	if tl.InvalidatePage(1, 1, 7, addr.Page4K) {
		t.Error("second InvalidatePage should miss")
	}
	if _, ok := tl.Lookup(1, 1, addr.VA(7<<12)); ok {
		t.Error("entry survived shootdown")
	}
}

func TestInvalidateVM(t *testing.T) {
	tl := MustNew(L2Unified())
	for vpn := uint64(0); vpn < 10; vpn++ {
		tl.Insert(entry4K(1, 1, vpn, vpn))
		tl.Insert(entry4K(2, 1, vpn+1000, vpn))
	}
	if n := tl.InvalidateVM(1); n != 10 {
		t.Errorf("InvalidateVM removed %d, want 10", n)
	}
	if tl.Count() != 10 {
		t.Errorf("Count = %d, want 10 (VM 2 untouched)", tl.Count())
	}
}

func TestInvalidateAll(t *testing.T) {
	tl := MustNew(L2Unified())
	tl.Insert(entry4K(1, 1, 1, 1))
	tl.InvalidateAll()
	if tl.Count() != 0 {
		t.Error("InvalidateAll left entries")
	}
}

func TestStats(t *testing.T) {
	tl := MustNew(L2Unified())
	tl.Lookup(1, 1, 0x1000) // miss
	tl.Insert(entry4K(1, 1, 1, 1))
	tl.Lookup(1, 1, 0x1000) // hit
	s := tl.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	tl.ResetStats()
	if tl.Stats().Total() != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestSplitL1(t *testing.T) {
	l1 := DefaultSplitL1()
	va4 := addr.VA(0x1234_5000)
	va2 := addr.VA(0x8000_0000)
	l1.Insert(entry4K(1, 1, va4.VPN(addr.Page4K), 0x11))
	l1.Insert(Entry{VM: 1, PID: 1, VPN: va2.VPN(addr.Page2M), PFN: 0x22, Size: addr.Page2M, Valid: true})

	if e, ok := l1.Lookup(1, 1, va4); !ok || e.PFN != 0x11 {
		t.Errorf("4K L1 lookup = %+v, %v", e, ok)
	}
	if e, ok := l1.Lookup(1, 1, va2+0x123); !ok || e.PFN != 0x22 {
		t.Errorf("2M L1 lookup = %+v, %v", e, ok)
	}
	if _, ok := l1.Lookup(1, 1, 0xdead_0000_0000); ok {
		t.Error("unmapped lookup should miss")
	}
	if l1.Small.Count() != 1 || l1.Large.Count() != 1 {
		t.Error("entries routed to wrong structure")
	}
	if !l1.InvalidatePage(1, 1, va2.VPN(addr.Page2M), addr.Page2M) {
		t.Error("2M shootdown failed")
	}
	l1.InvalidateAll()
	if l1.Small.Count() != 0 {
		t.Error("InvalidateAll failed")
	}
	if l1.MissRatio() == 0 {
		t.Error("MissRatio should be nonzero after misses")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	tl := MustNew(L1Small()) // 64 entries
	for vpn := uint64(0); vpn < 1000; vpn++ {
		tl.Insert(entry4K(1, 1, vpn, vpn))
	}
	if tl.Count() > 64 {
		t.Errorf("Count = %d exceeds capacity", tl.Count())
	}
}

// Property: inserting then looking up the same page always hits, for both
// page sizes and arbitrary IDs.
func TestInsertLookupProperty(t *testing.T) {
	tl := MustNew(L2Unified())
	f := func(raw uint64, vm uint8, pid uint8, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		va := addr.Canonical(raw)
		e := Entry{VM: addr.VMID(vm), PID: addr.PID(pid), VPN: va.VPN(size), PFN: raw % (1 << 20), Size: size, Valid: true}
		tl.Insert(e)
		got, ok := tl.Lookup(e.VM, e.PID, va)
		return ok && got.PFN == e.PFN && got.Size == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: eviction victims were genuinely resident — re-looking them up
// misses afterwards only if the set displaced them, never spuriously.
func TestEvictionVictimProperty(t *testing.T) {
	tl := MustNew(Config{Name: "p", Entries: 8, Ways: 2})
	f := func(vpn uint16) bool {
		victim, evicted := tl.Insert(entry4K(1, 1, uint64(vpn), uint64(vpn)))
		if evicted && tl.LookupOnly(victim.VM, victim.PID, victim.VPN, victim.Size) {
			return false // victim should be gone
		}
		return tl.LookupOnly(1, 1, uint64(vpn), addr.Page4K)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidateProcess(t *testing.T) {
	tl := MustNew(L2Unified())
	for vpn := uint64(0); vpn < 5; vpn++ {
		tl.Insert(entry4K(1, 1, vpn, vpn))
		tl.Insert(entry4K(1, 2, vpn+100, vpn))
	}
	if n := tl.InvalidateProcess(1, 1); n != 5 {
		t.Errorf("removed %d, want 5", n)
	}
	if tl.Count() != 5 {
		t.Errorf("PID 2's entries should survive, count = %d", tl.Count())
	}
	if n := tl.InvalidateProcess(1, 9); n != 0 {
		t.Errorf("unknown PID removed %d", n)
	}
}

func TestSplitL1HugePages(t *testing.T) {
	l1 := DefaultSplitL1()
	va := addr.VA(0x40_0000_0000)
	l1.Insert(Entry{VM: 1, PID: 1, VPN: va.VPN(addr.Page1G), PFN: 0x33, Size: addr.Page1G, Valid: true})
	if e, ok := l1.Lookup(1, 1, va+777); !ok || e.PFN != 0x33 || e.Size != addr.Page1G {
		t.Errorf("1G lookup = %+v, %v", e, ok)
	}
	if l1.Huge.Count() != 1 {
		t.Errorf("huge TLB count = %d", l1.Huge.Count())
	}
	if !l1.InvalidatePage(1, 1, va.VPN(addr.Page1G), addr.Page1G) {
		t.Error("1G shootdown failed")
	}
}

func TestUnifiedL2Holds1G(t *testing.T) {
	tl := MustNew(L2Unified())
	va := addr.VA(0x80_0000_0000)
	tl.Insert(Entry{VM: 1, PID: 1, VPN: va.VPN(addr.Page1G), PFN: 0x44, Size: addr.Page1G, Valid: true})
	if e, ok := tl.Lookup(1, 1, va+123); !ok || e.Size != addr.Page1G {
		t.Errorf("unified 1G lookup = %+v, %v", e, ok)
	}
}
