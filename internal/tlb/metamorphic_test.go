package tlb

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
)

// TestHitRatioMonotoneInWays is the associativity metamorphic property:
// with the set count held fixed, adding ways only adds capacity, and true
// LRU within a set has the stack (inclusion) property — so the hit ratio
// over any fixed reference stream must be non-decreasing in the way
// count. A violation means replacement is not LRU (or indexing leaks
// across sets).
func TestHitRatioMonotoneInWays(t *testing.T) {
	const sets = 16
	// One skewed, seeded stream shared by every geometry: ~80% of
	// references land in a hot quarter of the page pool, like a real
	// workload's locality.
	rng := rand.New(rand.NewSource(42))
	const pages = 4 * sets // 4 pages per set on average
	stream := make([]addr.VA, 60_000)
	for i := range stream {
		p := rng.Intn(pages)
		if rng.Intn(10) < 8 {
			p = rng.Intn(pages / 4)
		}
		stream[i] = addr.VA(uint64(p) << addr.Shift4K)
	}
	prev := -1.0
	for _, ways := range []int{1, 2, 4, 8} {
		tl := MustNew(Config{Name: "meta", Entries: sets * ways, Ways: ways})
		for _, va := range stream {
			if _, ok := tl.Lookup(1, 1, va); !ok {
				tl.Insert(Entry{VM: 1, PID: 1, VPN: va.VPN(addr.Page4K),
					PFN: uint64(va) >> addr.Shift4K, Size: addr.Page4K, Valid: true})
			}
		}
		ratio := tl.Stats().Ratio()
		if ratio < prev {
			t.Errorf("hit ratio fell from %.4f to %.4f going to %d ways", prev, ratio, ways)
		}
		prev = ratio
		if err := tl.CheckInvariants(); err != nil {
			t.Errorf("%d ways: %v", ways, err)
		}
	}
	if prev <= 0 {
		t.Fatal("stream produced no hits at the largest geometry; property vacuous")
	}
}
