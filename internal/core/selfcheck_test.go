package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/resilience/faultinject"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestSelfCheckAllSchemesClean is the acceptance matrix: three workloads
// across the 2D-walk baseline, POM-TLB and TSB schemes, each run under
// full differential verification — every TLB/cache/DRAM/POM decision
// diffed against its reference model, structural invariants swept
// periodically, the walker cross-checked against the logical translation
// path, and the Result's conservation identities verified. Any
// divergence or violation fails.
func TestSelfCheckAllSchemesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full verification matrix is slow")
	}
	for _, wl := range []string{"gups", "mcf", "graph500"} {
		for _, mode := range []Mode{Baseline, POMTLB, TSB} {
			t.Run(wl+"/"+mode.String(), func(t *testing.T) {
				p, ok := workloads.ByName(wl)
				if !ok {
					t.Fatalf("unknown workload %q", wl)
				}
				cfg := smallConfig(mode)
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				sc := sys.EnableSelfCheck()
				res, err := sys.Run(context.Background(), p.Generator(cfg.Cores, cfg.Seed), p.Name)
				if err != nil {
					t.Fatal(err)
				}
				if err := sc.Err(); err != nil {
					t.Errorf("%s", sc.Report())
					t.Fatal(err)
				}
				if sc.Harness().Decisions() == 0 {
					t.Fatal("self-check ran but checked nothing")
				}
				if err := res.CheckAccounting(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSelfCheckCatchesInjectedCorruption wires the fault-injection layer
// through the differential harness: a faultinject.CallOn callback fires
// mid-run and mutates production POM-TLB state directly — bypassing the
// shadow hooks, exactly like memory corruption or a state-update bug
// would — and the oracle must report the drift as a divergence. This is
// the negative test proving the watchdog itself works.
func TestSelfCheckCatchesInjectedCorruption(t *testing.T) {
	cfg := smallConfig(POMTLB)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := sys.EnableSelfCheck()
	sched := faultinject.NewSchedule()
	corrupted := 0
	// At the 120,000th trace record (inside warmup, once the POM-TLB is
	// well-populated), flip the PFNs of several resident translations
	// behind the shadow's back — the reference keeps the old PFNs, so the
	// next search hit on any corrupted page must diverge.
	sched.CallOn(faultinject.TraceSite, func() {
		part := sys.POM().Small
		part.SetShadow(nil)
		defer part.SetShadow(sc.pomSmall)
		for vpn := uint64(0); vpn < 1<<16 && corrupted < 8; vpn += 4 {
			for _, e := range part.SetEntries(addr.VA(vpn<<12), 1) {
				if e.Valid {
					e.PFN ^= 0xFFF
					part.Insert(e) // refresh path: rewrites the PFN in place
					corrupted++
					break
				}
			}
		}
	}, 120_000)
	g := faultinject.Wrap(trace.NewUniform(gupsParams(cfg.Cores)), sched)
	if _, err := sys.Run(context.Background(), g, "corrupted"); err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("fault callback found no resident entries to corrupt")
	}
	if sc.Harness().Divergences() == 0 {
		t.Fatal("oracle did not report injected POM-TLB corruption as a divergence")
	}
}

// TestSelfCheckRecordCorruptionNoFalsePositives is the complement: a
// Corrupt fault mutates the trace record *before* it reaches the
// simulator, so production and reference models see the same (corrupted)
// stream — the oracle must stay silent. Record corruption changes
// results, not model agreement.
func TestSelfCheckRecordCorruptionNoFalsePositives(t *testing.T) {
	cfg := smallConfig(POMTLB)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := sys.EnableSelfCheck()
	sched := faultinject.NewSchedule()
	for _, n := range []uint64{10_000, 50_000, 170_000} {
		sched.CorruptOn(faultinject.TraceSite, n)
	}
	g := faultinject.Wrap(trace.NewUniform(gupsParams(cfg.Cores)), sched)
	if _, err := sys.Run(context.Background(), g, "record-corrupt"); err != nil {
		t.Fatal(err)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("record corruption must not diverge the oracle: %v", err)
	}
	if sched.Hits(faultinject.TraceSite) == 0 {
		t.Fatal("corruption schedule never fired")
	}
}

// TestSameSeedIdenticalResults is the determinism metamorphic property
// at the core level: two systems built from the same Config and fed the
// same seeded generator must produce deeply-equal Results.
func TestSameSeedIdenticalResults(t *testing.T) {
	run := func() Result {
		sys, err := NewSystem(smallConfig(POMTLB))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(context.Background(), trace.NewUniform(gupsParams(2)), "det")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds produced different results:\n%+v\nvs\n%+v", a, b)
	}
}

// TestBypassOffProbesOnlyGrow is the bypass metamorphic property: with
// the bypass predictor disabled every POM-TLB set lookup probes the L2
// data cache, so the probe count can only grow (and the resolution mix
// shifts toward the caches, never away).
func TestBypassOffProbesOnlyGrow(t *testing.T) {
	run := func(disable bool) Result {
		cfg := smallConfig(POMTLB)
		cfg.DisableBypassPredictor = disable
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(context.Background(), trace.NewUniform(gupsParams(cfg.Cores)), "bypass")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on, off := run(false), run(true)
	if off.L2DProbe.Total() < on.L2DProbe.Total() {
		t.Errorf("disabling bypass shrank L2D probes: %d < %d",
			off.L2DProbe.Total(), on.L2DProbe.Total())
	}
	if off.BypassPred.Total() != 0 {
		t.Errorf("bypass predictor consulted %d times while disabled", off.BypassPred.Total())
	}
	// Every post-L2-miss lookup must start at the L2D$ when bypass is off.
	if off.L2DProbe.Total() == 0 {
		t.Error("bypass-off run never probed the L2D$")
	}
}
