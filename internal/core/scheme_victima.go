package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/oracle"
	"repro/internal/tlb"
	"repro/internal/victima"
)

// victimaLineBase is the synthetic cache-line address of core 0's block 0.
// It sits far above every simulated physical line (the hypervisor
// allocates frames from zero upward), so victima blocks can occupy real
// L2 data-cache ways without ever colliding with a data line. Cores'
// block ranges follow each other contiguously.
const victimaLineBase = uint64(1) << 52

// victimaScheme registers Victima (Kanellopoulos et al., arXiv
// 2310.04158): TLB entries live in blocks stored in each core's L2 *data*
// cache, donated way-by-way, with a PTE-aware replacement policy. The
// logical directory is a per-core victima.Store; the timing half is the
// real simulated L2 — blocks compete with data lines, and a block evicted
// under data pressure takes its translations with it (the fillL2 DropLine
// hook). With DonatedWays == 0 no store is built and the scheme is the
// exact baseline.
type victimaScheme struct{ baseScheme }

func (victimaScheme) Name() Mode { return Victima }
func (victimaScheme) Describe() string {
	return "TLB entries in L2 data-cache ways with PTE-aware replacement (Victima, arXiv 2310.04158)"
}
func (victimaScheme) Validate(cfg *Config) error { return cfg.VictimaCfg.Validate() }

func (victimaScheme) Build(s *System) {
	cfg := s.cfg.VictimaCfg
	if cfg.DonatedWays == 0 {
		return // degenerate baseline: no store, victimaPath falls through
	}
	if cfg.Sets == 0 {
		// One potential block per L2 data-cache set, so the donation is
		// bounded by DonatedWays ways of every set.
		cfg.Sets = s.cfg.L2.Sets()
	}
	s.vict = make([]*victima.Store, s.cfg.Cores)
	for i := range s.vict {
		s.vict[i] = victima.MustNew(cfg, victimaLineBase+uint64(i)*cfg.Sets)
	}
}

func (victimaScheme) Path(s *System, c *coreState, va addr.VA) tlb.Entry {
	return s.victimaPath(c, va)
}

func (victimaScheme) Shootdown(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, vpn uint64, size addr.PageSize) {
	for _, v := range s.vict {
		v.InvalidatePage(vmid, pid, vpn, size)
	}
}

func (victimaScheme) ProcessExit(s *System, vmid addr.VMID, pid addr.PID) int {
	n := 0
	for _, v := range s.vict {
		n += v.InvalidateProcess(vmid, pid)
	}
	return n
}

func (victimaScheme) Holds(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) bool {
	for _, v := range s.vict {
		if v.LookupOnly(vmid, pid, va.VPN(size), size) {
			return true
		}
	}
	return false
}

func (victimaScheme) AttachSelfCheck(s *System, sc *SelfCheck) {
	for _, v := range s.vict {
		oracle.NewRefVictima(sc.h, v)
	}
}

// CheckInvariants validates each store and the residency contract: every
// occupied block's line must be resident in its core's L2 data cache
// (DropLine keeps the store in sync with L2 evictions).
func (victimaScheme) CheckInvariants(s *System) error {
	for i, v := range s.vict {
		if err := v.CheckInvariants(); err != nil {
			return err
		}
		c := s.cores[i]
		for si := uint64(0); si < v.Sets(); si++ {
			if v.Occupied(si) && !c.l2.Lookup(v.Line(si)) {
				return fmt.Errorf("core %d: victima block %d holds entries but its line %#x is not L2-resident",
					i, si, v.Line(si))
			}
		}
	}
	return nil
}

func (victimaScheme) ResetStats(s *System) {
	for _, v := range s.vict {
		v.ResetStats()
	}
}

func (victimaScheme) Aggregate(s *System, res *Result) {
	for _, v := range s.vict {
		res.Victima.Add(v.Stats())
	}
}
