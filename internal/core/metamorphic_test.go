package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// Metamorphic relations across schemes: growing a structure can only
// help, and a competitor scheme configured down to nothing is exactly
// the baseline. These pin the monotonicity every capacity sweep (and the
// paper's own ablations) silently assumes.

// metamorphicRun executes one fixed workload under cfg and returns the
// Result. The stream is deterministic, so the only difference between two
// calls is the configuration under test.
func metamorphicRun(t *testing.T, cfg Config) Result {
	t.Helper()
	cfg.WarmupRefs = 100_000
	cfg.MaxRefs = 50_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := gupsParams(cfg.Cores)
	p.FootprintBytes = 48 << 20
	res, err := sys.Run(context.Background(), trace.NewUniform(p), "metamorphic")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetamorphicL2TLBGrowth: doubling the L2 TLB's ways (sets held
// constant, so per-set LRU is a stack algorithm) must not increase the
// L2 TLB miss ratio, under any scheme.
func TestMetamorphicL2TLBGrowth(t *testing.T) {
	for _, mode := range []Mode{Baseline, POMTLB, Victima} {
		t.Run(mode.String(), func(t *testing.T) {
			small := smallConfig(mode)
			big := smallConfig(mode)
			big.L2TLB.Entries *= 2
			big.L2TLB.Ways *= 2
			a, b := metamorphicRun(t, small), metamorphicRun(t, big)
			if b.L2TLB.MissRatio() > a.L2TLB.MissRatio() {
				t.Errorf("L2 TLB miss ratio grew with capacity: %d entries/%d ways %.4f -> %d/%d %.4f",
					small.L2TLB.Entries, small.L2TLB.Ways, a.L2TLB.MissRatio(),
					big.L2TLB.Entries, big.L2TLB.Ways, b.L2TLB.MissRatio())
			}
		})
	}
}

// TestMetamorphicDCacheGrowth: doubling the DRAM page-walk cache (size
// and ways together, sets constant) must not increase its miss ratio.
func TestMetamorphicDCacheGrowth(t *testing.T) {
	small := smallConfig(DRAMCache)
	small.DCache.SizeBytes = 8 << 20
	small.DCache.Ways = 8
	big := smallConfig(DRAMCache)
	big.DCache.SizeBytes = 16 << 20
	big.DCache.Ways = 16
	a, b := metamorphicRun(t, small), metamorphicRun(t, big)
	am := a.DCache.Access[cache.Data].MissRatio()
	bm := b.DCache.Access[cache.Data].MissRatio()
	if a.DCache.Access[cache.Data].Total() == 0 {
		t.Fatal("DRAM cache saw no walk references")
	}
	if bm > am {
		t.Errorf("DRAM-cache miss ratio grew with capacity: 8MB %.4f -> 16MB %.4f", am, bm)
	}
}

// TestMetamorphicPOMGrowth: growing the POM-TLB from 2 MB to 16 MB must
// not reduce the fraction of L2 TLB misses resolved without a walk.
func TestMetamorphicPOMGrowth(t *testing.T) {
	small := smallConfig(POMTLB)
	small.POM.SizeBytes = 2 << 20
	big := smallConfig(POMTLB)
	big.POM.SizeBytes = 16 << 20
	a, b := metamorphicRun(t, small), metamorphicRun(t, big)
	if b.WalkEliminationRate() < a.WalkEliminationRate() {
		t.Errorf("walk elimination fell with POM capacity: 2MB %.4f -> 16MB %.4f",
			a.WalkEliminationRate(), b.WalkEliminationRate())
	}
}

// TestMetamorphicVictimaZeroWaysIsBaseline: Victima with zero donated L2
// ways has no store at all and must reproduce the baseline result
// exactly — same cycles, same penalties, same cache statistics —
// differing only in the Mode label.
func TestMetamorphicVictimaZeroWaysIsBaseline(t *testing.T) {
	vcfg := smallConfig(Victima)
	vcfg.VictimaCfg.DonatedWays = 0
	bcfg := smallConfig(Baseline)
	a, b := metamorphicRun(t, vcfg), metamorphicRun(t, bcfg)
	a.Mode = b.Mode
	if !reflect.DeepEqual(a, b) {
		t.Errorf("victima with 0 donated ways != baseline:\n victima=%+v\n baseline=%+v", a, b)
	}
}
