package core

import (
	"fmt"
	"sort"

	"repro/internal/addr"
)

// NumTiers is the number of scenario tenant tiers (hot/warm/cold) the
// per-tier Result breakdown distinguishes.
const NumTiers = 3

// TierNames labels the scenario tiers, indexed like Result's Tier*
// arrays and SetCoreTenant's tier argument.
var TierNames = [NumTiers]string{"hot", "warm", "cold"}

// Event is one scheduled scenario action: Fire runs once the simulation
// has consumed At records (warmup included, so At counts from the very
// first record Run sees). Fire executes between record batches with the
// stats mutex released — System methods that take the lock themselves
// (Shootdown, ProcessExit, SetCoreTenant, Snapshot) are safe to call.
//
// Events fire at batch boundaries: the run loop clamps batches so a
// boundary lands exactly at every At, which keeps the per-record path
// free of event checks (and allocation-free). Note that At is a
// consumed-record index; the scheduler buffers a bounded number of
// generated records per core, so generation-side positions and At differ
// by that bounded, deterministic smear — scenario layers that pair a
// generator-side plan with an event schedule get tenant switches that
// "drain in-flight work", exactly as gang scheduling on real hosts does.
type Event struct {
	At   uint64
	Fire func(*System)
}

// SetEvents installs the scenario schedule, replacing any previous one.
// Events fire in At order (ties keep the given order). Events whose At
// is already past fire before the next batch.
func (s *System) SetEvents(events []Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append([]Event(nil), events...)
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
	s.nextEvent = 0
}

// fireDueEvents runs every event whose At has been reached. Called from
// the run loops between batches with s.mu released.
func (s *System) fireDueEvents() {
	for s.nextEvent < len(s.events) && s.events[s.nextEvent].At <= s.consumed {
		ev := s.events[s.nextEvent]
		s.nextEvent++
		ev.Fire(s)
	}
}

// nextEventGap returns how many records may run before the next
// scheduled event is due. ok is false when no events remain.
func (s *System) nextEventGap() (gap uint64, ok bool) {
	if s.nextEvent >= len(s.events) {
		return 0, false
	}
	at := s.events[s.nextEvent].At
	if at <= s.consumed {
		return 0, true
	}
	return at - s.consumed, true
}

// SetCoreTenant reassigns a core to another tenant's address space — the
// scenario layer's context switch. The core's SRAM TLBs are deliberately
// NOT flushed: entries are VMID/ASID-tagged (the paper's §2 premise), so
// the previous tenant's entries age out by replacement exactly as they
// would in tagged hardware. tier labels the tenant's scenario tier
// (indexing TierNames) for the per-tier Result breakdown; the first call
// switches the breakdown on.
func (s *System) SetCoreTenant(core int, vmid addr.VMID, pid addr.PID, tier uint8) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if core < 0 || core >= len(s.cores) {
		return fmt.Errorf("core: SetCoreTenant: core %d out of range (%d cores)", core, len(s.cores))
	}
	if int(tier) >= NumTiers {
		return fmt.Errorf("core: SetCoreTenant: tier %d out of range (%d tiers)", tier, NumTiers)
	}
	c := s.cores[core]
	if s.cfg.Virtualized {
		vm, ok := s.hyp.VM(vmid)
		if !ok {
			return fmt.Errorf("core: SetCoreTenant: unknown VM %d", vmid)
		}
		c.vm = vm
	}
	c.vmid = vmid
	c.pid = pid
	c.tier = tier
	s.tierTrack = true
	return nil
}
