package core

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/oracle"
	"repro/internal/pomtlb"
	"repro/internal/tlb"
	"repro/internal/tsb"
)

// This file registers the paper's own schemes: the walk-only baseline,
// the POM-TLB (with and without data-cache probing), the Shared_L2 and
// TSB comparison points, and the §2.2 L4 data-cache trade-off machine.

// baselineScheme owns no large translation structure: an L2 TLB miss
// starts the (2D) page walk immediately.
type baselineScheme struct{ baseScheme }

func (baselineScheme) Name() Mode { return Baseline }
func (baselineScheme) Describe() string {
	return "2D nested page walk with page-structure caches and a nested TLB (Skylake-like)"
}
func (baselineScheme) Path(s *System, c *coreState, va addr.VA) tlb.Entry {
	return s.baselinePath(c, va)
}

// pomSchemeBase is the shared implementation of the two POM-TLB modes.
// The SharedL2 seed hook below is deliberately absent while POM-TLB and
// TSB seed: the shared TLB's capacity (12 K entries at 8 cores) is far
// below the big footprints, so in steady state a streamed page would long
// since have been evicted — seeding immediately before the probe would
// fake a hit the real structure could not deliver. The POM-TLB and TSB
// hold ≥ 0.5 M entries and do retain every page at these footprints.
type pomSchemeBase struct{ baseScheme }

func (pomSchemeBase) Validate(cfg *Config) error { return cfg.POM.Validate() }
func (pomSchemeBase) Build(s *System)            { s.pom = pomtlb.New(s.cfg.POM) }
func (pomSchemeBase) Path(s *System, c *coreState, va addr.VA) tlb.Entry {
	return s.pomPath(c, va)
}
func (pomSchemeBase) Seeds() bool { return true }
func (pomSchemeBase) Seed(s *System, c *coreState, va addr.VA, size addr.PageSize, pfn uint64) {
	if size == addr.Page1G {
		return // the POM-TLB has no 1 GB partition
	}
	s.pom.Partition(size).Insert(pomtlb.Entry{
		Valid: true, VM: c.vmid, PID: c.pid,
		VPN: va.VPN(size), PFN: pfn, Size: size,
	})
}
func (pomSchemeBase) Shootdown(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, vpn uint64, size addr.PageSize) {
	if size == addr.Page1G {
		return
	}
	s.pom.InvalidatePage(vmid, pid, vpn, size)
	// Cached copies of the set line are stale once the set changes.
	line := s.pom.Partition(size).SetAddr(va, vmid).Line()
	for _, c := range s.cores {
		c.l1d.Invalidate(line)
		c.l2.Invalidate(line)
	}
	s.l3.Invalidate(line)
}
func (pomSchemeBase) ProcessExit(s *System, vmid addr.VMID, pid addr.PID) int {
	n := s.pom.InvalidateProcess(vmid, pid)
	for _, c := range s.cores {
		c.l1d.InvalidateKind(cache.TLBEntry)
		c.l2.InvalidateKind(cache.TLBEntry)
	}
	s.l3.InvalidateKind(cache.TLBEntry)
	return n
}
func (pomSchemeBase) Holds(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) bool {
	if size == addr.Page1G {
		return false
	}
	vpn := va.VPN(size)
	for _, e := range s.pom.Partition(size).SetView(va, vmid) {
		if e.Valid && e.VM == vmid && e.PID == pid && e.VPN == vpn {
			return true
		}
	}
	return false
}
func (pomSchemeBase) AttachSelfCheck(s *System, sc *SelfCheck) {
	sc.pomSmall = oracle.NewRefPOM(sc.h, s.pom.Small)
	sc.pomLarge = oracle.NewRefPOM(sc.h, s.pom.Large)
	oracle.NewRefDRAM(sc.h, s.pom.DRAMChannel())
}
func (pomSchemeBase) CheckInvariants(s *System) error { return s.pom.CheckInvariants() }
func (pomSchemeBase) ResetStats(s *System)            { s.pom.ResetStats() }
func (pomSchemeBase) Aggregate(s *System, res *Result) {
	res.POMDRAMStats = s.pom.DRAMStats()
}

type pomScheme struct{ pomSchemeBase }

func (pomScheme) Name() Mode { return POMTLB }
func (pomScheme) Describe() string {
	return "die-stacked DRAM L3 TLB with predictors and data-cache probes of the addressable sets"
}

type pomNoCacheScheme struct{ pomSchemeBase }

func (pomNoCacheScheme) Name() Mode { return POMTLBNoCache }
func (pomNoCacheScheme) Describe() string {
	return "POM-TLB with data-cache probing disabled (every access goes to the die-stacked DRAM)"
}

// sharedScheme is the Shared_L2 comparison point: one SRAM TLB with the
// combined capacity of all cores' private L2 TLBs.
type sharedScheme struct{ baseScheme }

func (sharedScheme) Name() Mode { return SharedL2 }
func (sharedScheme) Describe() string {
	return "shared SRAM TLB with the combined capacity of all cores' L2 TLBs"
}
func (sharedScheme) Build(s *System) { s.shared = tlb.MustNew(tlb.SharedL2(s.cfg.Cores)) }
func (sharedScheme) Path(s *System, c *coreState, va addr.VA) tlb.Entry {
	return s.sharedPath(c, va)
}
func (sharedScheme) Shootdown(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, vpn uint64, size addr.PageSize) {
	s.shared.InvalidatePage(vmid, pid, vpn, size)
}
func (sharedScheme) ProcessExit(s *System, vmid addr.VMID, pid addr.PID) int {
	return s.shared.InvalidateProcess(vmid, pid)
}
func (sharedScheme) Holds(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) bool {
	return s.shared.LookupOnly(vmid, pid, va.VPN(size), size)
}
func (sharedScheme) AttachSelfCheck(s *System, sc *SelfCheck) {
	oracle.NewRefTLB(sc.h, s.shared)
}
func (sharedScheme) CheckInvariants(s *System) error { return s.shared.CheckInvariants() }
func (sharedScheme) ResetStats(s *System)            { s.shared.ResetStats() }
func (sharedScheme) Aggregate(s *System, res *Result) {
	res.SharedTLB = s.shared.Stats()
}

// tsbScheme is the SPARC-style software comparison point.
type tsbScheme struct{ baseScheme }

func (tsbScheme) Name() Mode { return TSB }
func (tsbScheme) Describe() string {
	return "software trap probing a 16 MB direct-mapped translation storage buffer (SPARC-style)"
}
func (tsbScheme) Validate(cfg *Config) error { return cfg.TSBCfg.Validate() }
func (tsbScheme) Build(s *System)            { s.tsbB = tsb.MustNew(s.cfg.TSBCfg) }
func (tsbScheme) Path(s *System, c *coreState, va addr.VA) tlb.Entry {
	return s.tsbPath(c, va)
}
func (tsbScheme) Seeds() bool { return true }
func (tsbScheme) Seed(s *System, c *coreState, va addr.VA, size addr.PageSize, pfn uint64) {
	s.tsbB.Insert(c.vmid, c.pid, va.VPN(size), pfn, size)
}
func (tsbScheme) Shootdown(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, vpn uint64, size addr.PageSize) {
	s.tsbB.InvalidatePage(vmid, pid, vpn, size)
}
func (tsbScheme) ProcessExit(s *System, vmid addr.VMID, pid addr.PID) int {
	return s.tsbB.InvalidateProcess(vmid, pid)
}
func (tsbScheme) Holds(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) bool {
	return s.tsbB.Peek(vmid, pid, va.VPN(size), size)
}
func (tsbScheme) CheckInvariants(*System) error { return nil }
func (tsbScheme) ResetStats(s *System)          { s.tsbB.ResetStats() }
func (tsbScheme) Aggregate(s *System, res *Result) {
	res.TSBLookups = s.tsbB.Stats()
	res.TSBConflicts = s.tsbB.Conflicts
}

// l4Scheme spends the die-stacked capacity as an L4 data cache; the
// translation path is the baseline walk, whose PTE reads hit the L4.
type l4Scheme struct{ baseScheme }

func (l4Scheme) Name() Mode { return L4Cache }
func (l4Scheme) Describe() string {
	return "die-stacked capacity spent as an L4 data cache; translations use the baseline walk"
}

// CalibratedWalks is false: the L4's translation benefit is shorter PTE
// reads inside the walk, which a measured-baseline walk charge would
// erase.
func (l4Scheme) CalibratedWalks() bool { return false }
func (l4Scheme) Build(s *System) {
	s.l4 = cache.MustNew(cache.Config{
		Name:      "L4",
		SizeBytes: s.cfg.POM.SizeBytes, // same capacity as the TLB it replaces
		Ways:      16,
		Latency:   0, // the DRAM access itself is charged per hit
	})
	s.l4chan = dram.MustNew(s.cfg.POM.DRAM)
}
func (l4Scheme) Path(s *System, c *coreState, va addr.VA) tlb.Entry {
	return s.baselinePath(c, va)
}
func (l4Scheme) AttachSelfCheck(s *System, sc *SelfCheck) {
	oracle.NewRefCache(sc.h, s.l4)
	oracle.NewRefDRAM(sc.h, s.l4chan)
}
func (l4Scheme) CheckInvariants(s *System) error {
	if err := s.l4.CheckInvariants(); err != nil {
		return err
	}
	return s.l4chan.CheckInvariants()
}
func (l4Scheme) ResetStats(s *System) {
	s.l4.ResetStats()
	s.l4chan.ResetStats()
}
func (l4Scheme) Aggregate(s *System, res *Result) {
	res.L4Cache = s.l4.Stats()
	res.L4DRAMStats = s.l4chan.Stats()
}
