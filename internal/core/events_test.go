package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

func eventsConfig(cores, vms int) Config {
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.VMs = vms
	cfg.WarmupRefs = 3000
	cfg.MaxRefs = 5000
	return cfg
}

func eventsGen(threads int) trace.Generator {
	return trace.NewUniform(trace.Params{
		Seed: 11, FootprintBytes: 4 << 20, LargeFrac: 0.25,
		Threads: threads, MeanGap: 2, WriteFrac: 0.2,
	})
}

// TestEventsFireAtExactBoundaries pins the event clock: Fire must run
// when exactly At records (warmup included) have been consumed, in At
// order, including events at index 0 and at the very end of the run.
func TestEventsFireAtExactBoundaries(t *testing.T) {
	cfg := eventsConfig(2, 2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(cfg.WarmupRefs + cfg.MaxRefs)
	ats := []uint64{0, 1, 1500, uint64(cfg.WarmupRefs), 4097, total}
	var fired []uint64
	var events []Event
	for _, at := range ats {
		at := at
		events = append(events, Event{At: at, Fire: func(s *System) {
			if s.consumed != at {
				t.Errorf("event scheduled at %d fired at consumed=%d", at, s.consumed)
			}
			fired = append(fired, at)
		}})
	}
	// Install out of order: SetEvents must sort by At.
	events[0], events[2] = events[2], events[0]
	sys.SetEvents(events)
	if _, err := sys.Run(context.Background(), eventsGen(2), "events"); err != nil {
		t.Fatal(err)
	}
	if len(fired) != len(ats) {
		t.Fatalf("fired %d events, want %d (%v)", len(fired), len(ats), fired)
	}
	for i, at := range ats {
		if fired[i] != at {
			t.Fatalf("firing order %v, want %v", fired, ats)
		}
	}
}

// TestSetCoreTenantTierAccounting runs a two-tenant assignment and checks
// the per-tier breakdown: every measured record lands in an assigned
// tier, the accounting identities hold, and helpers stay in range.
func TestSetCoreTenantTierAccounting(t *testing.T) {
	cfg := eventsConfig(2, 2)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetEvents([]Event{{At: 0, Fire: func(s *System) {
		if err := s.SetCoreTenant(0, 1, 1, 0); err != nil {
			t.Error(err)
		}
		if err := s.SetCoreTenant(1, 2, 1, 2); err != nil {
			t.Error(err)
		}
	}}})
	res, err := sys.Run(context.Background(), eventsGen(2), "tiers")
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasTiers() {
		t.Fatal("tier breakdown empty after SetCoreTenant")
	}
	if err := res.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for tier := 0; tier < NumTiers; tier++ {
		sum += res.TierRecords[tier]
	}
	if sum != res.Records {
		t.Fatalf("tier records sum to %d, want %d (tiers assigned from record 0)", sum, res.Records)
	}
	if res.TierRecords[0] == 0 || res.TierRecords[2] == 0 {
		t.Fatalf("both assigned tiers must see traffic: %v", res.TierRecords)
	}
	if res.TierRecords[1] != 0 {
		t.Fatalf("unassigned warm tier saw %d records", res.TierRecords[1])
	}
	for tier := 0; tier < NumTiers; tier++ {
		for name, v := range map[string]float64{
			"share":   res.TierShare(tier),
			"sramHit": res.TierSRAMHitRatio(tier),
		} {
			if v < 0 || v > 1 {
				t.Errorf("tier %d %s = %v out of [0,1]", tier, name, v)
			}
		}
	}
}

// TestSetCoreTenantValidation covers the error paths.
func TestSetCoreTenantValidation(t *testing.T) {
	sys, err := NewSystem(eventsConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetCoreTenant(7, 1, 1, 0); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := sys.SetCoreTenant(0, 1, 1, NumTiers); err == nil {
		t.Error("out-of-range tier accepted")
	}
	if err := sys.SetCoreTenant(0, 99, 1, 0); err == nil {
		t.Error("unknown VM accepted")
	}
	if err := sys.SetCoreTenant(0, 2, 3, 1); err != nil {
		t.Errorf("valid reassignment rejected: %v", err)
	}
}

// TestEventsDeterministic runs the same scenario schedule (tenant
// switches plus shootdown bursts) twice and demands identical Results —
// the invariant the sweep engine's resume byte-identity rests on.
func TestEventsDeterministic(t *testing.T) {
	run := func() Result {
		cfg := eventsConfig(2, 3)
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var events []Event
		for at := uint64(0); at <= uint64(cfg.WarmupRefs+cfg.MaxRefs); at += 500 {
			at := at
			vmid := addr.VMID(1 + (at/500)%3)
			events = append(events, Event{At: at, Fire: func(s *System) {
				if err := s.SetCoreTenant(int(at/500)%2, vmid, 1, uint8((at/500)%NumTiers)); err != nil {
					t.Error(err)
				}
				if at%1500 == 0 {
					s.Shootdown(vmid, 1, addr.VA(0x10_0000_0000+at*addr.Bytes4K), addr.Page4K)
				}
			}})
		}
		sys.SetEvents(events)
		res, err := sys.Run(context.Background(), eventsGen(2), "det")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical scenario runs diverge:\n%+v\n%+v", a, b)
	}
}
