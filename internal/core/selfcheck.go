package core

import (
	"fmt"
	"strings"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/oracle"
	"repro/internal/tlb"
)

// SelfCheck is the differential-verification hook for one System: it owns
// the oracle harness the reference models report into and drives the
// periodic structural invariant sweeps. Enable it on a freshly-built
// System (before any simulation) so the references observe every state
// transition from empty.
type SelfCheck struct {
	h   *oracle.Harness
	sys *System
	// invErr latches the first invariant violation found by a periodic
	// sweep so a mid-run violation is not masked by a clean final state.
	invErr error
	sweeps uint64
	// pomSmall/pomLarge keep the POM partition references reattachable so
	// tests can corrupt production state behind the shadow's back.
	pomSmall, pomLarge *oracle.RefPOM
}

// EnableSelfCheck attaches a reference model to every production
// structure in the system — all cores' L1/L2 TLBs and private caches, the
// shared L3, every DRAM channel, and the mode's large translation
// structure — and returns the SelfCheck handle. Calling it on a system
// that has already simulated records reports spurious divergences (the
// references never saw the warm state).
func (s *System) EnableSelfCheck() *SelfCheck {
	h := oracle.NewHarness()
	for _, c := range s.cores {
		oracle.NewRefTLB(h, c.l1tlb.Small)
		oracle.NewRefTLB(h, c.l1tlb.Large)
		oracle.NewRefTLB(h, c.l1tlb.Huge)
		oracle.NewRefTLB(h, c.l2tlb)
		oracle.NewRefCache(h, c.l1d)
		oracle.NewRefCache(h, c.l2)
	}
	oracle.NewRefCache(h, s.l3)
	for _, ch := range s.ddr {
		oracle.NewRefDRAM(h, ch)
	}
	sc := &SelfCheck{h: h, sys: s}
	s.scheme.AttachSelfCheck(s, sc)
	s.selfCheck = sc
	return sc
}

// Harness exposes the oracle harness (for tests that inject corruption
// and assert the divergence is caught).
func (sc *SelfCheck) Harness() *oracle.Harness { return sc.h }

// sweep runs one structural invariant pass, latching the first failure.
func (sc *SelfCheck) sweep() {
	sc.sweeps++
	if sc.invErr == nil {
		sc.invErr = sc.sys.CheckInvariants()
	}
}

// Err returns nil when every checked decision agreed, no invariant sweep
// failed, and the final structural state is sound.
func (sc *SelfCheck) Err() error {
	if err := sc.h.Err(); err != nil {
		return err
	}
	if sc.invErr != nil {
		return fmt.Errorf("core: invariant violation during run: %w", sc.invErr)
	}
	return sc.sys.CheckInvariants()
}

// Report summarises the verification outcome for human output.
func (sc *SelfCheck) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "selfcheck: %d decisions checked, %d divergences, %d invariant sweeps",
		sc.h.Decisions(), sc.h.Divergences(), sc.sweeps)
	if msgs := sc.h.Messages(); len(msgs) > 0 {
		fmt.Fprintf(&b, "\n  first divergences:")
		for _, m := range msgs {
			fmt.Fprintf(&b, "\n    %s", m)
		}
	}
	if sc.invErr != nil {
		fmt.Fprintf(&b, "\n  invariant violation: %v", sc.invErr)
	}
	return b.String()
}

// checkWalk cross-checks one resolved page walk against the logical
// translation path (virt's map lookup), which shares no code with the
// radix 2D walker. Walk latency and reference counts are sanity-bounded:
// a 2D walk touches at most 24 PTEs (4 guest levels × (4 nested + 1) +
// 4 final nested).
func (sc *SelfCheck) checkWalk(c *coreState, va addr.VA, got tlb.Entry, refs int) {
	sc.h.Decision()
	want := sc.sys.logicalEntry(c, va)
	if got != want {
		sc.h.Reportf("walker: core %d va %v resolved %+v, reference translation %+v", c.id, va, got, want)
	}
	if refs < 0 || refs > 24 {
		sc.h.Reportf("walker: core %d va %v touched %d PTEs, outside the [0,24] 2D-walk bound", c.id, va, refs)
	}
}

// CheckInvariants validates every structure's internal invariants plus
// the cross-structure inclusion the hierarchy maintains. Returns the
// first violation found, or nil.
func (s *System) CheckInvariants() error {
	for _, c := range s.cores {
		for _, t := range []*tlb.TLB{c.l1tlb.Small, c.l1tlb.Large, c.l1tlb.Huge, c.l2tlb} {
			if err := t.CheckInvariants(); err != nil {
				return fmt.Errorf("core %d: %w", c.id, err)
			}
		}
		for _, cc := range []*cache.Cache{c.l1d, c.l2} {
			if err := cc.CheckInvariants(); err != nil {
				return fmt.Errorf("core %d: %w", c.id, err)
			}
		}
	}
	if err := s.l3.CheckInvariants(); err != nil {
		return err
	}
	for _, ch := range s.ddr {
		if err := ch.CheckInvariants(); err != nil {
			return err
		}
	}
	return s.scheme.CheckInvariants(s)
}

// CheckAccounting validates the Result's conservation identities: every
// record resolves at exactly one level (Figure 9's accounting), every
// L1 miss probes the L2 TLB, and the post-L2-miss resolutions sum to the
// L2 TLB miss count. Returns the first violation found, or nil.
func (r Result) CheckAccounting() error {
	var sum uint64
	for _, n := range r.Resolved {
		sum += n
	}
	if sum != r.Records {
		return fmt.Errorf("core %s/%s: %d resolutions for %d records", r.Workload, r.Mode, sum, r.Records)
	}
	if err := r.L1TLB.CheckConservation("L1TLB", r.Records); err != nil {
		return fmt.Errorf("core %s/%s: %w", r.Workload, r.Mode, err)
	}
	if err := r.L2TLB.CheckConservation("L2TLB", r.L1TLB.Misses); err != nil {
		return fmt.Errorf("core %s/%s: %w", r.Workload, r.Mode, err)
	}
	postMiss := sum - r.Resolved[ResL1TLB] - r.Resolved[ResL2TLB]
	if postMiss != r.L2TLB.Misses {
		return fmt.Errorf("core %s/%s: %d post-L2-miss resolutions for %d L2 TLB misses",
			r.Workload, r.Mode, postMiss, r.L2TLB.Misses)
	}
	// Per-tier attribution (consolidation scenarios). Tier tracking can
	// switch on mid-window, so the tier sum may undercount Records but
	// never exceed it; within a tier, hits and walks must fit inside the
	// tier's own records.
	var tierSum uint64
	for t := 0; t < NumTiers; t++ {
		tierSum += r.TierRecords[t]
		if r.TierSRAMHits[t] > r.TierRecords[t] {
			return fmt.Errorf("core %s/%s: tier %s has %d SRAM hits for %d records",
				r.Workload, r.Mode, TierNames[t], r.TierSRAMHits[t], r.TierRecords[t])
		}
		if r.TierWalks[t] > r.TierRecords[t]-r.TierSRAMHits[t] {
			return fmt.Errorf("core %s/%s: tier %s has %d walks for %d L2 misses",
				r.Workload, r.Mode, TierNames[t], r.TierWalks[t], r.TierRecords[t]-r.TierSRAMHits[t])
		}
	}
	if tierSum > r.Records {
		return fmt.Errorf("core %s/%s: %d tier-attributed records for %d records",
			r.Workload, r.Mode, tierSum, r.Records)
	}
	return nil
}
