package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/pomtlb"
	"repro/internal/tlb"
)

// ResolveLevel identifies where a translation was finally resolved.
type ResolveLevel int

const (
	// ResL1TLB is a per-core L1 TLB hit.
	ResL1TLB ResolveLevel = iota
	// ResL2TLB is a per-core L2 TLB hit.
	ResL2TLB
	// ResL2D is a POM-TLB entry found in the L2 data cache.
	ResL2D
	// ResL3D is a POM-TLB entry found in the shared L3 data cache.
	ResL3D
	// ResPOM is a POM-TLB entry found in the die-stacked DRAM.
	ResPOM
	// ResShared is a Shared_L2 scheme shared-TLB hit.
	ResShared
	// ResTSB is a translation-storage-buffer hit.
	ResTSB
	// ResVictima is a hit in the Victima scheme's cache-resident TLB store.
	ResVictima
	// ResWalk means a full page walk was needed.
	ResWalk

	numResolveLevels
)

// String implements fmt.Stringer.
func (r ResolveLevel) String() string {
	switch r {
	case ResL1TLB:
		return "L1TLB"
	case ResL2TLB:
		return "L2TLB"
	case ResL2D:
		return "L2D$"
	case ResL3D:
		return "L3D$"
	case ResPOM:
		return "POM-TLB"
	case ResShared:
		return "SharedTLB"
	case ResTSB:
		return "TSB"
	case ResVictima:
		return "Victima"
	case ResWalk:
		return "PageWalk"
	}
	return fmt.Sprintf("ResolveLevel(%d)", int(r))
}

// translate resolves va for core c. The core's time cursor (c.now)
// advances through every serial step; the returned latency is exactly the
// cursor advance. It also accumulates the scheme's post-L2-miss penalty,
// which is the quantity Equations (3)–(4) consume.
func (s *System) translate(c *coreState, va addr.VA) (addr.HPA, uint64) {
	t0 := c.now
	if e, ok := c.l1tlb.Lookup(c.vmid, c.pid, va); ok {
		s.res.Resolved[ResL1TLB]++
		return addr.Translate(va, e.PFN, e.Size), 0
	}
	c.now += s.cfg.L1MissPenalty
	if e, ok := c.l2tlb.Lookup(c.vmid, c.pid, va); ok {
		c.l1tlb.Insert(e)
		s.res.Resolved[ResL2TLB]++
		return addr.Translate(va, e.PFN, e.Size), c.now - t0
	}
	c.now += s.cfg.L2MissPenalty

	missStart := c.now
	e := s.scheme.Path(s, c, va)
	s.res.PenaltyCycles += c.now - missStart
	return addr.Translate(va, e.PFN, e.Size), c.now - t0
}

// mustWalk performs the page walk and panics on a fault: every reference
// is demand-mapped before translation, so a fault is a simulator bug.
// Callers use mustWalkAt, which keeps the time cursor consistent.
func (s *System) mustWalk(c *coreState, va addr.VA) tlb.Entry {
	w := s.walk(c, va)
	if !w.OK {
		panic(fmt.Sprintf("core: walk fault for mapped address %v on core %d", va, c.id))
	}
	s.lastWalkLatency = w.Latency
	e := walkEntry(c.vmid, c.pid, va, w)
	if s.selfCheck != nil {
		s.selfCheck.checkWalk(c, va, e, w.Refs)
	}
	return e
}

// baselinePath is the Skylake-like baseline: an L2 TLB miss starts the
// (2D) page walk immediately.
func (s *System) baselinePath(c *coreState, va addr.VA) tlb.Entry {
	e := s.mustWalkAt(c, va)
	c.insertTLBs(e)
	s.res.Resolved[ResWalk]++
	return e
}

// pomPath implements Figure 7: page-size prediction, optional cache
// bypass, L2D$/L3D$ probes of the addressable set, die-stacked DRAM
// access, second-size retry, and finally the page walk.
func (s *System) pomPath(c *coreState, va addr.VA) tlb.Entry {
	useCaches := s.cfg.Mode == POMTLB
	predSize := c.pred.PredictSize(va)
	bypass := useCaches && !s.cfg.DisableBypassPredictor && c.pred.PredictBypass(va)
	probeCaches := useCaches && !bypass

	// Only the first probe's cache outcome trains the bypass predictor:
	// the predicted size is the one the MMU would have issued.
	entry, found, firstCachesHit := s.pomProbe(c, va, predSize, probeCaches, useCaches)
	if !found {
		entry, found, _ = s.pomProbe(c, va, predSize.Other(), probeCaches, useCaches)
	}

	var out tlb.Entry
	var actual addr.PageSize
	if found {
		actual = entry.Size
		out = tlb.Entry{VM: c.vmid, PID: c.pid, VPN: entry.VPN, PFN: entry.PFN,
			Size: actual, Valid: true}
		if s.cfg.NeighborPrefetch {
			// §6 extension: the burst carried the whole set — install the
			// neighbouring pages' translations into the L2 TLB for free.
			// SetView aliases the live set (no copy); entries are only
			// read within this loop.
			for _, ne := range s.pom.Partition(actual).SetView(va, c.vmid) {
				if ne.Valid && ne.VM == c.vmid && ne.PID == c.pid && ne.VPN != entry.VPN {
					c.l2tlb.Insert(tlb.Entry{VM: c.vmid, PID: c.pid,
						VPN: ne.VPN, PFN: ne.PFN, Size: ne.Size, Valid: true})
				}
			}
		}
	} else {
		out = s.mustWalkAt(c, va)
		actual = out.Size
		if actual == addr.Page1G {
			// No 1 GB partition: the translation lives in the L1 huge
			// TLB / unified L2 only.
			c.pred.UpdateSize(va, addr.Page2M)
			c.insertTLBs(out)
			s.res.Resolved[ResWalk]++
			return out
		}
		part := s.pom.Partition(actual)
		part.Insert(pomtlb.Entry{Valid: true, VM: c.vmid, PID: c.pid,
			VPN: va.VPN(actual), PFN: out.PFN, Size: actual})
		// The fill writes the updated set back; off the critical path, so
		// the cursor does not advance.
		setAddr := part.SetAddr(va, c.vmid)
		s.pom.AccessDRAM(c.now, setAddr, part.LinesPerSet(), true)
		if useCaches {
			s.fillL3(c, setAddr.Line(), false, cache.TLBEntry)
			s.fillL2(c, setAddr.Line(), false, cache.TLBEntry)
		}
		s.res.Resolved[ResWalk]++
	}

	c.pred.UpdateSize(va, actual)
	// A disabled bypass predictor is neither consulted nor trained;
	// scoring it would fake Figure 10 accuracy for a predictor that
	// never influenced a probe.
	if useCaches && !s.cfg.DisableBypassPredictor {
		shouldBypass := !firstCachesHit
		if bypass {
			// The caches were skipped; score the decision against what
			// they actually held (an idealized sampling probe).
			line := s.pom.Partition(predSize).SetAddr(va, c.vmid).Line()
			shouldBypass = !(c.l2.Lookup(line) || s.l3.Lookup(line))
		}
		c.pred.UpdateBypass(va, shouldBypass)
	}
	c.insertTLBs(out)
	return out
}

// pomProbe probes one POM-TLB partition for va: the L2D$/L3D$ probes of
// the addressable set (when enabled), then the die-stacked DRAM.
// cachesHit reports whether the set line was found in the data caches —
// the signal the bypass predictor is scored against. A cached set is
// authoritative for its size: a search miss there still ends the probe.
func (s *System) pomProbe(c *coreState, va addr.VA, size addr.PageSize, probeCaches, useCaches bool) (entry pomtlb.Entry, found, cachesHit bool) {
	part := s.pom.Partition(size)
	setAddr := part.SetAddr(va, c.vmid)
	line := setAddr.Line()
	if probeCaches {
		// The MMU issues the set address to the L2D$ first (2.1.3).
		c.now += c.l2.Latency()
		if c.l2.Access(line, false, cache.TLBEntry) {
			s.res.L2DProbe.Hit()
			if e, ok := part.Search(c.vmid, c.pid, va); ok {
				s.res.Resolved[ResL2D]++
				return e, true, true
			}
			return pomtlb.Entry{}, false, true
		}
		s.res.L2DProbe.Miss()
		c.now += s.l3.Latency()
		if s.l3.Access(line, false, cache.TLBEntry) {
			s.res.L3DProbe.Hit()
			s.fillL2(c, line, false, cache.TLBEntry)
			if e, ok := part.Search(c.vmid, c.pid, va); ok {
				s.res.Resolved[ResL3D]++
				return e, true, true
			}
			return pomtlb.Entry{}, false, true
		}
		s.res.L3DProbe.Miss()
	}
	dres := s.pom.AccessDRAM(c.now, setAddr, part.LinesPerSet(), false)
	c.now += dres.Latency
	e, ok := part.Search(c.vmid, c.pid, va)
	s.res.POMDRAM.Record(ok)
	if useCaches {
		// Like data misses, fetched sets fill into the caches — even
		// on the bypass path (bypass skips the lookups, not the fill;
		// without the fill a bypassed region could never become
		// cache-resident again and the predictor would lock in).
		s.fillL3(c, line, false, cache.TLBEntry)
		s.fillL2(c, line, false, cache.TLBEntry)
	}
	if ok {
		s.res.Resolved[ResPOM]++
		return e, true, false
	}
	return pomtlb.Entry{}, false, false
}

// victimaPath implements Victima's dual lookup: the L2 TLB miss probes
// the core's cache-resident TLB store through the L2 data-cache port
// (one L2 latency, charged hit or miss), and only a store miss starts
// the walk. A hit touches the block's real cache line to keep its
// recency honest against competing data; a walk's result is installed
// into a donated block whose line fills the L2 like any TLB-entry fill.
func (s *System) victimaPath(c *coreState, va addr.VA) tlb.Entry {
	if s.vict == nil {
		// Zero donated ways: the scheme degenerates to the exact baseline.
		return s.baselinePath(c, va)
	}
	v := s.vict[c.id]
	c.now += c.l2.Latency()
	if e, si, ok := v.Lookup(c.vmid, c.pid, va); ok {
		if !c.l2.Access(v.Line(si), false, cache.TLBEntry) {
			// The residency invariant says this cannot miss (DropLine
			// empties evicted blocks); restore it defensively so the store
			// and cache cannot drift further apart.
			s.fillL2(c, v.Line(si), false, cache.TLBEntry)
		}
		c.insertTLBs(e)
		s.res.Resolved[ResVictima]++
		return e
	}
	e := s.mustWalkAt(c, va)
	if e.Size != addr.Page1G {
		// No 1 GB slots (same as the POM-TLB's partitions).
		si, _, _ := v.Insert(e)
		s.fillL2(c, v.Line(si), false, cache.TLBEntry)
	}
	c.insertTLBs(e)
	s.res.Resolved[ResWalk]++
	return e
}

// sharedPath is the Shared_L2 comparison scheme: one SRAM TLB with the
// combined capacity of all cores' private L2 TLBs, probed before walking.
func (s *System) sharedPath(c *coreState, va addr.VA) tlb.Entry {
	c.now += s.shared.Latency()
	if e, ok := s.shared.Lookup(c.vmid, c.pid, va); ok {
		c.insertTLBs(e)
		s.res.Resolved[ResShared]++
		return e
	}
	e := s.mustWalkAt(c, va)
	s.shared.Insert(e)
	c.insertTLBs(e)
	s.res.Resolved[ResWalk]++
	return e
}

// tsbProbe issues one TSB probe for va at the given page size: the
// in-memory buffer entry is read through the data caches like any load,
// then looked up logically.
func (s *System) tsbProbe(c *coreState, va addr.VA, size addr.PageSize) (uint64, bool) {
	s.dataAccess(c, s.tsbB.EntryAddr(c.vmid, va, size), false, cache.Data)
	return s.tsbB.Lookup(c.vmid, c.pid, va, size)
}

// tsbPath is the SPARC-style scheme: trap to the OS, probe the
// direct-mapped TSB in memory (through the data caches, like any load) for
// each page size, pay the extra host-dimension access on a virtualized
// hit, and fall back to a software walk.
func (s *System) tsbPath(c *coreState, va addr.VA) tlb.Entry {
	c.now += s.cfg.TSBCfg.TrapCycles
	// The miss handler knows the region's mapping size most of the time;
	// model that with the same page-size predictor the POM-TLB uses.
	size := c.pred.PredictSize(va)
	pfn, ok := s.tsbProbe(c, va, size)
	if !ok {
		size = size.Other()
		pfn, ok = s.tsbProbe(c, va, size)
	}
	if ok {
		if s.cfg.Virtualized {
			// TSB entries are not direct gVA→hPA translations: the miss
			// handler needs a second buffer access for the host dimension.
			s.dataAccess(c, s.tsbB.EntryAddr(c.vmid, va, size), false, cache.Data)
		}
		e := tlb.Entry{VM: c.vmid, PID: c.pid, VPN: va.VPN(size), PFN: pfn,
			Size: size, Valid: true}
		c.pred.UpdateSize(va, size)
		c.insertTLBs(e)
		s.res.Resolved[ResTSB]++
		return e
	}
	e := s.mustWalkAt(c, va)
	c.pred.UpdateSize(va, e.Size)
	c.now += s.cfg.TSBCfg.SoftwareWalkOverhead
	s.tsbB.Insert(c.vmid, c.pid, e.VPN, e.PFN, e.Size)
	// The handler stores the new TTE; charge the store.
	s.dataAccess(c, s.tsbB.EntryAddr(c.vmid, va, e.Size), true, cache.Data)
	c.insertTLBs(e)
	s.res.Resolved[ResWalk]++
	return e
}
