package core

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/pomtlb"
	"repro/internal/tlb"
	"repro/internal/tsb"
)

// schemeOps is the per-mode dispatch table: everything that varies by
// translation scheme lives here, resolved once at System construction
// instead of switching on cfg.Mode at every event. A nil hook means the
// scheme has nothing to do for that event (e.g. Baseline owns no large
// translation structure).
type schemeOps struct {
	// build constructs the scheme's large structure(s) during NewSystem.
	build func(*System)
	// path resolves an L2 TLB miss — the Figure 8 per-scheme penalty path.
	path func(*System, *coreState, addr.VA) tlb.Entry
	// seed installs a freshly-mapped page's translation into the scheme's
	// large structure under SteadyState.
	seed func(*System, *coreState, addr.VA, addr.PageSize, uint64)
	// shootdown drops one page's translation from the scheme's structure.
	shootdown func(*System, addr.VMID, addr.PID, addr.VA, uint64, addr.PageSize)
	// processExit flushes every translation of (vm, pid) from the scheme's
	// structure, returning the number of entries removed.
	processExit func(*System, addr.VMID, addr.PID) int
}

// modeOps maps each Mode to its dispatch table. The SharedL2 seed hook is
// deliberately nil: its capacity (12 K entries at 8 cores) is far below
// the big footprints, so in steady state a streamed page would long since
// have been evicted — seeding immediately before the probe would fake a
// hit the real structure could not deliver. The POM-TLB and TSB hold
// ≥ 0.5 M entries and do retain every page at these footprints.
var modeOps = [numModes]schemeOps{
	Baseline: {
		path: (*System).baselinePath,
	},
	POMTLB: {
		build:       buildPOM,
		path:        (*System).pomPath,
		seed:        seedPOM,
		shootdown:   shootdownPOM,
		processExit: processExitPOM,
	},
	POMTLBNoCache: {
		build:       buildPOM,
		path:        (*System).pomPath,
		seed:        seedPOM,
		shootdown:   shootdownPOM,
		processExit: processExitPOM,
	},
	SharedL2: {
		build:       buildShared,
		path:        (*System).sharedPath,
		shootdown:   shootdownShared,
		processExit: processExitShared,
	},
	TSB: {
		build:       buildTSB,
		path:        (*System).tsbPath,
		seed:        seedTSB,
		shootdown:   shootdownTSB,
		processExit: processExitTSB,
	},
	L4Cache: {
		build: buildL4,
		path:  (*System).baselinePath,
	},
}

func buildPOM(s *System) { s.pom = pomtlb.New(s.cfg.POM) }

func buildTSB(s *System) { s.tsbB = tsb.MustNew(s.cfg.TSBCfg) }

func buildShared(s *System) { s.shared = tlb.MustNew(tlb.SharedL2(s.cfg.Cores)) }

func buildL4(s *System) {
	s.l4 = cache.MustNew(cache.Config{
		Name:      "L4",
		SizeBytes: s.cfg.POM.SizeBytes, // same capacity as the TLB it replaces
		Ways:      16,
		Latency:   0, // the DRAM access itself is charged per hit
	})
	s.l4chan = dram.MustNew(s.cfg.POM.DRAM)
}

func seedPOM(s *System, c *coreState, va addr.VA, size addr.PageSize, pfn uint64) {
	if size == addr.Page1G {
		return // the POM-TLB has no 1 GB partition
	}
	s.pom.Partition(size).Insert(pomtlb.Entry{
		Valid: true, VM: c.vmid, PID: c.pid,
		VPN: va.VPN(size), PFN: pfn, Size: size,
	})
}

func seedTSB(s *System, c *coreState, va addr.VA, size addr.PageSize, pfn uint64) {
	s.tsbB.Insert(c.vmid, c.pid, va.VPN(size), pfn, size)
}

func shootdownPOM(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, vpn uint64, size addr.PageSize) {
	s.pom.InvalidatePage(vmid, pid, vpn, size)
	// Cached copies of the set line are stale once the set changes.
	line := s.pom.Partition(size).SetAddr(va, vmid).Line()
	for _, c := range s.cores {
		c.l1d.Invalidate(line)
		c.l2.Invalidate(line)
	}
	s.l3.Invalidate(line)
}

func shootdownTSB(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, vpn uint64, size addr.PageSize) {
	s.tsbB.InvalidatePage(vmid, pid, vpn, size)
}

func shootdownShared(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, vpn uint64, size addr.PageSize) {
	s.shared.InvalidatePage(vmid, pid, vpn, size)
}

func processExitPOM(s *System, vmid addr.VMID, pid addr.PID) int {
	n := s.pom.InvalidateProcess(vmid, pid)
	for _, c := range s.cores {
		c.l1d.InvalidateKind(cache.TLBEntry)
		c.l2.InvalidateKind(cache.TLBEntry)
	}
	s.l3.InvalidateKind(cache.TLBEntry)
	return n
}

func processExitTSB(s *System, vmid addr.VMID, pid addr.PID) int {
	return s.tsbB.InvalidateProcess(vmid, pid)
}

func processExitShared(s *System, vmid addr.VMID, pid addr.PID) int {
	return s.shared.InvalidateProcess(vmid, pid)
}
