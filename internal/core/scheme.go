package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/tlb"
)

// Scheme is the contract a translation scheme implements to plug into
// the System: everything that varies by scheme lives behind this
// interface, registered by name (RegisterScheme) instead of indexed by a
// closed enum. NewSystem resolves the mode's Scheme exactly once and
// stores it on the System, so no event path performs a registry lookup —
// the hot path stays a single indirect call and allocation-free.
//
// Hooks with nothing to do for a scheme are satisfied by embedding
// baseScheme. DESIGN.md §13 documents the full contract and how to add a
// scheme.
type Scheme interface {
	// Name is the registry key ("pom-tlb", "victima", ...).
	Name() Mode
	// Describe is a one-line summary for CLI help and docs.
	Describe() string
	// Validate checks the scheme-specific part of the configuration
	// (Config.Validate runs the scheme-independent checks first).
	Validate(cfg *Config) error
	// CalibratedWalks reports whether experiment harnesses may charge
	// this scheme's page walks at the measured baseline cost (§3.3).
	// Schemes whose benefit lives inside the walk itself (L4Cache,
	// DRAMCache) must return false so their walks are always simulated.
	CalibratedWalks() bool
	// Build constructs the scheme's large structure(s) during NewSystem
	// (cores do not exist yet; size them from s.cfg).
	Build(s *System)
	// Path resolves an L2 TLB miss — the Figure 8 per-scheme penalty
	// path. It must advance c.now by every serial step, install the
	// translation into the core's TLBs, and count exactly one Resolved
	// level.
	Path(s *System, c *coreState, va addr.VA) tlb.Entry
	// Seed installs a freshly-mapped page's translation into the
	// scheme's large structure under SteadyState; Seeds reports whether
	// the hook does anything (so the conformance suite knows what to
	// expect from Holds after a seed).
	Seed(s *System, c *coreState, va addr.VA, size addr.PageSize, pfn uint64)
	Seeds() bool
	// Shootdown drops one page's translation from the scheme's
	// structure, including any stale cached copies.
	Shootdown(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, vpn uint64, size addr.PageSize)
	// ProcessExit flushes every translation of (vm, pid) from the
	// scheme's structure, returning the number of entries removed.
	ProcessExit(s *System, vmid addr.VMID, pid addr.PID) int
	// Holds reports whether the scheme's large structure currently holds
	// a translation for the page — a logical probe that must not perturb
	// recency or statistics (the conformance suite's residual check).
	Holds(s *System, vmid addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) bool
	// AttachSelfCheck attaches the scheme's structures to the
	// differential oracle harness.
	AttachSelfCheck(s *System, sc *SelfCheck)
	// CheckInvariants validates the scheme's structures (the
	// scheme-independent hierarchy is checked by System.CheckInvariants).
	CheckInvariants(s *System) error
	// ResetStats clears the scheme's counters at the warmup boundary
	// (contents stay warm).
	ResetStats(s *System)
	// Aggregate folds the scheme's counters into a Result snapshot.
	Aggregate(s *System, res *Result)
}

// baseScheme provides the no-op defaults; concrete schemes embed it and
// override what they own.
type baseScheme struct{}

func (baseScheme) Validate(*Config) error { return nil }
func (baseScheme) CalibratedWalks() bool  { return true }
func (baseScheme) Build(*System)          {}
func (baseScheme) Seed(*System, *coreState, addr.VA, addr.PageSize, uint64) {
}
func (baseScheme) Seeds() bool { return false }
func (baseScheme) Shootdown(*System, addr.VMID, addr.PID, addr.VA, uint64, addr.PageSize) {
}
func (baseScheme) ProcessExit(*System, addr.VMID, addr.PID) int { return 0 }
func (baseScheme) Holds(*System, addr.VMID, addr.PID, addr.VA, addr.PageSize) bool {
	return false
}
func (baseScheme) AttachSelfCheck(*System, *SelfCheck) {}
func (baseScheme) CheckInvariants(*System) error       { return nil }
func (baseScheme) ResetStats(*System)                  {}
func (baseScheme) Aggregate(*System, *Result)          {}

// The scheme registry. Registration happens at init time (package core's
// own schemes below, or an importer's init); lookups after that are
// read-only, so no locking is needed.
var (
	schemeRegistry = map[Mode]Scheme{}
	schemeOrder    []Mode
)

// RegisterScheme adds a scheme to the registry under its Name. It
// panics on an empty or duplicate name — registration is init-time
// wiring, and a collision is a programming error.
func RegisterScheme(sch Scheme) {
	m := sch.Name()
	if m == "" {
		panic("core: scheme registered with empty name")
	}
	if _, dup := schemeRegistry[m]; dup {
		panic(fmt.Sprintf("core: scheme %q registered twice", m))
	}
	schemeRegistry[m] = sch
	schemeOrder = append(schemeOrder, m)
}

// SchemeFor resolves a mode's registered Scheme. The empty mode resolves
// to Baseline.
func SchemeFor(m Mode) (Scheme, bool) {
	sch, ok := schemeRegistry[m.normalize()]
	return sch, ok
}

// Modes lists every registered mode in registration order — the
// canonical scheme order for comparisons, sweeps and reports.
func Modes() []Mode {
	return append([]Mode(nil), schemeOrder...)
}

// ModeNames lists every registered mode name in registration order.
func ModeNames() []string {
	names := make([]string, len(schemeOrder))
	for i, m := range schemeOrder {
		names[i] = string(m)
	}
	return names
}

// CalibratedWalks reports whether the mode's walks may be charged at the
// measured baseline cost (false for unknown modes only defensively; the
// Baseline itself is excluded by callers, not here).
func CalibratedWalks(m Mode) bool {
	sch, ok := SchemeFor(m)
	return ok && sch.CalibratedWalks()
}

func init() {
	// Registration order is the canonical presentation order: the
	// paper's own four schemes and ablations first, then the related-work
	// competitors.
	RegisterScheme(baselineScheme{})
	RegisterScheme(pomScheme{})
	RegisterScheme(pomNoCacheScheme{})
	RegisterScheme(sharedScheme{})
	RegisterScheme(tsbScheme{})
	RegisterScheme(l4Scheme{})
	RegisterScheme(victimaScheme{})
	RegisterScheme(dramCacheScheme{})
}
