package core

import (
	"context"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

// shootSystem runs a short POM-TLB simulation and returns the system plus
// a virtual address known to be mapped and resident everywhere.
func shootSystem(t *testing.T, mode Mode) (*System, addr.VA) {
	t.Helper()
	cfg := smallConfig(mode)
	cfg.WarmupRefs = 0
	cfg.MaxRefs = 60_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := gupsParams(cfg.Cores)
	p.FootprintBytes = 16 << 20 // small: every page gets hot
	if _, err := sys.Run(context.Background(), trace.NewUniform(p), "shoot"); err != nil {
		t.Fatal(err)
	}
	// Pick a mapped 4K page.
	l := uint64(0x10_0000_0000) // generator base (large region empty is fine)
	_ = l
	for vpn := uint64(0); ; vpn++ {
		va := addr.VA(0x10_0000_0000 + vpn<<addr.Shift4K)
		if _, _, ok := sys.vms[0].Translate(1, va); ok {
			return sys, va
		}
		if vpn > 1<<20 {
			t.Fatal("no mapped page found")
		}
	}
}

func TestShootdownPOM(t *testing.T) {
	sys, va := shootSystem(t, POMTLB)
	vmid := sys.vms[0].ID()

	// Make the translation resident in the TLBs.
	c := sys.cores[0]
	c.now = c.clock
	sys.translate(c, va)
	if _, ok := c.l1tlb.Lookup(vmid, 1, va); !ok {
		t.Fatal("translation not in L1 TLB before shootdown")
	}

	if !sys.Shootdown(vmid, 1, va, addr.Page4K) {
		t.Fatal("Shootdown reported page unmapped")
	}
	if _, ok := c.l1tlb.Lookup(vmid, 1, va); ok {
		t.Error("L1 TLB entry survived shootdown")
	}
	if _, ok := c.l2tlb.Lookup(vmid, 1, va); ok {
		t.Error("L2 TLB entry survived shootdown")
	}
	if _, ok := sys.pom.Small.Search(vmid, 1, va); ok {
		t.Error("POM-TLB entry survived shootdown")
	}
	if _, _, ok := sys.vms[0].Translate(1, va); ok {
		t.Error("guest mapping survived shootdown")
	}
	line := sys.pom.Small.SetAddr(va, vmid).Line()
	if sys.l3.Lookup(line) || c.l2.Lookup(line) || c.l1d.Lookup(line) {
		t.Error("cached POM set line survived shootdown")
	}

	// A second shootdown finds nothing.
	if sys.Shootdown(vmid, 1, va, addr.Page4K) {
		t.Error("double shootdown should report unmapped")
	}
}

func TestShootdownTSB(t *testing.T) {
	sys, va := shootSystem(t, TSB)
	vmid := sys.vms[0].ID()
	if !sys.Shootdown(vmid, 1, va, addr.Page4K) {
		t.Fatal("Shootdown failed")
	}
	if _, ok := sys.tsbB.Lookup(vmid, 1, va, addr.Page4K); ok {
		t.Error("TSB entry survived shootdown")
	}
}

func TestShootdownShared(t *testing.T) {
	sys, va := shootSystem(t, SharedL2)
	vmid := sys.vms[0].ID()
	// Ensure resident in the shared TLB first.
	c := sys.cores[0]
	c.now = c.clock
	sys.translate(c, va)
	sys.Shootdown(vmid, 1, va, addr.Page4K)
	if _, ok := sys.shared.Lookup(vmid, 1, va); ok {
		t.Error("shared TLB entry survived shootdown")
	}
}

func TestShootdownThenRemapWorks(t *testing.T) {
	sys, va := shootSystem(t, POMTLB)
	vmid := sys.vms[0].ID()
	sys.Shootdown(vmid, 1, va, addr.Page4K)

	// Remap and translate again: must succeed with a fresh frame.
	c := sys.cores[0]
	if err := sys.touch(c, va, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	c.now = c.clock
	hpa, _ := sys.translate(c, va)
	want, _, ok := sys.vms[0].Translate(1, va)
	if !ok || hpa != want {
		t.Errorf("post-remap translation %v != logical %v (ok=%v)", hpa, want, ok)
	}
}
