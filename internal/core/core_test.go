package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// smallConfig returns a quick configuration for unit tests. The warmup
// must cover the test footprint (≈ 23k pages for 96 MB) so measured
// references hit a warmed POM-TLB, as in the paper's methodology.
func smallConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.Cores = 2
	cfg.WarmupRefs = 150_000
	cfg.MaxRefs = 50_000
	return cfg
}

// gupsParams is a TLB-hostile reference stream.
func gupsParams(threads int) trace.Params {
	return trace.Params{
		Seed:           3,
		FootprintBytes: 96 << 20,
		LargeFrac:      0.1,
		Threads:        threads,
		MeanGap:        5,
		WriteFrac:      0.3,
	}
}

func runMode(t *testing.T, mode Mode) Result {
	t.Helper()
	cfg := smallConfig(mode)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), trace.NewUniform(gupsParams(cfg.Cores)), "gups-test")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores should be invalid")
	}
	bad = DefaultConfig()
	bad.VMs = 0
	if bad.Validate() == nil {
		t.Error("virtualized with zero VMs should be invalid")
	}
	bad = DefaultConfig()
	bad.MaxRefs = 0
	if bad.Validate() == nil {
		t.Error("zero MaxRefs should be invalid")
	}
	bad = DefaultConfig()
	bad.L1D.Ways = 0
	if bad.Validate() == nil {
		t.Error("bad cache config should be invalid")
	}
}

func TestNewSystemRejectsInvalid(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		Baseline: "baseline", POMTLB: "pom-tlb", POMTLBNoCache: "pom-tlb-nocache",
		SharedL2: "shared-l2", TSB: "tsb", Victima: "victima", DRAMCache: "dram-cache",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%s.String() = %q", string(m), m.String())
		}
	}
	if Mode("").String() != "baseline" {
		t.Error("zero mode should read as the baseline it resolves to")
	}
}

func TestParseMode(t *testing.T) {
	for _, m := range Modes() {
		got, err := ParseMode(string(m))
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", string(m), got, err)
		}
	}
	for _, bad := range []string{"", "bogus", "POM-TLB"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) accepted", bad)
		}
	}
}

func TestRegistryCoversConstants(t *testing.T) {
	want := []Mode{Baseline, POMTLB, POMTLBNoCache, SharedL2, TSB, L4Cache, Victima, DRAMCache}
	reg := Modes()
	for _, m := range want {
		sch, ok := SchemeFor(m)
		if !ok {
			t.Fatalf("mode %s not registered", m)
		}
		if sch.Name() != m {
			t.Errorf("scheme registered under %s names itself %s", m, sch.Name())
		}
		if sch.Describe() == "" {
			t.Errorf("scheme %s has no description", m)
		}
		found := false
		for _, r := range reg {
			if r == m {
				found = true
			}
		}
		if !found {
			t.Errorf("Modes() omits %s", m)
		}
	}
}

func TestResolveLevelString(t *testing.T) {
	for r := ResL1TLB; r < numResolveLevels; r++ {
		if strings.HasPrefix(r.String(), "ResolveLevel(") {
			t.Errorf("level %d has no name", r)
		}
	}
	if !strings.HasPrefix(ResolveLevel(99).String(), "ResolveLevel(") {
		t.Error("unknown level string")
	}
}

func TestBaselineRuns(t *testing.T) {
	res := runMode(t, Baseline)
	if res.Records != 50_000 {
		t.Errorf("records = %d", res.Records)
	}
	if res.L2TLB.Misses == 0 {
		t.Error("gups over 128MB must miss the L2 TLB")
	}
	if res.AvgPenalty() <= 0 {
		t.Error("baseline penalty should be positive")
	}
	if res.Resolved[ResWalk] != res.L2TLB.Misses {
		t.Errorf("baseline resolves every L2 miss by walking: %d vs %d",
			res.Resolved[ResWalk], res.L2TLB.Misses)
	}
	if res.Walk.Walks2D == 0 {
		t.Error("virtualized baseline should do 2D walks")
	}
	if res.Cycles == 0 || res.Insts == 0 || res.IPC() <= 0 {
		t.Error("cycle/instruction accounting broken")
	}
}

func TestPOMTLBBeatsBaseline(t *testing.T) {
	base := runMode(t, Baseline)
	pom := runMode(t, POMTLB)
	if pom.AvgPenalty() >= base.AvgPenalty() {
		t.Errorf("POM-TLB penalty %.1f should beat baseline %.1f",
			pom.AvgPenalty(), base.AvgPenalty())
	}
	if pom.WalkEliminationRate() < 0.90 {
		t.Errorf("POM-TLB should eliminate ~all walks once warm, got %.2f",
			pom.WalkEliminationRate())
	}
	if pom.POMDRAM.Total() == 0 && pom.L2DProbe.Total() == 0 {
		t.Error("POM path never exercised")
	}
}

func TestPOMTLBResolveLevelsAccounted(t *testing.T) {
	res := runMode(t, POMTLB)
	var post uint64
	for _, lvl := range []ResolveLevel{ResL2D, ResL3D, ResPOM, ResWalk} {
		post += res.Resolved[lvl]
	}
	if post != res.L2TLB.Misses {
		t.Errorf("post-L2-miss resolutions %d != L2 misses %d", post, res.L2TLB.Misses)
	}
	if res.Resolved[ResL1TLB]+res.Resolved[ResL2TLB]+post != res.Records {
		t.Error("total resolutions != records")
	}
}

func TestPOMTLBNoCacheSkipsCaches(t *testing.T) {
	res := runMode(t, POMTLBNoCache)
	if res.L2DProbe.Total() != 0 || res.L3DProbe.Total() != 0 {
		t.Error("no-cache mode must not probe data caches for TLB entries")
	}
	if res.POMDRAM.Total() == 0 {
		t.Error("no-cache mode must hit the DRAM TLB")
	}
	if res.BypassPred.Total() != 0 {
		t.Error("bypass predictor is meaningless without caches")
	}
	// Figure 12: caching hides DRAM latency, so no-cache is slower.
	cached := runMode(t, POMTLB)
	if res.AvgPenalty() <= cached.AvgPenalty() {
		t.Errorf("no-cache penalty %.1f should exceed cached %.1f",
			res.AvgPenalty(), cached.AvgPenalty())
	}
}

func TestSharedL2Mode(t *testing.T) {
	res := runMode(t, SharedL2)
	if res.SharedTLB.Total() == 0 {
		t.Error("shared TLB never probed")
	}
	if res.Resolved[ResShared]+res.Resolved[ResWalk] != res.L2TLB.Misses {
		t.Error("shared-mode resolution accounting broken")
	}
}

func TestTSBMode(t *testing.T) {
	res := runMode(t, TSB)
	if res.TSBLookups.Total() == 0 {
		t.Error("TSB never probed")
	}
	if res.Resolved[ResTSB]+res.Resolved[ResWalk] != res.L2TLB.Misses {
		t.Error("TSB resolution accounting broken")
	}
	// Trap cost per miss: TSB penalty must exceed the trap cycles.
	if res.AvgPenalty() < float64(DefaultConfig().TSBCfg.TrapCycles) {
		t.Errorf("TSB penalty %.1f below trap cost", res.AvgPenalty())
	}
}

func TestSchemeOrderingOnTLBStressWorkload(t *testing.T) {
	// The paper's Figure 8 ordering: POM-TLB < Shared_L2 (for reach-bound
	// workloads) and POM-TLB < TSB < Baseline on penalty.
	pom := runMode(t, POMTLB)
	tsbRes := runMode(t, TSB)
	base := runMode(t, Baseline)
	if !(pom.AvgPenalty() < tsbRes.AvgPenalty()) {
		t.Errorf("POM (%.1f) should beat TSB (%.1f)", pom.AvgPenalty(), tsbRes.AvgPenalty())
	}
	// TSB reach covers this footprint, so it should be at worst on par
	// with the baseline (in the paper it helps gups only marginally).
	if tsbRes.AvgPenalty() > base.AvgPenalty()*1.05 {
		t.Errorf("TSB (%.1f) should be ≲ baseline (%.1f) on a 96MB uniform workload",
			tsbRes.AvgPenalty(), base.AvgPenalty())
	}
}

func TestNativeMode(t *testing.T) {
	cfg := smallConfig(Baseline)
	cfg.Virtualized = false
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), trace.NewUniform(gupsParams(cfg.Cores)), "native")
	if err != nil {
		t.Fatal(err)
	}
	if res.Walk.WalksNative == 0 || res.Walk.Walks2D != 0 {
		t.Errorf("native mode walked 2D: %+v", res.Walk)
	}
	// Native walks are ≤ 4 refs; virtualized up to 24.
	virt := runMode(t, Baseline)
	if res.AvgPenalty() >= virt.AvgPenalty() {
		t.Errorf("native penalty %.1f should be below virtualized %.1f",
			res.AvgPenalty(), virt.AvgPenalty())
	}
}

func TestMultiVM(t *testing.T) {
	cfg := smallConfig(POMTLB)
	cfg.Cores = 4
	cfg.VMs = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Hypervisor().VMs() != 2 {
		t.Fatalf("VMs = %d", sys.Hypervisor().VMs())
	}
	res, err := sys.Run(context.Background(), trace.NewUniform(gupsParams(cfg.Cores)), "multivm")
	if err != nil {
		t.Fatal(err)
	}
	// Both VMs' translations coexist in the POM-TLB.
	if sys.POM().Small.Count() == 0 {
		t.Error("POM-TLB empty after multi-VM run")
	}
	if res.WalkEliminationRate() < 0.5 {
		t.Errorf("multi-VM walk elimination = %.2f", res.WalkEliminationRate())
	}
}

func TestStreamingWorkloadHasFewL2Misses(t *testing.T) {
	cfg := smallConfig(POMTLB)
	sys, _ := NewSystem(cfg)
	p := trace.Params{
		Seed: 1, FootprintBytes: 64 << 20, LargeFrac: 0.9,
		Threads: cfg.Cores, MeanGap: 8, WriteFrac: 0.2,
	}
	res, err := sys.Run(context.Background(), trace.NewStream(p), "stream")
	if err != nil {
		t.Fatal(err)
	}
	// 90% 2 MB pages + sequential: almost every reference hits the L1/L2
	// TLBs (the L2 is only probed at page transitions, which all miss, so
	// the per-reference rate is the meaningful one).
	if mpr := float64(res.L2TLB.Misses) / float64(res.Records); mpr > 0.01 {
		t.Errorf("streaming L2 TLB misses per reference = %.4f, want tiny", mpr)
	}
}

func TestWarmupDiscarded(t *testing.T) {
	cfg := smallConfig(POMTLB)
	cfg.WarmupRefs = 10_000
	sys, _ := NewSystem(cfg)
	res, err := sys.Run(context.Background(), trace.NewUniform(gupsParams(cfg.Cores)), "warm")
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != uint64(cfg.MaxRefs) {
		t.Errorf("records = %d, want %d (warmup excluded)", res.Records, cfg.MaxRefs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		sys, _ := NewSystem(smallConfig(POMTLB))
		res, _ := sys.Run(context.Background(), trace.NewUniform(gupsParams(2)), "det")
		return res
	}
	a, b := run(), run()
	if a.PenaltyCycles != b.PenaltyCycles || a.Cycles != b.Cycles ||
		a.L2TLB != b.L2TLB || a.POMDRAM != b.POMDRAM {
		t.Error("identical configurations must produce identical results")
	}
}

func TestRunWithWorkloadProfile(t *testing.T) {
	p, _ := workloads.ByName("gups")
	cfg := smallConfig(POMTLB)
	sys, _ := NewSystem(cfg)
	res, err := sys.Run(context.Background(), p.Generator(cfg.Cores, cfg.Seed), p.Name)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "gups" {
		t.Errorf("workload = %q", res.Workload)
	}
	if res.SizePred.Total() == 0 {
		t.Error("size predictor never consulted")
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}

func TestResultZeroDivisions(t *testing.T) {
	var r Result
	if r.AvgPenalty() != 0 || r.WalkEliminationRate() != 0 || r.IPC() != 0 {
		t.Error("zero result should report zeros")
	}
}

func TestSystemString(t *testing.T) {
	sys, _ := NewSystem(smallConfig(POMTLB))
	if !strings.Contains(sys.String(), "pom-tlb") {
		t.Errorf("String() = %q", sys.String())
	}
}
