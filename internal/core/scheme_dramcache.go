package core

import (
	"repro/internal/addr"
	"repro/internal/dramcache"
	"repro/internal/oracle"
	"repro/internal/tlb"
)

// dramCacheScheme registers the die-stacked DRAM cache competitor (after
// Patil et al., arXiv 2002.01073): the same stacked capacity the POM-TLB
// spends on translations instead services the page walker's PTE reads,
// so walks get shorter rather than being eliminated. The translation
// path is the unmodified baseline walk; the cache itself is probed
// inside System.access for walk references only (data references bypass
// it — the study isolates the translation benefit of the silicon).
type dramCacheScheme struct{ baseScheme }

func (dramCacheScheme) Name() Mode { return DRAMCache }
func (dramCacheScheme) Describe() string {
	return "die-stacked DRAM cache servicing page-walk PTE reads (arXiv 2002.01073)"
}
func (dramCacheScheme) Validate(cfg *Config) error { return cfg.DCache.Validate() }

// CalibratedWalks is false: like the L4 study, the entire benefit lives
// inside the walk, which a measured-baseline walk charge would erase.
func (dramCacheScheme) CalibratedWalks() bool { return false }

func (dramCacheScheme) Build(s *System) { s.dcache = dramcache.MustNew(s.cfg.DCache) }

func (dramCacheScheme) Path(s *System, c *coreState, va addr.VA) tlb.Entry {
	return s.baselinePath(c, va)
}

func (dramCacheScheme) AttachSelfCheck(s *System, sc *SelfCheck) {
	oracle.NewRefCache(sc.h, s.dcache.Tags())
	oracle.NewRefDRAM(sc.h, s.dcache.Channel())
}

func (dramCacheScheme) CheckInvariants(s *System) error { return s.dcache.CheckInvariants() }
func (dramCacheScheme) ResetStats(s *System)            { s.dcache.ResetStats() }
func (dramCacheScheme) Aggregate(s *System, res *Result) {
	res.DCache = s.dcache.Stats()
	res.DCacheDRAM = s.dcache.DRAMStats()
}
