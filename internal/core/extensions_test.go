package core

import (
	"context"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/trace"
)

// hotParams is a reference stream with a hot set big enough to miss the
// L2 TLB but small enough that POM-TLB set lines stay cache-resident.
func hotParams(threads int) trace.Params {
	return trace.Params{
		Seed:           5,
		FootprintBytes: 128 << 20,
		LargeFrac:      0.1,
		Threads:        threads,
		MeanGap:        5,
		WriteFrac:      0.3,
		RunLines:       64,
	}
}

func runHot(t *testing.T, mutate func(*Config)) Result {
	t.Helper()
	cfg := smallConfig(POMTLB)
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), trace.NewHotCold(hotParams(cfg.Cores), 0.2, 0.9), "hot")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNeighborPrefetchReducesL2TLBMisses(t *testing.T) {
	base := runHot(t, nil)
	pref := runHot(t, func(c *Config) { c.NeighborPrefetch = true })
	// Installing the burst's neighbours into the L2 TLB converts future
	// misses on adjacent pages into L2 TLB hits.
	if pref.L2TLB.Misses >= base.L2TLB.Misses {
		t.Errorf("neighbor prefetch should cut L2 TLB misses: %d vs %d",
			pref.L2TLB.Misses, base.L2TLB.Misses)
	}
}

func TestNeighborPrefetchIsCorrect(t *testing.T) {
	// Translations served from prefetched entries must agree with the
	// logical mappings — verified by the data path: a wrong PFN would
	// mean the simulated data access targets an unowned frame, which the
	// deterministic run would surface as divergent stats. Assert directly
	// by re-translating a sample of addresses post-run.
	cfg := smallConfig(POMTLB)
	cfg.NeighborPrefetch = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background(), trace.NewHotCold(hotParams(cfg.Cores), 0.2, 0.9), "hot"); err != nil {
		t.Fatal(err)
	}
	c := sys.cores[0]
	sample := trace.NewHotCold(hotParams(cfg.Cores), 0.2, 0.9)
	checked := 0
	for i := 0; i < 2000 && checked < 200; i++ {
		va := sample.Next().VA
		want, _, ok := sys.vms[0].Translate(c.pid, va)
		if !ok {
			continue
		}
		c.now = c.clock
		got, _ := sys.translate(c, va)
		if got != want {
			t.Fatalf("prefetched translation wrong for %v: %v != %v", va, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no mapped pages to check")
	}
}

func TestTLBAwareCachingChangesBehaviour(t *testing.T) {
	blind := runHot(t, nil)
	tlbFirst := runHot(t, func(c *Config) { c.CachePriority = cache.PreferTLB })
	dataFirst := runHot(t, func(c *Config) { c.CachePriority = cache.PreferData })

	// Preferring TLB entries must not reduce the TLB-entry hit ratio in
	// the caches, and preferring data must not increase it.
	if tlbFirst.L2DProbe.Ratio()+1e-9 < blind.L2DProbe.Ratio()-0.05 {
		t.Errorf("PreferTLB lowered L2D$ TLB hits: %.3f vs %.3f",
			tlbFirst.L2DProbe.Ratio(), blind.L2DProbe.Ratio())
	}
	if dataFirst.L2DProbe.Ratio() > blind.L2DProbe.Ratio()+0.05 {
		t.Errorf("PreferData raised L2D$ TLB hits: %.3f vs %.3f",
			dataFirst.L2DProbe.Ratio(), blind.L2DProbe.Ratio())
	}
	// All three still translate everything correctly.
	for _, r := range []Result{blind, tlbFirst, dataFirst} {
		if r.WalkEliminationRate() < 0.95 {
			t.Errorf("walk elimination dropped: %.3f", r.WalkEliminationRate())
		}
	}
}

func TestCoherenceWriteInvalidate(t *testing.T) {
	cfg := smallConfig(POMTLB)
	cfg.Coherence = true
	cfg.WarmupRefs = 10_000
	cfg.MaxRefs = 40_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shared hot footprint with plenty of writes: cores write lines the
	// others have cached.
	p := trace.Params{
		Seed: 9, FootprintBytes: 8 << 20, LargeFrac: 0,
		Threads: cfg.Cores, MeanGap: 3, WriteFrac: 0.5,
	}
	res, err := sys.Run(context.Background(), trace.NewUniform(p), "coh")
	if err != nil {
		t.Fatal(err)
	}
	if res.CoherenceInvalidations == 0 {
		t.Error("shared writes should invalidate peer copies")
	}
}

func TestCoherenceSnoopTransfer(t *testing.T) {
	cfg := smallConfig(POMTLB)
	cfg.Coherence = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a line in core 1's private L1D that the shared L3 does not
	// hold; core 0's load must be served by a cache-to-cache transfer.
	const line = uint64(0x1234)
	sys.cores[1].l1d.Fill(line, false, cache.Data)
	if sys.l3.Lookup(line) {
		t.Fatal("test setup: line unexpectedly in L3")
	}
	sys.cores[0].now = 0
	sys.dataAccess(sys.cores[0], addr.HPA(line<<addr.CacheLineShift), false, cache.Data)
	if sys.res.SnoopTransfers != 1 {
		t.Errorf("SnoopTransfers = %d, want 1", sys.res.SnoopTransfers)
	}
	// A store from core 0 now invalidates core 1's copy.
	sys.cores[0].now = 0
	sys.dataAccess(sys.cores[0], addr.HPA(line<<addr.CacheLineShift), true, cache.Data)
	if sys.cores[1].l1d.Lookup(line) {
		t.Error("peer copy survived a coherent store")
	}
	if sys.res.CoherenceInvalidations == 0 {
		t.Error("invalidation not counted")
	}
}

func TestCoherenceOffByDefault(t *testing.T) {
	res := runHot(t, nil)
	if res.CoherenceInvalidations != 0 || res.SnoopTransfers != 0 {
		t.Error("coherence counters should be zero when disabled")
	}
}

func TestHugePageTranslation(t *testing.T) {
	// 1 GB pages exist in the system (Table 1) even though the paper's
	// workloads never use them: map one explicitly and translate through
	// every scheme.
	for _, mode := range []Mode{Baseline, POMTLB, SharedL2, TSB} {
		cfg := smallConfig(mode)
		cfg.WarmupRefs = 0
		cfg.MaxRefs = 1 // Run() not used; we drive translate directly
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vm := sys.vms[0]
		va := addr.VA(0x40_0000_0000) // 1 GB aligned
		if _, err := vm.Touch(1, va, addr.Page1G); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		c := sys.cores[0]
		if cfg.SteadyState {
			sys.seed(c, va)
		}
		want, size, ok := vm.Translate(1, va+12345)
		if !ok || size != addr.Page1G {
			t.Fatalf("%s: logical translate failed (size %v)", mode, size)
		}
		c.now = c.clock
		got, _ := sys.translate(c, va+12345)
		if got != want {
			t.Fatalf("%s: 1GB translate = %v, want %v", mode, got, want)
		}
		// Second access: the L1 huge TLB holds it.
		c.now = c.clock
		sys.translate(c, va+99)
		if c.l1tlb.Huge.Count() == 0 {
			t.Errorf("%s: huge L1 TLB empty after 1GB translations", mode)
		}
	}
}
