// Package core wires every substrate into the full memory-hierarchy
// simulator of Section 3.2: per-core two-level TLBs, two levels of private
// data caches, a shared L3, the off-chip DRAM, and — depending on the
// simulated scheme — the DRAM-based POM-TLB with its predictors, a shared
// SRAM L2 TLB, a SPARC-style TSB, or one of the registered competitor
// schemes. It consumes trace records (scheduled by instruction cadence)
// and reports the per-scheme translation penalty and all the
// hit-ratio/predictor/row-buffer statistics behind Figures 8–12.
package core

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/dramcache"
	"repro/internal/pagetable"
	"repro/internal/pomtlb"
	"repro/internal/tlb"
	"repro/internal/tsb"
	"repro/internal/victima"
)

// Mode names the translation scheme simulated after an L2 TLB miss. It
// is an open string type resolved through the scheme registry
// (RegisterScheme / SchemeFor), so new schemes plug in without touching
// an enum. All modes share identical L1/L2 TLBs and data caches so their
// per-miss penalties are directly comparable (the paper's Figure 8
// framing). The empty string normalizes to Baseline, keeping zero-value
// Configs safe.
type Mode string

const (
	// Baseline resolves L2 TLB misses with the 2D nested page walk,
	// accelerated by page-structure caches and a nested TLB — the
	// Skylake-like baseline.
	Baseline Mode = "baseline"
	// POMTLB adds the paper's DRAM L3 TLB: predictors, data-cache probes
	// of the addressable TLB sets, then the die-stacked DRAM, and only
	// then a page walk.
	POMTLB Mode = "pom-tlb"
	// POMTLBNoCache is POMTLB with data-cache probing disabled — every
	// POM-TLB access goes to the die-stacked DRAM (Figure 12's ablation).
	POMTLBNoCache Mode = "pom-tlb-nocache"
	// SharedL2 probes a shared SRAM TLB with the combined capacity of all
	// cores' L2 TLBs before walking (the Shared_L2 comparison scheme).
	SharedL2 Mode = "shared-l2"
	// TSB traps to software and probes a 16 MB direct-mapped translation
	// storage buffer before a software page walk (the SPARC comparison).
	TSB Mode = "tsb"
	// L4Cache spends the same die-stacked capacity as an L4 *data* cache
	// instead of a TLB — the Section 2.2 trade-off. Translations use the
	// baseline walk (whose PTE reads also benefit from the L4).
	L4Cache Mode = "l4-cache"
	// Victima stores TLB entries in the L2 data cache's ways with a
	// PTE-aware replacement policy and a dual-lookup cost model (after
	// Kanellopoulos et al., arXiv 2310.04158).
	Victima Mode = "victima"
	// DRAMCache services page-walk memory references from a die-stacked
	// DRAM cache ahead of off-chip memory (after Patil et al., arXiv
	// 2002.01073) — walks get shorter instead of being eliminated.
	DRAMCache Mode = "dram-cache"
)

// String implements fmt.Stringer; the zero Mode reads as the baseline it
// resolves to.
func (m Mode) String() string {
	if m == "" {
		return string(Baseline)
	}
	return string(m)
}

// normalize maps the zero value to Baseline.
func (m Mode) normalize() Mode {
	if m == "" {
		return Baseline
	}
	return m
}

// ParseMode resolves a scheme name from a CLI flag or an API request
// against the registry.
func ParseMode(s string) (Mode, error) {
	m := Mode(s)
	if s == "" {
		return "", fmt.Errorf("core: empty mode (%s)", strings.Join(ModeNames(), ", "))
	}
	if _, ok := SchemeFor(m); !ok {
		return "", fmt.Errorf("core: unknown mode %q (%s)", s, strings.Join(ModeNames(), ", "))
	}
	return m, nil
}

// Config describes one simulation.
type Config struct {
	// Mode is the translation scheme.
	Mode Mode
	// Cores is the number of simulated cores (trace threads map onto
	// cores round-robin).
	Cores int
	// VMs is the number of virtual machines; cores are assigned to VMs
	// round-robin. Ignored when Virtualized is false.
	VMs int
	// Virtualized selects 2D nested translation (true) or native 1D
	// walks (false).
	Virtualized bool

	// L1D, L2, L3 are the data-cache levels (Table 1 defaults).
	L1D, L2, L3 cache.Config
	// CachePriority enables the Section 5.1 TLB-aware replacement policy
	// in the L2 and L3 data caches.
	CachePriority cache.Priority
	// L2TLB is the per-core unified TLB; L1 TLBs are the fixed Table 1
	// split pair.
	L2TLB tlb.Config
	// L1MissPenalty and L2MissPenalty are the Table 1 TLB miss penalties
	// in cycles.
	L1MissPenalty uint64
	L2MissPenalty uint64

	// POM configures the DRAM L3 TLB (POMTLB modes).
	POM pomtlb.Config
	// TSBCfg configures the translation storage buffer (TSB mode).
	TSBCfg tsb.Config
	// VictimaCfg configures the cache-resident TLB store (Victima mode).
	VictimaCfg victima.Config
	// DCache configures the die-stacked page-walk cache (DRAMCache mode).
	DCache dramcache.Config
	// Walker configures the page-structure caches and nested TLB.
	Walker pagetable.WalkerConfig
	// DDR is the off-chip channel backing ordinary data.
	DDR dram.Config
	// DDRChannels is the number of interleaved off-chip channels
	// (dual-channel DDR4 on desktop Skylake).
	DDRChannels int

	// DisableBypassPredictor forces every POM-TLB access through the
	// data-cache probes (the bypass-off ablation).
	DisableBypassPredictor bool

	// Coherence enables a write-invalidate protocol over the private
	// L1D/L2 caches: a store invalidates other cores' copies of the line,
	// and a load that misses the shared L3 is served by a cache-to-cache
	// transfer when another core holds the line. Off by default — the
	// paper's trace-driven methodology (like most) treats private caches
	// as incoherent timing filters; enable it to study multithreaded
	// sharing effects.
	Coherence bool

	// NeighborPrefetch enables the Section 6 prefetching extension: a
	// fetched POM-TLB set carries the translations of four consecutive
	// virtual pages, so on a hit the other valid entries of the burst are
	// installed into the L2 TLB at no extra memory cost.
	NeighborPrefetch bool

	// WalkPenaltyOverride, when nonzero, charges this many cycles for
	// each page walk instead of simulating it reference by reference.
	// The experiments harness sets it to the workload's *measured*
	// baseline penalty (Table 2) for the scheme runs: the walk path of
	// every scheme is the baseline path, whose cost the paper takes from
	// hardware measurement rather than simulation (Section 3.3). Leave 0
	// to simulate walks (the Baseline mode always should, as must any
	// scheme whose benefit lives inside the walk — see
	// Scheme.CalibratedWalks).
	WalkPenaltyOverride uint64

	// SteadyState seeds the scheme's large translation structure
	// (POM-TLB, TSB or shared TLB) with each page's translation when the
	// OS first maps it. The paper evaluates 20-billion-instruction traces
	// whose compulsory misses are fully amortized; with the short traces
	// this simulator runs, first-touch walks would otherwise dominate
	// every statistic. L1/L2 TLBs and data caches are NOT seeded — only
	// the structure whose steady-state contents the scheme depends on.
	SteadyState bool

	// WarmupRefs references run before statistics are reset.
	WarmupRefs int
	// MaxRefs is the number of measured references.
	MaxRefs int
	// Seed feeds the workload generator.
	Seed uint64
}

// DefaultConfig returns the Table 1 8-core virtualized system running the
// POM-TLB scheme.
func DefaultConfig() Config {
	return Config{
		Mode:          POMTLB,
		Cores:         8,
		VMs:           1,
		Virtualized:   true,
		L1D:           cache.L1D(),
		L2:            cache.L2(),
		L3:            cache.L3(),
		L2TLB:         tlb.L2Unified(),
		L1MissPenalty: 9,
		L2MissPenalty: 17,
		POM:           pomtlb.DefaultConfig(),
		TSBCfg:        tsb.DefaultConfig(),
		VictimaCfg:    victima.DefaultConfig(),
		DCache:        dramcache.DefaultConfig(),
		Walker:        pagetable.DefaultWalkerConfig(),
		DDR:           dram.DDR4_2133(),
		DDRChannels:   2,
		SteadyState:   true,
		WarmupRefs:    200_000,
		MaxRefs:       1_000_000,
		Seed:          1,
	}
}

// Validate reports configuration errors: the scheme-independent limits
// here, then the registered scheme's own Validate hook.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.Cores > 256:
		return fmt.Errorf("core: cores %d out of range", c.Cores)
	case c.Virtualized && c.VMs <= 0:
		return fmt.Errorf("core: virtualized run needs at least one VM")
	case c.MaxRefs <= 0:
		return fmt.Errorf("core: MaxRefs must be positive")
	case c.WarmupRefs < 0:
		return fmt.Errorf("core: negative warmup")
	}
	if err := c.L1D.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.L3.Validate(); err != nil {
		return err
	}
	if err := c.L2TLB.Validate(); err != nil {
		return err
	}
	if err := c.DDR.Validate(); err != nil {
		return err
	}
	sch, ok := SchemeFor(c.Mode)
	if !ok {
		return fmt.Errorf("core: unknown mode %q (%s)", string(c.Mode), strings.Join(ModeNames(), ", "))
	}
	return sch.Validate(&c)
}
