package core

import "testing"

// FuzzParseMode throws arbitrary strings at the registry's name parser.
// The invariants: every registered name parses to itself, everything the
// parser accepts resolves to a registered scheme whose Name round-trips,
// and nothing — not the empty string, not case variants, not garbage —
// panics or sneaks an unregistered mode through.
func FuzzParseMode(f *testing.F) {
	for _, n := range ModeNames() {
		f.Add(n)
	}
	f.Add("")
	f.Add("POM-TLB")
	f.Add("victima ")
	f.Add("bogus")
	f.Add("pom-tlb\x00")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMode(s)
		if err != nil {
			if _, registered := schemeRegistry[Mode(s)]; registered && s != "" {
				t.Errorf("ParseMode rejected registered name %q: %v", s, err)
			}
			return
		}
		sch, ok := SchemeFor(m)
		if !ok {
			t.Fatalf("ParseMode(%q) accepted an unregistered mode %q", s, m)
		}
		if sch.Name() != m {
			t.Errorf("ParseMode(%q) = %q but the scheme's Name is %q", s, m, sch.Name())
		}
		if m.String() != s {
			t.Errorf("accepted mode %q does not round-trip through String: %q", s, m.String())
		}
	})
}
