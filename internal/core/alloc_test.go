package core

import (
	"context"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

// allocGen builds a generator whose footprint is small enough to be fully
// demand-mapped during warmup, so steady state touches no new pages.
func allocGen(cores int) trace.Generator {
	return trace.NewUniform(trace.Params{
		Seed:           7,
		FootprintBytes: 4 << 20,
		LargeFrac:      0.25,
		Threads:        cores,
		MeanGap:        4,
		WriteFrac:      0.3,
	})
}

// TestSteadyStateZeroAllocs pins the tentpole property: with self-checking
// off, the per-record hot path of every measured scheme allocates nothing
// once the footprint is mapped and every structure is warm. A regression
// here is exactly what the perf-trajectory gate exists to catch, but this
// test catches it in 'go test' without timing noise.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, mode := range Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Cores = 2
			cfg.WarmupRefs = 0
			cfg.MaxRefs = 1
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			g := allocGen(cfg.Cores)
			// Reach steady state: map the whole footprint, warm every TLB,
			// cache, predictor, and the scheduler's per-core rings.
			if err := sys.Advance(ctx, g, 100_000); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(10, func() {
				if err := sys.Advance(ctx, g, 2_000); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("mode %s: %.3f allocs per 2000-record window in steady state, want 0", mode, avg)
			}
		})
	}
}

// TestSteadyStateZeroAllocsNeighborPrefetch covers the §6 extension path
// separately: the prefetch loop reads the POM-TLB set through SetView,
// which must alias the live set rather than copy it.
func TestSteadyStateZeroAllocsNeighborPrefetch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = POMTLB
	cfg.Cores = 2
	cfg.NeighborPrefetch = true
	cfg.WarmupRefs = 0
	cfg.MaxRefs = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := allocGen(cfg.Cores)
	if err := sys.Advance(ctx, g, 100_000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if err := sys.Advance(ctx, g, 2_000); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("neighbor-prefetch: %.3f allocs per window in steady state, want 0", avg)
	}
}

// TestSteadyStateZeroAllocsWithScenario pins the consolidation-layer
// constraint: with a scenario schedule attached (tenant switches at
// quantum boundaries, tier accounting on), the record loop must stay
// allocation-free. Events ride the batch boundaries and the per-tier
// attribution is pure integer work, so nothing may allocate once both
// tenants' footprints are mapped.
func TestSteadyStateZeroAllocsWithScenario(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = POMTLB
	cfg.Cores = 2
	cfg.VMs = 2
	cfg.WarmupRefs = 0
	cfg.MaxRefs = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant switch every 1000 records, alternating both VMs across both
	// cores, far past the measured window.
	var events []Event
	for at := uint64(0); at <= 400_000; at += 1000 {
		q := at / 1000
		events = append(events, Event{At: at, Fire: func(s *System) {
			for c := 0; c < cfg.Cores; c++ {
				vm := 1 + (q+uint64(c))%2
				if err := s.SetCoreTenant(c, addr.VMID(vm), 1, uint8(vm%NumTiers)); err != nil {
					t.Error(err)
				}
			}
		}})
	}
	sys.SetEvents(events)
	ctx := context.Background()
	g := allocGen(cfg.Cores)
	if err := sys.Advance(ctx, g, 150_000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if err := sys.Advance(ctx, g, 2_000); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("scenario: %.3f allocs per 2000-record window in steady state, want 0", avg)
	}
	if !sys.Snapshot().HasTiers() {
		t.Error("tier breakdown empty despite scenario assignment")
	}
}

// TestShadowObservesAfterDevirtualization asserts the devirtualized
// observer seams still deliver every event: with self-checking on, the
// reference models must record at least one checked decision per
// simulated record (each record touches the L1 TLB shadow at minimum),
// and the run must verify clean.
func TestShadowObservesAfterDevirtualization(t *testing.T) {
	for _, mode := range []Mode{Baseline, SharedL2, TSB, POMTLB, Victima, DRAMCache} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Cores = 2
			cfg.WarmupRefs = 0
			cfg.MaxRefs = 30_000
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sc := sys.EnableSelfCheck()
			res, err := sys.Run(context.Background(), allocGen(cfg.Cores), "devirt")
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Err(); err != nil {
				t.Fatalf("self-check diverged: %v", err)
			}
			if got := sc.Harness().Decisions(); got < res.Records {
				t.Errorf("only %d checked decisions for %d records: shadow hooks are dropping observations",
					got, res.Records)
			}
		})
	}
}
