package core

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/pagetable"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Result carries every statistic a simulation produced. The fields marked
// with figure numbers are the quantities the paper's evaluation plots.
type Result struct {
	Mode     Mode
	Workload string

	Records uint64
	Insts   uint64
	Cycles  uint64 // slowest core's cycle count

	// L1TLB and L2TLB aggregate all cores' TLB hit/miss counters.
	L1TLB stats.HitMiss
	L2TLB stats.HitMiss

	// PenaltyCycles is the total translation cycles spent after L2 TLB
	// misses; PenaltyCycles / L2TLB.Misses is P_avg of Equation (3)/(4).
	PenaltyCycles uint64

	// Resolved counts where translations completed (Figure 9's levels).
	Resolved [numResolveLevels]uint64

	// L2DProbe/L3DProbe count data-cache probes for POM-TLB sets
	// (Figure 9: L2D$ ≈ 89.7%, L3D$ lower).
	L2DProbe stats.HitMiss
	L3DProbe stats.HitMiss
	// POMDRAM counts associative searches performed at the die-stacked
	// DRAM (Figure 9: ≈ 88%).
	POMDRAM stats.HitMiss

	// SizePred/BypassPred are predictor accuracy counters (Figure 10).
	SizePred   stats.HitMiss
	BypassPred stats.HitMiss

	// Walk aggregates page-walk activity across cores.
	Walk pagetable.WalkStats

	// SharedTLB / TSB counters for the comparison schemes.
	SharedTLB    stats.HitMiss
	TSBLookups   stats.HitMiss
	TSBConflicts uint64

	// Victima aggregates the cache-resident TLB stores' probe counters
	// (Victima mode).
	Victima stats.HitMiss

	// POMDRAMStats carries the die-stacked channel counters (Figure 11's
	// row-buffer hit rate); DDRStats the off-chip channel's.
	POMDRAMStats dram.Stats
	DDRStats     dram.Stats

	// DataLat is the mean data-access latency (translation excluded).
	DataLat stats.Mean

	// L2Cache aggregates the private L2 data caches; L3Cache is the
	// shared L3 (data vs TLB-entry split included).
	L2Cache cache.Stats
	L3Cache cache.Stats

	// L4Cache and L4DRAMStats are populated in L4Cache mode (§2.2
	// trade-off study).
	L4Cache     cache.Stats
	L4DRAMStats dram.Stats

	// DCache and DCacheDRAM are populated in DRAMCache mode: the stacked
	// page-walk cache's tag directory and its die-stacked channel.
	DCache     cache.Stats
	DCacheDRAM dram.Stats

	// CoherenceInvalidations and SnoopTransfers are populated when
	// Config.Coherence is enabled.
	CoherenceInvalidations uint64
	SnoopTransfers         uint64

	// TierRecords/TierSRAMHits/TierWalks/TierPenalty break translation
	// behaviour down by the issuing core's scenario tenant tier
	// (hot/warm/cold, indexed by TierNames). Populated only once a
	// consolidation scenario has assigned tiers via SetCoreTenant;
	// otherwise all zero. TierSRAMHits counts references resolved in the
	// core's own L1/L2 SRAM TLBs; TierWalks counts full page walks;
	// TierPenalty is the post-L2-miss translation cycles attributed to
	// the tier.
	TierRecords  [NumTiers]uint64
	TierSRAMHits [NumTiers]uint64
	TierWalks    [NumTiers]uint64
	TierPenalty  [NumTiers]uint64
}

// AvgPenalty returns P_avg: mean translation cycles per L2 TLB miss.
func (r Result) AvgPenalty() float64 {
	if r.L2TLB.Misses == 0 {
		return 0
	}
	return float64(r.PenaltyCycles) / float64(r.L2TLB.Misses)
}

// WalkEliminationRate returns the fraction of L2 TLB misses that were
// resolved without a page walk (the paper's "99% of page walks can be
// eliminated" claim).
func (r Result) WalkEliminationRate() float64 {
	if r.L2TLB.Misses == 0 {
		return 0
	}
	return 1 - float64(r.Resolved[ResWalk])/float64(r.L2TLB.Misses)
}

// HasTiers reports whether a consolidation scenario populated the
// per-tier breakdown.
func (r Result) HasTiers() bool {
	for _, n := range r.TierRecords {
		if n > 0 {
			return true
		}
	}
	return false
}

// TierShare returns tier t's fraction of the measured records.
func (r Result) TierShare(t int) float64 {
	if r.Records == 0 {
		return 0
	}
	return float64(r.TierRecords[t]) / float64(r.Records)
}

// TierSRAMHitRatio returns the fraction of tier t's references resolved
// in the core's own SRAM TLBs.
func (r Result) TierSRAMHitRatio(t int) float64 {
	if r.TierRecords[t] == 0 {
		return 0
	}
	return float64(r.TierSRAMHits[t]) / float64(r.TierRecords[t])
}

// TierWalkElim returns the fraction of tier t's L2 TLB misses resolved
// without a page walk — the per-tier view of WalkEliminationRate.
func (r Result) TierWalkElim(t int) float64 {
	miss := r.TierRecords[t] - r.TierSRAMHits[t]
	if miss == 0 {
		return 0
	}
	return 1 - float64(r.TierWalks[t])/float64(miss)
}

// TierAvgPenalty returns tier t's mean translation cycles per L2 TLB
// miss — the per-tier view of AvgPenalty.
func (r Result) TierAvgPenalty(t int) float64 {
	miss := r.TierRecords[t] - r.TierSRAMHits[t]
	if miss == 0 {
		return 0
	}
	return float64(r.TierPenalty[t]) / float64(miss)
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// String summarises the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: refs=%d P_avg=%.1f walkElim=%.1f%% L2D$TLB=%.1f%% POM=%.1f%% RBH=%.1f%%",
		r.Workload, r.Mode, r.Records, r.AvgPenalty(), 100*r.WalkEliminationRate(),
		100*r.L2DProbe.Ratio(), 100*r.POMDRAM.Ratio(), 100*r.POMDRAMStats.RowBufferHitRate())
}

// recordRing is a growable power-of-two circular buffer of trace
// records. Each core's ring reaches a stable capacity after the first
// few thousand records and the loop stops allocating — unlike the
// previous slice-of-slices queue, whose head was dropped by reslicing so
// every append eventually grew the backing array again.
type recordRing struct {
	buf  []trace.Record
	head int
	n    int
}

func (r *recordRing) push(rec trace.Record) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = rec
	r.n++
}

func (r *recordRing) pop() (trace.Record, bool) {
	if r.n == 0 {
		return trace.Record{}, false
	}
	rec := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return rec, true
}

func (r *recordRing) grow() {
	nb := make([]trace.Record, max(64, 2*len(r.buf)))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// scheduler delivers each core's records in trace order while letting the
// caller always advance the core whose clock is furthest behind — the
// Ramulator-like issue-cadence scheduling of Section 3.2. Without it,
// per-core clocks drift apart and the shared DRAM channels would charge
// phantom queueing waits against whichever core's clock lags.
type scheduler struct {
	g     trace.Generator
	cores int
	rings []recordRing
}

func newScheduler(g trace.Generator, cores int) *scheduler {
	return &scheduler{g: g, cores: cores, rings: make([]recordRing, cores)}
}

// next returns the next record for the given core, buffering other cores'
// records encountered along the way.
func (sc *scheduler) next(core int) trace.Record {
	if rec, ok := sc.rings[core].pop(); ok {
		return rec
	}
	for {
		rec := sc.g.Next()
		c := int(rec.Thread) % sc.cores
		if c == core {
			return rec
		}
		sc.rings[c].push(rec)
	}
}

// minClockCore returns the core with the smallest committed clock.
func (s *System) minClockCore() *coreState {
	min := s.cores[0]
	for _, c := range s.cores[1:] {
		if c.clock < min.clock {
			min = c
		}
	}
	return min
}

// cancelCheckInterval is how many records run between context polls: a
// record costs tens of nanoseconds to simulate, so checking every 1024
// keeps cancellation latency well under a millisecond at negligible cost.
const cancelCheckInterval = 1024

// selfCheckInterval is how many records run between structural invariant
// sweeps when self-checking is enabled. A sweep walks every set of every
// structure, so it is far costlier than a record; every 64 Ki records it
// stays under a few percent of runtime while still catching corruption
// close to where it happened.
const selfCheckInterval = 64 * 1024

// runRecordsLocked runs one batch under the stats mutex, so a concurrent
// Snapshot never observes half-updated counters. The lock is taken once
// per batch (≤ cancelCheckInterval records), not per record, keeping the
// hot path allocation- and contention-free; the deferred unlock also
// releases the mutex when a generator aborts the batch by panicking
// (the server's session-teardown path).
func (s *System) runRecordsLocked(sched *scheduler, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runRecords(sched, n)
}

// runRecords consumes exactly n records through the scheduler — the
// allocation-free inner loop shared by Run and Advance. Boundary events
// (context polls, the warmup reset, self-check sweeps) are the callers'
// business: they size n so the loop body carries no per-record checks.
// Callers synchronize via runRecordsLocked.
func (s *System) runRecords(sched *scheduler, n int) error {
	tiered := s.tierTrack
	for i := 0; i < n; i++ {
		c := s.minClockCore()
		rec := sched.next(c.id)
		if err := s.touch(c, rec.VA, rec.Size); err != nil {
			return fmt.Errorf("core: demand-mapping %v: %w", rec.VA, err)
		}
		// Non-memory instructions retire at IPC 1 (linear model, §3.3).
		c.clock += uint64(rec.Gap)
		c.insts += uint64(rec.Gap) + 1

		c.now = c.clock
		// Per-tier attribution (consolidation scenarios only): deltas of
		// the aggregate counters across translate, charged to the issuing
		// core's tier — integer snapshots only, so the loop stays
		// allocation-free.
		var sramB, walkB, penB uint64
		if tiered {
			sramB = s.res.Resolved[ResL1TLB] + s.res.Resolved[ResL2TLB]
			walkB = s.res.Resolved[ResWalk]
			penB = s.res.PenaltyCycles
		}
		hpa, _ := s.translate(c, rec.VA)
		if tiered {
			t := c.tier
			s.res.TierRecords[t]++
			s.res.TierSRAMHits[t] += s.res.Resolved[ResL1TLB] + s.res.Resolved[ResL2TLB] - sramB
			s.res.TierWalks[t] += s.res.Resolved[ResWalk] - walkB
			s.res.TierPenalty[t] += s.res.PenaltyCycles - penB
		}
		dlat := s.dataAccess(c, hpa, rec.Write, cache.Data)
		s.res.DataLat.Observe(float64(dlat))
		c.clock = c.now
		s.res.Records++
	}
	s.consumed += uint64(n)
	return nil
}

// nextBoundary returns the first record index after i at which the run
// loop must surface for an event: a cancellation poll, the warmup
// statistics reset, or (when self-checking) an invariant sweep.
func nextBoundary(i, warmup int, selfCheck bool) int {
	next := (i/cancelCheckInterval + 1) * cancelCheckInterval
	if warmup > i && warmup < next {
		next = warmup
	}
	if selfCheck {
		sweep := (i/selfCheckInterval)*selfCheckInterval + selfCheckInterval - 1
		if sweep <= i {
			sweep += selfCheckInterval
		}
		if sweep < next {
			next = sweep
		}
	}
	return next
}

// Run consumes WarmupRefs + MaxRefs records from the generator, resetting
// statistics after warmup, and returns the final Result. The simulation
// polls ctx between record batches and returns ctx.Err() (with the
// partial Result accumulated so far) when the deadline passes or the
// campaign is cancelled mid-run. Records are consumed in batches between
// event boundaries, so the per-record path carries no bookkeeping.
func (s *System) Run(ctx context.Context, g trace.Generator, workload string) (Result, error) {
	s.SetWorkload(workload)
	total := s.cfg.WarmupRefs + s.cfg.MaxRefs
	sched := newScheduler(g, len(s.cores))
	for i := 0; i < total; {
		select {
		case <-ctx.Done():
			s.finalize()
			return s.res, fmt.Errorf("core: %s interrupted after %d/%d refs: %w",
				workload, i, total, ctx.Err())
		default:
		}
		s.fireDueEvents()
		if i == s.cfg.WarmupRefs {
			s.ResetStats()
		}
		if s.selfCheck != nil && i%selfCheckInterval == selfCheckInterval-1 {
			s.selfCheck.sweep()
		}
		n := total - i
		if next := nextBoundary(i, s.cfg.WarmupRefs, s.selfCheck != nil); next-i < n {
			n = next - i
		}
		if gap, ok := s.nextEventGap(); ok && gap > 0 && gap < uint64(n) {
			n = int(gap)
		}
		if err := s.runRecordsLocked(sched, n); err != nil {
			return s.res, err
		}
		i += n
	}
	// Events scheduled exactly at end-of-run still fire (a scenario's
	// final quantum boundary can coincide with the trace length).
	s.fireDueEvents()
	s.finalize()
	return s.res, nil
}

// Advance consumes exactly n records from the generator without any
// warmup bookkeeping, statistics reset, or finalization — the primitive
// the perf-trajectory harness times: call it once to reach steady state,
// then time subsequent calls as pure record-loop windows. The scheduler
// (and its buffered records) persists across Advance calls on the same
// generator.
func (s *System) Advance(ctx context.Context, g trace.Generator, n int) error {
	if s.sched == nil || s.sched.g != g {
		s.sched = newScheduler(g, len(s.cores))
	}
	for done := 0; done < n; {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		s.fireDueEvents()
		chunk := min(cancelCheckInterval, n-done)
		if gap, ok := s.nextEventGap(); ok && gap > 0 && gap < uint64(chunk) {
			chunk = int(gap)
		}
		if err := s.runRecordsLocked(s.sched, chunk); err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

// ResetStats discards accumulated counters while keeping all warmed state
// (cache/TLB/POM contents, predictor training, DRAM bank state) — the
// warmup boundary of Run, exported so incremental drivers (the pomsimd
// session worker) can replicate Run's warmup semantics around Advance.
func (s *System) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetStats()
}

// resetStats is ResetStats without the lock.
func (s *System) resetStats() {
	workload := s.res.Workload
	mode := s.res.Mode
	s.res = Result{Workload: workload, Mode: mode}
	for _, c := range s.cores {
		c.l1tlb.Small.ResetStats()
		c.l1tlb.Large.ResetStats()
		c.l1tlb.Huge.ResetStats()
		c.l2tlb.ResetStats()
		c.l1d.ResetStats()
		c.l2.ResetStats()
		c.pred.ResetStats()
		c.walker.ResetStats()
		c.clockAtReset = c.clock
		c.instsAtReset = c.insts
	}
	s.l3.ResetStats()
	for _, ch := range s.ddr {
		ch.ResetStats()
	}
	s.scheme.ResetStats(s)
}

// addCacheStats merges per-core cache counters.
func addCacheStats(dst *cache.Stats, src cache.Stats) {
	for k := range dst.Access {
		dst.Access[k].Add(src.Access[k])
	}
	for k := range dst.Evictions {
		dst.Evictions[k] += src.Evictions[k]
	}
	dst.Writebacks += src.Writebacks
}

// finalize aggregates component counters into the Result (Run's
// end-of-run step; must be called at most once per measured window).
func (s *System) finalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res = s.aggregate()
}

// Snapshot returns a point-in-time copy of the Result as it stands now,
// computed without disturbing the accumulating counters — unlike Run's
// finalize, it is idempotent and safe to call repeatedly mid-run. It
// synchronizes with the record loop (and every other counter-mutating
// path) on the stats mutex, so polling it from another goroutine while
// Advance runs is race-free; the poll blocks for at most one record
// batch — provided the generator keeps producing. A generator that blocks
// mid-batch (a starved streaming session) holds the batch, and with it
// this mutex, until input arrives; concurrent pollers of such systems
// should cache snapshots between batches instead (as the pomsimd session
// worker does). All Result fields are value types, so the returned copy
// shares no state with the live system.
func (s *System) Snapshot() Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aggregate()
}

// SetWorkload labels subsequent Snapshot/finalize results, mirroring the
// workload argument of Run for Advance-driven sessions.
func (s *System) SetWorkload(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res.Workload = name
}

// aggregate merges the component counters into a copy of the running
// Result without mutating it. Caller holds s.mu.
func (s *System) aggregate() Result {
	res := s.res
	for _, c := range s.cores {
		l1 := c.l1tlb.Small.Stats()
		l1.Add(c.l1tlb.Large.Stats())
		l1.Add(c.l1tlb.Huge.Stats())
		res.L1TLB.Add(l1)
		res.L2TLB.Add(c.l2tlb.Stats())
		res.SizePred.Add(c.pred.SizeStats())
		res.BypassPred.Add(c.pred.BypassStats())
		ws := c.walker.Stats()
		res.Walk.Add(ws)
		addCacheStats(&res.L2Cache, c.l2.Stats())
		res.Insts += c.insts - c.instsAtReset
		if cyc := c.clock - c.clockAtReset; cyc > res.Cycles {
			res.Cycles = cyc
		}
	}
	res.L3Cache = s.l3.Stats()
	for _, ch := range s.ddr {
		st := ch.Stats()
		res.DDRStats.Accesses += st.Accesses
		res.DDRStats.RowHits += st.RowHits
		res.DDRStats.RowMisses += st.RowMisses
		res.DDRStats.RowConfl += st.RowConfl
		res.DDRStats.Reads += st.Reads
		res.DDRStats.Writes += st.Writes
		res.DDRStats.TotalWait += st.TotalWait
		res.DDRStats.TotalCycle += st.TotalCycle
	}
	s.scheme.Aggregate(s, &res)
	return res
}
