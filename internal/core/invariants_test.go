package core

import (
	"context"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

// TestResolutionAccountingAllModes: in every mode, each measured reference
// resolves at exactly one level, and the post-L2-miss levels sum to the
// L2 TLB miss count.
func TestResolutionAccountingAllModes(t *testing.T) {
	for _, mode := range []Mode{Baseline, POMTLB, POMTLBNoCache, SharedL2, TSB} {
		cfg := smallConfig(mode)
		cfg.WarmupRefs = 20_000
		cfg.MaxRefs = 20_000
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(context.Background(), trace.NewUniform(gupsParams(cfg.Cores)), "inv")
		if err != nil {
			t.Fatal(err)
		}
		var total, postMiss uint64
		for lvl := ResL1TLB; lvl < numResolveLevels; lvl++ {
			total += res.Resolved[lvl]
			if lvl >= ResL2D {
				postMiss += res.Resolved[lvl]
			}
		}
		if total != res.Records {
			t.Errorf("%s: resolved %d != records %d", mode, total, res.Records)
		}
		if postMiss != res.L2TLB.Misses {
			t.Errorf("%s: post-miss resolutions %d != L2 misses %d", mode, postMiss, res.L2TLB.Misses)
		}
		if res.L2TLB.Total() != res.L1TLB.Misses {
			t.Errorf("%s: L2 TLB probes %d != L1 misses %d", mode, res.L2TLB.Total(), res.L1TLB.Misses)
		}
	}
}

// TestTranslationsMatchLogicalAllModes: the timed translation path must
// agree with the logical page tables in every mode, for a sample of
// addresses after a full run.
func TestTranslationsMatchLogicalAllModes(t *testing.T) {
	for _, mode := range []Mode{Baseline, POMTLB, POMTLBNoCache, SharedL2, TSB} {
		cfg := smallConfig(mode)
		cfg.WarmupRefs = 0
		cfg.MaxRefs = 30_000
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := gupsParams(cfg.Cores)
		p.FootprintBytes = 32 << 20
		if _, err := sys.Run(context.Background(), trace.NewUniform(p), "inv"); err != nil {
			t.Fatal(err)
		}
		c := sys.cores[0]
		sample := trace.NewUniform(p)
		checked := 0
		for i := 0; i < 1000 && checked < 100; i++ {
			va := sample.Next().VA
			want, _, ok := sys.vms[0].Translate(c.pid, va)
			if !ok {
				continue
			}
			c.now = c.clock
			got, _ := sys.translate(c, va)
			if got != want {
				t.Fatalf("%s: translate(%v) = %v, logical %v", mode, va, got, want)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%s: nothing checked", mode)
		}
	}
}

// TestPenaltyBounds: per-miss penalties stay within physically sensible
// bounds in every mode (no runaway waits, no free translations).
func TestPenaltyBounds(t *testing.T) {
	for _, mode := range []Mode{Baseline, POMTLB, POMTLBNoCache, SharedL2, TSB} {
		res := runMode(t, mode)
		p := res.AvgPenalty()
		if res.L2TLB.Misses == 0 {
			continue
		}
		if p < 1 {
			t.Errorf("%s: average penalty %.1f is implausibly low", mode, p)
		}
		if p > 5000 {
			t.Errorf("%s: average penalty %.1f looks like a timing runaway", mode, p)
		}
	}
}

// TestCyclesScaleWithRefs: doubling the measured window roughly doubles
// the cycle count (linear-model sanity, no hidden quadratic behaviour).
func TestCyclesScaleWithRefs(t *testing.T) {
	run := func(refs int) uint64 {
		cfg := smallConfig(POMTLB)
		cfg.WarmupRefs = 50_000
		cfg.MaxRefs = refs
		sys, _ := NewSystem(cfg)
		res, err := sys.Run(context.Background(), trace.NewUniform(gupsParams(cfg.Cores)), "scale")
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	c1 := run(20_000)
	c2 := run(40_000)
	ratio := float64(c2) / float64(c1)
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("cycles ratio for 2x refs = %.2f, want ≈ 2", ratio)
	}
}

// TestWarmupOnlyAffectsCounters: results must not depend on whether the
// warmup boundary is crossed mid-set — the stats reset discards counters
// without disturbing architectural state.
func TestWarmupOnlyAffectsCounters(t *testing.T) {
	run := func(warmup int) Result {
		cfg := smallConfig(POMTLB)
		cfg.WarmupRefs = warmup
		cfg.MaxRefs = 30_000
		sys, _ := NewSystem(cfg)
		// Skip warmup manually so both runs measure the same window.
		g := trace.NewUniform(gupsParams(cfg.Cores))
		res, err := sys.Run(context.Background(), g, "warmtest")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(60_000)
	b := run(60_000)
	if a.PenaltyCycles != b.PenaltyCycles || a.Resolved != b.Resolved {
		t.Error("identical runs diverged")
	}
}

// TestShootdownDuringRunKeepsInvariants: shooting pages down mid-run and
// continuing never produces a stale translation.
func TestShootdownDuringRunKeepsInvariants(t *testing.T) {
	cfg := smallConfig(POMTLB)
	cfg.WarmupRefs = 0
	cfg.MaxRefs = 20_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := gupsParams(cfg.Cores)
	p.FootprintBytes = 16 << 20
	if _, err := sys.Run(context.Background(), trace.NewUniform(p), "pre"); err != nil {
		t.Fatal(err)
	}
	vm := sys.vms[0]
	c := sys.cores[0]
	shot := 0
	for vpn := uint64(0); vpn < 1<<14 && shot < 50; vpn++ {
		va := addr.VA(0x10_0000_0000 + vpn<<addr.Shift4K)
		if _, _, ok := vm.Translate(c.pid, va); !ok {
			continue
		}
		old, _, _ := vm.Translate(c.pid, va)
		sys.Shootdown(vm.ID(), c.pid, va, addr.Page4K)
		if _, err := vm.Touch(c.pid, va, addr.Page4K); err != nil {
			t.Fatal(err)
		}
		want, _, _ := vm.Translate(c.pid, va)
		c.now = c.clock
		got, _ := sys.translate(c, va)
		if got != want {
			t.Fatalf("stale translation after shootdown: got %v want %v (old %v)", got, want, old)
		}
		shot++
	}
	if shot == 0 {
		t.Fatal("no pages shot down")
	}
}

// TestProcessExitRecyclesPID: after ProcessExit, a recycled PID must never
// observe the dead process's translations.
func TestProcessExitRecyclesPID(t *testing.T) {
	for _, mode := range []Mode{POMTLB, TSB, SharedL2} {
		cfg := smallConfig(mode)
		cfg.WarmupRefs = 0
		cfg.MaxRefs = 20_000
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := gupsParams(cfg.Cores)
		p.FootprintBytes = 16 << 20
		if _, err := sys.Run(context.Background(), trace.NewUniform(p), "exit"); err != nil {
			t.Fatal(err)
		}
		vm := sys.vms[0]
		removed := sys.ProcessExit(vm.ID(), 1)
		if removed == 0 {
			t.Errorf("%s: ProcessExit removed nothing", mode)
		}
		// All SRAM TLBs empty for the PID.
		for _, c := range sys.cores {
			if c.l2tlb.Count() != 0 {
				t.Errorf("%s: L2 TLB still holds %d entries", mode, c.l2tlb.Count())
			}
		}
		switch mode {
		case POMTLB:
			if sys.pom.Small.Count()+sys.pom.Large.Count() != 0 {
				t.Errorf("POM-TLB still holds entries after process exit")
			}
		case TSB:
			if sys.tsbB.Count() != 0 {
				t.Errorf("TSB still holds entries after process exit")
			}
		case SharedL2:
			if sys.shared.Count() != 0 {
				t.Errorf("shared TLB still holds entries after process exit")
			}
		}
	}
}
