package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/trace"
)

func snapshotGen() trace.Generator {
	return trace.NewUniform(trace.Params{
		Seed:           11,
		FootprintBytes: 8 << 20,
		LargeFrac:      0.3,
		Threads:        2,
		MeanGap:        6,
		WriteFrac:      0.25,
	})
}

// TestAdvanceSnapshotMatchesRun pins the equivalence the pomsimd session
// worker depends on: driving a System with Advance + ResetStats + Snapshot
// over a replayed trace produces a Result identical (field for field) to a
// single offline Run over the same records. Result is a pure value type,
// so == is an exact comparison.
func TestAdvanceSnapshotMatchesRun(t *testing.T) {
	recs := trace.Collect(snapshotGen(), 30_000)
	for _, mode := range []Mode{Baseline, POMTLB, SharedL2, TSB} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Cores = 2
			cfg.WarmupRefs = 10_000
			cfg.MaxRefs = 40_000 // forces the replay to wrap, like a short upload
			ctx := context.Background()

			offline, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := offline.Run(ctx, trace.NewReplay(recs), "snapwl")
			if err != nil {
				t.Fatal(err)
			}

			inc, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			inc.SetWorkload("snapwl")
			g := trace.NewReplay(recs)
			if err := inc.Advance(ctx, g, cfg.WarmupRefs); err != nil {
				t.Fatal(err)
			}
			inc.ResetStats()
			if err := inc.Advance(ctx, g, cfg.MaxRefs); err != nil {
				t.Fatal(err)
			}
			got := inc.Snapshot()
			if got != want {
				t.Errorf("incremental snapshot diverges from Run:\n got %+v\nwant %+v", got, want)
			}
			// Snapshot must be idempotent, unlike Run's finalize.
			if again := inc.Snapshot(); again != got {
				t.Errorf("second snapshot differs:\n got %+v\nwant %+v", again, got)
			}
		})
	}
}

// TestSnapshotDuringAdvance polls Snapshot from another goroutine while
// the record loop runs. Under -race this proves the latent counter race is
// actually fixed (before the stats mutex, any concurrent reader of s.res
// during Advance was unsynchronized); the monotonicity check additionally
// catches torn or rolled-back reads.
func TestSnapshotDuringAdvance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = POMTLB
	cfg.Cores = 2
	ctx := context.Background()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := snapshotGen()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		polls := 0
		for {
			select {
			case <-done:
				if polls == 0 {
					t.Error("poller never ran")
				}
				return
			default:
			}
			r := sys.Snapshot()
			if r.Records < last {
				t.Errorf("Records went backwards: %d -> %d", last, r.Records)
				return
			}
			if err := r.L1TLB.CheckConservation("l1tlb", r.L1TLB.Total()); err != nil {
				t.Error(err)
				return
			}
			last = r.Records
			polls++
		}
	}()

	if err := sys.Advance(ctx, g, 300_000); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	if got := sys.Snapshot().Records; got != 300_000 {
		t.Errorf("Records = %d, want 300000", got)
	}
}
