package core

import (
	"fmt"
	"sync"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/dramcache"
	"repro/internal/pagetable"
	"repro/internal/pomtlb"
	"repro/internal/tlb"
	"repro/internal/tsb"
	"repro/internal/victima"
	"repro/internal/virt"
)

// coreState is one simulated core: its private TLBs, private caches,
// per-core MMU walker (PSCs + nested TLB) and POM-TLB predictor.
type coreState struct {
	id    int
	clock uint64 // core-local cycle count (committed)
	// now is the in-flight time cursor: while a reference is being
	// processed, every serial access (TLB probe, cache level, DRAM burst)
	// advances now so that downstream accesses see the correct issue time
	// and bus waits are not charged repeatedly.
	now uint64
	// clockAtReset / instsAtReset snapshot the counters at the end of
	// warmup; clocks themselves keep running so DRAM bank/bus timestamps
	// stay consistent.
	clockAtReset uint64
	instsAtReset uint64
	insts        uint64
	l1tlb        *tlb.SplitL1
	l2tlb        *tlb.TLB
	l1d          *cache.Cache
	l2           *cache.Cache
	pred         *pomtlb.Predictor
	walker       *pagetable.Walker
	vm           *virt.VM // nil when running native
	pid          addr.PID
	vmid         addr.VMID
	// tier is the scenario tenant tier (indexing TierNames) the core's
	// current tenant belongs to; set by SetCoreTenant, meaningful only
	// when a consolidation scenario is attached.
	tier uint8
}

// System is the complete simulated machine.
type System struct {
	cfg   Config
	hyp   *virt.Hypervisor
	vms   []*virt.VM
	cores []*coreState
	l3    *cache.Cache
	ddr   []*dram.Channel
	pom   *pomtlb.TLB
	tsbB  *tsb.TSB
	// l4 is the L4Cache mode's die-stacked data cache: an SRAM-tagged
	// directory (the cache.Cache) whose hits cost one die-stacked DRAM
	// access on l4chan.
	l4     *cache.Cache
	l4chan *dram.Channel
	// shared is the Shared_L2 scheme's combined SRAM TLB.
	shared *tlb.TLB
	// vict is the Victima mode's per-core cache-resident TLB stores (nil
	// when the mode is off or the donation is zero).
	vict []*victima.Store
	// dcache is the DRAMCache mode's die-stacked page-walk cache.
	dcache *dramcache.Cache

	// scheme is the registered translation scheme for cfg.Mode, resolved
	// exactly once at construction so no event path performs a registry
	// lookup — the hot path is a single devirtualizable indirect call.
	scheme Scheme

	// lastWalkLatency threads the most recent walk's latency from
	// mustWalk to the calling scheme path.
	lastWalkLatency uint64

	// selfCheck, when non-nil, is the differential-verification hook
	// enabled by EnableSelfCheck.
	selfCheck *SelfCheck

	// sched persists the record scheduler across Advance calls so buffered
	// per-core records survive window boundaries.
	sched *scheduler

	// mu serializes every counter-mutating path (record batches, stat
	// resets, shootdowns) against Snapshot, so live metrics can be polled
	// from another goroutine mid-run. It is taken once per record batch,
	// never per record.
	mu sync.Mutex

	// events is the scenario schedule installed by SetEvents, sorted by
	// At; nextEvent indexes the first not-yet-fired entry and consumed
	// counts records consumed since construction (warmup included) —
	// the clock events fire against.
	events    []Event
	nextEvent int
	consumed  uint64
	// tierTrack turns on the per-tier accounting in the record loop once
	// any core has been assigned a scenario tier.
	tierTrack bool

	res Result
}

// NewSystem builds the machine for a configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Mode = cfg.Mode.normalize()
	cfg.L2.Priority = cfg.CachePriority
	cfg.L3.Priority = cfg.CachePriority
	s := &System{
		cfg: cfg,
		hyp: virt.NewHypervisor(virt.DefaultConfig()),
		l3:  cache.MustNew(cfg.L3),
	}
	nch := cfg.DDRChannels
	if nch <= 0 {
		nch = 1
	}
	for i := 0; i < nch; i++ {
		s.ddr = append(s.ddr, dram.MustNew(cfg.DDR))
	}
	if cfg.Virtualized {
		for i := 0; i < cfg.VMs; i++ {
			vm, err := s.hyp.NewVM(addr.VMID(i + 1))
			if err != nil {
				return nil, err
			}
			s.vms = append(s.vms, vm)
		}
	}
	s.scheme, _ = SchemeFor(cfg.Mode) // existence checked by Validate
	s.scheme.Build(s)
	for i := 0; i < cfg.Cores; i++ {
		c := &coreState{
			id:    i,
			l1tlb: tlb.DefaultSplitL1(),
			l2tlb: tlb.MustNew(cfg.L2TLB),
			l1d:   cache.MustNew(cfg.L1D),
			l2:    cache.MustNew(cfg.L2),
			pred:  &pomtlb.Predictor{},
			pid:   1,
		}
		c.walker = pagetable.NewWalker(cfg.Walker, s.walkMemFunc(c))
		if cfg.Virtualized {
			c.vm = s.vms[i%len(s.vms)]
			c.vmid = c.vm.ID()
		}
		s.cores = append(s.cores, c)
	}
	s.res.Mode = cfg.Mode
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// POM returns the POM-TLB (nil unless a POMTLB mode).
func (s *System) POM() *pomtlb.TLB { return s.pom }

// Hypervisor returns the virtualization substrate.
func (s *System) Hypervisor() *virt.Hypervisor { return s.hyp }

// walkMemFunc returns the MemFunc routing a core's page-table-entry reads
// through its data-cache hierarchy (PTEs are cached like data in x86).
// Walk references are flagged so the DRAMCache scheme's die-stacked
// page-walk cache sees them and only them.
func (s *System) walkMemFunc(c *coreState) pagetable.MemFunc {
	return func(a addr.HPA, write bool) uint64 {
		return s.access(c, a, write, cache.Data, true)
	}
}

// dataAccess is access for ordinary (non-walk) references.
func (s *System) dataAccess(c *coreState, a addr.HPA, write bool, kind cache.Kind) uint64 {
	return s.access(c, a, write, kind, false)
}

// access performs one memory access through L1D → L2 → L3 → DRAM at
// the core's current time cursor, advances the cursor by the access
// latency, and returns that latency. kind tags the line for the split
// statistics; walkRef marks page-walk PTE references (the only ones the
// DRAMCache scheme's stacked cache services).
func (s *System) access(c *coreState, a addr.HPA, write bool, kind cache.Kind, walkRef bool) uint64 {
	line := a.Line()
	if write && s.cfg.Coherence {
		s.invalidateOthers(c, line)
	}
	lat := c.l1d.Latency()
	if c.l1d.Access(line, write, kind) {
		c.now += lat
		return lat
	}
	lat += c.l2.Latency()
	if c.l2.Access(line, write, kind) {
		s.fillL1(c, line, write, kind)
		c.now += lat
		return lat
	}
	lat += s.l3.Latency()
	if s.l3.Access(line, write, kind) {
		s.fillL2(c, line, false, kind)
		s.fillL1(c, line, write, kind)
		c.now += lat
		return lat
	}
	if s.cfg.Coherence && s.snoopTransfer(c, line) {
		// Another core's private cache supplied the line (cache-to-cache
		// transfer at shared-cache latency; the owner's copy downgrades).
		lat += s.l3.Latency()
		s.fillL3(c, line, false, kind)
		s.fillL2(c, line, false, kind)
		s.fillL1(c, line, write, kind)
		c.now += lat
		return lat
	}
	if s.l4 != nil {
		// L4Cache mode: a die-stacked DRAM cache sits between the L3 and
		// off-chip memory. A tag hit costs one die-stacked access.
		if s.l4.Access(line, write, kind) {
			lat += s.l4chan.Access(c.now+lat, a.LineBase(), false).Latency
			s.fillL3(c, line, false, kind)
			s.fillL2(c, line, false, kind)
			s.fillL1(c, line, write, kind)
			c.now += lat
			return lat
		}
	}
	if walkRef && s.dcache != nil {
		// DRAMCache mode: PTE reads that missed on chip are serviced from
		// the die-stacked page-walk cache before going off chip.
		if dlat, hit := s.dcache.Probe(c.now+lat, a, write); hit {
			lat += dlat
			s.fillL3(c, line, false, kind)
			s.fillL2(c, line, false, kind)
			s.fillL1(c, line, write, kind)
			c.now += lat
			return lat
		}
	}
	// Miss everywhere: fetch the line from memory (write-allocate).
	lat += s.memFetch(c.now+lat, a, kind)
	if s.l4 != nil {
		// Fill the L4 (the die-stacked write is off the critical path).
		if ev := s.l4.Fill(line, false, kind); ev.Valid && ev.Dirty {
			s.ddrFor(addr.HPA(ev.Line<<addr.CacheLineShift)).Access(c.now, addr.HPA(ev.Line<<addr.CacheLineShift), true)
		}
		s.l4chan.Access(c.now, a.LineBase(), true)
	}
	if walkRef && s.dcache != nil {
		// Fill the stacked cache; its dirty victim retires off chip, both
		// off the critical path.
		if victim, dirty := s.dcache.Fill(c.now, a); dirty {
			va := addr.HPA(victim << addr.CacheLineShift)
			s.ddrFor(va).Access(c.now, va, true)
		}
	}
	s.fillL3(c, line, false, kind)
	s.fillL2(c, line, false, kind)
	s.fillL1(c, line, write, kind)
	c.now += lat
	return lat
}

// invalidateOthers implements the write-invalidate half of the coherence
// protocol: drop every other core's private copies of the line.
func (s *System) invalidateOthers(c *coreState, line uint64) {
	for _, o := range s.cores {
		if o == c {
			continue
		}
		if p1, _ := o.l1d.Invalidate(line); p1 {
			s.res.CoherenceInvalidations++
		}
		if p2, _ := o.l2.Invalidate(line); p2 {
			s.res.CoherenceInvalidations++
		}
	}
}

// snoopTransfer implements the sharing half: a load that missed the shared
// L3 is served by another core's private cache when one holds the line.
func (s *System) snoopTransfer(c *coreState, line uint64) bool {
	for _, o := range s.cores {
		if o == c {
			continue
		}
		if o.l1d.Lookup(line) || o.l2.Lookup(line) {
			s.res.SnoopTransfers++
			return true
		}
	}
	return false
}

// memFetch reads one line from the backing store for the address: the
// POM-TLB's die-stacked channel for addresses inside the TLB, off-chip DDR
// otherwise.
func (s *System) memFetch(now uint64, a addr.HPA, kind cache.Kind) uint64 {
	if s.pom != nil && s.pom.Contains(a) {
		return s.pom.AccessDRAM(now, a.LineBase(), 1, false).Latency
	}
	return s.ddrFor(a).Access(now, a.LineBase(), false).Latency
}

// ddrFor interleaves off-chip channels at cache-line granularity.
func (s *System) ddrFor(a addr.HPA) *dram.Channel {
	return s.ddr[a.Line()%uint64(len(s.ddr))]
}

// memWriteback retires a dirty line to its backing store; off the critical
// path, so no latency is charged to the current access.
func (s *System) memWriteback(now uint64, line uint64) {
	a := addr.HPA(line << addr.CacheLineShift)
	if s.pom != nil && s.pom.Contains(a) {
		s.pom.AccessDRAM(now, a, 1, true)
		return
	}
	s.ddrFor(a).Access(now, a, true)
}

// fillL1/fillL2/fillL3 install lines, propagating dirty victims down the
// write-back hierarchy.
func (s *System) fillL1(c *coreState, line uint64, dirty bool, kind cache.Kind) {
	if ev := c.l1d.Fill(line, dirty, kind); ev.Valid && ev.Dirty {
		s.fillL2(c, ev.Line, true, ev.Kind)
	}
}

func (s *System) fillL2(c *coreState, line uint64, dirty bool, kind cache.Kind) {
	ev := c.l2.Fill(line, dirty, kind)
	if !ev.Valid {
		return
	}
	if s.vict != nil && ev.Kind == cache.TLBEntry {
		// Victima: an evicted TLB block takes its translations with it —
		// the residency invariant (occupied block ⇒ L2-resident line).
		s.vict[c.id].DropLine(ev.Line)
	}
	if ev.Dirty {
		s.fillL3(c, ev.Line, true, ev.Kind)
	}
}

func (s *System) fillL3(c *coreState, line uint64, dirty bool, kind cache.Kind) {
	if ev := s.l3.Fill(line, dirty, kind); ev.Valid && ev.Dirty {
		s.memWriteback(c.now, ev.Line)
	}
}

// mustWalkAt runs the page walk with the core's time cursor advancing
// through each PTE reference (the walker's MemFunc is dataAccess, which
// advances c.now itself); the walker's own PSC/nested-TLB probe cycles are
// added afterwards. Returns the resolved entry; the cursor advance IS the
// walk latency. With WalkPenaltyOverride set, the walk is resolved
// logically and charged at the measured baseline cost instead.
func (s *System) mustWalkAt(c *coreState, va addr.VA) tlb.Entry {
	if s.cfg.WalkPenaltyOverride > 0 {
		c.now += s.cfg.WalkPenaltyOverride
		return s.logicalEntry(c, va)
	}
	before := c.now
	e := s.mustWalk(c, va)
	memAdvance := c.now - before
	if s.lastWalkLatency > memAdvance {
		c.now += s.lastWalkLatency - memAdvance
	}
	return e
}

// logicalEntry resolves a translation from the tables without timing.
func (s *System) logicalEntry(c *coreState, va addr.VA) tlb.Entry {
	if c.vm != nil {
		hpa, size, ok := c.vm.Translate(c.pid, va)
		if !ok {
			panic(fmt.Sprintf("core: unmapped address %v on core %d", va, c.id))
		}
		return tlb.Entry{VM: c.vmid, PID: c.pid, VPN: va.VPN(size),
			PFN: hpa.PFN(size), Size: size, Valid: true}
	}
	e, ok := s.hyp.NativeProcess(c.pid).Lookup(uint64(va))
	if !ok {
		panic(fmt.Sprintf("core: unmapped native address %v on core %d", va, c.id))
	}
	return tlb.Entry{VM: 0, PID: c.pid, VPN: va.VPN(e.Size),
		PFN: e.PFN, Size: e.Size, Valid: true}
}

// touch ensures the OS/hypervisor mapping exists for a reference (demand
// paging, untimed — page-fault cost is outside the paper's model too).
// Under SteadyState, a newly created mapping also seeds the scheme's
// large translation structure, emulating the fully-amortized steady state
// of the paper's 20-billion-instruction traces.
func (s *System) touch(c *coreState, va addr.VA, size addr.PageSize) error {
	var created bool
	var err error
	if c.vm != nil {
		created, err = c.vm.Touch(c.pid, va, size)
	} else {
		_, created, err = s.hyp.TouchNative(c.pid, va, size)
	}
	if err != nil || !created || !s.cfg.SteadyState {
		return err
	}
	s.seed(c, va)
	return nil
}

// seed installs a freshly-mapped page's translation into the simulated
// scheme's large structure (never into L1/L2 TLBs or data caches).
func (s *System) seed(c *coreState, va addr.VA) {
	var hpa addr.HPA
	var size addr.PageSize
	if c.vm != nil {
		var ok bool
		hpa, size, ok = c.vm.Translate(c.pid, va)
		if !ok {
			return
		}
	} else {
		e, ok := s.hyp.NativeProcess(c.pid).Lookup(uint64(va))
		if !ok {
			return
		}
		size = e.Size
		hpa = addr.FromPFN(e.PFN, e.Size, 0)
	}
	s.scheme.Seed(s, c, va, size, hpa.PFN(size))
}

// walk performs the mode-appropriate page walk for a core.
func (s *System) walk(c *coreState, va addr.VA) pagetable.WalkResult {
	if c.vm != nil {
		return c.walker.Translate2D(c.vm.GuestTable(c.pid), c.vm.EPT(), c.vmid, c.pid, va)
	}
	return c.walker.TranslateNative(s.hyp.NativeProcess(c.pid), 0, c.pid, va)
}

// insertTLBs installs a resolved translation into the core's L1 and L2
// TLBs (mostly-inclusive: each level replaces independently).
func (c *coreState) insertTLBs(e tlb.Entry) {
	c.l2tlb.Insert(e)
	c.l1tlb.Insert(e)
}

func walkEntry(vmid addr.VMID, pid addr.PID, va addr.VA, w pagetable.WalkResult) tlb.Entry {
	return tlb.Entry{
		VM: vmid, PID: pid,
		VPN: va.VPN(w.Size), PFN: w.HPFN, Size: w.Size, Valid: true,
	}
}

// Shootdown implements the Section 2.2 consistency protocol for one page:
// the mapping is removed from the guest table, every core's L1/L2 TLBs and
// walker acceleration state drop the translation, the POM-TLB (or TSB /
// shared TLB) entry is invalidated, and any cached copies of the POM-TLB
// set line are flushed from the data caches. Returns whether the page was
// actually mapped.
func (s *System) Shootdown(vmid addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	vpn := va.VPN(size)
	var unmapped bool
	if s.cfg.Virtualized {
		if vm, ok := s.hyp.VM(vmid); ok {
			unmapped = vm.Unmap(pid, va, size)
		}
	} else {
		_, unmapped = s.hyp.NativeProcess(pid).Unmap(uint64(va.PageBase(size)))
	}
	for _, c := range s.cores {
		c.l1tlb.InvalidatePage(vmid, pid, vpn, size)
		c.l2tlb.InvalidatePage(vmid, pid, vpn, size)
		// PSCs and the nested TLB may cache stale structure pointers.
		c.walker.InvalidateAll()
	}
	s.scheme.Shootdown(s, vmid, pid, va, vpn, size)
	return unmapped
}

// ProcessExit flushes every structure holding translations of (vm, pid),
// making the PID safe to recycle (§2.2's "process ID recycling"). Cached
// POM-TLB set lines holding the dead process's entries are conservatively
// dropped from the data caches. Returns the number of entries removed
// from the scheme's large structure.
func (s *System) ProcessExit(vmid addr.VMID, pid addr.PID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.cores {
		c.l1tlb.Small.InvalidateProcess(vmid, pid)
		c.l1tlb.Large.InvalidateProcess(vmid, pid)
		c.l2tlb.InvalidateProcess(vmid, pid)
		c.walker.InvalidateAll()
	}
	return s.scheme.ProcessExit(s, vmid, pid)
}

// String summarises the system.
func (s *System) String() string {
	return fmt.Sprintf("system{mode=%s cores=%d vms=%d virt=%v}",
		s.cfg.Mode, s.cfg.Cores, len(s.vms), s.cfg.Virtualized)
}
