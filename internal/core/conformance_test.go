package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

// This file is the registry conformance suite: every scheme that
// registers itself via RegisterScheme is run through the same behavioral
// contract, with no per-scheme test code. A new scheme gets the full
// battery for free the moment it registers. The remaining contract
// clause — zero heap allocations per record in steady state — is pinned
// by TestSteadyStateZeroAllocs in alloc_test.go, which also iterates
// Modes().

// holdsNever lists the schemes whose Holds is contractually always false:
// they either have no large translation structure (baseline) or spend
// their capacity on data rather than translations (l4-cache, dram-cache).
var holdsNever = map[Mode]bool{Baseline: true, L4Cache: true, DRAMCache: true}

// conformanceSystem runs a short TLB-hostile stream so every structure is
// warm, and returns the system plus a virtual address known to be mapped
// as a 4K page.
func conformanceSystem(t *testing.T, mode Mode) (*System, addr.VA) {
	t.Helper()
	cfg := smallConfig(mode)
	cfg.WarmupRefs = 0
	cfg.MaxRefs = 40_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := gupsParams(cfg.Cores)
	p.FootprintBytes = 16 << 20
	if _, err := sys.Run(context.Background(), trace.NewUniform(p), "conformance"); err != nil {
		t.Fatal(err)
	}
	for vpn := uint64(0); vpn <= 1<<20; vpn++ {
		va := addr.VA(0x10_0000_0000 + vpn<<addr.Shift4K)
		if hpa, size, ok := sys.vms[0].Translate(1, va); ok && size == addr.Page4K {
			_ = hpa
			return sys, va
		}
	}
	t.Fatal("no mapped 4K page found")
	return nil, 0
}

// TestConformanceSeedSymmetry: for every scheme, demand-mapping a fresh
// page under SteadyState either installs its translation into the large
// structure (Seeds() == true, observable via Holds) or provably does not
// (Seeds() == false); a subsequent shootdown always clears it.
func TestConformanceSeedSymmetry(t *testing.T) {
	for _, mode := range Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			sys, _ := conformanceSystem(t, mode)
			sch := sys.scheme
			vmid := sys.vms[0].ID()
			c := sys.cores[0]
			for _, size := range []addr.PageSize{addr.Page4K, addr.Page2M} {
				// Far outside the trace footprint, aligned for either size.
				va := addr.VA(0x80_0000_0000 + uint64(size.Bytes()))
				if err := sys.touch(c, va, size); err != nil {
					t.Fatal(err)
				}
				got := sch.Holds(sys, vmid, c.pid, va, size)
				if got != sch.Seeds() {
					t.Errorf("%v: Holds after seed = %v, Seeds() = %v", size, got, sch.Seeds())
				}
				sys.Shootdown(vmid, c.pid, va, size)
				if sch.Holds(sys, vmid, c.pid, va, size) {
					t.Errorf("%v: Holds true after shootdown", size)
				}
			}
		})
	}
}

// TestConformanceShootdownSymmetry: translating a mapped page makes it
// resident in the scheme's structure for every scheme that retains
// translations at all, and a shootdown removes it everywhere — large
// structure, both SRAM TLB levels, and the guest page table.
func TestConformanceShootdownSymmetry(t *testing.T) {
	for _, mode := range Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			sys, va := conformanceSystem(t, mode)
			sch := sys.scheme
			vmid := sys.vms[0].ID()
			c := sys.cores[0]
			c.now = c.clock
			sys.translate(c, va)
			resident := sch.Holds(sys, vmid, c.pid, va, addr.Page4K)
			if holdsNever[mode] {
				if resident {
					t.Fatalf("Holds true for a scheme with no translation structure")
				}
			} else if !resident {
				t.Fatalf("Holds false immediately after translating a mapped page")
			}
			if !sys.Shootdown(vmid, c.pid, va, addr.Page4K) {
				t.Fatal("Shootdown reported the page unmapped")
			}
			if sch.Holds(sys, vmid, c.pid, va, addr.Page4K) {
				t.Error("large structure holds the page after shootdown")
			}
			if _, ok := c.l1tlb.Lookup(vmid, c.pid, va); ok {
				t.Error("L1 TLB holds the page after shootdown")
			}
			if _, ok := c.l2tlb.Lookup(vmid, c.pid, va); ok {
				t.Error("L2 TLB holds the page after shootdown")
			}
			if _, _, ok := sys.vms[0].Translate(c.pid, va); ok {
				t.Error("guest mapping survived shootdown")
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Errorf("invariants violated after shootdown: %v", err)
			}
		})
	}
}

// TestConformanceProcessExit: after ProcessExit, no sampled page of the
// dead process remains in the scheme's structure, the removal count is
// consistent with what Holds observed beforehand, and a second exit
// removes nothing.
func TestConformanceProcessExit(t *testing.T) {
	for _, mode := range Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			sys, _ := conformanceSystem(t, mode)
			sch := sys.scheme
			vmid := sys.vms[0].ID()
			c := sys.cores[0]

			// Sample mapped 4K pages and count how many the structure holds.
			var sample []addr.VA
			held := 0
			for vpn := uint64(0); vpn <= 1<<14 && len(sample) < 64; vpn++ {
				va := addr.VA(0x10_0000_0000 + vpn<<addr.Shift4K)
				if _, size, ok := sys.vms[0].Translate(c.pid, va); ok && size == addr.Page4K {
					sample = append(sample, va)
					if sch.Holds(sys, vmid, c.pid, va, addr.Page4K) {
						held++
					}
				}
			}
			if len(sample) == 0 {
				t.Fatal("no mapped pages to sample")
			}

			removed := sys.ProcessExit(vmid, c.pid)
			if removed < held {
				t.Errorf("ProcessExit removed %d entries but Holds saw %d resident beforehand", removed, held)
			}
			if holdsNever[mode] && removed != 0 {
				t.Errorf("ProcessExit removed %d entries from a scheme with no translation structure", removed)
			}
			for _, va := range sample {
				if sch.Holds(sys, vmid, c.pid, va, addr.Page4K) {
					t.Fatalf("page %v survived ProcessExit", va)
				}
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Errorf("invariants violated after ProcessExit: %v", err)
			}
			if again := sys.ProcessExit(vmid, c.pid); again != 0 {
				t.Errorf("second ProcessExit removed %d entries, want 0", again)
			}
		})
	}
}

// TestConformanceInvariantsUnderRandomOps drives every scheme through a
// fixed-seed randomized stream of simulation bursts, demand maps,
// translations, and shootdowns, checking the full invariant battery at
// every step boundary. This is the "nothing about the op order can wedge
// a scheme's structures" clause of the registry contract.
func TestConformanceInvariantsUnderRandomOps(t *testing.T) {
	for _, mode := range Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := smallConfig(mode)
			cfg.WarmupRefs = 0
			cfg.MaxRefs = 1
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			p := gupsParams(cfg.Cores)
			p.FootprintBytes = 8 << 20
			g := trace.NewUniform(p)
			rng := rand.New(rand.NewSource(11))
			vmid := sys.vms[0].ID()
			c := sys.cores[0]
			var touched []addr.VA
			next := uint64(0) // monotonic: a shot-down VA is never re-issued
			for step := 0; step < 60; step++ {
				switch rng.Intn(4) {
				case 0: // simulate a burst
					if err := sys.Advance(ctx, g, 2_000); err != nil {
						t.Fatal(err)
					}
				case 1: // demand-map a fresh page and translate it
					va := addr.VA(0x90_0000_0000 + next<<addr.Shift4K)
					next++
					if err := sys.touch(c, va, addr.Page4K); err != nil {
						t.Fatal(err)
					}
					c.now = c.clock
					sys.translate(c, va)
					touched = append(touched, va)
				case 2: // re-translate a previously mapped page
					if len(touched) > 0 {
						c.now = c.clock
						sys.translate(c, touched[rng.Intn(len(touched))])
					}
				case 3: // shoot a previously mapped page down
					if len(touched) > 0 {
						i := rng.Intn(len(touched))
						sys.Shootdown(vmid, c.pid, touched[i], addr.Page4K)
						touched = append(touched[:i], touched[i+1:]...)
					}
				}
				if err := sys.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		})
	}
}

// TestConformanceDeterminism: two systems with identical configuration
// and identical generators must produce byte-identical Results — the
// property every checkpoint, golden file, and sweep resume depends on.
func TestConformanceDeterminism(t *testing.T) {
	for _, mode := range Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			run := func() Result {
				cfg := smallConfig(mode)
				cfg.WarmupRefs = 30_000
				cfg.MaxRefs = 20_000
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				p := gupsParams(cfg.Cores)
				p.FootprintBytes = 16 << 20
				res, err := sys.Run(context.Background(), trace.NewUniform(p), "determinism")
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("two identical runs diverged:\n a=%+v\n b=%+v", a, b)
			}
		})
	}
}
