// Package resilience provides the fault-tolerance primitives the
// simulation campaign layer is built on: panic-to-error conversion with
// stack capture, bounded retries with capped exponential backoff and
// deterministic jitter, and per-job deadline enforcement.
//
// The campaign runner (internal/experiments) treats every
// (workload, scheme) simulation as an independently failable job, the way
// large simulation infrastructures schedule per-benchmark runs: a panic
// in one worker — a corrupt trace record, a degenerate configuration, an
// injected fault — degrades the campaign by one cell instead of killing
// the whole multi-hour sweep.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// PanicError is a recovered panic promoted to an error, carrying the
// panic value and the stack at the recovery point so a campaign's error
// report pinpoints the faulty worker without crashing the process.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// String includes the captured stack, for verbose error reports.
func (e *PanicError) String() string {
	return fmt.Sprintf("panic: %v\n%s", e.Value, e.Stack)
}

// Safe runs fn and converts a panic into a *PanicError. A panic carrying
// an error (the common `panic(err)` idiom of the substrate constructors)
// stays unwrappable via errors.Is/As through the PanicError's Value.
func Safe(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Policy bounds a Retry loop.
type Policy struct {
	// MaxAttempts is the total number of tries (≥ 1).
	MaxAttempts int
	// BaseDelay is the first backoff; each subsequent backoff doubles.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Jitter in [0, 1] scales a deterministic pseudo-random extension of
	// each delay (delay × (1 + Jitter·u), u ∈ [0, 1)), decorrelating
	// retry storms without sacrificing reproducibility.
	Jitter float64
	// Seed drives the jitter stream; campaigns pass their trace seed so
	// reruns back off identically.
	Seed uint64
}

// DefaultPolicy retries three times, 10 ms → 100 ms, with 50% jitter.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: 0.5, Seed: 1}
}

// permanentError marks an error that Retry must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Retry stops immediately: the failure is
// deterministic (bad configuration, unknown workload) and retrying would
// only waste the backoff budget.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// splitmix64 is the same deterministic generator the trace package uses,
// so jitter is reproducible across platforms.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Backoff returns the delay before the given 0-based retry attempt:
// BaseDelay·2^attempt capped at MaxDelay, scaled by the deterministic
// jitter stream.
func (p Policy) Backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		s := p.Seed ^ uint64(attempt+1)*0x9E3779B97F4A7C15
		u := float64(splitmix64(&s)>>11) / float64(1<<53)
		d = time.Duration(float64(d) * (1 + p.Jitter*u))
	}
	return d
}

// Budget is a global retry allowance shared by every job of a campaign
// or sweep: each re-attempt (every attempt after a job's first) consumes
// one token. When the pool is dry, jobs fail on their first error instead
// of backing off — a sweep where thousands of cells are flaky degrades in
// bounded time rather than multiplying every cell's failure by the
// per-cell retry cap. A nil *Budget is unlimited. Safe for concurrent use.
type Budget struct {
	remaining atomic.Int64
}

// NewBudget creates a budget of n total retries across all jobs.
func NewBudget(n int) *Budget {
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// Take consumes one retry token, reporting whether one was available.
// A nil budget always grants.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	for {
		n := b.remaining.Load()
		if n <= 0 {
			return false
		}
		if b.remaining.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// Remaining returns the unconsumed retry tokens (0 for an exhausted
// budget; a large sentinel is not used — nil means unlimited).
func (b *Budget) Remaining() int {
	if b == nil {
		return 0
	}
	n := b.remaining.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// ErrBudgetExhausted marks a retry loop that stopped early because the
// shared Budget ran dry; errors.Is distinguishes "gave up globally" from
// "this job used its own attempt cap".
var ErrBudgetExhausted = errors.New("resilience: global retry budget exhausted")

// Retry runs fn until it succeeds, returns a Permanent error, the context
// is cancelled, or MaxAttempts is exhausted. Panics inside fn are
// recovered into *PanicError and treated as permanent — a panicking job
// is deterministic, not transient.
func Retry(ctx context.Context, p Policy, fn func(ctx context.Context) error) error {
	return RetryBudget(ctx, p, nil, fn)
}

// RetryBudget is Retry drawing re-attempts from a shared global Budget:
// before each backoff the loop must win a token, and an exhausted budget
// ends the loop with the last error wrapped in ErrBudgetExhausted. A nil
// budget reduces to plain Retry.
func RetryBudget(ctx context.Context, p Policy, b *Budget, fn func(ctx context.Context) error) error {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return fmt.Errorf("%w (last error: %v)", cerr, err)
			}
			return cerr
		}
		err = Safe(func() error { return fn(ctx) })
		if err == nil {
			return nil
		}
		var pe *PanicError
		if IsPermanent(err) || errors.As(err, &pe) {
			return err
		}
		if attempt == p.MaxAttempts-1 {
			break
		}
		if !b.Take() {
			return fmt.Errorf("%w after %d attempt(s): %w", ErrBudgetExhausted, attempt+1, err)
		}
		t := time.NewTimer(p.Backoff(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("%w (last error: %v)", ctx.Err(), err)
		case <-t.C:
		}
	}
	return fmt.Errorf("resilience: %d attempts failed: %w", p.MaxAttempts, err)
}

// RunWithTimeout enforces a per-job deadline (0 = none) around fn,
// recovering panics into *PanicError. fn receives the derived context and
// is expected to honor its cancellation; jobs that return because the
// deadline fired surface context.DeadlineExceeded.
func RunWithTimeout(ctx context.Context, timeout time.Duration, fn func(ctx context.Context) error) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return Safe(func() error { return fn(ctx) })
}
