package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSafeNoError(t *testing.T) {
	if err := Safe(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSafePassesError(t *testing.T) {
	want := errors.New("boom")
	if err := Safe(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestSafeRecoversPanic(t *testing.T) {
	err := Safe(func() error { panic("worker died") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PanicError", err)
	}
	if pe.Value != "worker died" {
		t.Errorf("Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "resilience") {
		t.Errorf("stack not captured:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.String(), "worker died") {
		t.Errorf("String() = %q", pe.String())
	}
}

func TestSafeUnwrapsErrorPanic(t *testing.T) {
	sentinel := errors.New("bad config")
	err := Safe(func() error { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("error panic not unwrappable: %v", err)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond}
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	calls := 0
	sentinel := errors.New("still failing")
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		return sentinel
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		return Permanent(errors.New("bad input"))
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !IsPermanent(err) {
		t.Errorf("err not permanent: %v", err)
	}
}

func TestRetryStopsOnPanic(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	err := Retry(context.Background(), p, func(context.Context) error {
		calls++
		panic("deterministic death")
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (panics are not transient)", calls)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, DefaultPolicy(), func(context.Context) error {
		t.Error("fn should not run under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestRetryCancelledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour} // would sleep forever
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	err := Retry(ctx, p, func(context.Context) error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: 0.5, Seed: 7}
	for attempt := 0; attempt < 8; attempt++ {
		a := p.Backoff(attempt)
		b := p.Backoff(attempt)
		if a != b {
			t.Errorf("attempt %d: jitter not deterministic (%v vs %v)", attempt, a, b)
		}
		if a > time.Duration(float64(p.MaxDelay)*1.5) {
			t.Errorf("attempt %d: backoff %v exceeds jittered cap", attempt, a)
		}
	}
	if p.Backoff(3) < p.Backoff(0) {
		t.Errorf("backoff should grow: %v then %v", p.Backoff(0), p.Backoff(3))
	}
}

func TestRunWithTimeoutDeadline(t *testing.T) {
	err := RunWithTimeout(context.Background(), time.Millisecond, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
}

func TestRunWithTimeoutRecoversPanic(t *testing.T) {
	err := RunWithTimeout(context.Background(), time.Second, func(context.Context) error {
		panic("job crashed")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Errorf("err = %v", err)
	}
}

func TestRunWithTimeoutZeroMeansNone(t *testing.T) {
	err := RunWithTimeout(context.Background(), 0, func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			return errors.New("unexpected deadline")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBudgetTake(t *testing.T) {
	b := NewBudget(2)
	if !b.Take() || !b.Take() {
		t.Fatal("budget of 2 must grant twice")
	}
	if b.Take() {
		t.Fatal("exhausted budget must not grant")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", b.Remaining())
	}
	var nilB *Budget
	if !nilB.Take() {
		t.Fatal("nil budget must be unlimited")
	}
}

func TestRetryBudgetStopsWhenExhausted(t *testing.T) {
	b := NewBudget(1)
	calls := 0
	err := RetryBudget(context.Background(), Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}, b,
		func(context.Context) error { calls++; return errors.New("flaky") })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (first attempt + one budgeted retry)", calls)
	}
}

func TestRetryBudgetSharedAcrossJobs(t *testing.T) {
	b := NewBudget(3)
	p := Policy{MaxAttempts: 10, BaseDelay: time.Microsecond}
	total := 0
	for job := 0; job < 4; job++ {
		RetryBudget(context.Background(), p, b, func(context.Context) error {
			total++
			return errors.New("always fails")
		})
	}
	// 4 first attempts are free; only 3 retries exist in the pool.
	if total != 7 {
		t.Fatalf("total attempts = %d, want 7", total)
	}
}

func TestRetryBudgetPermanentDoesNotConsume(t *testing.T) {
	b := NewBudget(5)
	RetryBudget(context.Background(), Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}, b,
		func(context.Context) error { return Permanent(errors.New("bad config")) })
	if b.Remaining() != 5 {
		t.Fatalf("permanent failure consumed budget: remaining %d", b.Remaining())
	}
}
