package faultinject

import (
	"errors"
	"testing"

	"repro/internal/resilience"
	"repro/internal/trace"
)

func TestNilScheduleIsInert(t *testing.T) {
	var s *Schedule
	if err := s.Fire("anything"); err != nil {
		t.Fatal(err)
	}
	if s.Hits("anything") != 0 {
		t.Error("nil schedule counted a hit")
	}
	if s.Hook("x") != nil {
		t.Error("nil schedule should produce a nil hook")
	}
	g := trace.NewUniform(trace.Params{FootprintBytes: 1 << 20, Threads: 1, Seed: 1})
	if Wrap(g, nil) != trace.Generator(g) {
		t.Error("Wrap(nil) should return the generator unchanged")
	}
}

func TestPanicOnNthHit(t *testing.T) {
	s := NewSchedule()
	s.PanicOn("site", 3)
	for i := 0; i < 2; i++ {
		if err := s.Fire("site"); err != nil {
			t.Fatal(err)
		}
	}
	err := resilience.Safe(func() error { return s.Fire("site") })
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("third hit: err = %v, want panic", err)
	}
	if s.Hits("site") != 3 {
		t.Errorf("hits = %d", s.Hits("site"))
	}
	// Subsequent hits are clean again.
	if err := s.Fire("site"); err != nil {
		t.Fatal(err)
	}
}

func TestErrorOn(t *testing.T) {
	s := NewSchedule()
	sentinel := errors.New("io glitch")
	s.ErrorOn("site", sentinel, 1, 2)
	if err := s.Fire("site"); !errors.Is(err, sentinel) {
		t.Errorf("hit 1: %v", err)
	}
	if err := s.Fire("site"); !errors.Is(err, sentinel) {
		t.Errorf("hit 2: %v", err)
	}
	if err := s.Fire("site"); err != nil {
		t.Errorf("hit 3 should be clean: %v", err)
	}
}

func TestCallOn(t *testing.T) {
	s := NewSchedule()
	called := 0
	s.CallOn("site", func() { called++ }, 2)
	s.Fire("site")
	s.Fire("site")
	s.Fire("site")
	if called != 1 {
		t.Errorf("called = %d, want 1", called)
	}
}

func TestHookPanicsOnScheduledError(t *testing.T) {
	s := NewSchedule()
	s.ErrorOn(DRAMSite, errors.New("ecc"), 2)
	h := s.Hook(DRAMSite)
	h() // hit 1: clean
	err := resilience.Safe(func() error { h(); return nil })
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
}

func newGen(seed uint64) trace.Generator {
	return trace.NewUniform(trace.Params{FootprintBytes: 4 << 20, Threads: 2, Seed: seed})
}

func TestGeneratorCorruptionDeterministic(t *testing.T) {
	mk := func() trace.Generator {
		s := NewSchedule()
		s.CorruptOn(TraceSite, 5)
		return Wrap(newGen(1), s)
	}
	a := trace.Collect(mk(), 10)
	b := trace.Collect(mk(), 10)
	clean := trace.Collect(newGen(1), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d: corruption not deterministic", i)
		}
	}
	if a[4] == clean[4] {
		t.Error("record 5 was not corrupted")
	}
	for i := range a {
		if i != 4 && a[i] != clean[i] {
			t.Errorf("record %d mutated without a scheduled fault", i)
		}
	}
}

func TestGeneratorPanicOnRecord(t *testing.T) {
	s := NewSchedule()
	s.PanicOn(TraceSite, 3)
	g := Wrap(newGen(1), s)
	g.Next()
	g.Next()
	err := resilience.Safe(func() error { g.Next(); return nil })
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
}

func TestGeneratorResetKeepsHitCount(t *testing.T) {
	s := NewSchedule()
	g := Wrap(newGen(1), s)
	g.Next()
	g.Next()
	g.Reset()
	g.Next()
	if got := s.Hits(TraceSite); got != 3 {
		t.Errorf("hits = %d, want 3 (Reset must not rewind the plan)", got)
	}
}

func TestCorruptRecordStaysCanonical(t *testing.T) {
	rec := newGen(1).Next()
	c := CorruptRecord(rec, 1)
	if c.VA == rec.VA {
		t.Error("VA unchanged")
	}
	if c.Write == rec.Write {
		t.Error("write flag unchanged")
	}
	if uint64(c.VA)>>48 != uint64(rec.VA)>>48 {
		t.Error("corruption escaped the canonical address range")
	}
}

func TestWorkerSite(t *testing.T) {
	if WorkerSite("gups", "pom-tlb") != "worker:gups/pom-tlb" {
		t.Error(WorkerSite("gups", "pom-tlb"))
	}
}
