// Package faultinject is a deterministic fault-injection harness for the
// simulation pipeline. Tests (and chaos campaigns) schedule faults at
// named sites — "panic the gups/pom-tlb worker on its first run", "fail
// the 1000th DRAM access", "corrupt every 64th trace record" — and the
// schedule fires them reproducibly, so every recovery path in the
// resilience layer can be proven to actually fire.
//
// A Schedule counts hits per site; faults are keyed by (site, 1-based hit
// number). Sites are plain strings: the campaign runner fires
// WorkerSite(workload, scheme) once per simulation, the DRAM channels
// fire their configured hook once per access, and the Generator wrapper
// fires once per trace record.
package faultinject

import (
	"fmt"
	"sync"

	"repro/internal/addr"
	"repro/internal/trace"
)

// Kind is the effect a scheduled fault has when it fires.
type Kind uint8

const (
	// Panic aborts the worker the way a real bug would.
	Panic Kind = iota
	// Error returns a structured error from Fire (sites threaded through
	// error-returning paths).
	Error
	// Corrupt deterministically mutates the in-flight trace record
	// (Generator sites only; elsewhere it is a no-op).
	Corrupt
	// Call invokes a callback — used by tests to cancel contexts or
	// observe ordering at an exact point in a campaign.
	Call
)

// fault is one scheduled effect.
type fault struct {
	kind Kind
	err  error
	call func()
}

// Schedule is a deterministic fault plan. The zero value is unusable;
// create with NewSchedule. A nil *Schedule is inert: every method is safe
// to call and fires nothing, so production paths can thread one
// unconditionally.
type Schedule struct {
	mu     sync.Mutex
	hits   map[string]uint64
	faults map[string]map[uint64]fault
}

// NewSchedule creates an empty fault plan.
func NewSchedule() *Schedule {
	return &Schedule{hits: map[string]uint64{}, faults: map[string]map[uint64]fault{}}
}

func (s *Schedule) add(site string, nth []uint64, f fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.faults[site]
	if m == nil {
		m = map[uint64]fault{}
		s.faults[site] = m
	}
	for _, n := range nth {
		m[n] = f
	}
}

// PanicOn schedules panics at the given 1-based hit numbers of site.
func (s *Schedule) PanicOn(site string, nth ...uint64) {
	s.add(site, nth, fault{kind: Panic})
}

// ErrorOn schedules err to be returned by Fire at the given hits. At
// sites that cannot return errors (the Generator), the error panics.
func (s *Schedule) ErrorOn(site string, err error, nth ...uint64) {
	s.add(site, nth, fault{kind: Error, err: err})
}

// CorruptOn schedules deterministic record corruption at the given hits
// of a Generator site.
func (s *Schedule) CorruptOn(site string, nth ...uint64) {
	s.add(site, nth, fault{kind: Corrupt})
}

// CallOn schedules a callback at the given hits — for tests that need to
// cancel a context or take a snapshot at an exact campaign point.
func (s *Schedule) CallOn(site string, fn func(), nth ...uint64) {
	s.add(site, nth, fault{kind: Call, call: fn})
}

// Hits returns how many times site has fired so far.
func (s *Schedule) Hits(site string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[site]
}

// take records a hit and returns the due fault, if any.
func (s *Schedule) take(site string) (fault, uint64, bool) {
	if s == nil {
		return fault{}, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hits == nil {
		s.hits = map[string]uint64{}
	}
	s.hits[site]++
	n := s.hits[site]
	f, ok := s.faults[site][n]
	return f, n, ok
}

// Fire records one hit at site and applies any scheduled fault: Panic
// panics, Error returns the error, Call invokes the callback, Corrupt is
// a no-op here. Nil schedules fire nothing.
func (s *Schedule) Fire(site string) error {
	f, n, ok := s.take(site)
	if !ok {
		return nil
	}
	switch f.kind {
	case Panic:
		panic(fmt.Sprintf("faultinject: scheduled panic at %s (hit %d)", site, n))
	case Error:
		return fmt.Errorf("faultinject: %s (hit %d): %w", site, n, f.err)
	case Call:
		f.call()
	}
	return nil
}

// Hook adapts Fire to the no-argument hook signature dram.Config (and
// similar substrates) accept; a scheduled Error panics because the hook
// has no error path — the resilience layer recovers it into a
// *PanicError exactly like a real substrate bug.
func (s *Schedule) Hook(site string) func() {
	if s == nil {
		return nil
	}
	return func() {
		if err := s.Fire(site); err != nil {
			panic(err)
		}
	}
}

// WorkerSite names the campaign-runner site for one (workload, scheme)
// simulation job; the scheme is the core.Mode's String form.
func WorkerSite(workload, scheme string) string {
	return "worker:" + workload + "/" + scheme
}

// SweepCellSite names the sweep-engine site fired once per attempt of one
// sweep cell; key is the cell's canonical "workload|scheme|variant" key,
// so chaos plans target exact grid coordinates regardless of which shard
// or worker picks the cell up.
func SweepCellSite(key string) string {
	return "sweep:" + key
}

// DRAMSite is the per-access site the DRAM channels fire.
const DRAMSite = "dram.access"

// TraceSite is the per-record site the Generator wrapper fires.
const TraceSite = "trace.record"

// CorruptRecord deterministically mangles a trace record as corruption
// hit n: the virtual address is XORed with a splitmix64 stream value
// (keeping it inside the canonical 48-bit range) and the write flag
// flips. The mutation is a pure function of n so replays corrupt
// identically.
func CorruptRecord(rec trace.Record, n uint64) trace.Record {
	z := n ^ 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	rec.VA ^= addr.VA(z & 0x0000_FFFF_FFFF_F000)
	rec.Write = !rec.Write
	return rec
}

// Generator wraps a trace generator, firing Site once per record. A
// scheduled Corrupt mutates the record via CorruptRecord; Panic and Error
// faults panic (Next has no error path), modelling an unreadable or
// poisoned trace that kills its worker.
type Generator struct {
	G    trace.Generator
	S    *Schedule
	Site string
}

// Wrap returns g with the schedule's TraceSite applied, or g unchanged
// for a nil schedule.
func Wrap(g trace.Generator, s *Schedule) trace.Generator {
	if s == nil {
		return g
	}
	return &Generator{G: g, S: s, Site: TraceSite}
}

// Next implements trace.Generator.
func (g *Generator) Next() trace.Record {
	rec := g.G.Next()
	f, n, ok := g.S.take(g.Site)
	if !ok {
		return rec
	}
	switch f.kind {
	case Panic:
		panic(fmt.Sprintf("faultinject: scheduled panic at %s (record %d)", g.Site, n))
	case Error:
		panic(fmt.Errorf("faultinject: %s (record %d): %w", g.Site, n, f.err))
	case Corrupt:
		return CorruptRecord(rec, n)
	case Call:
		f.call()
	}
	return rec
}

// Reset implements trace.Generator. The schedule's hit counters are NOT
// reset: a campaign that reruns a workload keeps advancing through the
// same global plan.
func (g *Generator) Reset() { g.G.Reset() }
