package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFingerprintSensitivity(t *testing.T) {
	a := quick()
	b := quick()
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("identical options must fingerprint identically")
	}
	b.Seed = 99
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("changing the seed must change the fingerprint")
	}
	// The workload subset selects cells; it must not invalidate them.
	c := quick()
	c.Workloads = []string{"gups"}
	if Fingerprint(a) != Fingerprint(c) {
		t.Error("workload subset must not change the fingerprint")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	fp := Fingerprint(quick())
	cp, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 {
		t.Fatalf("fresh checkpoint has %d cells", cp.Len())
	}
	res := core.Result{Workload: "gups", Mode: core.POMTLB, Records: 123, PenaltyCycles: 456}
	if err := cp.Put("gups", core.POMTLB, res); err != nil {
		t.Fatal(err)
	}

	re, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re.Get("gups", core.POMTLB)
	if !ok {
		t.Fatal("reloaded checkpoint lost the cell")
	}
	if got.Records != 123 || got.PenaltyCycles != 456 {
		t.Errorf("reloaded cell corrupted: %+v", got)
	}
	if _, ok := re.Get("gups", core.Baseline); ok {
		t.Error("cell present for a scheme that never ran")
	}
	if keys := re.Keys(); len(keys) != 1 || keys[0] != "gups|pom-tlb" {
		t.Errorf("keys = %v", keys)
	}
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cp, err := LoadCheckpoint(path, "aaa")
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Put("gups", core.POMTLB, core.Result{}); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCheckpoint(path, "bbb")
	if err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	if !strings.Contains(err.Error(), "different options") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
}

func TestCheckpointNilSafe(t *testing.T) {
	var cp *Checkpoint
	if _, ok := cp.Get("x", core.POMTLB); ok {
		t.Error("nil checkpoint returned a cell")
	}
	if err := cp.Put("x", core.POMTLB, core.Result{}); err != nil {
		t.Error("nil Put must be a no-op")
	}
	if cp.Len() != 0 || cp.Keys() != nil || cp.Path() != "" {
		t.Error("nil accessors must return zero values")
	}
}

func TestRunnerServesCheckpointedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opts := quick()
	cp, err := LoadCheckpoint(path, Fingerprint(opts))
	if err != nil {
		t.Fatal(err)
	}
	canned := core.Result{Workload: "gups", Mode: core.POMTLB, Records: 7}
	if err := cp.Put("gups", core.POMTLB, canned); err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = cp
	r := NewRunner(opts)
	got, err := r.Result(context.Background(), "gups", core.POMTLB)
	if err != nil {
		t.Fatal(err)
	}
	if got.Records != 7 {
		t.Errorf("runner re-simulated a checkpointed cell: Records=%d", got.Records)
	}
}

// --- sweep journal ---

func sweepFP(t *testing.T) string {
	t.Helper()
	return SweepFingerprint(quick(), "pom-mb=1,2:pom-ways=2")
}

func TestSweepJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	fp := sweepFP(t)
	j, err := OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Result{Workload: "gups", Mode: core.POMTLB, Records: 42, PenaltyCycles: 7}
	if err := j.PutDone("gups|pom-tlb|pom-mb=1", res); err != nil {
		t.Fatal(err)
	}
	if err := j.PutQuarantined("mcf|tsb|pom-mb=2", QuarantineInfo{Attempts: 3, Error: "boom", Stack: "stack..."}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.TruncatedRecords() != 0 {
		t.Errorf("clean journal reports %d truncated records", re.TruncatedRecords())
	}
	got, ok := re.Done("gups|pom-tlb|pom-mb=1")
	if !ok || got.Records != 42 || got.PenaltyCycles != 7 {
		t.Errorf("done cell lost or corrupted: %v %+v", ok, got)
	}
	q, ok := re.Quarantined("mcf|tsb|pom-mb=2")
	if !ok || q.Attempts != 3 || q.Error != "boom" {
		t.Errorf("quarantine record lost: %v %+v", ok, q)
	}
	if re.Len() != 2 || re.DoneLen() != 1 {
		t.Errorf("Len=%d DoneLen=%d, want 2/1", re.Len(), re.DoneLen())
	}
}

func TestSweepJournalSkipsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	fp := sweepFP(t)
	j, err := OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.PutDone("gups|pom-tlb|", core.Result{Records: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a SIGKILL mid-append: a partial record with no newline and
	// a hash that cannot verify.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(strings.Repeat("ab", 32) + ` {"kind":"done","key":"mcf|po`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatalf("torn tail must not fail the load: %v", err)
	}
	defer re.Close()
	if re.TruncatedRecords() != 1 {
		t.Errorf("TruncatedRecords = %d, want 1", re.TruncatedRecords())
	}
	if _, ok := re.Done("gups|pom-tlb|"); !ok {
		t.Error("completed cell before the torn tail was lost")
	}
	if re.Len() != 1 {
		t.Errorf("Len = %d, want 1", re.Len())
	}

	// The journal must still be appendable after a torn-tail recovery, and
	// the appended record must survive a reload even though it follows the
	// torn bytes... the torn line has no newline, so the next append starts
	// mid-line; reopening must still refuse nothing before the tail.
	if err := re.PutDone("astar|tsb|", core.Result{Records: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	fp := sweepFP(t)
	j, err := OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	j.PutDone("a|pom-tlb|", core.Result{})
	j.PutDone("b|pom-tlb|", core.Result{})
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload (not the tail).
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines", len(lines))
	}
	mid := []byte(lines[1])
	mid[70] ^= 0xFF
	lines[1] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSweepJournal(path, fp); err == nil {
		t.Fatal("mid-file corruption must fail the load")
	} else if !strings.Contains(err.Error(), "refusing to resume") {
		t.Errorf("unhelpful corruption error: %v", err)
	}
}

func TestSweepJournalFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenSweepJournal(path, SweepFingerprint(quick(), "pom-mb=1"))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, err = OpenSweepJournal(path, SweepFingerprint(quick(), "pom-mb=1,2"))
	if err == nil {
		t.Fatal("grid geometry change accepted by resume")
	}
	if !strings.Contains(err.Error(), "grid geometry") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
}

func TestSweepJournalVsLegacyCheckpoint(t *testing.T) {
	dir := t.TempDir()

	// A legacy JSON checkpoint opened as a sweep journal: clear error.
	legacy := filepath.Join(dir, "ckpt.json")
	cp, err := LoadCheckpoint(legacy, "fp")
	if err != nil {
		t.Fatal(err)
	}
	cp.Put("gups", core.POMTLB, core.Result{})
	if _, err := OpenSweepJournal(legacy, "fp"); err == nil {
		t.Fatal("legacy checkpoint accepted as sweep journal")
	} else if !strings.Contains(err.Error(), "legacy campaign checkpoint") {
		t.Errorf("unhelpful error: %v", err)
	}

	// A sweep journal opened as a legacy checkpoint: clear error.
	sweep := filepath.Join(dir, "sweep.journal")
	j, err := OpenSweepJournal(sweep, "fp")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := LoadCheckpoint(sweep, "fp"); err == nil {
		t.Fatal("sweep journal accepted as legacy checkpoint")
	} else if !strings.Contains(err.Error(), "sweep journal") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestSweepJournalTornHeaderRecreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	// A file killed mid-header-write: some bytes, no complete record.
	if err := os.WriteFile(path, []byte("0123abcd partial-head"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenSweepJournal(path, "fp")
	if err != nil {
		t.Fatalf("torn header must recreate the journal: %v", err)
	}
	defer j.Close()
	if j.TruncatedRecords() != 1 {
		t.Errorf("TruncatedRecords = %d, want 1", j.TruncatedRecords())
	}
	if err := j.PutDone("a|pom-tlb|", core.Result{}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepJournalNilSafe(t *testing.T) {
	var j *SweepJournal
	if _, ok := j.Done("x"); ok {
		t.Error("nil journal returned a cell")
	}
	if _, ok := j.Quarantined("x"); ok {
		t.Error("nil journal returned a quarantine record")
	}
	if err := j.PutDone("x", core.Result{}); err != nil {
		t.Error("nil PutDone must be a no-op")
	}
	if err := j.PutQuarantined("x", QuarantineInfo{}); err != nil {
		t.Error("nil PutQuarantined must be a no-op")
	}
	if j.Len() != 0 || j.DoneLen() != 0 || j.TruncatedRecords() != 0 || j.Path() != "" {
		t.Error("nil accessors must return zero values")
	}
	if err := j.Close(); err != nil {
		t.Error("nil Close must be a no-op")
	}
}

func TestSweepFingerprintCoversGeometry(t *testing.T) {
	a := SweepFingerprint(quick(), "pom-mb=1,2")
	if b := SweepFingerprint(quick(), "pom-mb=1,2,4"); a == b {
		t.Error("grid change must change the sweep fingerprint")
	}
	o := quick()
	o.Seed = 99
	if b := SweepFingerprint(o, "pom-mb=1,2"); a == b {
		t.Error("options change must change the sweep fingerprint")
	}
}
