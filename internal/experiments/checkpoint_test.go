package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFingerprintSensitivity(t *testing.T) {
	a := quick()
	b := quick()
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("identical options must fingerprint identically")
	}
	b.Seed = 99
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("changing the seed must change the fingerprint")
	}
	// The workload subset selects cells; it must not invalidate them.
	c := quick()
	c.Workloads = []string{"gups"}
	if Fingerprint(a) != Fingerprint(c) {
		t.Error("workload subset must not change the fingerprint")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	fp := Fingerprint(quick())
	cp, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 {
		t.Fatalf("fresh checkpoint has %d cells", cp.Len())
	}
	res := core.Result{Workload: "gups", Mode: core.POMTLB, Records: 123, PenaltyCycles: 456}
	if err := cp.Put("gups", core.POMTLB, res); err != nil {
		t.Fatal(err)
	}

	re, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re.Get("gups", core.POMTLB)
	if !ok {
		t.Fatal("reloaded checkpoint lost the cell")
	}
	if got.Records != 123 || got.PenaltyCycles != 456 {
		t.Errorf("reloaded cell corrupted: %+v", got)
	}
	if _, ok := re.Get("gups", core.Baseline); ok {
		t.Error("cell present for a scheme that never ran")
	}
	if keys := re.Keys(); len(keys) != 1 || keys[0] != "gups|pom-tlb" {
		t.Errorf("keys = %v", keys)
	}
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cp, err := LoadCheckpoint(path, "aaa")
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Put("gups", core.POMTLB, core.Result{}); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCheckpoint(path, "bbb")
	if err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	if !strings.Contains(err.Error(), "different options") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
}

func TestCheckpointNilSafe(t *testing.T) {
	var cp *Checkpoint
	if _, ok := cp.Get("x", core.POMTLB); ok {
		t.Error("nil checkpoint returned a cell")
	}
	if err := cp.Put("x", core.POMTLB, core.Result{}); err != nil {
		t.Error("nil Put must be a no-op")
	}
	if cp.Len() != 0 || cp.Keys() != nil || cp.Path() != "" {
		t.Error("nil accessors must return zero values")
	}
}

func TestRunnerServesCheckpointedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opts := quick()
	cp, err := LoadCheckpoint(path, Fingerprint(opts))
	if err != nil {
		t.Fatal(err)
	}
	canned := core.Result{Workload: "gups", Mode: core.POMTLB, Records: 7}
	if err := cp.Put("gups", core.POMTLB, canned); err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = cp
	r := NewRunner(opts)
	got, err := r.Result("gups", core.POMTLB)
	if err != nil {
		t.Fatal(err)
	}
	if got.Records != 7 {
		t.Errorf("runner re-simulated a checkpointed cell: Records=%d", got.Records)
	}
}
