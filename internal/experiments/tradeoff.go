package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/workloads"
)

// TradeoffRow is one workload of the Section 2.2 study: the same 16 MB of
// die-stacked DRAM spent as an L4 data cache versus as the POM-TLB,
// compared by fully-simulated total cycles (no measured-baseline mixing,
// so the three machines are directly comparable).
type TradeoffRow struct {
	Name string
	// CyclesBase/CyclesL4/CyclesPOM are the simulated totals.
	CyclesBase, CyclesL4, CyclesPOM uint64
	// L4SpeedupPct / POMSpeedupPct are improvements over the baseline.
	L4SpeedupPct  float64
	POMSpeedupPct float64
}

// tradeoffWorkloads spans the spectrum: translation-bound (mcf, gups),
// data-bound streaming (lbm), and mixed (soplex).
var tradeoffWorkloads = []string{"mcf", "gups", "lbm", "soplex"}

// TradeoffStudy quantifies §2.2's argument that a translation hit saves
// more than a data hit: an L3 TLB hit removes a blocking multi-reference
// walk, while an L4 data hit removes one overlappable memory access.
func TradeoffStudy(base Options) ([]TradeoffRow, error) {
	return TradeoffStudyContext(context.Background(), base)
}

// TradeoffStudyContext is TradeoffStudy with cancellation and graceful
// degradation: a workload missing any of its three machines is dropped
// and reported through the returned *CampaignError.
func TradeoffStudyContext(ctx context.Context, base Options) ([]TradeoffRow, error) {
	opts := base
	opts.UncalibratedWalks = true // all three machines fully simulated
	opts.Checkpoint = nil         // different fingerprint; never share the journal
	r := NewRunner(opts)
	modes := []core.Mode{core.Baseline, core.L4Cache, core.POMTLB}
	_ = r.Prefetch(ctx, tradeoffWorkloads, modes)
	var fs failureSet
	var rows []TradeoffRow
	for _, name := range tradeoffWorkloads {
		var cyc [3]uint64
		ok := true
		for i, m := range modes {
			res, err := r.Result(ctx, name, m)
			if err != nil {
				fs.record(err, name, m)
				ok = false
				continue
			}
			cyc[i] = res.Cycles
		}
		if !ok {
			continue
		}
		row := TradeoffRow{Name: name, CyclesBase: cyc[0], CyclesL4: cyc[1], CyclesPOM: cyc[2]}
		if cyc[1] > 0 {
			row.L4SpeedupPct = 100 * (float64(cyc[0])/float64(cyc[1]) - 1)
		}
		if cyc[2] > 0 {
			row.POMSpeedupPct = 100 * (float64(cyc[0])/float64(cyc[2]) - 1)
		}
		rows = append(rows, row)
	}
	return rows, fs.err()
}

// NativeRow is one workload of the native-execution study: the paper's
// introduction notes that many benchmarks spend up to 14% of execution in
// translation even on bare metal, "and hence will benefit from the
// proposed scheme which improves both native and virtualized cases".
type NativeRow struct {
	Name string
	// ImprovementPct is the modelled native-mode improvement.
	ImprovementPct float64
	// Penalty is the simulated native POM-TLB P_avg; BasePen the measured
	// native baseline (Table 2).
	Penalty, BasePen float64
}

// nativeWorkloads are the benchmarks with meaningful native overhead
// (Table 2's "Overhead Native %" ≥ 4%).
var nativeWorkloads = []string{"astar", "GemsFDTD", "gups", "mcf", "soplex", "pagerank", "canneal"}

// NativeStudy runs the POM-TLB under bare-metal (1D-walk) translation and
// models the improvement against the measured native baselines.
func NativeStudy(base Options) ([]NativeRow, error) {
	return NativeStudyContext(context.Background(), base)
}

// NativeStudyContext is NativeStudy with cancellation and graceful
// degradation.
func NativeStudyContext(ctx context.Context, base Options) ([]NativeRow, error) {
	opts := base
	opts.Virtualized = false
	opts.Checkpoint = nil // different fingerprint; never share the journal
	r := NewRunner(opts)
	_ = r.Prefetch(ctx, nativeWorkloads, []core.Mode{core.POMTLB})
	var fs failureSet
	var rows []NativeRow
	for _, name := range nativeWorkloads {
		res, err := r.Result(ctx, name, core.POMTLB)
		if err != nil {
			fs.record(err, name, core.POMTLB)
			continue
		}
		p, _ := workloads.ByName(name)
		pen := res.AvgPenalty()
		row := NativeRow{Name: name, Penalty: pen, BasePen: p.CyclesPerMissNative}
		if pen > p.CyclesPerMissNative {
			pen = p.CyclesPerMissNative
		}
		imp, err := perfmodel.ImprovementPct(perfmodel.FromProfileNative(p, pen))
		if err != nil {
			fs.record(err, name, core.POMTLB)
			continue
		}
		row.ImprovementPct = imp
		rows = append(rows, row)
	}
	return rows, fs.err()
}
