package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// CrossRow is one (workload, scheme) cell of the cross-scheme comparison:
// every scheme in the registry run over the same workload, reported on a
// shared axis. Improvement is only meaningful for calibrated non-baseline
// schemes (HasImprovement); schemes that simulate their own walks
// (l4-cache, dram-cache) report fully-simulated penalties that cannot be
// mixed with the measured baseline, so their improvement renders as "—".
type CrossRow struct {
	Workload string
	Mode     core.Mode
	// Penalty is the simulated average translation penalty per L2 TLB
	// miss (P_avg).
	Penalty float64
	// WalkElim is the fraction of L2 TLB misses resolved without a walk.
	WalkElim float64
	// ImprovementPct is the linear-model improvement over the measured
	// baseline, valid only when HasImprovement.
	ImprovementPct float64
	// HasImprovement is false for the baseline itself and for schemes
	// whose walks are not charged at the calibrated baseline cost.
	HasImprovement bool
}

// CrossScheme regenerates the cross-scheme comparison over every
// registered translation scheme.
func CrossScheme(r *Runner) ([]CrossRow, error) {
	return CrossSchemeContext(context.Background(), r)
}

// CrossSchemeContext runs every workload under every scheme the registry
// knows — including schemes registered after this package was written —
// and returns one row per (workload, scheme) cell in registration order.
// Failed cells are dropped and reported via the returned *CampaignError.
func CrossSchemeContext(ctx context.Context, r *Runner) ([]CrossRow, error) {
	modes := core.Modes()
	_ = r.Prefetch(ctx, r.names(), modes)
	var fs failureSet
	var rows []CrossRow
	for _, p := range r.workloads() {
		for _, mode := range modes {
			res, err := r.Result(ctx, p.Name, mode)
			if err != nil {
				fs.record(err, p.Name, mode)
				continue
			}
			row := CrossRow{
				Workload: p.Name,
				Mode:     mode,
				Penalty:  res.AvgPenalty(),
				WalkElim: res.WalkEliminationRate(),
			}
			if mode != core.Baseline && core.CalibratedWalks(mode) {
				// Same capping as Figure 8: a simulated penalty above the
				// measured baseline reads as "no gain".
				pen := row.Penalty
				base := p.CyclesPerMissVirt
				in := perfmodel.FromProfile(p, min64(pen, base))
				if !r.Options().Virtualized {
					base = p.CyclesPerMissNative
					in = perfmodel.FromProfileNative(p, min64(pen, base))
				}
				if imp, err := perfmodel.ImprovementPct(in); err == nil {
					row.ImprovementPct = imp
					row.HasImprovement = true
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, fs.err()
}

// WriteCrossScheme renders the comparison as the report's markdown table.
func WriteCrossScheme(w io.Writer, rows []CrossRow) {
	t := stats.NewTable("Benchmark", "Scheme", "P_avg", "WalkElim", "Improvement %")
	for _, row := range rows {
		imp := "—"
		if row.HasImprovement {
			imp = fmt.Sprintf("%.2f", row.ImprovementPct)
		}
		t.AddRow(row.Workload, row.Mode.String(),
			fmt.Sprintf("%.1f", row.Penalty), stats.Pct(row.WalkElim), imp)
	}
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
