package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/consolidation"
	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// DefaultConsolidationPreset is the scenario the report's per-tier
// breakdown runs: the stationary 120-guest Zipf pool.
const DefaultConsolidationPreset = "consol-zipf"

// ConsolidationModes are the schemes the per-tier breakdown compares by
// default: the paper's headline POM-TLB against the simulated-walk
// baseline and the SRAM/in-memory alternatives it argues against.
var ConsolidationModes = []core.Mode{core.Baseline, core.SharedL2, core.TSB, core.POMTLB}

// runConsolidationCell simulates one consolidation-scenario cell. The
// scenario layer builds the tenant pool, the gang-scheduled composite
// generator and the shootdown/migration schedule; the system gets one VM
// per guest. Walks are always simulated here — no Table 2 calibration
// exists for a synthetic tenant mix, and simulated walks keep every
// scheme on one comparable axis (like the UncalibratedWalks path).
func runConsolidationCell(ctx context.Context, opts Options, preset workloads.Consolidation, mode core.Mode) (core.Result, error) {
	cfg := opts.config(mode)
	cfg.Virtualized = true
	scn, err := consolidation.New(consolidation.Config{
		Preset:       preset,
		Cores:        cfg.Cores,
		Seed:         cfg.Seed,
		TotalRecords: uint64(cfg.WarmupRefs + cfg.MaxRefs),
		Guests:       opts.Tenants,
		ChurnEvery:   opts.ChurnEvery,
		Phases:       opts.Phases,
	})
	if err != nil {
		return core.Result{}, resilience.Permanent(err)
	}
	cfg.VMs = scn.Guests
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Result{}, err
	}
	var sc *core.SelfCheck
	if opts.SelfCheck {
		sc = sys.EnableSelfCheck()
	}
	sys.SetEvents(scn.Events)
	gen := faultinject.Wrap(scn.Gen, opts.Faults)
	res, err := sys.Run(ctx, gen, preset.Name)
	if err != nil {
		return res, err
	}
	if sc != nil {
		if err := sc.Err(); err != nil {
			return res, resilience.Permanent(fmt.Errorf("experiments: self-check diverged: %w", err))
		}
	}
	if err := res.CheckAccounting(); err != nil {
		return res, resilience.Permanent(err)
	}
	return res, nil
}

// TierRow is one (scheme, tier) cell of the consolidation breakdown.
type TierRow struct {
	Mode     core.Mode
	Tier     string
	Share    float64
	SRAMHit  float64
	WalkElim float64
	Penalty  float64
}

// ConsolidationTiersContext runs the named consolidation preset under
// each mode and extracts the per-tier rows. A nil modes slice uses
// ConsolidationModes. Partial results plus a CampaignError are returned
// when cells fail.
func ConsolidationTiersContext(ctx context.Context, r *Runner, preset string, modes []core.Mode) ([]TierRow, error) {
	if len(modes) == 0 {
		modes = ConsolidationModes
	}
	var fs failureSet
	fs.absorb(r.Prefetch(ctx, []string{preset}, modes))
	var rows []TierRow
	for _, mode := range modes {
		res, err := r.Result(ctx, preset, mode)
		if err != nil {
			fs.record(err, preset, mode)
			continue
		}
		for tier := 0; tier < core.NumTiers; tier++ {
			rows = append(rows, TierRow{
				Mode:     mode,
				Tier:     core.TierNames[tier],
				Share:    res.TierShare(tier),
				SRAMHit:  res.TierSRAMHitRatio(tier),
				WalkElim: res.TierWalkElim(tier),
				Penalty:  res.TierAvgPenalty(tier),
			})
		}
	}
	return rows, fs.err()
}

// WriteConsolidationTiers renders the per-tier cross-scheme table.
func WriteConsolidationTiers(w io.Writer, rows []TierRow) {
	t := stats.NewTable("Scheme", "Tier", "Ref share", "SRAM TLB hit", "Walk elim", "P_avg (cyc)")
	for _, row := range rows {
		t.AddRow(row.Mode.String(), row.Tier,
			fmt.Sprintf("%.1f%%", 100*row.Share),
			fmt.Sprintf("%.1f%%", 100*row.SRAMHit),
			fmt.Sprintf("%.1f%%", 100*row.WalkElim),
			fmt.Sprintf("%.1f", row.Penalty))
	}
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())
}
