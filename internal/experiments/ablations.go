package experiments

import (
	"context"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/workloads"
)

// ablationWorkloads is the TLB-sensitive subset used for the Section 4.6
// sweeps (running all 15 at every design point would be redundant — the
// paper likewise reports the sweeps as aggregates).
var ablationWorkloads = []string{"mcf", "gups", "graph500"}

// AblationPoint is one design point of a sweep.
type AblationPoint struct {
	Label string
	// MeanImprovementPct is the geomean improvement over the subset.
	MeanImprovementPct float64
	// MeanPenalty is the subset's mean simulated P_avg.
	MeanPenalty float64
	// WalkElimination is the subset's mean walk-elimination rate.
	WalkElimination float64
}

// sweep evaluates POM-TLB over the ablation subset for each option
// variant and aggregates. Failed cells drop out of a point's aggregate
// (a point with no surviving cells is dropped entirely); every failure
// is reported through the returned *CampaignError.
func sweep(ctx context.Context, base Options, labels []string, variant func(Options, int) Options) ([]AblationPoint, error) {
	var fs failureSet
	var out []AblationPoint
	for i, label := range labels {
		opts := variant(base, i)
		opts.Checkpoint = nil // ablation variants have their own fingerprints
		r := NewRunner(opts)
		_ = r.Prefetch(ctx, ablationWorkloads, []core.Mode{core.POMTLB})
		var speedups []float64
		var penSum, elimSum float64
		n := 0
		for _, name := range ablationWorkloads {
			res, err := r.Result(ctx, name, core.POMTLB)
			if err != nil {
				fs.record(err, name, core.POMTLB)
				continue
			}
			p, _ := workloads.ByName(name)
			pen := res.AvgPenalty()
			penSum += pen
			elimSum += res.WalkEliminationRate()
			if pen > p.CyclesPerMissVirt {
				pen = p.CyclesPerMissVirt
			}
			imp, err := perfmodel.ImprovementPct(perfmodel.FromProfile(p, pen))
			if err != nil {
				fs.record(err, name, core.POMTLB)
				continue
			}
			speedups = append(speedups, 1+imp/100)
			n++
		}
		if n == 0 {
			continue
		}
		out = append(out, AblationPoint{
			Label:              label,
			MeanImprovementPct: perfmodel.GeomeanImprovementPct(speedups),
			MeanPenalty:        penSum / float64(n),
			WalkElimination:    elimSum / float64(n),
		})
	}
	return out, fs.err()
}

// AblationCapacity reproduces §4.6: POM-TLB capacity 8/16/32 MB changes
// the improvement by under a percent.
func AblationCapacity(ctx context.Context, base Options) ([]AblationPoint, error) {
	sizes := []uint64{8 << 20, 16 << 20, 32 << 20}
	return sweep(ctx, base, []string{"8MB", "16MB", "32MB"}, func(o Options, i int) Options {
		o.POMSizeBytes = sizes[i]
		return o
	})
}

// AblationCores reproduces §4.6: core counts 4/8/16 leave the improvement
// approximately unchanged (the POM-TLB is large enough for all of them).
func AblationCores(ctx context.Context, base Options) ([]AblationPoint, error) {
	cores := []int{4, 8, 16}
	return sweep(ctx, base, []string{"4 cores", "8 cores", "16 cores"}, func(o Options, i int) Options {
		o.Cores = cores[i]
		return o
	})
}

// AblationAssociativity sweeps the POM-TLB associativity (the paper: below
// 4 ways, conflict misses rise sharply; 4 ways fits exactly one burst).
func AblationAssociativity(ctx context.Context, base Options) ([]AblationPoint, error) {
	ways := []int{1, 2, 4, 8}
	return sweep(ctx, base, []string{"1-way", "2-way", "4-way", "8-way"}, func(o Options, i int) Options {
		o.POMWays = ways[i]
		return o
	})
}

// AblationBypass compares the bypass predictor against forcing every
// access through the cache probes.
func AblationBypass(ctx context.Context, base Options) ([]AblationPoint, error) {
	return sweep(ctx, base, []string{"predictor", "never-bypass"}, func(o Options, i int) Options {
		o.DisableBypass = i == 1
		return o
	})
}

// AblationTLBAwareCaching explores the Section 5.1 proposal: cache
// replacement that prioritizes retaining POM-TLB entries (or data) in the
// L2/L3 data caches.
func AblationTLBAwareCaching(ctx context.Context, base Options) ([]AblationPoint, error) {
	prios := []cache.Priority{cache.NoPriority, cache.PreferTLB, cache.PreferData}
	return sweep(ctx, base, []string{"kind-blind", "prefer-tlb", "prefer-data"}, func(o Options, i int) Options {
		o.CachePriority = prios[i]
		return o
	})
}

// AblationNeighborPrefetch explores the Section 6 prefetch extension:
// installing a fetched burst's neighbouring translations into the L2 TLB.
func AblationNeighborPrefetch(ctx context.Context, base Options) ([]AblationPoint, error) {
	return sweep(ctx, base, []string{"no-prefetch", "neighbor-prefetch"}, func(o Options, i int) Options {
		o.NeighborPrefetch = i == 1
		return o
	})
}

// MultiVMStudy reproduces §5.2: several VMs sharing one POM-TLB still see
// high walk elimination because the large TLB holds all VMs' hot sets.
func MultiVMStudy(ctx context.Context, base Options, vmCounts []int) ([]AblationPoint, error) {
	labels := make([]string, len(vmCounts))
	for i, v := range vmCounts {
		labels[i] = strconv.Itoa(v) + " VMs"
	}
	return sweep(ctx, base, labels, func(o Options, i int) Options {
		o.VMs = vmCounts[i]
		return o
	})
}
