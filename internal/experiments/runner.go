// Package experiments regenerates every table and figure in the paper's
// evaluation (Section 3–4): it runs the simulator over the Table 2
// workload suite under each translation scheme, feeds the simulated
// penalties into the linear performance model, and formats the same rows
// and series the paper reports.
//
// Campaigns are resilient: every (workload, scheme) cell is an
// independently failable job. Worker panics are recovered into structured
// *WorkloadError values, cells honor per-workload timeouts and campaign
// cancellation, completed cells are journaled to an optional Checkpoint,
// and the figure layer returns partial results plus a *CampaignError
// instead of crashing — one degenerate workload degrades a multi-hour
// sweep instead of destroying it.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
	"repro/internal/workloads"
)

// Options controls an evaluation campaign.
type Options struct {
	// Cores is the simulated core count (the paper's headline runs use 8).
	Cores int
	// VMs is the virtual machine count (1 except for the §5.2 study).
	VMs int
	// WarmupRefs/MaxRefs size each simulation. Warmup must be large
	// enough to touch the workload footprints (Table 2 footprints reach
	// 384 MB ≈ 100k pages).
	WarmupRefs int
	MaxRefs    int
	// Seed feeds the trace generators.
	Seed uint64
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// POMSizeBytes overrides the POM-TLB capacity (0 = paper's 16 MB).
	POMSizeBytes uint64
	// POMWays overrides the associativity (0 = paper's 4).
	POMWays int
	// DisableBypass forces the cache-probe path (bypass ablation).
	DisableBypass bool
	// Virtualized is true for the paper's main configuration.
	Virtualized bool
	// Workloads restricts the campaign to a subset of Table 2 benchmark
	// names (nil = all 15).
	Workloads []string
	// CachePriority enables the §5.1 TLB-aware replacement policy.
	CachePriority cache.Priority
	// NeighborPrefetch enables the §6 burst-neighbour prefetch extension.
	NeighborPrefetch bool
	// UncalibratedWalks simulates every page walk reference-by-reference
	// even in scheme runs. By default scheme runs charge walks at the
	// workload's measured baseline penalty (Table 2), the way the paper
	// combines hardware measurement with scheme simulation (§3.3).
	UncalibratedWalks bool

	// Tenants, ChurnEvery and Phases apply to consolidation-scenario
	// workloads only (names resolved via workloads.ConsolidationByName):
	// they override the preset's guest count, shootdown-storm interval
	// (records) and per-tenant working-set phase count. 0 inherits the
	// preset; they are the sweep engine's tenants=/churn=/phases= axes.
	Tenants    int
	ChurnEvery int
	Phases     int

	// SelfCheck runs every cell under differential verification: lockstep
	// reference models shadow each TLB/cache/DRAM structure and a cell
	// whose production models diverge from the references fails even if it
	// produced a Result. Roughly doubles per-cell cost; meant for
	// validation campaigns, not headline sweeps.
	SelfCheck bool

	// WorkloadTimeout bounds each (workload, scheme) simulation; a cell
	// that exceeds it fails with context.DeadlineExceeded while the rest
	// of the campaign continues (0 = no per-job deadline).
	WorkloadTimeout time.Duration
	// Checkpoint, when non-nil, journals completed cells after each run
	// and serves already-journaled cells without re-simulating — the
	// -resume path of cmd/experiments.
	Checkpoint *Checkpoint
	// Faults is the deterministic fault-injection plan (nil in
	// production). The runner fires faultinject.WorkerSite(workload,
	// scheme) once per simulation job, wires faultinject.DRAMSite into
	// both DRAM substrates, and wraps trace generators for
	// faultinject.TraceSite record corruption.
	Faults *faultinject.Schedule
}

// DefaultOptions returns the paper's 8-core virtualized campaign at a
// laptop-friendly trace length.
func DefaultOptions() Options {
	return Options{
		Cores:       8,
		VMs:         1,
		WarmupRefs:  500_000,
		MaxRefs:     500_000,
		Seed:        1,
		Virtualized: true,
	}
}

// QuickOptions returns a much shorter campaign for tests and smoke runs.
func QuickOptions() Options {
	return Options{
		Cores:       2,
		VMs:         1,
		WarmupRefs:  120_000,
		MaxRefs:     60_000,
		Seed:        1,
		Virtualized: true,
	}
}

// config materializes a core.Config for one scheme under these options.
func (o Options) config(mode core.Mode) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.Cores = o.Cores
	cfg.VMs = o.VMs
	if cfg.VMs <= 0 {
		cfg.VMs = 1
	}
	cfg.Virtualized = o.Virtualized
	cfg.WarmupRefs = o.WarmupRefs
	cfg.MaxRefs = o.MaxRefs
	cfg.Seed = o.Seed
	if o.POMSizeBytes != 0 {
		cfg.POM.SizeBytes = o.POMSizeBytes
	}
	if o.POMWays != 0 {
		cfg.POM.Ways = o.POMWays
	}
	cfg.DisableBypassPredictor = o.DisableBypass
	cfg.CachePriority = o.CachePriority
	cfg.NeighborPrefetch = o.NeighborPrefetch
	if o.Faults != nil {
		hook := o.Faults.Hook(faultinject.DRAMSite)
		cfg.DDR.FaultHook = hook
		cfg.POM.DRAM.FaultHook = hook
	}
	return cfg
}

// Runner memoizes simulation results across figures so each
// (workload, scheme) pair runs exactly once per campaign, even under
// concurrent figure extraction.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cells map[runKey]*cell
	sem   chan struct{}
}

type runKey struct {
	workload string
	mode     core.Mode
}

type cell struct {
	once sync.Once
	res  core.Result
	err  error
}

// NewRunner creates a runner for the options.
func NewRunner(opts Options) *Runner {
	par := opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opts:  opts,
		cells: make(map[runKey]*cell),
		sem:   make(chan struct{}, par),
	}
}

// Options returns the campaign options.
func (r *Runner) Options() Options { return r.opts }

// Result simulates (or returns the memoized result of) one workload under
// one scheme, with campaign cancellation and the full resilience path:
// checkpointed cells are served without re-simulating; fresh cells run
// under the per-workload timeout with panic recovery, and failures come
// back as structured *WorkloadError values.
func (r *Runner) Result(ctx context.Context, name string, mode core.Mode) (core.Result, error) {
	if res, ok := r.opts.Checkpoint.Get(name, mode); ok {
		return res, nil
	}
	key := runKey{name, mode}
	r.mu.Lock()
	c, ok := r.cells[key]
	if !ok {
		c = &cell{}
		r.cells[key] = c
	}
	r.mu.Unlock()
	c.once.Do(func() {
		c.res, c.err = r.simulate(ctx, name, mode)
		if c.err == nil {
			if err := r.opts.Checkpoint.Put(name, mode, c.res); err != nil {
				c.err = &WorkloadError{Workload: name, Mode: mode, Err: err}
			}
		}
	})
	return c.res, c.err
}

// simulate runs one (workload, scheme) job with semaphore admission
// (abortable) in front of the shared single-cell path.
func (r *Runner) simulate(ctx context.Context, name string, mode core.Mode) (core.Result, error) {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return core.Result{}, &WorkloadError{Workload: name, Mode: mode, Err: ctx.Err()}
	}
	defer func() { <-r.sem }()
	return SimulateCell(ctx, r.opts, name, mode)
}

// SimulateCell runs exactly one (workload, scheme) simulation under the
// resilience envelope: the job runs under opts.WorkloadTimeout, and
// panics anywhere in the simulation stack — substrate constructors, trace
// generation, the core loop — are recovered into the returned
// *WorkloadError. Unlike Runner.Result it performs no memoization,
// checkpointing, or concurrency limiting; the design-space sweep engine
// calls it directly from its own worker pool with per-cell geometry in
// opts.
func SimulateCell(ctx context.Context, opts Options, name string, mode core.Mode) (core.Result, error) {
	var res core.Result
	err := resilience.RunWithTimeout(ctx, opts.WorkloadTimeout, func(ctx context.Context) error {
		if err := opts.Faults.Fire(faultinject.WorkerSite(name, mode.String())); err != nil {
			return err
		}
		if preset, ok := workloads.ConsolidationByName(name); ok {
			var err error
			res, err = runConsolidationCell(ctx, opts, preset, mode)
			return err
		}
		p, ok := workloads.ByName(name)
		if !ok {
			return resilience.Permanent(fmt.Errorf("experiments: unknown workload %q", name))
		}
		cfg := opts.config(mode)
		if mode != core.Baseline && !opts.UncalibratedWalks && core.CalibratedWalks(mode) {
			// Charge scheme-run walks at the measured baseline cost (§3.3).
			// Schemes whose benefit lives inside the walk (l4-cache,
			// dram-cache) opt out via CalibratedWalks and simulate walks.
			pen := p.CyclesPerMissVirt
			if !opts.Virtualized {
				pen = p.CyclesPerMissNative
			}
			cfg.WalkPenaltyOverride = uint64(pen)
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		var sc *core.SelfCheck
		if opts.SelfCheck {
			sc = sys.EnableSelfCheck()
		}
		gen := faultinject.Wrap(p.Generator(opts.Cores, opts.Seed), opts.Faults)
		res, err = sys.Run(ctx, gen, name)
		if err != nil {
			return err
		}
		if sc != nil {
			if err := sc.Err(); err != nil {
				return resilience.Permanent(fmt.Errorf("experiments: self-check diverged: %w", err))
			}
			if err := res.CheckAccounting(); err != nil {
				return resilience.Permanent(err)
			}
		}
		return nil
	})
	if err != nil {
		return core.Result{}, asWorkloadError(err, name, mode)
	}
	return res, nil
}

// workloads returns the campaign's benchmark profiles (the Options subset,
// or all of Table 2).
func (r *Runner) workloads() []workloads.Profile {
	if len(r.opts.Workloads) == 0 {
		return workloads.All()
	}
	var out []workloads.Profile
	for _, n := range r.opts.Workloads {
		if p, ok := workloads.ByName(n); ok {
			out = append(out, p)
		}
	}
	return out
}

// names returns the campaign's benchmark names.
func (r *Runner) names() []string {
	ps := r.workloads()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Prefetch runs the given (workload × mode) grid concurrently under ctx
// so later figure extraction is instant, waiting for every cell. Unlike a
// fail-fast errgroup, it always drains the whole grid — one failed cell
// must not abandon the others' in-flight work — and aggregates every
// failure into a *CampaignError (nil when clean).
func (r *Runner) Prefetch(ctx context.Context, names []string, modes []core.Mode) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var fails []*WorkloadError
	for _, n := range names {
		for _, m := range modes {
			wg.Add(1)
			go func(n string, m core.Mode) {
				defer wg.Done()
				if _, err := r.Result(ctx, n, m); err != nil {
					mu.Lock()
					fails = append(fails, asWorkloadError(err, n, m))
					mu.Unlock()
				}
			}(n, m)
		}
	}
	wg.Wait()
	return campaignError(fails)
}
