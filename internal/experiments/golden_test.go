package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run Golden -update
//
// Rerun without the flag afterwards to confirm the new goldens are
// reproducible.
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCompare diffs got against testdata/<name>, rewriting the file
// under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file; inspect the diff and rerun with -update if the change is intended:\n%s",
			name, firstDiff(string(want), string(got)))
	}
}

// goldenOptions is the fixed campaign the goldens are rendered from. It
// must never depend on the environment: any field change invalidates the
// files (that's the point — the goldens pin the full artifact pipeline,
// simulator through formatting).
func goldenOptions() Options {
	o := QuickOptions()
	o.Workloads = []string{"gups", "mcf"}
	return o
}

// TestReportGolden pins the full markdown report byte-for-byte. It
// catches silent drift anywhere in the stack — a model change, a stats
// accounting change, a formatting change — and forces it to be
// acknowledged via -update.
func TestReportGolden(t *testing.T) {
	var sb strings.Builder
	if err := Report(&sb, goldenOptions(), false); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "report_quick.golden", []byte(sb.String()))
}

// TestCrossSchemeGolden pins the cross-scheme comparison table on its
// own: the table covers every registered scheme, so a new registration
// or a behaviour change in any scheme's translation path shows up here
// even if the scheme has no dedicated figure.
func TestCrossSchemeGolden(t *testing.T) {
	rows, err := CrossScheme(NewRunner(goldenOptions()))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteCrossScheme(&sb, rows)
	goldenCompare(t, "cross_scheme_quick.golden", []byte(sb.String()))
}

// TestCSVGolden pins every figure CSV. The CSVs are concatenated into
// one golden with filename banners so the fixture stays a single
// reviewable file.
func TestCSVGolden(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteCSVs(dir, NewRunner(goldenOptions()))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "==> %s <==\n%s", filepath.Base(p), data)
	}
	goldenCompare(t, "csvs_quick.golden", buf.Bytes())
}
