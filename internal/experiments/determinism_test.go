package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// tiny returns the smallest campaign that still renders every report
// section: one workload, quick trace lengths.
func tiny() Options {
	o := QuickOptions()
	o.Workloads = []string{"gups"}
	return o
}

// TestReportByteIdentical is the seed-determinism regression at the
// artifact level: two fresh campaigns from identical options must render
// byte-identical markdown reports — any drift means a map iteration,
// goroutine race or time dependence leaked into the results.
func TestReportByteIdentical(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := Report(&sb, tiny(), false); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("fresh campaigns rendered different reports:\n%s", firstDiff(a, b))
	}
}

// TestCSVsByteIdentical extends the property to the CSV artifacts.
func TestCSVsByteIdentical(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	pathsA, err := WriteCSVs(dirA, NewRunner(tiny()))
	if err != nil {
		t.Fatal(err)
	}
	pathsB, err := WriteCSVs(dirB, NewRunner(tiny()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pathsA) != len(pathsB) {
		t.Fatalf("wrote %d vs %d CSVs", len(pathsA), len(pathsB))
	}
	for i := range pathsA {
		a, err := os.ReadFile(pathsA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pathsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between identical campaigns", filepath.Base(pathsA[i]))
		}
	}
}

// TestResumedReportMatchesFresh runs one campaign journaling into a
// checkpoint, then renders the same report from a second process-worth of
// state: a fresh runner resuming from the journal. The resumed report
// must be byte-identical to the fresh one — resume must change where
// results come from, never what they are.
func TestResumedReportMatchesFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	fp := Fingerprint(tiny())

	render := func() string {
		cp, err := LoadCheckpoint(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		o := tiny()
		o.Checkpoint = cp
		var sb strings.Builder
		if err := Report(&sb, o, false); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	fresh := render()

	cp, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() == 0 {
		t.Fatal("first campaign journaled no cells; resume test is vacuous")
	}
	resumed := render()
	if fresh != resumed {
		t.Fatalf("resumed report differs from fresh:\n%s", firstDiff(fresh, resumed))
	}
}

// firstDiff renders the first differing line of two texts for a readable
// failure message.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, la[i], lb[i])
		}
	}
	return "texts differ in length"
}

// FuzzCheckpointLoad fuzzes the journal loader against arbitrary file
// contents: it must never panic, must reject syntactically-corrupt JSON
// and fingerprint mismatches with errors, and when it does accept a file
// the journal must still round-trip a Put/Get.
func FuzzCheckpointLoad(f *testing.F) {
	fp := Fingerprint(QuickOptions())
	valid, err := json.Marshal(checkpointPayload{Version: 1, Fingerprint: fp,
		Cells: map[string]core.Result{"gups|pom-tlb": {Records: 7}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte("{"))
	f.Add([]byte(`{"version":1,"fingerprint":"wrong","cells":{}}`))
	f.Add(valid)
	f.Add([]byte(`{"version":1,"fingerprint":"` + fp + `","cells":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cp.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := LoadCheckpoint(path, fp)
		if err != nil {
			return // corrupt or mismatched journals are rejected, not loaded
		}
		want := core.Result{Records: 123, Cycles: 456}
		if err := cp.Put("wl", core.POMTLB, want); err != nil {
			t.Fatal(err)
		}
		re, err := LoadCheckpoint(path, fp)
		if err != nil {
			t.Fatalf("journal written by Put failed to reload: %v", err)
		}
		got, ok := re.Get("wl", core.POMTLB)
		if !ok || got.Records != want.Records || got.Cycles != want.Cycles {
			t.Fatalf("round trip lost the cell: %+v ok=%v", got, ok)
		}
	})
}
