package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// WriteCSVs runs the main figures and writes one CSV per figure into dir,
// for plotting with external tools. Returns the written paths.
func WriteCSVs(dir string, r *Runner) ([]string, error) {
	return WriteCSVsContext(context.Background(), dir, r)
}

// WriteCSVsContext is WriteCSVs with cancellation and graceful
// degradation. The directory is created if missing; each CSV lands via a
// temp file and an atomic rename, so an error can never leave a
// half-written CSV behind. Figures of a degraded campaign still produce
// their partial CSVs; the combined *CampaignError is returned alongside
// the paths that were written.
func WriteCSVsContext(ctx context.Context, dir string, r *Runner) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	var fs failureSet
	var written []string
	write := func(name string, header []string, rows [][]string) error {
		path := filepath.Join(dir, name)
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		err = w.Write(header)
		if err == nil {
			err = w.WriteAll(rows)
		}
		if err == nil {
			w.Flush()
			err = w.Error()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, path)
		}
		if err != nil {
			os.Remove(tmp) // no partial file survives a failed write
			return err
		}
		written = append(written, path)
		return nil
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

	f2, err := Figure2Context(ctx, r)
	fs.absorb(err)
	rows := make([][]string, len(f2))
	for i, row := range f2 {
		rows[i] = []string{row.Name, ff(row.PaperCyc), ff(row.SimCyc), ff(row.MissRatio)}
	}
	if err := write("fig2_translation_cycles.csv",
		[]string{"benchmark", "paper_cycles", "sim_cycles", "l2tlb_miss_ratio"}, rows); err != nil {
		return written, err
	}

	f4 := Figure4()
	rows = rows[:0]
	for _, pt := range f4 {
		rows = append(rows, []string{strconv.FormatUint(pt.CapacityBytes, 10), ff(pt.Normalized)})
	}
	if err := write("fig4_sram_scaling.csv",
		[]string{"capacity_bytes", "normalized_latency"}, rows); err != nil {
		return written, err
	}

	f8, sum, err := Figure8Context(ctx, r)
	fs.absorb(err)
	rows = rows[:0]
	for _, row := range f8 {
		rows = append(rows, []string{row.Name, ff(row.POM), ff(row.Shared), ff(row.TSB),
			ff(row.POMPen), ff(row.ShPen), ff(row.TSBPen), ff(row.BasePen)})
	}
	rows = append(rows, []string{"GEOMEAN", ff(sum.POMGeomeanPct), ff(sum.SharedGeomeanPct),
		ff(sum.TSBGeomeanPct), "", "", "", ""})
	if err := write("fig8_speedup.csv",
		[]string{"benchmark", "pom_pct", "shared_pct", "tsb_pct",
			"p_pom", "p_shared", "p_tsb", "p_base"}, rows); err != nil {
		return written, err
	}

	f9, err := Figure9Context(ctx, r)
	fs.absorb(err)
	rows = rows[:0]
	for _, row := range f9 {
		rows = append(rows, []string{row.Name, ff(row.L2D), ff(row.L3D), ff(row.POM), ff(row.WalkEl)})
	}
	if err := write("fig9_hit_ratio.csv",
		[]string{"benchmark", "l2d", "l3d", "pom", "walk_elimination"}, rows); err != nil {
		return written, err
	}

	f10, err := Figure10Context(ctx, r)
	fs.absorb(err)
	rows = rows[:0]
	for _, row := range f10 {
		rows = append(rows, []string{row.Name, ff(row.SizeAcc), ff(row.BypassAcc)})
	}
	if err := write("fig10_predictors.csv",
		[]string{"benchmark", "size_accuracy", "bypass_accuracy"}, rows); err != nil {
		return written, err
	}

	f11, err := Figure11Context(ctx, r)
	fs.absorb(err)
	rows = rows[:0]
	for _, row := range f11 {
		rows = append(rows, []string{row.Name, ff(row.RBH), strconv.FormatUint(row.Accesses, 10)})
	}
	if err := write("fig11_row_buffer.csv",
		[]string{"benchmark", "rbh", "dram_accesses"}, rows); err != nil {
		return written, err
	}

	f12, withAvg, noAvg, err := Figure12Context(ctx, r)
	fs.absorb(err)
	rows = rows[:0]
	for _, row := range f12 {
		rows = append(rows, []string{row.Name, ff(row.WithCache), ff(row.NoCache)})
	}
	rows = append(rows, []string{"GEOMEAN", ff(withAvg), ff(noAvg)})
	if err := write("fig12_caching.csv",
		[]string{"benchmark", "with_caching_pct", "without_pct"}, rows); err != nil {
		return written, err
	}

	return written, fs.err()
}

// OrderedCSV streams rows to an underlying writer in strict index order
// while accepting them in any order — the bridge between a work-stealing
// sweep (cells finish whenever their shard gets to them) and a results
// file whose bytes must be identical run over run. Rows are buffered only
// while an earlier index is still outstanding; as soon as the contiguous
// prefix extends, it is flushed, so a well-mixed sweep holds O(workers)
// rows in memory instead of the whole grid. Quarantined cells call Skip
// so the prefix can advance past indices that will never produce a row.
// Safe for concurrent use.
type OrderedCSV struct {
	mu      sync.Mutex
	w       *csv.Writer
	next    int
	pending map[int][]string
	skipped map[int]bool
	rows    int
}

// NewOrderedCSV writes the header immediately and returns the streaming
// writer.
func NewOrderedCSV(w io.Writer, header []string) (*OrderedCSV, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return nil, err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return nil, err
	}
	return &OrderedCSV{w: cw, pending: map[int][]string{}, skipped: map[int]bool{}}, nil
}

// Put hands over the row for index i; it is written once every smaller
// index has been Put or Skipped.
func (o *OrderedCSV) Put(i int, row []string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.pending[i] = row
	return o.advance()
}

// Skip marks index i as permanently rowless (a quarantined cell), letting
// the contiguous prefix flush past it.
func (o *OrderedCSV) Skip(i int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.skipped[i] = true
	return o.advance()
}

// advance flushes the contiguous prefix. Caller holds o.mu.
func (o *OrderedCSV) advance() error {
	for {
		if row, ok := o.pending[o.next]; ok {
			if err := o.w.Write(row); err != nil {
				return err
			}
			delete(o.pending, o.next)
			o.rows++
			o.next++
			continue
		}
		if o.skipped[o.next] {
			delete(o.skipped, o.next)
			o.next++
			continue
		}
		break
	}
	o.w.Flush()
	return o.w.Error()
}

// Rows returns how many data rows have been written so far.
func (o *OrderedCSV) Rows() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rows
}

// Pending returns how many rows are buffered waiting for earlier indices
// — nonzero after an interrupted sweep whose missing cells will only
// arrive on resume.
func (o *OrderedCSV) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending)
}
