package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/stats"
)

// Report runs the full campaign and writes a paper-vs-measured markdown
// report — the contents of EXPERIMENTS.md.
func Report(w io.Writer, opts Options, ablations bool) error {
	return ReportContext(context.Background(), w, opts, ablations)
}

// ReportContext is Report with cancellation and graceful degradation:
// every section renders whatever rows its campaign cells produced, a
// trailing section lists any failed cells, and the combined
// *CampaignError is returned (nil for a clean campaign). A cancelled or
// partially-panicked campaign therefore still emits a readable report of
// everything that completed.
func ReportContext(ctx context.Context, w io.Writer, opts Options, ablations bool) error {
	r := NewRunner(opts)
	var fs failureSet
	fmt.Fprintf(w, "# EXPERIMENTS — POM-TLB reproduction\n\n")
	fmt.Fprintf(w, "Campaign: %d cores, %d VMs, %d warmup + %d measured references per run, seed %d.\n\n",
		opts.Cores, max(opts.VMs, 1), opts.WarmupRefs, opts.MaxRefs, opts.Seed)
	fmt.Fprintf(w, "Paper numbers come from the published figures/tables; measured numbers from\n")
	fmt.Fprintf(w, "this repository's simulator. The fidelity target is shape (who wins, by\n")
	fmt.Fprintf(w, "roughly what factor), not absolute cycles — see DESIGN.md §2.\n\n")

	fmt.Fprintf(w, "## Table 1 — system parameters\n\n```\n%s```\n\n", Table1())
	fmt.Fprintf(w, "## Table 2 — workloads\n\n```\n%s```\n\n", Table2())

	// Figure 2.
	f2, err := Figure2Context(ctx, r)
	fs.absorb(err)
	fmt.Fprintf(w, "## Figure 2 — translation cycles per L2 TLB miss (virtualized)\n\n")
	t := stats.NewTable("Benchmark", "Paper (meas.)", "Simulated baseline", "L2TLB missR")
	for _, row := range f2 {
		t.AddRow(row.Name, fmt.Sprintf("%.0f", row.PaperCyc),
			fmt.Sprintf("%.1f", row.SimCyc), fmt.Sprintf("%.3f", row.MissRatio))
	}
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())

	// Figure 3.
	f3, err := Figure3Context(ctx, r)
	fs.absorb(err)
	fmt.Fprintf(w, "## Figure 3 — virtualized / native translation cost ratio\n\n")
	t = stats.NewTable("Benchmark", "Paper ratio", "Simulated ratio")
	for _, row := range f3 {
		t.AddRow(row.Name, fmt.Sprintf("%.2f", row.PaperRatio), fmt.Sprintf("%.2f", row.SimRatio))
	}
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())

	// Figure 4.
	fmt.Fprintf(w, "## Figure 4 — SRAM latency vs capacity (normalized to 16 KB)\n\n")
	t = stats.NewTable("Capacity", "Normalized latency")
	for _, pt := range Figure4() {
		label := fmt.Sprintf("%dKB", pt.CapacityBytes>>10)
		if pt.CapacityBytes >= 1<<20 {
			label = fmt.Sprintf("%dMB", pt.CapacityBytes>>20)
		}
		t.AddRow(label, fmt.Sprintf("%.2f", pt.Normalized))
	}
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())

	// Figure 8.
	f8, sum, err := Figure8Context(ctx, r)
	fs.absorb(err)
	fmt.Fprintf(w, "## Figure 8 — performance improvement (%d core)\n\n", opts.Cores)
	fmt.Fprintf(w, "Paper averages: POM-TLB 9.57%%, Shared_L2 6.10%%, TSB 4.27%%.\n")
	fmt.Fprintf(w, "Measured averages: POM-TLB %.2f%%, Shared_L2 %.2f%%, TSB %.2f%%.\n\n",
		sum.POMGeomeanPct, sum.SharedGeomeanPct, sum.TSBGeomeanPct)
	t = stats.NewTable("Benchmark", "POM-TLB %", "Shared_L2 %", "TSB %", "P_pom", "P_shared", "P_tsb", "P_base")
	for _, row := range f8 {
		t.AddRow(row.Name,
			fmt.Sprintf("%.2f", row.POM), fmt.Sprintf("%.2f", row.Shared), fmt.Sprintf("%.2f", row.TSB),
			fmt.Sprintf("%.0f", row.POMPen), fmt.Sprintf("%.0f", row.ShPen),
			fmt.Sprintf("%.0f", row.TSBPen), fmt.Sprintf("%.0f", row.BasePen))
	}
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())

	// Figure 9.
	f9, err := Figure9Context(ctx, r)
	fs.absorb(err)
	fmt.Fprintf(w, "## Figure 9 — POM-TLB entry hit ratios per level\n\n")
	fmt.Fprintf(w, "Paper averages: L2D$ ≈ 89.7%%, POM-TLB ≈ 88%%.\n\n")
	t = stats.NewTable("Benchmark", "L2D$", "L3D$", "POM-TLB", "WalkElim")
	var l2s, poms []float64
	for _, row := range f9 {
		l2s = append(l2s, row.L2D)
		poms = append(poms, row.POM)
		t.AddRow(row.Name, stats.Pct(row.L2D), stats.Pct(row.L3D), stats.Pct(row.POM), stats.Pct(row.WalkEl))
	}
	t.AddRow("MEAN", stats.Pct(stats.ArithMean(l2s)), "", stats.Pct(stats.ArithMean(poms)), "")
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())

	// Figure 10.
	f10, err := Figure10Context(ctx, r)
	fs.absorb(err)
	fmt.Fprintf(w, "## Figure 10 — predictor accuracy\n\n")
	fmt.Fprintf(w, "Paper averages: size ≈ 95%%, bypass ≈ 45.8%%.\n\n")
	t = stats.NewTable("Benchmark", "Size acc", "Bypass acc")
	var sz, by []float64
	for _, row := range f10 {
		sz = append(sz, row.SizeAcc)
		by = append(by, row.BypassAcc)
		t.AddRow(row.Name, stats.Pct(row.SizeAcc), stats.Pct(row.BypassAcc))
	}
	t.AddRow("MEAN", stats.Pct(stats.ArithMean(sz)), stats.Pct(stats.ArithMean(by)))
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())

	// Figure 11.
	f11, err := Figure11Context(ctx, r)
	fs.absorb(err)
	fmt.Fprintf(w, "## Figure 11 — POM-TLB row-buffer hit rate\n\n")
	fmt.Fprintf(w, "Paper average: ≈ 71%% (spatially local workloads high, gups low).\n\n")
	t = stats.NewTable("Benchmark", "RBH", "DRAM accesses")
	var rbhs []float64
	for _, row := range f11 {
		rbhs = append(rbhs, row.RBH)
		t.AddRow(row.Name, stats.Pct(row.RBH), fmt.Sprintf("%d", row.Accesses))
	}
	t.AddRow("MEAN", stats.Pct(stats.ArithMean(rbhs)), "")
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())

	// Figure 12.
	f12, withAvg, noAvg, err := Figure12Context(ctx, r)
	fs.absorb(err)
	fmt.Fprintf(w, "## Figure 12 — with vs without data caching of TLB entries\n\n")
	fmt.Fprintf(w, "Paper: caching adds ≈ 5%% on average. Measured: %.2f%% vs %.2f%%.\n\n", withAvg, noAvg)
	t = stats.NewTable("Benchmark", "With caching %", "Without %")
	for _, row := range f12 {
		t.AddRow(row.Name, fmt.Sprintf("%.2f", row.WithCache), fmt.Sprintf("%.2f", row.NoCache))
	}
	fmt.Fprintf(w, "```\n%s```\n\n", t.String())

	// Cross-scheme comparison over the full registry.
	xs, err := CrossSchemeContext(ctx, r)
	fs.absorb(err)
	fmt.Fprintf(w, "## Cross-scheme comparison — every registered scheme\n\n")
	fmt.Fprintf(w, "All schemes the registry knows, on one axis. Improvement uses the\n")
	fmt.Fprintf(w, "linear model against the measured baseline and is only defined for\n")
	fmt.Fprintf(w, "calibrated schemes; fully-simulated walkers (l4-cache, dram-cache)\n")
	fmt.Fprintf(w, "show \"—\" because their penalties cannot be mixed with measured ones.\n\n")
	WriteCrossScheme(w, xs)

	// Cloud-consolidation scenario: per-tenant-tier breakdown.
	tiers, err := ConsolidationTiersContext(ctx, r, DefaultConsolidationPreset, nil)
	fs.absorb(err)
	fmt.Fprintf(w, "## Consolidation — %s per-tier breakdown\n\n", DefaultConsolidationPreset)
	fmt.Fprintf(w, "Hundreds of guests with Zipf tenant popularity (hot/warm/cold tiers).\n")
	fmt.Fprintf(w, "SRAM TLBs thrash across tenants; a tagged in-memory TLB retains every\n")
	fmt.Fprintf(w, "tenant's translations at once, so POM-TLB's walk elimination should\n")
	fmt.Fprintf(w, "hold up on the cold tail where TSB and Shared_L2 fall off. All walks\n")
	fmt.Fprintf(w, "are simulated (no Table 2 calibration exists for a tenant mix).\n\n")
	WriteConsolidationTiers(w, tiers)

	if ablations {
		writeAbl := func(title, paperNote string, pts []AblationPoint) {
			fmt.Fprintf(w, "## %s\n\n%s\n\n", title, paperNote)
			t := stats.NewTable("Point", "Improvement %", "P_avg", "WalkElim")
			for _, p := range pts {
				t.AddRow(p.Label, fmt.Sprintf("%.2f", p.MeanImprovementPct),
					fmt.Sprintf("%.1f", p.MeanPenalty), stats.Pct(p.WalkElimination))
			}
			fmt.Fprintf(w, "```\n%s```\n\n", t.String())
		}

		cap, err := AblationCapacity(ctx, opts)
		fs.absorb(err)
		writeAbl("Ablation §4.6a — POM-TLB capacity", "Paper: 8/16/32 MB changes results < 1%.", cap)

		cores, err := AblationCores(ctx, opts)
		fs.absorb(err)
		writeAbl("Ablation §4.6b — core count", "Paper: 4–32 cores leave the improvement ≈ unchanged.", cores)

		assoc, err := AblationAssociativity(ctx, opts)
		fs.absorb(err)
		writeAbl("Ablation — associativity", "Paper: < 4 ways causes significantly more conflict misses.", assoc)

		byp, err := AblationBypass(ctx, opts)
		fs.absorb(err)
		writeAbl("Ablation — bypass predictor", "Bypass predictor vs always probing the caches.", byp)

		aware, err := AblationTLBAwareCaching(ctx, opts)
		fs.absorb(err)
		writeAbl("§5.1 — TLB-aware caching", "Replacement priority for POM-TLB entries vs data in L2/L3.", aware)

		pref, err := AblationNeighborPrefetch(ctx, opts)
		fs.absorb(err)
		writeAbl("§6 — burst-neighbour prefetch", "Install the fetched set's other translations into the L2 TLB.", pref)

		mvm, err := MultiVMStudy(ctx, opts, []int{1, 2, 4})
		fs.absorb(err)
		writeAbl("§5.2 — multiple VMs sharing the POM-TLB", "The large TLB retains several VMs' translations at once.", mvm)

		trade, err := TradeoffStudyContext(ctx, opts)
		fs.absorb(err)
		fmt.Fprintf(w, "## §2.2 — same capacity as L4 data cache vs L3 TLB\n\n")
		fmt.Fprintf(w, "Fully-simulated totals (no measured-baseline mixing).\n\n")
		tt := stats.NewTable("Benchmark", "L4-cache speedup %", "POM-TLB speedup %")
		for _, row := range trade {
			tt.AddRow(row.Name, fmt.Sprintf("%.2f", row.L4SpeedupPct), fmt.Sprintf("%.2f", row.POMSpeedupPct))
		}
		fmt.Fprintf(w, "```\n%s```\n\n", tt.String())

		native, err := NativeStudyContext(ctx, opts)
		fs.absorb(err)
		fmt.Fprintf(w, "## Native execution — POM-TLB without virtualization\n\n")
		fmt.Fprintf(w, "The paper's introduction: up to 14%% of native execution goes to\n")
		fmt.Fprintf(w, "translation, so the scheme helps bare metal too.\n\n")
		nt := stats.NewTable("Benchmark", "Improvement %", "P_pom", "P_base(native)")
		for _, row := range native {
			nt.AddRow(row.Name, fmt.Sprintf("%.2f", row.ImprovementPct),
				fmt.Sprintf("%.0f", row.Penalty), fmt.Sprintf("%.0f", row.BasePen))
		}
		fmt.Fprintf(w, "```\n%s```\n\n", nt.String())

		fmt.Fprint(w, fidelityNotes)
	}

	if err := fs.err(); err != nil {
		fmt.Fprintf(w, "\n## Degraded cells\n\nThis campaign did not complete cleanly; the tables above omit the\nfollowing (workload, scheme) cells:\n\n```\n%v\n```\n", err)
		return err
	}
	return nil
}

// fidelityNotes documents where and why the reproduction deviates from the
// paper's absolute numbers (the shape criteria of DESIGN.md §2 still hold).
const fidelityNotes = `## Fidelity notes — where we deviate and why

* **Figure 8 magnitudes are compressed** (POM geomean ≈ 3–4% vs the
  paper's 9.57%). The paper's per-workload gains require POM-TLB
  penalties of 15–40 cycles, which in turn require ≈90% of POM-set probes
  to hit the 256 KB L2D$. Our synthetic traces are stationary processes;
  without the phase behaviour of real SPEC binaries, the L2D$ share is
  30–80% and the L3D$ (54 cycles) carries the rest. The *ordering* —
  POM-TLB > Shared_L2 > TSB, winners = the high-overhead workloads,
  streamcluster ≈ 1% — reproduces.
* **Figure 2/3 simulated baselines are flatter than measured.** Our 2D
  walker with Table 1 PSCs lands in the 80–240 cycle band; the paper's
  hardware shows 61–1158 because real PTE locality varies far more than a
  synthetic trace's. The virtualized/native ratio ≈ 2–3× reproduces
  except for the paper's ccomponent outlier (26×), which reflects a
  pathology of its real page-table layout that a synthetic trace does not
  recreate.
* **Figure 11's average RBH is lower than 71%.** Cache-resident POM sets
  filter the DRAM stream: exactly the workloads whose sets would enjoy
  row locality resolve in the caches instead, so the residual DRAM
  traffic is the unlucky tail. Streaming workloads, whose misses reach
  DRAM in page order, show the paper's ≈90%+ RBH. (The paper's
  simultaneous 89.7% L2D$ and 71% RBH are in tension for the same
  reason.)
* **Shared_L2 is modelled additively** (private L2 TLBs retained) and is
  therefore stronger than the paper's replacement design on workloads
  whose hot sets fit its 12 K entries (gcc, canneal). See DESIGN.md §5.6.
* **TSB is hurt by off-chip channel contention**: its probes share the
  DDR channels with all data traffic, while the POM-TLB owns a
  die-stacked channel — which is the paper's own §2.2 argument.
* **§5.1 works.** Giving POM-TLB entries replacement priority in the data
  caches roughly halves the average penalty in our runs — the clearest
  confirmation of the paper's "TLB-aware caching" suggestion.
`

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
