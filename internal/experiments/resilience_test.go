package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
)

// TestCampaignSurvivesWorkerPanic is the headline acceptance test: a
// worker that panics mid-campaign must cost exactly its own cell — every
// other workload's row survives, and the error names the failed
// (workload, scheme) pair with the recovered panic attached.
func TestCampaignSurvivesWorkerPanic(t *testing.T) {
	opts := quick()
	opts.Faults = faultinject.NewSchedule()
	opts.Faults.PanicOn(faultinject.WorkerSite("gups", core.POMTLB.String()), 1)
	r := NewRunner(opts)

	rows, err := Figure9Context(context.Background(), r)
	if err == nil {
		t.Fatal("panicked worker produced no campaign error")
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 surviving rows, got %d: %+v", len(rows), rows)
	}
	for _, row := range rows {
		if row.Name == "gups" {
			t.Error("the panicked cell must not produce a row")
		}
	}

	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CampaignError", err)
	}
	if len(ce.Failures) != 1 {
		t.Fatalf("want 1 failure, got %d: %v", len(ce.Failures), ce)
	}
	f := ce.Failures[0]
	if f.Workload != "gups" || f.Mode != core.POMTLB {
		t.Errorf("failure names %s/%s, want gups/pom-tlb", f.Workload, f.Mode)
	}
	var pe *resilience.PanicError
	if !errors.As(f.Err, &pe) {
		t.Fatalf("failure cause is %T, want *resilience.PanicError", f.Err)
	}
	if !strings.Contains(ce.Verbose(), "stack for gups/pom-tlb") {
		t.Error("Verbose() missing the recovered stack")
	}
}

// TestResumeCompletesOnlyMissingCell proves the checkpoint/resume loop: a
// campaign degraded by one panicked worker journals every completed cell,
// and a resumed campaign re-simulates only the cell that is missing.
func TestResumeCompletesOnlyMissingCell(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opts := quick()
	fp := Fingerprint(opts)

	// First campaign: gups/pom-tlb panics, the other two cells complete.
	cp, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = cp
	opts.Faults = faultinject.NewSchedule()
	opts.Faults.PanicOn(faultinject.WorkerSite("gups", core.POMTLB.String()), 1)
	if _, err := Figure9Context(context.Background(), NewRunner(opts)); err == nil {
		t.Fatal("first campaign should be degraded")
	}
	if cp.Len() != 2 {
		t.Fatalf("checkpoint holds %d cells after the degraded run, want 2 (%v)", cp.Len(), cp.Keys())
	}

	// Resumed campaign: a fresh fault-free schedule counts which workers
	// actually simulate. Checkpointed cells are served before the worker
	// site fires, so only the missing cell may hit it.
	cp2, err := LoadCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	opts2 := quick()
	opts2.Checkpoint = cp2
	opts2.Faults = faultinject.NewSchedule() // empty: pure hit counting
	rows, err := Figure9Context(context.Background(), NewRunner(opts2))
	if err != nil {
		t.Fatalf("resumed campaign failed: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("resumed campaign produced %d rows, want 3", len(rows))
	}
	for _, name := range []string{"streamcluster", "mcf"} {
		site := faultinject.WorkerSite(name, core.POMTLB.String())
		if n := opts2.Faults.Hits(site); n != 0 {
			t.Errorf("%s re-simulated %d time(s) despite being checkpointed", name, n)
		}
	}
	if n := opts2.Faults.Hits(faultinject.WorkerSite("gups", core.POMTLB.String())); n != 1 {
		t.Errorf("missing cell gups simulated %d time(s), want exactly 1", n)
	}
	if cp2.Len() != 3 {
		t.Errorf("checkpoint holds %d cells after resume, want 3", cp2.Len())
	}
}

// TestMidCampaignCancellation cancels after the first workload completes:
// the finished cell survives (result and checkpoint), the remaining cells
// fail with context.Canceled, and no worker goroutines leak.
func TestMidCampaignCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	opts := quick()
	opts.Parallel = 1
	cp, err := LoadCheckpoint(path, Fingerprint(opts))
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = cp
	r := NewRunner(opts)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := r.Result(ctx, "streamcluster", core.POMTLB); err != nil {
		t.Fatal(err)
	}
	cancel()

	err = r.Prefetch(ctx, []string{"streamcluster", "gups", "mcf"}, []core.Mode{core.POMTLB})
	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("cancelled campaign returned %T, want *CampaignError", err)
	}
	if len(ce.Failures) != 2 {
		t.Fatalf("want 2 cancelled cells, got %d: %v", len(ce.Failures), ce)
	}
	for _, f := range ce.Failures {
		if f.Workload == "streamcluster" {
			t.Error("the completed cell must not be reported as failed")
		}
		if !errors.Is(f, context.Canceled) {
			t.Errorf("%s/%s failed with %v, want context.Canceled", f.Workload, f.Mode, f.Err)
		}
	}

	// The completed cell is still served (memoized) after cancellation.
	if _, err := r.Result(context.Background(), "streamcluster", core.POMTLB); err != nil {
		t.Errorf("completed cell lost after cancellation: %v", err)
	}
	// The checkpoint holds exactly the finished cell.
	if keys := cp.Keys(); len(keys) != 1 || keys[0] != "streamcluster|pom-tlb" {
		t.Errorf("checkpoint cells = %v, want exactly [streamcluster|pom-tlb]", keys)
	}
	// PrefetchContext waits for its workers, so the goroutine count must
	// settle back to the baseline (small grace for runtime bookkeeping).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestDRAMFaultRecovered injects a failure at the DRAM access seam — deep
// inside the memory substrate, far below the campaign runner — and checks
// it surfaces as a structured, errors.Is-able workload failure.
func TestDRAMFaultRecovered(t *testing.T) {
	sentinel := errors.New("injected DRAM failure")
	opts := quick()
	opts.Workloads = []string{"gups"}
	opts.Faults = faultinject.NewSchedule()
	opts.Faults.ErrorOn(faultinject.DRAMSite, sentinel, 1)
	r := NewRunner(opts)

	_, err := r.Result(context.Background(), "gups", core.POMTLB)
	if err == nil {
		t.Fatal("injected DRAM fault did not fail the cell")
	}
	var we *WorkloadError
	if !errors.As(err, &we) {
		t.Fatalf("error is %T, want *WorkloadError", err)
	}
	// The hook has no error path, so the fault travels as a panic; the
	// recovery chain must still expose the original sentinel.
	if !errors.Is(err, sentinel) {
		t.Errorf("sentinel lost through the recovery chain: %v", err)
	}
}

// TestTraceCorruptionSeamFires proves the trace-record seam is wired into
// real campaigns: a corruption fault neither crashes nor errors the run,
// and the hit counter confirms the wrapper saw every generated record.
func TestTraceCorruptionSeamFires(t *testing.T) {
	opts := quick()
	opts.Workloads = []string{"gups"}
	opts.Faults = faultinject.NewSchedule()
	opts.Faults.CorruptOn(faultinject.TraceSite, 5)
	r := NewRunner(opts)

	if _, err := r.Result(context.Background(), "gups", core.POMTLB); err != nil {
		t.Fatalf("corrupted record must not fail the run: %v", err)
	}
	want := uint64(opts.WarmupRefs + opts.MaxRefs)
	if n := opts.Faults.Hits(faultinject.TraceSite); n < want {
		t.Errorf("trace seam fired %d times, want at least %d", n, want)
	}
}

// TestWorkloadTimeout enforces the per-job deadline: a cell that exceeds
// Options.WorkloadTimeout fails with context.DeadlineExceeded while
// remaining addressable as a structured workload error.
func TestWorkloadTimeout(t *testing.T) {
	opts := quick()
	opts.Workloads = []string{"mcf"}
	opts.WorkloadTimeout = time.Nanosecond
	r := NewRunner(opts)

	_, err := r.Result(context.Background(), "mcf", core.POMTLB)
	if err == nil {
		t.Fatal("1ns deadline did not fail the cell")
	}
	var we *WorkloadError
	if !errors.As(err, &we) {
		t.Fatalf("error is %T, want *WorkloadError", err)
	}
	if we.Workload != "mcf" || we.Mode != core.POMTLB {
		t.Errorf("failure names %s/%s, want mcf/pom-tlb", we.Workload, we.Mode)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want context.DeadlineExceeded in the chain, got %v", err)
	}
}
