package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/pomtlb"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/workloads"
)

// Every FigureN has a FigureNContext variant. The Context variants degrade
// gracefully: a failed (workload, scheme) cell drops only that figure row,
// and the call returns the surviving rows together with a *CampaignError
// listing exactly which cells are missing — so a cancelled or
// partially-panicked campaign still yields every completed result.

// Fig2Row is one bar of Figure 2: average translation cycles per L2 TLB
// miss on the virtualized platform — the paper's measured value alongside
// our simulated baseline.
type Fig2Row struct {
	Name      string
	PaperCyc  float64 // Table 2 "Average Cycles-per-L2TLB-miss Virtual"
	SimCyc    float64 // simulated baseline P_avg
	MissRatio float64 // simulated L2 TLB miss ratio, for context
}

// Figure2 regenerates Figure 2.
func Figure2(r *Runner) ([]Fig2Row, error) {
	return Figure2Context(context.Background(), r)
}

// Figure2Context is Figure2 with cancellation and graceful degradation.
func Figure2Context(ctx context.Context, r *Runner) ([]Fig2Row, error) {
	// Warm the grid concurrently; per-cell failures resurface from
	// ResultContext below, where they are attributed row by row.
	_ = r.Prefetch(ctx, r.names(), []core.Mode{core.Baseline})
	var fs failureSet
	var rows []Fig2Row
	for _, p := range r.workloads() {
		res, err := r.Result(ctx, p.Name, core.Baseline)
		if err != nil {
			fs.record(err, p.Name, core.Baseline)
			continue
		}
		rows = append(rows, Fig2Row{
			Name:      p.Name,
			PaperCyc:  p.CyclesPerMissVirt,
			SimCyc:    res.AvgPenalty(),
			MissRatio: res.L2TLB.MissRatio(),
		})
	}
	return rows, fs.err()
}

// Fig3Row is one bar of Figure 3: the ratio of virtualized to native
// translation cost.
type Fig3Row struct {
	Name       string
	PaperRatio float64 // Table 2 column ratio
	SimRatio   float64 // simulated baseline virt / native P_avg
}

// Figure3 regenerates Figure 3. It needs a second, native campaign, which
// it derives from the runner's options.
func Figure3(r *Runner) ([]Fig3Row, error) {
	return Figure3Context(context.Background(), r)
}

// Figure3Context is Figure3 with cancellation and graceful degradation.
func Figure3Context(ctx context.Context, r *Runner) ([]Fig3Row, error) {
	nativeOpts := r.Options()
	nativeOpts.Virtualized = false
	nativeOpts.Checkpoint = nil // different fingerprint; never share the journal
	nr := NewRunner(nativeOpts)
	_ = r.Prefetch(ctx, r.names(), []core.Mode{core.Baseline})
	_ = nr.Prefetch(ctx, r.names(), []core.Mode{core.Baseline})
	var fs failureSet
	var rows []Fig3Row
	for _, p := range r.workloads() {
		virt, err := r.Result(ctx, p.Name, core.Baseline)
		if err != nil {
			fs.record(err, p.Name, core.Baseline)
			continue
		}
		nat, err := nr.Result(ctx, p.Name, core.Baseline)
		if err != nil {
			fs.record(err, p.Name, core.Baseline)
			continue
		}
		row := Fig3Row{Name: p.Name, PaperRatio: p.VirtOverNativeRatio()}
		if nat.AvgPenalty() > 0 {
			row.SimRatio = virt.AvgPenalty() / nat.AvgPenalty()
		}
		rows = append(rows, row)
	}
	return rows, fs.err()
}

// Figure4 regenerates Figure 4: normalized SRAM access latency vs
// capacity (no simulation needed — the analytic CACTI model).
func Figure4() []cacti.Point {
	return cacti.Default().Sweep()
}

// Fig8Row is one workload of Figure 8: performance improvement (%) of
// each scheme over the measured baseline, via the linear model.
type Fig8Row struct {
	Name    string
	POM     float64
	Shared  float64
	TSB     float64
	POMPen  float64 // simulated penalties, for the report
	ShPen   float64
	TSBPen  float64
	BasePen float64 // Table 2 baseline penalty
}

// Figure8 regenerates Figure 8 (the headline result).
func Figure8(r *Runner) ([]Fig8Row, Fig8Summary, error) {
	return Figure8Context(context.Background(), r)
}

// Figure8Context is Figure8 with cancellation and graceful degradation: a
// workload whose cell fails under any of the three schemes is dropped
// from both the rows and the geomeans, and reported in the error.
func Figure8Context(ctx context.Context, r *Runner) ([]Fig8Row, Fig8Summary, error) {
	modes := []core.Mode{core.POMTLB, core.SharedL2, core.TSB}
	_ = r.Prefetch(ctx, r.names(), modes)
	var fs failureSet
	var rows []Fig8Row
	var pomS, shS, tsbS []float64
	for _, p := range r.workloads() {
		row := Fig8Row{Name: p.Name, BasePen: p.CyclesPerMissVirt}
		type slot struct {
			mode core.Mode
			imp  *float64
			pen  *float64
			sp   *[]float64
		}
		slots := []slot{
			{core.POMTLB, &row.POM, &row.POMPen, &pomS},
			{core.SharedL2, &row.Shared, &row.ShPen, &shS},
			{core.TSB, &row.TSB, &row.TSBPen, &tsbS},
		}
		speedups := make([]float64, len(slots))
		ok := true
		for i, sl := range slots {
			res, err := r.Result(ctx, p.Name, sl.mode)
			if err != nil {
				fs.record(err, p.Name, sl.mode)
				ok = false
				continue
			}
			*sl.pen = res.AvgPenalty()
			// The scheme cannot be worse than running every miss at the
			// measured baseline cost: cap penalties at P_base so a
			// simulated penalty above the measured one (possible when our
			// synthetic substrate is harsher than the real machine) reads
			// as "no gain", matching how the paper reports Figure 8.
			pen := *sl.pen
			if pen > p.CyclesPerMissVirt {
				pen = p.CyclesPerMissVirt
			}
			imp, err := perfmodel.ImprovementPct(perfmodel.FromProfile(p, pen))
			if err != nil {
				fs.record(err, p.Name, sl.mode)
				ok = false
				continue
			}
			*sl.imp = imp
			speedups[i] = 1 + imp/100
		}
		if !ok {
			continue // keep the geomeans consistent with the rendered rows
		}
		for i, sl := range slots {
			*sl.sp = append(*sl.sp, speedups[i])
		}
		rows = append(rows, row)
	}
	sum := Fig8Summary{
		POMGeomeanPct:    perfmodel.GeomeanImprovementPct(pomS),
		SharedGeomeanPct: perfmodel.GeomeanImprovementPct(shS),
		TSBGeomeanPct:    perfmodel.GeomeanImprovementPct(tsbS),
	}
	return rows, sum, fs.err()
}

// Fig8Summary carries Figure 8's averages (paper: POM 9.57%, Shared_L2
// 6.10%, TSB 4.27%).
type Fig8Summary struct {
	POMGeomeanPct    float64
	SharedGeomeanPct float64
	TSBGeomeanPct    float64
}

// Fig9Row is one workload of Figure 9: hit ratio at each level where
// POM-TLB entries are found.
type Fig9Row struct {
	Name   string
	L2D    float64 // TLB-entry probes hitting the L2 data cache
	L3D    float64 // ... the shared L3
	POM    float64 // ... the die-stacked DRAM TLB
	WalkEl float64 // fraction of L2 TLB misses resolved without a walk
}

// Figure9 regenerates Figure 9.
func Figure9(r *Runner) ([]Fig9Row, error) {
	return Figure9Context(context.Background(), r)
}

// Figure9Context is Figure9 with cancellation and graceful degradation.
func Figure9Context(ctx context.Context, r *Runner) ([]Fig9Row, error) {
	_ = r.Prefetch(ctx, r.names(), []core.Mode{core.POMTLB})
	var fs failureSet
	var rows []Fig9Row
	for _, p := range r.workloads() {
		res, err := r.Result(ctx, p.Name, core.POMTLB)
		if err != nil {
			fs.record(err, p.Name, core.POMTLB)
			continue
		}
		rows = append(rows, Fig9Row{
			Name:   p.Name,
			L2D:    res.L2DProbe.Ratio(),
			L3D:    res.L3DProbe.Ratio(),
			POM:    res.POMDRAM.Ratio(),
			WalkEl: res.WalkEliminationRate(),
		})
	}
	return rows, fs.err()
}

// Fig10Row is one workload of Figure 10: predictor accuracies.
type Fig10Row struct {
	Name      string
	SizeAcc   float64
	BypassAcc float64
	SizeTotal uint64
	BypassTot uint64
}

// Figure10 regenerates Figure 10.
func Figure10(r *Runner) ([]Fig10Row, error) {
	return Figure10Context(context.Background(), r)
}

// Figure10Context is Figure10 with cancellation and graceful degradation.
func Figure10Context(ctx context.Context, r *Runner) ([]Fig10Row, error) {
	_ = r.Prefetch(ctx, r.names(), []core.Mode{core.POMTLB})
	var fs failureSet
	var rows []Fig10Row
	for _, p := range r.workloads() {
		res, err := r.Result(ctx, p.Name, core.POMTLB)
		if err != nil {
			fs.record(err, p.Name, core.POMTLB)
			continue
		}
		rows = append(rows, Fig10Row{
			Name:      p.Name,
			SizeAcc:   res.SizePred.Ratio(),
			BypassAcc: res.BypassPred.Ratio(),
			SizeTotal: res.SizePred.Total(),
			BypassTot: res.BypassPred.Total(),
		})
	}
	return rows, fs.err()
}

// Fig11Row is one workload of Figure 11: POM-TLB row-buffer hit rate.
type Fig11Row struct {
	Name     string
	RBH      float64
	Accesses uint64
}

// Figure11 regenerates Figure 11.
func Figure11(r *Runner) ([]Fig11Row, error) {
	return Figure11Context(context.Background(), r)
}

// Figure11Context is Figure11 with cancellation and graceful degradation.
func Figure11Context(ctx context.Context, r *Runner) ([]Fig11Row, error) {
	_ = r.Prefetch(ctx, r.names(), []core.Mode{core.POMTLB})
	var fs failureSet
	var rows []Fig11Row
	for _, p := range r.workloads() {
		res, err := r.Result(ctx, p.Name, core.POMTLB)
		if err != nil {
			fs.record(err, p.Name, core.POMTLB)
			continue
		}
		rows = append(rows, Fig11Row{
			Name:     p.Name,
			RBH:      res.POMDRAMStats.RowBufferHitRate(),
			Accesses: res.POMDRAMStats.Accesses,
		})
	}
	return rows, fs.err()
}

// Fig12Row is one workload of Figure 12: improvement with and without
// caching TLB entries in the data caches.
type Fig12Row struct {
	Name      string
	WithCache float64 // improvement %, POM-TLB with data caching
	NoCache   float64 // improvement %, POM-TLB without
}

// Figure12 regenerates Figure 12.
func Figure12(r *Runner) ([]Fig12Row, float64, float64, error) {
	return Figure12Context(context.Background(), r)
}

// Figure12Context is Figure12 with cancellation and graceful degradation.
func Figure12Context(ctx context.Context, r *Runner) ([]Fig12Row, float64, float64, error) {
	modes := []core.Mode{core.POMTLB, core.POMTLBNoCache}
	_ = r.Prefetch(ctx, r.names(), modes)
	var fs failureSet
	var rows []Fig12Row
	var with, without []float64
	for _, p := range r.workloads() {
		row := Fig12Row{Name: p.Name}
		var sp [2]float64
		ok := true
		for i, m := range modes {
			res, err := r.Result(ctx, p.Name, m)
			if err != nil {
				fs.record(err, p.Name, m)
				ok = false
				continue
			}
			pen := res.AvgPenalty()
			if pen > p.CyclesPerMissVirt {
				pen = p.CyclesPerMissVirt
			}
			imp, err := perfmodel.ImprovementPct(perfmodel.FromProfile(p, pen))
			if err != nil {
				fs.record(err, p.Name, m)
				ok = false
				continue
			}
			if m == core.POMTLB {
				row.WithCache = imp
			} else {
				row.NoCache = imp
			}
			sp[i] = 1 + imp/100
		}
		if !ok {
			continue
		}
		with = append(with, sp[0])
		without = append(without, sp[1])
		rows = append(rows, row)
	}
	return rows, perfmodel.GeomeanImprovementPct(with), perfmodel.GeomeanImprovementPct(without), fs.err()
}

// Table1 renders the experimental parameters (Table 1) from the live
// default configuration, so the table can never drift from the code.
func Table1() string {
	cfg := core.DefaultConfig()
	t := stats.NewTable("Parameter", "Value")
	add := func(k, v string) { t.AddRow(k, v) }
	add("Frequency", "4 GHz")
	add("L1 D-Cache", fmt.Sprintf("%dKB, %d way, %d cycles", cfg.L1D.SizeBytes>>10, cfg.L1D.Ways, cfg.L1D.Latency))
	add("L2 Unified Cache", fmt.Sprintf("%dKB, %d way, %d cycles", cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.Latency))
	add("L3 Unified Cache", fmt.Sprintf("%dMB, %d way, %d cycles", cfg.L3.SizeBytes>>20, cfg.L3.Ways, cfg.L3.Latency))
	l1s, l1l := tlb.L1Small(), tlb.L1Large()
	add("L1 TLB (4KB)", fmt.Sprintf("%d entries, %d way, %d cycle miss penalty", l1s.Entries, l1s.Ways, cfg.L1MissPenalty))
	add("L1 TLB (2MB)", fmt.Sprintf("%d entries, %d way, %d cycle miss penalty", l1l.Entries, l1l.Ways, cfg.L1MissPenalty))
	add("L2 Unified TLB", fmt.Sprintf("%d entries, %d way, %d cycle miss penalty", cfg.L2TLB.Entries, cfg.L2TLB.Ways, cfg.L2MissPenalty))
	add("PSC PML4", fmt.Sprintf("%d entries, %d cycle", cfg.Walker.PML4Entries, cfg.Walker.PSCLatency))
	add("PSC PDP", fmt.Sprintf("%d entries, %d cycle", cfg.Walker.PDPEntries, cfg.Walker.PSCLatency))
	add("PSC PDE", fmt.Sprintf("%d entries, %d cycle", cfg.Walker.PDEEntries, cfg.Walker.PSCLatency))
	add("Die-Stacked DRAM", fmt.Sprintf("%d MHz bus, %d-bit, %dB rows, %d-%d-%d",
		cfg.POM.DRAM.BusMHz, cfg.POM.DRAM.BusBytes*8, cfg.POM.DRAM.RowBytes,
		cfg.POM.DRAM.TCAS, cfg.POM.DRAM.TRCD, cfg.POM.DRAM.TRP))
	add("DDR", fmt.Sprintf("%s, %d MHz bus, %d-bit, %dB rows, %d-%d-%d",
		cfg.DDR.Name, cfg.DDR.BusMHz, cfg.DDR.BusBytes*8, cfg.DDR.RowBytes,
		cfg.DDR.TCAS, cfg.DDR.TRCD, cfg.DDR.TRP))
	add("POM-TLB", fmt.Sprintf("%dMB total, %d-way, split %0.f/%.0f%%",
		cfg.POM.SizeBytes>>20, cfg.POM.Ways, 100*cfg.POM.SmallFraction, 100*(1-cfg.POM.SmallFraction)))
	return t.String()
}

// Table2 renders the workload characteristics table.
func Table2() string {
	t := stats.NewTable("Benchmark", "OvhNat%", "OvhVirt%", "Cyc/missNat", "Cyc/missVirt", "Large%", "Pattern", "Footprint")
	for _, p := range workloads.All() {
		t.AddRow(p.Name,
			fmt.Sprintf("%.2f", p.OverheadNativePct),
			fmt.Sprintf("%.2f", p.OverheadVirtPct),
			fmt.Sprintf("%.0f", p.CyclesPerMissNative),
			fmt.Sprintf("%.0f", p.CyclesPerMissVirt),
			fmt.Sprintf("%.1f", p.LargePagePct),
			p.Pattern.String(),
			fmt.Sprintf("%dMB", p.FootprintBytes>>20))
	}
	return t.String()
}

// pomConfigForDoc exposes the default POM geometry for documentation.
func pomConfigForDoc() pomtlb.Config { return pomtlb.DefaultConfig() }

// RenderBars renders a one-column bar chart used by cmd/experiments.
func RenderBars(title string, names []string, values []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	for i, n := range names {
		fmt.Fprintf(&b, "  %-14s %8.2f%s |%s\n", n, values[i], unit, stats.Bar(values[i], max, 40))
	}
	return b.String()
}
