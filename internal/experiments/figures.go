package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/pomtlb"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/workloads"
)

// Fig2Row is one bar of Figure 2: average translation cycles per L2 TLB
// miss on the virtualized platform — the paper's measured value alongside
// our simulated baseline.
type Fig2Row struct {
	Name      string
	PaperCyc  float64 // Table 2 "Average Cycles-per-L2TLB-miss Virtual"
	SimCyc    float64 // simulated baseline P_avg
	MissRatio float64 // simulated L2 TLB miss ratio, for context
}

// Figure2 regenerates Figure 2.
func Figure2(r *Runner) ([]Fig2Row, error) {
	if err := r.Prefetch(r.names(), []core.Mode{core.Baseline}); err != nil {
		return nil, err
	}
	var rows []Fig2Row
	for _, p := range r.workloads() {
		res, err := r.Result(p.Name, core.Baseline)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig2Row{
			Name:      p.Name,
			PaperCyc:  p.CyclesPerMissVirt,
			SimCyc:    res.AvgPenalty(),
			MissRatio: res.L2TLB.MissRatio(),
		})
	}
	return rows, nil
}

// Fig3Row is one bar of Figure 3: the ratio of virtualized to native
// translation cost.
type Fig3Row struct {
	Name       string
	PaperRatio float64 // Table 2 column ratio
	SimRatio   float64 // simulated baseline virt / native P_avg
}

// Figure3 regenerates Figure 3. It needs a second, native campaign, which
// it derives from the runner's options.
func Figure3(r *Runner) ([]Fig3Row, error) {
	nativeOpts := r.Options()
	nativeOpts.Virtualized = false
	nr := NewRunner(nativeOpts)
	if err := r.Prefetch(r.names(), []core.Mode{core.Baseline}); err != nil {
		return nil, err
	}
	if err := nr.Prefetch(r.names(), []core.Mode{core.Baseline}); err != nil {
		return nil, err
	}
	var rows []Fig3Row
	for _, p := range r.workloads() {
		virt, err := r.Result(p.Name, core.Baseline)
		if err != nil {
			return nil, err
		}
		nat, err := nr.Result(p.Name, core.Baseline)
		if err != nil {
			return nil, err
		}
		row := Fig3Row{Name: p.Name, PaperRatio: p.VirtOverNativeRatio()}
		if nat.AvgPenalty() > 0 {
			row.SimRatio = virt.AvgPenalty() / nat.AvgPenalty()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure4 regenerates Figure 4: normalized SRAM access latency vs
// capacity (no simulation needed — the analytic CACTI model).
func Figure4() []cacti.Point {
	return cacti.Default().Sweep()
}

// Fig8Row is one workload of Figure 8: performance improvement (%) of
// each scheme over the measured baseline, via the linear model.
type Fig8Row struct {
	Name    string
	POM     float64
	Shared  float64
	TSB     float64
	POMPen  float64 // simulated penalties, for the report
	ShPen   float64
	TSBPen  float64
	BasePen float64 // Table 2 baseline penalty
}

// Figure8 regenerates Figure 8 (the headline result).
func Figure8(r *Runner) ([]Fig8Row, Fig8Summary, error) {
	modes := []core.Mode{core.POMTLB, core.SharedL2, core.TSB}
	if err := r.Prefetch(r.names(), modes); err != nil {
		return nil, Fig8Summary{}, err
	}
	var rows []Fig8Row
	var pomS, shS, tsbS []float64
	for _, p := range r.workloads() {
		row := Fig8Row{Name: p.Name, BasePen: p.CyclesPerMissVirt}
		type slot struct {
			mode core.Mode
			imp  *float64
			pen  *float64
			sp   *[]float64
		}
		for _, sl := range []slot{
			{core.POMTLB, &row.POM, &row.POMPen, &pomS},
			{core.SharedL2, &row.Shared, &row.ShPen, &shS},
			{core.TSB, &row.TSB, &row.TSBPen, &tsbS},
		} {
			res, err := r.Result(p.Name, sl.mode)
			if err != nil {
				return nil, Fig8Summary{}, err
			}
			*sl.pen = res.AvgPenalty()
			// The scheme cannot be worse than running every miss at the
			// measured baseline cost: cap penalties at P_base so a
			// simulated penalty above the measured one (possible when our
			// synthetic substrate is harsher than the real machine) reads
			// as "no gain", matching how the paper reports Figure 8.
			pen := *sl.pen
			if pen > p.CyclesPerMissVirt {
				pen = p.CyclesPerMissVirt
			}
			imp, err := perfmodel.ImprovementPct(perfmodel.FromProfile(p, pen))
			if err != nil {
				return nil, Fig8Summary{}, err
			}
			*sl.imp = imp
			*sl.sp = append(*sl.sp, 1+imp/100)
		}
		rows = append(rows, row)
	}
	sum := Fig8Summary{
		POMGeomeanPct:    perfmodel.GeomeanImprovementPct(pomS),
		SharedGeomeanPct: perfmodel.GeomeanImprovementPct(shS),
		TSBGeomeanPct:    perfmodel.GeomeanImprovementPct(tsbS),
	}
	return rows, sum, nil
}

// Fig8Summary carries Figure 8's averages (paper: POM 9.57%, Shared_L2
// 6.10%, TSB 4.27%).
type Fig8Summary struct {
	POMGeomeanPct    float64
	SharedGeomeanPct float64
	TSBGeomeanPct    float64
}

// Fig9Row is one workload of Figure 9: hit ratio at each level where
// POM-TLB entries are found.
type Fig9Row struct {
	Name   string
	L2D    float64 // TLB-entry probes hitting the L2 data cache
	L3D    float64 // ... the shared L3
	POM    float64 // ... the die-stacked DRAM TLB
	WalkEl float64 // fraction of L2 TLB misses resolved without a walk
}

// Figure9 regenerates Figure 9.
func Figure9(r *Runner) ([]Fig9Row, error) {
	if err := r.Prefetch(r.names(), []core.Mode{core.POMTLB}); err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, p := range r.workloads() {
		res, err := r.Result(p.Name, core.POMTLB)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			Name:   p.Name,
			L2D:    res.L2DProbe.Ratio(),
			L3D:    res.L3DProbe.Ratio(),
			POM:    res.POMDRAM.Ratio(),
			WalkEl: res.WalkEliminationRate(),
		})
	}
	return rows, nil
}

// Fig10Row is one workload of Figure 10: predictor accuracies.
type Fig10Row struct {
	Name      string
	SizeAcc   float64
	BypassAcc float64
	SizeTotal uint64
	BypassTot uint64
}

// Figure10 regenerates Figure 10.
func Figure10(r *Runner) ([]Fig10Row, error) {
	if err := r.Prefetch(r.names(), []core.Mode{core.POMTLB}); err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, p := range r.workloads() {
		res, err := r.Result(p.Name, core.POMTLB)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Name:      p.Name,
			SizeAcc:   res.SizePred.Ratio(),
			BypassAcc: res.BypassPred.Ratio(),
			SizeTotal: res.SizePred.Total(),
			BypassTot: res.BypassPred.Total(),
		})
	}
	return rows, nil
}

// Fig11Row is one workload of Figure 11: POM-TLB row-buffer hit rate.
type Fig11Row struct {
	Name     string
	RBH      float64
	Accesses uint64
}

// Figure11 regenerates Figure 11.
func Figure11(r *Runner) ([]Fig11Row, error) {
	if err := r.Prefetch(r.names(), []core.Mode{core.POMTLB}); err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for _, p := range r.workloads() {
		res, err := r.Result(p.Name, core.POMTLB)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Name:     p.Name,
			RBH:      res.POMDRAMStats.RowBufferHitRate(),
			Accesses: res.POMDRAMStats.Accesses,
		})
	}
	return rows, nil
}

// Fig12Row is one workload of Figure 12: improvement with and without
// caching TLB entries in the data caches.
type Fig12Row struct {
	Name      string
	WithCache float64 // improvement %, POM-TLB with data caching
	NoCache   float64 // improvement %, POM-TLB without
}

// Figure12 regenerates Figure 12.
func Figure12(r *Runner) ([]Fig12Row, float64, float64, error) {
	modes := []core.Mode{core.POMTLB, core.POMTLBNoCache}
	if err := r.Prefetch(r.names(), modes); err != nil {
		return nil, 0, 0, err
	}
	var rows []Fig12Row
	var with, without []float64
	for _, p := range r.workloads() {
		row := Fig12Row{Name: p.Name}
		for _, m := range modes {
			res, err := r.Result(p.Name, m)
			if err != nil {
				return nil, 0, 0, err
			}
			pen := res.AvgPenalty()
			if pen > p.CyclesPerMissVirt {
				pen = p.CyclesPerMissVirt
			}
			imp, err := perfmodel.ImprovementPct(perfmodel.FromProfile(p, pen))
			if err != nil {
				return nil, 0, 0, err
			}
			if m == core.POMTLB {
				row.WithCache = imp
				with = append(with, 1+imp/100)
			} else {
				row.NoCache = imp
				without = append(without, 1+imp/100)
			}
		}
		rows = append(rows, row)
	}
	return rows, perfmodel.GeomeanImprovementPct(with), perfmodel.GeomeanImprovementPct(without), nil
}

// Table1 renders the experimental parameters (Table 1) from the live
// default configuration, so the table can never drift from the code.
func Table1() string {
	cfg := core.DefaultConfig()
	t := stats.NewTable("Parameter", "Value")
	add := func(k, v string) { t.AddRow(k, v) }
	add("Frequency", "4 GHz")
	add("L1 D-Cache", fmt.Sprintf("%dKB, %d way, %d cycles", cfg.L1D.SizeBytes>>10, cfg.L1D.Ways, cfg.L1D.Latency))
	add("L2 Unified Cache", fmt.Sprintf("%dKB, %d way, %d cycles", cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.Latency))
	add("L3 Unified Cache", fmt.Sprintf("%dMB, %d way, %d cycles", cfg.L3.SizeBytes>>20, cfg.L3.Ways, cfg.L3.Latency))
	l1s, l1l := tlb.L1Small(), tlb.L1Large()
	add("L1 TLB (4KB)", fmt.Sprintf("%d entries, %d way, %d cycle miss penalty", l1s.Entries, l1s.Ways, cfg.L1MissPenalty))
	add("L1 TLB (2MB)", fmt.Sprintf("%d entries, %d way, %d cycle miss penalty", l1l.Entries, l1l.Ways, cfg.L1MissPenalty))
	add("L2 Unified TLB", fmt.Sprintf("%d entries, %d way, %d cycle miss penalty", cfg.L2TLB.Entries, cfg.L2TLB.Ways, cfg.L2MissPenalty))
	add("PSC PML4", fmt.Sprintf("%d entries, %d cycle", cfg.Walker.PML4Entries, cfg.Walker.PSCLatency))
	add("PSC PDP", fmt.Sprintf("%d entries, %d cycle", cfg.Walker.PDPEntries, cfg.Walker.PSCLatency))
	add("PSC PDE", fmt.Sprintf("%d entries, %d cycle", cfg.Walker.PDEEntries, cfg.Walker.PSCLatency))
	add("Die-Stacked DRAM", fmt.Sprintf("%d MHz bus, %d-bit, %dB rows, %d-%d-%d",
		cfg.POM.DRAM.BusMHz, cfg.POM.DRAM.BusBytes*8, cfg.POM.DRAM.RowBytes,
		cfg.POM.DRAM.TCAS, cfg.POM.DRAM.TRCD, cfg.POM.DRAM.TRP))
	add("DDR", fmt.Sprintf("%s, %d MHz bus, %d-bit, %dB rows, %d-%d-%d",
		cfg.DDR.Name, cfg.DDR.BusMHz, cfg.DDR.BusBytes*8, cfg.DDR.RowBytes,
		cfg.DDR.TCAS, cfg.DDR.TRCD, cfg.DDR.TRP))
	add("POM-TLB", fmt.Sprintf("%dMB total, %d-way, split %0.f/%.0f%%",
		cfg.POM.SizeBytes>>20, cfg.POM.Ways, 100*cfg.POM.SmallFraction, 100*(1-cfg.POM.SmallFraction)))
	return t.String()
}

// Table2 renders the workload characteristics table.
func Table2() string {
	t := stats.NewTable("Benchmark", "OvhNat%", "OvhVirt%", "Cyc/missNat", "Cyc/missVirt", "Large%", "Pattern", "Footprint")
	for _, p := range workloads.All() {
		t.AddRow(p.Name,
			fmt.Sprintf("%.2f", p.OverheadNativePct),
			fmt.Sprintf("%.2f", p.OverheadVirtPct),
			fmt.Sprintf("%.0f", p.CyclesPerMissNative),
			fmt.Sprintf("%.0f", p.CyclesPerMissVirt),
			fmt.Sprintf("%.1f", p.LargePagePct),
			p.Pattern.String(),
			fmt.Sprintf("%dMB", p.FootprintBytes>>20))
	}
	return t.String()
}

// pomConfigForDoc exposes the default POM geometry for documentation.
func pomConfigForDoc() pomtlb.Config { return pomtlb.DefaultConfig() }

// RenderBars renders a one-column bar chart used by cmd/experiments.
func RenderBars(title string, names []string, values []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	for i, n := range names {
		fmt.Fprintf(&b, "  %-14s %8.2f%s |%s\n", n, values[i], unit, stats.Bar(values[i], max, 40))
	}
	return b.String()
}
