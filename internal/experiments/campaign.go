package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/resilience"
)

// WorkloadError is one failed (workload, scheme) cell of a campaign: the
// structured per-job error the resilience layer produces when a worker
// panics, times out, is cancelled, or hits a simulation error. The rest
// of the campaign keeps running; the figure and report layers skip the
// failed cells and surface the failures alongside the partial results.
type WorkloadError struct {
	Workload string
	Mode     core.Mode
	// Variant is the geometry label of a design-space sweep cell
	// ("pom-mb=4|pom-ways=2"); empty for plain figure-campaign cells.
	Variant string
	Err     error
}

// Error implements error.
func (e *WorkloadError) Error() string {
	if e.Variant != "" {
		return fmt.Sprintf("workload %s/%s[%s]: %v", e.Workload, e.Mode, e.Variant, e.Err)
	}
	return fmt.Sprintf("workload %s/%s: %v", e.Workload, e.Mode, e.Err)
}

// Unwrap exposes the cause to errors.Is/As (including *resilience.PanicError
// for recovered worker panics and context errors for cancellations).
func (e *WorkloadError) Unwrap() error { return e.Err }

// asWorkloadError normalizes an error from a campaign cell: errors that
// already carry their (workload, scheme) identity pass through; anything
// else is tagged with the cell it came from.
func asWorkloadError(err error, name string, mode core.Mode) *WorkloadError {
	var we *WorkloadError
	if errors.As(err, &we) {
		return we
	}
	return &WorkloadError{Workload: name, Mode: mode, Err: err}
}

// CampaignError aggregates every failed cell of a degraded campaign. A
// campaign entry point that returns partial results pairs them with a
// *CampaignError so callers can render what completed and report exactly
// which (scheme, workload) cells are missing.
type CampaignError struct {
	Failures []*WorkloadError
}

// Error implements error with a one-line-per-cell summary.
func (e *CampaignError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign degraded: %d cell(s) failed", len(e.Failures))
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "\n  %s/%s: %v", f.Workload, f.Mode, f.Err)
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is/As.
func (e *CampaignError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// Verbose renders the report with recovered panic stacks included.
func (e *CampaignError) Verbose() string {
	var b strings.Builder
	b.WriteString(e.Error())
	for _, f := range e.Failures {
		var pe *resilience.PanicError
		if errors.As(f.Err, &pe) {
			fmt.Fprintf(&b, "\n--- stack for %s/%s ---\n%s", f.Workload, f.Mode, pe.Stack)
		}
	}
	return b.String()
}

// failureSet collects per-cell failures during figure extraction.
type failureSet struct {
	fails []*WorkloadError
	seen  map[string]bool
}

func (f *failureSet) record(err error, name string, mode core.Mode) {
	we := asWorkloadError(err, name, mode)
	key := we.Workload + "|" + we.Mode.String()
	if f.seen == nil {
		f.seen = map[string]bool{}
	}
	if f.seen[key] {
		return
	}
	f.seen[key] = true
	f.fails = append(f.fails, we)
}

// absorb folds another campaign stage's error into the set, so a report
// that runs many figures returns one combined *CampaignError.
func (f *failureSet) absorb(err error) {
	if err == nil {
		return
	}
	var ce *CampaignError
	if errors.As(err, &ce) {
		for _, we := range ce.Failures {
			f.record(we, we.Workload, we.Mode)
		}
		return
	}
	f.record(err, "(campaign)", "")
}

// err returns nil for a clean campaign, else a deterministic-order
// *CampaignError.
func (f *failureSet) err() error { return campaignError(f.fails) }

// campaignError wraps failures into a *CampaignError (nil when empty),
// sorted by (workload, mode) so degraded campaigns report reproducibly
// regardless of goroutine scheduling.
func campaignError(fails []*WorkloadError) error {
	if len(fails) == 0 {
		return nil
	}
	sort.Slice(fails, func(i, j int) bool {
		if fails[i].Workload != fails[j].Workload {
			return fails[i].Workload < fails[j].Workload
		}
		return fails[i].Mode < fails[j].Mode
	})
	return &CampaignError{Failures: fails}
}
