package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/resilience"
)

// Fingerprint identifies the simulation-relevant options of a campaign.
// A checkpoint written under one fingerprint refuses to resume under
// another: mixing cells from different machine configurations would
// silently corrupt every figure. The workload subset, parallelism,
// timeout, checkpoint and fault-injection settings are deliberately
// excluded — they change which cells run, not what any cell computes.
func Fingerprint(o Options) string {
	key := struct {
		Cores             int
		VMs               int
		WarmupRefs        int
		MaxRefs           int
		Seed              uint64
		POMSizeBytes      uint64
		POMWays           int
		DisableBypass     bool
		Virtualized       bool
		CachePriority     cache.Priority
		NeighborPrefetch  bool
		UncalibratedWalks bool
		Tenants           int
		ChurnEvery        int
		Phases            int
	}{
		o.Cores, o.VMs, o.WarmupRefs, o.MaxRefs, o.Seed, o.POMSizeBytes,
		o.POMWays, o.DisableBypass, o.Virtualized, o.CachePriority,
		o.NeighborPrefetch, o.UncalibratedWalks,
		o.Tenants, o.ChurnEvery, o.Phases,
	}
	b, err := json.Marshal(key)
	if err != nil { // a struct of scalars cannot fail to marshal
		panic(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// checkpointPayload is the on-disk JSON schema.
type checkpointPayload struct {
	Version     int                    `json:"version"`
	Fingerprint string                 `json:"fingerprint"`
	Cells       map[string]core.Result `json:"cells"`
}

// Checkpoint journals completed (workload, scheme) results to a JSON
// file after each run, so an interrupted or partially-failed campaign
// resumes from its last completed cell instead of from zero. All methods
// are safe for concurrent use by the runner's workers; a nil *Checkpoint
// is inert.
type Checkpoint struct {
	path string
	mu   sync.Mutex
	data checkpointPayload
}

// cellKey names one (workload, scheme) cell.
func cellKey(name string, mode core.Mode) string { return name + "|" + mode.String() }

// LoadCheckpoint opens (or initializes) the journal at path for a
// campaign with the given options fingerprint. A missing file yields an
// empty checkpoint; an existing file written under a different
// fingerprint is an error.
func LoadCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	c := &Checkpoint{
		path: path,
		data: checkpointPayload{Version: 1, Fingerprint: fingerprint, Cells: map[string]core.Result{}},
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if looksLikeSweepJournal(raw) {
		return nil, fmt.Errorf("checkpoint %s is an append-only sweep journal, not a campaign checkpoint; resume it with -sweep and the original grid", path)
	}
	var p checkpointPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("checkpoint %s: corrupt journal: %w", path, err)
	}
	if p.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint %s was written by a campaign with different options; delete it or match the original flags", path)
	}
	if p.Cells == nil {
		p.Cells = map[string]core.Result{}
	}
	c.data = p
	return c, nil
}

// Path returns the journal's file path.
func (c *Checkpoint) Path() string {
	if c == nil {
		return ""
	}
	return c.path
}

// Get returns the journaled result for a cell, if present.
func (c *Checkpoint) Get(name string, mode core.Mode) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.data.Cells[cellKey(name, mode)]
	return res, ok
}

// Len returns the number of journaled cells.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data.Cells)
}

// Keys returns the journaled cell keys ("workload|scheme"), sorted.
func (c *Checkpoint) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.data.Cells))
	for k := range c.data.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Put journals one completed cell and persists the file atomically
// (write-temp-then-rename), retrying transient filesystem errors with
// backoff so a momentarily unavailable disk does not fail a finished
// simulation.
func (c *Checkpoint) Put(name string, mode core.Mode, res core.Result) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Cells[cellKey(name, mode)] = res
	raw, err := json.MarshalIndent(c.data, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	policy := resilience.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Jitter: 0.5, Seed: 1}
	return resilience.Retry(context.Background(), policy, func(context.Context) error {
		tmp := c.path + ".tmp"
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, c.path)
	})
}

// ---------------------------------------------------------------------------
// Append-only sweep journal
//
// The campaign Checkpoint above rewrites one JSON document per completed
// cell — fine for a 45-cell figure grid, pathological for a 10,000-cell
// design-space sweep (O(n²) bytes rewritten, and a SIGKILL during the
// rename window can lose the newest cell). The SweepJournal instead
// appends one fsynced, hash-guarded record per cell:
//
//	<64-hex sha256 of payload> <payload JSON>\n
//
// The first record is a header carrying the sweep fingerprint (options +
// grid geometry); every later record is either a completed cell with its
// full Result or a quarantined cell with its captured error and stack. A
// record is only trusted if its hash verifies, so a torn trailing write —
// the fingerprint of a SIGKILL mid-append — is skipped and reported
// instead of poisoning the resume, and the sweep re-runs exactly that
// cell. Corruption anywhere *before* the tail cannot be explained by a
// crash and fails the load.

// SweepFingerprint identifies a sweep: the simulation-relevant campaign
// options plus the canonical grid spec. A journal written under one grid
// refuses to resume under another — cells are indexed by grid coordinates,
// and mixing geometries would silently misattribute results.
func SweepFingerprint(o Options, grid string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s", Fingerprint(o), grid)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// QuarantineInfo is the captured failure of a quarantined sweep cell.
type QuarantineInfo struct {
	// Attempts is how many times the cell ran before being quarantined.
	Attempts int `json:"attempts"`
	// Error is the final error's message.
	Error string `json:"error"`
	// Stack is the recovered panic stack, when the failure was a panic.
	Stack string `json:"stack,omitempty"`
	// BudgetExhausted marks a cell that was quarantined early because the
	// sweep's global retry budget ran dry.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
}

// sweepRecord is the on-disk payload of one journal line.
type sweepRecord struct {
	Kind        string          `json:"kind"` // "header", "done", "quarantined"
	Version     int             `json:"version,omitempty"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Key         string          `json:"key,omitempty"`
	Result      *core.Result    `json:"result,omitempty"`
	Quarantine  *QuarantineInfo `json:"quarantine,omitempty"`
}

// SweepJournal is the crash-safe cell journal of a design-space sweep.
// All methods are safe for concurrent use by the sweep engine's workers;
// a nil *SweepJournal is inert (sweeps without -checkpoint).
type SweepJournal struct {
	path string

	mu          sync.Mutex
	f           *os.File
	done        map[string]core.Result
	quarantined map[string]QuarantineInfo
	truncated   int
}

// looksLikeSweepJournal reports whether raw begins with a hash-prefixed
// journal line rather than a legacy JSON checkpoint document.
func looksLikeSweepJournal(raw []byte) bool {
	if len(raw) < 66 {
		return false
	}
	for _, c := range raw[:64] {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return raw[64] == ' '
}

// sweepLine renders one hash-guarded journal line for a payload.
func sweepLine(rec sweepRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, 64+1+len(payload)+1)
	line = append(line, fmt.Sprintf("%x", sha256.Sum256(payload))...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseSweepLine verifies and decodes one journal line.
func parseSweepLine(line []byte) (sweepRecord, error) {
	var rec sweepRecord
	if len(line) < 66 || line[64] != ' ' {
		return rec, fmt.Errorf("short or unframed record")
	}
	payload := line[65:]
	if sum := fmt.Sprintf("%x", sha256.Sum256(payload)); sum != string(line[:64]) {
		return rec, fmt.Errorf("integrity hash mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("corrupt payload: %w", err)
	}
	return rec, nil
}

// OpenSweepJournal opens (or creates) the append-only journal at path for
// a sweep with the given fingerprint. A missing file is initialized with
// a header record; an existing file is replayed record by record. A
// record whose integrity hash fails verification is tolerated only at the
// very end of the file — the torn tail of an interrupted append — and is
// counted in TruncatedRecords; a bad record anywhere earlier, or a header
// fingerprint that does not match, fails the open with a descriptive
// error. The caller owns the returned journal and must Close it.
func OpenSweepJournal(path, fingerprint string) (*SweepJournal, error) {
	j := &SweepJournal{
		path:        path,
		done:        map[string]core.Result{},
		quarantined: map[string]QuarantineInfo{},
	}
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh journal: create with a fsynced header record.
		return j, j.create(fingerprint)
	case err != nil:
		return nil, fmt.Errorf("sweep journal: %w", err)
	}
	if len(raw) > 0 && raw[0] == '{' {
		return nil, fmt.Errorf("sweep journal %s looks like a legacy campaign checkpoint (whole-file JSON); sweeps need their own journal file", path)
	}
	validLen, err := j.replay(raw, fingerprint)
	if err != nil {
		return nil, err
	}
	if j.f != nil {
		// replay recreated the file (torn header); it is already open.
		return j, nil
	}
	if validLen < int64(len(raw)) {
		// A torn tail was skipped. Truncate it away before appending:
		// otherwise the next record would be glued onto the partial line
		// and read back as mid-file corruption.
		if err := os.Truncate(path, validLen); err != nil {
			return nil, fmt.Errorf("sweep journal: dropping torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep journal: %w", err)
	}
	j.f = f
	return j, nil
}

// create initializes a fresh journal file with its header.
func (j *SweepJournal) create(fingerprint string) error {
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sweep journal: %w", err)
	}
	line, err := sweepLine(sweepRecord{Kind: "header", Version: 1, Fingerprint: fingerprint})
	if err == nil {
		_, err = f.Write(line)
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("sweep journal: %w", err)
	}
	j.f = f
	return nil
}

// journalLine is one physical line plus the file offset just past its
// terminator (or past its last byte for an unterminated tail), so the
// loader can truncate a torn tail away precisely.
type journalLine struct {
	data []byte
	end  int64
}

// splitJournalLines splits raw on newlines, keeping a trailing partial
// line (no terminator) so the torn-tail check sees it.
func splitJournalLines(raw []byte) []journalLine {
	var lines []journalLine
	var off int64
	for len(raw) > 0 {
		i := 0
		for i < len(raw) && raw[i] != '\n' {
			i++
		}
		end := off + int64(i)
		if i < len(raw) {
			end++ // include the terminator
		}
		if i > 0 {
			lines = append(lines, journalLine{data: raw[:i], end: end})
		}
		if i == len(raw) {
			break
		}
		raw = raw[i+1:]
		off = end
	}
	return lines
}

// replay loads an existing journal body, tolerating exactly one torn
// record at the tail. It returns the byte offset of the end of the last
// valid record, so the caller can truncate torn bytes before appending.
func (j *SweepJournal) replay(raw []byte, fingerprint string) (int64, error) {
	lines := splitJournalLines(raw)
	if len(lines) == 0 {
		// File exists but holds no complete record (torn header write):
		// treat as fresh and recreate it with a proper header.
		j.truncated++
		return 0, j.create(fingerprint)
	}
	var validLen int64
	for i, line := range lines {
		rec, err := parseSweepLine(line.data)
		if err != nil {
			if i == len(lines)-1 {
				// Torn tail: the record being appended when the process
				// died. The cell it described was never acknowledged, so
				// skipping it is exactly "resume with the missing cells".
				j.truncated++
				if i == 0 {
					// The torn record was the header itself; recreate the
					// journal so appends land after a valid header.
					return 0, j.create(fingerprint)
				}
				return validLen, nil
			}
			return 0, fmt.Errorf("sweep journal %s: record %d: %v (corruption before the tail cannot come from a torn append; refusing to resume)", j.path, i+1, err)
		}
		if i == 0 {
			if rec.Kind != "header" {
				return 0, fmt.Errorf("sweep journal %s: first record is %q, want header", j.path, rec.Kind)
			}
			if rec.Fingerprint != fingerprint {
				return 0, fmt.Errorf("sweep journal %s was written by a sweep with different options or grid geometry; delete it or rerun with the original flags", j.path)
			}
			validLen = line.end
			continue
		}
		switch rec.Kind {
		case "done":
			if rec.Result != nil {
				j.done[rec.Key] = *rec.Result
				delete(j.quarantined, rec.Key)
			}
		case "quarantined":
			if rec.Quarantine != nil {
				j.quarantined[rec.Key] = *rec.Quarantine
			}
		default:
			return 0, fmt.Errorf("sweep journal %s: record %d has unknown kind %q", j.path, i+1, rec.Kind)
		}
		validLen = line.end
	}
	return validLen, nil
}

// append writes one record to the journal and fsyncs it. Appends are not
// blindly retried: a failed write may have landed partial bytes, and a
// retry after that would stack a valid record on a torn one mid-file,
// which the loader correctly refuses.
func (j *SweepJournal) append(rec sweepRecord) error {
	line, err := sweepLine(rec)
	if err != nil {
		return fmt.Errorf("sweep journal: %w", err)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("sweep journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep journal: %w", err)
	}
	return nil
}

// PutDone journals one completed cell.
func (j *SweepJournal) PutDone(key string, res core.Result) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(sweepRecord{Kind: "done", Key: key, Result: &res}); err != nil {
		return err
	}
	j.done[key] = res
	delete(j.quarantined, key)
	return nil
}

// PutQuarantined journals one quarantined cell with its captured failure.
func (j *SweepJournal) PutQuarantined(key string, q QuarantineInfo) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(sweepRecord{Kind: "quarantined", Key: key, Quarantine: &q}); err != nil {
		return err
	}
	j.quarantined[key] = q
	return nil
}

// Done returns the journaled result for a completed cell, if present.
func (j *SweepJournal) Done(key string) (core.Result, bool) {
	if j == nil {
		return core.Result{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.done[key]
	return res, ok
}

// Quarantined returns the journaled quarantine record for a cell.
func (j *SweepJournal) Quarantined(key string) (QuarantineInfo, bool) {
	if j == nil {
		return QuarantineInfo{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	q, ok := j.quarantined[key]
	return q, ok
}

// Len returns the number of journaled cells (completed + quarantined).
func (j *SweepJournal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done) + len(j.quarantined)
}

// DoneLen returns the number of journaled completed cells.
func (j *SweepJournal) DoneLen() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// TruncatedRecords reports how many torn tail records were skipped when
// the journal was opened — 0 for a cleanly closed journal, 1 after a
// SIGKILL mid-append.
func (j *SweepJournal) TruncatedRecords() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.truncated
}

// Path returns the journal's file path.
func (j *SweepJournal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close releases the journal's file handle. Records already appended are
// durable regardless — each one was fsynced.
func (j *SweepJournal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.f.Close()
	j.f = nil
	return err
}
