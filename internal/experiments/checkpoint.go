package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/resilience"
)

// Fingerprint identifies the simulation-relevant options of a campaign.
// A checkpoint written under one fingerprint refuses to resume under
// another: mixing cells from different machine configurations would
// silently corrupt every figure. The workload subset, parallelism,
// timeout, checkpoint and fault-injection settings are deliberately
// excluded — they change which cells run, not what any cell computes.
func Fingerprint(o Options) string {
	key := struct {
		Cores             int
		VMs               int
		WarmupRefs        int
		MaxRefs           int
		Seed              uint64
		POMSizeBytes      uint64
		POMWays           int
		DisableBypass     bool
		Virtualized       bool
		CachePriority     cache.Priority
		NeighborPrefetch  bool
		UncalibratedWalks bool
	}{
		o.Cores, o.VMs, o.WarmupRefs, o.MaxRefs, o.Seed, o.POMSizeBytes,
		o.POMWays, o.DisableBypass, o.Virtualized, o.CachePriority,
		o.NeighborPrefetch, o.UncalibratedWalks,
	}
	b, err := json.Marshal(key)
	if err != nil { // a struct of scalars cannot fail to marshal
		panic(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

// checkpointPayload is the on-disk JSON schema.
type checkpointPayload struct {
	Version     int                    `json:"version"`
	Fingerprint string                 `json:"fingerprint"`
	Cells       map[string]core.Result `json:"cells"`
}

// Checkpoint journals completed (workload, scheme) results to a JSON
// file after each run, so an interrupted or partially-failed campaign
// resumes from its last completed cell instead of from zero. All methods
// are safe for concurrent use by the runner's workers; a nil *Checkpoint
// is inert.
type Checkpoint struct {
	path string
	mu   sync.Mutex
	data checkpointPayload
}

// cellKey names one (workload, scheme) cell.
func cellKey(name string, mode core.Mode) string { return name + "|" + mode.String() }

// LoadCheckpoint opens (or initializes) the journal at path for a
// campaign with the given options fingerprint. A missing file yields an
// empty checkpoint; an existing file written under a different
// fingerprint is an error.
func LoadCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	c := &Checkpoint{
		path: path,
		data: checkpointPayload{Version: 1, Fingerprint: fingerprint, Cells: map[string]core.Result{}},
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var p checkpointPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("checkpoint %s: corrupt journal: %w", path, err)
	}
	if p.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint %s was written by a campaign with different options; delete it or match the original flags", path)
	}
	if p.Cells == nil {
		p.Cells = map[string]core.Result{}
	}
	c.data = p
	return c, nil
}

// Path returns the journal's file path.
func (c *Checkpoint) Path() string {
	if c == nil {
		return ""
	}
	return c.path
}

// Get returns the journaled result for a cell, if present.
func (c *Checkpoint) Get(name string, mode core.Mode) (core.Result, bool) {
	if c == nil {
		return core.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.data.Cells[cellKey(name, mode)]
	return res, ok
}

// Len returns the number of journaled cells.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data.Cells)
}

// Keys returns the journaled cell keys ("workload|scheme"), sorted.
func (c *Checkpoint) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.data.Cells))
	for k := range c.data.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Put journals one completed cell and persists the file atomically
// (write-temp-then-rename), retrying transient filesystem errors with
// backoff so a momentarily unavailable disk does not fail a finished
// simulation.
func (c *Checkpoint) Put(name string, mode core.Mode, res core.Result) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Cells[cellKey(name, mode)] = res
	raw, err := json.MarshalIndent(c.data, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	policy := resilience.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Jitter: 0.5, Seed: 1}
	return resilience.Retry(context.Background(), policy, func(context.Context) error {
		tmp := c.path + ".tmp"
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, c.path)
	})
}
