package experiments

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
)

// quick returns a fast campaign over a 3-workload subset that spans the
// locality spectrum: streaming, uniform-random and pointer-chase.
func quick() Options {
	o := QuickOptions()
	o.Workloads = []string{"streamcluster", "gups", "mcf"}
	return o
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(quick())
	a, err := r.Result(context.Background(), "gups", core.POMTLB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Result(context.Background(), "gups", core.POMTLB)
	if err != nil {
		t.Fatal(err)
	}
	if a.PenaltyCycles != b.PenaltyCycles || a.Cycles != b.Cycles {
		t.Error("memoized result differs")
	}
}

func TestRunnerUnknownWorkload(t *testing.T) {
	r := NewRunner(quick())
	if _, err := r.Result(context.Background(), "nope", core.POMTLB); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestFigure8Shape(t *testing.T) {
	r := NewRunner(quick())
	rows, sum, err := Figure8(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig8Row{}
	for _, row := range rows {
		byName[row.Name] = row
		if row.POM < 0 || row.POM > 25 {
			t.Errorf("%s: POM improvement %.2f%% out of plausible range", row.Name, row.POM)
		}
	}
	// streamcluster has ~no headroom (paper: ~1%).
	if sc := byName["streamcluster"]; sc.POM > 3 {
		t.Errorf("streamcluster improvement = %.2f%%, paper says ≈ 1%%", sc.POM)
	}
	// gups: POM-TLB ≫ TSB (paper: 16% vs 1.8%).
	if g := byName["gups"]; g.POM <= g.TSB {
		t.Errorf("gups: POM (%.2f%%) should beat TSB (%.2f%%)", g.POM, g.TSB)
	}
	// Averages ordered as in the paper: POM > TSB; POM positive.
	if sum.POMGeomeanPct <= 0 {
		t.Errorf("POM average improvement = %.2f%%", sum.POMGeomeanPct)
	}
	if sum.POMGeomeanPct <= sum.TSBGeomeanPct {
		t.Errorf("POM (%.2f%%) should beat TSB (%.2f%%) on average",
			sum.POMGeomeanPct, sum.TSBGeomeanPct)
	}
}

func TestFigure9And10And11(t *testing.T) {
	r := NewRunner(quick())
	f9, err := Figure9(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f9 {
		if row.WalkEl < 0.8 {
			t.Errorf("%s: walk elimination %.2f too low for a 16MB POM-TLB", row.Name, row.WalkEl)
		}
		for _, v := range []float64{row.L2D, row.L3D, row.POM} {
			if v < 0 || v > 1 {
				t.Errorf("%s: ratio %f out of range", row.Name, v)
			}
		}
	}
	f10, err := Figure10(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f10 {
		if row.SizeTotal == 0 {
			t.Errorf("%s: size predictor never scored", row.Name)
		}
		if row.SizeAcc < 0.5 {
			t.Errorf("%s: size accuracy %.2f — paper reports ≈ 95%% average", row.Name, row.SizeAcc)
		}
	}
	f11, err := Figure11(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f11 {
		if row.RBH < 0 || row.RBH > 1 {
			t.Errorf("%s: RBH %f out of range", row.Name, row.RBH)
		}
	}
}

func TestFigure12CachingHelps(t *testing.T) {
	r := NewRunner(quick())
	rows, withAvg, noAvg, err := Figure12(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if withAvg < noAvg {
		t.Errorf("caching should help on average: %.2f%% vs %.2f%%", withAvg, noAvg)
	}
}

func TestFigure2And3(t *testing.T) {
	r := NewRunner(quick())
	f2, err := Figure2(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f2 {
		if row.SimCyc <= 0 {
			t.Errorf("%s: simulated baseline penalty %f", row.Name, row.SimCyc)
		}
	}
	f3, err := Figure3(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f3 {
		if row.SimRatio < 1 {
			t.Errorf("%s: virtualized should not be cheaper than native (ratio %.2f)",
				row.Name, row.SimRatio)
		}
	}
}

func TestFigure4(t *testing.T) {
	pts := Figure4()
	if len(pts) == 0 || pts[0].Normalized != 1 {
		t.Error("Figure 4 sweep malformed")
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"L2 Unified TLB", "1536", "POM-TLB", "Die-Stacked"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2()
	for _, want := range []string{"mcf", "1158", "streamcluster"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestAblationCapacityInsensitive(t *testing.T) {
	o := quick()
	o.Workloads = nil // sweep uses its own subset
	pts, err := AblationCapacity(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// §4.6: capacity barely matters at these footprints.
	spread := pts[2].MeanImprovementPct - pts[0].MeanImprovementPct
	if spread < -2 || spread > 4 {
		t.Errorf("capacity sweep spread = %.2f%%, paper says <1%%", spread)
	}
	for _, p := range pts {
		if p.WalkElimination < 0.8 {
			t.Errorf("%s: elimination %.2f", p.Label, p.WalkElimination)
		}
	}
}

func TestAblationAssociativity(t *testing.T) {
	pts, err := AblationAssociativity(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Direct-mapped should eliminate fewer walks than 4-way (conflicts).
	if pts[0].WalkElimination > pts[2].WalkElimination {
		t.Errorf("1-way elimination %.3f should not beat 4-way %.3f",
			pts[0].WalkElimination, pts[2].WalkElimination)
	}
}

func TestMultiVMStudy(t *testing.T) {
	pts, err := MultiVMStudy(context.Background(), quick(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.WalkElimination < 0.8 {
			t.Errorf("%s: elimination %.2f — POM-TLB should retain both VMs", p.Label, p.WalkElimination)
		}
	}
}

func TestReportQuick(t *testing.T) {
	var sb strings.Builder
	if err := Report(&sb, quick(), false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11", "Figure 12", "Table 1", "Table 2",
		"POM-TLB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRenderBars(t *testing.T) {
	out := RenderBars("title", []string{"a", "b"}, []float64{1, 2}, "%")
	if !strings.Contains(out, "title") || !strings.Contains(out, "##") {
		t.Errorf("RenderBars output:\n%s", out)
	}
}

func TestAblationTLBAwareCaching(t *testing.T) {
	pts, err := AblationTLBAwareCaching(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.MeanPenalty <= 0 {
			t.Errorf("%s: penalty %f", p.Label, p.MeanPenalty)
		}
	}
}

func TestAblationNeighborPrefetch(t *testing.T) {
	pts, err := AblationNeighborPrefetch(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Prefetching the burst's neighbours should not hurt.
	if pts[1].MeanImprovementPct < pts[0].MeanImprovementPct-0.5 {
		t.Errorf("prefetch hurt: %f vs %f", pts[1].MeanImprovementPct, pts[0].MeanImprovementPct)
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(quick())
	paths, err := WriteCSVs(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 7 {
		t.Fatalf("wrote %d CSVs, want 7", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Errorf("%s has no data rows", p)
		}
	}
}

func TestTradeoffStudy(t *testing.T) {
	rows, err := TradeoffStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.CyclesBase == 0 || row.CyclesL4 == 0 || row.CyclesPOM == 0 {
			t.Errorf("%s: zero cycles %+v", row.Name, row)
		}
		// Both uses of the capacity should not make things dramatically
		// worse than the bare baseline.
		if row.L4SpeedupPct < -25 || row.POMSpeedupPct < -25 {
			t.Errorf("%s: implausible slowdowns %+v", row.Name, row)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	// Two independent runners over the same options must produce
	// identical figures, regardless of goroutine scheduling.
	o := quick()
	o.Workloads = []string{"gups"}
	a, _, err := Figure8(NewRunner(o))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Figure8(NewRunner(o))
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("campaign not deterministic:\n%+v\n%+v", a[0], b[0])
	}
}

func TestNativeStudy(t *testing.T) {
	rows, err := NativeStudy(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		if row.Penalty <= 0 || row.BasePen <= 0 {
			t.Errorf("%s: degenerate penalties %+v", row.Name, row)
		}
		if row.ImprovementPct < 0 {
			t.Errorf("%s: negative improvement %f", row.Name, row.ImprovementPct)
		}
	}
}
