package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/resilience/faultinject"
	"repro/internal/workloads"
)

// TestSweepSoakKillResumeByteIdentical is the acceptance soak: a
// 1,000+ cell sweep with randomly scheduled (but seeded, deterministic)
// panics and transient errors at the sweep-cell seam is interrupted
// mid-shard with a hard cancellation, its journal is torn the way a
// SIGKILL mid-append tears it, and the resumed sweep must produce a
// results CSV byte-identical to an uninterrupted run of the same seed —
// with every injected-panic cell quarantined and zero completed cells
// lost or re-simulated incorrectly.
func TestSweepSoakKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	base := experiments.Options{
		Cores:       1,
		VMs:         1,
		WarmupRefs:  400,
		MaxRefs:     250,
		Seed:        1,
		Virtualized: true,
	}
	spec, err := ParseSpec("schemes=pom-tlb,shared-l2:pom-mb=1,2:pom-ways=2,4:seeds=1,2,3,4,5,6,7,8,9")
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Cells(allWorkloads(t))
	if len(cells) < 1000 {
		t.Fatalf("soak grid has %d cells, want 1000+", len(cells))
	}

	const panicRate, flakyRate, chaosSeed = 0.03, 0.05, 1234
	plan := SeedChaos(faultinject.NewSchedule(), cells, panicRate, flakyRate, chaosSeed)
	if len(plan.Panicked) == 0 || len(plan.Flaky) == 0 {
		t.Fatalf("chaos plan degenerate: %d panicked, %d flaky", len(plan.Panicked), len(plan.Flaky))
	}
	budget := len(plan.Flaky) + 32
	newChaos := func() *faultinject.Schedule {
		s := faultinject.NewSchedule()
		SeedChaos(s, cells, panicRate, flakyRate, chaosSeed)
		return s
	}

	// Reference: one uninterrupted run.
	var csvA bytes.Buffer
	repA, err := Run(context.Background(), Config{
		Base: base, Spec: spec, Shards: 8, RetryBudget: budget,
		Faults: newChaos(), CSV: &csvA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := quarantineKeys(repA); !equalStrings(got, sortedCopy(plan.Panicked)) {
		t.Fatalf("uninterrupted run quarantined %d cells, plan panicked %d", len(got), len(plan.Panicked))
	}
	if repA.Completed+len(repA.Quarantined) != repA.Total {
		t.Fatalf("report does not cover the grid: %+v", repA)
	}

	// Interrupted run: journal on, hard cancellation once a mid-grid
	// fault-free cell is reached.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	fp := experiments.SweepFingerprint(base, spec.Canonical())
	j1, err := experiments.OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chaos := newChaos()
	doomed := map[string]bool{}
	for _, k := range append(append([]string{}, plan.Panicked...), plan.Flaky...) {
		doomed[k] = true
	}
	cancelKey := ""
	for _, c := range cells[len(cells)/2:] {
		if !doomed[c.Key()] {
			cancelKey = c.Key()
			break
		}
	}
	if cancelKey == "" {
		t.Fatal("no fault-free cell after the midpoint")
	}
	chaos.CallOn(faultinject.SweepCellSite(cancelKey), cancel, 1)

	repB, err := Run(ctx, Config{
		Base: base, Spec: spec, Shards: 8, RetryBudget: budget,
		Journal: j1, Faults: chaos,
	})
	if err == nil {
		t.Fatal("interrupted run must return an error")
	}
	j1.Close()
	if repB.Abandoned() == 0 {
		t.Fatal("interruption left nothing to resume — cancel fired too late")
	}
	t.Logf("interrupted after %d/%d cells (%d quarantined, %d abandoned)",
		repB.Completed, repB.Total, len(repB.Quarantined), repB.Abandoned())

	// Tear the journal tail the way a SIGKILL mid-append would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume: fresh chaos schedule (fault plans are per-process), same
	// journal. Must complete the grid and reproduce the reference CSV
	// byte for byte.
	j2, err := experiments.OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatalf("resume failed to open torn journal: %v", err)
	}
	defer j2.Close()
	if j2.TruncatedRecords() != 1 {
		t.Errorf("torn tail not detected: TruncatedRecords = %d", j2.TruncatedRecords())
	}
	var csvC bytes.Buffer
	repC, err := Run(context.Background(), Config{
		Base: base, Spec: spec, Shards: 8, RetryBudget: budget,
		Journal: j2, Faults: newChaos(), CSV: &csvC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if repC.Completed != repA.Completed {
		t.Errorf("resume completed %d cells, reference %d", repC.Completed, repA.Completed)
	}
	if repC.FromJournal == 0 {
		t.Error("resume re-simulated every cell — journal not consulted")
	}
	if got := quarantineKeys(repC); !equalStrings(got, sortedCopy(plan.Panicked)) {
		t.Errorf("resumed quarantine manifest (%d) != injected panic set (%d)", len(got), len(plan.Panicked))
	}
	if !bytes.Equal(csvA.Bytes(), csvC.Bytes()) {
		t.Error("resumed CSV is not byte-identical to the uninterrupted run")
		diffFirstLine(t, csvA.String(), csvC.String())
	}

	// No goroutine leaks: the worker pool and every cell's timeout
	// context must be gone once Run returns.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:runtime.Stack(buf, true)])
	}
}

func allWorkloads(t *testing.T) []string {
	t.Helper()
	names := workloads.Names()
	if len(names) < 10 {
		t.Fatalf("workload table has only %d entries", len(names))
	}
	return names
}

func quarantineKeys(r *Report) []string {
	keys := make([]string, 0, len(r.Quarantined))
	for _, q := range r.Quarantined {
		keys = append(keys, q.Key)
	}
	sort.Strings(keys)
	return keys
}

func sortedCopy(s []string) []string {
	out := append([]string{}, s...)
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func diffFirstLine(t *testing.T, a, b string) {
	t.Helper()
	al, bl := bytes.Split([]byte(a), []byte("\n")), bytes.Split([]byte(b), []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			t.Logf("first difference at line %d:\n  ref:    %s\n  resume: %s", i+1, al[i], bl[i])
			return
		}
	}
	t.Logf("line counts differ: %d vs %d", len(al), len(bl))
}
