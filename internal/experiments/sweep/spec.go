// Package sweep is the design-space exploration engine: it shards the
// cross-product of workloads × translation schemes × geometry (POM-TLB
// capacity, associativity, core count, trace seed) into independently
// failable cells, runs them on a work-stealing worker pool inside the
// resilience envelope (per-cell deadline, capped-backoff retry drawing on
// a global budget), and degrades gracefully — a cell that exhausts its
// retries is quarantined with its captured failure while the sweep keeps
// going. Completed and quarantined cells are journaled to an append-only,
// fsynced, hash-guarded journal, so a SIGKILL mid-shard resumes with
// exactly the missing cells, and results stream to CSV in deterministic
// grid order as cells finish.
package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

// Spec is a design-space grid: every axis is a list of values to cross
// with the others. A nil axis means "inherit the base options" (one
// implicit value), so the zero Spec describes a single-variant sweep over
// workloads × schemes.
type Spec struct {
	// Schemes are the translation schemes to sweep (default: pom-tlb).
	Schemes []core.Mode
	// PomMB sweeps the POM-TLB capacity in MB.
	PomMB []uint64
	// PomWays sweeps the POM-TLB set associativity.
	PomWays []int
	// Cores sweeps the simulated core count.
	Cores []int
	// Seeds sweeps the trace-generator seed (replication axis).
	Seeds []uint64
	// Tenants sweeps the consolidation guest count (consolidation
	// workloads only; other cells ignore it).
	Tenants []int
	// Churn sweeps the shootdown-storm interval in records (-1 disables
	// storms; consolidation workloads only).
	Churn []int
	// Phases sweeps the per-tenant working-set phase count
	// (consolidation workloads only).
	Phases []int
}

// Variant is one geometry point of the grid: zero fields inherit the
// base options.
type Variant struct {
	PomMB   uint64
	PomWays int
	Cores   int
	Seed    uint64
	Tenants int
	Churn   int
	Phases  int
}

// Label renders the variant canonically ("pom-mb=4|pom-ways=2"); the
// all-inherit variant is "base".
func (v Variant) Label() string {
	var parts []string
	if v.PomMB != 0 {
		parts = append(parts, "pom-mb="+strconv.FormatUint(v.PomMB, 10))
	}
	if v.PomWays != 0 {
		parts = append(parts, "pom-ways="+strconv.Itoa(v.PomWays))
	}
	if v.Cores != 0 {
		parts = append(parts, "cores="+strconv.Itoa(v.Cores))
	}
	if v.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(v.Seed, 10))
	}
	if v.Tenants != 0 {
		parts = append(parts, "tenants="+strconv.Itoa(v.Tenants))
	}
	if v.Churn != 0 {
		parts = append(parts, "churn="+strconv.Itoa(v.Churn))
	}
	if v.Phases != 0 {
		parts = append(parts, "phases="+strconv.Itoa(v.Phases))
	}
	if len(parts) == 0 {
		return "base"
	}
	return strings.Join(parts, "|")
}

// Cell is one grid coordinate: a (workload, scheme, variant) simulation.
// Index is the cell's position in the deterministic grid enumeration —
// the CSV row order and the tiebreaker every report sorts by.
type Cell struct {
	Index    int
	Workload string
	Mode     core.Mode
	Variant  Variant
}

// Key is the cell's stable identity in the journal and fault plans:
// "workload|scheme|variant".
func (c Cell) Key() string {
	return c.Workload + "|" + c.Mode.String() + "|" + c.Variant.Label()
}

// Options materializes the campaign options for this cell: the base
// options with the variant's geometry applied. Per-job plumbing that the
// engine owns (timeout, checkpoint, memoization) is cleared — the sweep
// engine supplies its own.
func (c Cell) Options(base experiments.Options) experiments.Options {
	o := base
	if c.Variant.PomMB != 0 {
		o.POMSizeBytes = c.Variant.PomMB << 20
	}
	if c.Variant.PomWays != 0 {
		o.POMWays = c.Variant.PomWays
	}
	if c.Variant.Cores != 0 {
		o.Cores = c.Variant.Cores
	}
	if c.Variant.Seed != 0 {
		o.Seed = c.Variant.Seed
	}
	if c.Variant.Tenants != 0 {
		o.Tenants = c.Variant.Tenants
	}
	if c.Variant.Churn != 0 {
		o.ChurnEvery = c.Variant.Churn
	}
	if c.Variant.Phases != 0 {
		o.Phases = c.Variant.Phases
	}
	o.WorkloadTimeout = 0
	o.Checkpoint = nil
	o.Workloads = nil
	return o
}

// ParseSpec parses a grid spec of colon-separated axes, each
// "name=v1,v2,...":
//
//	schemes=pom-tlb,tsb:pom-mb=4,8,16:pom-ways=2,4
//
// Axes: schemes, pom-mb, pom-ways, cores, seeds, tenants, churn, phases.
// The last three apply to consolidation workloads only; churn accepts -1
// to disable storms. Unknown axes, duplicate axes, empty value lists,
// unparsable numbers and non-positive geometry are rejected up front so a
// bad sweep fails before any cell runs.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return spec, fmt.Errorf("sweep: empty grid spec")
	}
	seen := map[string]bool{}
	for _, axis := range strings.Split(s, ":") {
		name, vals, ok := strings.Cut(strings.TrimSpace(axis), "=")
		if !ok {
			return spec, fmt.Errorf("sweep: axis %q is not name=v1,v2,...", axis)
		}
		name = strings.TrimSpace(name)
		if seen[name] {
			return spec, fmt.Errorf("sweep: axis %q given twice", name)
		}
		seen[name] = true
		var list []string
		for _, v := range strings.Split(vals, ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return spec, fmt.Errorf("sweep: axis %q has an empty value", name)
			}
			list = append(list, v)
		}
		if len(list) == 0 {
			return spec, fmt.Errorf("sweep: axis %q has no values", name)
		}
		var err error
		switch name {
		case "schemes":
			spec.Schemes, err = parseModes(list)
		case "pom-mb":
			spec.PomMB, err = parseUints(name, list)
		case "pom-ways":
			spec.PomWays, err = parseInts(name, list)
		case "cores":
			spec.Cores, err = parseInts(name, list)
		case "seeds":
			spec.Seeds, err = parseUints(name, list)
		case "tenants":
			spec.Tenants, err = parseInts(name, list)
		case "churn":
			spec.Churn, err = parseChurn(list)
		case "phases":
			spec.Phases, err = parseInts(name, list)
		default:
			err = fmt.Errorf("sweep: unknown axis %q (axes: schemes, pom-mb, pom-ways, cores, seeds, tenants, churn, phases)", name)
		}
		if err != nil {
			return spec, err
		}
	}
	return spec, nil
}

func parseModes(list []string) ([]core.Mode, error) {
	var out []core.Mode
	for _, s := range list {
		m, err := parseMode(s)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseMode(s string) (core.Mode, error) {
	m, err := core.ParseMode(s)
	if err != nil {
		return "", fmt.Errorf("sweep: unknown scheme %q (%s)", s, strings.Join(core.ModeNames(), ", "))
	}
	return m, nil
}

func parseUints(axis string, list []string) ([]uint64, error) {
	var out []uint64
	for _, s := range list {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("sweep: axis %s: value %q must be a positive integer", axis, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(axis string, list []string) ([]int, error) {
	var out []int
	for _, s := range list {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("sweep: axis %s: value %q must be a positive integer", axis, s)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseChurn parses the storm-interval axis: positive record counts, or
// -1 for "storms off" (0 would collide with the inherit sentinel).
func parseChurn(list []string) ([]int, error) {
	var out []int
	for _, s := range list {
		v, err := strconv.Atoi(s)
		if err != nil || v == 0 || v < -1 {
			return nil, fmt.Errorf("sweep: axis churn: value %q must be a positive interval or -1 (off)", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// Canonical renders the spec in fixed axis order with its original value
// order — the string hashed into the journal fingerprint, so any geometry
// change (values, order, a new axis) refuses to resume an old journal.
func (s Spec) Canonical() string {
	var parts []string
	if len(s.Schemes) > 0 {
		names := make([]string, len(s.Schemes))
		for i, m := range s.Schemes {
			names[i] = m.String()
		}
		parts = append(parts, "schemes="+strings.Join(names, ","))
	}
	if len(s.PomMB) > 0 {
		parts = append(parts, "pom-mb="+joinUints(s.PomMB))
	}
	if len(s.PomWays) > 0 {
		parts = append(parts, "pom-ways="+joinInts(s.PomWays))
	}
	if len(s.Cores) > 0 {
		parts = append(parts, "cores="+joinInts(s.Cores))
	}
	if len(s.Seeds) > 0 {
		parts = append(parts, "seeds="+joinUints(s.Seeds))
	}
	if len(s.Tenants) > 0 {
		parts = append(parts, "tenants="+joinInts(s.Tenants))
	}
	if len(s.Churn) > 0 {
		parts = append(parts, "churn="+joinInts(s.Churn))
	}
	if len(s.Phases) > 0 {
		parts = append(parts, "phases="+joinInts(s.Phases))
	}
	return strings.Join(parts, ":")
}

func joinUints(vs []uint64) string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatUint(v, 10)
	}
	return strings.Join(out, ",")
}

func joinInts(vs []int) string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return strings.Join(out, ",")
}

// Validate rejects specs whose axes conflict with hard simulator limits.
func (s Spec) Validate() error {
	for _, c := range s.Cores {
		if c > 256 {
			return fmt.Errorf("sweep: cores=%d exceeds the 256-core trace limit", c)
		}
	}
	for _, t := range s.Tenants {
		if t < 3 {
			return fmt.Errorf("sweep: tenants=%d below the 3-guest minimum (hot/warm/cold tiers)", t)
		}
		if t > 60_000 {
			return fmt.Errorf("sweep: tenants=%d exceeds the 60000-guest VA-window limit", t)
		}
	}
	return nil
}

// Cells enumerates the grid deterministically: workloads (outer), then
// schemes, capacity, ways, cores, seeds, tenants, churn, phases (inner).
// The enumeration order defines each cell's Index and therefore the CSV
// row order.
func (s Spec) Cells(workloadNames []string) []Cell {
	schemes := s.Schemes
	if len(schemes) == 0 {
		schemes = []core.Mode{core.POMTLB}
	}
	pomMB := orInheritU(s.PomMB)
	ways := orInheritI(s.PomWays)
	cores := orInheritI(s.Cores)
	seeds := orInheritU(s.Seeds)
	tenants := orInheritI(s.Tenants)
	churn := orInheritI(s.Churn)
	phases := orInheritI(s.Phases)

	var cells []Cell
	for _, w := range workloadNames {
		for _, m := range schemes {
			for _, mb := range pomMB {
				for _, wy := range ways {
					for _, cr := range cores {
						for _, sd := range seeds {
							for _, tn := range tenants {
								for _, ch := range churn {
									for _, ph := range phases {
										cells = append(cells, Cell{
											Index:    len(cells),
											Workload: w,
											Mode:     m,
											Variant: Variant{PomMB: mb, PomWays: wy, Cores: cr, Seed: sd,
												Tenants: tn, Churn: ch, Phases: ph},
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// Size returns the cell count of the grid over the given workloads.
func (s Spec) Size(workloads int) int {
	n := workloads
	mul := func(k int) {
		if k > 0 {
			n *= k
		}
	}
	if len(s.Schemes) > 0 {
		mul(len(s.Schemes))
	}
	mul(len(s.PomMB))
	mul(len(s.PomWays))
	mul(len(s.Cores))
	mul(len(s.Seeds))
	mul(len(s.Tenants))
	mul(len(s.Churn))
	mul(len(s.Phases))
	return n
}

func orInheritU(vs []uint64) []uint64 {
	if len(vs) == 0 {
		return []uint64{0}
	}
	return vs
}

func orInheritI(vs []int) []int {
	if len(vs) == 0 {
		return []int{0}
	}
	return vs
}

// sortQuarantine orders manifest entries by grid index so degraded sweeps
// report reproducibly regardless of worker scheduling.
func sortQuarantine(qs []QuarantinedCell) {
	sort.Slice(qs, func(i, j int) bool { return qs[i].Index < qs[j].Index })
}
