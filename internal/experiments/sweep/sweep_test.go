package sweep

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/resilience/faultinject"
)

// tiny returns base options small enough to run hundreds of cells in a
// test.
func tiny() experiments.Options {
	return experiments.Options{
		Cores:       1,
		VMs:         1,
		WarmupRefs:  1500,
		MaxRefs:     800,
		Seed:        1,
		Virtualized: true,
		Workloads:   []string{"gups", "mcf"},
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("schemes=pom-tlb,tsb:pom-mb=4,8:pom-ways=2,4:seeds=1,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Schemes) != 2 || spec.Schemes[1] != core.TSB {
		t.Errorf("schemes = %v", spec.Schemes)
	}
	if len(spec.PomMB) != 2 || spec.PomMB[0] != 4 {
		t.Errorf("pom-mb = %v", spec.PomMB)
	}
	if got := spec.Canonical(); got != "schemes=pom-tlb,tsb:pom-mb=4,8:pom-ways=2,4:seeds=1,2" {
		t.Errorf("Canonical = %q", got)
	}
	if n := spec.Size(2); n != 2*2*2*2*2 {
		t.Errorf("Size = %d", n)
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		"",
		"pom-mb",             // no values
		"pom-mb=",            // empty value
		"pom-mb=0",           // non-positive
		"pom-mb=-2",          // negative
		"pom-mb=x",           // not a number
		"pom-ways=0",         // non-positive
		"cores=0",            // non-positive
		"seeds=0",            // zero seed is "inherit", ambiguous
		"bogus=1",            // unknown axis
		"schemes=warp-drive", // unknown scheme
		"pom-mb=1:pom-mb=2",  // duplicate axis
		"pom-mb=1,,2",        // empty list slot
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecValidateCoresLimit(t *testing.T) {
	s := Spec{Cores: []int{512}}
	if err := s.Validate(); err == nil {
		t.Error("cores=512 must be rejected (trace threads are 8-bit)")
	}
}

func TestCellsEnumerationDeterministic(t *testing.T) {
	spec, _ := ParseSpec("schemes=pom-tlb,tsb:pom-mb=4,8")
	cells := spec.Cells([]string{"gups", "mcf"})
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	if cells[0].Key() != "gups|pom-tlb|pom-mb=4" {
		t.Errorf("cell 0 = %s", cells[0].Key())
	}
	if cells[7].Key() != "mcf|tsb|pom-mb=8" {
		t.Errorf("cell 7 = %s", cells[7].Key())
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
	// The zero variant labels as "base" and inherits the base options.
	base := Cell{Workload: "gups", Mode: core.POMTLB}
	if base.Key() != "gups|pom-tlb|base" {
		t.Errorf("base key = %s", base.Key())
	}
}

func TestCellOptionsAppliesGeometry(t *testing.T) {
	c := Cell{Variant: Variant{PomMB: 4, PomWays: 2, Cores: 3, Seed: 9}}
	o := c.Options(tiny())
	if o.POMSizeBytes != 4<<20 || o.POMWays != 2 || o.Cores != 3 || o.Seed != 9 {
		t.Errorf("options = %+v", o)
	}
	// Inherit when zero.
	o = Cell{}.Options(tiny())
	if o.POMSizeBytes != 0 || o.Cores != 1 || o.Seed != 1 {
		t.Errorf("inherit options = %+v", o)
	}
}

func TestSweepCleanRun(t *testing.T) {
	spec, _ := ParseSpec("schemes=pom-tlb:pom-mb=1,2")
	var csv bytes.Buffer
	rep, err := Run(context.Background(), Config{
		Base: tiny(), Spec: spec, Shards: 4, RetryBudget: 8, CSV: &csv, Collect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 4 || rep.Completed != 4 || len(rep.Quarantined) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv has %d lines, want header+4", len(lines))
	}
	// Rows must be in grid order despite concurrent workers.
	for i, line := range lines[1:] {
		if !strings.HasPrefix(line, strings.Join([]string{intoa(i)}, "")+",") {
			t.Errorf("row %d out of order: %s", i, line)
		}
	}
	if len(rep.Results) != 4 || rep.Results[2].Cell.Index != 2 {
		t.Errorf("collected results out of order: %+v", rep.Results)
	}
}

func intoa(i int) string { return string(rune('0' + i)) }

func TestSweepQuarantinesPanickingCell(t *testing.T) {
	spec, _ := ParseSpec("schemes=pom-tlb:pom-mb=1,2")
	cells := spec.Cells([]string{"gups", "mcf"})
	faults := faultinject.NewSchedule()
	// Panic every attempt of one cell; error once (transient) at another.
	faults.PanicOn(faultinject.SweepCellSite("mcf|pom-tlb|pom-mb=1"), 1, 2, 3)
	faults.ErrorOn(faultinject.SweepCellSite("gups|pom-tlb|pom-mb=2"), ErrInjected, 1)

	var csv bytes.Buffer
	rep, err := Run(context.Background(), Config{
		Base: tiny(), Spec: spec, Shards: 2, RetryBudget: 8, Faults: faults, CSV: &csv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(cells)-1 {
		t.Errorf("completed = %d, want %d", rep.Completed, len(cells)-1)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Key != "mcf|pom-tlb|pom-mb=1" || q.Attempts != 1 {
		t.Errorf("quarantine = %+v", q)
	}
	if q.Stack == "" {
		t.Error("panic quarantine must carry the recovered stack")
	}
	if !strings.Contains(q.Error, "[pom-mb=1]") {
		t.Errorf("quarantine error not tagged with the variant: %s", q.Error)
	}
	if rep.Retried != 1 {
		t.Errorf("retried = %d, want 1 (the flaky cell)", rep.Retried)
	}
	// The quarantined cell leaves no CSV row; all others stream in order.
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(cells)-1 {
		t.Errorf("csv has %d lines", len(lines))
	}
	for _, line := range lines[1:] {
		if strings.Contains(line, "mcf,pom-tlb,pom-mb=1,") {
			t.Errorf("quarantined cell produced a row: %s", line)
		}
	}
}

func TestSweepRetryBudgetExhaustion(t *testing.T) {
	spec, _ := ParseSpec("schemes=pom-tlb:pom-mb=1,2,4")
	faults := faultinject.NewSchedule()
	// Every cell fails every attempt with a transient error: with a
	// budget of 2, exactly 2 retries happen across the whole sweep and
	// every cell is quarantined, most with BudgetExhausted set.
	for _, c := range spec.Cells([]string{"gups"}) {
		site := faultinject.SweepCellSite(c.Key())
		faults.ErrorOn(site, ErrInjected, 1, 2, 3, 4, 5)
	}
	rep, err := Run(context.Background(), Config{
		Base: tiny(), Spec: spec, Shards: 1, RetryBudget: 2, QuarantineAfter: 3, Faults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 3 {
		t.Fatalf("quarantined = %d, want 3", len(rep.Quarantined))
	}
	totalAttempts, exhausted := 0, 0
	for _, q := range rep.Quarantined {
		totalAttempts += q.Attempts
		if q.BudgetExhausted {
			exhausted++
		}
	}
	// 3 first attempts + 2 budgeted retries.
	if totalAttempts != 5 {
		t.Errorf("total attempts = %d, want 5", totalAttempts)
	}
	if exhausted == 0 {
		t.Error("no quarantine records the exhausted budget")
	}
	if rep.BudgetRemaining != 0 {
		t.Errorf("budget remaining = %d", rep.BudgetRemaining)
	}
}

func TestSweepResumeServesJournal(t *testing.T) {
	spec, _ := ParseSpec("schemes=pom-tlb:pom-mb=1,2")
	base := tiny()
	fp := experiments.SweepFingerprint(base, spec.Canonical())
	path := filepath.Join(t.TempDir(), "sweep.journal")

	// First run: one cell panics forever and is quarantined.
	j1, err := experiments.OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	faults := faultinject.NewSchedule()
	faults.PanicOn(faultinject.SweepCellSite("gups|pom-tlb|pom-mb=1"), 1, 2, 3)
	var csv1 bytes.Buffer
	rep1, err := Run(context.Background(), Config{
		Base: base, Spec: spec, Shards: 2, RetryBudget: 4, Journal: j1, Faults: faults, CSV: &csv1,
	})
	if err != nil {
		t.Fatal(err)
	}
	j1.Close()
	if rep1.Completed != 3 || len(rep1.Quarantined) != 1 {
		t.Fatalf("run1 = %+v", rep1)
	}

	// Second run, same journal: every cell must be served from the
	// journal — no simulation, no new faults fired.
	j2, err := experiments.OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var csv2 bytes.Buffer
	rep2, err := Run(context.Background(), Config{
		Base: base, Spec: spec, Shards: 2, RetryBudget: 4, Journal: j2, CSV: &csv2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.FromJournal != 3 || rep2.Completed != 3 {
		t.Errorf("run2 = %+v", rep2)
	}
	if len(rep2.Quarantined) != 1 || !rep2.Quarantined[0].FromJournal {
		t.Errorf("run2 quarantine = %+v", rep2.Quarantined)
	}
	if csv1.String() != csv2.String() {
		t.Error("journal-served CSV differs from the original run")
	}
}

func TestSweepCancellationLeavesCellsForResume(t *testing.T) {
	spec, _ := ParseSpec("schemes=pom-tlb:pom-mb=1,2,4:seeds=1,2,3")
	base := tiny()
	fp := experiments.SweepFingerprint(base, spec.Canonical())
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := experiments.OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	faults := faultinject.NewSchedule()
	// Cancel the sweep the first time any worker reaches this cell.
	faults.CallOn(faultinject.SweepCellSite("gups|pom-tlb|pom-mb=2|seed=2"), cancel, 1)

	rep, err := Run(ctx, Config{
		Base: base, Spec: spec, Shards: 1, RetryBudget: 4, Journal: j, Faults: faults,
	})
	if err == nil {
		t.Fatal("cancelled sweep must return an error")
	}
	if !strings.Contains(err.Error(), "resume") {
		t.Errorf("unhelpful interruption error: %v", err)
	}
	if rep.Abandoned() == 0 {
		t.Error("cancelled sweep reports no abandoned cells")
	}
	if got := j.DoneLen(); got != rep.Completed {
		t.Errorf("journal holds %d cells, report says %d completed", got, rep.Completed)
	}
	j.Close()

	// Resume completes exactly the missing cells.
	j2, err := experiments.OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rep2, err := Run(context.Background(), Config{
		Base: base, Spec: spec, Shards: 2, RetryBudget: 4, Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Completed != rep2.Total || rep2.FromJournal != rep.Completed {
		t.Errorf("resume = %+v (first run completed %d)", rep2, rep.Completed)
	}
}

func TestSweepUnknownWorkloadRejected(t *testing.T) {
	base := tiny()
	base.Workloads = []string{"not-a-benchmark"}
	if _, err := Run(context.Background(), Config{Base: base}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSweepCellTimeout(t *testing.T) {
	spec, _ := ParseSpec("schemes=pom-tlb:pom-mb=1")
	base := tiny()
	base.Workloads = []string{"gups"}
	base.MaxRefs = 2_000_000
	base.WarmupRefs = 2_000_000
	rep, err := Run(context.Background(), Config{
		Base: base, Spec: spec, Shards: 1, RetryBudget: 0, QuarantineAfter: 1,
		CellTimeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("timed-out cell not quarantined: %+v", rep)
	}
	if !strings.Contains(rep.Quarantined[0].Error, "deadline") {
		t.Errorf("quarantine error = %s", rep.Quarantined[0].Error)
	}
}

func TestSeedChaosDeterministic(t *testing.T) {
	spec, _ := ParseSpec("schemes=pom-tlb:pom-mb=1,2,4,8:seeds=1,2,3,4")
	cells := spec.Cells([]string{"gups", "mcf", "astar"})
	a := SeedChaos(faultinject.NewSchedule(), cells, 0.1, 0.2, 42)
	b := SeedChaos(faultinject.NewSchedule(), cells, 0.1, 0.2, 42)
	if strings.Join(a.Panicked, ";") != strings.Join(b.Panicked, ";") ||
		strings.Join(a.Flaky, ";") != strings.Join(b.Flaky, ";") {
		t.Error("SeedChaos is not deterministic")
	}
	if len(a.Panicked) == 0 || len(a.Flaky) == 0 {
		t.Errorf("chaos plan empty: %d panicked, %d flaky (rates too low for 48 cells?)", len(a.Panicked), len(a.Flaky))
	}
	c := SeedChaos(faultinject.NewSchedule(), cells, 0.1, 0.2, 43)
	if strings.Join(a.Panicked, ";") == strings.Join(c.Panicked, ";") && len(a.Panicked) > 0 {
		t.Error("different seed produced the identical panic set")
	}
}
