package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/resilience"
	"repro/internal/resilience/faultinject"
	"repro/internal/workloads"
)

// DefaultQuarantineAfter is the per-cell attempt cap when Config leaves
// it zero.
const DefaultQuarantineAfter = 3

// Config describes one sweep run.
type Config struct {
	// Base supplies the non-swept simulation options (refs, warmup,
	// virtualization, ...). Base.Workloads restricts the workload axis
	// (nil = all of Table 2). Base.Parallel and Base.WorkloadTimeout are
	// ignored — Shards and CellTimeout replace them.
	Base experiments.Options
	// Spec is the geometry grid crossed with workloads × schemes.
	Spec Spec
	// Shards is the worker count; each worker owns one shard of the grid
	// and steals from the others when its own drains (0 = GOMAXPROCS).
	Shards int
	// RetryBudget is the global pool of re-attempts shared by every cell;
	// once dry, cells fail on their first error. Negative = unlimited.
	RetryBudget int
	// QuarantineAfter is the per-cell attempt cap: a cell that has failed
	// this many times is quarantined (0 = DefaultQuarantineAfter).
	QuarantineAfter int
	// CellTimeout bounds each attempt (0 = none).
	CellTimeout time.Duration
	// Journal, when non-nil, makes the sweep crash-safe: completed and
	// quarantined cells are served from it without re-running, and every
	// finished cell is appended to it.
	Journal *experiments.SweepJournal
	// Faults is the deterministic chaos plan (nil in production); the
	// engine fires faultinject.SweepCellSite(key) once per cell attempt
	// and threads the schedule into each cell's simulation seams.
	Faults *faultinject.Schedule
	// CSV, when non-nil, receives the results as a stream of rows in
	// deterministic grid order (header first).
	CSV io.Writer
	// Collect retains every cell's Result in the Report — convenient for
	// small sweeps and tables, unbounded memory for huge ones.
	Collect bool
	// Progress, when non-nil, receives one line per completed shard-
	// stealing event and quarantine — coarse, log-friendly narration.
	Progress io.Writer
	// Retry shapes the backoff between attempts (zero = DefaultPolicy
	// with the base seed).
	Retry resilience.Policy
}

// CellResult is one completed cell.
type CellResult struct {
	Cell        Cell
	Res         core.Result
	Attempts    int
	FromJournal bool
}

// QuarantinedCell is one failed cell in the sweep's failure manifest.
type QuarantinedCell struct {
	Index           int    `json:"index"`
	Key             string `json:"key"`
	Workload        string `json:"workload"`
	Scheme          string `json:"scheme"`
	Variant         string `json:"variant"`
	Attempts        int    `json:"attempts"`
	Error           string `json:"error"`
	Stack           string `json:"stack,omitempty"`
	BudgetExhausted bool   `json:"budget_exhausted,omitempty"`
	FromJournal     bool   `json:"from_journal,omitempty"`
}

// Report summarizes a sweep: how much of the grid completed, what was
// served from the journal, and the quarantine manifest for everything
// that did not.
type Report struct {
	Total       int
	Completed   int
	FromJournal int
	Retried     int
	JournalErrs int
	// BudgetRemaining is the unused retry allowance (-1 = unlimited).
	BudgetRemaining int
	Quarantined     []QuarantinedCell
	// Results is populated only under Config.Collect, in grid order.
	Results []CellResult
}

// Abandoned returns how many cells neither completed nor quarantined —
// nonzero only for cancelled sweeps, and exactly the cells a resume will
// run.
func (r *Report) Abandoned() int {
	return r.Total - r.Completed - len(r.Quarantined)
}

// manifest is the JSON document WriteManifest emits.
type manifest struct {
	Total       int               `json:"total_cells"`
	Completed   int               `json:"completed"`
	FromJournal int               `json:"from_journal"`
	Retried     int               `json:"retried"`
	Abandoned   int               `json:"abandoned"`
	Quarantined []QuarantinedCell `json:"quarantined"`
}

// WriteManifest emits the structured failure manifest as indented JSON.
func (r *Report) WriteManifest(w io.Writer) error {
	m := manifest{
		Total:       r.Total,
		Completed:   r.Completed,
		FromJournal: r.FromJournal,
		Retried:     r.Retried,
		Abandoned:   r.Abandoned(),
		Quarantined: r.Quarantined,
	}
	if m.Quarantined == nil {
		m.Quarantined = []QuarantinedCell{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// CSVHeader is the schema of the streamed results file.
func CSVHeader() []string {
	return []string{"cell", "workload", "scheme", "variant", "pom_mb", "pom_ways",
		"cores", "seed", "tenants", "churn", "phases",
		"p_avg", "walk_elim", "l1_hit", "l2_hit", "ipc",
		"hot_elim", "warm_elim", "cold_elim"}
}

// csvRow renders one cell's result row. Formatting is fixed-precision so
// a resumed sweep reproduces an uninterrupted run byte for byte.
func csvRow(c Cell, o experiments.Options, res core.Result) []string {
	ff := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	pomMB := o.POMSizeBytes >> 20
	if pomMB == 0 {
		pomMB = 16 // the paper's default capacity
	}
	ways := o.POMWays
	if ways == 0 {
		ways = 4 // the paper's default associativity
	}
	tier := func(t int) string {
		if !res.HasTiers() {
			return ""
		}
		return ff(res.TierWalkElim(t))
	}
	return []string{
		strconv.Itoa(c.Index),
		c.Workload,
		c.Mode.String(),
		c.Variant.Label(),
		strconv.FormatUint(pomMB, 10),
		strconv.Itoa(ways),
		strconv.Itoa(o.Cores),
		strconv.FormatUint(o.Seed, 10),
		strconv.Itoa(o.Tenants),
		strconv.Itoa(o.ChurnEvery),
		strconv.Itoa(o.Phases),
		ff(res.AvgPenalty()),
		ff(res.WalkEliminationRate()),
		ff(res.L1TLB.Ratio()),
		ff(res.L2TLB.Ratio()),
		ff(res.IPC()),
		tier(0),
		tier(1),
		tier(2),
	}
}

// engine is the mutable state of one Run.
type engine struct {
	cfg    Config
	budget *resilience.Budget
	policy resilience.Policy
	csv    *experiments.OrderedCSV

	mu      sync.Mutex
	queues  [][]Cell
	report  Report
	results []CellResult
}

// Run executes the sweep. The returned Report is valid even when err is
// non-nil: a cancelled sweep reports what completed before the
// cancellation (everything of which is journaled), and a degraded sweep
// returns a nil error with a non-empty quarantine manifest — quarantine
// is the engine working as designed, not a failure of the sweep.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	names := cfg.Base.Workloads
	if len(names) == 0 {
		names = workloads.Names()
	}
	for _, n := range names {
		if _, ok := workloads.ByName(n); ok {
			continue
		}
		if _, ok := workloads.ConsolidationByName(n); ok {
			continue
		}
		return nil, fmt.Errorf("sweep: unknown workload %q", n)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = DefaultQuarantineAfter
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	e := &engine{cfg: cfg}
	e.policy = cfg.Retry
	if e.policy.MaxAttempts == 0 && e.policy.BaseDelay == 0 {
		e.policy = resilience.DefaultPolicy()
		e.policy.Seed = cfg.Base.Seed
	}
	e.policy.MaxAttempts = cfg.QuarantineAfter
	if cfg.RetryBudget >= 0 {
		e.budget = resilience.NewBudget(cfg.RetryBudget)
	}

	cells := cfg.Spec.Cells(names)
	e.report.Total = len(cells)
	if len(cells) == 0 {
		return &e.report, nil
	}

	if cfg.CSV != nil {
		var err error
		e.csv, err = experiments.NewOrderedCSV(cfg.CSV, CSVHeader())
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}

	// Shard the grid round-robin so every worker holds a slice of low
	// indices — the streaming CSV's contiguous prefix advances from the
	// first finished cells instead of waiting for one worker's block.
	e.queues = make([][]Cell, shards)
	for i, c := range cells {
		s := i % shards
		e.queues[s] = append(e.queues[s], c)
	}

	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				c, ok := e.next(id)
				if !ok {
					return
				}
				e.runCell(ctx, c)
			}
		}(w)
	}
	wg.Wait()

	e.report.BudgetRemaining = -1
	if e.budget != nil {
		e.report.BudgetRemaining = e.budget.Remaining()
	}
	sortQuarantine(e.report.Quarantined)
	if cfg.Collect {
		// Grid order, like the CSV.
		sort.Slice(e.results, func(i, j int) bool { return e.results[i].Cell.Index < e.results[j].Cell.Index })
		e.report.Results = e.results
	}
	if err := ctx.Err(); err != nil {
		return &e.report, fmt.Errorf("sweep interrupted: %w (completed cells are journaled; resume runs the remaining %d)", err, e.report.Abandoned())
	}
	return &e.report, nil
}

// next pops a cell from the worker's own shard, or steals from the
// fullest other shard when its own has drained. Returns false only when
// every shard is empty.
func (e *engine) next(id int) (Cell, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if q := e.queues[id]; len(q) > 0 {
		c := q[0]
		e.queues[id] = q[1:]
		return c, true
	}
	// Steal from the back of the longest queue: the cells least likely to
	// be touched by their owner soon.
	victim, best := -1, 0
	for i, q := range e.queues {
		if len(q) > best {
			victim, best = i, len(q)
		}
	}
	if victim < 0 {
		return Cell{}, false
	}
	q := e.queues[victim]
	c := q[len(q)-1]
	e.queues[victim] = q[:len(q)-1]
	return c, true
}

// logf emits one optional progress line.
func (e *engine) logf(format string, args ...any) {
	if e.cfg.Progress != nil {
		fmt.Fprintf(e.cfg.Progress, format+"\n", args...)
	}
}

// runCell drives one cell through journal lookup, the retry envelope,
// and result emission.
func (e *engine) runCell(ctx context.Context, c Cell) {
	key := c.Key()
	cellOpts := c.Options(e.cfg.Base)
	cellOpts.Faults = e.cfg.Faults

	if res, ok := e.cfg.Journal.Done(key); ok {
		e.finish(CellResult{Cell: c, Res: res, FromJournal: true}, cellOpts)
		return
	}
	if q, ok := e.cfg.Journal.Quarantined(key); ok {
		e.quarantine(c, q, true, false)
		return
	}

	attempts := 0
	var res core.Result
	err := resilience.RetryBudget(ctx, e.policy, e.budget, func(ctx context.Context) error {
		attempts++
		return resilience.RunWithTimeout(ctx, e.cfg.CellTimeout, func(ctx context.Context) error {
			if err := e.cfg.Faults.Fire(faultinject.SweepCellSite(key)); err != nil {
				return err
			}
			var serr error
			res, serr = experiments.SimulateCell(ctx, cellOpts, c.Workload, c.Mode)
			return serr
		})
	})
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled, not failed: leave the cell un-journaled so a
			// resume runs it.
			return
		}
		q := experiments.QuarantineInfo{
			Attempts:        attempts,
			Error:           tagVariant(err, c),
			BudgetExhausted: errors.Is(err, resilience.ErrBudgetExhausted),
		}
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			q.Stack = string(pe.Stack)
		}
		if jerr := e.cfg.Journal.PutQuarantined(key, q); jerr != nil {
			e.journalErr(key, jerr)
		}
		e.quarantine(c, q, false, true)
		return
	}
	if jerr := e.cfg.Journal.PutDone(key, res); jerr != nil {
		e.journalErr(key, jerr)
	}
	e.finish(CellResult{Cell: c, Res: res, Attempts: attempts}, cellOpts)
}

// tagVariant stamps the cell's geometry onto the error message via the
// campaign layer's WorkloadError, so quarantine manifests name exact grid
// coordinates.
func tagVariant(err error, c Cell) string {
	var we *experiments.WorkloadError
	if errors.As(err, &we) {
		if we.Variant == "" {
			tagged := *we
			tagged.Variant = c.Variant.Label()
			return tagged.Error()
		}
		return err.Error()
	}
	// Seam panics and retry-budget errors arrive without workload
	// identity; stamp the full cell coordinates on.
	full := &experiments.WorkloadError{Workload: c.Workload, Mode: c.Mode, Variant: c.Variant.Label(), Err: err}
	return full.Error()
}

// finish records one completed cell and streams its row.
func (e *engine) finish(r CellResult, cellOpts experiments.Options) {
	if e.csv != nil {
		if err := e.csv.Put(r.Cell.Index, csvRow(r.Cell, cellOpts, r.Res)); err != nil {
			e.journalErr(r.Cell.Key(), fmt.Errorf("csv: %w", err))
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.report.Completed++
	if r.FromJournal {
		e.report.FromJournal++
	}
	if r.Attempts > 1 {
		e.report.Retried++
	}
	if e.cfg.Collect {
		e.results = append(e.results, r)
	}
}

// quarantine records one failed cell in the manifest and advances the
// CSV past its row slot.
func (e *engine) quarantine(c Cell, q experiments.QuarantineInfo, fromJournal, log bool) {
	if e.csv != nil {
		if err := e.csv.Skip(c.Index); err != nil {
			e.journalErr(c.Key(), fmt.Errorf("csv: %w", err))
		}
	}
	e.mu.Lock()
	e.report.Quarantined = append(e.report.Quarantined, QuarantinedCell{
		Index:           c.Index,
		Key:             c.Key(),
		Workload:        c.Workload,
		Scheme:          c.Mode.String(),
		Variant:         c.Variant.Label(),
		Attempts:        q.Attempts,
		Error:           q.Error,
		Stack:           q.Stack,
		BudgetExhausted: q.BudgetExhausted,
		FromJournal:     fromJournal,
	})
	e.mu.Unlock()
	if log {
		e.logf("sweep: quarantined %s after %d attempt(s): %s", c.Key(), q.Attempts, q.Error)
	}
}

// journalErr counts a journaling/streaming failure without killing the
// sweep — the cell's result is still in memory and in the report; only
// its durability degraded.
func (e *engine) journalErr(key string, err error) {
	e.mu.Lock()
	e.report.JournalErrs++
	e.mu.Unlock()
	e.logf("sweep: journaling %s failed: %v", key, err)
}
