package sweep

import (
	"testing"

	"repro/internal/core"
)

// FuzzParseSpec throws arbitrary grid specs at the parser. The
// invariants: no input panics; every accepted spec contains only
// registered schemes and positive geometry; and the canonical rendering
// re-parses to the same canonical form (the journal's fingerprint
// depends on that fixed point).
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("schemes=pom-tlb,tsb:pom-mb=4,8,16:pom-ways=2,4")
	f.Add("schemes=victima,dram-cache:cores=2,4")
	f.Add("schemes=bogus")
	f.Add("pom-mb=0")
	f.Add("seeds=1,2:seeds=3")
	f.Add("pom-mb=4:pom-mb=8")
	f.Add("schemes=:cores=1")
	f.Add(":::")
	f.Add("tenants=16,128:churn=5000,-1:phases=2,3")
	f.Add("tenants=0")
	f.Add("churn=0")
	f.Add("churn=-2")
	f.Add("phases=1")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		for _, m := range sp.Schemes {
			if _, ok := core.SchemeFor(m); !ok {
				t.Errorf("ParseSpec(%q) accepted unregistered scheme %q", s, m)
			}
		}
		for _, v := range sp.PomMB {
			if v == 0 {
				t.Errorf("ParseSpec(%q) accepted pom-mb=0", s)
			}
		}
		for _, v := range sp.PomWays {
			if v <= 0 {
				t.Errorf("ParseSpec(%q) accepted pom-ways=%d", s, v)
			}
		}
		for _, v := range sp.Cores {
			if v <= 0 {
				t.Errorf("ParseSpec(%q) accepted cores=%d", s, v)
			}
		}
		for _, v := range sp.Tenants {
			if v <= 0 {
				t.Errorf("ParseSpec(%q) accepted tenants=%d", s, v)
			}
		}
		for _, v := range sp.Churn {
			if v == 0 || v < -1 {
				t.Errorf("ParseSpec(%q) accepted churn=%d", s, v)
			}
		}
		for _, v := range sp.Phases {
			if v <= 0 {
				t.Errorf("ParseSpec(%q) accepted phases=%d", s, v)
			}
		}
		canon := sp.Canonical()
		sp2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, s, err)
		}
		if got := sp2.Canonical(); got != canon {
			t.Errorf("canonical form is not a fixed point: %q -> %q -> %q", s, canon, got)
		}
	})
}
