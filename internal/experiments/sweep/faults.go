package sweep

import (
	"errors"

	"repro/internal/resilience/faultinject"
)

// ErrInjected is the transient failure SeedChaos schedules at flaky
// cells.
var ErrInjected = errors.New("sweep: injected chaos fault")

// ChaosPlan names the cells a SeedChaos call doomed, so tests and CI
// can assert the quarantine manifest is exactly the injected set.
type ChaosPlan struct {
	// Panicked cells panic on every attempt: the resilience layer treats
	// a panic as permanent, so each lands in quarantine with its stack.
	Panicked []string
	// Flaky cells fail their first attempt with ErrInjected and succeed
	// on retry — they consume retry budget but must NOT be quarantined.
	Flaky []string
}

// SeedChaos schedules deterministic faults at the sweep-cell seam: each
// cell's fate is a pure function of (seed, cell key), independent of
// shard assignment, worker scheduling, and which run — first, killed, or
// resumed — executes the cell. panicRate and flakyRate are probabilities
// in [0, 1]; their sum is clamped to 1 (panic wins ties).
func SeedChaos(s *faultinject.Schedule, cells []Cell, panicRate, flakyRate float64, seed uint64) ChaosPlan {
	var plan ChaosPlan
	for _, c := range cells {
		key := c.Key()
		u := cellUniform(seed, key)
		switch {
		case u < panicRate:
			s.PanicOn(faultinject.SweepCellSite(key), 1)
			plan.Panicked = append(plan.Panicked, key)
		case u < panicRate+flakyRate:
			s.ErrorOn(faultinject.SweepCellSite(key), ErrInjected, 1)
			plan.Flaky = append(plan.Flaky, key)
		}
	}
	return plan
}

// cellUniform hashes (seed, key) to a uniform value in [0, 1) with the
// same splitmix64 finalizer the trace generators use.
func cellUniform(seed uint64, key string) float64 {
	h := seed ^ 0x9E3779B97F4A7C15
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001B3
	}
	z := h
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
