package sweep

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/resilience/faultinject"
)

// consolBase is a short consolidation campaign: small traces, but real
// multi-VM scenarios with storms and phase changes in every cell.
func consolBase() experiments.Options {
	return experiments.Options{
		Cores:       2,
		VMs:         1,
		WarmupRefs:  3_000,
		MaxRefs:     3_000,
		Seed:        1,
		Virtualized: true,
	}
}

// TestSweepConsolidationAxes drives the tenants=/churn=/phases= axes end
// to end through the engine over the consol-smoke preset and checks the
// new CSV columns carry the per-cell override and the per-tier walk
// elimination.
func TestSweepConsolidationAxes(t *testing.T) {
	spec, err := ParseSpec("schemes=pom-tlb,tsb:tenants=16,24:churn=1500,-1:phases=2")
	if err != nil {
		t.Fatal(err)
	}
	base := consolBase()
	base.Workloads = []string{"consol-smoke"}
	cells := spec.Cells(base.Workloads)
	if len(cells) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(cells))
	}
	var csv bytes.Buffer
	rep, err := Run(context.Background(), Config{Base: base, Spec: spec, Shards: 4, CSV: &csv})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != len(cells) || len(rep.Quarantined) != 0 {
		t.Fatalf("sweep degraded: %+v", rep)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(cells)+1 {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(cells))
	}
	header := strings.Split(lines[0], ",")
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("CSV header missing %q: %v", name, header)
		return -1
	}
	tenantsC, churnC, hotC, coldC := col("tenants"), col("churn"), col("hot_elim"), col("cold_elim")
	for i, line := range lines[1:] {
		f := strings.Split(line, ",")
		v := cells[i].Variant
		if f[tenantsC] != "16" && f[tenantsC] != "24" {
			t.Errorf("row %d: tenants column %q, want the swept override", i, f[tenantsC])
		}
		if (v.Churn == -1) != (f[churnC] == "-1") {
			t.Errorf("row %d: churn column %q does not match variant %+v", i, f[churnC], v)
		}
		if f[hotC] == "" || f[coldC] == "" {
			t.Errorf("row %d: consolidation cell missing tier columns: %q", i, line)
		}
	}
	// Non-consolidation cells leave the tier columns empty.
	plain := consolBase()
	plain.Workloads = []string{"gups"}
	var csv2 bytes.Buffer
	if _, err := Run(context.Background(), Config{
		Base: plain, Spec: Spec{}, Shards: 1, CSV: &csv2,
	}); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(csv2.String()), "\n")
	if got := strings.Split(rows[len(rows)-1], ","); got[hotC] != "" {
		t.Errorf("gups row carries a tier column: %q", got[hotC])
	}
}

// TestSweepConsolidationKillResume mirrors the soak acceptance on the
// consolidation path: a 100+ guest Zipf sweep with storm cells is
// cancelled mid-grid, the journal tail is left intact (crash-tearing is
// covered by the soak), and the resumed run must reproduce the
// uninterrupted CSV byte for byte — scenario builds, event schedules and
// tier accounting are fully deterministic.
func TestSweepConsolidationKillResume(t *testing.T) {
	base := consolBase()
	base.Workloads = []string{"consol-zipf", "consol-smoke"}
	spec, err := ParseSpec("schemes=pom-tlb,tsb:seeds=1,2:churn=1000,-1")
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Cells(base.Workloads)
	if len(cells) != 16 {
		t.Fatalf("grid has %d cells, want 16", len(cells))
	}

	var csvA bytes.Buffer
	repA, err := Run(context.Background(), Config{Base: base, Spec: spec, Shards: 4, CSV: &csvA})
	if err != nil {
		t.Fatal(err)
	}
	if repA.Completed != len(cells) {
		t.Fatalf("reference run degraded: %+v", repA)
	}

	// Interrupted run: hard-cancel when a mid-grid cell starts.
	path := filepath.Join(t.TempDir(), "consol.journal")
	fp := experiments.SweepFingerprint(base, spec.Canonical())
	j1, err := experiments.OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chaos := faultinject.NewSchedule()
	chaos.CallOn(faultinject.SweepCellSite(cells[len(cells)/2].Key()), cancel, 1)
	repB, err := Run(ctx, Config{Base: base, Spec: spec, Shards: 2, Journal: j1, Faults: chaos})
	j1.Close()
	if err == nil {
		t.Fatal("interrupted run must return an error")
	}
	if repB.Abandoned() == 0 {
		t.Fatal("interruption left nothing to resume — cancel fired too late")
	}

	// Resume against the same journal.
	j2, err := experiments.OpenSweepJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var csvC bytes.Buffer
	repC, err := Run(context.Background(), Config{Base: base, Spec: spec, Shards: 4, Journal: j2, CSV: &csvC})
	if err != nil {
		t.Fatal(err)
	}
	if repC.Completed != len(cells) {
		t.Fatalf("resumed run degraded: %+v", repC)
	}
	if repC.FromJournal == 0 {
		t.Error("resume re-simulated every cell — journal not consulted")
	}
	if !bytes.Equal(csvA.Bytes(), csvC.Bytes()) {
		t.Error("resumed consolidation CSV is not byte-identical to the uninterrupted run")
		diffFirstLine(t, csvA.String(), csvC.String())
	}
}
