package dram

import (
	"container/heap"

	"repro/internal/addr"
)

// This file provides an event-driven FR-FCFS (first-ready, first-come
// first-served) command scheduler — the policy Ramulator and real memory
// controllers use. The analytic Channel model answers per-access latency
// questions inline; the Scheduler replays a whole request stream through
// explicit ACT/PRE/CAS command timing and reports the same statistics, so
// the two models can be cross-validated (see TestSchedulerAgreesWithChannel
// and BenchmarkFRFCFS).

// Request is one line-granular memory request presented to the scheduler.
type Request struct {
	// Arrival is the CPU-cycle time the request enters the controller.
	Arrival uint64
	// Addr is the line-aligned physical address.
	Addr uint64
	// Write marks write requests.
	Write bool
}

// Completion reports one serviced request.
type Completion struct {
	Request
	// Finish is the CPU-cycle time the data transfer completed.
	Finish uint64
	// RowBufferHit is true when no activate was needed.
	RowBufferHit bool
}

// Scheduler replays request streams under FR-FCFS.
type Scheduler struct {
	cfg Config
	// QueueCap bounds the per-channel request queue (controller window).
	QueueCap int
}

// NewScheduler builds an FR-FCFS scheduler for a channel configuration.
func NewScheduler(cfg Config) *Scheduler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Scheduler{cfg: cfg, QueueCap: 32}
}

// reqState tracks one in-flight request.
type reqState struct {
	Request
	bank int
	row  uint64
	seq  int // arrival order for FCFS tie-breaking
}

// reqHeap orders pending requests by arrival time (the stream may be
// presented out of order by a loosely-synchronized multi-core frontend).
type reqHeap []reqState

func (h reqHeap) Len() int      { return len(h) }
func (h reqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h reqHeap) Less(i, j int) bool {
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].seq < h[j].seq
}
func (h *reqHeap) Push(x any) { *h = append(*h, x.(reqState)) }
func (h *reqHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run services every request and returns the completions in service order.
// The scheduler maintains a window of up to QueueCap pending requests; at
// each step it issues, among the requests whose bank is ready, first any
// row-buffer hit (first-ready) and otherwise the oldest request (FCFS).
func (s *Scheduler) Run(reqs []Request) []Completion {
	ch := MustNew(s.cfg) // reuse the bank geometry decomposition
	type bankState struct {
		openRow   uint64
		hasOpen   bool
		busyUntil uint64
	}
	banks := make([]bankState, s.cfg.Banks)

	// Feed requests through an arrival-ordered heap.
	arrivals := make(reqHeap, 0, len(reqs))
	for i, r := range reqs {
		bi, row := ch.decompose(addr.HPA(r.Addr))
		arrivals = append(arrivals, reqState{Request: r, bank: bi, row: row, seq: i})
	}
	heap.Init(&arrivals)

	var window []reqState
	var busBusy uint64
	var clock uint64
	out := make([]Completion, 0, len(reqs))

	burst := s.cfg.BurstCycles()
	tCAS := s.cfg.cpuCycles(s.cfg.TCAS)
	tRCD := s.cfg.cpuCycles(s.cfg.TRCD)
	tRP := s.cfg.cpuCycles(s.cfg.TRP)

	refill := func() {
		for len(window) < s.QueueCap && arrivals.Len() > 0 &&
			arrivals[0].Arrival <= clock {
			window = append(window, heap.Pop(&arrivals).(reqState))
		}
		// If the window is empty, jump to the next arrival.
		if len(window) == 0 && arrivals.Len() > 0 {
			if arrivals[0].Arrival > clock {
				clock = arrivals[0].Arrival
			}
			for len(window) < s.QueueCap && arrivals.Len() > 0 &&
				arrivals[0].Arrival <= clock {
				window = append(window, heap.Pop(&arrivals).(reqState))
			}
		}
	}

	for {
		refill()
		if len(window) == 0 {
			if arrivals.Len() == 0 {
				break
			}
			continue
		}
		// FR-FCFS pick: row hits first (oldest among them), else oldest.
		pick := -1
		for i, r := range window {
			b := &banks[r.bank]
			if b.hasOpen && b.openRow == r.row {
				if pick == -1 || window[i].seq < window[pick].seq {
					pick = i
				}
			}
		}
		hit := pick != -1
		if pick == -1 {
			for i := range window {
				if pick == -1 || window[i].seq < window[pick].seq {
					pick = i
				}
			}
		}
		r := window[pick]
		window = append(window[:pick], window[pick+1:]...)

		b := &banks[r.bank]
		start := maxU64(clock, maxU64(r.Arrival, b.busyUntil))
		var core uint64
		switch {
		case b.hasOpen && b.openRow == r.row:
			core = tCAS
		case !b.hasOpen:
			core = tRCD + tCAS
		default:
			core = tRP + tRCD + tCAS
		}
		dataReady := start + core
		busStart := maxU64(dataReady, busBusy)
		finish := busStart + burst

		b.hasOpen = true
		b.openRow = r.row
		b.busyUntil = finish
		busBusy = finish
		if finish > clock {
			clock = finish
		}
		out = append(out, Completion{
			Request:      r.Request,
			Finish:       finish + s.cfg.CtrlOverhead,
			RowBufferHit: hit && b.openRow == r.row,
		})
	}
	return out
}

// RowBufferHitRate summarizes a completion stream.
func RowBufferHitRate(cs []Completion) float64 {
	if len(cs) == 0 {
		return 0
	}
	hits := 0
	for _, c := range cs {
		if c.RowBufferHit {
			hits++
		}
	}
	return float64(hits) / float64(len(cs))
}

// AvgServiceLatency returns the mean finish−arrival over a completion
// stream.
func AvgServiceLatency(cs []Completion) float64 {
	if len(cs) == 0 {
		return 0
	}
	var sum uint64
	for _, c := range cs {
		sum += c.Finish - c.Arrival
	}
	return float64(sum) / float64(len(cs))
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
