package dram

import (
	"testing"

	"repro/internal/addr"
)

// stream builds n sequential line requests spaced gap cycles apart.
func stream(n int, gap uint64) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{Arrival: uint64(i) * gap, Addr: uint64(i) * 64}
	}
	return out
}

// scatter builds n pseudo-random line requests spaced gap cycles apart.
func scatter(n int, gap uint64) []Request {
	out := make([]Request, n)
	x := uint64(0x2545F4914F6CDD1D)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = Request{Arrival: uint64(i) * gap, Addr: (x % (1 << 30)) &^ 63}
	}
	return out
}

func TestSchedulerServicesEverything(t *testing.T) {
	s := NewScheduler(DieStacked())
	reqs := stream(1000, 50)
	cs := s.Run(reqs)
	if len(cs) != len(reqs) {
		t.Fatalf("completions = %d, want %d", len(cs), len(reqs))
	}
	for _, c := range cs {
		if c.Finish <= c.Arrival {
			t.Fatalf("completion before arrival: %+v", c)
		}
	}
}

func TestSchedulerRowLocality(t *testing.T) {
	s := NewScheduler(DieStacked())
	seq := RowBufferHitRate(s.Run(stream(5000, 20)))
	rnd := RowBufferHitRate(s.Run(scatter(5000, 20)))
	if seq < 0.9 {
		t.Errorf("sequential FR-FCFS RBH = %f, want > 0.9", seq)
	}
	if rnd > 0.3 {
		t.Errorf("random FR-FCFS RBH = %f, want < 0.3", rnd)
	}
}

func TestSchedulerFirstReadyReordering(t *testing.T) {
	// Two requests to row A, one to row B between them, all arrived at
	// once: FR-FCFS should service both A-row requests back to back.
	cfg := DieStacked()
	s := NewScheduler(cfg)
	rowStride := cfg.RowBytes * uint64(cfg.Banks) // same bank, next row
	reqs := []Request{
		{Arrival: 0, Addr: 0},
		{Arrival: 0, Addr: rowStride}, // row B
		{Arrival: 0, Addr: 64},        // row A again
	}
	cs := s.Run(reqs)
	if len(cs) != 3 {
		t.Fatal("missing completions")
	}
	// The second serviced request should be the row-A hit (addr 64).
	if cs[1].Addr != 64 || !cs[1].RowBufferHit {
		t.Errorf("FR-FCFS did not prioritize the row hit: serviced %#x (hit=%v)",
			cs[1].Addr, cs[1].RowBufferHit)
	}
}

// Cross-validation: under light load the analytic Channel and the
// event-driven scheduler must agree on row-buffer behaviour and land in
// the same latency band.
func TestSchedulerAgreesWithChannel(t *testing.T) {
	cfg := DieStacked()
	cfg.TREFI = 0 // refresh timing differs between the two models
	for name, reqs := range map[string][]Request{
		"sequential": stream(4000, 200),
		"random":     scatter(4000, 200),
	} {
		s := NewScheduler(cfg)
		cs := s.Run(reqs)

		ch := MustNew(cfg)
		var chHits, chTotal uint64
		var chLat float64
		for _, r := range reqs {
			res := ch.Access(r.Arrival, addr.HPA(r.Addr), r.Write)
			if res.RowBufferHit {
				chHits++
			}
			chTotal++
			chLat += float64(res.Latency)
		}
		chRBH := float64(chHits) / float64(chTotal)
		frRBH := RowBufferHitRate(cs)
		if diff := chRBH - frRBH; diff < -0.1 || diff > 0.1 {
			t.Errorf("%s: RBH disagrees: channel %.3f vs FR-FCFS %.3f", name, chRBH, frRBH)
		}
		chAvg := chLat / float64(chTotal)
		frAvg := AvgServiceLatency(cs)
		if frAvg < chAvg*0.5 || frAvg > chAvg*2 {
			t.Errorf("%s: latency bands diverge: channel %.1f vs FR-FCFS %.1f", name, chAvg, frAvg)
		}
	}
}

func TestSchedulerEmptyAndSummaries(t *testing.T) {
	s := NewScheduler(DieStacked())
	if got := s.Run(nil); len(got) != 0 {
		t.Error("empty stream should yield no completions")
	}
	if RowBufferHitRate(nil) != 0 || AvgServiceLatency(nil) != 0 {
		t.Error("empty summaries should be zero")
	}
}

func TestNewSchedulerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewScheduler(Config{})
}
