// Package dram implements the Ramulator-like DRAM timing substrate the
// paper's evaluation relies on (Section 3.3). It models channels, banks and
// open-page row buffers with the tCAS-tRCD-tRP timings from Table 1, and
// reports per-access latency plus whether the access hit in the row buffer
// (the statistic behind Figure 11).
//
// Two configurations from Table 1 ship as constructors:
//
//	DieStacked — 1 GHz bus (DDR 2 GHz), 128-bit, 2 KB rows, 11-11-11
//	DDR4_2133  — 1066 MHz bus (DDR 2133), 64-bit, 2 KB rows, 14-14-14
//
// The model is deliberately event-free: each access computes its latency
// from per-bank state (open row, busy-until time) and the channel data bus,
// which captures row-buffer locality and bank-level parallelism — the two
// DRAM properties the paper's results depend on — without a full
// cycle-by-cycle command scheduler.
package dram

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/stats"
)

// Config describes one DRAM channel's geometry and timing.
type Config struct {
	// Name labels the configuration in stats output.
	Name string
	// BusMHz is the I/O bus clock in MHz (data moves at DDR, 2× this).
	BusMHz uint64
	// BusBytes is the data-bus width in bytes per transfer edge.
	BusBytes uint64
	// RowBytes is the row-buffer (page) size per bank.
	RowBytes uint64
	// Banks is the number of banks in the channel.
	Banks int
	// TCAS, TRCD, TRP are the column-access, RAS-to-CAS and precharge
	// delays in DRAM bus cycles.
	TCAS, TRCD, TRP uint64
	// CPUMHz is the core clock used to convert DRAM cycles into the CPU
	// cycles the rest of the simulator accounts in.
	CPUMHz uint64
	// CtrlOverhead is a fixed memory-controller overhead in CPU cycles
	// added to every access (queueing, command issue, on-die routing).
	CtrlOverhead uint64
	// Requestors bounds the queueing wait: the simulator's cores are
	// in-order with one outstanding miss each, so no more than Requestors
	// transfers can physically be queued ahead of a new arrival. Without
	// the bound, the loose clock synchronization between cores would
	// charge phantom waits. 0 defaults to 8.
	Requestors int
	// TREFI is the refresh interval and TRFC the refresh cycle time, both
	// in CPU cycles (JEDEC: one refresh command per ~7.8 µs, blocking the
	// rank for tRFC ≈ 350 ns). 0 disables refresh modelling.
	TREFI uint64
	TRFC  uint64

	// FaultHook, when non-nil, runs at the start of every Access — the
	// fault-injection seam (internal/resilience/faultinject) used to fail
	// the N-th DRAM access deterministically. Never set in production
	// configurations; excluded from JSON round-trips.
	FaultHook func() `json:"-"`
}

// DieStacked returns the Table 1 die-stacked DRAM channel configuration.
func DieStacked() Config {
	return Config{
		Name:         "die-stacked",
		BusMHz:       1000,
		BusBytes:     16, // 128-bit
		RowBytes:     2048,
		Banks:        16,
		TCAS:         11,
		TRCD:         11,
		TRP:          11,
		CPUMHz:       4000,
		CtrlOverhead: 6,
		TREFI:        31_200, // 7.8 µs at 4 GHz
		TRFC:         1_400,  // 350 ns
	}
}

// DDR4_2133 returns the Table 1 off-chip DDR4-2133 configuration.
func DDR4_2133() Config {
	return Config{
		Name:         "DDR4-2133",
		BusMHz:       1066,
		BusBytes:     8, // 64-bit
		RowBytes:     2048,
		Banks:        16,
		TCAS:         14,
		TRCD:         14,
		TRP:          14,
		CPUMHz:       4000,
		CtrlOverhead: 10,
		TREFI:        31_200,
		TRFC:         1_400,
	}
}

// cpuCycles converts n DRAM bus cycles into CPU cycles, rounding up.
func (c Config) cpuCycles(n uint64) uint64 {
	return (n*c.CPUMHz + c.BusMHz - 1) / c.BusMHz
}

// BurstCycles returns the CPU cycles needed to move one 64 B line over the
// DDR data bus.
func (c Config) BurstCycles() uint64 {
	perCycle := 2 * c.BusBytes // DDR: two transfers per bus cycle
	bursts := (uint64(addr.CacheLineSize) + perCycle - 1) / perCycle
	return c.cpuCycles(bursts)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.BusMHz == 0 || c.CPUMHz == 0:
		return fmt.Errorf("dram %q: clocks must be nonzero", c.Name)
	case c.BusBytes == 0 || c.RowBytes == 0:
		return fmt.Errorf("dram %q: bus/row geometry must be nonzero", c.Name)
	case c.Banks <= 0:
		return fmt.Errorf("dram %q: need at least one bank", c.Banks)
	case c.RowBytes%addr.CacheLineSize != 0:
		return fmt.Errorf("dram %q: row size %d not a multiple of the line size", c.Name, c.RowBytes)
	}
	return nil
}

// bank holds the open-page state of one DRAM bank.
type bank struct {
	openRow   uint64
	hasOpen   bool
	busyUntil uint64 // CPU-cycle time the bank can accept the next command
}

// Result describes the outcome of one DRAM access.
type Result struct {
	// Latency is the access latency in CPU cycles, including any wait for
	// a busy bank or bus.
	Latency uint64
	// RowBufferHit is true when the access hit the open row.
	RowBufferHit bool
	// Bank and Row identify where the access landed (for tests/debugging).
	Bank int
	Row  uint64
}

// Stats aggregates DRAM channel activity.
type Stats struct {
	// Refreshes counts refresh windows the channel has retired.
	Refreshes  uint64
	Accesses   uint64
	RowHits    uint64
	RowMisses  uint64 // closed bank: activate needed
	RowConfl   uint64 // different row open: precharge + activate
	Reads      uint64
	Writes     uint64
	TotalWait  uint64 // cycles spent waiting on busy banks/bus
	TotalCycle uint64 // sum of access latencies
}

// RowBufferHitRate returns hits / accesses.
func (s Stats) RowBufferHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// AvgLatency returns the mean access latency in CPU cycles.
func (s Stats) AvgLatency() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.TotalCycle) / float64(s.Accesses)
}

// Shadow observes every DRAM access in program order. The differential
// oracle (internal/oracle) attaches one per channel and replays each
// access against a naive per-bank open-row tracker, flagging any
// disagreement in bank/row decomposition or row-buffer outcome.
// refreshes is the channel's total retired refresh count at the time of
// the access, so the tracker can mirror refresh-induced row closures.
type Shadow interface {
	Access(a addr.HPA, write bool, refreshes uint64, res Result)
}

// hook wraps an attached Shadow behind a concrete pointer: the
// unobserved hot path pays a single-word nil check instead of a
// two-word interface comparison, and the virtual call sits behind a
// branch the CPU predicts never-taken when no oracle is attached.
type hook struct{ s Shadow }

// Channel is one independently-timed DRAM channel.
type Channel struct {
	cfg     Config
	banks   []bank
	busBusy uint64 // CPU-cycle time the data bus frees up
	// nextRefresh is the CPU-cycle time of the next refresh command; a
	// refresh closes every row and occupies the rank for TRFC.
	nextRefresh uint64
	colBits     uint // log2(lines per row)
	bankMask    uint64
	stats       Stats
	shadow      *hook
	// refreshEpochs counts retired refresh windows like stats.Refreshes
	// but survives ResetStats, so the shadow's row-closure mirroring stays
	// aligned with bank state (which resets never touch).
	refreshEpochs uint64
}

// New creates a channel, reporting configuration errors.
func New(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	linesPerRow := cfg.RowBytes / addr.CacheLineSize
	colBits := uint(0)
	for 1<<colBits < linesPerRow {
		colBits++
	}
	return &Channel{
		cfg:      cfg,
		banks:    make([]bank, cfg.Banks),
		colBits:  colBits,
		bankMask: uint64(cfg.Banks - 1),
	}, nil
}

// MustNew is New but panics on an invalid configuration — the historical
// behavior, kept for the simulator core whose Config is validated up
// front: a broken substrate invalidates every simulation built on it.
func MustNew(cfg Config) *Channel {
	ch, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return ch
}

// Config returns the channel's configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// SetShadow attaches (or, with nil, detaches) a lockstep observer.
func (ch *Channel) SetShadow(s Shadow) {
	if s == nil {
		ch.shadow = nil
		return
	}
	ch.shadow = &hook{s}
}

// decompose maps a physical address onto (bank, row, column). Consecutive
// cache lines share a row until the row is exhausted, then move to the next
// bank — the mapping that gives spatially-local streams the high row-buffer
// hit rates reported in Figure 11.
func (ch *Channel) decompose(a addr.HPA) (bankIdx int, row uint64) {
	line := a.Line()
	col := line & ((1 << ch.colBits) - 1)
	_ = col
	upper := line >> ch.colBits
	bankIdx = int(upper & ch.bankMask)
	row = upper >> uint(popcountMask(ch.bankMask))
	return bankIdx, row
}

// popcountMask returns the number of bits in a mask of form 2^k - 1.
func popcountMask(m uint64) int {
	n := 0
	for m != 0 {
		n++
		m >>= 1
	}
	return n
}

// Access performs one 64 B access at CPU-cycle time now and returns its
// latency and row-buffer outcome. State (open rows, busy times) advances.
//
// Banks pipeline: a bank is occupied for its own activate/CAS sequence,
// but the shared data bus is only held for the burst itself, so accesses
// to different banks overlap — the bank-level parallelism the paper's
// Section 2.2 relies on. Channel throughput is therefore bounded by the
// burst rate, not by the full access latency.
func (ch *Channel) Access(now uint64, a addr.HPA, write bool) Result {
	if ch.cfg.FaultHook != nil {
		ch.cfg.FaultHook()
	}
	bi, row := ch.decompose(a)
	b := &ch.banks[bi]

	req := uint64(ch.cfg.Requestors)
	if req == 0 {
		req = 8
	}

	// Retire any refresh windows that elapsed before this access: rows
	// close and the rank is unavailable for TRFC after each interval.
	if ch.cfg.TREFI > 0 {
		if ch.nextRefresh == 0 {
			ch.nextRefresh = ch.cfg.TREFI
		}
		for now >= ch.nextRefresh {
			for i := range ch.banks {
				ch.banks[i].hasOpen = false
				if end := ch.nextRefresh + ch.cfg.TRFC; ch.banks[i].busyUntil < end {
					ch.banks[i].busyUntil = end
				}
			}
			ch.nextRefresh += ch.cfg.TREFI
			ch.stats.Refreshes++
			ch.refreshEpochs++
		}
	}

	// The bank accepts the command once it has finished its previous one;
	// at most `req` full accesses can be queued ahead.
	bankStart := now
	if b.busyUntil > bankStart {
		bankStart = b.busyUntil
	}
	bankCap := now + req*ch.cfg.cpuCycles(ch.cfg.TRP+ch.cfg.TRCD+ch.cfg.TCAS)
	if bankStart > bankCap {
		bankStart = bankCap
	}

	var coreLat uint64
	var hit bool
	switch {
	case b.hasOpen && b.openRow == row:
		hit = true
		coreLat = ch.cfg.cpuCycles(ch.cfg.TCAS)
		ch.stats.RowHits++
	case !b.hasOpen:
		coreLat = ch.cfg.cpuCycles(ch.cfg.TRCD + ch.cfg.TCAS)
		ch.stats.RowMisses++
	default:
		coreLat = ch.cfg.cpuCycles(ch.cfg.TRP + ch.cfg.TRCD + ch.cfg.TCAS)
		ch.stats.RowConfl++
	}
	burst := ch.cfg.BurstCycles()

	// Data is ready at the bank after coreLat; it then needs a bus slot
	// (at most `req` bursts can be queued ahead on the bus).
	dataReady := bankStart + coreLat
	busStart := dataReady
	if ch.busBusy > busStart {
		busStart = ch.busBusy
	}
	if busCap := dataReady + req*burst; busStart > busCap {
		busStart = busCap
	}
	done := busStart + burst
	total := done - now + ch.cfg.CtrlOverhead
	wait := (bankStart - now) + (busStart - dataReady)

	b.hasOpen = true
	b.openRow = row
	b.busyUntil = done
	ch.busBusy = done

	ch.stats.Accesses++
	if write {
		ch.stats.Writes++
	} else {
		ch.stats.Reads++
	}
	ch.stats.TotalWait += wait
	ch.stats.TotalCycle += total

	res := Result{Latency: total, RowBufferHit: hit, Bank: bi, Row: row}
	if ch.shadow != nil {
		ch.shadow.s.Access(a, write, ch.refreshEpochs, res)
	}
	return res
}

// CheckInvariants validates the channel's accounting identities: every
// access is classified exactly once (hit + miss + conflict = accesses),
// is either a read or a write, and total latency can never be less than
// the time spent waiting. Returns the first violation found, or nil.
func (ch *Channel) CheckInvariants() error {
	s := ch.stats
	if s.RowHits+s.RowMisses+s.RowConfl != s.Accesses {
		return fmt.Errorf("dram %q: row outcomes %d+%d+%d != accesses %d",
			ch.cfg.Name, s.RowHits, s.RowMisses, s.RowConfl, s.Accesses)
	}
	if s.Reads+s.Writes != s.Accesses {
		return fmt.Errorf("dram %q: reads %d + writes %d != accesses %d",
			ch.cfg.Name, s.Reads, s.Writes, s.Accesses)
	}
	if s.TotalCycle < s.TotalWait {
		return fmt.Errorf("dram %q: total latency %d below total wait %d",
			ch.cfg.Name, s.TotalCycle, s.TotalWait)
	}
	return nil
}

// Stats returns a copy of the accumulated statistics.
func (ch *Channel) Stats() Stats { return ch.stats }

// ResetStats clears counters without disturbing bank state.
func (ch *Channel) ResetStats() { ch.stats = Stats{} }

// HitMiss converts the row-buffer counters into a stats.HitMiss for
// uniform reporting.
func (s Stats) HitMiss() stats.HitMiss {
	return stats.HitMiss{Hits: s.RowHits, Misses: s.RowMisses + s.RowConfl}
}
