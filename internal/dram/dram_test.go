package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestConfigValidate(t *testing.T) {
	good := DieStacked()
	if err := good.Validate(); err != nil {
		t.Fatalf("DieStacked invalid: %v", err)
	}
	if err := DDR4_2133().Validate(); err != nil {
		t.Fatalf("DDR4 invalid: %v", err)
	}
	bad := good
	bad.BusMHz = 0
	if bad.Validate() == nil {
		t.Error("zero bus clock should be invalid")
	}
	bad = good
	bad.Banks = 0
	if bad.Validate() == nil {
		t.Error("zero banks should be invalid")
	}
	bad = good
	bad.RowBytes = 100
	if bad.Validate() == nil {
		t.Error("non-line-multiple row should be invalid")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestCycleConversion(t *testing.T) {
	c := DieStacked()
	// 11 bus cycles at 1 GHz = 11 ns = 44 CPU cycles at 4 GHz.
	if got := c.cpuCycles(11); got != 44 {
		t.Errorf("cpuCycles(11) = %d, want 44", got)
	}
	// 64 B over 32 B/cycle DDR = 2 bus cycles = 8 CPU cycles.
	if got := c.BurstCycles(); got != 8 {
		t.Errorf("BurstCycles = %d, want 8", got)
	}
	d := DDR4_2133()
	// 64 B over 16 B/cycle = 4 bus cycles at 1066 MHz ≈ 16 CPU cycles.
	if got := d.BurstCycles(); got != 16 {
		t.Errorf("DDR4 BurstCycles = %d, want 16", got)
	}
}

func TestRowBufferHitSequence(t *testing.T) {
	ch := MustNew(DieStacked())
	// First access: bank closed -> row miss (activate).
	r1 := ch.Access(0, 0x0, false)
	if r1.RowBufferHit {
		t.Error("first access should not be a row hit")
	}
	// Same line region, same row -> hit, and cheaper.
	r2 := ch.Access(1_000, 0x40, false)
	if !r2.RowBufferHit {
		t.Error("second access to same row should hit")
	}
	if r2.Latency >= r1.Latency {
		t.Errorf("row hit (%d) should be faster than activate (%d)", r2.Latency, r1.Latency)
	}
}

func TestRowConflictIsSlowest(t *testing.T) {
	cfg := DieStacked()
	ch := MustNew(cfg)
	linesPerRow := cfg.RowBytes / addr.CacheLineSize
	rowStride := linesPerRow * uint64(cfg.Banks) * addr.CacheLineSize

	open := ch.Access(0, 0, false)                           // activate
	hit := ch.Access(1_000, 64, false)                       // row hit
	conflict := ch.Access(2_000, addr.HPA(rowStride), false) // same bank, new row
	if conflict.Bank != open.Bank {
		t.Fatalf("test geometry wrong: banks %d vs %d", conflict.Bank, open.Bank)
	}
	if conflict.RowBufferHit {
		t.Error("conflict access should not hit")
	}
	if !(conflict.Latency > open.Latency && open.Latency > hit.Latency) {
		t.Errorf("want conflict > activate > hit, got %d, %d, %d",
			conflict.Latency, open.Latency, hit.Latency)
	}
}

func TestBankBusyAddsWait(t *testing.T) {
	ch := MustNew(DieStacked())
	first := ch.Access(0, 0, false)
	// Immediately access the same bank again: must wait for busyUntil.
	second := ch.Access(0, 64, false)
	if second.Latency <= first.Latency-second.Latency && ch.Stats().TotalWait == 0 {
		t.Error("back-to-back same-bank access should record wait")
	}
	if ch.Stats().TotalWait == 0 {
		t.Error("TotalWait should be nonzero for back-to-back accesses")
	}
}

func TestDifferentBanksOverlapOnlyOnBus(t *testing.T) {
	cfg := DieStacked()
	ch := MustNew(cfg)
	linesPerRow := cfg.RowBytes / addr.CacheLineSize
	bankStride := linesPerRow * addr.CacheLineSize // next bank, same upper row
	a := ch.Access(0, 0, false)
	b := ch.Access(0, addr.HPA(bankStride), false)
	if a.Bank == b.Bank {
		t.Fatalf("expected different banks, both %d", a.Bank)
	}
	// Second access still serializes on the shared data bus but should not
	// pay a full extra activate wait beyond the bus occupancy.
	if b.Latency > a.Latency+cfg.cpuCycles(cfg.TRCD+cfg.TCAS)+ch.cfg.BurstCycles()+cfg.CtrlOverhead {
		t.Errorf("cross-bank access too slow: %d vs %d", b.Latency, a.Latency)
	}
}

func TestStatsAccounting(t *testing.T) {
	ch := MustNew(DieStacked())
	ch.Access(0, 0, false)
	ch.Access(10_000, 64, true)
	s := ch.Stats()
	if s.Accesses != 2 || s.Reads != 1 || s.Writes != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Errorf("row stats = %+v", s)
	}
	if s.RowBufferHitRate() != 0.5 {
		t.Errorf("RBH = %f", s.RowBufferHitRate())
	}
	if s.AvgLatency() <= 0 {
		t.Error("AvgLatency should be positive")
	}
	hm := s.HitMiss()
	if hm.Hits != 1 || hm.Misses != 1 {
		t.Errorf("HitMiss = %+v", hm)
	}
	ch.ResetStats()
	if ch.Stats().Accesses != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestEmptyStats(t *testing.T) {
	var s Stats
	if s.RowBufferHitRate() != 0 || s.AvgLatency() != 0 {
		t.Error("empty stats should report zeros")
	}
}

func TestSequentialStreamHighRBH(t *testing.T) {
	ch := MustNew(DieStacked())
	var a addr.HPA
	for i := 0; i < 10_000; i++ {
		ch.Access(uint64(i)*100, a, false)
		a += addr.CacheLineSize
	}
	if rbh := ch.Stats().RowBufferHitRate(); rbh < 0.9 {
		t.Errorf("sequential stream RBH = %f, want > 0.9", rbh)
	}
}

func TestRandomStreamLowRBH(t *testing.T) {
	ch := MustNew(DieStacked())
	x := uint64(0x12345)
	for i := 0; i < 10_000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		ch.Access(uint64(i)*1000, addr.HPA(x%(1<<30))&^63, false)
	}
	if rbh := ch.Stats().RowBufferHitRate(); rbh > 0.3 {
		t.Errorf("random stream RBH = %f, want < 0.3", rbh)
	}
}

// Property: decompose is stable and within geometry bounds, and two
// addresses in the same 2 KB-aligned region of a bank map to the same row.
func TestDecomposeProperty(t *testing.T) {
	ch := MustNew(DieStacked())
	f := func(raw uint64) bool {
		a := addr.HPA(raw & ((1 << 40) - 1))
		b1, r1 := ch.decompose(a)
		b2, r2 := ch.decompose(a)
		if b1 != b2 || r1 != r2 {
			return false
		}
		return b1 >= 0 && b1 < ch.cfg.Banks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: latency is always at least controller overhead + CAS + burst.
func TestLatencyLowerBoundProperty(t *testing.T) {
	cfg := DieStacked()
	minLat := cfg.CtrlOverhead + cfg.cpuCycles(cfg.TCAS) + cfg.BurstCycles()
	ch := MustNew(cfg)
	now := uint64(0)
	f := func(raw uint32) bool {
		now += 10_000 // keep banks idle so wait ≈ 0
		r := ch.Access(now, addr.HPA(raw)&^63, false)
		return r.Latency >= minLat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	cfg := DieStacked()
	cfg.TREFI = 1000
	cfg.TRFC = 100
	ch := MustNew(cfg)
	ch.Access(0, 0, false)
	// Same row again before the refresh: hit.
	if !ch.Access(10, 64, false).RowBufferHit {
		t.Fatal("pre-refresh access should row-hit")
	}
	// After the refresh interval the row is closed again.
	r := ch.Access(2500, 128, false)
	if r.RowBufferHit {
		t.Error("post-refresh access should not row-hit")
	}
	if ch.Stats().Refreshes == 0 {
		t.Error("refreshes not counted")
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := DieStacked()
	cfg.TREFI = 0
	ch := MustNew(cfg)
	ch.Access(0, 0, false)
	if !ch.Access(1_000_000_000, 64, false).RowBufferHit {
		t.Error("without refresh the row stays open indefinitely")
	}
	if ch.Stats().Refreshes != 0 {
		t.Error("refresh counted while disabled")
	}
}
