package pomtlb

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestPredictorDefaultsTo4K(t *testing.T) {
	var p Predictor
	if p.PredictSize(0x1234_5000) != addr.Page4K {
		t.Error("fresh predictor should predict 4KB")
	}
	if p.PredictBypass(0x1234_5000) {
		t.Error("fresh predictor should not bypass")
	}
}

func TestSizePredictorLearns(t *testing.T) {
	var p Predictor
	va := addr.VA(0x4000_0000)
	p.UpdateSize(va, addr.Page2M) // scored incorrect, learns 2M
	if p.PredictSize(va) != addr.Page2M {
		t.Error("predictor should learn 2MB")
	}
	p.UpdateSize(va, addr.Page2M) // scored correct
	if got := p.SizeAccuracy(); got != 0.5 {
		t.Errorf("accuracy = %f, want 0.5", got)
	}
	p.UpdateSize(va, addr.Page4K) // flips back
	if p.PredictSize(va) != addr.Page4K {
		t.Error("predictor should flip back to 4KB")
	}
}

func TestBypassPredictorLearns(t *testing.T) {
	var p Predictor
	va := addr.VA(0x1000)
	p.UpdateBypass(va, true) // incorrect (was false), learns true
	if !p.PredictBypass(va) {
		t.Error("should learn to bypass")
	}
	p.UpdateBypass(va, true) // correct
	if got := p.BypassAccuracy(); got != 0.5 {
		t.Errorf("bypass accuracy = %f", got)
	}
	if p.BypassStats().Total() != 2 || p.SizeStats().Total() != 0 {
		t.Error("counters mixed up")
	}
}

func TestPredictorIndexUses9BitsAbovePageOffset(t *testing.T) {
	var p Predictor
	a := addr.VA(0x0000_1000) // index bits = 1
	b := addr.VA(0x0000_1FFF) // same page → same index
	c := addr.VA(0x0000_2000) // next page → different index
	p.UpdateSize(a, addr.Page2M)
	if p.PredictSize(b) != addr.Page2M {
		t.Error("same page should share a predictor slot")
	}
	if p.PredictSize(c) != addr.Page4K {
		t.Error("adjacent page should use a different slot")
	}
	// Aliasing: 512 slots wrap every 2 MB of 4 KB pages.
	alias := addr.VA(uint64(a) + PredictorEntries<<addr.Shift4K)
	if p.PredictSize(alias) != addr.Page2M {
		t.Error("addresses 2MB apart should alias to the same slot")
	}
}

func TestPredictorReset(t *testing.T) {
	var p Predictor
	p.UpdateSize(0x1000, addr.Page2M)
	p.UpdateBypass(0x1000, true)
	p.Reset()
	if p.PredictSize(0x1000) != addr.Page4K || p.PredictBypass(0x1000) {
		t.Error("Reset should clear learned state")
	}
	if p.SizeStats().Total() != 0 {
		t.Error("Reset should clear counters")
	}
}

func TestPredictorAccuracyEmptyIsZero(t *testing.T) {
	var p Predictor
	if p.SizeAccuracy() != 0 || p.BypassAccuracy() != 0 {
		t.Error("no updates → zero accuracy")
	}
}

// Property: after UpdateSize(va, s), PredictSize(va) == s.
func TestSizeLearnsProperty(t *testing.T) {
	var p Predictor
	f := func(raw uint64, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		va := addr.Canonical(raw)
		p.UpdateSize(va, size)
		return p.PredictSize(va) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a stable page size is predicted perfectly after one training
// pass (the mechanism behind the paper's 95% accuracy).
func TestStableWorkloadHighAccuracy(t *testing.T) {
	var p Predictor
	// Region A (2 MB pages), region B (4 KB pages), disjoint slots.
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 200; i++ {
			va := addr.VA(0x4000_0000 + i<<21)
			p.UpdateSize(va, addr.Page2M)
		}
	}
	if acc := p.SizeAccuracy(); acc < 0.85 {
		t.Errorf("stable-workload accuracy = %f, want high", acc)
	}
}
