package pomtlb

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/stats"
)

// Config sizes the POM-TLB.
type Config struct {
	// SizeBytes is the total capacity across both partitions (paper
	// default 16 MB; Section 4.6 shows 8–32 MB changes results <1%).
	SizeBytes uint64
	// SmallFraction is the share of SizeBytes given to the 4 KB-page
	// partition; the rest backs the 2 MB-page partition. The paper sets
	// the split statically and observes exact sizes "do not matter much".
	SmallFraction float64
	// Ways is the set associativity. The paper uses 4 so one set is one
	// 64 B DRAM burst; other values are supported for the ablation bench
	// (sets then span multiple bursts).
	Ways int
	// BaseAddr is the host physical address the small partition is mapped
	// at; the large partition follows immediately after.
	BaseAddr uint64
	// DRAM is the die-stacked channel configuration backing the TLB.
	DRAM dram.Config
}

// DefaultConfig returns the paper's 16 MB, 4-way POM-TLB mapped at the
// bottom of host physical memory on a dedicated die-stacked channel.
func DefaultConfig() Config {
	return Config{
		SizeBytes:     16 << 20,
		SmallFraction: 0.5,
		Ways:          4,
		BaseAddr:      0,
		DRAM:          dram.DieStacked(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes == 0:
		return fmt.Errorf("pomtlb: zero size")
	case c.Ways <= 0:
		return fmt.Errorf("pomtlb: ways must be positive")
	case c.SmallFraction <= 0 || c.SmallFraction >= 1:
		return fmt.Errorf("pomtlb: SmallFraction must be in (0,1)")
	case c.BaseAddr%addr.CacheLineSize != 0:
		return fmt.Errorf("pomtlb: base address must be line aligned")
	}
	return nil
}

// setBytes returns the byte span of one set.
func (c Config) setBytes() uint64 { return uint64(c.Ways) * EntryBytes }

// Shadow observes every partition mutation in program order. The
// differential oracle (internal/oracle) attaches one per partition and
// replays each operation against an independent way-mirroring 2-bit LRU
// model, flagging any disagreement in hit/miss outcome, victim choice,
// or set placement.
type Shadow interface {
	Search(vm addr.VMID, pid addr.PID, va addr.VA, hit bool, e Entry)
	Insert(e Entry, victim Entry, evicted bool)
	InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, found bool)
	InvalidateProcess(vm addr.VMID, pid addr.PID, n int)
	InvalidateVM(vm addr.VMID, n int)
}

// hook wraps an attached Shadow behind a concrete pointer: the
// unobserved hot path pays a single-word nil check instead of a
// two-word interface comparison, and the virtual call sits behind a
// branch the CPU predicts never-taken when no oracle is attached.
type hook struct{ s Shadow }

// Partition is one of the two physically-partitioned structures
// (POM_TLB_Small or POM_TLB_Large): a set-associative array of complete
// translations, mapped at a contiguous physical address range so its sets
// can be cached in the data caches. All entries live in one contiguous
// array; set i occupies entries[i*ways : (i+1)*ways], mirroring the
// physical layout of Figure 5.
type Partition struct {
	PageSize addr.PageSize
	base     uint64
	ways     int
	numSets  uint64
	setBytes uint64
	entries  []Entry
	lookups  stats.HitMiss
	inserts  uint64
	count    int
	shadow   *hook
}

// SetShadow attaches (or, with nil, detaches) a lockstep observer.
func (p *Partition) SetShadow(s Shadow) {
	if s == nil {
		p.shadow = nil
		return
	}
	p.shadow = &hook{s}
}

// newPartition carves numSets sets out of the address range at base.
func newPartition(size addr.PageSize, base uint64, bytes uint64, ways int) *Partition {
	setBytes := uint64(ways) * EntryBytes
	n := bytes / setBytes
	// Round down to a power of two so the index is a simple mask.
	for n&(n-1) != 0 {
		n &= n - 1
	}
	if n == 0 {
		panic(fmt.Sprintf("pomtlb: partition too small for even one %d-way set", ways))
	}
	return &Partition{
		PageSize: size,
		base:     base,
		ways:     ways,
		numSets:  n,
		setBytes: setBytes,
		entries:  make([]Entry, n*uint64(ways)),
	}
}

// set returns the ways of set i.
func (p *Partition) set(i uint64) []Entry {
	w := i * uint64(p.ways)
	return p.entries[w : w+uint64(p.ways)]
}

// Sets returns the number of sets.
func (p *Partition) Sets() uint64 { return p.numSets }

// Entries returns the partition's entry capacity.
func (p *Partition) Entries() uint64 { return p.numSets * uint64(p.ways) }

// SizeBytes returns the partition's mapped byte span.
func (p *Partition) SizeBytes() uint64 { return p.numSets * p.setBytes }

// Base returns the partition's base physical address.
func (p *Partition) Base() uint64 { return p.base }

// Count returns the number of valid entries.
func (p *Partition) Count() int { return p.count }

// Reach returns how many bytes of address space a full partition maps.
func (p *Partition) Reach() uint64 { return p.Entries() * p.PageSize.Bytes() }

// SetIndex implements Equation (1)'s set mapping: the page-aligned virtual
// address, XORed with the VM ID and shifted by 6, selects the set. The
// net effect of Equation (1)'s ">> 6" on a page-aligned VA is that four
// *consecutive* virtual pages share one 64 B set line. This neighbour
// clustering is what makes the design work: a sweep that misses on pages
// p, p+1, p+2, p+3 fetches one line for all four translations, giving the
// high data-cache hit ratios of Figure 9 and, because 32 sets (128
// consecutive pages) share a DRAM row, the row-buffer locality of
// Figure 11.
func (p *Partition) SetIndex(va addr.VA, vm addr.VMID) uint64 {
	return p.setIndexForVPN(va.VPN(p.PageSize), vm)
}

// setIndexForVPN mirrors SetIndex for callers holding a raw VPN. The VM ID
// is spread by a Knuth multiplicative hash before the XOR: different VMs
// running the same guest VA range must land in different set regions, or
// their identical hot sets would fight for the same 4 ways.
func (p *Partition) setIndexForVPN(vpn uint64, vm addr.VMID) uint64 {
	spread := uint64(vm) * 2654435761
	return (vpn>>2 ^ spread) & (p.numSets - 1)
}

// SetAddr returns the host physical address of the set that va maps to —
// the address the MMU issues to the data caches (Equation 1).
func (p *Partition) SetAddr(va addr.VA, vm addr.VMID) addr.HPA {
	return addr.HPA(p.base + p.SetIndex(va, vm)*p.setBytes)
}

// LinesPerSet returns how many 64 B lines one set spans (1 for the paper's
// 4-way design).
func (p *Partition) LinesPerSet() int {
	return int((p.setBytes + addr.CacheLineSize - 1) / addr.CacheLineSize)
}

// ageAllExcept implements the 2-bit LRU update: the touched way becomes
// age 3, every other valid way in the set decays by one (saturating at 0).
func ageAllExcept(set []Entry, touched int) {
	for i := range set {
		if i == touched {
			set[i].LRU = 3
			continue
		}
		if set[i].Valid && set[i].LRU > 0 {
			set[i].LRU--
		}
	}
}

// Search probes the set for (vm, pid, va)'s translation, updating LRU bits
// on a hit. The DRAM/cache access cost is accounted by the caller; Search
// is the associative comparison done on the fetched 64 B burst.
func (p *Partition) Search(vm addr.VMID, pid addr.PID, va addr.VA) (Entry, bool) {
	vpn := va.VPN(p.PageSize)
	set := p.set(p.SetIndex(va, vm))
	for i := range set {
		if set[i].matches(vm, pid, vpn) {
			ageAllExcept(set, i)
			p.lookups.Hit()
			if p.shadow != nil {
				p.shadow.s.Search(vm, pid, va, true, set[i])
			}
			return set[i], true
		}
	}
	p.lookups.Miss()
	if p.shadow != nil {
		p.shadow.s.Search(vm, pid, va, false, Entry{})
	}
	return Entry{}, false
}

// Insert installs a translation resolved by a page walk, evicting the
// lowest-LRU way when the set is full. The paper notes the replacement
// decision needs no extra DRAM access: the LRU bits arrive with the burst.
func (p *Partition) Insert(e Entry) (victim Entry, evicted bool) {
	if !e.Valid || e.Size != p.PageSize {
		panic(fmt.Sprintf("pomtlb: inserting %v into %s partition", e, p.PageSize))
	}
	set := p.set(p.SetIndex(addr.VA(e.VPN<<p.PageSize.Shift()), e.VM))
	vi := -1
	for i := range set {
		if set[i].matches(e.VM, e.PID, e.VPN) {
			set[i].PFN = e.PFN
			set[i].Attr = e.Attr
			ageAllExcept(set, i)
			if p.shadow != nil {
				p.shadow.s.Insert(e, Entry{}, false)
			}
			return Entry{}, false
		}
		if !set[i].Valid {
			if vi == -1 || set[vi].Valid {
				vi = i
			}
			continue
		}
		if vi == -1 || (set[vi].Valid && set[i].LRU < set[vi].LRU) {
			vi = i
		}
	}
	if set[vi].Valid {
		victim, evicted = set[vi], true
	} else {
		p.count++
	}
	set[vi] = e
	ageAllExcept(set, vi)
	p.inserts++
	if p.shadow != nil {
		p.shadow.s.Insert(e, victim, evicted)
	}
	return victim, evicted
}

// InvalidatePage removes one translation (shootdown).
func (p *Partition) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64) bool {
	set := p.set(p.setIndexForVPN(vpn, vm))
	found := false
	for i := range set {
		if set[i].matches(vm, pid, vpn) {
			set[i] = Entry{}
			p.count--
			found = true
			break
		}
	}
	if p.shadow != nil {
		p.shadow.s.InvalidatePage(vm, pid, vpn, found)
	}
	return found
}

// InvalidateProcess removes every entry of (vm, pid), returning the count
// removed — required before the guest OS recycles a process ID (§2.2).
func (p *Partition) InvalidateProcess(vm addr.VMID, pid addr.PID) int {
	n := 0
	for i := range p.entries {
		if p.entries[i].Valid && p.entries[i].VM == vm && p.entries[i].PID == pid {
			p.entries[i] = Entry{}
			p.count--
			n++
		}
	}
	if p.shadow != nil {
		p.shadow.s.InvalidateProcess(vm, pid, n)
	}
	return n
}

// InvalidateVM removes every entry of a VM, returning the count removed.
func (p *Partition) InvalidateVM(vm addr.VMID) int {
	n := 0
	for i := range p.entries {
		if p.entries[i].Valid && p.entries[i].VM == vm {
			p.entries[i] = Entry{}
			p.count--
			n++
		}
	}
	if p.shadow != nil {
		p.shadow.s.InvalidateVM(vm, n)
	}
	return n
}

// CheckInvariants validates the partition's structural invariants: every
// valid entry sits in the set its (VPN, VM) index to, carries the
// partition's page size, has in-range 2-bit LRU state, no (vm, pid, vpn)
// key appears twice, and the resident count matches a full recount.
// Returns the first violation found, or nil.
func (p *Partition) CheckInvariants() error {
	type key struct {
		vm  addr.VMID
		pid addr.PID
		vpn uint64
	}
	seen := make(map[key]uint64, p.count)
	n := 0
	for si := uint64(0); si < p.numSets; si++ {
		for wi, e := range p.set(si) {
			if !e.Valid {
				continue
			}
			n++
			if e.Size != p.PageSize {
				return fmt.Errorf("pomtlb %s set %d way %d: entry size %s", p.PageSize, si, wi, e.Size)
			}
			if e.LRU > 3 {
				return fmt.Errorf("pomtlb %s set %d way %d: LRU %d out of 2-bit range", p.PageSize, si, wi, e.LRU)
			}
			if want := p.setIndexForVPN(e.VPN, e.VM); want != uint64(si) {
				return fmt.Errorf("pomtlb %s set %d way %d: vpn %#x indexes to set %d", p.PageSize, si, wi, e.VPN, want)
			}
			k := key{e.VM, e.PID, e.VPN}
			if prev, dup := seen[k]; dup {
				return fmt.Errorf("pomtlb %s set %d: duplicate key %+v (also in set %d)", p.PageSize, si, k, prev)
			}
			seen[k] = uint64(si)
		}
	}
	if n != p.count {
		return fmt.Errorf("pomtlb %s: resident count %d but recount %d", p.PageSize, p.count, n)
	}
	return nil
}

// Stats returns the associative-search hit/miss counters.
func (p *Partition) Stats() stats.HitMiss { return p.lookups }

// Inserts returns how many fills the partition has taken.
func (p *Partition) Inserts() uint64 { return p.inserts }

// ResetStats clears the counters; contents are untouched (used to discard
// warmup statistics while keeping the warmed state).
func (p *Partition) ResetStats() {
	p.lookups = stats.HitMiss{}
	p.inserts = 0
}

// SetEntries returns a copy of the set va maps to — the four translations
// that arrive together in one 64 B burst. Callers implementing the §6
// prefetching extension install the neighbours into the SRAM TLBs for
// free.
func (p *Partition) SetEntries(va addr.VA, vm addr.VMID) []Entry {
	set := p.SetView(va, vm)
	out := make([]Entry, len(set))
	copy(out, set)
	return out
}

// SetView returns the live ways of the set va maps to — the four
// translations that arrive together in one 64 B burst — without
// copying. The returned slice aliases the partition's backing array and
// must not be mutated or retained across partition mutations; the
// record-loop caller (neighbour prefetching, §6) reads it immediately,
// allocation-free.
func (p *Partition) SetView(va addr.VA, vm addr.VMID) []Entry {
	return p.set(p.SetIndex(va, vm))
}

// SetImage returns the raw 64 B-per-line memory image of a set — what a
// cached copy of the set actually holds (Figure 5's layout).
func (p *Partition) SetImage(setIdx uint64) []byte {
	img := make([]byte, p.setBytes)
	for i, e := range p.set(setIdx) {
		b := e.Encode()
		copy(img[i*EntryBytes:], b[:])
	}
	return img
}

// TLB is the complete POM-TLB: both partitions plus the dedicated
// die-stacked DRAM channel that services set fetches.
type TLB struct {
	cfg     Config
	Small   *Partition
	Large   *Partition
	channel *dram.Channel
}

// New builds a POM-TLB; it panics on invalid configuration.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	smallBytes := uint64(float64(cfg.SizeBytes) * cfg.SmallFraction)
	small := newPartition(addr.Page4K, cfg.BaseAddr, smallBytes, cfg.Ways)
	large := newPartition(addr.Page2M, cfg.BaseAddr+small.SizeBytes(), cfg.SizeBytes-small.SizeBytes(), cfg.Ways)
	return &TLB{
		cfg:     cfg,
		Small:   small,
		Large:   large,
		channel: dram.MustNew(cfg.DRAM),
	}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Partition returns the partition for a page size.
func (t *TLB) Partition(size addr.PageSize) *Partition {
	if size == addr.Page2M {
		return t.Large
	}
	return t.Small
}

// Contains reports whether a physical address falls inside the POM-TLB's
// mapped range — such accesses are TLB-entry traffic, not data.
func (t *TLB) Contains(a addr.HPA) bool {
	x := uint64(a)
	return x >= t.cfg.BaseAddr && x < t.cfg.BaseAddr+t.Small.SizeBytes()+t.Large.SizeBytes()
}

// AccessDRAM fetches (or writes back) one set from the die-stacked channel
// at CPU time now, returning the aggregate latency and whether every burst
// hit the row buffer. A 4-way set is a single 64 B burst.
func (t *TLB) AccessDRAM(now uint64, setAddr addr.HPA, lines int, write bool) dram.Result {
	res := t.channel.Access(now, setAddr, write)
	for i := 1; i < lines; i++ {
		r := t.channel.Access(now+res.Latency, setAddr+addr.HPA(i*addr.CacheLineSize), write)
		res.Latency += r.Latency
		res.RowBufferHit = res.RowBufferHit && r.RowBufferHit
	}
	return res
}

// DRAMStats exposes the channel counters (Figure 11's row-buffer hits).
func (t *TLB) DRAMStats() dram.Stats { return t.channel.Stats() }

// DRAMChannel exposes the dedicated die-stacked channel so the
// self-check harness can attach a dram.Shadow to it.
func (t *TLB) DRAMChannel() *dram.Channel { return t.channel }

// CheckInvariants validates both partitions and the backing channel.
func (t *TLB) CheckInvariants() error {
	if err := t.Small.CheckInvariants(); err != nil {
		return err
	}
	if err := t.Large.CheckInvariants(); err != nil {
		return err
	}
	return t.channel.CheckInvariants()
}

// ResetStats clears partition and channel counters; contents and bank
// state are untouched.
func (t *TLB) ResetStats() {
	t.Small.ResetStats()
	t.Large.ResetStats()
	t.channel.ResetStats()
}

// Reach returns the total address-space reach in bytes when full.
func (t *TLB) Reach() uint64 { return t.Small.Reach() + t.Large.Reach() }

// HitRate returns the combined associative-search hit ratio across both
// partitions (the POM-TLB bar of Figure 9).
func (t *TLB) HitRate() float64 {
	hm := t.Small.Stats()
	hm.Add(t.Large.Stats())
	return hm.Ratio()
}

// InvalidatePage shoots a page out of the partition matching its size.
func (t *TLB) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	return t.Partition(size).InvalidatePage(vm, pid, vpn)
}

// InvalidateVM removes all of a VM's entries from both partitions.
func (t *TLB) InvalidateVM(vm addr.VMID) int {
	return t.Small.InvalidateVM(vm) + t.Large.InvalidateVM(vm)
}

// InvalidateProcess removes all of a process's entries from both
// partitions.
func (t *TLB) InvalidateProcess(vm addr.VMID, pid addr.PID) int {
	return t.Small.InvalidateProcess(vm, pid) + t.Large.InvalidateProcess(vm, pid)
}
