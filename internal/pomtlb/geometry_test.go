package pomtlb

import (
	"testing"

	"repro/internal/addr"
)

// geometryConfig builds a POM-TLB config at a non-default capacity and
// associativity (the §4.6 ablation axes).
func geometryConfig(sizeBytes uint64, ways int) Config {
	cfg := DefaultConfig()
	cfg.SizeBytes = sizeBytes
	cfg.Ways = ways
	return cfg
}

// TestNonDefaultGeometries checks the partition carving at every
// capacity/associativity the ablation bench sweeps, plus deliberately
// awkward values: ways that don't divide the line size (3, 5) and a
// capacity whose set count is not a power of two before rounding.
func TestNonDefaultGeometries(t *testing.T) {
	for _, tc := range []struct {
		sizeMB uint64
		ways   int
	}{
		{4, 4}, {8, 4}, {32, 4}, {64, 4},
		{16, 1}, {16, 2}, {16, 8}, {16, 16},
		{16, 3}, {16, 5}, // sets span fractional lines; count rounds down
	} {
		tlb := New(geometryConfig(tc.sizeMB<<20, tc.ways))
		for _, p := range []*Partition{tlb.Small, tlb.Large} {
			if p.numSets&(p.numSets-1) != 0 {
				t.Errorf("%dMB/%d-way %s: %d sets not a power of two", tc.sizeMB, tc.ways, p.PageSize, p.numSets)
			}
			if p.SizeBytes() > tc.sizeMB<<20 {
				t.Errorf("%dMB/%d-way %s: partition overflows capacity", tc.sizeMB, tc.ways, p.PageSize)
			}
			if p.Entries() != p.numSets*uint64(tc.ways) {
				t.Errorf("%dMB/%d-way %s: entries %d", tc.sizeMB, tc.ways, p.PageSize, p.Entries())
			}
			wantLines := (uint64(tc.ways)*EntryBytes + addr.CacheLineSize - 1) / addr.CacheLineSize
			if uint64(p.LinesPerSet()) != wantLines {
				t.Errorf("%dMB/%d-way %s: LinesPerSet %d, want %d", tc.sizeMB, tc.ways, p.PageSize, p.LinesPerSet(), wantLines)
			}
		}
		// Partitions tile the range without overlap, in order.
		if tlb.Large.Base() != tlb.Small.Base()+tlb.Small.SizeBytes() {
			t.Errorf("%dMB/%d-way: large partition base %#x, small ends %#x",
				tc.sizeMB, tc.ways, tlb.Large.Base(), tlb.Small.Base()+tlb.Small.SizeBytes())
		}
		// Contains matches the carved span exactly at its edges.
		end := addr.HPA(tlb.Large.Base() + tlb.Large.SizeBytes())
		if !tlb.Contains(addr.HPA(tlb.cfg.BaseAddr)) || !tlb.Contains(end-1) || tlb.Contains(end) {
			t.Errorf("%dMB/%d-way: Contains edges wrong", tc.sizeMB, tc.ways)
		}
	}
}

// TestSetAddrInRangeNonDefault checks that every set address a
// non-default geometry can produce stays inside its partition and is
// set-stride aligned — the properties the cache probe path depends on.
func TestSetAddrInRangeNonDefault(t *testing.T) {
	for _, ways := range []int{2, 3, 8} {
		tlb := New(geometryConfig(8<<20, ways))
		for _, p := range []*Partition{tlb.Small, tlb.Large} {
			for i := 0; i < 4096; i++ {
				va := addr.VA(uint64(i) * 0x13579B * p.PageSize.Bytes())
				vm := addr.VMID(i % 5)
				a := uint64(p.SetAddr(va, vm))
				if a < p.Base() || a >= p.Base()+p.SizeBytes() {
					t.Fatalf("%d-way %s: SetAddr %#x outside [%#x,%#x)", ways, p.PageSize, a, p.Base(), p.Base()+p.SizeBytes())
				}
				if (a-p.Base())%p.setBytes != 0 {
					t.Fatalf("%d-way %s: SetAddr %#x not set-aligned", ways, p.PageSize, a)
				}
				if idx := p.SetIndex(va, vm); idx >= p.numSets {
					t.Fatalf("%d-way %s: index %d of %d sets", ways, p.PageSize, idx, p.numSets)
				}
			}
		}
	}
}

// TestNeighborClusteringAllGeometries verifies Equation (1)'s deliberate
// property at every associativity: four consecutive small pages (same
// VPN>>2) share one set, so a single burst carries all four.
func TestNeighborClusteringAllGeometries(t *testing.T) {
	for _, ways := range []int{2, 4, 8} {
		p := New(geometryConfig(8<<20, ways)).Small
		base := addr.VA(0x4000_0000)
		// VPN of base is 4-aligned, so pages 0-3 share a set and page 4
		// starts the next cluster.
		idx0 := p.SetIndex(base, 1)
		for i := uint64(1); i < 4; i++ {
			if got := p.SetIndex(base+addr.VA(i*addr.Bytes4K), 1); got != idx0 {
				t.Errorf("%d-way: neighbour page %d in set %d, want %d", ways, i, got, idx0)
			}
		}
		if got := p.SetIndex(base+addr.VA(4*addr.Bytes4K), 1); got == idx0 {
			t.Errorf("%d-way: fifth page shares the set", ways)
		}
	}
}

// TestInsertSearchNonDefaultWays fills and re-probes partitions at odd
// associativities, then validates the structural invariants — the
// replacement and residency logic must not assume 4 ways.
func TestInsertSearchNonDefaultWays(t *testing.T) {
	for _, ways := range []int{1, 3, 8} {
		tlb := New(geometryConfig(4<<20, ways))
		p := tlb.Small
		const n = 10_000
		for i := uint64(0); i < n; i++ {
			p.Insert(Entry{Valid: true, VM: 1, PID: 2, VPN: i * 7, PFN: i, Size: addr.Page4K})
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("%d-way: %v", ways, err)
		}
		if p.Count() > int(p.Entries()) {
			t.Fatalf("%d-way: %d resident in %d-entry partition", ways, p.Count(), p.Entries())
		}
		// The most recent insert is always findable (it was just touched).
		if _, ok := p.Search(1, 2, addr.VA((n-1)*7*addr.Bytes4K)); !ok {
			t.Errorf("%d-way: most recent insert not found", ways)
		}
		if err := tlb.CheckInvariants(); err != nil {
			t.Errorf("%d-way: %v", ways, err)
		}
	}
}

// TestDieStackedChannelIndependent pins that each New call gets its own
// DRAM channel — shared bank state across systems would break campaign
// determinism.
func TestDieStackedChannelIndependent(t *testing.T) {
	a, b := New(DefaultConfig()), New(DefaultConfig())
	a.AccessDRAM(0, a.Small.SetAddr(0x1000, 1), 1, false)
	if got := b.DRAMStats().Accesses; got != 0 {
		t.Fatalf("sibling TLB saw %d accesses", got)
	}
}

// FuzzEntryCodec fuzzes the 16-byte entry packing (Figure 5): every
// field must survive Encode/Decode with the documented truncation (40-bit
// VPN/PFN, 2-bit LRU), and decoding is total — any 16 bytes decode
// without panicking and re-encode to a stable image.
func FuzzEntryCodec(f *testing.F) {
	f.Add(false, uint16(0), uint16(0), uint64(0), uint64(0), false, uint8(0), uint8(0))
	f.Add(true, uint16(65535), uint16(1), uint64(1)<<40-1, uint64(1)<<39, true, uint8(3), uint8(255))
	f.Fuzz(func(t *testing.T, valid bool, vm, pid uint16, vpn, pfn uint64, large bool, lru, attr uint8) {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		e := Entry{Valid: valid, VM: addr.VMID(vm), PID: addr.PID(pid),
			VPN: vpn, PFN: pfn, Size: size, LRU: lru, Attr: attr}
		got := DecodeEntry(e.Encode())
		want := e
		want.VPN &= 1<<40 - 1
		want.PFN &= 1<<40 - 1
		want.LRU &= 3
		if got != want {
			t.Fatalf("round trip: %+v -> %+v, want %+v", e, got, want)
		}
		// Decoding is idempotent through a second round trip.
		if again := DecodeEntry(got.Encode()); again != got {
			t.Fatalf("second round trip changed entry: %+v -> %+v", got, again)
		}
	})
}
