package pomtlb

import (
	"repro/internal/addr"
	"repro/internal/stats"
)

// PredictorEntries is the number of predictor slots (Section 2.1.4: 512
// two-bit entries, 128 bytes of SRAM per core).
const PredictorEntries = 512

// Predictor is the per-core combined page-size / cache-bypass predictor of
// Sections 2.1.4–2.1.5: 512 two-bit entries indexed by 9 bits of the
// virtual address above the 4 KB offset. One bit predicts the page size
// (0 = 4 KB, 1 = 2 MB), the other whether to bypass the data caches and go
// straight to the POM-TLB DRAM.
type Predictor struct {
	size   [PredictorEntries]bool
	bypass [PredictorEntries]bool

	sizeAcc   stats.HitMiss // correct vs incorrect size predictions
	bypassAcc stats.HitMiss // correct vs incorrect bypass predictions
}

// index extracts the 9 predictor index bits (ignoring the low 12).
func index(va addr.VA) int {
	return int((uint64(va) >> addr.Shift4K) & (PredictorEntries - 1))
}

// PredictSize returns the predicted page size for the miss address.
func (p *Predictor) PredictSize(va addr.VA) addr.PageSize {
	if p.size[index(va)] {
		return addr.Page2M
	}
	return addr.Page4K
}

// UpdateSize records the actual page size once the translation resolves,
// scoring the earlier prediction and correcting the entry if it was wrong
// (the paper's single-bit update, no hysteresis).
func (p *Predictor) UpdateSize(va addr.VA, actual addr.PageSize) {
	i := index(va)
	predicted := addr.Page4K
	if p.size[i] {
		predicted = addr.Page2M
	}
	p.sizeAcc.Record(predicted == actual)
	p.size[i] = actual == addr.Page2M
}

// PredictBypass returns true when the data-cache probes should be skipped.
func (p *Predictor) PredictBypass(va addr.VA) bool {
	return p.bypass[index(va)]
}

// UpdateBypass records whether bypassing would have been the right call
// (true when the cached probes would have missed), scoring and updating
// the 1-bit entry.
func (p *Predictor) UpdateBypass(va addr.VA, shouldBypass bool) {
	i := index(va)
	p.bypassAcc.Record(p.bypass[i] == shouldBypass)
	p.bypass[i] = shouldBypass
}

// SizeAccuracy returns the fraction of correct size predictions (Fig 10).
func (p *Predictor) SizeAccuracy() float64 { return p.sizeAcc.Ratio() }

// BypassAccuracy returns the fraction of correct bypass predictions.
func (p *Predictor) BypassAccuracy() float64 { return p.bypassAcc.Ratio() }

// SizeStats returns the raw size-prediction counters.
func (p *Predictor) SizeStats() stats.HitMiss { return p.sizeAcc }

// BypassStats returns the raw bypass-prediction counters.
func (p *Predictor) BypassStats() stats.HitMiss { return p.bypassAcc }

// Reset clears prediction state and counters.
func (p *Predictor) Reset() {
	*p = Predictor{}
}

// ResetStats clears only the accuracy counters, keeping the learned
// prediction bits (so warmup training survives the measurement reset).
func (p *Predictor) ResetStats() {
	p.sizeAcc = stats.HitMiss{}
	p.bypassAcc = stats.HitMiss{}
}
