package pomtlb

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestUnifiedGeometry(t *testing.T) {
	u := NewUnified(16<<20, 4)
	if u.Entries() != (16<<20)/16 {
		t.Errorf("entries = %d", u.Entries())
	}
	if u.Sets()*4 != u.Entries() {
		t.Errorf("sets = %d", u.Sets())
	}
}

func TestUnifiedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ways": func() { NewUnified(1<<20, 0) },
		"size": func() { NewUnified(16, 4) },
		"inv":  func() { NewUnified(1<<20, 4).Insert(Entry{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUnifiedBothSizesCoexist(t *testing.T) {
	u := NewUnified(1<<20, 4)
	// Same VA interpreted at both sizes — both must be retrievable.
	va := addr.VA(0x4000_0000)
	u.Insert(Entry{Valid: true, VM: 1, PID: 1, VPN: va.VPN(addr.Page4K), PFN: 0x11, Size: addr.Page4K})
	e, ok := u.Search(1, 1, va)
	if !ok || e.Size != addr.Page4K || e.PFN != 0x11 {
		t.Fatalf("4K search = %+v, %v", e, ok)
	}
	u.Insert(Entry{Valid: true, VM: 1, PID: 1, VPN: addr.VA(0x8000_0000).VPN(addr.Page2M), PFN: 0x22, Size: addr.Page2M})
	e, ok = u.Search(1, 1, 0x8000_0123)
	if !ok || e.Size != addr.Page2M || e.PFN != 0x22 {
		t.Fatalf("2M search = %+v, %v", e, ok)
	}
	if u.Count() != 2 {
		t.Errorf("count = %d", u.Count())
	}
}

func TestUnifiedRefresh(t *testing.T) {
	u := NewUnified(1<<20, 4)
	e := Entry{Valid: true, VM: 1, PID: 1, VPN: 7, PFN: 1, Size: addr.Page4K}
	u.Insert(e)
	e.PFN = 9
	if _, ev := u.Insert(e); ev {
		t.Error("refresh should not evict")
	}
	got, _ := u.Search(1, 1, addr.VA(7<<12))
	if got.PFN != 9 {
		t.Errorf("refresh lost: %+v", got)
	}
	if u.Count() != 1 {
		t.Errorf("count = %d", u.Count())
	}
}

func TestUnifiedIsolation(t *testing.T) {
	u := NewUnified(1<<20, 4)
	u.Insert(Entry{Valid: true, VM: 1, PID: 1, VPN: 5, PFN: 1, Size: addr.Page4K})
	if _, ok := u.Search(2, 1, addr.VA(5<<12)); ok {
		t.Error("VM leak")
	}
	if _, ok := u.Search(1, 9, addr.VA(5<<12)); ok {
		t.Error("PID leak")
	}
}

// The point of skewing: a set of VPNs engineered to collide in way 0
// still mostly fits, because the other ways hash them apart. Compare
// against the split 4-way partition where such aliases share one set.
func TestSkewBeatsSetAssocOnAliases(t *testing.T) {
	const capBytes = 64 << 10 // 4096 entries
	u := NewUnified(capBytes, 4)
	split := newPartition(addr.Page4K, 0, capBytes, 4)

	// VPNs that alias in the split partition: same set index.
	stride := split.Sets() * 4 // neighbour clustering: alias stride
	var aliases []uint64
	for i := uint64(0); i < 16; i++ {
		aliases = append(aliases, i*stride)
	}
	for _, vpn := range aliases {
		u.Insert(Entry{Valid: true, VM: 1, PID: 1, VPN: vpn, PFN: vpn, Size: addr.Page4K})
		split.Insert(Entry{Valid: true, VM: 1, PID: 1, VPN: vpn, PFN: vpn, Size: addr.Page4K})
	}
	var uHits, sHits int
	for _, vpn := range aliases {
		if _, ok := u.Search(1, 1, addr.VA(vpn<<12)); ok {
			uHits++
		}
		if _, ok := split.Search(1, 1, addr.VA(vpn<<12)); ok {
			sHits++
		}
	}
	if sHits > 4 {
		t.Fatalf("split partition held %d aliases in one 4-way set?", sHits)
	}
	if uHits <= sHits {
		t.Errorf("skewing should retain more aliases: unified %d vs split %d", uHits, sHits)
	}
}

// Property: insert-then-search roundtrips for arbitrary entries.
func TestUnifiedRoundtripProperty(t *testing.T) {
	u := NewUnified(4<<20, 4)
	f := func(raw uint64, pfn uint32, vm, pid uint8, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		va := addr.Canonical(raw)
		u.Insert(Entry{Valid: true, VM: addr.VMID(vm), PID: addr.PID(pid),
			VPN: va.VPN(size), PFN: uint64(pfn), Size: size})
		e, ok := u.Search(addr.VMID(vm), addr.PID(pid), va)
		return ok && e.PFN == uint64(pfn) && e.Size == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: capacity is never exceeded and hash indices stay in range.
func TestUnifiedCapacityProperty(t *testing.T) {
	u := NewUnified(64<<10, 4)
	f := func(vpn uint16, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		u.Insert(Entry{Valid: true, VM: 1, PID: 1, VPN: uint64(vpn), PFN: 1, Size: size})
		return uint64(u.Count()) <= u.Entries()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
