package pomtlb

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/stats"
)

// Unified is the design the paper's footnote 1 leaves to future work: a
// single POM-TLB holding both page sizes, made practical with *skewed
// associativity* (Seznec) — each way indexes the array with a different
// hash of (VPN, page size), so translations that conflict in one way
// spread out in the others and no static small/large split is needed.
//
// The cost the paper avoided by splitting: a skewed set has no single
// memory address, so its ways cannot be fetched as one 64 B burst or
// cached as one line. Unified is therefore a standalone exploration (with
// its own benchmarks) rather than a core simulator mode — exactly the
// trade-off the footnote alludes to.
type Unified struct {
	ways    int
	numSets uint64
	// slots[w] is way w's array; a logical set is {slots[w][hash_w]}.
	slots [][]Entry
	// age drives an LRU-like choice among the skewed candidates.
	age   [][]uint64
	clock uint64

	lookups stats.HitMiss
	inserts uint64
	// Conflicts counts inserts that displaced a valid entry.
	Conflicts uint64
}

// NewUnified builds a skewed structure with the same total capacity as a
// split POM-TLB of sizeBytes.
func NewUnified(sizeBytes uint64, ways int) *Unified {
	if ways <= 0 {
		panic("pomtlb: ways must be positive")
	}
	entries := sizeBytes / EntryBytes
	per := entries / uint64(ways)
	for per&(per-1) != 0 {
		per &= per - 1
	}
	if per == 0 {
		panic(fmt.Sprintf("pomtlb: %d bytes too small for %d skewed ways", sizeBytes, ways))
	}
	u := &Unified{ways: ways, numSets: per}
	for w := 0; w < ways; w++ {
		u.slots = append(u.slots, make([]Entry, per))
		u.age = append(u.age, make([]uint64, per))
	}
	return u
}

// Sets returns the per-way array length.
func (u *Unified) Sets() uint64 { return u.numSets }

// Entries returns the total capacity.
func (u *Unified) Entries() uint64 { return u.numSets * uint64(u.ways) }

// hash computes way w's skewing function over (vpn, size, vm).
func (u *Unified) hash(w int, vpn uint64, size addr.PageSize, vm addr.VMID) uint64 {
	x := vpn*2 + uint64(size)
	x ^= uint64(vm) * 2654435761
	// Distinct odd multipliers per way give near-independent mappings.
	x *= 0x9E3779B97F4A7C15 ^ (uint64(w)*0x632BE59BD9B4E019 | 1)
	x ^= x >> 29
	return x & (u.numSets - 1)
}

// Search probes all ways for both page-size interpretations of va.
func (u *Unified) Search(vm addr.VMID, pid addr.PID, va addr.VA) (Entry, bool) {
	for _, size := range []addr.PageSize{addr.Page4K, addr.Page2M} {
		vpn := va.VPN(size)
		for w := 0; w < u.ways; w++ {
			i := u.hash(w, vpn, size, vm)
			e := &u.slots[w][i]
			if e.Valid && e.VM == vm && e.PID == pid && e.VPN == vpn && e.Size == size {
				u.clock++
				u.age[w][i] = u.clock
				u.lookups.Hit()
				return *e, true
			}
		}
	}
	u.lookups.Miss()
	return Entry{}, false
}

// Insert places a translation in the least-recently-used of its skewed
// candidate slots (empty slots first).
func (u *Unified) Insert(e Entry) (victim Entry, evicted bool) {
	if !e.Valid {
		panic("pomtlb: inserting invalid entry")
	}
	u.clock++
	bw, bi := -1, uint64(0)
	for w := 0; w < u.ways; w++ {
		i := u.hash(w, e.VPN, e.Size, e.VM)
		s := &u.slots[w][i]
		if s.Valid && s.VM == e.VM && s.PID == e.PID && s.VPN == e.VPN && s.Size == e.Size {
			s.PFN = e.PFN
			s.Attr = e.Attr
			u.age[w][i] = u.clock
			return Entry{}, false
		}
		if !s.Valid {
			if bw == -1 || u.slots[bw][bi].Valid {
				bw, bi = w, i
			}
			continue
		}
		if bw == -1 || (u.slots[bw][bi].Valid && u.age[w][i] < u.age[bw][bi]) {
			bw, bi = w, i
		}
	}
	if u.slots[bw][bi].Valid {
		victim, evicted = u.slots[bw][bi], true
		u.Conflicts++
	}
	u.slots[bw][bi] = e
	u.age[bw][bi] = u.clock
	u.inserts++
	return victim, evicted
}

// Count returns the number of valid entries.
func (u *Unified) Count() int {
	n := 0
	for _, way := range u.slots {
		for i := range way {
			if way[i].Valid {
				n++
			}
		}
	}
	return n
}

// Stats returns the lookup counters.
func (u *Unified) Stats() stats.HitMiss { return u.lookups }

// Inserts returns the fill count.
func (u *Unified) Inserts() uint64 { return u.inserts }
