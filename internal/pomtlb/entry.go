// Package pomtlb implements the paper's contribution: a very large,
// DRAM-resident, memory-addressable L3 TLB (the "Part-Of-Memory TLB").
//
// The POM-TLB is physically partitioned into a 4 KB-page TLB and a 2 MB-page
// TLB (Section 2.1.2). Each partition is a 4-way set-associative structure
// whose sets are exactly one 64 B DRAM burst: four 16-byte entries holding a
// complete gVA→hPA translation each (Figure 5). Because the structure is
// mapped into the physical address space, its sets are cached in the L2/L3
// data caches; the package also provides the 512-entry page-size predictor
// and 1-bit cache-bypass predictor of Sections 2.1.4–2.1.5.
package pomtlb

import (
	"encoding/binary"
	"fmt"

	"repro/internal/addr"
)

// EntryBytes is the size of one POM-TLB entry (Figure 5).
const EntryBytes = 16

// Entry is one POM-TLB translation entry. It mirrors Figure 5's metadata
// format: valid bit, VM ID, process ID, VPN, PPN and attribute bits (which
// include the 2 LRU bits used for replacement).
type Entry struct {
	Valid bool
	VM    addr.VMID
	PID   addr.PID
	VPN   uint64 // virtual page number at the partition's page size
	PFN   uint64 // host physical frame number
	Size  addr.PageSize
	// LRU is the 2-bit age used for replacement (3 = most recent).
	LRU uint8
	// Attr carries the remaining attribute/protection bits.
	Attr uint8
}

// matches reports whether the entry translates (vm, pid, vpn).
func (e Entry) matches(vm addr.VMID, pid addr.PID, vpn uint64) bool {
	return e.Valid && e.VM == vm && e.PID == pid && e.VPN == vpn
}

// Encode packs the entry into its 16-byte memory image:
//
//	[0]     flags: bit0 = valid, bit1 = size (1 = 2 MB), bits 2-3 = LRU
//	[1]     attribute/protection bits
//	[2:4]   VM ID (little endian)
//	[4:6]   process ID
//	[6:11]  VPN (40 bits)
//	[11:16] PPN (40 bits)
func (e Entry) Encode() [EntryBytes]byte {
	var b [EntryBytes]byte
	var flags byte
	if e.Valid {
		flags |= 1
	}
	if e.Size == addr.Page2M {
		flags |= 2
	}
	flags |= (e.LRU & 3) << 2
	b[0] = flags
	b[1] = e.Attr
	binary.LittleEndian.PutUint16(b[2:4], uint16(e.VM))
	binary.LittleEndian.PutUint16(b[4:6], uint16(e.PID))
	put40(b[6:11], e.VPN)
	put40(b[11:16], e.PFN)
	return b
}

// DecodeEntry unpacks a 16-byte memory image.
func DecodeEntry(b [EntryBytes]byte) Entry {
	flags := b[0]
	size := addr.Page4K
	if flags&2 != 0 {
		size = addr.Page2M
	}
	return Entry{
		Valid: flags&1 != 0,
		Size:  size,
		LRU:   (flags >> 2) & 3,
		Attr:  b[1],
		VM:    addr.VMID(binary.LittleEndian.Uint16(b[2:4])),
		PID:   addr.PID(binary.LittleEndian.Uint16(b[4:6])),
		VPN:   get40(b[6:11]),
		PFN:   get40(b[11:16]),
	}
}

// put40 stores the low 40 bits of v into 5 bytes, little endian.
func put40(dst []byte, v uint64) {
	_ = dst[4]
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
	dst[4] = byte(v >> 32)
}

// get40 loads 5 little-endian bytes.
func get40(src []byte) uint64 {
	_ = src[4]
	return uint64(src[0]) | uint64(src[1])<<8 | uint64(src[2])<<16 |
		uint64(src[3])<<24 | uint64(src[4])<<32
}

// String implements fmt.Stringer.
func (e Entry) String() string {
	if !e.Valid {
		return "entry{invalid}"
	}
	return fmt.Sprintf("entry{vm=%d pid=%d vpn=%#x→pfn=%#x %s lru=%d}",
		e.VM, e.PID, e.VPN, e.PFN, e.Size, e.LRU)
}
