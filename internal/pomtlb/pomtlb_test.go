package pomtlb

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func validEntry(vm addr.VMID, pid addr.PID, vpn, pfn uint64, size addr.PageSize) Entry {
	return Entry{Valid: true, VM: vm, PID: pid, VPN: vpn, PFN: pfn, Size: size}
}

func TestEntryEncodeDecodeRoundtrip(t *testing.T) {
	e := Entry{Valid: true, VM: 3, PID: 77, VPN: 0x7_1234_5678, PFN: 0x9_8765_4321,
		Size: addr.Page2M, LRU: 2, Attr: 0xAB}
	got := DecodeEntry(e.Encode())
	if got != e {
		t.Errorf("roundtrip: got %+v, want %+v", got, e)
	}
}

func TestEntryEncodeSize(t *testing.T) {
	e := validEntry(1, 1, 1, 1, addr.Page4K)
	b := e.Encode()
	if len(b) != 16 {
		t.Errorf("entry is %d bytes, want 16 (Figure 5)", len(b))
	}
	if b[0]&1 != 1 {
		t.Error("valid bit not set")
	}
	var inv Entry
	if DecodeEntry(inv.Encode()).Valid {
		t.Error("invalid entry round-trips as valid")
	}
}

func TestEntryString(t *testing.T) {
	if (Entry{}).String() != "entry{invalid}" {
		t.Error("invalid entry string")
	}
	if validEntry(1, 2, 3, 4, addr.Page4K).String() == "" {
		t.Error("valid entry string empty")
	}
}

// Property: Encode/Decode is the identity on well-formed entries.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(vm, pid uint16, vpn, pfn uint64, large, valid bool, lru, attrRaw uint8) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		e := Entry{
			Valid: valid, VM: addr.VMID(vm), PID: addr.PID(pid),
			VPN: vpn & (1<<40 - 1), PFN: pfn & (1<<40 - 1),
			Size: size, LRU: lru & 3, Attr: attrRaw,
		}
		return DecodeEntry(e.Encode()) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	tl := New(DefaultConfig())
	// 16 MB split in half: each partition 8 MB = 131072 sets of 64 B.
	if tl.Small.Sets() != 131072 || tl.Large.Sets() != 131072 {
		t.Errorf("sets = %d / %d, want 131072 each", tl.Small.Sets(), tl.Large.Sets())
	}
	if tl.Small.Entries() != 524288 {
		t.Errorf("small entries = %d", tl.Small.Entries())
	}
	if tl.Small.LinesPerSet() != 1 {
		t.Errorf("4-way set should be one 64B line, got %d", tl.Small.LinesPerSet())
	}
	// Partitions are adjacent and non-overlapping.
	if tl.Large.Base() != tl.Small.Base()+tl.Small.SizeBytes() {
		t.Error("large partition should start right after small")
	}
	// Reach: 524288 × 4 KB = 2 GB small + 524288 × 2 MB = 1 TB large.
	if tl.Small.Reach() != 2<<30 {
		t.Errorf("small reach = %d", tl.Small.Reach())
	}
	if tl.Reach() <= tl.Small.Reach() {
		t.Error("total reach should include the large partition")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 1 << 20, Ways: 0, SmallFraction: 0.5},
		{SizeBytes: 1 << 20, Ways: 4, SmallFraction: 0},
		{SizeBytes: 1 << 20, Ways: 4, SmallFraction: 1},
		{SizeBytes: 1 << 20, Ways: 4, SmallFraction: 0.5, BaseAddr: 3},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestSetAddrWithinPartition(t *testing.T) {
	tl := New(DefaultConfig())
	for _, va := range []addr.VA{0, 0x1000, 0xdead_beef_f000, 1<<48 - 1} {
		a := tl.Small.SetAddr(va, 1)
		if uint64(a) < tl.Small.Base() || uint64(a) >= tl.Small.Base()+tl.Small.SizeBytes() {
			t.Errorf("small SetAddr(%v) = %#x out of range", va, uint64(a))
		}
		if uint64(a)%64 != 0 {
			t.Errorf("SetAddr not line aligned: %#x", uint64(a))
		}
		if !tl.Contains(a) {
			t.Errorf("Contains(%#x) = false", uint64(a))
		}
	}
	if tl.Contains(addr.HPA(tl.Config().SizeBytes)) {
		t.Error("address past the TLB should not be contained")
	}
}

func TestVMIDXorSpreadsSets(t *testing.T) {
	tl := New(DefaultConfig())
	va := addr.VA(0x1000)
	if tl.Small.SetIndex(va, 1) == tl.Small.SetIndex(va, 2) {
		t.Error("different VMs should map the same page to different sets")
	}
}

func TestSearchInsert(t *testing.T) {
	tl := New(DefaultConfig())
	va := addr.VA(0x7f00_1234_5000)
	vpn := va.VPN(addr.Page4K)
	if _, ok := tl.Small.Search(1, 1, va); ok {
		t.Error("cold search should miss")
	}
	tl.Small.Insert(validEntry(1, 1, vpn, 0x99, addr.Page4K))
	e, ok := tl.Small.Search(1, 1, va)
	if !ok || e.PFN != 0x99 {
		t.Errorf("search = %+v, %v", e, ok)
	}
	if tl.Small.Count() != 1 || tl.Small.Inserts() != 1 {
		t.Errorf("count=%d inserts=%d", tl.Small.Count(), tl.Small.Inserts())
	}
	hm := tl.Small.Stats()
	if hm.Hits != 1 || hm.Misses != 1 {
		t.Errorf("stats = %+v", hm)
	}
}

func TestInsertWrongPartitionPanics(t *testing.T) {
	tl := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tl.Small.Insert(validEntry(1, 1, 1, 1, addr.Page2M))
}

func TestInsertInvalidPanics(t *testing.T) {
	tl := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tl.Small.Insert(Entry{Size: addr.Page4K})
}

func TestTwoBitLRUReplacement(t *testing.T) {
	cfg := DefaultConfig()
	tl := New(cfg)
	p := tl.Small
	n := p.Sets()
	// Four VPNs in the same set: with neighbour clustering the set index
	// is VPN>>2 masked, so aliases are 4×Sets pages apart.
	vpns := []uint64{0, 4 * n, 8 * n, 12 * n}
	for i, v := range vpns {
		p.Insert(validEntry(1, 1, v, uint64(i), addr.Page4K))
	}
	// Touch the first three so the fourth decays to LRU.
	for _, v := range vpns[:3] {
		p.Search(1, 1, addr.VA(v<<12))
	}
	victim, evicted := p.Insert(validEntry(1, 1, 16*n, 99, addr.Page4K))
	if !evicted || victim.VPN != vpns[3] {
		t.Errorf("victim = %+v (evicted=%v), want VPN %#x", victim, evicted, vpns[3])
	}
	if p.Count() != 4 {
		t.Errorf("count = %d, want 4 (set stays full)", p.Count())
	}
}

func TestInsertRefreshDoesNotGrow(t *testing.T) {
	tl := New(DefaultConfig())
	e := validEntry(1, 1, 42, 1, addr.Page4K)
	tl.Small.Insert(e)
	e.PFN = 7
	victim, evicted := tl.Small.Insert(e)
	if evicted {
		t.Errorf("refresh evicted %+v", victim)
	}
	got, _ := tl.Small.Search(1, 1, addr.VA(42<<12))
	if got.PFN != 7 {
		t.Errorf("refresh did not update PFN: %+v", got)
	}
	if tl.Small.Count() != 1 {
		t.Errorf("count = %d", tl.Small.Count())
	}
}

func TestInvalidatePageAndVM(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Small.Insert(validEntry(1, 1, 10, 1, addr.Page4K))
	tl.Large.Insert(validEntry(1, 1, 20, 2, addr.Page2M))
	tl.Small.Insert(validEntry(2, 1, 30, 3, addr.Page4K))

	if !tl.InvalidatePage(1, 1, 10, addr.Page4K) {
		t.Error("InvalidatePage should succeed")
	}
	if tl.InvalidatePage(1, 1, 10, addr.Page4K) {
		t.Error("double invalidate should fail")
	}
	if n := tl.InvalidateVM(1); n != 1 { // the 2M entry
		t.Errorf("InvalidateVM removed %d, want 1", n)
	}
	if tl.Small.Count() != 1 {
		t.Errorf("VM 2's entry should survive, count = %d", tl.Small.Count())
	}
}

func TestSetImage(t *testing.T) {
	tl := New(DefaultConfig())
	e := validEntry(1, 1, 42, 0x99, addr.Page4K)
	tl.Small.Insert(e)
	idx := tl.Small.SetIndex(addr.VA(42<<12), 1)
	img := tl.Small.SetImage(idx)
	if len(img) != 64 {
		t.Fatalf("set image = %d bytes, want 64", len(img))
	}
	// One of the four 16-byte slots decodes to our entry.
	found := false
	for i := 0; i < 4; i++ {
		var b [16]byte
		copy(b[:], img[i*16:])
		d := DecodeEntry(b)
		if d.Valid && d.VPN == 42 && d.PFN == 0x99 {
			found = true
		}
	}
	if !found {
		t.Error("inserted entry not present in set image")
	}
}

func TestAccessDRAMTiming(t *testing.T) {
	tl := New(DefaultConfig())
	a := tl.Small.SetAddr(0x1000, 1)
	r1 := tl.AccessDRAM(0, a, 1, false)
	if r1.Latency == 0 {
		t.Error("DRAM access should take time")
	}
	// Adjacent set in the same row, accessed before a refresh closes it:
	// row-buffer hit.
	r2 := tl.AccessDRAM(1_000, a+64, 1, false)
	if !r2.RowBufferHit {
		t.Error("adjacent set should row-buffer hit")
	}
	if tl.DRAMStats().Accesses != 2 {
		t.Errorf("accesses = %d", tl.DRAMStats().Accesses)
	}
}

func TestAccessDRAMMultiLine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ways = 8 // 128 B sets: two bursts
	tl := New(cfg)
	if tl.Small.LinesPerSet() != 2 {
		t.Fatalf("LinesPerSet = %d", tl.Small.LinesPerSet())
	}
	a := tl.Small.SetAddr(0x1000, 1)
	r := tl.AccessDRAM(0, a, tl.Small.LinesPerSet(), false)
	if tl.DRAMStats().Accesses != 2 {
		t.Errorf("8-way set should cost two bursts, got %d", tl.DRAMStats().Accesses)
	}
	single := New(DefaultConfig())
	rs := single.AccessDRAM(0, single.Small.SetAddr(0x1000, 1), 1, false)
	if r.Latency <= rs.Latency {
		t.Error("two-burst set fetch should be slower than one")
	}
}

func TestHitRateCombined(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Small.Insert(validEntry(1, 1, 1, 1, addr.Page4K))
	tl.Small.Search(1, 1, 0x1000) // hit
	tl.Large.Search(1, 1, 0x1000) // miss
	if got := tl.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %f", got)
	}
}

func TestCapacitySweepGeometry(t *testing.T) {
	for _, mb := range []uint64{8, 16, 32} {
		cfg := DefaultConfig()
		cfg.SizeBytes = mb << 20
		tl := New(cfg)
		if got := tl.Small.SizeBytes() + tl.Large.SizeBytes(); got != mb<<20 {
			t.Errorf("%dMB config maps %d bytes", mb, got)
		}
	}
}

// Property: SetIndex is always within range and stable; entries inserted
// are findable unless evicted by ≥ Ways conflicting inserts.
func TestSetIndexProperty(t *testing.T) {
	tl := New(DefaultConfig())
	f := func(raw uint64, vm uint16) bool {
		va := addr.Canonical(raw)
		i := tl.Small.SetIndex(va, addr.VMID(vm))
		j := tl.Large.SetIndex(va, addr.VMID(vm))
		return i < tl.Small.Sets() && j < tl.Large.Sets()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: insert-then-search hits with the right PFN.
func TestInsertSearchProperty(t *testing.T) {
	tl := New(DefaultConfig())
	f := func(raw uint64, pfn uint32, vm, pid uint8, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		va := addr.Canonical(raw)
		p := tl.Partition(size)
		p.Insert(validEntry(addr.VMID(vm), addr.PID(pid), va.VPN(size), uint64(pfn), size))
		e, ok := p.Search(addr.VMID(vm), addr.PID(pid), va)
		return ok && e.PFN == uint64(pfn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidateProcess(t *testing.T) {
	tl := New(DefaultConfig())
	tl.Small.Insert(validEntry(1, 1, 1, 1, addr.Page4K))
	tl.Small.Insert(validEntry(1, 2, 2, 2, addr.Page4K))
	tl.Large.Insert(validEntry(1, 1, 3, 3, addr.Page2M))
	if n := tl.InvalidateProcess(1, 1); n != 2 {
		t.Errorf("removed %d, want 2", n)
	}
	if tl.Small.Count() != 1 || tl.Large.Count() != 0 {
		t.Errorf("counts after exit: small=%d large=%d", tl.Small.Count(), tl.Large.Count())
	}
}
