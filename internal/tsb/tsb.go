// Package tsb models the SPARC Translation Storage Buffer the paper
// compares against (Section 3.3): a large, direct-mapped, software-managed
// translation buffer in ordinary memory. On a TLB miss the processor traps
// to the OS, dedicated hardware computes the TSB entry address, and the
// miss handler probes the buffer; a TSB miss falls through to a software
// page walk.
//
// The three properties that make the TSB lose to the POM-TLB (Section 4.1)
// are all modelled: the per-miss trap cost, the direct-mapped organization
// (more conflict misses than the POM-TLB's 4-way sets), and the fact that
// TSB entries are not direct guest-VA→host-PA translations, so a
// virtualized lookup needs multiple TSB probes.
package tsb

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/stats"
)

// EntryBytes is the size of one TSB entry (tag + data doubleword pair, as
// in SPARC's 16-byte TTE).
const EntryBytes = 16

// Config sizes the TSB.
type Config struct {
	// SizeBytes is the buffer capacity (compared at 16 MB, same as the
	// POM-TLB, in the paper).
	SizeBytes uint64
	// BaseAddr is where the OS allocated the buffer in physical memory.
	BaseAddr uint64
	// TrapCycles is the cost of entering and leaving the OS miss handler.
	TrapCycles uint64
	// SoftwareWalkOverhead is the extra instruction overhead of a software
	// page walk after a TSB miss, beyond the walk's memory references.
	SoftwareWalkOverhead uint64
}

// DefaultConfig returns the paper's 16 MB TSB with a SPARC-like trap cost.
func DefaultConfig() Config {
	return Config{
		SizeBytes:            16 << 20,
		BaseAddr:             0,
		TrapCycles:           30,
		SoftwareWalkOverhead: 30,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes < EntryBytes:
		return fmt.Errorf("tsb: size %d too small", c.SizeBytes)
	case c.BaseAddr%addr.CacheLineSize != 0:
		return fmt.Errorf("tsb: base address must be line aligned")
	}
	return nil
}

type entry struct {
	vm    addr.VMID
	pid   addr.PID
	vpn   uint64
	pfn   uint64
	size  addr.PageSize
	valid bool
}

// TSB is the direct-mapped translation storage buffer.
type TSB struct {
	cfg     Config
	slots   []entry
	mask    uint64
	lookups stats.HitMiss
	// Conflicts counts inserts that displaced a live entry — the
	// direct-mapped weakness the paper calls out.
	Conflicts uint64
}

// New builds a TSB, reporting configuration errors.
func New(cfg Config) (*TSB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.SizeBytes / EntryBytes
	for n&(n-1) != 0 {
		n &= n - 1
	}
	return &TSB{cfg: cfg, slots: make([]entry, n), mask: n - 1}, nil
}

// MustNew is New but panics on invalid configuration — the historical
// behavior, used by call sites whose configuration was already validated.
func MustNew(cfg Config) *TSB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TSB's configuration.
func (t *TSB) Config() Config { return t.cfg }

// Slots returns the number of direct-mapped slots.
func (t *TSB) Slots() uint64 { return uint64(len(t.slots)) }

// index computes the direct-mapped slot for a VPN.
func (t *TSB) index(vm addr.VMID, vpn uint64) uint64 {
	return (vpn ^ uint64(vm)) & t.mask
}

// EntryAddr returns the physical address of the slot a page size
// interpretation of va maps to — the address the miss handler loads, which
// therefore travels through the data caches like any other load.
func (t *TSB) EntryAddr(vm addr.VMID, va addr.VA, size addr.PageSize) addr.HPA {
	return addr.HPA(t.cfg.BaseAddr + t.index(vm, va.VPN(size))*EntryBytes)
}

// Lookup probes the slot for one page-size interpretation of va.
func (t *TSB) Lookup(vm addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) (pfn uint64, ok bool) {
	e := t.slots[t.index(vm, va.VPN(size))]
	if e.valid && e.vm == vm && e.pid == pid && e.size == size && e.vpn == va.VPN(size) {
		t.lookups.Hit()
		return e.pfn, true
	}
	t.lookups.Miss()
	return 0, false
}

// Peek reports whether the buffer holds the page's translation without
// touching the lookup statistics — the conformance suite's logical
// residual probe.
func (t *TSB) Peek(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	e := t.slots[t.index(vm, vpn)]
	return e.valid && e.vm == vm && e.pid == pid && e.size == size && e.vpn == vpn
}

// Insert stores a resolved translation, displacing whatever lived in the
// slot (direct-mapped: no choice of victim).
func (t *TSB) Insert(vm addr.VMID, pid addr.PID, vpn, pfn uint64, size addr.PageSize) {
	i := t.index(vm, vpn)
	if t.slots[i].valid {
		t.Conflicts++
	}
	t.slots[i] = entry{vm: vm, pid: pid, vpn: vpn, pfn: pfn, size: size, valid: true}
}

// InvalidatePage removes one translation (shootdown).
func (t *TSB) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	i := t.index(vm, vpn)
	e := &t.slots[i]
	if e.valid && e.vm == vm && e.pid == pid && e.vpn == vpn && e.size == size {
		*e = entry{}
		return true
	}
	return false
}

// InvalidateProcess removes every entry of (vm, pid).
func (t *TSB) InvalidateProcess(vm addr.VMID, pid addr.PID) int {
	n := 0
	for i := range t.slots {
		e := &t.slots[i]
		if e.valid && e.vm == vm && e.pid == pid {
			*e = entry{}
			n++
		}
	}
	return n
}

// Count returns the number of live entries.
func (t *TSB) Count() int {
	n := 0
	for _, e := range t.slots {
		if e.valid {
			n++
		}
	}
	return n
}

// Stats returns the lookup hit/miss counters.
func (t *TSB) Stats() stats.HitMiss { return t.lookups }

// ResetStats clears the counters; buffer contents are untouched.
func (t *TSB) ResetStats() {
	t.lookups = stats.HitMiss{}
	t.Conflicts = 0
}
