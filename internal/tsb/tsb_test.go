package tsb

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	b := MustNew(cfg)
	if b.Slots() != (16<<20)/16 {
		t.Errorf("slots = %d", b.Slots())
	}
}

func TestValidate(t *testing.T) {
	if (Config{SizeBytes: 8}).Validate() == nil {
		t.Error("tiny TSB should be invalid")
	}
	if (Config{SizeBytes: 1 << 20, BaseAddr: 7}).Validate() == nil {
		t.Error("unaligned base should be invalid")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestLookupInsert(t *testing.T) {
	b := MustNew(DefaultConfig())
	va := addr.VA(0x7f00_1234_5000)
	if _, ok := b.Lookup(1, 1, va, addr.Page4K); ok {
		t.Error("cold lookup should miss")
	}
	b.Insert(1, 1, va.VPN(addr.Page4K), 0x42, addr.Page4K)
	pfn, ok := b.Lookup(1, 1, va, addr.Page4K)
	if !ok || pfn != 0x42 {
		t.Errorf("lookup = %#x, %v", pfn, ok)
	}
	if b.Count() != 1 {
		t.Errorf("count = %d", b.Count())
	}
}

func TestIsolation(t *testing.T) {
	b := MustNew(DefaultConfig())
	va := addr.VA(0x1000)
	b.Insert(1, 1, va.VPN(addr.Page4K), 0x42, addr.Page4K)
	if _, ok := b.Lookup(1, 2, va, addr.Page4K); ok {
		t.Error("other PID should miss")
	}
	if _, ok := b.Lookup(1, 1, va, addr.Page2M); ok {
		t.Error("other size should miss")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	b := MustNew(DefaultConfig())
	stride := b.Slots() // same slot
	b.Insert(1, 1, 5, 1, addr.Page4K)
	b.Insert(1, 1, 5+stride, 2, addr.Page4K)
	if b.Conflicts != 1 {
		t.Errorf("conflicts = %d", b.Conflicts)
	}
	if _, ok := b.Lookup(1, 1, addr.VA(5<<12), addr.Page4K); ok {
		t.Error("displaced entry should miss — direct-mapped has no ways")
	}
	if pfn, ok := b.Lookup(1, 1, addr.VA((5+stride)<<12), addr.Page4K); !ok || pfn != 2 {
		t.Error("displacing entry should hit")
	}
}

func TestEntryAddrInBuffer(t *testing.T) {
	b := MustNew(DefaultConfig())
	for _, va := range []addr.VA{0, 0x1000, 0xdead_beef_0000} {
		for _, s := range []addr.PageSize{addr.Page4K, addr.Page2M} {
			a := uint64(b.EntryAddr(1, va, s))
			if a < b.Config().BaseAddr || a >= b.Config().BaseAddr+b.Config().SizeBytes {
				t.Errorf("EntryAddr(%v, %v) = %#x outside buffer", va, s, a)
			}
			if a%EntryBytes != 0 {
				t.Errorf("EntryAddr %#x not entry aligned", a)
			}
		}
	}
}

func TestInvalidatePage(t *testing.T) {
	b := MustNew(DefaultConfig())
	b.Insert(1, 1, 9, 1, addr.Page4K)
	if !b.InvalidatePage(1, 1, 9, addr.Page4K) {
		t.Error("invalidate should succeed")
	}
	if b.InvalidatePage(1, 1, 9, addr.Page4K) {
		t.Error("double invalidate should fail")
	}
	if b.Count() != 0 {
		t.Errorf("count = %d", b.Count())
	}
}

func TestStats(t *testing.T) {
	b := MustNew(DefaultConfig())
	b.Lookup(1, 1, 0x1000, addr.Page4K)
	b.Insert(1, 1, 1, 1, addr.Page4K)
	b.Lookup(1, 1, 0x1000, addr.Page4K)
	s := b.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// Property: insert-then-lookup roundtrips.
func TestInsertLookupProperty(t *testing.T) {
	b := MustNew(DefaultConfig())
	f := func(raw uint64, pfn uint32, vm, pid uint8, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		va := addr.Canonical(raw)
		b.Insert(addr.VMID(vm), addr.PID(pid), va.VPN(size), uint64(pfn), size)
		got, ok := b.Lookup(addr.VMID(vm), addr.PID(pid), va, size)
		return ok && got == uint64(pfn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidateProcess(t *testing.T) {
	b := MustNew(DefaultConfig())
	b.Insert(1, 1, 1, 1, addr.Page4K)
	b.Insert(1, 2, 2, 2, addr.Page4K)
	if n := b.InvalidateProcess(1, 1); n != 1 {
		t.Errorf("removed %d, want 1", n)
	}
	if b.Count() != 1 {
		t.Errorf("count = %d", b.Count())
	}
}
