package consolidation

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/workloads"
)

func smokePreset(t *testing.T) workloads.Consolidation {
	t.Helper()
	preset, ok := workloads.ConsolidationByName("consol-smoke")
	if !ok {
		t.Fatal("consol-smoke preset missing")
	}
	return preset
}

func TestPoolTiersAndPopularity(t *testing.T) {
	pool, err := NewPool(120, 0.05, 0.25, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pool.Tenants); got != 120 {
		t.Fatalf("pool has %d tenants, want 120", got)
	}
	if h, w, c := pool.TierCount(Hot), pool.TierCount(Warm), pool.TierCount(Cold); h != 6 || w != 30 || c != 84 {
		t.Fatalf("tier split %d/%d/%d, want 6/30/84", h, w, c)
	}
	for i, tn := range pool.Tenants {
		if tn.VMID != addr.VMID(i+1) || tn.PID != 1 {
			t.Fatalf("tenant %d has identity %d/%d, want %d/1", i, tn.VMID, tn.PID, i+1)
		}
	}
	// Popularity is Zipf over rank: sampling the CDF uniformly must hit
	// the 6 hot tenants far more often than their 5% cardinality share.
	r := splitmix{s: 99}
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if pool.Pick(r.Float64()).Tier == Hot {
			hot++
		}
	}
	if frac := float64(hot) / n; frac < 0.4 {
		t.Errorf("hot tier drew %.2f of picks, want Zipf-dominant (>0.4)", frac)
	}
}

func TestPoolValidation(t *testing.T) {
	for name, build := range map[string]func() (*Pool, error){
		"too-few-guests": func() (*Pool, error) { return NewPool(2, 0.1, 0.2, 1) },
		"too-many":       func() (*Pool, error) { return NewPool(maxGuests+1, 0.1, 0.2, 1) },
		"no-cold-tail":   func() (*Pool, error) { return NewPool(10, 0.5, 0.5, 1) },
		"bad-skew":       func() (*Pool, error) { return NewPool(10, 0.1, 0.2, 0) },
	} {
		if _, err := build(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScenarioBuild(t *testing.T) {
	scn, err := New(Config{Preset: smokePreset(t), Cores: 2, Seed: 1, TotalRecords: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if scn.Guests != 16 || scn.Storms == 0 || scn.ChurnEvery == 0 {
		t.Fatalf("unexpected scenario shape: %+v", scn)
	}
	// One tenant-switch event per quantum boundary plus the storms.
	switches := 30_000/2048 + 1
	if got := len(scn.Events); got != switches+scn.Storms {
		t.Fatalf("%d events, want %d switches + %d storms", got, switches, scn.Storms)
	}
	// Overrides: guests, phases, churn off.
	scn, err = New(Config{Preset: smokePreset(t), Cores: 2, Seed: 1, TotalRecords: 30_000,
		Guests: 32, Phases: 3, ChurnEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if scn.Guests != 32 || scn.Phases != 3 || scn.Storms != 0 {
		t.Fatalf("overrides not applied: %+v", scn)
	}
}

// TestScenarioEndToEnd runs a 100+ guest Zipf scenario with a storm
// schedule through the real simulator and checks the per-tier breakdown
// and the accounting identities — the acceptance-criteria path minus the
// sweep engine (covered in the sweep package's consolidation test).
func TestScenarioEndToEnd(t *testing.T) {
	preset, ok := workloads.ConsolidationByName("consol-churn")
	if !ok {
		t.Fatal("consol-churn preset missing")
	}
	cfg := core.DefaultConfig()
	cfg.Cores = 2
	cfg.WarmupRefs = 8_000
	cfg.MaxRefs = 12_000
	scn, err := New(Config{
		// Seed 2 is a plan whose gang schedule touches all three tiers
		// within this trace length (the cold tail is rare by design).
		Preset: preset, Cores: cfg.Cores, Seed: 2,
		TotalRecords: uint64(cfg.WarmupRefs + cfg.MaxRefs),
		ChurnEvery:   4_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if scn.Guests < 100 {
		t.Fatalf("consol-churn has %d guests, want the 100+ consolidation regime", scn.Guests)
	}
	cfg.VMs = scn.Guests
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetEvents(scn.Events)
	res, err := sys.Run(context.Background(), scn.Gen, scn.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if !res.HasTiers() {
		t.Fatal("no per-tier breakdown")
	}
	var sum uint64
	for tier := 0; tier < core.NumTiers; tier++ {
		if res.TierRecords[tier] == 0 {
			t.Errorf("tier %s saw no traffic", core.TierNames[tier])
		}
		sum += res.TierRecords[tier]
	}
	if sum != res.Records {
		t.Fatalf("tier records sum to %d, want %d", sum, res.Records)
	}
	// Zipf tenant hotness must show: the 6-ish hot guests out of 120
	// carry a popularity share far above their cardinality share.
	hotShare := res.TierShare(0)
	cardShare := float64(scn.Pool.TierCount(Hot)) / float64(scn.Guests)
	if hotShare < 3*cardShare {
		t.Errorf("hot tier share %.3f not Zipf-dominant over cardinality share %.3f", hotShare, cardShare)
	}
}

// TestScenarioDeterministicAcrossSystems pins the resume-byte-identity
// foundation: building and running the identical scenario twice (fresh
// pool, plan, generator, events) yields identical Results.
func TestScenarioDeterministicAcrossSystems(t *testing.T) {
	run := func() core.Result {
		cfg := core.DefaultConfig()
		cfg.Cores = 2
		cfg.WarmupRefs = 5_000
		cfg.MaxRefs = 5_000
		scn, err := New(Config{Preset: smokePreset(t), Cores: cfg.Cores, Seed: 7,
			TotalRecords: uint64(cfg.WarmupRefs + cfg.MaxRefs), Phases: 2})
		if err != nil {
			t.Fatal(err)
		}
		cfg.VMs = scn.Guests
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.SetEvents(scn.Events)
		res, err := sys.Run(context.Background(), scn.Gen, scn.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical scenarios diverge:\n%+v\n%+v", a, b)
	}
}

// TestChurnChangesOutcome: the storm schedule must actually perturb the
// simulation (shootdowns invalidate real translations), not just burn
// events.
func TestChurnChangesOutcome(t *testing.T) {
	run := func(churn int) core.Result {
		cfg := core.DefaultConfig()
		cfg.Cores = 2
		cfg.WarmupRefs = 4_000
		cfg.MaxRefs = 8_000
		scn, err := New(Config{Preset: smokePreset(t), Cores: cfg.Cores, Seed: 3,
			TotalRecords: uint64(cfg.WarmupRefs + cfg.MaxRefs), ChurnEvery: churn})
		if err != nil {
			t.Fatal(err)
		}
		cfg.VMs = scn.Guests
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.SetEvents(scn.Events)
		res, err := sys.Run(context.Background(), scn.Gen, scn.Name)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := run(2000), run(-1)
	if reflect.DeepEqual(with, without) {
		t.Fatal("storm schedule had no effect on the simulation")
	}
	if math.IsNaN(with.AvgPenalty()) {
		t.Fatal("NaN penalty under churn")
	}
}
