// Package consolidation composes the synthetic trace generators into
// multi-VM cloud-consolidation scenarios — the regime the paper's §2
// motivates for VMID/ASID-tagged POM-TLB entries: hundreds of guests
// sharing one translation hierarchy. A scenario is a deterministic
// cardinality-tiered tenant pool (a few hot guests carrying most of the
// Zipf popularity mass, a warm middle, a long cold tail of small
// footprints), a gang-scheduling plan that rotates tenants across cores
// at fixed record quanta, an optional schedule of TLB-shootdown storms
// and migration flushes, and optional phase-changing per-tenant working
// sets. Everything is derived from the seed with splitmix64, so scenario
// runs replay byte-identically — the invariant the sweep engine's
// kill/resume story rests on.
package consolidation

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Tier indexes the tenant popularity tiers, matching core.TierNames.
type Tier uint8

// Tier values.
const (
	Hot Tier = iota
	Warm
	Cold
)

// String names the tier.
func (t Tier) String() string {
	if int(t) < core.NumTiers {
		return core.TierNames[t]
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// Tenant is one VMID×PID address space in the pool.
type Tenant struct {
	Index int
	VMID  addr.VMID
	PID   addr.PID
	Tier  Tier
}

// Pool is the deterministic cardinality-tiered tenant pool. Popularity
// over tenants is Zipf with the configured skew: rank order follows the
// tier order, so the hot tier really is the popular one.
type Pool struct {
	Tenants []Tenant
	hotN    int
	warmN   int
	cdf     []float64
}

// maxGuests bounds the pool: VMIDs are uint16 with 0 reserved, and we
// leave headroom below the packing limit.
const maxGuests = 60_000

// NewPool builds a pool of guests split into hot/warm/cold tiers by
// hotFrac/warmFrac (each tier rounds to at least one tenant) with Zipf
// popularity skew over tenant ranks.
func NewPool(guests int, hotFrac, warmFrac, skew float64) (*Pool, error) {
	switch {
	case guests < 3:
		return nil, fmt.Errorf("consolidation: %d guests, need at least one per tier", guests)
	case guests > maxGuests:
		return nil, fmt.Errorf("consolidation: %d guests exceeds the %d VMID budget", guests, maxGuests)
	case hotFrac < 0 || warmFrac < 0 || hotFrac+warmFrac >= 1:
		return nil, fmt.Errorf("consolidation: tier fractions %.2f/%.2f leave no cold tail", hotFrac, warmFrac)
	case skew <= 0:
		return nil, fmt.Errorf("consolidation: tenant skew %f must be positive", skew)
	}
	hotN := max(1, int(math.Round(float64(guests)*hotFrac)))
	warmN := max(1, int(math.Round(float64(guests)*warmFrac)))
	if hotN+warmN >= guests {
		return nil, fmt.Errorf("consolidation: %d hot + %d warm tenants leave no cold tail of %d guests",
			hotN, warmN, guests)
	}
	p := &Pool{
		Tenants: make([]Tenant, guests),
		hotN:    hotN,
		warmN:   warmN,
		cdf:     make([]float64, guests),
	}
	sum := 0.0
	for i := range p.Tenants {
		tier := Cold
		switch {
		case i < hotN:
			tier = Hot
		case i < hotN+warmN:
			tier = Warm
		}
		p.Tenants[i] = Tenant{Index: i, VMID: addr.VMID(i + 1), PID: 1, Tier: tier}
		sum += 1 / math.Pow(float64(i+1), skew)
		p.cdf[i] = sum
	}
	for i := range p.cdf {
		p.cdf[i] /= sum
	}
	return p, nil
}

// Pick maps a uniform draw in [0,1) to a tenant by Zipf popularity.
func (p *Pool) Pick(u float64) *Tenant {
	i := sort.SearchFloat64s(p.cdf, u)
	if i >= len(p.Tenants) {
		i = len(p.Tenants) - 1
	}
	return &p.Tenants[i]
}

// TierCount returns how many tenants a tier holds.
func (p *Pool) TierCount(t Tier) int {
	switch t {
	case Hot:
		return p.hotN
	case Warm:
		return p.warmN
	default:
		return len(p.Tenants) - p.hotN - p.warmN
	}
}

// Config parameterizes a scenario build.
type Config struct {
	Preset workloads.Consolidation
	// Cores is the simulated core count — the number of gang-scheduling
	// slots.
	Cores int
	// Seed drives every random choice (plan, storms, tenant streams).
	Seed uint64
	// TotalRecords is the trace length (warmup + measured) the event
	// schedule must cover.
	TotalRecords uint64
	// Guests, ChurnEvery and Phases override the preset when positive
	// (sweep axes); ChurnEvery < 0 disables churn outright.
	Guests     int
	ChurnEvery int
	Phases     int
}

// Scenario is a ready-to-run consolidation workload: the composite
// generator plus the scheduled storm of scenario events. Attach with
// core.System.SetEvents and run Gen through core.System.Run.
type Scenario struct {
	Name   string
	Guests int
	Phases int
	// ChurnEvery and Storms describe the resolved churn schedule.
	ChurnEvery uint64
	Storms     int
	Pool       *Pool
	Gen        trace.Generator
	Events     []core.Event
}

// splitmix is the same deterministic generator the trace package uses,
// duplicated here because scenario-plan randomness must not perturb (or
// be perturbed by) any tenant's trace stream.
type splitmix struct{ s uint64 }

func (r *splitmix) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitmix) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// mix derives a sub-seed; tenants and phases get decorrelated streams.
func mix(seed, salt uint64) uint64 {
	r := splitmix{s: seed ^ (salt+1)*0xD1342543DE82EF95}
	return r.Uint64()
}

// New builds a scenario. The build is deterministic in Config.
func New(cfg Config) (*Scenario, error) {
	preset := cfg.Preset
	guests := preset.Guests
	if cfg.Guests > 0 {
		guests = cfg.Guests
	}
	phases := preset.Phases
	if cfg.Phases > 0 {
		phases = cfg.Phases
	}
	churn := preset.ChurnEvery
	if cfg.ChurnEvery > 0 {
		churn = uint64(cfg.ChurnEvery)
	} else if cfg.ChurnEvery < 0 {
		churn = 0
	}
	switch {
	case preset.Name == "":
		return nil, fmt.Errorf("consolidation: preset has no name")
	case cfg.Cores <= 0 || cfg.Cores > 256:
		return nil, fmt.Errorf("consolidation: cores %d out of range", cfg.Cores)
	case cfg.TotalRecords == 0:
		return nil, fmt.Errorf("consolidation: zero-length trace")
	}
	pool, err := NewPool(guests, preset.HotFrac, preset.WarmFrac, preset.TenantSkew)
	if err != nil {
		return nil, err
	}
	quantum := preset.QuantumRecords
	if quantum == 0 {
		quantum = 4096
	}

	// Gang-scheduling plan: for every quantum, each core slot draws a
	// tenant by Zipf popularity (re-rolling per slot so one quantum can
	// host several hot guests at once). Precomputed so the generator and
	// the event schedule agree on it exactly.
	planRNG := splitmix{s: mix(cfg.Seed, 0x9a4c)}
	quanta := int(cfg.TotalRecords/quantum) + 2
	plan := make([][]int, quanta)
	for q := range plan {
		plan[q] = make([]int, cfg.Cores)
		for slot := range plan[q] {
			plan[q][slot] = pool.Pick(planRNG.Float64()).Index
		}
	}

	scn := &Scenario{
		Name:       preset.Name,
		Guests:     guests,
		Phases:     max(phases, 1),
		ChurnEvery: churn,
		Pool:       pool,
	}
	scn.Gen = &Gen{
		cores:   cfg.Cores,
		quantum: quantum,
		plan:    plan,
		gens:    make([]trace.Generator, guests),
		build: func(i int) trace.Generator {
			return tenantGen(cfg, preset, pool.Tenants[i], scn.Phases)
		},
	}

	// Tenant-switch events at every quantum boundary. At counts
	// consumed records while the plan indexes generated records; the
	// scheduler's bounded per-core buffering smears the boundary by a
	// deterministic handful of records — the simulated analogue of a
	// context switch draining in-flight work.
	for q := 0; uint64(q)*quantum <= cfg.TotalRecords; q++ {
		assign := plan[q%len(plan)]
		at := uint64(q) * quantum
		scn.Events = append(scn.Events, core.Event{At: at, Fire: func(s *core.System) {
			for slot, ti := range assign {
				t := pool.Tenants[ti]
				if err := s.SetCoreTenant(slot, t.VMID, t.PID, uint8(t.Tier)); err != nil {
					panic(fmt.Sprintf("consolidation: tenant switch: %v", err))
				}
			}
		}})
	}

	// Shootdown storms: every churn interval, a burst of page shootdowns
	// against popularity-picked victims (hot guests absorb most of the
	// invalidation traffic, as real consolidated hosts see), with every
	// Nth storm also flushing one victim end to end — the VM-migration /
	// ballooning case. Victim addresses are precomputed so the schedule
	// is pure data by the time the simulation runs.
	if churn > 0 {
		stormRNG := splitmix{s: mix(cfg.Seed, 0x51f0)}
		size := preset.StormShootdowns
		if size <= 0 {
			size = 8
		}
		storm := 0
		for at := churn; at <= cfg.TotalRecords; at += churn {
			storm++
			type blast struct {
				vmid addr.VMID
				pid  addr.PID
				va   addr.VA
			}
			blasts := make([]blast, size)
			for j := range blasts {
				t := pool.Pick(stormRNG.Float64())
				prof := tierProfile(preset, *t)
				params := trace.Params{
					Seed:           mix(cfg.Seed, uint64(t.Index)),
					FootprintBytes: prof.FootprintBytes,
					LargeFrac:      prof.LargePagePct / 100,
					Threads:        1,
					BaseVA:         prof.BaseVA,
				}
				_, _, smallBase, smallBytes := params.Regions()
				pages := smallBytes / addr.Bytes4K
				page := stormRNG.Uint64() % max(pages, 1)
				blasts[j] = blast{t.VMID, t.PID, addr.VA(smallBase + page*addr.Bytes4K)}
			}
			var migrate *Tenant
			if preset.MigrateEveryStorms > 0 && storm%preset.MigrateEveryStorms == 0 {
				migrate = pool.Pick(stormRNG.Float64())
			}
			scn.Events = append(scn.Events, core.Event{At: at, Fire: func(s *core.System) {
				for _, b := range blasts {
					s.Shootdown(b.vmid, b.pid, b.va, addr.Page4K)
				}
				if migrate != nil {
					s.ProcessExit(migrate.VMID, migrate.PID)
				}
			}})
			scn.Storms++
		}
	}
	return scn, nil
}

// tierProfile returns the preset's trace profile for a tier, rebased to
// the tenant's private VA window. Tenants get disjoint 1 GB windows:
// core scheduling smears a bounded handful of records across tenant
// switches (see core.Event), and with a shared heap base one tenant's
// 2 MB region would overlap another's 4 KB region — a stray record would
// then demand-map a conflicting page size into the wrong address space.
// Disjoint windows make every VA region's page size globally consistent.
func tierProfile(preset workloads.Consolidation, t Tenant) workloads.Profile {
	var prof workloads.Profile
	switch t.Tier {
	case Hot:
		prof = preset.Hot
	case Warm:
		prof = preset.Warm
	default:
		prof = preset.Cold
	}
	prof.BaseVA = tenantBaseVA + uint64(t.Index)<<tenantVAShift
	return prof
}

// Tenant VA windows: 1 GB apart starting at the trace default heap base.
// 60k tenants end at ~2^46, inside the 48-bit canonical range, and 1 GB
// comfortably holds the preset footprints plus the layout gap.
const (
	tenantBaseVA  = 0x10_0000_0000
	tenantVAShift = 30
)

// tenantGen builds one tenant's private trace stream: a single-threaded
// instance of its tier profile, optionally phase-cycled so the working
// set grows back and forth between ~35% and 100% of the tier footprint.
func tenantGen(cfg Config, preset workloads.Consolidation, t Tenant, phases int) trace.Generator {
	prof := tierProfile(preset, t)
	seed := mix(cfg.Seed, uint64(t.Index))
	if phases <= 1 {
		return prof.Generator(1, seed)
	}
	phaseLen := cfg.TotalRecords / uint64(cfg.Cores*phases)
	if phaseLen < 2048 {
		phaseLen = 2048
	}
	// The 2 MB-page region must be identical in every phase: phases share
	// the tenant's VA window, and shrinking the large region would move
	// the 4 KB region's base over addresses an earlier phase mapped as
	// 2 MB pages. So phases scale the 4 KB tail only.
	largeFull := uint64(float64(prof.FootprintBytes)*prof.LargePagePct/100) &^ (addr.Bytes2M - 1)
	phs := make([]trace.Phase, phases)
	for k := range phs {
		p := prof
		frac := 0.35 + 0.65*float64(k+1)/float64(phases)
		p.FootprintBytes = uint64(float64(prof.FootprintBytes) * frac)
		if p.FootprintBytes < largeFull+addr.Bytes2M {
			p.FootprintBytes = largeFull + addr.Bytes2M
		}
		if largeFull > 0 {
			// Chosen so the layout's truncation lands exactly on largeFull.
			p.LargePagePct = 100 * (float64(largeFull) + float64(addr.Bytes2M)/2) / float64(p.FootprintBytes)
		}
		phs[k] = trace.Phase{Records: phaseLen, Gen: p.Generator(1, mix(seed, uint64(k)))}
	}
	return trace.NewPhased(phs...)
}

// Gen interleaves the pool's tenant streams under the gang-scheduling
// plan: generated record i belongs to slot i%cores, and during quantum q
// slot s draws from plan[q][s]'s tenant, re-threaded onto the slot so
// the core scheduler routes it to the right core. Tenant sub-generators
// build lazily (a thousand-guest pool only pays for tenants the plan
// actually schedules) but deterministically — construction depends only
// on the tenant index and seed, never on when it happens.
type Gen struct {
	cores   int
	quantum uint64
	plan    [][]int
	gens    []trace.Generator
	build   func(i int) trace.Generator
	count   uint64
}

// Next implements trace.Generator.
func (g *Gen) Next() trace.Record {
	slot := int(g.count % uint64(g.cores))
	q := int(g.count/g.quantum) % len(g.plan)
	ti := g.plan[q][slot]
	sub := g.gens[ti]
	if sub == nil {
		sub = g.build(ti)
		g.gens[ti] = sub
	}
	rec := sub.Next()
	rec.Thread = uint8(slot)
	g.count++
	return rec
}

// Reset implements trace.Generator: rewind every built tenant stream and
// the plan cursor. Unbuilt tenants need nothing — they are built fresh
// on first use either way.
func (g *Gen) Reset() {
	g.count = 0
	for _, sub := range g.gens {
		if sub != nil {
			sub.Reset()
		}
	}
}

func init() {
	trace.RegisterFactory("consolidation", func(seed uint64) trace.Generator {
		preset, ok := workloads.ConsolidationByName("consol-smoke")
		if !ok {
			panic("consolidation: consol-smoke preset missing")
		}
		scn, err := New(Config{Preset: preset, Cores: 2, Seed: seed, TotalRecords: 20_000})
		if err != nil {
			panic(err)
		}
		return scn.Gen
	})
	trace.RegisterFactory("consolidation-phased", func(seed uint64) trace.Generator {
		preset, ok := workloads.ConsolidationByName("consol-smoke")
		if !ok {
			panic("consolidation: consol-smoke preset missing")
		}
		scn, err := New(Config{Preset: preset, Cores: 2, Seed: seed, TotalRecords: 20_000, Phases: 3})
		if err != nil {
			panic(err)
		}
		return scn.Gen
	})
}
