package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workloads"
)

func TestSpeedupIdentity(t *testing.T) {
	// Scheme penalty equal to baseline penalty → no speedup.
	s, err := Speedup(Input{OverheadFrac: 0.2, BaselinePenalty: 100, SchemePenalty: 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("speedup = %f, want 1", s)
	}
}

func TestSpeedupEliminatesOverhead(t *testing.T) {
	// Zero scheme penalty removes the whole overhead fraction.
	s, err := Speedup(Input{OverheadFrac: 0.19, BaselinePenalty: 169, SchemePenalty: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - 0.19)
	if math.Abs(s-want) > 1e-12 {
		t.Errorf("speedup = %f, want %f", s, want)
	}
}

func TestSpeedupMCFExample(t *testing.T) {
	// mcf: f = 19.01%, P_base = 169. A simulated POM penalty of ~45
	// cycles gives the mid-teens improvement Figure 8 shows.
	p, _ := workloads.ByName("mcf")
	imp, err := ImprovementPct(FromProfile(p, 45))
	if err != nil {
		t.Fatal(err)
	}
	if imp < 10 || imp > 20 {
		t.Errorf("mcf improvement = %.1f%%, want mid-teens", imp)
	}
}

func TestStreamclusterHasNoHeadroom(t *testing.T) {
	// streamcluster: f = 2.11% — even a perfect scheme gains ~2%.
	p, _ := workloads.ByName("streamcluster")
	imp, err := ImprovementPct(FromProfile(p, 0))
	if err != nil {
		t.Fatal(err)
	}
	if imp > 2.5 {
		t.Errorf("streamcluster improvement = %.1f%% exceeds its overhead", imp)
	}
}

func TestValidate(t *testing.T) {
	bad := []Input{
		{OverheadFrac: -0.1, BaselinePenalty: 100},
		{OverheadFrac: 1.0, BaselinePenalty: 100},
		{OverheadFrac: 0.1, BaselinePenalty: 0},
		{OverheadFrac: 0.1, BaselinePenalty: 100, SchemePenalty: -1},
	}
	for i, in := range bad {
		if _, err := Speedup(in); err == nil {
			t.Errorf("input %d should error", i)
		}
		if _, err := ImprovementPct(in); err == nil {
			t.Errorf("input %d should error via ImprovementPct", i)
		}
	}
}

func TestEquations(t *testing.T) {
	if CIdeal(1000, 300) != 700 {
		t.Error("CIdeal")
	}
	if CIdeal(100, 300) != 0 {
		t.Error("CIdeal should clamp")
	}
	if PAvg(300, 3) != 100 {
		t.Error("PAvg")
	}
	if PAvg(300, 0) != 0 {
		t.Error("PAvg zero misses")
	}
	if CScheme(700, 3, 50) != 850 {
		t.Error("CScheme")
	}
	if IPC(1700, 850) != 2 {
		t.Error("IPC")
	}
	if IPC(1700, 0) != 0 {
		t.Error("IPC zero cycles")
	}
}

func TestEquationsConsistentWithSpeedup(t *testing.T) {
	// The fraction form and the absolute form must agree.
	const (
		cTotal = uint64(1_000_000)
		pTotal = uint64(190_000)
		mTotal = uint64(1_000)
		pNew   = 50.0
	)
	cIdeal := CIdeal(cTotal, pTotal)
	absSpeedup := float64(cTotal) / CScheme(cIdeal, mTotal, pNew)
	in := Input{
		OverheadFrac:    float64(pTotal) / float64(cTotal),
		BaselinePenalty: PAvg(pTotal, mTotal),
		SchemePenalty:   pNew,
	}
	fracSpeedup, err := Speedup(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(absSpeedup-fracSpeedup) > 1e-9 {
		t.Errorf("absolute %f vs fraction %f", absSpeedup, fracSpeedup)
	}
}

func TestGeomeanImprovementPct(t *testing.T) {
	got := GeomeanImprovementPct([]float64{1.1, 1.1})
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("geomean improvement = %f", got)
	}
}

// Property: speedup is monotonically decreasing in the scheme penalty and
// crosses 1 exactly at the baseline penalty.
func TestSpeedupMonotoneProperty(t *testing.T) {
	f := func(fRaw, pRaw uint16, d uint8) bool {
		frac := float64(fRaw%90)/100 + 0.01
		base := float64(pRaw%1000) + 10
		lo, hi := base-float64(d%10)-1, base+float64(d%10)+1
		sLo, err1 := Speedup(Input{OverheadFrac: frac, BaselinePenalty: base, SchemePenalty: lo})
		sHi, err2 := Speedup(Input{OverheadFrac: frac, BaselinePenalty: base, SchemePenalty: hi})
		if err1 != nil || err2 != nil {
			return false
		}
		return sLo > 1 && sHi < 1 && sLo > sHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: speedup never exceeds 1/(1-f), the bound from eliminating the
// entire overhead.
func TestSpeedupBoundProperty(t *testing.T) {
	f := func(fRaw, pRaw, sRaw uint16) bool {
		frac := float64(fRaw%90)/100 + 0.01
		base := float64(pRaw%1000) + 1
		scheme := float64(sRaw % 2000)
		s, err := Speedup(Input{OverheadFrac: frac, BaselinePenalty: base, SchemePenalty: scheme})
		if err != nil {
			return false
		}
		return s <= 1/(1-frac)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromProfileNative(t *testing.T) {
	p, _ := workloads.ByName("astar")
	in := FromProfileNative(p, 50)
	if math.Abs(in.OverheadFrac-0.1389) > 1e-9 || in.BaselinePenalty != 98 {
		t.Errorf("native input = %+v", in)
	}
	inv := FromProfile(p, 50)
	if math.Abs(inv.OverheadFrac-0.1608) > 1e-9 || inv.BaselinePenalty != 114 {
		t.Errorf("virt input = %+v", inv)
	}
}
