// Package perfmodel implements the paper's linear additive performance
// model (Section 3.2–3.3, Equations 2–5).
//
// The paper measures each workload's baseline on real hardware: total
// instructions I, total cycles C, L2 TLB miss count M and total miss
// penalty P (perf counters). From these it derives the ideal cycles
//
//	C_ideal = C_total − P_total                            (2)
//	P_avg   = P_total / M_total                            (3)
//
// and evaluates a scheme by substituting its simulated average penalty:
//
//	C_scheme = C_ideal + M_total × P_scheme                (4)
//	IPC      = I_total / C_scheme                          (5)
//
// Dividing (4) by C_total shows only two measured quantities matter for
// the speedup: the translation overhead fraction f = P_total/C_total and
// the measured baseline penalty P_base = P_avg:
//
//	speedup = C_total / C_scheme = 1 / (1 − f + f × P_scheme/P_base)
//
// which is how this package combines Table 2's published numbers with the
// simulator's per-scheme penalties.
package perfmodel

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// Input is one workload's model inputs.
type Input struct {
	// OverheadFrac is f: the fraction of baseline execution time spent in
	// translation after L2 TLB misses (Table 2 "Overhead Virtual %"/100,
	// or the native column for bare-metal runs).
	OverheadFrac float64
	// BaselinePenalty is the measured baseline cycles per L2 TLB miss.
	BaselinePenalty float64
	// SchemePenalty is the simulated cycles per L2 TLB miss under the
	// evaluated scheme.
	SchemePenalty float64
}

// Validate reports input errors.
func (in Input) Validate() error {
	switch {
	case in.OverheadFrac < 0 || in.OverheadFrac >= 1:
		return fmt.Errorf("perfmodel: overhead fraction %f out of [0,1)", in.OverheadFrac)
	case in.BaselinePenalty <= 0:
		return fmt.Errorf("perfmodel: baseline penalty must be positive")
	case in.SchemePenalty < 0:
		return fmt.Errorf("perfmodel: negative scheme penalty")
	}
	return nil
}

// Speedup returns C_baseline / C_scheme for the input.
func Speedup(in Input) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	denom := (1 - in.OverheadFrac) + in.OverheadFrac*in.SchemePenalty/in.BaselinePenalty
	return 1 / denom, nil
}

// ImprovementPct returns the percentage performance improvement
// (Figure 8's y-axis): 100 × (speedup − 1).
func ImprovementPct(in Input) (float64, error) {
	s, err := Speedup(in)
	if err != nil {
		return 0, err
	}
	return 100 * (s - 1), nil
}

// FromProfile builds the model input for a virtualized run of a Table 2
// workload with a simulated scheme penalty.
func FromProfile(p workloads.Profile, schemePenalty float64) Input {
	return Input{
		OverheadFrac:    p.OverheadVirtPct / 100,
		BaselinePenalty: p.CyclesPerMissVirt,
		SchemePenalty:   schemePenalty,
	}
}

// FromProfileNative is FromProfile for bare-metal runs.
func FromProfileNative(p workloads.Profile, schemePenalty float64) Input {
	return Input{
		OverheadFrac:    p.OverheadNativePct / 100,
		BaselinePenalty: p.CyclesPerMissNative,
		SchemePenalty:   schemePenalty,
	}
}

// CIdeal implements Equation (2) for callers that carry absolute counts.
func CIdeal(cTotal, pTotal uint64) uint64 {
	if pTotal > cTotal {
		return 0
	}
	return cTotal - pTotal
}

// PAvg implements Equation (3).
func PAvg(pTotal, mTotal uint64) float64 {
	if mTotal == 0 {
		return 0
	}
	return float64(pTotal) / float64(mTotal)
}

// CScheme implements Equation (4).
func CScheme(cIdeal, mTotal uint64, pScheme float64) float64 {
	return float64(cIdeal) + float64(mTotal)*pScheme
}

// IPC implements Equation (5).
func IPC(iTotal uint64, cScheme float64) float64 {
	if cScheme <= 0 {
		return 0
	}
	return float64(iTotal) / cScheme
}

// GeomeanImprovementPct aggregates per-workload speedups the way the paper
// reports its averages: geometric mean of the speedups, expressed as a
// percentage improvement.
func GeomeanImprovementPct(speedups []float64) float64 {
	return 100 * (stats.Geomean(speedups) - 1)
}
