package server

import (
	"errors"
	"sync"
	"time"

	"repro/internal/trace"
)

// Sentinel errors for the ingest queue.
var (
	// ErrQueueFull is returned when a batch cannot be enqueued before the
	// backpressure deadline: the simulation worker is not keeping up with
	// this session's ingest rate. The HTTP layer maps it to 429.
	ErrQueueFull = errors.New("server: session ingest queue full")
	// ErrSessionFinished is returned when records arrive after the stream
	// was finished.
	ErrSessionFinished = errors.New("server: session stream already finished")
	// ErrSessionClosed is returned when records arrive after the session
	// was aborted or reaped.
	ErrSessionClosed = errors.New("server: session closed")
)

// errStreamAborted is the panic value streamGen.Next uses to unwind a
// simulation blocked on input when its session is torn down. The session
// worker runs inside resilience.Safe, which converts the panic into a
// *resilience.PanicError the worker recognizes via errors.Is — the same
// panic-isolation seam the campaign runner uses for faulty cells.
var errStreamAborted = errors.New("server: stream aborted")

// errStreamEmpty unwinds a worker whose stream finished without a single
// record: there is nothing to simulate, not even by wrapping.
var errStreamEmpty = errors.New("server: stream finished with no records")

// streamGen adapts an HTTP ingest stream to trace.Generator for
// core.System.Advance. Three regimes:
//
//   - Open stream: Next serves ingested records in arrival order and
//     blocks when the simulation runs ahead of the upload (the scheduler
//     may pull ahead of the commit count while sorting records onto
//     cores, so blocking here — not an error — is the correct handling
//     of a slow client).
//   - Finished stream: Next wraps around like trace.Replay, so a session
//     whose upload is shorter than its configured reference count behaves
//     exactly like an offline replay of the same trace — the property the
//     HTTP/offline parity test pins.
//   - Closed session: Next panics errStreamAborted to unwind the blocked
//     simulation (recovered by the worker's resilience.Safe envelope).
//
// Producers (ingest handlers) see bounded-queue backpressure: append
// blocks while the un-pulled backlog exceeds queueCap, up to a deadline,
// then fails with ErrQueueFull. The full record history is retained (16
// bytes per record, like an in-memory replay) because the wrap regime
// needs it; the server bounds it with its max-ingest cap.
type streamGen struct {
	mu   sync.Mutex
	more *sync.Cond // consumer side: data arrived, or finish/abort
	room *sync.Cond // producer side: backlog shrank, or finish/abort

	recs     []trace.Record
	i        int // next index Next serves
	loops    int // wrap count after finish
	queueCap int

	finished bool
	aborted  bool
}

func newStreamGen(queueCap int) *streamGen {
	g := &streamGen{queueCap: queueCap}
	g.more = sync.NewCond(&g.mu)
	g.room = sync.NewCond(&g.mu)
	return g
}

// Next implements trace.Generator.
func (g *streamGen) Next() trace.Record {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.i >= len(g.recs) && !g.finished && !g.aborted {
		g.more.Wait()
	}
	if g.aborted {
		panic(errStreamAborted)
	}
	if g.i >= len(g.recs) {
		if len(g.recs) == 0 {
			panic(errStreamEmpty)
		}
		g.i = 0
		g.loops++
	}
	rec := g.recs[g.i]
	g.i++
	g.room.Broadcast()
	return rec
}

// Reset implements trace.Generator. Sessions never rewind mid-flight; the
// method exists only to satisfy the interface.
func (g *streamGen) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.i = 0
	g.loops = 0
}

// append enqueues a batch, blocking while the un-pulled backlog would
// exceed queueCap, until the deadline passes. The whole batch is accepted
// or none of it is.
func (g *streamGen) append(batch []trace.Record, deadline time.Time) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		switch {
		case g.aborted:
			return ErrSessionClosed
		case g.finished:
			return ErrSessionFinished
		case len(g.recs)-g.i+len(batch) <= g.queueCap:
			g.recs = append(g.recs, batch...)
			g.more.Broadcast()
			return nil
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			return ErrQueueFull
		}
		// sync.Cond has no timed wait: arm a one-shot broadcast at the
		// deadline so the loop re-checks and times out precisely.
		t := time.AfterFunc(wait, func() {
			g.mu.Lock()
			g.room.Broadcast()
			g.mu.Unlock()
		})
		g.room.Wait()
		t.Stop()
	}
}

// finish marks the end of the upload: Next switches to replay-wrap.
func (g *streamGen) finish() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.finished = true
	g.more.Broadcast()
	g.room.Broadcast()
}

// abort tears the stream down: blocked consumers unwind via panic, blocked
// producers fail with ErrSessionClosed.
func (g *streamGen) abort() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.aborted = true
	g.more.Broadcast()
	g.room.Broadcast()
}

// stat returns (ingested, pulled, backlog, loops, finished). Backlog is
// the un-simulated ingest queue depth; once the stream is finished the
// remaining records are a replay tail, not a queue, so it reports 0.
func (g *streamGen) stat() (ingested, pulled, backlog, loops int, finished bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	backlog = len(g.recs) - g.i
	if g.finished {
		backlog = 0
	}
	return len(g.recs), g.i, backlog, g.loops, g.finished
}
