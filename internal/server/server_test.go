package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// parityGen returns the deterministic trace both sides of the parity test
// replay.
func parityGen() trace.Generator {
	return trace.NewUniform(trace.Params{
		Seed:           23,
		FootprintBytes: 8 << 20,
		LargeFrac:      0.3,
		Threads:        2,
		MeanGap:        6,
		WriteFrac:      0.25,
	})
}

// encodeTrace frames records as one POMTRC01 stream.
func encodeTrace(t testing.TB, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// dribbleReader yields at most n bytes per Read, so a request body
// crosses record boundaries mid-record the way a chunked upload does.
type dribbleReader struct {
	data []byte
	n    int
}

func (d *dribbleReader) Read(p []byte) (int, error) {
	if len(d.data) == 0 {
		return 0, io.EOF
	}
	n := min(d.n, min(len(p), len(d.data)))
	copy(p, d.data[:n])
	d.data = d.data[n:]
	return n, nil
}

// testClient wraps the HTTP plumbing the server tests share.
type testClient struct {
	t    testing.TB
	base string
	c    *http.Client
}

func newTestClient(t testing.TB, base string) *testClient {
	return &testClient{t: t, base: base, c: &http.Client{Timeout: 30 * time.Second}}
}

// do sends a request and decodes the JSON response into out (when non-nil).
func (tc *testClient) do(method, path string, body io.Reader, out any) (int, http.Header) {
	tc.t.Helper()
	req, err := http.NewRequest(method, tc.base+path, body)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			tc.t.Fatalf("decoding %s %s response %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// createSession POSTs /sessions and returns the new id.
func (tc *testClient) createSession(req CreateRequest) string {
	tc.t.Helper()
	body, _ := json.Marshal(req)
	var out struct {
		ID string `json:"id"`
	}
	status, _ := tc.do("POST", "/sessions", bytes.NewReader(body), &out)
	if status != http.StatusCreated {
		tc.t.Fatalf("create session: status %d", status)
	}
	return out.ID
}

// upload streams records in independently framed posts of postSize
// records, each body dribbled in 7-byte reads.
func (tc *testClient) upload(id string, recs []trace.Record, postSize int) {
	tc.t.Helper()
	for i := 0; i < len(recs); i += postSize {
		chunk := encodeTrace(tc.t, recs[i:min(i+postSize, len(recs))])
		status, _ := tc.do("POST", "/sessions/"+id+"/records",
			&dribbleReader{data: chunk, n: 7}, nil)
		if status != http.StatusAccepted {
			tc.t.Fatalf("upload post at record %d: status %d", i, status)
		}
	}
}

// finish marks the session's stream complete.
func (tc *testClient) finish(id string) {
	tc.t.Helper()
	if status, _ := tc.do("POST", "/sessions/"+id+"/finish", nil, nil); status != http.StatusAccepted {
		tc.t.Fatalf("finish: status %d", status)
	}
}

// await polls the session until its worker exits, returning the final
// metrics.
func (tc *testClient) await(id string, deadline time.Duration) SessionMetrics {
	tc.t.Helper()
	var m SessionMetrics
	for end := time.Now().Add(deadline); ; {
		status, _ := tc.do("GET", "/sessions/"+id+"/metrics", nil, &m)
		if status != http.StatusOK {
			tc.t.Fatalf("metrics: status %d", status)
		}
		if m.State != "running" {
			return m
		}
		if time.Now().After(end) {
			tc.t.Fatalf("session %s still running after %s (committed %d/%d)",
				id, deadline, m.Committed, m.Target)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPOfflineParity is the end-to-end guarantee of the service: a
// trace streamed over HTTP in small chunked posts produces, for every
// translation scheme, final session counters identical field-for-field to
// an offline core.Run over the same records. Both sides replay the same
// codec-normalized stream: the upload is shorter than warmup+refs, so the
// session wraps it exactly like trace.Replay does offline.
func TestHTTPOfflineParity(t *testing.T) {
	recs := trace.Collect(parityGen(), 30_000)
	wire := encodeTrace(t, recs)

	for _, mode := range []core.Mode{core.Baseline, core.POMTLB, core.SharedL2, core.TSB,
		core.Victima, core.DRAMCache} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Mode = mode
			cfg.Cores = 2
			cfg.WarmupRefs = 10_000
			cfg.MaxRefs = 40_000

			offline, err := core.NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			replay, err := trace.LoadReplay(bytes.NewReader(wire))
			if err != nil {
				t.Fatal(err)
			}
			want, err := offline.Run(context.Background(), replay, "parity")
			if err != nil {
				t.Fatal(err)
			}

			srv := New(Config{})
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			tc := newTestClient(t, ts.URL)

			id := tc.createSession(CreateRequest{
				Workload:   "parity",
				Mode:       mode.String(),
				Cores:      cfg.Cores,
				WarmupRefs: cfg.WarmupRefs,
				MaxRefs:    cfg.MaxRefs,
			})
			tc.upload(id, recs, 512)
			tc.finish(id)
			m := tc.await(id, 30*time.Second)

			if m.State != "done" {
				t.Fatalf("session state = %s (error %q), want done", m.State, m.Error)
			}
			if m.Ingested != len(recs) {
				t.Errorf("ingested %d records, want %d", m.Ingested, len(recs))
			}
			if m.Result != want {
				t.Errorf("HTTP session result diverges from offline Run:\n got %+v\nwant %+v",
					m.Result, want)
			}
			if m.Committed != uint64(cfg.WarmupRefs+cfg.MaxRefs) {
				t.Errorf("committed %d, want %d", m.Committed, cfg.WarmupRefs+cfg.MaxRefs)
			}
			if m.Loops == 0 {
				t.Error("stream never wrapped; the parity test should exercise replay wrap")
			}
		})
	}
}

// TestIngestErrorMapping pins the HTTP status for each trace codec
// failure: not-a-trace bodies are 400s, torn streams 422s — with every
// whole record before the tear still accepted.
func TestIngestErrorMapping(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tc := newTestClient(t, ts.URL)
	id := tc.createSession(CreateRequest{Cores: 2})

	status, _ := tc.do("POST", "/sessions/"+id+"/records",
		strings.NewReader("NOTATRACE-------"), nil)
	if status != http.StatusBadRequest {
		t.Errorf("bad magic: status %d, want 400", status)
	}

	wire := encodeTrace(t, trace.Collect(parityGen(), 5))
	var out struct {
		Accepted int    `json:"accepted"`
		Ingested int    `json:"ingested"`
		Error    string `json:"error"`
	}
	status, _ = tc.do("POST", "/sessions/"+id+"/records",
		bytes.NewReader(wire[:len(wire)-7]), &out)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("torn stream: status %d, want 422", status)
	}
	if out.Accepted != 4 || out.Ingested != 4 {
		t.Errorf("torn stream accepted %d/ingested %d records, want 4/4", out.Accepted, out.Ingested)
	}
	if out.Error == "" {
		t.Error("torn stream reply carries no error message")
	}

	status, _ = tc.do("POST", "/sessions/"+id+"/records", strings.NewReader("POM"), nil)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("short header: status %d, want 422", status)
	}

	status, _ = tc.do("GET", "/sessions/nope/metrics", nil, nil)
	if status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
}

// TestSessionCapAndDelete exercises the live-session cap and DELETE.
func TestSessionCapAndDelete(t *testing.T) {
	srv := New(Config{MaxSessions: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tc := newTestClient(t, ts.URL)

	a := tc.createSession(CreateRequest{Cores: 2})
	tc.createSession(CreateRequest{Cores: 2})
	body, _ := json.Marshal(CreateRequest{Cores: 2})
	status, hdr := tc.do("POST", "/sessions", bytes.NewReader(body), nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over cap: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("over-cap reply missing Retry-After")
	}

	if status, _ := tc.do("DELETE", "/sessions/"+a, nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", status)
	}
	tc.createSession(CreateRequest{Cores: 2}) // freed capacity
	if status, _ := tc.do("DELETE", "/sessions/"+a, nil, nil); status != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", status)
	}
}

// TestDrainRunsSessionsToCompletion pins the graceful-shutdown contract:
// Drain finishes in-flight sessions (wrapping their uploads) and refuses
// new work, and the drained server reports frozen, complete results.
func TestDrainRunsSessionsToCompletion(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tc := newTestClient(t, ts.URL)

	recs := trace.Collect(parityGen(), 4_000)
	id := tc.createSession(CreateRequest{Cores: 2, WarmupRefs: 2_000, MaxRefs: 8_000})
	tc.upload(id, recs, 1_000)
	// No finish: Drain must finish the stream itself.

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	m := tc.await(id, time.Second)
	if m.State != "done" {
		t.Errorf("drained session state = %s (error %q), want done", m.State, m.Error)
	}
	if m.Committed != 10_000 {
		t.Errorf("drained session committed %d, want 10000", m.Committed)
	}

	body, _ := json.Marshal(CreateRequest{Cores: 2})
	if status, _ := tc.do("POST", "/sessions", bytes.NewReader(body), nil); status != http.StatusServiceUnavailable {
		t.Errorf("create during drain: status %d, want 503", status)
	}
	wire := encodeTrace(t, recs[:16])
	if status, _ := tc.do("POST", "/sessions/"+id+"/records", bytes.NewReader(wire), nil); status != http.StatusServiceUnavailable {
		t.Errorf("ingest during drain: status %d, want 503", status)
	}
}

// TestPrometheusMetrics sanity-checks the aggregate exposition.
func TestPrometheusMetrics(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tc := newTestClient(t, ts.URL)

	id := tc.createSession(CreateRequest{Cores: 2, WarmupRefs: 100, MaxRefs: 400})
	tc.upload(id, trace.Collect(parityGen(), 600), 600)
	tc.finish(id)
	tc.await(id, 10*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, line := range []string{
		"pomsimd_sessions_total 1",
		"pomsimd_sessions_completed_total 1",
		"pomsimd_records_ingested_total 600",
		"pomsimd_records_committed_total 500",
		fmt.Sprintf("pomsimd_session_committed_records{id=%q,tenant=\"default\",state=\"done\"} 500", id),
		"pomsimd_ingest_rejected_total{reason=\"rate\"} 0",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("/metrics missing %q\n%s", line, text)
		}
	}
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("Content-Type = %q", got)
	}
}
