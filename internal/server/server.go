// Package server turns the simulator into simulation-as-a-service: an
// HTTP service that accepts binary trace streams (the trace package's
// POMTRC01 codec as the request body, chunked), multiplexes many
// concurrent tenant sessions onto per-session core.System instances, and
// advances each session incrementally as records arrive — the POM-TLB's
// own consolidation story (one large shared structure serving many
// guests) applied to the simulator itself.
//
// Robustness model:
//   - per-tenant token-bucket rate limiting (records/sec with burst);
//     short waits are absorbed in-handler, long ones shed with 429 +
//     Retry-After
//   - bounded per-session ingest queues exerting backpressure: when the
//     simulation falls behind, ingest blocks up to a deadline and then
//     fails with 429 + Retry-After
//   - per-session idle timeouts (a reaper aborts sessions whose client
//     went away) and a global live-session cap
//   - graceful drain: new sessions and ingest are refused while in-flight
//     sessions finish, with panic isolation and deadline enforcement
//     reused from internal/resilience
//
// Observability: GET /sessions/{id}/metrics serves live per-session
// counters (hit ratios, queue depth, modelled speedup) from the race-safe
// core.System.Snapshot path, and GET /metrics aggregates server totals in
// Prometheus text format.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config tunes the service. Zero values select the defaults below.
type Config struct {
	// MaxSessions caps concurrently live (unfinished) sessions; further
	// creations get 429. Default 64.
	MaxSessions int
	// QueueCap bounds each session's un-simulated ingest backlog in
	// records before backpressure engages. A cap below one ingest batch
	// (256 records) sheds every full batch outright, which is useful in
	// tests and pathological otherwise. Default 65536.
	QueueCap int
	// EnqueueWait is how long an ingest batch blocks for queue space
	// before the server sheds it with 429 + Retry-After. Default 100ms.
	EnqueueWait time.Duration
	// RatePerSec is the per-tenant token-bucket rate in records/sec;
	// 0 disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket capacity in records. Default max(Rate, 1).
	Burst float64
	// MaxThrottle is the longest rate-limit wait absorbed inside the
	// handler; longer waits are shed with 429. Default 200ms.
	MaxThrottle time.Duration
	// IdleTimeout reaps sessions with no ingest activity; 0 disables.
	IdleTimeout time.Duration
	// MaxIngestRecords caps a session's total upload (sessions retain
	// their trace in memory, 16 B/record, replay-style). Default 8Mi
	// records (128 MiB); negative disables.
	MaxIngestRecords int

	// now is the clock seam for tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.QueueCap == 0 {
		c.QueueCap = 65536
	}
	if c.EnqueueWait == 0 {
		c.EnqueueWait = 100 * time.Millisecond
	}
	if c.MaxThrottle == 0 {
		c.MaxThrottle = 200 * time.Millisecond
	}
	if c.MaxIngestRecords == 0 {
		c.MaxIngestRecords = 8 << 20
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the simulation service. Create with New, mount Handler into
// an http.Server, and call Drain (graceful) or Close (immediate) on the
// way down.
type Server struct {
	cfg Config
	mux *http.ServeMux

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup // session workers + reaper

	mu       sync.Mutex
	sessions map[string]*session
	limiters map[string]*bucket
	nextID   uint64
	draining bool

	// Aggregate counters for GET /metrics.
	sessionsTotal  stats.Counter
	sessionsDone   stats.Counter
	sessionsReaped stats.Counter
	ingestedTotal  stats.Counter
	committedTotal stats.Counter
	throttledTotal stats.Counter
	rejectedRate   stats.Counter
	rejectedQueue  stats.Counter
	rejectedCap    stats.Counter
	rejectedDrain  stats.Counter
}

// New builds a Server and starts its idle reaper (when configured).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		baseCtx:  ctx,
		stop:     cancel,
		sessions: make(map[string]*session),
		limiters: make(map[string]*bucket),
	}
	s.mux.HandleFunc("POST /sessions", s.handleCreate)
	s.mux.HandleFunc("GET /sessions", s.handleList)
	s.mux.HandleFunc("POST /sessions/{id}/records", s.handleIngest)
	s.mux.HandleFunc("POST /sessions/{id}/finish", s.handleFinish)
	s.mux.HandleFunc("GET /sessions/{id}/metrics", s.handleSessionMetrics)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.reap()
	}
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CreateRequest configures a new session — the same knobs as the pomsim
// CLI, resolved against core.DefaultConfig (the paper's Table 1 machine).
type CreateRequest struct {
	// Workload labels the session; when it names a Table 2 benchmark the
	// metrics include the modelled speedup for that profile.
	Workload string `json:"workload,omitempty"`
	// Tenant keys the shared rate-limit bucket; sessions of one tenant
	// draw from one bucket. Empty means the shared "default" tenant.
	Tenant     string `json:"tenant,omitempty"`
	Mode       string `json:"mode,omitempty"`
	Cores      int    `json:"cores,omitempty"`
	VMs        int    `json:"vms,omitempty"`
	Native     bool   `json:"native,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	WarmupRefs int    `json:"warmup_refs,omitempty"`
	MaxRefs    int    `json:"max_refs,omitempty"`
	PomMB      uint64 `json:"pom_mb,omitempty"`
}

// buildConfig resolves a CreateRequest into a validated core.Config.
func buildConfig(req CreateRequest) (core.Config, error) {
	cfg := core.DefaultConfig()
	if req.Mode != "" {
		m, err := core.ParseMode(req.Mode)
		if err != nil {
			return cfg, err
		}
		cfg.Mode = m
	}
	if req.Cores != 0 {
		cfg.Cores = req.Cores
	}
	if req.VMs != 0 {
		cfg.VMs = req.VMs
	}
	cfg.Virtualized = !req.Native
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	if req.WarmupRefs != 0 {
		cfg.WarmupRefs = req.WarmupRefs
	}
	if req.MaxRefs != 0 {
		cfg.MaxRefs = req.MaxRefs
	}
	if req.PomMB != 0 {
		cfg.POM.SizeBytes = req.PomMB << 20
	}
	return cfg, cfg.Validate()
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding session config: %v", err))
			return
		}
	}
	cfg, err := buildConfig(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	workload := req.Workload
	if workload == "" {
		workload = "stream"
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectedDrain.Inc()
		httpError(w, http.StatusServiceUnavailable, "server is draining; no new sessions")
		return
	}
	live := 0
	for _, sess := range s.sessions {
		if !sess.finished() {
			live++
		}
	}
	if live >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.rejectedCap.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session cap reached (%d live sessions)", live))
		return
	}
	s.nextID++
	id := fmt.Sprintf("s-%06d", s.nextID)
	lim, ok := s.limiters[tenant]
	if !ok {
		lim = newBucket(s.cfg.RatePerSec, s.cfg.Burst, s.cfg.now())
		s.limiters[tenant] = lim
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	sess := &session{
		id:       id,
		tenant:   tenant,
		workload: workload,
		cfg:      cfg,
		sys:      sys,
		gen:      newStreamGen(s.cfg.QueueCap),
		limiter:  lim,
		created:  s.cfg.now(),
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	sess.touch(sess.created)
	s.sessions[id] = sess
	s.sessionsTotal.Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sess.run(ctx, &s.committedTotal)
		if sess.getState() == stateDone {
			s.sessionsDone.Inc()
		}
	}()
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, map[string]any{
		"id":       id,
		"tenant":   tenant,
		"workload": workload,
		"mode":     cfg.Mode.String(),
		"target":   sess.target(),
	})
}

// ingestBatch is how many records the ingest loop accumulates before
// pushing through the rate limiter and queue — small enough that both
// limits act promptly, large enough to amortize their locks.
const ingestBatch = 256

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	if s.isDraining() {
		s.rejectedDrain.Inc()
		httpError(w, http.StatusServiceUnavailable, "server is draining; ingest refused")
		return
	}
	if sess.finished() {
		httpError(w, http.StatusConflict,
			fmt.Sprintf("session is %s; create a new session to simulate more", sess.getState()))
		return
	}

	tr, err := trace.NewReader(r.Body)
	switch {
	case errors.Is(err, trace.ErrBadMagic):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, trace.ErrTruncated):
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	accepted := 0
	// flush pushes a batch through the tenant rate limit and the bounded
	// session queue; a non-nil status means the request is done.
	flush := func(batch []trace.Record) (int, string) {
		if len(batch) == 0 {
			return 0, ""
		}
		if max := s.cfg.MaxIngestRecords; max > 0 {
			if ing, _, _, _, _ := sess.gen.stat(); ing+len(batch) > max {
				return http.StatusRequestEntityTooLarge,
					fmt.Sprintf("session upload cap is %d records", max)
			}
		}
		delay, ok := sess.limiter.take(s.cfg.now(), float64(len(batch)), s.cfg.MaxThrottle)
		if !ok {
			s.rejectedRate.Inc()
			sess.rejRate.Inc()
			w.Header().Set("Retry-After", retryAfter(delay))
			return http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q over its record rate; retry in %s", sess.tenant, delay.Round(time.Millisecond))
		}
		if delay > 0 {
			s.throttledTotal.Inc()
			sess.throttled.Inc()
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return http.StatusRequestTimeout, "client went away during throttle"
			}
		}
		if err := sess.gen.append(batch, s.cfg.now().Add(s.cfg.EnqueueWait)); err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				s.rejectedQueue.Inc()
				sess.rejQueue.Inc()
				w.Header().Set("Retry-After", retryAfter(s.cfg.EnqueueWait))
				return http.StatusTooManyRequests,
					fmt.Sprintf("session queue full (%d records behind); retry in %s",
						s.cfg.QueueCap, s.cfg.EnqueueWait)
			case errors.Is(err, ErrSessionFinished):
				return http.StatusConflict, err.Error()
			default:
				return http.StatusGone, err.Error()
			}
		}
		accepted += len(batch)
		s.ingestedTotal.Add(uint64(len(batch)))
		sess.touch(s.cfg.now())
		return 0, ""
	}

	batch := make([]trace.Record, 0, ingestBatch)
	var readErr error
	for {
		rec, err := tr.Read()
		if err != nil {
			readErr = err
			break
		}
		batch = append(batch, rec)
		if len(batch) == ingestBatch {
			if status, msg := flush(batch); status != 0 {
				s.ingestReply(w, sess, status, msg, accepted)
				return
			}
			batch = batch[:0]
		}
	}
	// Whole records before a tear are still good: accept them, then report
	// the tear so the client can resend from the accepted offset.
	if status, msg := flush(batch); status != 0 {
		s.ingestReply(w, sess, status, msg, accepted)
		return
	}
	if readErr != io.EOF {
		status := http.StatusBadRequest
		if errors.Is(readErr, trace.ErrTruncated) {
			status = http.StatusUnprocessableEntity
		}
		s.ingestReply(w, sess, status, readErr.Error(), accepted)
		return
	}
	s.ingestReply(w, sess, http.StatusAccepted, "", accepted)
}

// ingestReply reports how far an upload got alongside the session's
// current stream position, so clients can resume precisely.
func (s *Server) ingestReply(w http.ResponseWriter, sess *session, status int, msg string, accepted int) {
	ing, _, backlog, _, _ := sess.gen.stat()
	body := map[string]any{
		"accepted":    accepted,
		"ingested":    ing,
		"queue_depth": backlog,
		"committed":   sess.committed.Snapshot(),
	}
	if msg != "" {
		body["error"] = msg
	}
	writeJSON(w, status, body)
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.gen.finish()
	sess.touch(s.cfg.now())
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     sess.id,
		"state":  sess.getState().String(),
		"target": sess.target(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	sess.close()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]map[string]any, 0, len(s.sessions))
	for _, sess := range s.sessions {
		ids = append(ids, map[string]any{
			"id":       sess.id,
			"tenant":   sess.tenant,
			"workload": sess.workload,
			"state":    sess.getState().String(),
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": ids})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// lookup fetches a live session by id.
func (s *Server) lookup(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// reap aborts sessions whose client has gone quiet for longer than the
// idle timeout. Finished sessions are left in place (their metrics stay
// queryable) — only silent, unfinished sessions are torn down.
func (s *Server) reap() {
	defer s.wg.Done()
	tick := s.cfg.IdleTimeout / 4
	if tick <= 0 {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		now := s.cfg.now()
		s.mu.Lock()
		var idle []*session
		for id, sess := range s.sessions {
			if sess.finished() {
				continue
			}
			last := time.Unix(0, sess.lastActive.Load())
			if now.Sub(last) > s.cfg.IdleTimeout {
				idle = append(idle, sess)
				delete(s.sessions, id)
			}
		}
		s.mu.Unlock()
		for _, sess := range idle {
			sess.close()
			s.sessionsReaped.Inc()
		}
	}
}

// Drain gracefully shuts the service down: new sessions and new ingest
// are refused, every open stream is marked finished so in-flight sessions
// run to their reference target (wrapping their uploaded trace exactly
// like an offline replay), and the call blocks until all workers exit or
// ctx fires — at which point the stragglers are aborted. The deadline
// enforcement mirrors internal/resilience.RunWithTimeout's contract:
// workers honor context cancellation, and Drain converts a blown deadline
// into a hard abort rather than a hang.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	for _, sess := range open {
		if ing, _, _, _, _ := sess.gen.stat(); ing == 0 {
			// Nothing ever arrived: finishing would fail the worker with
			// an empty stream; abort it instead.
			sess.close()
			continue
		}
		sess.gen.finish()
	}

	workers := make(chan struct{})
	go func() {
		s.waitSessions(open)
		close(workers)
	}()
	var err error
	select {
	case <-workers:
	case <-ctx.Done():
		for _, sess := range open {
			sess.close()
		}
		<-workers
		err = fmt.Errorf("server: drain deadline passed; aborted in-flight sessions: %w", ctx.Err())
	}
	s.stop() // stops the reaper and any remaining worker contexts
	s.wg.Wait()
	return err
}

func (s *Server) waitSessions(open []*session) {
	for _, sess := range open {
		<-sess.done
	}
}

// Close aborts everything immediately (tests, error paths).
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	for _, sess := range open {
		sess.close()
	}
	s.stop()
	s.wg.Wait()
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// retryAfter renders a delay as a whole-seconds Retry-After value, at
// least 1 the way proxies expect.
func retryAfter(d time.Duration) string {
	secs := int(d.Seconds() + 0.999)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// knownProfile resolves a workload label to its Table 2 profile when it
// names one.
func knownProfile(name string) (workloads.Profile, bool) {
	return workloads.ByName(name)
}
