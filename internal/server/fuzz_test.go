package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// FuzzIngest throws arbitrary bytes, split at arbitrary chunk boundaries
// (including mid-record), at the ingest endpoint. The invariants:
//
//   - the handler never panics, whatever the framing;
//   - exactly the whole records of a valid prefix are accepted — a tear
//     mid-record yields no phantom record and loses no complete one;
//   - the HTTP status matches the codec verdict (400 bad magic, 422
//     truncation, 202 clean);
//   - the session survives malformed uploads and keeps serving metrics.
func FuzzIngest(f *testing.F) {
	valid := fuzzEncode(trace.Collect(parityGen(), 3))
	f.Add([]byte{}, uint8(1))
	f.Add(valid, uint8(5))
	f.Add(valid[:len(valid)-7], uint8(3))   // torn mid-record
	f.Add(valid[:4], uint8(1))              // torn mid-header
	f.Add([]byte("NOTATRACE-------"), uint8(16)) // full-length bad magic
	f.Add(append(append([]byte{}, valid...), 0xFF), uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		srv := New(Config{MaxIngestRecords: -1})
		defer srv.Close()
		mux := srv.Handler()

		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/sessions", strings.NewReader(`{"cores":1}`)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create session: status %d", rec.Code)
		}
		var created struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
			t.Fatal(err)
		}

		wantAccepted, wantStatus := expectIngest(data)
		body := &dribbleReader{data: data, n: int(chunk%16) + 1}
		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/sessions/"+created.ID+"/records", body))
		if rec.Code != wantStatus {
			t.Fatalf("ingest of %d bytes: status %d, want %d (body %s)",
				len(data), rec.Code, wantStatus, rec.Body.Bytes())
		}
		if rec.Code != http.StatusBadRequest {
			var out struct {
				Accepted int `json:"accepted"`
				Ingested int `json:"ingested"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("ingest reply %q: %v", rec.Body.Bytes(), err)
			}
			if out.Accepted != wantAccepted || out.Ingested != wantAccepted {
				t.Fatalf("ingest of %d bytes: accepted %d / ingested %d, want %d whole records",
					len(data), out.Accepted, out.Ingested, wantAccepted)
			}
		}

		rec = httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/sessions/"+created.ID+"/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("metrics after fuzzed ingest: status %d", rec.Code)
		}
		var m SessionMetrics
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		if m.Ingested != wantAccepted {
			t.Fatalf("session ingested %d records, want %d", m.Ingested, wantAccepted)
		}
	})
}

// FuzzCreateSession throws arbitrary scheme names (and a couple of other
// knobs) at session creation. The invariants: the handler never panics;
// a request naming a registered scheme (or none) with sane geometry
// yields 201 and a session whose mode echoes the registry's name; any
// unknown scheme name yields 400, never a session.
func FuzzCreateSession(f *testing.F) {
	for _, n := range core.ModeNames() {
		f.Add(n, 1, false)
	}
	f.Add("", 2, true)
	f.Add("bogus", 1, false)
	f.Add("POM-TLB", 1, false)
	f.Add("victima", 0, false)
	f.Add("dram-cache", -3, true)
	f.Fuzz(func(t *testing.T, mode string, cores int, native bool) {
		srv := New(Config{})
		defer srv.Close()
		mux := srv.Handler()

		req := CreateRequest{Mode: mode, Cores: cores, Native: native}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", "/sessions", bytes.NewReader(body)))

		_, parseErr := core.ParseMode(mode)
		modeOK := mode == "" || parseErr == nil
		switch rec.Code {
		case http.StatusCreated:
			if !modeOK {
				t.Fatalf("created a session for unregistered mode %q", mode)
			}
			var created struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
				t.Fatal(err)
			}
			rec = httptest.NewRecorder()
			mux.ServeHTTP(rec, httptest.NewRequest("GET", "/sessions/"+created.ID+"/metrics", nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("metrics on fresh session: status %d", rec.Code)
			}
		case http.StatusBadRequest:
			if modeOK && cores > 0 && cores <= 256 {
				t.Fatalf("rejected a valid request (mode %q, cores %d): %s", mode, cores, rec.Body.Bytes())
			}
		default:
			t.Fatalf("create session: unexpected status %d (%s)", rec.Code, rec.Body.Bytes())
		}
	})
}

// expectIngest is the reference model of the framing: which status and
// how many whole records an arbitrary body must produce.
func expectIngest(data []byte) (accepted, status int) {
	magic := []byte("POMTRC01")
	if len(data) < len(magic) {
		return 0, http.StatusUnprocessableEntity // short header is a truncation
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return 0, http.StatusBadRequest
	}
	payload := len(data) - len(magic)
	accepted = payload / 16
	if payload%16 != 0 {
		return accepted, http.StatusUnprocessableEntity
	}
	return accepted, http.StatusAccepted
}

func fuzzEncode(recs []trace.Record) []byte {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		panic(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
