package server

import (
	"sync"
	"time"
)

// bucket is a token-bucket rate limiter over records/sec with a burst
// allowance, in the style of the byte-rate limiters load-generation tools
// use, adapted for a server: instead of pacing a sender it answers "how
// long would this batch have to wait", so the ingest handler can choose
// between absorbing a short wait (smoothing) and rejecting with a 429 +
// Retry-After (shedding).
//
// The clock is passed in by the caller, which keeps the arithmetic
// deterministic under test and means a bucket shared by many sessions of
// one tenant needs no background goroutine.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (records) per second; <= 0 means unlimited
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newBucket returns a full bucket. A rate <= 0 disables limiting; a burst
// below 1 is raised to 1 so a single record can always eventually pass.
func newBucket(rate, burst float64, now time.Time) *bucket {
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take asks for n tokens at time now. It returns (0, true) when the batch
// may proceed immediately, (d, true) when the caller should wait d first
// (the tokens are reserved, going negative, so concurrent takers queue up
// behind the reservation), and (d, false) when the wait would exceed
// maxWait — nothing is consumed and d is the Retry-After hint.
func (b *bucket) take(now time.Time, n float64, maxWait time.Duration) (time.Duration, bool) {
	if b == nil || b.rate <= 0 {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return 0, true
	}
	deficit := n - b.tokens
	d := time.Duration(deficit / b.rate * float64(time.Second))
	if d > maxWait {
		return d, false
	}
	b.tokens -= n
	return d, true
}
