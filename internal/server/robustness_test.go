package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/trace"
)

// TestBucket drives the token bucket through its edge cases on a fake
// clock: the arithmetic is deterministic because the caller owns time.
func TestBucket(t *testing.T) {
	t0 := time.Unix(1000, 0)

	t.Run("zero rate is unlimited", func(t *testing.T) {
		b := newBucket(0, 0, t0)
		for i := 0; i < 100; i++ {
			if d, ok := b.take(t0, 1e9, 0); d != 0 || !ok {
				t.Fatalf("take %d = (%v, %v), want (0, true)", i, d, ok)
			}
		}
	})

	t.Run("burst=1 reserves and sheds", func(t *testing.T) {
		b := newBucket(10, 1, t0)
		if d, ok := b.take(t0, 1, 200*time.Millisecond); d != 0 || !ok {
			t.Fatalf("first record = (%v, %v), want immediate", d, ok)
		}
		// Bucket empty: one token takes 100ms at 10/s — absorbable.
		if d, ok := b.take(t0, 1, 200*time.Millisecond); d != 100*time.Millisecond || !ok {
			t.Fatalf("second record = (%v, %v), want (100ms, true)", d, ok)
		}
		// Tokens now reserved to -1: the next deficit is 2 tokens = 200ms,
		// still within maxWait.
		if d, ok := b.take(t0, 1, 200*time.Millisecond); d != 200*time.Millisecond || !ok {
			t.Fatalf("third record = (%v, %v), want (200ms, true)", d, ok)
		}
		// -2 tokens: 300ms exceeds maxWait — shed without consuming, so the
		// retry hint stays stable across repeated rejected attempts.
		for i := 0; i < 3; i++ {
			if d, ok := b.take(t0, 1, 200*time.Millisecond); d != 300*time.Millisecond || ok {
				t.Fatalf("shed attempt %d = (%v, %v), want (300ms, false)", i, d, ok)
			}
		}
	})

	t.Run("fractional refill accumulates", func(t *testing.T) {
		b := newBucket(3, 1, t0)
		if _, ok := b.take(t0, 1, 0); !ok {
			t.Fatal("initial burst token missing")
		}
		// 100ms at 3/s refills 0.3 tokens — not enough for a record, but
		// the fraction must not be lost between calls.
		if d, ok := b.take(t0.Add(100*time.Millisecond), 1, 0); ok {
			t.Fatalf("0.3 tokens passed a whole record (d=%v)", d)
		}
		if d, ok := b.take(t0.Add(334*time.Millisecond), 1, 0); d != 0 || !ok {
			t.Fatalf("1.002 tokens = (%v, %v), want (0, true)", d, ok)
		}
	})

	t.Run("burst below one is raised", func(t *testing.T) {
		b := newBucket(5, 0.25, t0)
		if d, ok := b.take(t0, 1, 0); d != 0 || !ok {
			t.Fatalf("single record on sub-record burst = (%v, %v), want (0, true)", d, ok)
		}
	})

	t.Run("refill caps at burst", func(t *testing.T) {
		b := newBucket(100, 2, t0)
		if _, ok := b.take(t0.Add(time.Hour), 3, 0); ok {
			t.Fatal("bucket refilled beyond its burst capacity")
		}
	})
}

// TestStreamGenBackpressure pins the bounded-queue contract: append is
// all-or-nothing, blocks only until its deadline, and frees up as the
// consumer pulls.
func TestStreamGenBackpressure(t *testing.T) {
	g := newStreamGen(4)
	recs := trace.Collect(parityGen(), 8)

	if err := g.append(recs[:4], time.Now().Add(time.Second)); err != nil {
		t.Fatalf("append within cap: %v", err)
	}
	start := time.Now()
	if err := g.append(recs[4:6], time.Now().Add(20*time.Millisecond)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("append over cap = %v, want ErrQueueFull", err)
	} else if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Errorf("append gave up after %v, before its deadline", waited)
	}
	if ing, _, _, _, _ := g.stat(); ing != 4 {
		t.Fatalf("failed append was not all-or-nothing: ingested %d, want 4", ing)
	}

	// Two pulls make room for the two-record batch.
	g.Next()
	g.Next()
	if err := g.append(recs[4:6], time.Now().Add(time.Second)); err != nil {
		t.Fatalf("append after pulls: %v", err)
	}

	g.finish()
	if err := g.append(recs[6:], time.Now().Add(time.Second)); !errors.Is(err, ErrSessionFinished) {
		t.Fatalf("append after finish = %v, want ErrSessionFinished", err)
	}
	// Finished stream wraps like trace.Replay.
	for i := 0; i < 7; i++ {
		g.Next()
	}
	if _, _, _, loops, _ := g.stat(); loops != 1 {
		t.Errorf("loops = %d after reading past the end, want 1", loops)
	}
}

// TestStreamGenAbortUnwindsNext proves a consumer blocked on an empty
// stream unwinds via the panic that resilience.Safe converts back into an
// error — the session-teardown path.
func TestStreamGenAbortUnwindsNext(t *testing.T) {
	g := newStreamGen(16)
	unwound := make(chan error, 1)
	go func() {
		unwound <- resilience.Safe(func() error {
			g.Next() // blocks: no records, not finished
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	g.abort()
	select {
	case err := <-unwound:
		if !errors.Is(err, errStreamAborted) {
			t.Fatalf("blocked Next unwound with %v, want errStreamAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Next never unwound after abort")
	}
	if err := g.append(trace.Collect(parityGen(), 1), time.Now().Add(time.Second)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("append after abort = %v, want ErrSessionClosed", err)
	}
}

// TestHTTPRateLimit pins the 429 + Retry-After path: a tenant over its
// record budget is shed without consuming tokens, and recovers as the
// bucket refills.
func TestHTTPRateLimit(t *testing.T) {
	srv := New(Config{RatePerSec: 1, Burst: 1, MaxThrottle: time.Nanosecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tc := newTestClient(t, ts.URL)
	id := tc.createSession(CreateRequest{Cores: 2})
	recs := trace.Collect(parityGen(), 3)

	// Three records against a one-record burst: the 2-token deficit takes
	// 2s at 1/s, far over MaxThrottle — shed.
	var out struct {
		Accepted int `json:"accepted"`
	}
	status, hdr := tc.do("POST", "/sessions/"+id+"/records",
		bytes.NewReader(encodeTrace(t, recs)), &out)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-rate post: status %d, want 429", status)
	}
	if out.Accepted != 0 {
		t.Errorf("over-rate post accepted %d records, want 0", out.Accepted)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\" (2-token deficit at 1 record/sec)", ra)
	}

	// A single record fits the burst — the rejected attempt consumed
	// nothing.
	status, _ = tc.do("POST", "/sessions/"+id+"/records",
		bytes.NewReader(encodeTrace(t, recs[:1])), nil)
	if status != http.StatusAccepted {
		t.Fatalf("in-budget post: status %d, want 202", status)
	}
}

// TestHTTPQueueBackpressure pins the queue-side 429: a batch that cannot
// fit the configured backlog cap blocks to the enqueue deadline and is
// shed with Retry-After.
func TestHTTPQueueBackpressure(t *testing.T) {
	srv := New(Config{QueueCap: 8, EnqueueWait: 10 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tc := newTestClient(t, ts.URL)
	// A huge warmup target keeps the worker consuming, never finishing.
	id := tc.createSession(CreateRequest{Cores: 2, WarmupRefs: 1 << 20, MaxRefs: 1 << 20})

	// One ingest batch (256 records) can never fit an 8-record cap.
	var out struct {
		Accepted int `json:"accepted"`
	}
	status, hdr := tc.do("POST", "/sessions/"+id+"/records",
		bytes.NewReader(encodeTrace(t, trace.Collect(parityGen(), ingestBatch))), &out)
	if status != http.StatusTooManyRequests {
		t.Fatalf("oversized batch: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("queue 429 missing Retry-After")
	}
	if out.Accepted != 0 {
		t.Errorf("shed batch accepted %d records, want 0", out.Accepted)
	}
}

// TestIdleReaper lets a silent session time out and verifies it is
// aborted, removed, and counted.
func TestIdleReaper(t *testing.T) {
	srv := New(Config{IdleTimeout: 30 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	tc := newTestClient(t, ts.URL)
	id := tc.createSession(CreateRequest{Cores: 2})
	tc.upload(id, trace.Collect(parityGen(), 64), 64)

	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _ := tc.do("GET", "/sessions/"+id+"/metrics", nil, nil)
		if status == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session was never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "pomsimd_sessions_reaped_total 1") {
		t.Errorf("/metrics does not count the reaped session:\n%s", raw)
	}
}

// TestSoak64Sessions runs 64 concurrent sessions end to end — create,
// chunked upload, finish, completion — then drains the server and asserts
// every goroutine it spawned is gone. Under -race this is the
// concurrency-soundness gate for the whole session plumbing.
func TestSoak64Sessions(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	before := runtime.NumGoroutine()

	srv := New(Config{MaxSessions: 64})
	ts := httptest.NewServer(srv.Handler())
	client := &http.Client{Timeout: 60 * time.Second}
	recs := trace.Collect(parityGen(), 1_500)

	const sessions = 64
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- soakSession(client, ts.URL, i, recs)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	ts.Close()
	client.CloseIdleConnections()

	// Goroutines must settle back to (about) the pre-server baseline: the
	// session workers, reaper, and httptest conns are all gone. The slack
	// covers runtime background goroutines that come and go.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after drain: %d now vs %d before\n%s",
				n, before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// soakSession is one tenant's full lifecycle, with plain error returns so
// it can run off the test goroutine.
func soakSession(client *http.Client, base string, i int, recs []trace.Record) error {
	post := func(path string, body io.Reader, out any) (int, error) {
		req, err := http.NewRequest("POST", base+path, body)
		if err != nil {
			return 0, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, err
		}
		if out != nil && len(raw) > 0 {
			if err := json.Unmarshal(raw, out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	cr, _ := json.Marshal(CreateRequest{
		Workload:   fmt.Sprintf("soak-%d", i),
		Tenant:     fmt.Sprintf("tenant-%d", i%8),
		Cores:      2,
		WarmupRefs: 500,
		MaxRefs:    2_000,
	})
	var created struct {
		ID string `json:"id"`
	}
	if status, err := post("/sessions", bytes.NewReader(cr), &created); err != nil || status != http.StatusCreated {
		return fmt.Errorf("session %d: create status %d err %v", i, status, err)
	}

	third := len(recs) / 3
	for _, part := range [][]trace.Record{recs[:third], recs[third : 2*third], recs[2*third:]} {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			return err
		}
		for _, r := range part {
			if err := w.Write(r); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		status, err := post("/sessions/"+created.ID+"/records", &buf, nil)
		if err != nil || status != http.StatusAccepted {
			return fmt.Errorf("session %d: upload status %d err %v", i, status, err)
		}
	}
	if status, err := post("/sessions/"+created.ID+"/finish", nil, nil); err != nil || status != http.StatusAccepted {
		return fmt.Errorf("session %d: finish status %d err %v", i, status, err)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(base + "/sessions/" + created.ID + "/metrics")
		if err != nil {
			return err
		}
		var m SessionMetrics
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if m.State == "done" {
			if m.Committed != 2_500 {
				return fmt.Errorf("session %d: committed %d, want 2500", i, m.Committed)
			}
			return nil
		}
		if m.State != "running" {
			return fmt.Errorf("session %d: state %s (error %q)", i, m.State, m.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("session %d: still running at deadline (%d/%d)", i, m.Committed, m.Target)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
