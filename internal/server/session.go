package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/stats"
)

// sessionState is the lifecycle of one tenant session.
type sessionState int32

const (
	stateRunning sessionState = iota
	stateDone                 // reached its reference target; metrics frozen
	stateFailed               // simulation error (bad trace semantics, panic)
	stateAborted              // deleted, reaped, or drained before finishing
)

func (st sessionState) String() string {
	switch st {
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	case stateAborted:
		return "aborted"
	}
	return fmt.Sprintf("state(%d)", int32(st))
}

// session multiplexes one tenant's trace stream onto a pooled simulator
// instance: a dedicated worker goroutine advances the core.System
// incrementally as records arrive through the streamGen, replicating
// core.Run's warmup-reset-measure structure so the final counters match an
// offline run of the same trace exactly.
type session struct {
	id       string
	tenant   string
	workload string
	cfg      core.Config
	sys      *core.System
	gen      *streamGen
	limiter  *bucket

	created    time.Time
	lastActive atomic.Int64 // unix nanos of the last ingest activity

	committed stats.Counter // records the simulation has consumed
	throttled stats.Counter // batches delayed by the rate limiter
	rejRate   stats.Counter // 429s from the rate limiter
	rejQueue  stats.Counter // 429s from queue backpressure

	state  atomic.Int32
	cancel context.CancelFunc
	done   chan struct{}

	mu    sync.Mutex
	live  core.Result // refreshed by the worker after every chunk
	final core.Result // set once the worker exits
	has   bool
	emsg  string
}

func (s *session) setState(st sessionState) { s.state.Store(int32(st)) }
func (s *session) getState() sessionState   { return sessionState(s.state.Load()) }

func (s *session) touch(now time.Time) { s.lastActive.Store(now.UnixNano()) }

// target is the total number of records the session commits before
// freezing: warmup plus measured references, exactly like core.Run.
func (s *session) target() int { return s.cfg.WarmupRefs + s.cfg.MaxRefs }

// run is the session worker: warmup, stats reset, measure, snapshot. It
// executes inside a resilience.Safe envelope so a teardown mid-simulation
// (streamGen panics errStreamAborted to unwind a blocked record pull) or
// a genuine simulator panic degrades this one session, never the server.
func (s *session) run(ctx context.Context, committedTotal *stats.Counter) {
	defer close(s.done)
	err := resilience.Safe(func() error {
		s.sys.SetWorkload(s.workload)
		if err := s.advance(ctx, s.cfg.WarmupRefs, committedTotal); err != nil {
			return err
		}
		s.sys.ResetStats()
		return s.advance(ctx, s.cfg.MaxRefs, committedTotal)
	})

	final := s.sys.Snapshot()
	s.mu.Lock()
	s.final = final
	s.has = true
	switch {
	case err == nil:
		s.setState(stateDone)
	case errors.Is(err, errStreamAborted), errors.Is(err, context.Canceled):
		s.setState(stateAborted)
		s.emsg = "aborted before reaching its reference target"
	case errors.Is(err, errStreamEmpty):
		s.setState(stateFailed)
		s.emsg = "stream finished with no records"
	default:
		s.setState(stateFailed)
		s.emsg = err.Error()
	}
	s.mu.Unlock()
}

// advance drives the System through n records in small chunks, publishing
// progress and a fresh snapshot after each chunk so metrics see it
// promptly. The metrics path must never call sys.Snapshot on a running
// session: a starved stream leaves the worker blocked inside Generator.Next
// while it holds the System's stats mutex, so a concurrent Snapshot would
// block until more records arrived — the cached copy keeps GET
// /sessions/{id}/metrics non-blocking at the cost of being at most one
// chunk stale.
func (s *session) advance(ctx context.Context, n int, committedTotal *stats.Counter) error {
	const chunk = 2048
	for done := 0; done < n; {
		step := min(chunk, n-done)
		if err := s.sys.Advance(ctx, s.gen, step); err != nil {
			return err
		}
		done += step
		s.committed.Add(uint64(step))
		committedTotal.Add(uint64(step))
		live := s.sys.Snapshot()
		s.mu.Lock()
		s.live = live
		s.mu.Unlock()
	}
	return nil
}

// close tears the session down: the worker context is cancelled and the
// stream aborted so a record pull blocked on input unwinds immediately.
// Idempotent; safe to call on finished sessions.
func (s *session) close() {
	s.cancel()
	s.gen.abort()
}

// finished reports whether the worker has exited.
func (s *session) finished() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// result returns the frozen final Result when the worker has exited, or
// the worker's most recent cached snapshot otherwise. It never touches the
// System directly — see advance for why.
func (s *session) result() (core.Result, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.has {
		return s.final, s.emsg
	}
	return s.live, ""
}
