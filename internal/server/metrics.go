package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// SessionMetrics is the GET /sessions/{id}/metrics payload: stream
// progress, the headline ratios the paper's evaluation plots, the modelled
// speedup when the workload names a Table 2 profile, and the full embedded
// Result so programmatic clients (and the HTTP/offline parity test) get
// every counter the offline simulator would print.
type SessionMetrics struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	State    string `json:"state"`

	// Stream progress.
	Ingested   int    `json:"ingested"`
	Committed  uint64 `json:"committed"`
	Target     int    `json:"target"`
	QueueDepth int    `json:"queue_depth"`
	Loops      int    `json:"loops"`
	Finished   bool   `json:"stream_finished"`

	// Robustness counters.
	Throttled     uint64 `json:"throttled_batches"`
	RejectedRate  uint64 `json:"rejected_rate"`
	RejectedQueue uint64 `json:"rejected_queue"`

	// Headline ratios, live from the race-safe snapshot path.
	L1HitRatio  float64 `json:"l1_tlb_hit_ratio"`
	L2HitRatio  float64 `json:"l2_tlb_hit_ratio"`
	AvgPenalty  float64 `json:"avg_penalty_cycles"`
	WalkElim    float64 `json:"walk_elimination_rate"`
	POMHitRatio float64 `json:"pom_dram_hit_ratio"`
	IPC         float64 `json:"ipc"`

	// ModelledImprovementPct is Figure 8's y-axis for this session's
	// scheme penalty, present when the workload names a Table 2 profile
	// and the scheme is not the baseline.
	ModelledImprovementPct *float64 `json:"modelled_improvement_pct,omitempty"`

	Result core.Result `json:"result"`
	Error  string      `json:"error,omitempty"`
}

func (s *Server) handleSessionMetrics(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return
	}
	writeJSON(w, http.StatusOK, s.sessionMetrics(sess))
}

func (s *Server) sessionMetrics(sess *session) SessionMetrics {
	res, emsg := sess.result()
	ing, _, backlog, loops, fin := sess.gen.stat()
	m := SessionMetrics{
		ID:       sess.id,
		Tenant:   sess.tenant,
		Workload: sess.workload,
		Mode:     sess.cfg.Mode.String(),
		State:    sess.getState().String(),

		Ingested:   ing,
		Committed:  sess.committed.Snapshot(),
		Target:     sess.target(),
		QueueDepth: backlog,
		Loops:      loops,
		Finished:   fin,

		Throttled:     sess.throttled.Snapshot(),
		RejectedRate:  sess.rejRate.Snapshot(),
		RejectedQueue: sess.rejQueue.Snapshot(),

		L1HitRatio:  res.L1TLB.Ratio(),
		L2HitRatio:  res.L2TLB.Ratio(),
		AvgPenalty:  res.AvgPenalty(),
		WalkElim:    res.WalkEliminationRate(),
		POMHitRatio: res.POMDRAM.Ratio(),
		IPC:         res.IPC(),

		Result: res,
		Error:  emsg,
	}
	if p, ok := knownProfile(sess.workload); ok && sess.cfg.Mode != core.Baseline {
		pen := res.AvgPenalty()
		if pen > p.CyclesPerMissVirt {
			pen = p.CyclesPerMissVirt
		}
		in := perfmodel.FromProfile(p, pen)
		if !sess.cfg.Virtualized {
			in = perfmodel.FromProfileNative(p, pen)
		}
		if imp, err := perfmodel.ImprovementPct(in); err == nil {
			m.ModelledImprovementPct = &imp
		}
	}
	return m
}

// handleMetrics serves the server-wide aggregate in Prometheus text
// exposition format (0.0.4), hand-rendered — the repo takes no client
// library dependency for what is a dozen lines of text.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	type row struct {
		id, tenant, state     string
		committed             uint64
		target, backlog, loop int
	}
	rows := make([]row, 0, len(s.sessions))
	active := 0
	for _, sess := range s.sessions {
		if !sess.finished() {
			active++
		}
		_, _, backlog, loops, _ := sess.gen.stat()
		rows = append(rows, row{
			id: sess.id, tenant: sess.tenant, state: sess.getState().String(),
			committed: sess.committed.Snapshot(),
			target:    sess.target(), backlog: backlog, loop: loops,
		})
	}
	draining := s.draining
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })

	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("pomsimd_sessions_active", "Sessions whose worker has not exited.", active)
	gauge("pomsimd_draining", "1 while the server refuses new work.", boolToInt(draining))
	counter("pomsimd_sessions_total", "Sessions ever created.", s.sessionsTotal.Snapshot())
	counter("pomsimd_sessions_completed_total", "Sessions that reached their reference target.", s.sessionsDone.Snapshot())
	counter("pomsimd_sessions_reaped_total", "Sessions aborted by the idle reaper.", s.sessionsReaped.Snapshot())
	counter("pomsimd_records_ingested_total", "Trace records accepted across all sessions.", s.ingestedTotal.Snapshot())
	counter("pomsimd_records_committed_total", "Trace records simulated across all sessions.", s.committedTotal.Snapshot())
	counter("pomsimd_ingest_throttled_total", "Ingest batches delayed by rate limiting.", s.throttledTotal.Snapshot())

	fmt.Fprintf(&b, "# HELP pomsimd_ingest_rejected_total Ingest requests shed, by reason.\n# TYPE pomsimd_ingest_rejected_total counter\n")
	fmt.Fprintf(&b, "pomsimd_ingest_rejected_total{reason=\"rate\"} %d\n", s.rejectedRate.Snapshot())
	fmt.Fprintf(&b, "pomsimd_ingest_rejected_total{reason=\"queue\"} %d\n", s.rejectedQueue.Snapshot())
	fmt.Fprintf(&b, "pomsimd_ingest_rejected_total{reason=\"cap\"} %d\n", s.rejectedCap.Snapshot())
	fmt.Fprintf(&b, "pomsimd_ingest_rejected_total{reason=\"draining\"} %d\n", s.rejectedDrain.Snapshot())

	fmt.Fprintf(&b, "# HELP pomsimd_session_committed_records Records simulated per session.\n# TYPE pomsimd_session_committed_records gauge\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "pomsimd_session_committed_records{id=%q,tenant=%q,state=%q} %d\n",
			r.id, r.tenant, r.state, r.committed)
	}
	fmt.Fprintf(&b, "# HELP pomsimd_session_queue_depth Un-simulated ingest backlog per session.\n# TYPE pomsimd_session_queue_depth gauge\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "pomsimd_session_queue_depth{id=%q,tenant=%q} %d\n", r.id, r.tenant, r.backlog)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
