package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Load reads and validates a trajectory file.
func Load(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if t.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: schema version %d, want %d", path, t.SchemaVersion, SchemaVersion)
	}
	if len(t.Schemes) == 0 {
		return nil, fmt.Errorf("perf: %s: no scheme results", path)
	}
	return &t, nil
}

// WriteFile serializes the trajectory as indented JSON with a trailing
// newline, so committed baselines diff cleanly.
func (t *Trajectory) WriteFile(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return nil
}

// Delta is one scheme's old-vs-new comparison.
type Delta struct {
	Scheme string
	// Old and New are records/sec.
	Old, New float64
	// Ratio is New/Old: >1 is a speedup, <1 a slowdown.
	Ratio float64
	// Regressed means the slowdown exceeds the comparison tolerance.
	Regressed bool
}

// Comparison is the scheme-by-scheme diff of two trajectories.
type Comparison struct {
	Deltas []Delta
	// Missing lists schemes present in the old trajectory but absent
	// from the new one; a disappearing scheme fails the gate.
	Missing []string
	// Tolerance is the allowed fractional records/sec slowdown.
	Tolerance float64
}

// Regressed reports whether any scheme slowed beyond tolerance or
// disappeared.
func (c *Comparison) Regressed() bool {
	if len(c.Missing) > 0 {
		return true
	}
	for _, d := range c.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// String renders the comparison as an aligned table.
func (c *Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %14s %8s\n", "scheme", "old rec/s", "new rec/s", "ratio")
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-12s %14.0f %14.0f %7.2fx%s\n", d.Scheme, d.Old, d.New, d.Ratio, mark)
	}
	for _, m := range c.Missing {
		fmt.Fprintf(&b, "%-12s missing from new trajectory  REGRESSED\n", m)
	}
	return b.String()
}

// Compare diffs two trajectories on records/sec. tolerance is the
// allowed fractional slowdown (0.05 = 5%): a scheme regresses when
// new < old*(1-tolerance). Schemes only present in the new trajectory
// are ignored; schemes that vanished are reported in Missing.
func Compare(old, new_ *Trajectory, tolerance float64) *Comparison {
	c := &Comparison{Tolerance: tolerance}
	for _, o := range old.Schemes {
		n, ok := new_.Scheme(o.Scheme)
		if !ok {
			c.Missing = append(c.Missing, o.Scheme)
			continue
		}
		d := Delta{Scheme: o.Scheme, Old: o.RecordsPerSec, New: n.RecordsPerSec}
		if o.RecordsPerSec > 0 {
			d.Ratio = n.RecordsPerSec / o.RecordsPerSec
			d.Regressed = d.Ratio < 1-tolerance
		}
		c.Deltas = append(c.Deltas, d)
	}
	return c
}
