// Package perf is the simulator's performance-trajectory harness: it
// measures how fast the simulator itself runs — simulated records per
// wall-clock second, wall nanoseconds per translation, and heap
// allocations per record — for each translation scheme, and serializes
// the measurements into a schema-versioned trajectory file
// (`BENCH_<date>.json` at the repo root). Committed trajectory files form
// the perf baseline every scaling PR must beat; Compare diffs two
// trajectories and flags regressions beyond a tolerance, which is what
// the CI bench gate runs.
//
// Every record the simulator consumes is exactly one translation request
// (plus its data access), so ns/translation is wall time per record over
// the steady-state measurement window. Steady state means the trace's
// whole footprint has been demand-mapped and the scheme's structures are
// warm, so the record loop performs no heap allocation; the harness
// reaches it by advancing the system through a warmup window before
// timing anything.
package perf

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// SchemaVersion is the trajectory file schema this package reads and
// writes. Bump it when a field changes meaning; Load rejects files whose
// version it does not understand.
const SchemaVersion = 1

// Schemes is the trajectory's scheme matrix: the paper's baseline plus
// the three large-structure schemes the evaluation compares, and the two
// registered competitor schemes (adding schemes here is gate-safe: the
// comparison only fails on schemes *missing* from the new trajectory).
var Schemes = []core.Mode{core.Baseline, core.SharedL2, core.TSB, core.POMTLB,
	core.Victima, core.DRAMCache}

// Config sizes one trajectory measurement.
type Config struct {
	// Cores is the simulated core count.
	Cores int `json:"cores"`
	// FootprintBytes is the synthetic workload footprint. It must be
	// small enough that WarmupRefs demand-maps every page (steady state)
	// and large enough to overflow the SRAM TLBs so the deep translation
	// paths are exercised.
	FootprintBytes uint64 `json:"footprint_bytes"`
	// LargeFrac is the 2 MB-page share of the footprint.
	LargeFrac float64 `json:"large_frac"`
	// WarmupRefs is the unmeasured steady-state ramp.
	WarmupRefs int `json:"warmup_refs"`
	// MeasureRefs is the size of each timed window.
	MeasureRefs int `json:"measure_refs"`
	// Repeats is how many timed windows run per scheme; the fastest
	// window is reported (standard best-of-N benchmarking) while
	// allocations report the *worst* window, conservatively.
	Repeats int `json:"repeats"`
	// Seed feeds the deterministic trace generator.
	Seed uint64 `json:"seed"`
	// Virtualized selects 2D nested translation.
	Virtualized bool `json:"virtualized"`
}

// DefaultConfig returns the canonical trajectory geometry: 4 cores,
// 16 MB uniform-random footprint (4096 small pages — ~2.7× the combined
// L2 TLB capacity, so post-TLB paths dominate), fully mapped during
// warmup.
func DefaultConfig() Config {
	return Config{
		Cores:          4,
		FootprintBytes: 16 << 20,
		LargeFrac:      0.25,
		WarmupRefs:     400_000,
		MeasureRefs:    1_000_000,
		Repeats:        3,
		Seed:           42,
		Virtualized:    true,
	}
}

// QuickConfig returns a shrunk geometry for CI smoke runs and tests.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Cores = 2
	c.FootprintBytes = 4 << 20
	c.WarmupRefs = 120_000
	c.MeasureRefs = 150_000
	c.Repeats = 2
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("perf: cores must be positive")
	case c.WarmupRefs <= 0 || c.MeasureRefs <= 0:
		return fmt.Errorf("perf: warmup and measure windows must be positive")
	case c.Repeats <= 0:
		return fmt.Errorf("perf: repeats must be positive")
	case c.FootprintBytes < 1<<20:
		return fmt.Errorf("perf: footprint %d below 1 MB", c.FootprintBytes)
	}
	return nil
}

// SchemeResult is one scheme's measured steady-state record-loop cost.
type SchemeResult struct {
	// Scheme is the core.Mode name ("baseline", "shared-l2", "tsb",
	// "pom-tlb").
	Scheme string `json:"scheme"`
	// RecordsPerSec is simulated records per wall-clock second over the
	// fastest measurement window.
	RecordsPerSec float64 `json:"records_per_sec"`
	// NsPerTranslation is wall nanoseconds per record (one record = one
	// translation request) over the same window.
	NsPerTranslation float64 `json:"ns_per_translation"`
	// AllocsPerRecord is heap allocations per record over the *worst*
	// window — 0 in steady state with self-check off.
	AllocsPerRecord float64 `json:"allocs_per_record"`
	// BytesPerRecord is heap bytes allocated per record over the worst
	// window.
	BytesPerRecord float64 `json:"bytes_per_record"`
	// Records is the per-window record count.
	Records uint64 `json:"records"`
}

// Trajectory is one dated measurement of every scheme, the unit the
// BENCH_<date>.json files serialize.
type Trajectory struct {
	SchemaVersion int    `json:"schema_version"`
	Date          string `json:"date"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	Config        Config `json:"config"`

	Schemes []SchemeResult `json:"schemes"`
}

// Scheme returns the named scheme's result, if present.
func (t *Trajectory) Scheme(name string) (SchemeResult, bool) {
	for _, s := range t.Schemes {
		if s.Scheme == name {
			return s, true
		}
	}
	return SchemeResult{}, false
}

// generator builds the trajectory's canonical workload: uniform random
// over the footprint with no run locality, so most records exercise the
// post-L2-TLB-miss path each scheme implements differently.
func (c Config) generator() trace.Generator {
	return trace.NewUniform(trace.Params{
		Seed:           c.Seed,
		FootprintBytes: c.FootprintBytes,
		LargeFrac:      c.LargeFrac,
		Threads:        c.Cores,
		MeanGap:        4,
		WriteFrac:      0.3,
	})
}

// coreConfig materializes the simulator configuration for one scheme.
func (c Config) coreConfig(mode core.Mode) core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.Cores = c.Cores
	cfg.VMs = 1
	cfg.Virtualized = c.Virtualized
	cfg.Seed = c.Seed
	cfg.WarmupRefs = 0
	cfg.MaxRefs = c.MeasureRefs
	return cfg
}

// MeasureScheme measures one scheme's steady-state record loop: warm the
// system (demand-map the whole footprint, fill the scheme's structures),
// then time Repeats windows of MeasureRefs records each.
func MeasureScheme(ctx context.Context, cfg Config, mode core.Mode) (SchemeResult, error) {
	if err := cfg.Validate(); err != nil {
		return SchemeResult{}, err
	}
	sys, err := core.NewSystem(cfg.coreConfig(mode))
	if err != nil {
		return SchemeResult{}, fmt.Errorf("perf: %s: %w", mode, err)
	}
	gen := cfg.generator()
	if err := sys.Advance(ctx, gen, cfg.WarmupRefs); err != nil {
		return SchemeResult{}, fmt.Errorf("perf: %s warmup: %w", mode, err)
	}

	out := SchemeResult{Scheme: mode.String(), Records: uint64(cfg.MeasureRefs)}
	var bestNs float64
	var m0, m1 runtime.MemStats
	for r := 0; r < cfg.Repeats; r++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		if err := sys.Advance(ctx, gen, cfg.MeasureRefs); err != nil {
			return SchemeResult{}, fmt.Errorf("perf: %s window %d: %w", mode, r, err)
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&m1)

		ns := float64(elapsed.Nanoseconds())
		if r == 0 || ns < bestNs {
			bestNs = ns
		}
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(cfg.MeasureRefs)
		bytes := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(cfg.MeasureRefs)
		if allocs > out.AllocsPerRecord {
			out.AllocsPerRecord = allocs
		}
		if bytes > out.BytesPerRecord {
			out.BytesPerRecord = bytes
		}
	}
	out.NsPerTranslation = bestNs / float64(cfg.MeasureRefs)
	out.RecordsPerSec = float64(cfg.MeasureRefs) / (bestNs / 1e9)
	return out, nil
}

// Measure runs the full scheme matrix and assembles the trajectory.
// date stamps the measurement (YYYY-MM-DD).
func Measure(ctx context.Context, cfg Config, date string) (*Trajectory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Trajectory{
		SchemaVersion: SchemaVersion,
		Date:          date,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Config:        cfg,
	}
	for _, mode := range Schemes {
		res, err := MeasureScheme(ctx, cfg, mode)
		if err != nil {
			return nil, err
		}
		t.Schemes = append(t.Schemes, res)
	}
	return t, nil
}
