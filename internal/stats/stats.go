// Package stats provides the light-weight measurement primitives the
// simulator layers share: hit/miss counters, scalar accumulators, latency
// histograms, and geometric means for summarising per-workload speedups the
// way the paper reports them.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HitMiss counts accesses split into hits and misses.
type HitMiss struct {
	Hits   uint64
	Misses uint64
}

// Hit records one hit.
func (h *HitMiss) Hit() { h.Hits++ }

// Miss records one miss.
func (h *HitMiss) Miss() { h.Misses++ }

// Record adds a hit when hit is true and a miss otherwise.
func (h *HitMiss) Record(hit bool) {
	if hit {
		h.Hits++
	} else {
		h.Misses++
	}
}

// Total returns the number of recorded accesses.
func (h HitMiss) Total() uint64 { return h.Hits + h.Misses }

// Ratio returns hits/total, or 0 when nothing was recorded.
func (h HitMiss) Ratio() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Hits) / float64(t)
}

// MissRatio returns misses/total, or 0 when nothing was recorded.
func (h HitMiss) MissRatio() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Misses) / float64(t)
}

// Add merges another counter into this one.
func (h *HitMiss) Add(o HitMiss) {
	h.Hits += o.Hits
	h.Misses += o.Misses
}

// String implements fmt.Stringer.
func (h HitMiss) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", h.Hits, h.Total(), 100*h.Ratio())
}

// CheckConservation verifies the hits + misses = total identity against an
// externally-known access count — the basic conservation law every counter
// in the simulator must obey. name labels the counter in the error.
func (h HitMiss) CheckConservation(name string, accesses uint64) error {
	if h.Total() != accesses {
		return fmt.Errorf("stats %s: hits %d + misses %d = %d, want %d accesses",
			name, h.Hits, h.Misses, h.Total(), accesses)
	}
	return nil
}

// Mean accumulates a running mean without storing samples.
type Mean struct {
	Sum   float64
	Count uint64
}

// Observe adds one sample.
func (m *Mean) Observe(x float64) {
	m.Sum += x
	m.Count++
}

// ObserveN adds n identical samples, used when an event covers many cycles.
func (m *Mean) ObserveN(x float64, n uint64) {
	m.Sum += x * float64(n)
	m.Count += n
}

// Value returns the mean, or 0 when no samples were observed.
func (m Mean) Value() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Add merges another accumulator into this one.
func (m *Mean) Add(o Mean) {
	m.Sum += o.Sum
	m.Count += o.Count
}

// Histogram is a fixed-bucket latency histogram. Buckets are upper bounds
// in ascending order; samples above the last bound land in an overflow
// bucket.
type Histogram struct {
	Bounds []float64
	Counts []uint64
	mean   Mean
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("stats: histogram bounds must be ascending")
	}
	return &Histogram{
		Bounds: bounds,
		Counts: make([]uint64, len(bounds)+1),
	}
}

// Observe adds a sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	h.Counts[i]++
	h.mean.Observe(x)
}

// Total returns the number of samples.
func (h *Histogram) Total() uint64 { return h.mean.Count }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 { return h.mean.Value() }

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) using the
// bucket boundaries; overflow samples report +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Geomean returns the geometric mean of xs; zero and negative inputs are
// skipped (a speedup of ≤0 is a measurement artifact, not a datum). Returns
// 0 for an empty input.
func Geomean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// ArithMean returns the arithmetic mean of xs, or 0 for empty input.
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table renders aligned ASCII tables for cmd/experiments output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row, formatting each value with the verbs given per
// column ("%s", "%.2f", "%d"...). Values beyond the verbs are stringified
// with %v.
func (t *Table) AddRowf(verbs []string, values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		verb := "%v"
		if i < len(verbs) {
			verb = verbs[i]
		}
		cells[i] = fmt.Sprintf(verb, v)
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders a simple horizontal ASCII bar of value scaled against max
// into width characters, used by cmd/experiments to sketch the figures.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(math.Round(value / max * float64(width)))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Pct formats a fraction as a percentage with two decimals.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
