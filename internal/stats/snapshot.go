package stats

import "sync/atomic"

// This file holds the race-safe measurement primitives shared-state
// consumers (the pomsimd server, concurrent metric pollers) use. The plain
// counters in stats.go are deliberately unsynchronized — they live on the
// simulator's per-record hot path, which is single-threaded per System —
// so concurrent readers must either hold the owner's lock and copy
// (copy-on-read: HitMiss, Mean and the component Stats structs are pure
// value types, so `snap := counters` under the lock IS the snapshot), or
// use the atomic types below, which are safe to update and read from any
// goroutine without coordination.

// Counter is a monotonically increasing counter safe for concurrent use.
// The zero value is ready.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Snapshot returns the current value (copy-on-read).
func (c *Counter) Snapshot() uint64 { return c.v.Load() }

// Gauge is a concurrently settable instantaneous value (queue depths,
// active-session counts). The zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Snapshot returns the current value (copy-on-read).
func (g *Gauge) Snapshot() int64 { return g.v.Load() }

// Snapshot returns a deep copy of the histogram decoupled from the live
// one: Histogram is the only stats type with reference semantics (its
// Counts slice), so a plain struct copy would alias the live buckets.
// Callers that poll a histogram concurrently with Observe must serialize
// with the writer (hold the owning structure's lock) around this call.
func (h *Histogram) Snapshot() *Histogram {
	cp := &Histogram{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]uint64(nil), h.Counts...),
		mean:   h.mean,
	}
	return cp
}
