package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHitMissBasics(t *testing.T) {
	var h HitMiss
	h.Hit()
	h.Hit()
	h.Miss()
	if h.Total() != 3 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.Ratio(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Ratio = %f", got)
	}
	if got := h.MissRatio(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("MissRatio = %f", got)
	}
}

func TestHitMissRecord(t *testing.T) {
	var h HitMiss
	h.Record(true)
	h.Record(false)
	h.Record(false)
	if h.Hits != 1 || h.Misses != 2 {
		t.Errorf("got %+v", h)
	}
}

func TestHitMissEmpty(t *testing.T) {
	var h HitMiss
	if h.Ratio() != 0 || h.MissRatio() != 0 {
		t.Error("empty counter should report zero ratios")
	}
}

func TestHitMissAdd(t *testing.T) {
	a := HitMiss{Hits: 3, Misses: 1}
	b := HitMiss{Hits: 2, Misses: 4}
	a.Add(b)
	if a.Hits != 5 || a.Misses != 5 {
		t.Errorf("Add gave %+v", a)
	}
}

func TestHitMissString(t *testing.T) {
	h := HitMiss{Hits: 1, Misses: 1}
	if got := h.String(); !strings.Contains(got, "50.00%") {
		t.Errorf("String() = %q", got)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	m.Observe(2)
	m.Observe(4)
	if m.Value() != 3 {
		t.Errorf("Value = %f", m.Value())
	}
	m.ObserveN(10, 2)
	if got := m.Value(); math.Abs(got-26.0/4.0) > 1e-12 {
		t.Errorf("Value = %f", got)
	}
	var empty Mean
	if empty.Value() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestMeanAdd(t *testing.T) {
	a, b := Mean{Sum: 10, Count: 2}, Mean{Sum: 20, Count: 3}
	a.Add(b)
	if a.Sum != 30 || a.Count != 5 {
		t.Errorf("Add gave %+v", a)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, x := range []float64{5, 15, 50, 500, 5000} {
		h.Observe(x)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[3] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if got := h.Mean(); math.Abs(got-1114) > 1e-9 {
		t.Errorf("Mean = %f", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in first bucket
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("Quantile(0.5) = %f", q)
	}
	h.Observe(1e9)
	if q := h.Quantile(1.0); !math.IsInf(q, 1) {
		t.Errorf("Quantile(1.0) = %f, want +Inf", q)
	}
	var empty Histogram
	if (&empty).Total() != 0 {
		t.Error("empty total")
	}
}

func TestHistogramUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unsorted bounds")
		}
	}()
	NewHistogram(10, 5)
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean = %f", got)
	}
	if got := Geomean([]float64{2, 0, -3, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("Geomean with skips = %f", got)
	}
	if Geomean(nil) != 0 {
		t.Error("Geomean(nil) should be 0")
	}
}

func TestArithMean(t *testing.T) {
	if got := ArithMean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("ArithMean = %f", got)
	}
	if ArithMean(nil) != 0 {
		t.Error("ArithMean(nil) should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22", "extra-dropped")
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	if strings.Contains(out, "extra-dropped") {
		t.Error("extra cell should be dropped")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("name", "pct")
	tb.AddRowf([]string{"%s", "%.1f"}, "x", 3.14159)
	if !strings.Contains(tb.String(), "3.1") {
		t.Errorf("AddRowf output:\n%s", tb.String())
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("Bar clamp = %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Error("degenerate bars should be empty")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.123); got != "12.30%" {
		t.Errorf("Pct = %q", got)
	}
}

// Property: ratio + miss ratio = 1 whenever any access was recorded.
func TestHitMissRatioProperty(t *testing.T) {
	f := func(hits, misses uint16) bool {
		h := HitMiss{Hits: uint64(hits), Misses: uint64(misses)}
		if h.Total() == 0 {
			return h.Ratio() == 0
		}
		return math.Abs(h.Ratio()+h.MissRatio()-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: geomean of a constant slice is the constant.
func TestGeomeanConstantProperty(t *testing.T) {
	f := func(v uint8, n uint8) bool {
		x := float64(v%100) + 1
		cnt := int(n%20) + 1
		xs := make([]float64, cnt)
		for i := range xs {
			xs[i] = x
		}
		return math.Abs(Geomean(xs)-x) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
