package workloads

// Consolidation describes a multi-VM cloud-consolidation scenario: a
// cardinality-tiered tenant pool (few hot guests, a warm middle, a long
// cold tail) with Zipf-distributed tenant hotness, gang-scheduled onto
// the simulated cores, optionally with shootdown/flush storms and
// phase-changing working sets. Unlike the Table-2 profiles these are not
// calibrated against measured applications — they synthesize the regime
// the paper's §2 motivates (hundreds of guests sharing one translation
// hierarchy), so all schemes run with simulated walks.
type Consolidation struct {
	Name        string
	Description string
	// Guests is the tenant count; tenant i occupies VMID i+1, PID 1.
	Guests int
	// HotFrac and WarmFrac split the guests into popularity tiers (the
	// remainder is the cold tail). Each tier rounds to at least one
	// tenant.
	HotFrac  float64
	WarmFrac float64
	// TenantSkew is the Zipf exponent over tenant popularity ranks:
	// higher = the hot guests dominate harder.
	TenantSkew float64
	// QuantumRecords is the gang-scheduling quantum: every Quantum
	// consumed records every core switches to its next planned tenant.
	QuantumRecords uint64
	// ChurnEvery schedules a shootdown storm every N consumed records
	// (0 = no churn).
	ChurnEvery uint64
	// StormShootdowns is how many page shootdowns one storm fires.
	StormShootdowns int
	// MigrateEveryStorms makes every Nth storm also flush one victim
	// tenant end to end (VM migration / ballooning; 0 = never).
	MigrateEveryStorms int
	// Phases > 1 gives every tenant a phase-changing working set that
	// grows/shrinks at trace-relative boundaries.
	Phases int
	// Hot/Warm/Cold are the per-tier tenant trace profiles (Pattern +
	// synthetic knobs are used; the measured Table-2 scalars are not).
	Hot, Warm, Cold Profile
}

// consolidationTable holds the built-in scenario presets. Footprints are
// deliberately modest: a hundred-guest pool must stay simulable, and the
// point is translation-capacity pressure from many address spaces, not
// from any single giant one.
var consolidationTable = []Consolidation{
	{
		Name:           "consol-zipf",
		Description:    "120 Zipf-popular guests, stationary working sets, no churn",
		Guests:         120,
		HotFrac:        0.05,
		WarmFrac:       0.25,
		TenantSkew:     1.1,
		QuantumRecords: 4096,
		Hot:            consolHot,
		Warm:           consolWarm,
		Cold:           consolCold,
	},
	{
		Name:               "consol-churn",
		Description:        "120 guests with shootdown storms and periodic tenant migration flushes",
		Guests:             120,
		HotFrac:            0.05,
		WarmFrac:           0.25,
		TenantSkew:         1.1,
		QuantumRecords:     4096,
		ChurnEvery:         20_000,
		StormShootdowns:    16,
		MigrateEveryStorms: 2,
		Hot:                consolHot,
		Warm:               consolWarm,
		Cold:               consolCold,
	},
	{
		Name:           "consol-phases",
		Description:    "96 guests whose working sets grow/shrink across 3 phases",
		Guests:         96,
		HotFrac:        0.06,
		WarmFrac:       0.25,
		TenantSkew:     1.0,
		QuantumRecords: 4096,
		Phases:         3,
		Hot:            consolHot,
		Warm:           consolWarm,
		Cold:           consolCold,
	},
	{
		Name:               "consol-smoke",
		Description:        "16 small guests with light churn — CI-sized scenario",
		Guests:             16,
		HotFrac:            0.125,
		WarmFrac:           0.25,
		TenantSkew:         1.1,
		QuantumRecords:     2048,
		ChurnEvery:         6_000,
		StormShootdowns:    8,
		MigrateEveryStorms: 3,
		Hot:                consolSmokeHot,
		Warm:               consolSmokeWarm,
		Cold:               consolSmokeCold,
	},
}

// Per-tier tenant profiles: hot guests look like graph/analytics hubs
// (power-law pages, some THP), warm guests like services with a resident
// working set, cold guests like mostly idle tails with small uniform
// footprints.
var (
	consolHot = Profile{
		Name: "consol-hot", Pattern: PowerLaw, FootprintBytes: 48 << 20,
		Skew: 0.95, LargePagePct: 25, RunLines: 8, MeanGap: 6, WriteFrac: 0.15,
	}
	consolWarm = Profile{
		Name: "consol-warm", Pattern: WorkingSet, FootprintBytes: 16 << 20,
		HotFrac: 0.35, PHot: 0.9, RunLines: 16, MeanGap: 6, WriteFrac: 0.25,
	}
	consolCold = Profile{
		Name: "consol-cold", Pattern: UniformRandom, FootprintBytes: 4 << 20,
		RunLines: 4, MeanGap: 8, WriteFrac: 0.3,
	}
	consolSmokeHot = Profile{
		Name: "consol-smoke-hot", Pattern: PowerLaw, FootprintBytes: 8 << 20,
		Skew: 0.95, LargePagePct: 25, RunLines: 8, MeanGap: 4, WriteFrac: 0.15,
	}
	consolSmokeWarm = Profile{
		Name: "consol-smoke-warm", Pattern: WorkingSet, FootprintBytes: 3 << 20,
		HotFrac: 0.35, PHot: 0.9, RunLines: 8, MeanGap: 4, WriteFrac: 0.25,
	}
	consolSmokeCold = Profile{
		Name: "consol-smoke-cold", Pattern: UniformRandom, FootprintBytes: 1 << 20,
		RunLines: 4, MeanGap: 5, WriteFrac: 0.3,
	}
)

// Consolidations returns all scenario presets.
func Consolidations() []Consolidation {
	out := make([]Consolidation, len(consolidationTable))
	copy(out, consolidationTable)
	return out
}

// ConsolidationNames returns the preset names in table order.
func ConsolidationNames() []string {
	names := make([]string, len(consolidationTable))
	for i, c := range consolidationTable {
		names[i] = c.Name
	}
	return names
}

// ConsolidationByName finds a scenario preset.
func ConsolidationByName(name string) (Consolidation, bool) {
	for _, c := range consolidationTable {
		if c.Name == name {
			return c, true
		}
	}
	return Consolidation{}, false
}
