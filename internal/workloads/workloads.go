// Package workloads embeds Table 2 of the paper — the measured
// characteristics of the 15 SPEC CPU, PARSEC and graph benchmarks the
// evaluation runs — together with a calibrated synthetic-trace profile for
// each one.
//
// The measured scalars (translation overhead as a % of execution time, and
// average cycles per L2 TLB miss, in both native and virtualized runs) are
// exactly what the paper's linear performance model consumes (Equations
// 2–5): they come from Skylake perf counters in the paper and are shipped
// here as published. The trace profile substitutes for the paper's PIN
// traces: it reproduces each benchmark's footprint, locality class, thread
// count, store ratio and large-page fraction, which are the properties
// that drive TLB/cache/DRAM behaviour in the simulator.
package workloads

import (
	"fmt"

	"repro/internal/trace"
)

// Pattern classifies a benchmark's dominant reference pattern.
type Pattern uint8

const (
	// Streaming is sequential sweeps (lbm, libquantum, streamcluster).
	Streaming Pattern = iota
	// UniformRandom is locality-free random access (gups).
	UniformRandom
	// PowerLaw is Zipf-distributed page popularity (graph workloads).
	PowerLaw
	// PointerChase is dependent pseudo-random loads (mcf, astar).
	PointerChase
	// WorkingSet is a hot/cold mixture (gcc, soplex, zeusmp...).
	WorkingSet
	// StreamMix is streaming with a random component (GemsFDTD, bwaves).
	StreamMix
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Streaming:
		return "streaming"
	case UniformRandom:
		return "uniform"
	case PowerLaw:
		return "powerlaw"
	case PointerChase:
		return "chase"
	case WorkingSet:
		return "workingset"
	case StreamMix:
		return "streammix"
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// Profile is one benchmark: Table 2's measured scalars plus the synthetic
// generator parameters.
type Profile struct {
	Name string

	// Measured on Skylake (Table 2).
	OverheadNativePct   float64 // % execution time translating, native
	OverheadVirtPct     float64 // % execution time translating, virtualized
	CyclesPerMissNative float64 // avg cycles per L2 TLB miss, native
	CyclesPerMissVirt   float64 // avg cycles per L2 TLB miss, virtualized
	LargePagePct        float64 // fraction of accesses to 2 MB pages, %

	// Synthetic trace profile.
	Pattern        Pattern
	FootprintBytes uint64
	Skew           float64 // Zipf skew for PowerLaw
	HotFrac        float64 // hot-region size fraction for WorkingSet
	PHot           float64 // hot-region probability for WorkingSet
	StreamFrac     float64 // streaming share for StreamMix
	RunLines       int     // sequential-run length (spatial locality)
	MeanGap        uint32  // non-memory instructions between references
	WriteFrac      float64
	BaseVA         uint64 // heap base (0 = trace default)
}

// VirtOverNativeRatio returns the Figure 3 ratio: virtualized translation
// cost over native, per L2 TLB miss.
func (p Profile) VirtOverNativeRatio() float64 {
	if p.CyclesPerMissNative == 0 {
		return 0
	}
	return p.CyclesPerMissVirt / p.CyclesPerMissNative
}

// Generator builds the benchmark's reference stream for the given core
// count and seed.
func (p Profile) Generator(threads int, seed uint64) trace.Generator {
	params := trace.Params{
		Seed:           seed,
		FootprintBytes: p.FootprintBytes,
		LargeFrac:      p.LargePagePct / 100,
		Threads:        threads,
		MeanGap:        p.MeanGap,
		WriteFrac:      p.WriteFrac,
		RunLines:       p.RunLines,
		BaseVA:         p.BaseVA,
	}
	switch p.Pattern {
	case Streaming:
		return trace.NewStream(params)
	case UniformRandom:
		return trace.NewUniform(params)
	case PowerLaw:
		return trace.NewZipf(params, p.Skew)
	case PointerChase:
		return trace.NewChase(params)
	case WorkingSet:
		return trace.NewHotCold(params, p.HotFrac, p.PHot)
	case StreamMix:
		b := params
		b.Seed = seed ^ 0xABCDEF
		return trace.NewMix(trace.NewStream(params), trace.NewZipf(b, p.Skew), p.StreamFrac, seed)
	}
	panic(fmt.Sprintf("workloads: unknown pattern %v", p.Pattern))
}

// table is Table 2 verbatim plus the synthetic profile columns. The
// pattern parameters are calibrated so that each benchmark's L2-TLB-miss
// stream has the locality class the paper's Figures 8–11 imply: the big
// winners (mcf, astar, soplex, GemsFDTD) have hot page sets that overflow
// the SRAM TLBs but whose POM-TLB sets stay resident in the data caches
// (Figure 9's high L2D$ ratios); the streaming codes miss mostly on page
// transitions; gups is reference-pattern-hostile.
var table = []Profile{
	{Name: "astar", OverheadNativePct: 13.89, OverheadVirtPct: 16.08,
		CyclesPerMissNative: 98, CyclesPerMissVirt: 114, LargePagePct: 41.7,
		Pattern: WorkingSet, FootprintBytes: 256 << 20, HotFrac: 0.50, PHot: 0.90, RunLines: 96, MeanGap: 6, WriteFrac: 0.25},
	{Name: "bwaves", OverheadNativePct: 0.73, OverheadVirtPct: 7.70,
		CyclesPerMissNative: 128, CyclesPerMissVirt: 151, LargePagePct: 0.8,
		Pattern: StreamMix, FootprintBytes: 256 << 20, StreamFrac: 0.85, Skew: 1.05, RunLines: 16, MeanGap: 8, WriteFrac: 0.30},
	{Name: "canneal", OverheadNativePct: 3.19, OverheadVirtPct: 6.34,
		CyclesPerMissNative: 53, CyclesPerMissVirt: 61, LargePagePct: 16.0,
		Pattern: WorkingSet, FootprintBytes: 128 << 20, HotFrac: 0.55, PHot: 0.82, RunLines: 16, MeanGap: 5, WriteFrac: 0.20},
	{Name: "ccomponent", OverheadNativePct: 0.73, OverheadVirtPct: 7.40,
		CyclesPerMissNative: 44, CyclesPerMissVirt: 1158, LargePagePct: 50.0,
		Pattern: PowerLaw, FootprintBytes: 384 << 20, Skew: 0.75, RunLines: 4, MeanGap: 7, WriteFrac: 0.15},
	{Name: "gcc", OverheadNativePct: 0.30, OverheadVirtPct: 12.12,
		CyclesPerMissNative: 46, CyclesPerMissVirt: 88, LargePagePct: 29.0,
		Pattern: WorkingSet, FootprintBytes: 96 << 20, HotFrac: 0.45, PHot: 0.85, RunLines: 64, MeanGap: 10, WriteFrac: 0.30},
	{Name: "GemsFDTD", OverheadNativePct: 10.58, OverheadVirtPct: 16.01,
		CyclesPerMissNative: 129, CyclesPerMissVirt: 133, LargePagePct: 71.0,
		Pattern: StreamMix, FootprintBytes: 256 << 20, StreamFrac: 0.55, Skew: 1.10, RunLines: 16, MeanGap: 6, WriteFrac: 0.35},
	{Name: "graph500", OverheadNativePct: 1.03, OverheadVirtPct: 7.66,
		CyclesPerMissNative: 79, CyclesPerMissVirt: 80, LargePagePct: 7.0,
		Pattern: PowerLaw, FootprintBytes: 256 << 20, Skew: 0.95, RunLines: 8, MeanGap: 7, WriteFrac: 0.10},
	{Name: "gups", OverheadNativePct: 12.20, OverheadVirtPct: 17.20,
		CyclesPerMissNative: 43, CyclesPerMissVirt: 70, LargePagePct: 2.59,
		Pattern: UniformRandom, FootprintBytes: 96 << 20, MeanGap: 4, WriteFrac: 0.50},
	{Name: "lbm", OverheadNativePct: 0.05, OverheadVirtPct: 12.02,
		CyclesPerMissNative: 110, CyclesPerMissVirt: 290, LargePagePct: 57.4,
		Pattern: Streaming, FootprintBytes: 384 << 20, MeanGap: 5, WriteFrac: 0.45},
	{Name: "libquantum", OverheadNativePct: 0.02, OverheadVirtPct: 7.37,
		CyclesPerMissNative: 70, CyclesPerMissVirt: 75, LargePagePct: 32.9,
		Pattern: Streaming, FootprintBytes: 128 << 20, MeanGap: 9, WriteFrac: 0.25},
	{Name: "mcf", OverheadNativePct: 10.32, OverheadVirtPct: 19.01,
		CyclesPerMissNative: 66, CyclesPerMissVirt: 169, LargePagePct: 60.7,
		Pattern: WorkingSet, FootprintBytes: 320 << 20, HotFrac: 0.35, PHot: 0.90, RunLines: 64, MeanGap: 4, WriteFrac: 0.20},
	{Name: "pagerank", OverheadNativePct: 4.07, OverheadVirtPct: 6.96,
		CyclesPerMissNative: 51, CyclesPerMissVirt: 61, LargePagePct: 60.0,
		Pattern: PowerLaw, FootprintBytes: 256 << 20, Skew: 1.00, RunLines: 12, MeanGap: 6, WriteFrac: 0.15},
	{Name: "soplex", OverheadNativePct: 4.16, OverheadVirtPct: 17.07,
		CyclesPerMissNative: 144, CyclesPerMissVirt: 145, LargePagePct: 12.3,
		Pattern: WorkingSet, FootprintBytes: 256 << 20, HotFrac: 0.45, PHot: 0.88, RunLines: 96, MeanGap: 7, WriteFrac: 0.25},
	{Name: "streamcluster", OverheadNativePct: 0.07, OverheadVirtPct: 2.11,
		CyclesPerMissNative: 74, CyclesPerMissVirt: 76, LargePagePct: 87.2,
		Pattern: Streaming, FootprintBytes: 64 << 20, MeanGap: 8, WriteFrac: 0.15},
	{Name: "zeusmp", OverheadNativePct: 0.01, OverheadVirtPct: 10.22,
		CyclesPerMissNative: 136, CyclesPerMissVirt: 137, LargePagePct: 72.1,
		Pattern: WorkingSet, FootprintBytes: 192 << 20, HotFrac: 0.25, PHot: 0.85, RunLines: 128, MeanGap: 8, WriteFrac: 0.35},
}

// All returns the Table 2 benchmark set, in the paper's order.
func All() []Profile {
	out := make([]Profile, len(table))
	copy(out, table)
	return out
}

// Names returns the benchmark names in order.
func Names() []string {
	out := make([]string, len(table))
	for i, p := range table {
		out[i] = p.Name
	}
	return out
}

// ByName returns the named benchmark profile.
func ByName(name string) (Profile, bool) {
	for _, p := range table {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
