package workloads

import (
	"math"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

func TestAllFifteenBenchmarks(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("Table 2 has 15 benchmarks, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestTable2ValuesSane(t *testing.T) {
	for _, p := range All() {
		if p.OverheadVirtPct <= 0 || p.OverheadVirtPct > 100 {
			t.Errorf("%s: OverheadVirtPct = %f", p.Name, p.OverheadVirtPct)
		}
		if p.CyclesPerMissVirt < p.CyclesPerMissNative {
			t.Errorf("%s: virtualized misses should not be cheaper (%f < %f)",
				p.Name, p.CyclesPerMissVirt, p.CyclesPerMissNative)
		}
		if p.LargePagePct < 0 || p.LargePagePct > 100 {
			t.Errorf("%s: LargePagePct = %f", p.Name, p.LargePagePct)
		}
		if p.FootprintBytes < 32<<20 {
			t.Errorf("%s: footprint %d too small to stress the L2 TLB", p.Name, p.FootprintBytes)
		}
	}
}

func TestSpotCheckPublishedValues(t *testing.T) {
	mcf, ok := ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	if mcf.OverheadVirtPct != 19.01 || mcf.CyclesPerMissVirt != 169 || mcf.LargePagePct != 60.7 {
		t.Errorf("mcf values drifted from Table 2: %+v", mcf)
	}
	cc, _ := ByName("ccomponent")
	if cc.CyclesPerMissVirt != 1158 {
		t.Errorf("ccomponent cycles/miss = %f, Table 2 says 1158", cc.CyclesPerMissVirt)
	}
	sc, _ := ByName("streamcluster")
	if sc.OverheadVirtPct != 2.11 {
		t.Errorf("streamcluster overhead = %f", sc.OverheadVirtPct)
	}
}

func TestVirtOverNativeRatioMatchesFig3(t *testing.T) {
	// Figure 3's headline ratios: ccomponent ≈ 26×, mcf ≈ 2.5×, gcc ≈ 1.9×.
	cases := map[string]float64{"ccomponent": 26.3, "mcf": 2.56, "gcc": 1.91, "lbm": 2.64}
	for name, want := range cases {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if got := p.VirtOverNativeRatio(); math.Abs(got-want) > 0.1 {
			t.Errorf("%s ratio = %.2f, want ≈ %.2f", name, got, want)
		}
	}
	var zero Profile
	if zero.VirtOverNativeRatio() != 0 {
		t.Error("zero profile ratio should be 0")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("nonexistent"); ok {
		t.Error("nonexistent benchmark found")
	}
	names := Names()
	if len(names) != 15 || names[0] != "astar" {
		t.Errorf("Names() = %v", names)
	}
}

func TestGeneratorsBuildForAll(t *testing.T) {
	for _, p := range All() {
		g := p.Generator(8, 1)
		if g == nil {
			t.Fatalf("%s: nil generator", p.Name)
		}
		recs := trace.Collect(g, 2000)
		large := 0
		for _, r := range recs {
			if r.Size == addr.Page2M {
				large++
			}
		}
		frac := float64(large) / float64(len(recs))
		// Large-page access fraction should track the profile loosely.
		// Zipf and hot/cold patterns concentrate accesses unevenly across
		// the two regions, so allow wide tolerance; streaming is tight.
		if p.LargePagePct > 30 && frac == 0 {
			t.Errorf("%s: no large-page accesses despite %.0f%% large pages", p.Name, p.LargePagePct)
		}
		if p.LargePagePct < 1 && frac > 0.2 {
			t.Errorf("%s: %.2f large-page accesses despite tiny large fraction", p.Name, frac)
		}
	}
}

func TestGeneratorDeterministicPerProfile(t *testing.T) {
	p, _ := ByName("gups")
	a := trace.Collect(p.Generator(8, 7), 100)
	b := trace.Collect(p.Generator(8, 7), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := trace.Collect(p.Generator(8, 8), 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestPatternString(t *testing.T) {
	for pat, want := range map[Pattern]string{
		Streaming: "streaming", UniformRandom: "uniform", PowerLaw: "powerlaw",
		PointerChase: "chase", WorkingSet: "workingset", StreamMix: "streammix",
	} {
		if pat.String() != want {
			t.Errorf("%d.String() = %q", pat, pat.String())
		}
	}
	if !strings.HasPrefix(Pattern(99).String(), "Pattern(") {
		t.Error("unknown pattern string")
	}
}

func TestUnknownPatternPanics(t *testing.T) {
	p := Profile{Name: "bad", Pattern: Pattern(99), FootprintBytes: 64 << 20}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.Generator(1, 1)
}

// TestProfilesCalibrated: the generated streams must actually exhibit the
// characteristics their profiles declare — a regression net for the trace
// calibration that DESIGN.md §5.7 documents.
func TestProfilesCalibrated(t *testing.T) {
	for _, p := range All() {
		a := trace.Analyze(p.Generator(8, 1), 40_000)
		// Large-page access fraction tracks the profile loosely (hot sets
		// deliberately live in the 4 KB region, so the access share is at
		// or below the page share).
		declared := p.LargePagePct / 100
		if declared > 0.3 && a.LargeAccessFrac > declared+0.25 {
			t.Errorf("%s: large-access frac %.2f far above declared %.2f",
				p.Name, a.LargeAccessFrac, declared)
		}
		// Mean gap ≈ MeanGap parameter.
		if p.MeanGap > 0 {
			lo, hi := float64(p.MeanGap)*0.7, float64(p.MeanGap)*1.3
			if a.MeanGap < lo || a.MeanGap > hi {
				t.Errorf("%s: mean gap %.1f outside [%.1f, %.1f]", p.Name, a.MeanGap, lo, hi)
			}
		}
		// Write fraction ≈ WriteFrac.
		if a.WriteFrac < p.WriteFrac-0.1 || a.WriteFrac > p.WriteFrac+0.1 {
			t.Errorf("%s: write frac %.2f vs declared %.2f", p.Name, a.WriteFrac, p.WriteFrac)
		}
		// Locality classes: streaming ≫ sequential; gups ≈ none.
		switch p.Pattern {
		case Streaming:
			if a.SequentialFrac < 0.9 {
				t.Errorf("%s: streaming sequential frac %.2f", p.Name, a.SequentialFrac)
			}
		case UniformRandom:
			if a.SequentialFrac > 0.1 {
				t.Errorf("%s: gups should have no runs, got %.2f", p.Name, a.SequentialFrac)
			}
		case WorkingSet:
			if a.SequentialFrac < 0.5 {
				t.Errorf("%s: working-set runs too short: %.2f", p.Name, a.SequentialFrac)
			}
		}
	}
}
