package cacti

import (
	"testing"
	"testing/quick"
)

func TestMonotoneInCapacity(t *testing.T) {
	m := Default()
	prev := 0.0
	for cap := uint64(16 << 10); cap <= 64<<20; cap *= 2 {
		ns := m.AccessNS(cap)
		if ns <= prev {
			t.Errorf("latency not increasing at %d bytes: %f <= %f", cap, ns, prev)
		}
		prev = ns
	}
}

func TestNormalizedBaseIsOne(t *testing.T) {
	if got := Default().Normalized(16 << 10); got != 1 {
		t.Errorf("Normalized(16KB) = %f", got)
	}
}

func TestFigure4Shape(t *testing.T) {
	m := Default()
	// The paper's point: SRAM does not scale. The curve should roughly
	// double by a few hundred KB and reach ~an order of magnitude by 16 MB.
	at256K := m.Normalized(256 << 10)
	if at256K < 1.5 || at256K > 3.5 {
		t.Errorf("Normalized(256KB) = %f, want ≈ 2", at256K)
	}
	at16M := m.Normalized(16 << 20)
	if at16M < 6 || at16M > 20 {
		t.Errorf("Normalized(16MB) = %f, want ≈ 10", at16M)
	}
}

func TestAccessCycles(t *testing.T) {
	m := Default()
	// A 16 KB array at 4 GHz should be a handful of cycles, in line with
	// Table 1's 4-cycle L1.
	cyc := m.AccessCycles(16<<10, 4000)
	if cyc < 1 || cyc > 8 {
		t.Errorf("16KB at 4GHz = %f cycles", cyc)
	}
}

func TestSweep(t *testing.T) {
	pts := Default().Sweep()
	if len(pts) != 11 { // 16KB..16MB doubling
		t.Fatalf("sweep has %d points", len(pts))
	}
	if pts[0].CapacityBytes != 16<<10 || pts[len(pts)-1].CapacityBytes != 16<<20 {
		t.Error("sweep range wrong")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Normalized <= pts[i-1].Normalized {
			t.Error("sweep not monotone")
		}
	}
}

func TestPanicsBelowOneLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Default().AccessNS(32)
}

// Property: doubling capacity always increases latency but never by more
// than ~√2 + decoder step (the asymptotic wire-dominated growth rate).
func TestGrowthRateProperty(t *testing.T) {
	m := Default()
	f := func(raw uint8) bool {
		cap := uint64(16<<10) << (raw % 10)
		r := m.AccessNS(cap*2) / m.AccessNS(cap)
		return r > 1 && r < 1.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
