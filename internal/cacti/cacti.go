// Package cacti provides the analytic SRAM access-latency model behind
// Figure 4: the paper used CACTI to show that naively growing an SRAM L2
// TLB quickly blows up its access latency, which is why a very large TLB
// must live in DRAM.
//
// The model follows the structure CACTI's own documentation describes for
// SRAM arrays: total delay is decoder + wordline/bitline + sense amp +
// output drive, where the array is split into banks/subarrays and the
// dominant growth term is the H-tree wire delay to reach a subarray, which
// scales with the physical side length (∝ √capacity), plus a logarithmic
// decoder term. Coefficients are calibrated so the normalized curve tracks
// published CACTI 6.5 numbers for a 32 nm process: latency roughly doubles
// from 16 KB to 256 KB and is ~10× at 16 MB.
package cacti

import (
	"fmt"
	"math"
)

// Model holds the analytic coefficients. The zero value is not usable;
// call Default.
type Model struct {
	// Fixed is the capacity-independent cost (sense amps, latching) in ns.
	Fixed float64
	// Decoder scales the log2(rows) decode depth, ns per level.
	Decoder float64
	// Wire scales the √capacity global-wire (H-tree) term, ns per √KB.
	Wire float64
}

// Default returns the 32 nm-calibrated model.
func Default() Model {
	return Model{
		Fixed:   0.25,
		Decoder: 0.05,
		Wire:    0.105,
	}
}

// AccessNS returns the modeled access time in nanoseconds for an SRAM
// array of the given capacity in bytes. It panics for capacities below one
// cache line — a configuration no TLB array could have.
func (m Model) AccessNS(capacityBytes uint64) float64 {
	if capacityBytes < 64 {
		panic(fmt.Sprintf("cacti: capacity %d below one line", capacityBytes))
	}
	kb := float64(capacityBytes) / 1024
	rows := math.Max(kb*1024/64, 1) // 64 B per row worth of cells
	return m.Fixed + m.Decoder*math.Log2(rows) + m.Wire*math.Sqrt(kb)
}

// AccessCycles converts AccessNS to CPU cycles at the given core clock.
func (m Model) AccessCycles(capacityBytes uint64, cpuMHz uint64) float64 {
	return m.AccessNS(capacityBytes) * float64(cpuMHz) / 1000
}

// Normalized reproduces Figure 4's y-axis: access latency normalized to a
// 16 KB array.
func (m Model) Normalized(capacityBytes uint64) float64 {
	return m.AccessNS(capacityBytes) / m.AccessNS(16<<10)
}

// Sweep returns (capacity, normalized latency) pairs for the Figure 4
// capacity range: 16 KB doubling up to 16 MB.
func (m Model) Sweep() []Point {
	var out []Point
	for cap := uint64(16 << 10); cap <= 16<<20; cap *= 2 {
		out = append(out, Point{CapacityBytes: cap, Normalized: m.Normalized(cap)})
	}
	return out
}

// Point is one sweep sample.
type Point struct {
	CapacityBytes uint64
	Normalized    float64
}
