package trace

import (
	"testing"

	"repro/internal/addr"
)

// TestZipfUniformTailBeyondCDFCap is the regression test for the capped
// CDF: with an 8 GiB footprint (2M pages, double the 1M-rank cap) the
// old generator could never emit a page past 4 GiB, and its hot-page
// modulo used the uncapped page count while the CDF used the capped one.
// Now the universe is shared and the tail really is uniform.
func TestZipfUniformTailBeyondCDFCap(t *testing.T) {
	p := Params{Seed: 3, FootprintBytes: 8 << 30, Threads: 1}
	z := NewZipf(p, 0.6) // low skew → fat tail, so the tail branch is hot
	wantPages := p.FootprintBytes / addr.Bytes4K
	if z.pages != wantPages {
		t.Fatalf("page universe = %d, want the full footprint's %d", z.pages, wantPages)
	}
	if len(z.cdf) != maxZipfCDF {
		t.Fatalf("CDF covers %d ranks, want the %d cap", len(z.cdf), maxZipfCDF)
	}
	if z.tailP <= 0 {
		t.Fatalf("tail mass = %v, want positive for a footprint past the cap", z.tailP)
	}

	const n = 100_000
	var tail int
	for i := 0; i < n; i++ {
		rec := z.Next()
		if uint64(rec.VA) < z.l.smallBase {
			t.Fatalf("VA %#x below the 4K region base %#x", rec.VA, z.l.smallBase)
		}
		page := (uint64(rec.VA) - z.l.smallBase) / addr.Bytes4K
		if page >= wantPages {
			t.Fatalf("page %d outside the footprint (%d pages)", page, wantPages)
		}
		if page >= maxZipfCDF {
			tail++
		}
	}
	if tail == 0 {
		t.Fatal("no references beyond the CDF cap: the uniform tail is dead")
	}
	// With s=0.6 the integral puts roughly a quarter of the mass in the
	// tail; accept a generous band so float details don't matter.
	frac := float64(tail) / n
	if frac < 0.05 || frac > 0.60 {
		t.Errorf("tail fraction = %.3f, want within [0.05, 0.60]", frac)
	}
}

// TestZipfSmallFootprintHasNoTail pins the other side: at or below the
// cap the CDF covers every page, the tail mass is zero, and the last CDF
// entry is exactly 1 so the tail branch is unreachable.
func TestZipfSmallFootprintHasNoTail(t *testing.T) {
	p := Params{Seed: 5, FootprintBytes: 64 << 20, Threads: 2, MeanGap: 3, WriteFrac: 0.2}
	z := NewZipf(p, 0.9)
	if z.tailP != 0 {
		t.Fatalf("tail mass = %v, want 0 below the cap", z.tailP)
	}
	if got := z.cdf[len(z.cdf)-1]; got != 1.0 {
		t.Fatalf("cdf tops out at %v, want exactly 1", got)
	}
}

// TestZipfResetKeepsCDF pins the Reset bugfix: Reset must rewind the
// stream byte-identically without rebuilding (or even reallocating) the
// CDF.
func TestZipfResetKeepsCDF(t *testing.T) {
	p := Params{Seed: 9, FootprintBytes: 64 << 20, Threads: 2, MeanGap: 3, WriteFrac: 0.2, RunLines: 4}
	z := NewZipf(p, 0.9)
	const n = 4096
	first := make([]Record, n)
	for i := range first {
		first[i] = z.Next()
	}
	cdfPtr := &z.cdf[0]
	z.Reset()
	if &z.cdf[0] != cdfPtr {
		t.Fatal("Reset rebuilt the CDF")
	}
	for i := 0; i < n; i++ {
		if got := z.Next(); got != first[i] {
			t.Fatalf("record %d after Reset = %+v, want %+v", i, got, first[i])
		}
	}
	if allocs := testing.AllocsPerRun(100, z.Reset); allocs != 0 {
		t.Errorf("Reset allocates %.1f objects/op, want 0", allocs)
	}
}
