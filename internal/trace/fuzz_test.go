package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/addr"
)

// FuzzRecordCodec fuzzes the 16-byte record packing: every field must
// survive a Writer→Reader round trip (page size collapses to the two
// sizes the format encodes).
func FuzzRecordCodec(f *testing.F) {
	f.Add(uint64(0), uint32(0), false, uint8(0), false)
	f.Add(uint64(1)<<47, uint32(1<<31), true, uint8(255), true)
	f.Add(uint64(0xdead_beef_f000), uint32(17), true, uint8(3), false)
	f.Fuzz(func(t *testing.T, va uint64, gap uint32, write bool, thread uint8, large bool) {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		rec := Record{VA: addr.VA(va), Gap: gap, Write: write, Thread: thread, Size: size}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != rec {
			t.Fatalf("round trip: %+v -> %+v", rec, got)
		}
		if _, err := r.Read(); err != io.EOF {
			t.Fatalf("trailing read = %v, want EOF", err)
		}
	})
}

// FuzzReader fuzzes the binary trace reader against arbitrary byte
// streams: it must never panic, must reject non-magic headers with
// ErrBadMagic and short headers with ErrTruncated, and on a valid header
// must hand back only whole records followed by io.EOF (clean end) or
// ErrTruncated (torn tail) — truncated trailing bytes must never surface
// as a phantom record.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("POMTRC01"))
	f.Add([]byte("POMTRC99extra"))
	valid := append([]byte("POMTRC01"), make([]byte, 2*recordBytes)...)
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), 1, 2, 3)) // truncated third record
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			switch {
			case len(data) < 8:
				if !errors.Is(err, ErrTruncated) {
					t.Fatalf("short header: error %v, want ErrTruncated", err)
				}
			case bytes.Equal(data[:8], magic[:]):
				t.Fatalf("valid header rejected: %v", err)
			default:
				if !errors.Is(err, ErrBadMagic) {
					t.Fatalf("bad header: error %v, want ErrBadMagic", err)
				}
			}
			return
		}
		if len(data) < 8 || !bytes.Equal(data[:8], magic[:]) {
			t.Fatal("bad header accepted")
		}
		n := 0
		for {
			_, err := r.Read()
			if err == nil {
				n++
				if n > len(data) { // cannot yield more records than bytes
					t.Fatal("reader yields records forever")
				}
				continue
			}
			torn := (len(data)-8)%recordBytes != 0
			if torn && !errors.Is(err, ErrTruncated) {
				t.Fatalf("torn tail: error %v, want ErrTruncated", err)
			}
			if !torn && err != io.EOF {
				t.Fatalf("clean end: error %v, want io.EOF", err)
			}
			break
		}
		if want := (len(data) - 8) / recordBytes; n != want {
			t.Fatalf("decoded %d records from %d payload bytes, want %d", n, len(data)-8, want)
		}
	})
}
