// Package trace defines the memory-reference trace schema the simulator
// consumes and provides both a binary file format and the synthetic
// generators that stand in for the paper's PIN + pagemap traces.
//
// The record schema mirrors Section 3.2: virtual address, instruction
// count between memory references (so memory-level parallelism and issue
// cadence can be scheduled as in Ramulator), read/write flag, thread ID and
// page size. The paper captured these from real SPEC/PARSEC/graph runs; we
// synthesize streams with the same footprint, locality class, thread count
// and large-page fraction per benchmark (see the workloads package), which
// are the properties that determine TLB, cache and DRAM behaviour.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
)

// Sentinel errors let callers distinguish a stream that was never a trace
// from one that was cut off mid-record — the server maps the former to a
// client error (400) and the latter to a torn upload (422), and the CLIs
// print matching hints.
var (
	// ErrBadMagic marks a stream whose first 8 bytes are not the trace
	// magic: the payload is not a POMTRC01 trace at all.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrTruncated marks a stream that ends mid-header or mid-record: the
	// trace was valid up to the tear, but bytes are missing.
	ErrTruncated = errors.New("trace: truncated stream")
)

// Record is one memory reference.
type Record struct {
	// VA is the guest virtual address referenced.
	VA addr.VA
	// Gap is the number of non-memory instructions executed on this
	// thread since its previous memory reference.
	Gap uint32
	// Write is true for stores.
	Write bool
	// Thread identifies the issuing thread (maps to a core).
	Thread uint8
	// Size is the OS-chosen page size backing the address (from the
	// pagemap in the paper's traces; from the region layout here).
	Size addr.PageSize
}

// Binary format: 8-byte magic+version header, little-endian u64 record
// count, then 16 bytes per record.
var magic = [8]byte{'P', 'O', 'M', 'T', 'R', 'C', '0', '1'}

const recordBytes = 16

// Writer streams records to a binary trace file.
type Writer struct {
	w     *bufio.Writer
	count uint64
	buf   [recordBytes]byte
}

// NewWriter writes the header and returns a Writer. Close must be called
// to flush; the record count is carried in each record stream's trailer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	binary.LittleEndian.PutUint64(w.buf[0:8], uint64(r.VA))
	binary.LittleEndian.PutUint32(w.buf[8:12], r.Gap)
	var flags byte
	if r.Write {
		flags |= 1
	}
	if r.Size == addr.Page2M {
		flags |= 2
	}
	w.buf[12] = flags
	w.buf[13] = r.Thread
	w.buf[14], w.buf[15] = 0, 0
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.count++
	return nil
}

// Count returns how many records have been written.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams records from a binary trace file.
type Reader struct {
	r   *bufio.Reader
	buf [recordBytes]byte
}

// NewReader validates the header and returns a Reader. A stream shorter
// than the header wraps ErrTruncated; a full-length header that is not the
// trace magic wraps ErrBadMagic.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: %d-byte header, want %d", ErrTruncated, n, len(hdr))
		}
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("%w: %q, want %q", ErrBadMagic, hdr, magic)
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, io.EOF at a clean end of stream, or an
// error wrapping ErrTruncated when the stream tears mid-record.
func (r *Reader) Read() (Record, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("%w: stream ends mid-record", ErrTruncated)
		}
		return Record{}, err
	}
	flags := r.buf[12]
	size := addr.Page4K
	if flags&2 != 0 {
		size = addr.Page2M
	}
	return Record{
		VA:     addr.VA(binary.LittleEndian.Uint64(r.buf[0:8])),
		Gap:    binary.LittleEndian.Uint32(r.buf[8:12]),
		Write:  flags&1 != 0,
		Thread: r.buf[13],
		Size:   size,
	}, nil
}

// Generator produces an endless, deterministic reference stream.
type Generator interface {
	// Next returns the next record.
	Next() Record
	// Reset rewinds the generator to its initial state.
	Reset()
}

// Collect drains n records from a generator into a slice.
func Collect(g Generator, n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// WriteAll generates n records into w.
func WriteAll(w *Writer, g Generator, n int) error {
	for i := 0; i < n; i++ {
		if err := w.Write(g.Next()); err != nil {
			return err
		}
	}
	return w.Flush()
}
