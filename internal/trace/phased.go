package trace

// Phase is one segment of a Phased stream: Gen drives the trace for
// Records generated records before the stream moves on.
type Phase struct {
	Records uint64
	Gen     Generator
}

// Phased cycles through phases, switching sub-generators at fixed
// generated-record boundaries. It expresses the working-set dynamics
// stationary generators cannot: a footprint that grows and shrinks
// mid-trace (ballooning guests, batch jobs changing phase). All phases
// should present the same thread count, or the downstream scheduler
// starves the threads a phase never emits.
type Phased struct {
	phases []Phase
	idx    int
	left   uint64
}

// NewPhased builds a phase-cycling generator. Panics when no phase is
// given or a phase has no records or no generator.
func NewPhased(phases ...Phase) *Phased {
	if len(phases) == 0 {
		panic("trace: Phased needs at least one phase")
	}
	for _, ph := range phases {
		if ph.Records == 0 || ph.Gen == nil {
			panic("trace: every phase needs records and a generator")
		}
	}
	return &Phased{phases: phases, left: phases[0].Records}
}

// Reset implements Generator.
func (p *Phased) Reset() {
	for _, ph := range p.phases {
		ph.Gen.Reset()
	}
	p.idx = 0
	p.left = p.phases[0].Records
}

// Next implements Generator. Re-entering a phase after a full cycle
// continues its generator where it left off — the phase's working set is
// the same region either way, and not rewinding keeps streams cheap.
func (p *Phased) Next() Record {
	if p.left == 0 {
		p.idx = (p.idx + 1) % len(p.phases)
		p.left = p.phases[p.idx].Records
	}
	p.left--
	return p.phases[p.idx].Gen.Next()
}
