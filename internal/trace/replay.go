package trace

import (
	"fmt"
	"io"
)

// Replay plays back a recorded trace as a Generator, looping when it
// reaches the end — so a finite trace file can drive a run of any length
// (the paper replays its PIN traces the same way).
type Replay struct {
	recs []Record
	i    int
	// Loops counts how many times the trace has wrapped.
	Loops int
}

// NewReplay wraps an in-memory record slice.
func NewReplay(recs []Record) *Replay {
	if len(recs) == 0 {
		panic("trace: empty replay")
	}
	cp := make([]Record, len(recs))
	copy(cp, recs)
	return &Replay{recs: cp}
}

// LoadReplay reads an entire binary trace stream into a Replay.
func LoadReplay(r io.Reader) (*Replay, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for {
		rec, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: loading replay: %w", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: replay stream has no records")
	}
	return NewReplay(recs), nil
}

// Len returns the number of records in one pass of the trace.
func (r *Replay) Len() int { return len(r.recs) }

// Next implements Generator.
func (r *Replay) Next() Record {
	rec := r.recs[r.i]
	r.i++
	if r.i == len(r.recs) {
		r.i = 0
		r.Loops++
	}
	return rec
}

// Reset implements Generator.
func (r *Replay) Reset() {
	r.i = 0
	r.Loops = 0
}
