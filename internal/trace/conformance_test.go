package trace_test

import (
	"testing"

	"repro/internal/trace"

	// Blank import: registers the consolidation composite generators so
	// the conformance suite covers them too.
	_ "repro/internal/consolidation"
)

func collect(g trace.Generator, n int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func firstDiff(a, b []trace.Record) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// TestGeneratorConformance is the table-test every registered generator
// factory must pass: seed determinism (two instances with the same seed
// emit identical streams), Reset ⇒ byte-identical replay (including
// mid-stream resets at awkward offsets), and seed sensitivity. New
// generators get this coverage by registering a factory — nothing else.
func TestGeneratorConformance(t *testing.T) {
	facs := trace.Factories()
	if len(facs) < 9 {
		t.Fatalf("only %d registered generator factories; the built-ins plus consolidation should be at least 9", len(facs))
	}
	for _, f := range facs {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			t.Parallel()
			const n = 5000
			g := f.New(42)
			first := collect(g, n)

			if i := firstDiff(first, collect(f.New(42), n)); i >= 0 {
				t.Fatalf("two instances with seed 42 diverge at record %d", i)
			}

			g.Reset()
			if i := firstDiff(first, collect(g, n)); i >= 0 {
				t.Fatalf("replay after Reset diverges at record %d", i)
			}

			g2 := f.New(42)
			collect(g2, 777) // mid-stream, mid-quantum, mid-run offset
			g2.Reset()
			if i := firstDiff(first, collect(g2, n)); i >= 0 {
				t.Fatalf("replay after mid-stream Reset diverges at record %d", i)
			}

			if firstDiff(first, collect(f.New(43), n)) < 0 {
				t.Error("seed 43 replays seed 42's stream: seed has no effect")
			}
		})
	}
}
