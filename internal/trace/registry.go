package trace

// Factory names one replayable generator construction: New must return a
// fresh generator whose stream is fully determined by the seed.
type Factory struct {
	Name string
	New  func(seed uint64) Generator
}

var factories []Factory

// RegisterFactory adds a named generator construction to the conformance
// registry. Every registered factory is covered automatically by the
// generator conformance suite (Reset ⇒ byte-identical replay, seed
// determinism); packages that define composing generators register a
// representative configuration at init time. Duplicate names panic.
func RegisterFactory(name string, fn func(seed uint64) Generator) {
	if name == "" || fn == nil {
		panic("trace: RegisterFactory needs a name and a constructor")
	}
	for _, f := range factories {
		if f.Name == name {
			panic("trace: generator factory " + name + " registered twice")
		}
	}
	factories = append(factories, Factory{Name: name, New: fn})
}

// Factories returns the registered factories in registration order.
func Factories() []Factory {
	out := make([]Factory, len(factories))
	copy(out, factories)
	return out
}

// confParams is a representative mid-sized configuration for the
// conformance registry: several threads, mixed page sizes, gaps, writes
// and spatial runs so every code path in base is exercised.
func confParams(seed uint64) Params {
	return Params{
		Seed:           seed,
		FootprintBytes: 6 << 20,
		LargeFrac:      0.25,
		Threads:        3,
		MeanGap:        5,
		WriteFrac:      0.3,
		RunLines:       8,
	}
}

func init() {
	RegisterFactory("stream", func(seed uint64) Generator { return NewStream(confParams(seed)) })
	RegisterFactory("uniform", func(seed uint64) Generator { return NewUniform(confParams(seed)) })
	RegisterFactory("zipf", func(seed uint64) Generator { return NewZipf(confParams(seed), 0.9) })
	RegisterFactory("chase", func(seed uint64) Generator { return NewChase(confParams(seed)) })
	RegisterFactory("hotcold", func(seed uint64) Generator { return NewHotCold(confParams(seed), 0.2, 0.8) })
	RegisterFactory("mix", func(seed uint64) Generator {
		return NewMix(NewStream(confParams(seed)), NewZipf(confParams(seed^0xA5A5), 1.05), 0.7, seed)
	})
	RegisterFactory("phased", func(seed uint64) Generator {
		small := confParams(seed ^ 0x5A5A)
		small.FootprintBytes = 2 << 20
		return NewPhased(
			Phase{Records: 1000, Gen: NewUniform(confParams(seed))},
			Phase{Records: 500, Gen: NewUniform(small)},
		)
	})
}
