package trace

import (
	"bytes"
	"testing"

	"repro/internal/addr"
)

func TestReplayLoops(t *testing.T) {
	recs := []Record{
		{VA: 1, Thread: 0, Size: addr.Page4K},
		{VA: 2, Thread: 1, Size: addr.Page2M},
		{VA: 3, Thread: 0, Size: addr.Page4K},
	}
	r := NewReplay(recs)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	for pass := 0; pass < 3; pass++ {
		for i, want := range recs {
			if got := r.Next(); got != want {
				t.Fatalf("pass %d record %d: %+v != %+v", pass, i, got, want)
			}
		}
	}
	if r.Loops != 3 { // wraps at reads 3, 6 and 9
		t.Errorf("Loops = %d, want 3", r.Loops)
	}
	r.Reset()
	if r.Loops != 0 || r.Next() != recs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestReplayCopiesInput(t *testing.T) {
	recs := []Record{{VA: 1}}
	r := NewReplay(recs)
	recs[0].VA = 99
	if r.Next().VA != 1 {
		t.Error("replay should copy the input slice")
	}
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReplay(nil)
}

func TestLoadReplay(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	g := NewUniform(testParams())
	if err := WriteAll(w, g, 500); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 500 {
		t.Errorf("Len = %d", r.Len())
	}
	// Replay reproduces the original stream exactly.
	g.Reset()
	for i := 0; i < 500; i++ {
		if r.Next() != g.Next() {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestLoadReplayErrors(t *testing.T) {
	if _, err := LoadReplay(bytes.NewReader([]byte("bad magic header"))); err == nil {
		t.Error("bad stream accepted")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	if _, err := LoadReplay(&buf); err == nil {
		t.Error("empty trace accepted")
	}
}
