package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/addr"
)

// rng is a small deterministic splitmix64 generator, so traces are
// reproducible across platforms and Go releases.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed ^ 0x9E3779B97F4A7C15} }

func (r *rng) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

func (r *rng) Intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Uint64() % n
}

// Params configures a synthetic workload stream.
type Params struct {
	// Seed makes the stream deterministic.
	Seed uint64
	// FootprintBytes is the total data footprint.
	FootprintBytes uint64
	// LargeFrac is the fraction of the footprint backed by 2 MB pages
	// (Table 2's "Frac Large Pages").
	LargeFrac float64
	// Threads is the number of issuing threads (8 for the multithreaded
	// workloads; SPECrate-style copies also present as threads).
	Threads int
	// MeanGap is the mean number of non-memory instructions between
	// memory references on a thread.
	MeanGap uint32
	// WriteFrac is the fraction of references that are stores.
	WriteFrac float64
	// BaseVA is the bottom of the synthetic heap.
	BaseVA uint64
	// RunLines adds spatial locality: after a pattern picks a target,
	// the generator walks ~RunLines sequential cache lines from it before
	// picking again (real codes sweep regions; this is what gives TLB
	// miss streams their spatial correlation and the POM-TLB its high
	// DRAM row-buffer hit rate). 0 disables runs (pure point process).
	RunLines int
}

// Regions reports the virtual-address regions the params' layout
// produces: [largeBase, largeBase+largeBytes) is backed by 2 MB pages,
// [smallBase, smallBase+smallBytes) by 4 KB pages. Scenario layers use
// it to aim shootdowns at addresses a generator can actually emit. The
// params must be valid.
func (p Params) Regions() (largeBase, largeBytes, smallBase, smallBytes uint64) {
	l := newLayout(p)
	return l.largeBase, l.largeBytes, l.smallBase, l.smallBytes
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.FootprintBytes < addr.Bytes4K:
		return fmt.Errorf("trace: footprint %d too small", p.FootprintBytes)
	case p.Threads <= 0 || p.Threads > 256:
		return fmt.Errorf("trace: threads %d out of range", p.Threads)
	case p.LargeFrac < 0 || p.LargeFrac > 1:
		return fmt.Errorf("trace: LargeFrac %f out of range", p.LargeFrac)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("trace: WriteFrac %f out of range", p.WriteFrac)
	}
	return nil
}

// layout places the large-page region below the small-page region, the way
// THP promotes big aligned extents, and translates footprint offsets to
// virtual addresses and page sizes.
type layout struct {
	largeBytes uint64
	smallBytes uint64
	largeBase  uint64
	smallBase  uint64
}

func newLayout(p Params) layout {
	large := uint64(float64(p.FootprintBytes)*p.LargeFrac) &^ (addr.Bytes2M - 1)
	small := (p.FootprintBytes - large + addr.Bytes4K - 1) &^ (addr.Bytes4K - 1)
	base := p.BaseVA
	if base == 0 {
		base = 0x10_0000_0000
	}
	base = (base + addr.Bytes2M - 1) &^ (addr.Bytes2M - 1)
	return layout{
		largeBytes: large,
		smallBytes: small,
		largeBase:  base,
		smallBase:  base + large + addr.Bytes2M, // gap keeps regions apart
	}
}

// Footprint returns the usable footprint in bytes.
func (l layout) footprint() uint64 { return l.largeBytes + l.smallBytes }

// place converts a byte offset into (VA, page size).
func (l layout) place(off uint64) (addr.VA, addr.PageSize) {
	off %= l.footprint()
	if off < l.largeBytes {
		return addr.VA(l.largeBase + off), addr.Page2M
	}
	return addr.VA(l.smallBase + (off - l.largeBytes)), addr.Page4K
}

// base carries the state shared by all pattern generators: layout, RNG,
// round-robin thread rotation, gap/write sampling and per-thread
// sequential-run state.
type base struct {
	p      Params
	l      layout
	r      *rng
	thread int
	// Per-thread run state (only used when RunLines > 0).
	runLeft []int
	runPos  []uint64
}

func newBase(p Params) base {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return base{
		p: p, l: newLayout(p), r: newRNG(p.Seed),
		runLeft: make([]int, p.Threads),
		runPos:  make([]uint64, p.Threads),
	}
}

// reset restores the shared state to its post-newBase value without
// reallocating. Campaigns and the sweep engine reset generators once per
// cell; rebuilding what only depends on the immutable params there is
// pure waste (and, for Zipf, a million-entry CDF per reset).
func (b *base) reset() {
	*b.r = rng{s: b.p.Seed ^ 0x9E3779B97F4A7C15}
	b.thread = 0
	for i := range b.runLeft {
		b.runLeft[i] = 0
		b.runPos[i] = 0
	}
}

// emitWithRuns emits either the next line of the current thread's
// sequential run or a fresh pattern target from pick.
func (b *base) emitWithRuns(pick func() uint64) Record {
	t := b.thread
	if b.p.RunLines > 0 && b.runLeft[t] > 0 {
		b.runLeft[t]--
		b.runPos[t] += addr.CacheLineSize
		return b.emit(b.runPos[t])
	}
	off := pick()
	if b.p.RunLines > 0 {
		b.runLeft[t] = int(b.r.Intn(uint64(2*b.p.RunLines) + 1))
		b.runPos[t] = off
	}
	return b.emit(off)
}

// emit assembles a record for a footprint offset, rotating threads.
func (b *base) emit(off uint64) Record {
	va, size := b.l.place(off &^ 7) // 8-byte aligned accesses
	gap := uint32(0)
	if b.p.MeanGap > 0 {
		// Geometric-ish gap with the requested mean.
		gap = uint32(b.r.Intn(uint64(2*b.p.MeanGap) + 1))
	}
	rec := Record{
		VA:     va,
		Gap:    gap,
		Write:  b.r.Float64() < b.p.WriteFrac,
		Thread: uint8(b.thread),
		Size:   size,
	}
	b.thread = (b.thread + 1) % b.p.Threads
	return rec
}

// Stream generates sequential per-thread streams through disjoint slices
// of the footprint — the streaming behaviour of lbm/libquantum/
// streamcluster that yields near-perfect spatial locality.
type Stream struct {
	base
	cursors []uint64
}

// NewStream builds a streaming generator.
func NewStream(p Params) *Stream {
	s := &Stream{base: newBase(p)}
	s.Reset()
	return s
}

// Reset implements Generator.
func (s *Stream) Reset() {
	s.base.reset()
	if s.cursors == nil {
		s.cursors = make([]uint64, s.p.Threads)
	}
	slice := s.l.footprint() / uint64(s.p.Threads)
	for t := range s.cursors {
		s.cursors[t] = uint64(t) * slice
	}
}

// Next implements Generator.
func (s *Stream) Next() Record {
	t := s.thread
	off := s.cursors[t]
	s.cursors[t] += addr.CacheLineSize
	return s.emit(off)
}

// Uniform generates uniformly random references over the footprint — the
// gups pattern with essentially no locality at any level.
type Uniform struct{ base }

// NewUniform builds a uniform-random generator.
func NewUniform(p Params) *Uniform {
	return &Uniform{base: newBase(p)}
}

// Reset implements Generator.
func (u *Uniform) Reset() { u.base.reset() }

// Next implements Generator.
func (u *Uniform) Next() Record {
	return u.emitWithRuns(func() uint64 { return u.r.Intn(u.l.footprint()) })
}

// Zipf generates page-granular references with a power-law popularity
// distribution — the graph-workload pattern (pagerank, connected
// components, graph500) where a few hub pages are hot and a long tail is
// touched rarely.
type Zipf struct {
	base
	s     float64
	cdf   []float64
	pages uint64  // full page universe; cdf covers min(pages, maxZipfCDF)
	tailP float64 // popularity mass of the uniform tail past the CDF
	perm  uint64  // multiplicative scramble so rank ≠ address order
}

// maxZipfCDF caps the explicit CDF at 1M ranks (4 GiB of 4 KB pages);
// footprints beyond it keep their popularity mass in an analytic uniform
// tail rather than an ever-larger table.
const maxZipfCDF = 1 << 20

// NewZipf builds a Zipf generator with skew s (s > 0; ~0.9 for graphs).
func NewZipf(p Params, s float64) *Zipf {
	if s <= 0 {
		panic("trace: zipf skew must be positive")
	}
	z := &Zipf{base: newBase(p), s: s}
	z.build()
	return z
}

func (z *Zipf) build() {
	z.pages = z.l.footprint() / addr.Bytes4K
	n := z.pages
	if n > maxZipfCDF {
		n = maxZipfCDF
	}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := range z.cdf {
		sum += 1 / math.Pow(float64(i+1), z.s)
		z.cdf[i] = sum
	}
	// Pages past the CDF cap keep their Zipf popularity mass — the sum
	// over the tail ranks, approximated by the integral of x^-s — and a
	// draw landing there spreads uniformly over the tail pages. Without
	// this the cap silently shrank the page universe: no reference could
	// ever land beyond 4 GiB no matter the footprint.
	tail := 0.0
	if z.pages > n {
		tail = zipfTailMass(float64(n), float64(z.pages), z.s)
	}
	total := sum + tail
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	z.tailP = tail / total
	z.perm = 0x9E3779B97F4A7C15 | 1
}

// zipfTailMass approximates Σ_{i=lo+1..hi} i^-s by ∫_lo^hi x^-s dx.
func zipfTailMass(lo, hi, s float64) float64 {
	if s == 1 {
		return math.Log(hi / lo)
	}
	return (math.Pow(hi, 1-s) - math.Pow(lo, 1-s)) / (1 - s)
}

// Reset implements Generator. The CDF depends only on the immutable
// params, so it survives resets; only the RNG/thread/run state rewinds.
func (z *Zipf) Reset() { z.base.reset() }

// Next implements Generator.
func (z *Zipf) Next() Record {
	return z.emitWithRuns(func() uint64 {
		var rank uint64
		u := z.r.Float64()
		if n := uint64(len(z.cdf)); u >= z.cdf[n-1] {
			// Uniform tail: every page past the CDF cap equally likely.
			rank = n + z.r.Intn(z.pages-n)
		} else {
			rank = uint64(sort.SearchFloat64s(z.cdf, u))
		}
		// Rank maps directly to page order: graph layouts store hubs
		// contiguously (degree-sorted), so the hot pages are neighbours —
		// which is what gives their POM-TLB set lines reuse. Hubs start
		// at the 4 KB region so the hot set stresses the TLBs. The modulo
		// wraps over the same z.pages universe the CDF was built against.
		page := (z.l.largeBytes/addr.Bytes4K + rank) % z.pages
		return page*addr.Bytes4K + z.r.Intn(addr.Bytes4K)
	})
}

// Chase generates a full-period pseudo-random pointer chase over cache
// lines (an LCG permutation walk): every line is visited once per period
// with no spatial locality — the mcf/astar pattern of dependent loads.
type Chase struct {
	base
	cursors []uint64
	lines   uint64 // power of two
	a, c    uint64
}

// NewChase builds a pointer-chase generator.
func NewChase(p Params) *Chase {
	g := &Chase{base: newBase(p)}
	g.init()
	return g
}

func (g *Chase) init() {
	lines := g.l.footprint() / addr.CacheLineSize
	// Round down to a power of two for a full-period LCG (m = 2^k,
	// a ≡ 5 mod 8, c odd).
	for lines&(lines-1) != 0 {
		lines &= lines - 1
	}
	g.lines = lines
	g.a = 6364136223846793005 // ≡ 5 (mod 8)
	g.c = 1442695040888963407 // odd
	g.cursors = make([]uint64, g.p.Threads)
	for t := range g.cursors {
		g.cursors[t] = uint64(t) * (lines / uint64(g.p.Threads))
	}
}

// Reset implements Generator.
func (g *Chase) Reset() {
	g.base.reset()
	for t := range g.cursors {
		g.cursors[t] = uint64(t) * (g.lines / uint64(g.p.Threads))
	}
}

// Next implements Generator.
func (g *Chase) Next() Record {
	t := g.thread
	cur := g.cursors[t]
	g.cursors[t] = (cur*g.a + g.c) & (g.lines - 1)
	return g.emit(cur * addr.CacheLineSize)
}

// HotCold generates a working-set mixture: with probability pHot the
// reference lands in a hot region of hotFrac × footprint, otherwise
// anywhere — the gcc/zeusmp/soplex class of workloads whose hot set
// overflows the SRAM TLBs while the cold tail overflows everything.
//
// The hot region is deliberately placed at the start of the 4 KB-page
// region: it is the part of the address space whose translations stress
// the TLBs (a hot set of a few 2 MB pages would live in the 32-entry L1
// TLB forever and produce no misses at all).
type HotCold struct {
	base
	pHot     float64
	hotFrac  float64
	hotStart uint64
	hotSize  uint64
}

// NewHotCold builds a hot/cold mixture generator. hotFrac is the hot
// region's share of the footprint.
func NewHotCold(p Params, hotFrac, pHot float64) *HotCold {
	if hotFrac <= 0 || hotFrac > 1 || pHot < 0 || pHot > 1 {
		panic("trace: HotCold fractions out of range")
	}
	g := &HotCold{base: newBase(p), pHot: pHot}
	g.place(hotFrac)
	return g
}

func (g *HotCold) place(hotFrac float64) {
	g.hotSize = uint64(float64(g.l.footprint()) * hotFrac)
	if g.hotSize < addr.Bytes4K {
		g.hotSize = addr.Bytes4K
	}
	// Prefer the small-page region; fall back to offset 0 when the
	// footprint is (nearly) all large pages.
	g.hotStart = g.l.largeBytes
	if g.hotStart+g.hotSize > g.l.footprint() {
		g.hotStart = 0
	}
	g.hotFrac = hotFrac
}

// Reset implements Generator. The hot-region placement depends only on
// the immutable params, so it survives resets.
func (g *HotCold) Reset() { g.base.reset() }

// Next implements Generator.
func (g *HotCold) Next() Record {
	return g.emitWithRuns(func() uint64 {
		if g.r.Float64() < g.pHot {
			return g.hotStart + g.r.Intn(g.hotSize)
		}
		return g.r.Intn(g.l.footprint())
	})
}

// Mix interleaves two generators with a fixed probability — e.g. a
// streaming phase with occasional random lookups (GemsFDTD, canneal).
type Mix struct {
	A, B  Generator
	PA    float64
	rnd   *rng
	seed  uint64
	count uint64
}

// NewMix builds a probabilistic interleave: pA chance of drawing from a.
func NewMix(a, b Generator, pA float64, seed uint64) *Mix {
	if pA < 0 || pA > 1 {
		panic("trace: mix probability out of range")
	}
	return &Mix{A: a, B: b, PA: pA, rnd: newRNG(seed), seed: seed}
}

// Reset implements Generator.
func (m *Mix) Reset() {
	m.A.Reset()
	m.B.Reset()
	*m.rnd = rng{s: m.seed ^ 0x9E3779B97F4A7C15}
	m.count = 0
}

// Next implements Generator.
func (m *Mix) Next() Record {
	m.count++
	if m.rnd.Float64() < m.PA {
		return m.A.Next()
	}
	return m.B.Next()
}
