package trace

import (
	"fmt"
	"strings"

	"repro/internal/addr"
)

// Analysis summarizes the locality structure of a reference stream — the
// properties that determine its TLB/cache/DRAM behaviour. It is what the
// paper's authors would have extracted from their PIN traces to
// characterize workloads, and what this repository uses to calibrate its
// synthetic generators against Table 2's classes.
type Analysis struct {
	// Records is the number of references analyzed.
	Records uint64
	// Pages4K / Pages2M are the distinct page counts per size.
	Pages4K, Pages2M uint64
	// FootprintBytes approximates the touched footprint.
	FootprintBytes uint64
	// WriteFrac is the store fraction.
	WriteFrac float64
	// LargeAccessFrac is the fraction of references to 2 MB pages.
	LargeAccessFrac float64
	// MeanGap is the mean non-memory instruction gap.
	MeanGap float64
	// SequentialFrac is the fraction of references exactly one line after
	// the same thread's previous reference (spatial-run density).
	SequentialFrac float64
	// PageReuse is the page-granular reuse-distance histogram: counts of
	// references whose same-page previous access was within 2^k distinct
	// pages (bucket k), plus an overflow/cold bucket.
	PageReuse []uint64
	// Threads is the number of distinct threads.
	Threads int
}

// reuseTracker measures page-granular stack (reuse) distances with an
// exact but simple structure: an access-ordered list of pages. O(n·d) —
// fine for calibration-sized traces.
type reuseTracker struct {
	order []uint64          // most recent first
	pos   map[uint64]int    // page → index in order
	hist  map[uint64]uint64 // distance bucket (log2) → count
	cold  uint64
}

func newReuseTracker() *reuseTracker {
	return &reuseTracker{pos: make(map[uint64]int), hist: make(map[uint64]uint64)}
}

func (r *reuseTracker) touch(page uint64) {
	if idx, ok := r.pos[page]; ok {
		// Distance = number of distinct pages touched since.
		d := uint64(idx)
		b := uint64(0)
		for 1<<b < d+1 {
			b++
		}
		r.hist[b]++
		// Move to front.
		copy(r.order[1:idx+1], r.order[:idx])
		r.order[0] = page
		for i := 0; i <= idx; i++ {
			r.pos[r.order[i]] = i
		}
		return
	}
	r.cold++
	r.order = append([]uint64{page}, r.order...)
	for i, p := range r.order {
		r.pos[p] = i
	}
}

// Analyze consumes n records from a generator and summarizes them.
func Analyze(g Generator, n int) Analysis {
	a := Analysis{}
	seen4K := make(map[uint64]bool)
	seen2M := make(map[uint64]bool)
	threads := make(map[uint8]bool)
	lastLine := make(map[uint8]uint64)
	reuse := newReuseTracker()
	var writes, seq, large uint64
	var gaps float64

	const reuseCap = 1 << 14 // bound the exact-stack cost
	for i := 0; i < n; i++ {
		rec := g.Next()
		a.Records++
		threads[rec.Thread] = true
		if rec.Write {
			writes++
		}
		gaps += float64(rec.Gap)
		if rec.Size == addr.Page2M {
			large++
			seen2M[rec.VA.VPN(addr.Page2M)] = true
		} else {
			seen4K[rec.VA.VPN(addr.Page4K)] = true
		}
		line := rec.VA.Line()
		if prev, ok := lastLine[rec.Thread]; ok && line == prev+1 {
			seq++
		}
		lastLine[rec.Thread] = line
		if len(reuse.pos) < reuseCap {
			reuse.touch(rec.VA.VPN(addr.Page4K))
		}
	}
	if a.Records == 0 {
		return a
	}
	a.Pages4K = uint64(len(seen4K))
	a.Pages2M = uint64(len(seen2M))
	a.FootprintBytes = a.Pages4K*addr.Bytes4K + a.Pages2M*addr.Bytes2M
	a.WriteFrac = float64(writes) / float64(a.Records)
	a.LargeAccessFrac = float64(large) / float64(a.Records)
	a.Threads = len(threads)
	a.MeanGap = gaps / float64(a.Records)
	a.SequentialFrac = float64(seq) / float64(a.Records)

	// Flatten the reuse histogram into ascending buckets.
	maxB := uint64(0)
	for b := range reuse.hist {
		if b > maxB {
			maxB = b
		}
	}
	a.PageReuse = make([]uint64, maxB+2)
	for b, c := range reuse.hist {
		a.PageReuse[b] = c
	}
	a.PageReuse[maxB+1] = reuse.cold
	return a
}

// String renders a compact report.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records         %d (threads %d)\n", a.Records, a.Threads)
	fmt.Fprintf(&b, "footprint       %.1f MB (%d 4K pages, %d 2M pages)\n",
		float64(a.FootprintBytes)/(1<<20), a.Pages4K, a.Pages2M)
	fmt.Fprintf(&b, "writes          %.1f%%\n", 100*a.WriteFrac)
	fmt.Fprintf(&b, "mean gap        %.1f instructions\n", a.MeanGap)
	fmt.Fprintf(&b, "sequential      %.1f%% of references\n", 100*a.SequentialFrac)
	if len(a.PageReuse) > 0 {
		fmt.Fprintf(&b, "page reuse (distinct-pages distance → refs):\n")
		for k, c := range a.PageReuse[:len(a.PageReuse)-1] {
			if c == 0 {
				continue
			}
			fmt.Fprintf(&b, "  ≤ %6d pages: %d\n", 1<<k, c)
		}
		fmt.Fprintf(&b, "  cold          : %d\n", a.PageReuse[len(a.PageReuse)-1])
	}
	return b.String()
}

// HotSetPages returns the smallest number of distinct pages covering the
// given fraction of non-cold reuses — a calibration aid for hot-set sizes.
func (a Analysis) HotSetPages(frac float64) uint64 {
	if len(a.PageReuse) == 0 {
		return 0
	}
	var total uint64
	for _, c := range a.PageReuse[:len(a.PageReuse)-1] {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(frac * float64(total))
	var cum uint64
	buckets := a.PageReuse[:len(a.PageReuse)-1]
	for k, c := range buckets {
		cum += c
		if cum >= target {
			return 1 << uint(k)
		}
	}
	return 1 << uint(len(buckets))
}
