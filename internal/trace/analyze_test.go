package trace

import (
	"strings"
	"testing"

	"repro/internal/addr"
)

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(NewUniform(testParams()), 0)
	if a.Records != 0 || a.String() == "" {
		t.Error("empty analysis malformed")
	}
}

func TestAnalyzeStream(t *testing.T) {
	p := testParams()
	p.Threads = 1
	p.LargeFrac = 0
	a := Analyze(NewStream(p), 20_000)
	if a.Records != 20_000 || a.Threads != 1 {
		t.Errorf("records=%d threads=%d", a.Records, a.Threads)
	}
	if a.SequentialFrac < 0.99 {
		t.Errorf("stream sequential fraction = %f", a.SequentialFrac)
	}
	if a.LargeAccessFrac != 0 {
		t.Errorf("no 2M pages expected, got %f", a.LargeAccessFrac)
	}
	// 20k sequential lines = 20k×64B = 1.25 MB ≈ 320 pages.
	if a.Pages4K < 300 || a.Pages4K > 340 {
		t.Errorf("Pages4K = %d", a.Pages4K)
	}
}

func TestAnalyzeUniform(t *testing.T) {
	p := testParams() // 50% large pages
	a := Analyze(NewUniform(p), 20_000)
	if a.SequentialFrac > 0.05 {
		t.Errorf("uniform sequential fraction = %f", a.SequentialFrac)
	}
	if a.LargeAccessFrac < 0.3 || a.LargeAccessFrac > 0.7 {
		t.Errorf("large access fraction = %f", a.LargeAccessFrac)
	}
	if a.WriteFrac < 0.2 || a.WriteFrac > 0.4 {
		t.Errorf("write fraction = %f (param 0.3)", a.WriteFrac)
	}
	if a.MeanGap < 5 || a.MeanGap > 15 {
		t.Errorf("mean gap = %f (param 10)", a.MeanGap)
	}
}

func TestAnalyzeHotColdReuse(t *testing.T) {
	p := testParams()
	p.LargeFrac = 0
	p.FootprintBytes = 256 << 20
	g := NewHotCold(p, 0.001, 0.95) // tiny, very hot set
	a := Analyze(g, 30_000)
	hot := a.HotSetPages(0.9)
	// Hot set is 0.1% of 256MB = 64 pages; the 90% reuse mass should sit
	// within a small page count (power-of-two bucketed).
	if hot > 1024 {
		t.Errorf("HotSetPages(0.9) = %d, want small", hot)
	}
	if !strings.Contains(a.String(), "page reuse") {
		t.Error("report missing reuse section")
	}
}

func TestHotSetPagesDegenerate(t *testing.T) {
	var a Analysis
	if a.HotSetPages(0.9) != 0 {
		t.Error("empty analysis hot set should be 0")
	}
	a.PageReuse = []uint64{0, 0} // no reuses, only cold bucket
	if a.HotSetPages(0.9) != 0 {
		t.Error("reuse-free analysis hot set should be 0")
	}
}

func TestReuseTrackerExact(t *testing.T) {
	r := newReuseTracker()
	r.touch(1) // cold
	r.touch(2) // cold
	r.touch(1) // distance 1 (one distinct page since) → bucket ≤2
	r.touch(3) // cold
	r.touch(2) // distance 2 → bucket ≤2 or ≤4
	if r.cold != 3 {
		t.Errorf("cold = %d, want 3", r.cold)
	}
	var reuses uint64
	for _, c := range r.hist {
		reuses += c
	}
	if reuses != 2 {
		t.Errorf("reuses = %d, want 2", reuses)
	}
}

func TestAnalyzeMatchesGeneratorFootprint(t *testing.T) {
	// The analyzer should roughly recover the configured footprint for a
	// full-coverage uniform stream.
	p := Params{
		Seed: 1, FootprintBytes: 8 << 20, LargeFrac: 0,
		Threads: 2, MeanGap: 0, WriteFrac: 0,
	}
	a := Analyze(NewUniform(p), 100_000)
	pages := p.FootprintBytes / addr.Bytes4K
	if a.Pages4K < pages*9/10 {
		t.Errorf("recovered %d of %d pages", a.Pages4K, pages)
	}
}
