package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func testParams() Params {
	return Params{
		Seed:           1,
		FootprintBytes: 64 << 20,
		LargeFrac:      0.5,
		Threads:        4,
		MeanGap:        10,
		WriteFrac:      0.3,
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{VA: 0x1000, Gap: 5, Write: true, Thread: 3, Size: addr.Page4K},
		{VA: 0xdead_beef_0000, Gap: 0, Write: false, Thread: 0, Size: addr.Page2M},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOTATRACE_______")))
	if err == nil {
		t.Error("bad magic accepted")
	}
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic error = %v, want ErrBadMagic", err)
	}
	_, err = NewReader(bytes.NewReader(nil))
	if err == nil {
		t.Error("empty stream accepted")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("empty stream error = %v, want ErrTruncated", err)
	}
}

// TestReaderSentinelErrors pins the typed-error contract the server's
// status mapping depends on: short header → ErrTruncated, wrong magic →
// ErrBadMagic, torn record → ErrTruncated, clean end → io.EOF.
func TestReaderSentinelErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("POM"))); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v, want ErrTruncated", err)
	}

	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{VA: 0x1000, Gap: 3})
	w.Write(Record{VA: 0x2000, Gap: 4})
	w.Flush()

	// Clean stream: both records, then io.EOF.
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("clean end: %v, want io.EOF", err)
	}

	// Torn stream: first record whole, second cut mid-struct.
	torn := buf.Bytes()[:buf.Len()-5]
	r, err = NewReader(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatalf("whole record before tear: %v", err)
	}
	if _, err := r.Read(); !errors.Is(err, ErrTruncated) {
		t.Errorf("torn record: %v, want ErrTruncated", err)
	}
}

// Property: records round-trip through the binary format.
func TestRecordRoundtripProperty(t *testing.T) {
	f := func(raw uint64, gap uint32, write bool, thread uint8, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		rec := Record{VA: addr.Canonical(raw), Gap: gap, Write: write, Thread: thread, Size: size}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Write(rec)
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Read()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{FootprintBytes: 100, Threads: 1},
		{FootprintBytes: 1 << 20, Threads: 0},
		{FootprintBytes: 1 << 20, Threads: 1, LargeFrac: 1.5},
		{FootprintBytes: 1 << 20, Threads: 1, WriteFrac: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("params %d should be invalid", i)
		}
	}
	if err := testParams().Validate(); err != nil {
		t.Error(err)
	}
}

func TestLayoutPlacement(t *testing.T) {
	l := newLayout(testParams()) // 32 MB large + 32 MB small
	if l.largeBytes != 32<<20 || l.smallBytes != 32<<20 {
		t.Fatalf("layout = %+v", l)
	}
	va, size := l.place(0)
	if size != addr.Page2M || uint64(va) != l.largeBase {
		t.Errorf("offset 0 = %v %v", va, size)
	}
	va, size = l.place(l.largeBytes)
	if size != addr.Page4K || uint64(va) != l.smallBase {
		t.Errorf("first small offset = %v %v", va, size)
	}
	if l.largeBase%addr.Bytes2M != 0 {
		t.Error("large base not 2MB aligned")
	}
	// Wraps beyond footprint.
	va1, _ := l.place(0)
	va2, _ := l.place(l.footprint())
	if va1 != va2 {
		t.Error("place should wrap at footprint")
	}
}

func TestLayoutAllSmall(t *testing.T) {
	p := testParams()
	p.LargeFrac = 0
	l := newLayout(p)
	if l.largeBytes != 0 {
		t.Errorf("largeBytes = %d", l.largeBytes)
	}
	_, size := l.place(12345)
	if size != addr.Page4K {
		t.Error("all-small layout produced a 2M page")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func() Generator{
		"stream":  func() Generator { return NewStream(testParams()) },
		"uniform": func() Generator { return NewUniform(testParams()) },
		"zipf":    func() Generator { return NewZipf(testParams(), 0.9) },
		"chase":   func() Generator { return NewChase(testParams()) },
		"hotcold": func() Generator { return NewHotCold(testParams(), 0.1, 0.8) },
		"mix": func() Generator {
			return NewMix(NewStream(testParams()), NewUniform(testParams()), 0.7, 42)
		},
	}
	for name, mk := range gens {
		a := Collect(mk(), 1000)
		b := Collect(mk(), 1000)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: record %d differs between identical generators", name, i)
				break
			}
		}
		// Reset reproduces the stream.
		g := mk()
		first := Collect(g, 500)
		g.Reset()
		second := Collect(g, 500)
		for i := range first {
			if first[i] != second[i] {
				t.Errorf("%s: Reset did not rewind (record %d)", name, i)
				break
			}
		}
	}
}

func TestGeneratorsRespectLayout(t *testing.T) {
	p := testParams()
	l := newLayout(p)
	gens := []Generator{
		NewStream(p), NewUniform(p), NewZipf(p, 0.9), NewChase(p),
		NewHotCold(p, 0.1, 0.8),
	}
	for _, g := range gens {
		for i := 0; i < 5000; i++ {
			r := g.Next()
			va := uint64(r.VA)
			inLarge := va >= l.largeBase && va < l.largeBase+l.largeBytes
			inSmall := va >= l.smallBase && va < l.smallBase+l.smallBytes
			if !inLarge && !inSmall {
				t.Fatalf("%T: VA %#x outside both regions", g, va)
			}
			if inLarge && r.Size != addr.Page2M {
				t.Fatalf("%T: large-region VA tagged %v", g, r.Size)
			}
			if inSmall && r.Size != addr.Page4K {
				t.Fatalf("%T: small-region VA tagged %v", g, r.Size)
			}
			if int(r.Thread) >= p.Threads {
				t.Fatalf("%T: thread %d out of range", g, r.Thread)
			}
		}
	}
}

func TestStreamIsSequential(t *testing.T) {
	p := testParams()
	p.Threads = 1
	p.LargeFrac = 0
	g := NewStream(p)
	prev := g.Next().VA
	for i := 0; i < 100; i++ {
		cur := g.Next().VA
		if uint64(cur)-uint64(prev) != addr.CacheLineSize {
			t.Fatalf("stream step = %d, want 64", uint64(cur)-uint64(prev))
		}
		prev = cur
	}
}

func TestUniformCoversFootprint(t *testing.T) {
	p := testParams()
	g := NewUniform(p)
	pages := make(map[uint64]bool)
	for i := 0; i < 50_000; i++ {
		pages[g.Next().VA.VPN(addr.Page4K)] = true
	}
	// 64 MB footprint = 16384 4K pages; 50k uniform draws should touch many.
	if len(pages) < 5000 {
		t.Errorf("uniform touched only %d pages", len(pages))
	}
}

func TestZipfIsSkewed(t *testing.T) {
	p := testParams()
	g := NewZipf(p, 1.1)
	counts := make(map[addr.VA]int)
	n := 50_000
	for i := 0; i < n; i++ {
		counts[g.Next().VA.PageBase(addr.Page4K)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(n) < 0.01 {
		t.Errorf("zipf hottest page got only %d/%d refs — not skewed", max, n)
	}
	if len(counts) < 100 {
		t.Errorf("zipf touched only %d pages — no tail", len(counts))
	}
}

func TestChaseVisitsManyLines(t *testing.T) {
	p := testParams()
	p.Threads = 1
	g := NewChase(p)
	lines := make(map[uint64]bool)
	for i := 0; i < 20_000; i++ {
		lines[g.Next().VA.Line()] = true
	}
	// Full-period permutation: 20k steps touch ~20k distinct lines.
	if len(lines) < 19_000 {
		t.Errorf("chase revisited too early: %d distinct lines", len(lines))
	}
}

func TestHotColdConcentrates(t *testing.T) {
	p := testParams()
	g := NewHotCold(p, 0.05, 0.9)
	l := newLayout(p)
	hot := 0
	n := 20_000
	for i := 0; i < n; i++ {
		r := g.Next()
		off := uint64(r.VA) - l.largeBase
		if uint64(r.VA) >= l.smallBase {
			off = l.largeBytes + uint64(r.VA) - l.smallBase
		}
		if off >= g.hotStart && off < g.hotStart+g.hotSize {
			hot++
		}
	}
	if float64(hot)/float64(n) < 0.8 {
		t.Errorf("hot fraction = %f, want ≈ 0.9", float64(hot)/float64(n))
	}
}

func TestHotColdHotRegionInSmallPages(t *testing.T) {
	p := testParams() // 50% large pages
	g := NewHotCold(p, 0.05, 1.0)
	for i := 0; i < 1000; i++ {
		if r := g.Next(); r.Size != addr.Page4K {
			t.Fatalf("hot reference landed on a %v page", r.Size)
		}
	}
}

func TestRunsAreSequential(t *testing.T) {
	p := testParams()
	p.Threads = 1
	p.RunLines = 16
	g := NewUniform(p)
	var jumps, steps int
	prev := g.Next().VA
	for i := 0; i < 10_000; i++ {
		cur := g.Next().VA
		if uint64(cur)-uint64(prev) == addr.CacheLineSize {
			steps++
		} else {
			jumps++
		}
		prev = cur
	}
	// Mean run length 16 → roughly 1 jump per 16 steps.
	ratio := float64(steps) / float64(jumps+1)
	if ratio < 8 || ratio > 32 {
		t.Errorf("steps/jumps = %.1f, want ≈ 16", ratio)
	}
}

func TestMixDrawsFromBoth(t *testing.T) {
	p := testParams()
	p.LargeFrac = 0
	a := NewStream(p)
	pb := p
	pb.BaseVA = 0x70_0000_0000
	b := NewUniform(pb)
	m := NewMix(a, b, 0.5, 7)
	var fromA, fromB int
	for i := 0; i < 1000; i++ {
		r := m.Next()
		if uint64(r.VA) >= 0x70_0000_0000 {
			fromB++
		} else {
			fromA++
		}
	}
	if fromA < 300 || fromB < 300 {
		t.Errorf("mix imbalance: %d vs %d", fromA, fromB)
	}
}

func TestGapDistribution(t *testing.T) {
	p := testParams()
	p.MeanGap = 20
	g := NewUniform(p)
	var sum float64
	n := 20_000
	for i := 0; i < n; i++ {
		sum += float64(g.Next().Gap)
	}
	mean := sum / float64(n)
	if mean < 15 || mean > 25 {
		t.Errorf("gap mean = %f, want ≈ 20", mean)
	}
}

func TestWriteFraction(t *testing.T) {
	p := testParams()
	p.WriteFrac = 0.25
	g := NewUniform(p)
	writes := 0
	n := 20_000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / float64(n)
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("write fraction = %f, want ≈ 0.25", frac)
	}
}

func TestThreadRotation(t *testing.T) {
	p := testParams()
	g := NewUniform(p)
	seen := make(map[uint8]int)
	for i := 0; i < 400; i++ {
		seen[g.Next().Thread]++
	}
	if len(seen) != p.Threads {
		t.Errorf("saw %d threads, want %d", len(seen), p.Threads)
	}
	for th, c := range seen {
		if c != 100 {
			t.Errorf("thread %d got %d records, want 100", th, c)
		}
	}
}

func TestGeneratorPanicsOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"badparams": func() { NewUniform(Params{}) },
		"zipfskew":  func() { NewZipf(testParams(), 0) },
		"hotcold":   func() { NewHotCold(testParams(), 0, 0.5) },
		"mixprob":   func() { NewMix(NewUniform(testParams()), NewUniform(testParams()), 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWriteAll(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := WriteAll(w, NewUniform(testParams()), 100); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(&buf)
	n := 0
	for {
		if _, err := r.Read(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 100 {
		t.Errorf("read %d records, want 100", n)
	}
}
