package pagetable

import (
	"testing"

	"repro/internal/addr"
)

// TestFig1ReferenceOrdering verifies not just the count but the *structure*
// of the cold 2D walk: the paper's Figure 1 sequence is, for each of the
// four guest levels, a full four-level host walk (hL4 hL3 hL2 hL1) followed
// by the guest PTE read, and finally a four-level host walk of the data
// address — 24 references in 5 columns.
func TestFig1ReferenceOrdering(t *testing.T) {
	guest, host := twoD(t, 0x7f00_0000_1000, addr.Page4K)

	// Record every reference with whether it falls inside the host table's
	// node region (host walks) or the EPT-mapped guest node frames.
	hostNodes := map[uint64]bool{}
	// The host table's nodes live at 0x900_0000.. (see twoD); collect them
	// by walking the host table for each guest ref.
	var kinds []byte // 'h' = host PTE read, 'g' = guest PTE read
	mem := func(a addr.HPA, write bool) uint64 {
		if uint64(a) >= 0x900_0000 && uint64(a) < 0x900_0000+1<<20 {
			kinds = append(kinds, 'h')
		} else {
			kinds = append(kinds, 'g')
		}
		return 1
	}
	_ = hostNodes
	w := NewWalker(DefaultWalkerConfig(), mem)
	res := w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	if !res.OK || res.Refs != 24 {
		t.Fatalf("cold walk: ok=%v refs=%d", res.OK, res.Refs)
	}

	want := "hhhhg" + "hhhhg" + "hhhhg" + "hhhhg" + "hhhh"
	if got := string(kinds); got != want {
		t.Errorf("Figure 1 ordering violated:\n got %s\nwant %s", got, want)
	}
}

// TestFig1NativeOrdering: a native walk is simply the four levels in order.
func TestFig1NativeOrdering(t *testing.T) {
	table := New(bump(0x40_0000))
	table.Map(0x1234_5000, 0x66, addr.Page4K)
	var levels []addr.Level
	full, _, _ := table.Walk(0x1234_5000)
	for _, r := range full {
		levels = append(levels, r.Level)
	}
	for i, l := range levels {
		if l != addr.Level(i) {
			t.Errorf("ref %d at level %v, want %v", i, l, addr.Level(i))
		}
	}
}
