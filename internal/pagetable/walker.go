package pagetable

import (
	"fmt"

	"repro/internal/addr"
)

// MemFunc models one 8-byte page-table-entry read issued to the memory
// hierarchy at a host physical address; it returns the access latency in
// CPU cycles. The core simulator routes these through the data caches
// (PTEs are cached like data, as in real x86), so walk cost depends on
// locality exactly as the paper's baseline does.
type MemFunc func(a addr.HPA, write bool) uint64

// WalkerConfig sizes the walker's acceleration structures (Table 1 PSC row).
type WalkerConfig struct {
	PML4Entries int
	PDPEntries  int
	PDEEntries  int
	PSCLatency  uint64 // cycles per PSC probe round
	NestedTLB   int    // gPA→hPA nested TLB entries
	NestedLat   uint64 // cycles per nested TLB probe
}

// DefaultWalkerConfig returns the Table 1 PSC configuration with a
// Skylake-like nested TLB.
func DefaultWalkerConfig() WalkerConfig {
	return WalkerConfig{
		PML4Entries: 2,
		PDPEntries:  4,
		PDEEntries:  32,
		PSCLatency:  2,
		NestedTLB:   32,
		NestedLat:   1,
	}
}

// WalkResult is the outcome of one translation walk.
type WalkResult struct {
	// HPFN is the host physical frame number at Size granularity.
	HPFN uint64
	// Size is the page size of the final mapping (the guest leaf size;
	// an effective mapping is only as large as both dimensions allow, so
	// the guest size is capped by the host mapping's size).
	Size addr.PageSize
	// Latency is the total walk latency in CPU cycles.
	Latency uint64
	// Refs is the number of page-table-entry memory references issued.
	Refs int
	// OK is false on a translation fault (unmapped address).
	OK bool
}

// WalkStats aggregates walker activity.
type WalkStats struct {
	Walks2D      uint64
	WalksNative  uint64
	TotalRefs    uint64
	TotalLatency uint64
	Faults       uint64
	// PSCSkips counts guest levels skipped thanks to PSC hits.
	PSCSkips uint64
}

// AvgRefs returns references per walk.
func (s WalkStats) AvgRefs() float64 {
	n := s.Walks2D + s.WalksNative
	if n == 0 {
		return 0
	}
	return float64(s.TotalRefs) / float64(n)
}

// AvgLatency returns cycles per walk.
func (s WalkStats) AvgLatency() float64 {
	n := s.Walks2D + s.WalksNative
	if n == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(n)
}

// Walker performs radix walks — native 1D walks and virtualized 2D nested
// walks — accelerated by page-structure caches and a nested TLB, issuing
// every PTE reference through a MemFunc.
type Walker struct {
	cfg    WalkerConfig
	pml4c  *PSC
	pdpc   *PSC
	pdec   *PSC
	nested *NestedTLB
	mem    MemFunc
	stats  WalkStats
	// grefs and hrefs are reusable walk scratch buffers (guest/native
	// dimension and host dimension respectively), so steady-state walks
	// allocate nothing. They are distinct because the host dimension is
	// walked while iterating the guest dimension's refs.
	grefs []Ref
	hrefs []Ref
}

// NewWalker builds a walker. mem must not be nil.
func NewWalker(cfg WalkerConfig, mem MemFunc) *Walker {
	if mem == nil {
		panic("pagetable: nil MemFunc")
	}
	return &Walker{
		cfg:    cfg,
		pml4c:  NewPSC("PML4", cfg.PML4Entries),
		pdpc:   NewPSC("PDP", cfg.PDPEntries),
		pdec:   NewPSC("PDE", cfg.PDEEntries),
		nested: NewNestedTLB(cfg.NestedTLB),
		mem:    mem,
		grefs:  make([]Ref, 0, 8),
		hrefs:  make([]Ref, 0, 8),
	}
}

// Stats returns a copy of the walker's counters.
func (w *Walker) Stats() WalkStats { return w.stats }

// ResetStats clears the walk counters; PSC and nested-TLB contents (and
// their own hit/miss counters) are untouched.
func (w *Walker) ResetStats() { w.stats = WalkStats{} }

// Add merges another set of walk counters (for multi-core aggregation).
func (s *WalkStats) Add(o WalkStats) {
	s.Walks2D += o.Walks2D
	s.WalksNative += o.WalksNative
	s.TotalRefs += o.TotalRefs
	s.TotalLatency += o.TotalLatency
	s.Faults += o.Faults
	s.PSCSkips += o.PSCSkips
}

// PSCs exposes the three page-structure caches for stats reporting.
func (w *Walker) PSCs() (pml4, pdp, pde *PSC) { return w.pml4c, w.pdpc, w.pdec }

// Nested exposes the nested TLB for stats reporting.
func (w *Walker) Nested() *NestedTLB { return w.nested }

// InvalidateAll flushes all acceleration state (full shootdown).
func (w *Walker) InvalidateAll() {
	w.pml4c.InvalidateAll()
	w.pdpc.InvalidateAll()
	w.pdec.InvalidateAll()
	w.nested.InvalidateAll()
}

// prefix extracts the VA prefix covering the upper levels down to (and
// including) level l's index; this is the tag for the PSC that skips to
// the node *below* level l.
func prefix(va addr.VA, l addr.Level) uint64 {
	switch l {
	case addr.PML4:
		return uint64(va) >> 39
	case addr.PDPT:
		return uint64(va) >> 30
	default: // PD
		return uint64(va) >> 21
	}
}

// pscStart consults the PSCs deepest-first and returns the guest level to
// start walking at plus the cached node address. Cost: one PSC probe round.
func (w *Walker) pscStart(vm addr.VMID, pid addr.PID, va addr.VA) (addr.Level, uint64, bool) {
	if node, ok := w.pdec.Lookup(vm, pid, prefix(va, addr.PD)); ok {
		return addr.PT, node, true
	}
	if node, ok := w.pdpc.Lookup(vm, pid, prefix(va, addr.PDPT)); ok {
		return addr.PD, node, true
	}
	if node, ok := w.pml4c.Lookup(vm, pid, prefix(va, addr.PML4)); ok {
		return addr.PDPT, node, true
	}
	return addr.PML4, 0, false
}

// fillPSCs caches the node addresses discovered by a walk's refs.
func (w *Walker) fillPSCs(vm addr.VMID, pid addr.PID, va addr.VA, refs []Ref) {
	for _, r := range refs {
		node := r.Addr &^ (NodeBytes - 1)
		switch r.Level {
		case addr.PDPT:
			w.pml4c.Insert(vm, pid, prefix(va, addr.PML4), node)
		case addr.PD:
			w.pdpc.Insert(vm, pid, prefix(va, addr.PDPT), node)
		case addr.PT:
			w.pdec.Insert(vm, pid, prefix(va, addr.PD), node)
		}
	}
}

// hostTranslate resolves a guest-physical address to host-physical via the
// nested TLB, falling back to a host-dimension walk whose PTE reads are
// issued through mem. It returns the host address, added latency and refs.
func (w *Walker) hostTranslate(host *Table, vm addr.VMID, gpa uint64) (hpa uint64, lat uint64, refs int, ok bool) {
	lat = w.cfg.NestedLat
	gpfn := gpa >> addr.Shift4K
	if hbase, hit := w.nested.Lookup(vm, gpfn); hit {
		return hbase | gpa&(addr.Bytes4K-1), lat, 0, true
	}
	hrefs, e, ok := host.WalkAppend(gpa, w.hrefs[:0])
	w.hrefs = hrefs[:0]
	for _, r := range hrefs {
		lat += w.mem(addr.HPA(r.Addr), false)
	}
	refs = len(hrefs)
	if !ok {
		return 0, lat, refs, false
	}
	// Host mapping may be 4 KB or 2 MB; normalize to the 4 KB frame
	// containing gpa for the nested TLB.
	hfull := uint64(addr.FromPFN(e.PFN, e.Size, gpa&(e.Size.Bytes()-1)))
	hbase := hfull &^ (addr.Bytes4K - 1)
	w.nested.Insert(vm, gpfn, hbase)
	return hfull, lat, refs, true
}

// Translate2D performs the full virtualized translation of Figure 1:
// every guest page-table node address is guest-physical and must itself be
// translated through the host table before the guest PTE can be read —
// up to 24 memory references when nothing is cached.
func (w *Walker) Translate2D(guest, host *Table, vm addr.VMID, pid addr.PID, va addr.VA) WalkResult {
	res := WalkResult{}
	res.Latency = w.cfg.PSCLatency // PSC probe round
	startLevel, cachedNode, pscHit := w.pscStart(vm, pid, va)

	grefs, gleaf, ok := guest.WalkAppend(uint64(va), w.grefs[:0])
	w.grefs = grefs[:0]
	if !ok {
		res.Latency += w.walkRefs2D(host, vm, grefs)
		res.Refs = len(grefs)
		w.recordWalk(true, res, true)
		return res
	}
	if pscHit {
		// Verify the cached node still matches (stale entries fall back).
		verified := false
		for _, r := range grefs {
			if r.Level == startLevel && r.Addr&^(NodeBytes-1) == cachedNode {
				verified = true
				break
			}
		}
		if verified {
			skipped := 0
			for _, r := range grefs {
				if r.Level < startLevel {
					skipped++
				}
			}
			w.stats.PSCSkips += uint64(skipped)
			grefs = grefs[skipped:]
		}
	}

	// Guest-dimension refs: host-translate each PTE's frame, then read it.
	for _, r := range grefs {
		hpa, lat, refs, hok := w.hostTranslate(host, vm, r.Addr)
		res.Latency += lat
		res.Refs += refs
		if !hok {
			w.recordWalk(true, res, true)
			return res
		}
		res.Latency += w.mem(addr.HPA(hpa), false)
		res.Refs++
	}

	// Final column: host-translate the data guest-physical address.
	gpa := uint64(addr.FromPFN(gleaf.PFN, gleaf.Size, uint64(va)&(gleaf.Size.Bytes()-1)))
	hpa, lat, refs, hok := w.hostTranslate(host, vm, gpa)
	res.Latency += lat
	res.Refs += refs
	if !hok {
		w.recordWalk(true, res, true)
		return res
	}

	w.fillPSCs(vm, pid, va, grefs)
	res.HPFN = hpa >> gleaf.Size.Shift()
	res.Size = gleaf.Size
	res.OK = true
	w.recordWalk(true, res, false)
	return res
}

// walkRefs2D charges the 2D cost of a faulting guest walk's refs.
func (w *Walker) walkRefs2D(host *Table, vm addr.VMID, grefs []Ref) uint64 {
	var lat uint64
	for _, r := range grefs {
		hpa, l, _, ok := w.hostTranslate(host, vm, r.Addr)
		lat += l
		if ok {
			lat += w.mem(addr.HPA(hpa), false)
		}
	}
	return lat
}

// TranslateNative performs a bare-metal 1D walk of a single table whose
// nodes live directly in host physical memory (4 references worst case).
func (w *Walker) TranslateNative(table *Table, vm addr.VMID, pid addr.PID, va addr.VA) WalkResult {
	res := WalkResult{}
	res.Latency = w.cfg.PSCLatency
	startLevel, cachedNode, pscHit := w.pscStart(vm, pid, va)

	var refs []Ref
	var leaf Entry
	var ok bool
	if pscHit {
		refs, leaf, ok = table.WalkFromAppend(uint64(va), startLevel, cachedNode, w.grefs[:0])
		if len(refs) > 0 && refs[0].Level == startLevel {
			w.stats.PSCSkips += uint64(startLevel)
		}
	} else {
		refs, leaf, ok = table.WalkAppend(uint64(va), w.grefs[:0])
	}
	w.grefs = refs[:0]
	for _, r := range refs {
		res.Latency += w.mem(addr.HPA(r.Addr), false)
	}
	res.Refs = len(refs)
	if !ok {
		w.recordWalk(false, res, true)
		return res
	}
	w.fillPSCs(vm, pid, va, refs)
	res.HPFN = leaf.PFN
	res.Size = leaf.Size
	res.OK = true
	w.recordWalk(false, res, false)
	return res
}

// recordWalk accumulates statistics.
func (w *Walker) recordWalk(twoD bool, res WalkResult, fault bool) {
	if twoD {
		w.stats.Walks2D++
	} else {
		w.stats.WalksNative++
	}
	w.stats.TotalRefs += uint64(res.Refs)
	w.stats.TotalLatency += res.Latency
	if fault {
		w.stats.Faults++
	}
}

// String summarizes walker stats.
func (s WalkStats) String() string {
	return fmt.Sprintf("walks=%d(2D)+%d(native) refs/walk=%.1f cyc/walk=%.1f faults=%d pscSkips=%d",
		s.Walks2D, s.WalksNative, s.AvgRefs(), s.AvgLatency(), s.Faults, s.PSCSkips)
}
