package pagetable

import (
	"testing"

	"repro/internal/addr"
)

// twoD builds a guest table (nodes in GPA space) and a host table (nodes in
// HPA space) with a single guest mapping, with every guest node frame and
// the data frame EPT-mapped 4 KB→4 KB.
func twoD(t *testing.T, va uint64, gsize addr.PageSize) (guest, host *Table) {
	t.Helper()
	guest = New(bump(0x100_0000)) // guest node GPAs
	host = New(bump(0x900_0000))  // host node HPAs

	gpfn := uint64(0x500)
	nodes, err := guest.Map(va, gpfn, gsize)
	if err != nil {
		t.Fatal(err)
	}
	// EPT-map guest node frames and the data frame, 4 KB granularity.
	hpfn := uint64(0x7000)
	for _, n := range nodes {
		if _, err := host.Map(n, hpfn, addr.Page4K); err != nil {
			t.Fatal(err)
		}
		hpfn++
	}
	for off := uint64(0); off < gsize.Bytes(); off += addr.Bytes4K {
		gp := gpfn<<gsize.Shift() + off
		if _, err := host.Map(gp, hpfn, addr.Page4K); err != nil {
			t.Fatal(err)
		}
		hpfn++
	}
	return guest, host
}

func flatMem(latency uint64) (MemFunc, *int) {
	count := new(int)
	return func(a addr.HPA, write bool) uint64 {
		*count++
		return latency
	}, count
}

func TestCold2DWalkIs24Refs(t *testing.T) {
	guest, host := twoD(t, 0x7f00_0000_1000, addr.Page4K)
	mem, count := flatMem(100)
	w := NewWalker(DefaultWalkerConfig(), mem)

	res := w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	if !res.OK {
		t.Fatal("translation failed")
	}
	// Figure 1: 4 guest levels × (4 host refs + 1 guest PTE read) + 4 host
	// refs for the final data GPA = 24 references, nothing cached.
	if res.Refs != 24 {
		t.Errorf("cold 2D refs = %d, want 24", res.Refs)
	}
	if *count != 24 {
		t.Errorf("mem accesses = %d, want 24", *count)
	}
	if res.Size != addr.Page4K {
		t.Errorf("size = %v", res.Size)
	}
	if res.Latency < 2400 {
		t.Errorf("latency = %d, should include 24 × 100-cycle refs", res.Latency)
	}
}

func TestCold2DWalk2MFewerRefs(t *testing.T) {
	guest, host := twoD(t, 0x4000_0000, addr.Page2M)
	mem, _ := flatMem(100)
	w := NewWalker(DefaultWalkerConfig(), mem)
	res := w.Translate2D(guest, host, 1, 1, 0x4000_0000)
	if !res.OK {
		t.Fatal("translation failed")
	}
	// 3 guest levels × (4 + 1) + 4 = 19 refs.
	if res.Refs != 19 {
		t.Errorf("cold 2M 2D refs = %d, want 19", res.Refs)
	}
	if res.Size != addr.Page2M {
		t.Errorf("size = %v", res.Size)
	}
}

func TestWarm2DWalkIsOneRef(t *testing.T) {
	guest, host := twoD(t, 0x7f00_0000_1000, addr.Page4K)
	mem, _ := flatMem(100)
	w := NewWalker(DefaultWalkerConfig(), mem)
	w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)

	// Second walk of a neighbouring page: PDE PSC supplies the PT node,
	// nested TLB supplies both host translations → 1 guest PTE read.
	res := w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	if !res.OK {
		t.Fatal("translation failed")
	}
	if res.Refs != 1 {
		t.Errorf("warm 2D refs = %d, want 1", res.Refs)
	}
	if w.Stats().PSCSkips == 0 {
		t.Error("expected PSC skips on the warm walk")
	}
}

func TestWarm2DCorrectTranslation(t *testing.T) {
	guest, host := twoD(t, 0x7f00_0000_1000, addr.Page4K)
	mem, _ := flatMem(1)
	w := NewWalker(DefaultWalkerConfig(), mem)
	cold := w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	warm := w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	if cold.HPFN != warm.HPFN || cold.Size != warm.Size {
		t.Errorf("warm result %+v differs from cold %+v", warm, cold)
	}
	if warm.Latency >= cold.Latency {
		t.Errorf("warm walk (%d cyc) should be cheaper than cold (%d cyc)", warm.Latency, cold.Latency)
	}
}

func TestTranslate2DFault(t *testing.T) {
	guest, host := twoD(t, 0x7f00_0000_1000, addr.Page4K)
	mem, _ := flatMem(1)
	w := NewWalker(DefaultWalkerConfig(), mem)
	res := w.Translate2D(guest, host, 1, 1, 0xdead_0000_0000)
	if res.OK {
		t.Error("unmapped VA should fault")
	}
	if w.Stats().Faults != 1 {
		t.Errorf("faults = %d", w.Stats().Faults)
	}
}

func TestVMIsolationInWalkerCaches(t *testing.T) {
	guest, host := twoD(t, 0x7f00_0000_1000, addr.Page4K)
	mem, _ := flatMem(1)
	w := NewWalker(DefaultWalkerConfig(), mem)
	w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	// Same tables, different VM: PSC and nested TLB must not leak, so the
	// walk costs full refs again.
	res := w.Translate2D(guest, host, 2, 1, 0x7f00_0000_1000)
	if res.Refs != 24 {
		t.Errorf("cross-VM walk refs = %d, want 24 (no leakage)", res.Refs)
	}
}

func TestNativeWalk(t *testing.T) {
	table := New(bump(0x40_0000))
	table.Map(0x1234_5000, 0x66, addr.Page4K)
	mem, count := flatMem(50)
	w := NewWalker(DefaultWalkerConfig(), mem)

	res := w.TranslateNative(table, 0, 1, 0x1234_5000)
	if !res.OK || res.HPFN != 0x66 {
		t.Fatalf("native walk = %+v", res)
	}
	if res.Refs != 4 || *count != 4 {
		t.Errorf("cold native refs = %d (mem %d), want 4", res.Refs, *count)
	}
	warm := w.TranslateNative(table, 0, 1, 0x1234_5000)
	if warm.Refs != 1 {
		t.Errorf("warm native refs = %d, want 1 (PDE PSC hit)", warm.Refs)
	}
}

func TestNativeWalkFault(t *testing.T) {
	table := New(bump(0))
	table.Map(0x1000, 1, addr.Page4K)
	mem, _ := flatMem(1)
	w := NewWalker(DefaultWalkerConfig(), mem)
	res := w.TranslateNative(table, 0, 1, 0x5555_0000_0000)
	if res.OK {
		t.Error("fault expected")
	}
}

func TestInvalidateAllResetsAcceleration(t *testing.T) {
	guest, host := twoD(t, 0x7f00_0000_1000, addr.Page4K)
	mem, _ := flatMem(1)
	w := NewWalker(DefaultWalkerConfig(), mem)
	w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	w.InvalidateAll()
	res := w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	if res.Refs != 24 {
		t.Errorf("post-flush walk refs = %d, want 24", res.Refs)
	}
}

func TestWalkerStats(t *testing.T) {
	guest, host := twoD(t, 0x7f00_0000_1000, addr.Page4K)
	mem, _ := flatMem(1)
	w := NewWalker(DefaultWalkerConfig(), mem)
	w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	w.Translate2D(guest, host, 1, 1, 0x7f00_0000_1000)
	s := w.Stats()
	if s.Walks2D != 2 {
		t.Errorf("Walks2D = %d", s.Walks2D)
	}
	if s.AvgRefs() != 12.5 { // (24 + 1) / 2
		t.Errorf("AvgRefs = %f", s.AvgRefs())
	}
	if s.AvgLatency() <= 0 {
		t.Error("AvgLatency should be positive")
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
	var zero WalkStats
	if zero.AvgRefs() != 0 || zero.AvgLatency() != 0 {
		t.Error("zero stats should report 0")
	}
}

func TestPSCBasics(t *testing.T) {
	p := NewPSC("test", 2)
	if _, ok := p.Lookup(1, 1, 0x10); ok {
		t.Error("cold PSC lookup should miss")
	}
	p.Insert(1, 1, 0x10, 0xA000)
	if node, ok := p.Lookup(1, 1, 0x10); !ok || node != 0xA000 {
		t.Errorf("PSC lookup = %#x, %v", node, ok)
	}
	// LRU eviction at capacity 2.
	p.Insert(1, 1, 0x20, 0xB000)
	p.Lookup(1, 1, 0x10) // touch 0x10 so 0x20 is LRU
	p.Insert(1, 1, 0x30, 0xC000)
	if _, ok := p.Lookup(1, 1, 0x20); ok {
		t.Error("LRU entry should have been evicted")
	}
	if _, ok := p.Lookup(1, 1, 0x10); !ok {
		t.Error("MRU entry should survive")
	}
	// Update in place.
	p.Insert(1, 1, 0x10, 0xD000)
	if node, _ := p.Lookup(1, 1, 0x10); node != 0xD000 {
		t.Errorf("updated node = %#x", node)
	}
	p.InvalidateAll()
	if _, ok := p.Lookup(1, 1, 0x10); ok {
		t.Error("InvalidateAll failed")
	}
	if p.Stats().Total() == 0 {
		t.Error("stats should be recorded")
	}
}

func TestPSCZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPSC("bad", 0)
}

func TestNestedTLBBasics(t *testing.T) {
	n := NewNestedTLB(2)
	if _, ok := n.Lookup(1, 5); ok {
		t.Error("cold lookup should miss")
	}
	n.Insert(1, 5, 0x5000)
	if h, ok := n.Lookup(1, 5); !ok || h != 0x5000 {
		t.Errorf("lookup = %#x, %v", h, ok)
	}
	if _, ok := n.Lookup(2, 5); ok {
		t.Error("other VM should miss")
	}
	n.Insert(1, 6, 0x6000)
	n.Lookup(1, 5)
	n.Insert(1, 7, 0x7000) // evicts gpfn 6 (LRU)
	if _, ok := n.Lookup(1, 6); ok {
		t.Error("LRU nested entry should be evicted")
	}
	n.Insert(1, 5, 0x9000) // update
	if h, _ := n.Lookup(1, 5); h != 0x9000 {
		t.Errorf("update = %#x", h)
	}
	n.InvalidateAll()
	if _, ok := n.Lookup(1, 5); ok {
		t.Error("InvalidateAll failed")
	}
}

func TestNestedTLBZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNestedTLB(0)
}

func TestNewWalkerNilMemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWalker(DefaultWalkerConfig(), nil)
}

func TestWalkerAccessors(t *testing.T) {
	mem, _ := flatMem(1)
	w := NewWalker(DefaultWalkerConfig(), mem)
	a, b, c := w.PSCs()
	if a == nil || b == nil || c == nil || w.Nested() == nil {
		t.Error("accessors returned nil")
	}
}
