package pagetable

import (
	"repro/internal/addr"
	"repro/internal/stats"
)

// PSC is one page-structure cache (MMU cache) level: a tiny fully-
// associative cache from a virtual-address prefix to the address of the
// radix node that serves the next level of the walk, letting the walker
// skip the upper levels (Table 1: PML4 2 entries, PDP 4, PDE 32, 2 cycles).
type PSC struct {
	name    string
	entries []pscEntry
	clock   uint64
	stats   stats.HitMiss
}

type pscEntry struct {
	vm     addr.VMID
	pid    addr.PID
	prefix uint64
	node   uint64 // node base address in the table's address space
	valid  bool
	lru    uint64
}

// NewPSC creates a page-structure cache with the given capacity.
func NewPSC(name string, capacity int) *PSC {
	if capacity <= 0 {
		panic("pagetable: PSC capacity must be positive")
	}
	return &PSC{name: name, entries: make([]pscEntry, capacity)}
}

// Lookup returns the cached node address for the prefix.
func (p *PSC) Lookup(vm addr.VMID, pid addr.PID, prefix uint64) (uint64, bool) {
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.vm == vm && e.pid == pid && e.prefix == prefix {
			p.clock++
			e.lru = p.clock
			p.stats.Hit()
			return e.node, true
		}
	}
	p.stats.Miss()
	return 0, false
}

// Insert caches prefix → node, evicting the LRU entry when full.
func (p *PSC) Insert(vm addr.VMID, pid addr.PID, prefix, node uint64) {
	p.clock++
	vi := 0
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.vm == vm && e.pid == pid && e.prefix == prefix {
			e.node = node
			e.lru = p.clock
			return
		}
		if !e.valid {
			vi = i
			break
		}
		if e.lru < p.entries[vi].lru {
			vi = i
		}
	}
	p.entries[vi] = pscEntry{vm: vm, pid: pid, prefix: prefix, node: node, valid: true, lru: p.clock}
}

// InvalidateAll flushes the cache (context switch / shootdown).
func (p *PSC) InvalidateAll() {
	for i := range p.entries {
		p.entries[i] = pscEntry{}
	}
}

// Stats returns the hit/miss counters.
func (p *PSC) Stats() stats.HitMiss { return p.stats }

// NestedTLB caches completed gPA→hPA translations at 4 KB granularity so
// repeated host-dimension walks of hot guest frames are skipped — the
// "nested TLB" of Intel's EPT hardware. Fully associative, LRU.
type NestedTLB struct {
	entries []nestedEntry
	clock   uint64
	stats   stats.HitMiss
}

type nestedEntry struct {
	vm    addr.VMID
	gpfn  uint64
	hbase uint64 // host address of the 4 KB frame
	valid bool
	lru   uint64
}

// NewNestedTLB creates a nested TLB with the given capacity.
func NewNestedTLB(capacity int) *NestedTLB {
	if capacity <= 0 {
		panic("pagetable: nested TLB capacity must be positive")
	}
	return &NestedTLB{entries: make([]nestedEntry, capacity)}
}

// Lookup translates a guest-physical frame number.
func (n *NestedTLB) Lookup(vm addr.VMID, gpfn uint64) (uint64, bool) {
	for i := range n.entries {
		e := &n.entries[i]
		if e.valid && e.vm == vm && e.gpfn == gpfn {
			n.clock++
			e.lru = n.clock
			n.stats.Hit()
			return e.hbase, true
		}
	}
	n.stats.Miss()
	return 0, false
}

// Insert caches gpfn → host frame base.
func (n *NestedTLB) Insert(vm addr.VMID, gpfn, hbase uint64) {
	n.clock++
	vi := 0
	for i := range n.entries {
		e := &n.entries[i]
		if e.valid && e.vm == vm && e.gpfn == gpfn {
			e.hbase = hbase
			e.lru = n.clock
			return
		}
		if !e.valid {
			vi = i
			break
		}
		if e.lru < n.entries[vi].lru {
			vi = i
		}
	}
	n.entries[vi] = nestedEntry{vm: vm, gpfn: gpfn, hbase: hbase, valid: true, lru: n.clock}
}

// InvalidateAll flushes the nested TLB.
func (n *NestedTLB) InvalidateAll() {
	for i := range n.entries {
		n.entries[i] = nestedEntry{}
	}
}

// Stats returns the hit/miss counters.
func (n *NestedTLB) Stats() stats.HitMiss { return n.stats }
