// Package pagetable implements the x86-style radix-4 page tables the
// translation machinery walks, and the 2D nested walker (guest × host) of
// Figure 1 with the page-structure caches (PSC) and nested TLB that modern
// MMUs use to shorten walks.
//
// A Table is a 4-level radix tree whose nodes live at concrete addresses in
// *some* address space: the guest page table's nodes live at guest physical
// addresses, the host (EPT) table's nodes at host physical addresses. The
// table therefore works on raw uint64 addresses; the virt package layers the
// type-safe gVA/gPA/hPA views on top.
package pagetable

import (
	"fmt"

	"repro/internal/addr"
)

// Entry is a leaf translation: frame number at a page size.
type Entry struct {
	PFN   uint64
	Size  addr.PageSize
	Valid bool
}

// Ref records one PTE read performed by a walk: the level being resolved
// and the address (in the table's own address space) of the 8-byte entry.
type Ref struct {
	Level addr.Level
	Addr  uint64
}

// NodeBytes is the size of one radix node (512 × 8-byte entries).
const NodeBytes = 4096

// node is one radix level's 512-entry table.
type node struct {
	base     uint64 // address of this node in the table's address space
	children [512]*node
	leaf     [512]Entry
}

// Table is a radix-4 page table rooted at a lazily-allocated node.
type Table struct {
	// Alloc allocates one 4 KB node frame and returns its base address.
	alloc func() uint64
	root  *node
	nodes int
	pages int
}

// New creates an empty table. alloc provides node frames; it must return
// 4 KB-aligned addresses.
func New(alloc func() uint64) *Table {
	if alloc == nil {
		panic("pagetable: nil allocator")
	}
	return &Table{alloc: alloc}
}

// RootAddr returns the address of the root node, or 0 if nothing has been
// mapped yet (the root is allocated by the first Map).
func (t *Table) RootAddr() uint64 {
	if t.root == nil {
		return 0
	}
	return t.root.base
}

// NodeCount returns the number of allocated radix nodes.
func (t *Table) NodeCount() int { return t.nodes }

// PageCount returns the number of mapped leaf pages.
func (t *Table) PageCount() int { return t.pages }

// leafLevel returns the radix level a mapping of the given size terminates
// at: PT for 4 KB, PD for 2 MB, PDPT for 1 GB.
func leafLevel(size addr.PageSize) addr.Level {
	switch size {
	case addr.Page2M:
		return addr.PD
	case addr.Page1G:
		return addr.PDPT
	}
	return addr.PT
}

// newNode allocates a radix node.
func (t *Table) newNode() *node {
	t.nodes++
	return &node{base: t.alloc()}
}

// Map installs va → pfn at the given page size. It returns the base
// addresses of any radix nodes allocated along the way (including the root
// on first use), so a hypervisor can in turn map those node frames in its
// EPT. Mapping over an existing translation of the same size updates it;
// conflicting geometry (e.g. a 2 MB leaf where a 4 KB mapping needs a PT
// node) is an error.
func (t *Table) Map(va uint64, pfn uint64, size addr.PageSize) ([]uint64, error) {
	var created []uint64
	if t.root == nil {
		t.root = t.newNode()
		created = append(created, t.root.base)
	}
	n := t.root
	leafAt := leafLevel(size)
	for l := addr.PML4; l < leafAt; l++ {
		idx := addr.Index(addr.VA(va), l)
		if n.leaf[idx].Valid {
			return created, fmt.Errorf("pagetable: %s index %d holds a %s leaf, cannot map %s at %#x",
				l, idx, n.leaf[idx].Size, size, va)
		}
		child := n.children[idx]
		if child == nil {
			child = t.newNode()
			n.children[idx] = child
			created = append(created, child.base)
		}
		n = child
	}
	idx := addr.Index(addr.VA(va), leafAt)
	if n.children[idx] != nil {
		return created, fmt.Errorf("pagetable: %s index %d holds a child table, cannot map %s leaf at %#x",
			leafAt, idx, size, va)
	}
	if !n.leaf[idx].Valid {
		t.pages++
	}
	n.leaf[idx] = Entry{PFN: pfn, Size: size, Valid: true}
	return created, nil
}

// Lookup resolves va without producing the walk trace.
func (t *Table) Lookup(va uint64) (Entry, bool) {
	n := t.root
	for l := addr.PML4; l <= addr.PT && n != nil; l++ {
		idx := addr.Index(addr.VA(va), l)
		if e := n.leaf[idx]; e.Valid {
			return e, true
		}
		n = n.children[idx]
	}
	return Entry{}, false
}

// Walk resolves va and returns every PTE reference the hardware walker
// would issue: one 8-byte read per visited level, at nodeBase + 8×index.
// On a translation fault the refs up to and including the faulting entry
// are still returned with ok = false.
func (t *Table) Walk(va uint64) (refs []Ref, e Entry, ok bool) {
	return t.WalkAppend(va, nil)
}

// WalkAppend is Walk appending into a caller-provided buffer (usually
// buf[:0] of a reused scratch slice), so steady-state walks allocate
// nothing. A radix-4 walk issues at most 4 references.
func (t *Table) WalkAppend(va uint64, refs []Ref) ([]Ref, Entry, bool) {
	n := t.root
	for l := addr.PML4; l <= addr.PT; l++ {
		if n == nil {
			return refs, Entry{}, false
		}
		idx := addr.Index(addr.VA(va), l)
		refs = append(refs, Ref{Level: l, Addr: n.base + 8*idx})
		if leaf := n.leaf[idx]; leaf.Valid {
			return refs, leaf, true
		}
		n = n.children[idx]
	}
	return refs, Entry{}, false
}

// WalkFrom resolves va starting below a known intermediate node, as a
// walker with a page-structure-cache hit would: startLevel is the level of
// the provided node (whose base address a PSC supplied), and only levels
// from startLevel down are referenced.
func (t *Table) WalkFrom(va uint64, startLevel addr.Level, nodeBase uint64) (refs []Ref, e Entry, ok bool) {
	return t.WalkFromAppend(va, startLevel, nodeBase, nil)
}

// WalkFromAppend is WalkFrom appending into a caller-provided buffer.
func (t *Table) WalkFromAppend(va uint64, startLevel addr.Level, nodeBase uint64, refs []Ref) ([]Ref, Entry, bool) {
	n := t.findNode(va, startLevel)
	if n == nil || n.base != nodeBase {
		// Stale PSC entry: fall back to a full walk.
		return t.WalkAppend(va, refs)
	}
	for l := startLevel; l <= addr.PT; l++ {
		if n == nil {
			return refs, Entry{}, false
		}
		idx := addr.Index(addr.VA(va), l)
		refs = append(refs, Ref{Level: l, Addr: n.base + 8*idx})
		if leaf := n.leaf[idx]; leaf.Valid {
			return refs, leaf, true
		}
		n = n.children[idx]
	}
	return refs, Entry{}, false
}

// findNode returns the node that serves the given level of va's walk.
func (t *Table) findNode(va uint64, level addr.Level) *node {
	n := t.root
	for l := addr.PML4; l < level && n != nil; l++ {
		if n.leaf[addr.Index(addr.VA(va), l)].Valid {
			return nil // walk terminates above the requested level
		}
		n = n.children[addr.Index(addr.VA(va), l)]
	}
	return n
}

// NodeAddr returns the base address of the node serving the given level of
// va's walk (for PSC fills), or false if the walk doesn't reach that level.
func (t *Table) NodeAddr(va uint64, level addr.Level) (uint64, bool) {
	n := t.findNode(va, level)
	if n == nil {
		return 0, false
	}
	return n.base, true
}

// Unmap removes the translation for va, returning the removed entry. Radix
// nodes are not reclaimed (real kernels rarely free them either).
func (t *Table) Unmap(va uint64) (Entry, bool) {
	n := t.root
	for l := addr.PML4; l <= addr.PT && n != nil; l++ {
		idx := addr.Index(addr.VA(va), l)
		if e := n.leaf[idx]; e.Valid {
			n.leaf[idx] = Entry{}
			t.pages--
			return e, true
		}
		n = n.children[idx]
	}
	return Entry{}, false
}
