package pagetable

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

// bump returns a 4 KB-aligned bump allocator starting at base.
func bump(base uint64) func() uint64 {
	next := base
	return func() uint64 {
		a := next
		next += NodeBytes
		return a
	}
}

func TestNewNilAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(nil)
}

func TestMapLookup4K(t *testing.T) {
	tab := New(bump(0x10_0000))
	if tab.RootAddr() != 0 {
		t.Error("root should be unallocated before first Map")
	}
	created, err := tab.Map(0x7f00_0000_1000, 0x42, addr.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 4 { // root + 3 intermediate nodes
		t.Errorf("created %d nodes, want 4", len(created))
	}
	if tab.RootAddr() != 0x10_0000 {
		t.Errorf("root at %#x", tab.RootAddr())
	}
	e, ok := tab.Lookup(0x7f00_0000_1234)
	if !ok || e.PFN != 0x42 || e.Size != addr.Page4K {
		t.Errorf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := tab.Lookup(0x7f00_0000_3000); ok {
		t.Error("adjacent page should be unmapped")
	}
}

func TestMapLookup2M(t *testing.T) {
	tab := New(bump(0))
	created, err := tab.Map(0x4000_0000, 0x9, addr.Page2M)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 3 { // root + PDPT + PD: 2 MB leaf lives in PD
		t.Errorf("created %d nodes, want 3", len(created))
	}
	e, ok := tab.Lookup(0x4000_0000 + 12345)
	if !ok || e.PFN != 0x9 || e.Size != addr.Page2M {
		t.Errorf("Lookup = %+v, %v", e, ok)
	}
}

func TestMapReusesNodes(t *testing.T) {
	tab := New(bump(0))
	c1, _ := tab.Map(0x1000, 1, addr.Page4K)
	c2, err := tab.Map(0x2000, 2, addr.Page4K) // same PT node
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != 4 || len(c2) != 0 {
		t.Errorf("created %d then %d nodes, want 4 then 0", len(c1), len(c2))
	}
	if tab.NodeCount() != 4 || tab.PageCount() != 2 {
		t.Errorf("nodes=%d pages=%d", tab.NodeCount(), tab.PageCount())
	}
}

func TestMapRemapUpdates(t *testing.T) {
	tab := New(bump(0))
	tab.Map(0x1000, 1, addr.Page4K)
	_, err := tab.Map(0x1000, 99, addr.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := tab.Lookup(0x1000)
	if e.PFN != 99 {
		t.Errorf("remap PFN = %d", e.PFN)
	}
	if tab.PageCount() != 1 {
		t.Errorf("PageCount = %d", tab.PageCount())
	}
}

func TestMapConflicts(t *testing.T) {
	tab := New(bump(0))
	// 2 MB leaf, then a 4 KB map underneath must fail.
	if _, err := tab.Map(0x4000_0000, 1, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Map(0x4000_0000+0x1000, 2, addr.Page4K); err == nil {
		t.Error("4K map under 2M leaf should fail")
	}
	// 4 KB map first, then a 2 MB map over the same PD slot must fail.
	tab2 := New(bump(0))
	if _, err := tab2.Map(0x1000, 1, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	if _, err := tab2.Map(0x0, 2, addr.Page2M); err == nil {
		t.Error("2M map over existing PT should fail")
	}
}

func TestWalkRefs(t *testing.T) {
	tab := New(bump(0x1_0000))
	tab.Map(0x7f00_0000_1000, 0x42, addr.Page4K)
	refs, e, ok := tab.Walk(0x7f00_0000_1000)
	if !ok || e.PFN != 0x42 {
		t.Fatalf("walk = %+v, %v", e, ok)
	}
	if len(refs) != 4 {
		t.Fatalf("refs = %d, want 4", len(refs))
	}
	for i, r := range refs {
		if r.Level != addr.Level(i) {
			t.Errorf("ref %d level = %v", i, r.Level)
		}
		if r.Addr%8 != 0 {
			t.Errorf("ref %d addr %#x not 8-aligned", i, r.Addr)
		}
	}
	if refs[0].Addr&^uint64(NodeBytes-1) != tab.RootAddr() {
		t.Error("first ref should be in the root node")
	}
}

func TestWalk2MHasThreeRefs(t *testing.T) {
	tab := New(bump(0))
	tab.Map(0x4000_0000, 0x9, addr.Page2M)
	refs, _, ok := tab.Walk(0x4000_0000)
	if !ok || len(refs) != 3 {
		t.Errorf("2M walk refs = %d (ok=%v), want 3", len(refs), ok)
	}
}

func TestWalkFault(t *testing.T) {
	tab := New(bump(0))
	tab.Map(0x1000, 1, addr.Page4K)
	refs, _, ok := tab.Walk(0x9999_0000_0000)
	if ok {
		t.Error("walk of unmapped VA should fault")
	}
	if len(refs) != 1 { // root PML4 entry read, found invalid
		t.Errorf("fault refs = %d, want 1", len(refs))
	}
	empty := New(bump(0))
	refs, _, ok = empty.Walk(0x1000)
	if ok || len(refs) != 0 {
		t.Errorf("empty table walk = %d refs, ok=%v", len(refs), ok)
	}
}

func TestWalkFrom(t *testing.T) {
	tab := New(bump(0x1_0000))
	tab.Map(0x7f00_0000_1000, 0x42, addr.Page4K)
	full, _, _ := tab.Walk(0x7f00_0000_1000)
	ptNode := full[3].Addr &^ uint64(NodeBytes-1)
	refs, e, ok := tab.WalkFrom(0x7f00_0000_1000, addr.PT, ptNode)
	if !ok || e.PFN != 0x42 {
		t.Fatalf("WalkFrom = %+v, %v", e, ok)
	}
	if len(refs) != 1 || refs[0].Level != addr.PT {
		t.Errorf("WalkFrom refs = %+v", refs)
	}
	// Stale node base falls back to a full walk.
	refs, _, ok = tab.WalkFrom(0x7f00_0000_1000, addr.PT, 0xdead000)
	if !ok || len(refs) != 4 {
		t.Errorf("stale WalkFrom refs = %d, ok=%v, want full walk", len(refs), ok)
	}
}

func TestNodeAddr(t *testing.T) {
	tab := New(bump(0x1_0000))
	tab.Map(0x7f00_0000_1000, 0x42, addr.Page4K)
	full, _, _ := tab.Walk(0x7f00_0000_1000)
	for l := addr.PML4; l <= addr.PT; l++ {
		got, ok := tab.NodeAddr(0x7f00_0000_1000, l)
		if !ok || got != full[l].Addr&^uint64(NodeBytes-1) {
			t.Errorf("NodeAddr(%v) = %#x, ok=%v", l, got, ok)
		}
	}
	if _, ok := tab.NodeAddr(0x9999_0000_0000, addr.PT); ok {
		t.Error("NodeAddr of unmapped region should fail")
	}
	// 2 MB leaf: no PT node exists below it.
	tab2 := New(bump(0))
	tab2.Map(0x4000_0000, 1, addr.Page2M)
	if _, ok := tab2.NodeAddr(0x4000_0000, addr.PT); ok {
		t.Error("NodeAddr below a 2M leaf should fail")
	}
}

func TestUnmap(t *testing.T) {
	tab := New(bump(0))
	tab.Map(0x1000, 7, addr.Page4K)
	e, ok := tab.Unmap(0x1000)
	if !ok || e.PFN != 7 {
		t.Errorf("Unmap = %+v, %v", e, ok)
	}
	if _, ok := tab.Lookup(0x1000); ok {
		t.Error("mapping survived Unmap")
	}
	if _, ok := tab.Unmap(0x1000); ok {
		t.Error("double Unmap should fail")
	}
	if tab.PageCount() != 0 {
		t.Errorf("PageCount = %d", tab.PageCount())
	}
}

// Property: Map then Lookup roundtrips for arbitrary canonical addresses
// and sizes (skipping geometry conflicts).
func TestMapLookupProperty(t *testing.T) {
	tab := New(bump(0x100_0000))
	f := func(raw uint64, pfn uint32, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		va := uint64(addr.Canonical(raw))
		if _, err := tab.Map(va, uint64(pfn), size); err != nil {
			return true // geometry conflict with an earlier iteration: fine
		}
		e, ok := tab.Lookup(va)
		return ok && e.PFN == uint64(pfn) && e.Size == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Walk and Lookup agree.
func TestWalkLookupAgreeProperty(t *testing.T) {
	tab := New(bump(0))
	for i := uint64(0); i < 200; i++ {
		tab.Map(i*0x1000, i, addr.Page4K)
	}
	f := func(raw uint32) bool {
		va := uint64(raw) & 0xFF_F000
		_, we, wok := tab.Walk(va)
		le, lok := tab.Lookup(va)
		return wok == lok && we == le
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapLookup1G(t *testing.T) {
	tab := New(bump(0))
	created, err := tab.Map(0x40_0000_0000, 0x7, addr.Page1G)
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 2 { // root + PDPT: 1 GB leaf lives in the PDPT
		t.Errorf("created %d nodes, want 2", len(created))
	}
	e, ok := tab.Lookup(0x40_0000_0000 + 123456789)
	if !ok || e.PFN != 0x7 || e.Size != addr.Page1G {
		t.Errorf("Lookup = %+v, %v", e, ok)
	}
	refs, _, ok := tab.Walk(0x40_0000_0000)
	if !ok || len(refs) != 2 {
		t.Errorf("1G walk refs = %d (ok=%v), want 2", len(refs), ok)
	}
}
