package cache

import (
	"testing"
	"testing/quick"
)

func TestTable1Configs(t *testing.T) {
	cases := []struct {
		cfg  Config
		sets uint64
	}{
		{L1I(), 64},
		{L1D(), 64},
		{L2(), 1024},
		{L3(), 8192},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.cfg.Name, err)
		}
		if got := c.cfg.Sets(); got != c.sets {
			t.Errorf("%s sets = %d, want %d", c.cfg.Name, got, c.sets)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "ways", SizeBytes: 1024, Ways: 0},
		{Name: "odd", SizeBytes: 1000, Ways: 2},
		{Name: "npo2", SizeBytes: 3 * 64 * 2, Ways: 2}, // 3 sets
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("%s should be invalid", c.Name)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestMissThenFillThenHit(t *testing.T) {
	c := MustNew(L1D())
	if c.Access(0x100, false, Data) {
		t.Error("cold access should miss")
	}
	if ev := c.Fill(0x100, false, Data); ev.Valid {
		t.Error("fill into empty set should not evict")
	}
	if !c.Access(0x100, false, Data) {
		t.Error("access after fill should hit")
	}
	s := c.Stats()
	if s.Access[Data].Hits != 1 || s.Access[Data].Misses != 1 {
		t.Errorf("stats = %+v", s.Access[Data])
	}
}

func TestWriteMarksDirtyAndWritebackOnEvict(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 2 * 64, Ways: 2, Latency: 1} // 1 set, 2 ways
	c := MustNew(cfg)
	c.Fill(1, true, Data) // dirty
	c.Fill(2, false, Data)
	ev := c.Fill(3, false, Data) // evicts LRU = line 1
	if !ev.Valid || ev.Line != 1 || !ev.Dirty {
		t.Errorf("eviction = %+v, want dirty line 1", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestLRUOrder(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 2 * 64, Ways: 2, Latency: 1}
	c := MustNew(cfg)
	c.Fill(1, false, Data)
	c.Fill(2, false, Data)
	c.Access(1, false, Data) // touch 1, making 2 the LRU
	ev := c.Fill(3, false, Data)
	if ev.Line != 2 {
		t.Errorf("evicted %d, want 2 (LRU)", ev.Line)
	}
	if !c.Lookup(1) || !c.Lookup(3) || c.Lookup(2) {
		t.Error("contents after eviction wrong")
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 2 * 64, Ways: 2, Latency: 1}
	c := MustNew(cfg)
	c.Fill(1, false, Data)
	c.Fill(2, false, Data)
	if ev := c.Fill(1, true, Data); ev.Valid {
		t.Errorf("re-fill should not evict, got %+v", ev)
	}
	// Line 1 is now MRU and dirty; filling 3 evicts 2.
	ev := c.Fill(3, false, Data)
	if ev.Line != 2 {
		t.Errorf("evicted %d, want 2", ev.Line)
	}
	c.Access(1, false, Data)
	ev = c.Fill(4, false, Data) // evicts 3
	if ev.Line != 3 {
		t.Errorf("evicted %d, want 3", ev.Line)
	}
	if !ev.Valid {
		t.Error("eviction expected")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(L1D())
	c.Fill(7, true, TLBEntry)
	present, dirty := c.Invalidate(7)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v, %v), want (true, true)", present, dirty)
	}
	if c.Lookup(7) {
		t.Error("line still present after invalidate")
	}
	present, _ = c.Invalidate(7)
	if present {
		t.Error("double invalidate should miss")
	}
}

func TestKindStatsSeparated(t *testing.T) {
	c := MustNew(L1D())
	c.Access(1, false, Data) // miss
	c.Fill(1, false, Data)
	c.Access(1, false, Data)     // hit
	c.Access(2, false, TLBEntry) // miss
	c.Fill(2, false, TLBEntry)
	c.Access(2, false, TLBEntry) // hit
	c.Access(3, false, TLBEntry) // miss
	s := c.Stats()
	if s.DataHitRate() != 0.5 {
		t.Errorf("DataHitRate = %f", s.DataHitRate())
	}
	if got := s.TLBHitRate(); got != 1.0/3.0 {
		t.Errorf("TLBHitRate = %f", got)
	}
}

func TestResidentTracking(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 2 * 64, Ways: 2, Latency: 1}
	c := MustNew(cfg)
	c.Fill(1, false, Data)
	c.Fill(2, false, TLBEntry)
	if c.Resident(Data) != 1 || c.Resident(TLBEntry) != 1 {
		t.Errorf("resident = %d data, %d tlb", c.Resident(Data), c.Resident(TLBEntry))
	}
	c.Fill(3, false, Data) // evicts line 1 (LRU, Data)
	if c.Resident(Data) != 1 || c.Resident(TLBEntry) != 1 {
		t.Errorf("after evict: %d data, %d tlb", c.Resident(Data), c.Resident(TLBEntry))
	}
	if c.Stats().Evictions[Data] != 1 {
		t.Errorf("evictions = %v", c.Stats().Evictions)
	}
	c.Invalidate(2)
	if c.Resident(TLBEntry) != 0 {
		t.Error("invalidate should decrement resident count")
	}
}

func TestDifferentSetsDoNotConflict(t *testing.T) {
	c := MustNew(L1D()) // 64 sets
	for line := uint64(0); line < 64; line++ {
		c.Fill(line, false, Data)
	}
	for line := uint64(0); line < 64; line++ {
		if !c.Lookup(line) {
			t.Errorf("line %d missing: different sets should not conflict", line)
		}
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "data" || TLBEntry.String() != "tlb-entry" {
		t.Error("Kind.String() wrong")
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(L1D())
	c.Access(1, false, Data)
	c.ResetStats()
	if c.Stats().Access[Data].Total() != 0 {
		t.Error("ResetStats did not clear")
	}
}

// Property: resident counts never exceed capacity, and a filled line is
// always immediately look-up-able.
func TestFillLookupProperty(t *testing.T) {
	cfg := Config{Name: "prop", SizeBytes: 8 * 64, Ways: 2, Latency: 1} // 4 sets
	c := MustNew(cfg)
	capacity := cfg.SizeBytes / 64
	f := func(raw uint16, write, tlb bool) bool {
		line := uint64(raw % 64)
		kind := Data
		if tlb {
			kind = TLBEntry
		}
		c.Fill(line, write, kind)
		if !c.Lookup(line) {
			return false
		}
		return c.Resident(Data)+c.Resident(TLBEntry) <= capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses always equals accesses issued.
func TestAccessCountProperty(t *testing.T) {
	c := MustNew(L2())
	var issued uint64
	f := func(raw uint16, write bool) bool {
		issued++
		if !c.Access(uint64(raw), write, Data) {
			c.Fill(uint64(raw), write, Data)
		}
		return c.Stats().Access[Data].Total() == issued
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an access immediately after a fill of the same line hits.
func TestTemporalLocalityProperty(t *testing.T) {
	c := MustNew(L3())
	f := func(raw uint32) bool {
		line := uint64(raw)
		c.Fill(line, false, Data)
		return c.Access(line, false, Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidateKind(t *testing.T) {
	c := MustNew(L1D())
	c.Fill(1, false, Data)
	c.Fill(2, true, TLBEntry)
	c.Fill(3, false, TLBEntry)
	if n := c.InvalidateKind(TLBEntry); n != 2 {
		t.Errorf("InvalidateKind removed %d, want 2", n)
	}
	if c.Resident(TLBEntry) != 0 || c.Resident(Data) != 1 {
		t.Errorf("resident after flush: tlb=%d data=%d", c.Resident(TLBEntry), c.Resident(Data))
	}
	if c.Lookup(2) || c.Lookup(3) || !c.Lookup(1) {
		t.Error("wrong lines flushed")
	}
	if n := c.InvalidateKind(TLBEntry); n != 0 {
		t.Errorf("second flush removed %d", n)
	}
}
