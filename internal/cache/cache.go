// Package cache implements the set-associative write-back data caches of
// Table 1 (L1I/L1D 32 KB 8-way, L2 256 KB 4-way, L3 8 MB 16-way) with true
// LRU replacement.
//
// The one non-standard feature — and the reason the paper's idea works at
// all — is that every resident line is tagged with what it holds: ordinary
// program data or a POM-TLB entry set. Because the POM-TLB is mapped into
// the physical address space, its 64 B sets are cached here like any other
// line; tagging lets the simulator report the TLB-entry hit ratios of
// Figure 9 and the cache-occupancy interference discussed in Section 5.1
// without changing the replacement behaviour.
package cache

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/stats"
)

// Kind says what a cache line holds. Replacement is kind-blind (the paper's
// design caches TLB entries "like data"); the kind exists purely so the
// statistics can be split.
type Kind uint8

const (
	// Data marks ordinary program load/store lines.
	Data Kind = iota
	// TLBEntry marks lines holding POM-TLB sets.
	TLBEntry

	numKinds = 2
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == TLBEntry {
		return "tlb-entry"
	}
	return "data"
}

// Priority selects the Section 5.1 "TLB-aware caching" policy: which line
// kind the replacement policy prefers to *retain*. The victim search first
// considers lines of the other kind (LRU among them) and only falls back
// to evicting a preferred line when the whole set holds the preferred
// kind.
type Priority uint8

const (
	// NoPriority is the paper's default: replacement is kind-blind.
	NoPriority Priority = iota
	// PreferTLB retains POM-TLB entry lines over data — for workloads
	// whose L2 TLB misses are more expensive than their data misses.
	PreferTLB
	// PreferData retains data lines over TLB entries.
	PreferData
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PreferTLB:
		return "prefer-tlb"
	case PreferData:
		return "prefer-data"
	}
	return "none"
}

// preferred returns the retained kind, and whether a preference exists.
func (p Priority) preferred() (Kind, bool) {
	switch p {
	case PreferTLB:
		return TLBEntry, true
	case PreferData:
		return Data, true
	}
	return Data, false
}

// Config describes one cache level.
type Config struct {
	// Name labels the level in stats output ("L1D", "L2", "L3").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// Ways is the associativity.
	Ways int
	// Latency is the hit latency in CPU cycles.
	Latency uint64
	// Priority is the Section 5.1 TLB-aware replacement policy.
	Priority Priority
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes == 0 || c.Ways <= 0:
		return fmt.Errorf("cache %q: size and ways must be positive", c.Name)
	case c.SizeBytes%(uint64(c.Ways)*addr.CacheLineSize) != 0:
		return fmt.Errorf("cache %q: size %d not divisible into %d ways of 64B lines", c.Name, c.SizeBytes, c.Ways)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() uint64 {
	return c.SizeBytes / (uint64(c.Ways) * addr.CacheLineSize)
}

// Table 1 cache levels.

// L1I returns the 32 KB 8-way 4-cycle instruction cache config.
func L1I() Config { return Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, Latency: 4} }

// L1D returns the 32 KB 8-way 4-cycle data cache config.
func L1D() Config { return Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, Latency: 4} }

// L2 returns the 256 KB 4-way 12-cycle unified cache config.
func L2() Config { return Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4, Latency: 12} }

// L3 returns the 8 MB 16-way 42-cycle shared cache config.
func L3() Config { return Config{Name: "L3", SizeBytes: 8 << 20, Ways: 16, Latency: 42} }

// Shadow observes every decision a cache level makes, in program order.
// The differential oracle (internal/oracle) attaches one per level and
// replays each operation against an independent recency-stack reference
// model, flagging disagreements in hit/miss outcomes or victim choice.
// A nil shadow costs one branch per operation.
type Shadow interface {
	// Access reports one lookup and its production outcome.
	Access(line uint64, write bool, kind Kind, hit bool)
	// Fill reports one fill and the production eviction decision.
	Fill(line uint64, write bool, kind Kind, ev Eviction)
	// Invalidate reports a single-line invalidation.
	Invalidate(line uint64, present, dirty bool)
	// InvalidateKind reports a kind-wide flush and how many lines dropped.
	InvalidateKind(kind Kind, n int)
}

// way is one line frame.
type way struct {
	tag   uint64
	valid bool
	dirty bool
	kind  Kind
	lru   uint64 // higher = more recently used
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	// Valid is true when a line was actually displaced.
	Valid bool
	// Line is the displaced line address (address >> 6).
	Line uint64
	// Dirty is true when the displaced line needs a write-back.
	Dirty bool
	// Kind is what the displaced line held.
	Kind Kind
}

// Stats holds per-kind access counters for one cache level.
type Stats struct {
	// Access counts lookups split by line kind.
	Access [numKinds]stats.HitMiss
	// Evictions counts displaced lines by kind — how often TLB entries
	// push out data and vice versa (Section 5.1).
	Evictions [numKinds]uint64
	// Writebacks counts dirty evictions.
	Writebacks uint64
}

// DataHitRate returns the hit ratio for ordinary data lines.
func (s Stats) DataHitRate() float64 { return s.Access[Data].Ratio() }

// TLBHitRate returns the hit ratio for POM-TLB entry lines (Figure 9).
func (s Stats) TLBHitRate() float64 { return s.Access[TLBEntry].Ratio() }

// hook wraps an attached Shadow behind a concrete pointer: the
// unobserved hot path pays a single-word nil check instead of a
// two-word interface comparison, and the virtual call sits behind a
// branch the CPU predicts never-taken when no oracle is attached.
type hook struct{ s Shadow }

// Cache is one level of a write-back, write-allocate cache. All ways
// live in one contiguous array; set i occupies ways[i*Ways : (i+1)*Ways].
type Cache struct {
	cfg     Config
	ways    []way
	nways   int
	setMask uint64
	clock   uint64
	stats   Stats
	shadow  *hook

	// resident tracks how many currently-valid lines hold each kind, so
	// occupancy interference is observable.
	resident [numKinds]uint64
}

// New builds a cache level, reporting configuration errors.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets()
	return &Cache{
		cfg:     cfg,
		ways:    make([]way, n*uint64(cfg.Ways)),
		nways:   cfg.Ways,
		setMask: n - 1,
	}, nil
}

// MustNew is New but panics on invalid configuration — the historical
// behavior, used by call sites whose configuration was already validated.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetShadow attaches (or, with nil, detaches) a lockstep observer.
func (c *Cache) SetShadow(s Shadow) {
	if s == nil {
		c.shadow = nil
		return
	}
	c.shadow = &hook{s}
}

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() uint64 { return c.cfg.Latency }

// setIndex maps a line address to its set.
func (c *Cache) setIndex(line uint64) uint64 { return line & c.setMask }

// setFor returns the ways of the set a line maps to.
func (c *Cache) setFor(line uint64) []way {
	i := c.setIndex(line) * uint64(c.nways)
	return c.ways[i : i+uint64(c.nways)]
}

// Lookup probes for a line without recording statistics or changing
// anything; used by tests and inclusive-hierarchy checks.
func (c *Cache) Lookup(line uint64) bool {
	set := c.setFor(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			return true
		}
	}
	return false
}

// Access performs a load (write=false) or store (write=true) of the line
// and returns whether it hit. On a hit the LRU state advances and a store
// marks the line dirty. On a miss nothing is allocated — callers model the
// miss path explicitly and then Fill the line, mirroring how the simulator
// threads a miss down the hierarchy.
func (c *Cache) Access(line uint64, write bool, kind Kind) bool {
	c.clock++
	set := c.setFor(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			w.lru = c.clock
			if write {
				w.dirty = true
			}
			c.stats.Access[kind].Hit()
			if c.shadow != nil {
				c.shadow.s.Access(line, write, kind, true)
			}
			return true
		}
	}
	c.stats.Access[kind].Miss()
	if c.shadow != nil {
		c.shadow.s.Access(line, write, kind, false)
	}
	return false
}

// Fill inserts a line after a miss was resolved below, evicting a victim
// if needed, and returns the eviction (if any). A fill for a store arrives
// dirty. The victim is the LRU way, except under a Section 5.1 priority
// policy, where non-preferred lines are evicted first.
func (c *Cache) Fill(line uint64, write bool, kind Kind) Eviction {
	c.clock++
	set := c.setFor(line)
	// Scan the whole set for a present copy before choosing a victim:
	// stopping the search at an invalid way would miss a matching line
	// beyond it and install a duplicate.
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			// Already present (e.g. filled by a racing sibling): refresh.
			w.lru = c.clock
			if write {
				w.dirty = true
			}
			if c.shadow != nil {
				c.shadow.s.Fill(line, write, kind, Eviction{})
			}
			return Eviction{}
		}
	}
	victim := -1
	victimPreferred := false
	pref, hasPref := c.cfg.Priority.preferred()
	for i := range set {
		w := &set[i]
		if !w.valid {
			victim = i
			victimPreferred = false
			break
		}
		wPreferred := hasPref && w.kind == pref
		switch {
		case victim == -1:
			victim, victimPreferred = i, wPreferred
		case victimPreferred && !wPreferred:
			// A non-preferred line always beats a preferred one.
			victim, victimPreferred = i, wPreferred
		case victimPreferred == wPreferred && w.lru < set[victim].lru:
			victim = i
		}
	}
	w := &set[victim]
	var ev Eviction
	if w.valid {
		ev = Eviction{Valid: true, Line: w.tag, Dirty: w.dirty, Kind: w.kind}
		c.stats.Evictions[w.kind]++
		if w.dirty {
			c.stats.Writebacks++
		}
		c.resident[w.kind]--
	}
	*w = way{tag: line, valid: true, dirty: write, kind: kind, lru: c.clock}
	c.resident[kind]++
	if c.shadow != nil {
		c.shadow.s.Fill(line, write, kind, ev)
	}
	return ev
}

// Invalidate drops a line if present, returning whether it was dirty. Used
// for TLB shootdowns of cached POM-TLB sets.
func (c *Cache) Invalidate(line uint64) (present, dirty bool) {
	set := c.setFor(line)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			c.resident[w.kind]--
			present, dirty = true, w.dirty
			*w = way{}
			break
		}
	}
	if c.shadow != nil {
		c.shadow.s.Invalidate(line, present, dirty)
	}
	return present, dirty
}

// InvalidateKind drops every line of the given kind (used by conservative
// flushes of cached POM-TLB sets) and returns the count dropped.
func (c *Cache) InvalidateKind(kind Kind) int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid && c.ways[i].kind == kind {
			c.ways[i] = way{}
			c.resident[kind]--
			n++
		}
	}
	if c.shadow != nil {
		c.shadow.s.InvalidateKind(kind, n)
	}
	return n
}

// Resident returns how many valid lines currently hold the given kind.
func (c *Cache) Resident(kind Kind) uint64 { return c.resident[kind] }

// CheckInvariants validates the cache's internal structural invariants:
// every valid line resides in the set its address indexes, LRU stamps are
// unique within a set and never ahead of the clock, no line is duplicated
// across ways, and the per-kind residency counters match a recount. It
// returns the first violation found, or nil.
func (c *Cache) CheckInvariants() error {
	var recount [numKinds]uint64
	seen := make(map[uint64]int)
	numSets := len(c.ways) / c.nways
	for si := 0; si < numSets; si++ {
		set := c.ways[si*c.nways : (si+1)*c.nways]
		stamps := make(map[uint64]int, len(set))
		for wi := range set {
			w := &set[wi]
			if !w.valid {
				continue
			}
			recount[w.kind]++
			if want := c.setIndex(w.tag); want != uint64(si) {
				return fmt.Errorf("cache %q: line %#x resident in set %d, its address indexes set %d",
					c.cfg.Name, w.tag, si, want)
			}
			if w.lru > c.clock {
				return fmt.Errorf("cache %q: set %d way %d LRU stamp %d ahead of clock %d",
					c.cfg.Name, si, wi, w.lru, c.clock)
			}
			if prev, dup := stamps[w.lru]; dup {
				return fmt.Errorf("cache %q: set %d ways %d and %d share LRU stamp %d",
					c.cfg.Name, si, prev, wi, w.lru)
			}
			stamps[w.lru] = wi
			if prev, dup := seen[w.tag]; dup {
				return fmt.Errorf("cache %q: line %#x duplicated in sets %d and %d",
					c.cfg.Name, w.tag, prev, si)
			}
			seen[w.tag] = si
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if recount[k] != c.resident[k] {
			return fmt.Errorf("cache %q: resident[%s]=%d but recount found %d",
				c.cfg.Name, k, c.resident[k], recount[k])
		}
	}
	return nil
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears counters; contents are untouched.
func (c *Cache) ResetStats() { c.stats = Stats{} }
