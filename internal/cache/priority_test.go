package cache

import (
	"testing"
	"testing/quick"
)

func tinyWithPriority(p Priority) *Cache {
	return MustNew(Config{Name: "tiny", SizeBytes: 4 * 64, Ways: 4, Latency: 1, Priority: p})
}

func TestPriorityString(t *testing.T) {
	if NoPriority.String() != "none" || PreferTLB.String() != "prefer-tlb" || PreferData.String() != "prefer-data" {
		t.Error("Priority.String wrong")
	}
}

func TestPreferTLBEvictsDataFirst(t *testing.T) {
	c := tinyWithPriority(PreferTLB) // one set, 4 ways (lines ≡ 0 mod 1)
	c.Fill(0, false, TLBEntry)       // oldest
	c.Fill(1, false, Data)
	c.Fill(2, false, TLBEntry)
	c.Fill(3, false, Data)
	// Kind-blind LRU would evict line 0 (TLB). Preference evicts the LRU
	// *data* line instead: line 1.
	ev := c.Fill(4, false, Data)
	if !ev.Valid || ev.Line != 1 || ev.Kind != Data {
		t.Errorf("eviction = %+v, want data line 1", ev)
	}
	if !c.Lookup(0) || !c.Lookup(2) {
		t.Error("TLB lines should survive")
	}
}

func TestPreferTLBFallsBackWhenSetAllTLB(t *testing.T) {
	c := tinyWithPriority(PreferTLB)
	for line := uint64(0); line < 4; line++ {
		c.Fill(line, false, TLBEntry)
	}
	ev := c.Fill(4, false, TLBEntry)
	if !ev.Valid || ev.Line != 0 || ev.Kind != TLBEntry {
		t.Errorf("eviction = %+v, want LRU TLB line 0", ev)
	}
}

func TestPreferDataEvictsTLBFirst(t *testing.T) {
	c := tinyWithPriority(PreferData)
	c.Fill(0, false, Data)
	c.Fill(1, false, TLBEntry)
	c.Fill(2, false, Data)
	c.Fill(3, false, TLBEntry)
	ev := c.Fill(4, false, Data)
	if !ev.Valid || ev.Line != 1 || ev.Kind != TLBEntry {
		t.Errorf("eviction = %+v, want TLB line 1", ev)
	}
}

func TestNoPriorityIsPlainLRU(t *testing.T) {
	c := tinyWithPriority(NoPriority)
	c.Fill(0, false, TLBEntry)
	c.Fill(1, false, Data)
	c.Fill(2, false, Data)
	c.Fill(3, false, Data)
	ev := c.Fill(4, false, Data)
	if ev.Line != 0 {
		t.Errorf("kind-blind LRU should evict line 0, got %+v", ev)
	}
}

func TestPriorityInvalidWaysStillPreferred(t *testing.T) {
	c := tinyWithPriority(PreferTLB)
	c.Fill(0, false, TLBEntry)
	// Set has 3 empty ways: no eviction regardless of priority.
	if ev := c.Fill(1, false, Data); ev.Valid {
		t.Errorf("fill into non-full set evicted %+v", ev)
	}
}

// Property: under PreferTLB on a single-set cache, a TLB line is evicted
// only when the set holds no data line (tracked with a shadow model).
func TestPreferTLBProperty(t *testing.T) {
	c := tinyWithPriority(PreferTLB) // single set
	shadow := map[uint64]Kind{}      // resident line → kind
	f := func(raw uint8, tlbKind bool) bool {
		kind := Data
		if tlbKind {
			kind = TLBEntry
		}
		line := uint64(raw)
		_, present := shadow[line]
		ev := c.Fill(line, false, kind)
		if ev.Valid {
			if ev.Kind == TLBEntry {
				// No data line may have been resident pre-insert.
				for _, k := range shadow {
					if k == Data {
						return false
					}
				}
			}
			delete(shadow, ev.Line)
		}
		if !present {
			shadow[line] = kind
		}
		return len(shadow) <= 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
