// Package virt provides the virtualization substrate under the simulator:
// a hypervisor that owns host physical memory, per-VM guest physical
// address spaces, guest page tables (gVA→gPA) per process, and per-VM
// extended page tables (gPA→hPA). It reproduces the two-dimensional
// structure QEMU/KVM gave the paper's evaluation — every guest page-table
// node itself lives at a guest physical address that the EPT must map,
// which is why a cold virtualized walk costs up to 24 references.
//
// A THP-like policy decides which mappings get 2 MB pages: callers declare
// a region's preferred page size when touching it, the way Linux THP
// promotes aligned 2 MB extents, and the hypervisor backs 2 MB guest pages
// with 2 MB EPT mappings.
package virt

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/pagetable"
)

// FrameAlloc hands out physical frames in one address space. Page-table
// nodes and 4 KB pages come from a low region; 2 MB pages from a high,
// 2 MB-aligned region, so the two never collide.
type FrameAlloc struct {
	nextSmall uint64
	nextLarge uint64
	nextHuge  uint64
	limit     uint64
	allocated uint64 // bytes handed out
}

// NewFrameAlloc creates an allocator. base is where small allocations
// start, largeBase (2 MB aligned, above base) where large pages start, and
// limit caps the large region.
func NewFrameAlloc(base, largeBase, limit uint64) *FrameAlloc {
	if largeBase%addr.Bytes2M != 0 {
		panic("virt: largeBase must be 2MB aligned")
	}
	if base >= largeBase || largeBase >= limit {
		panic("virt: need base < largeBase < limit")
	}
	// Huge (1 GB) frames come from the top of the large region, growing
	// down, so the two never collide within the limit.
	return &FrameAlloc{
		nextSmall: base,
		nextLarge: largeBase,
		nextHuge:  (limit - addr.Bytes1G) &^ (addr.Bytes1G - 1),
		limit:     limit,
	}
}

// AllocNode allocates a 4 KB page-table node frame.
func (f *FrameAlloc) AllocNode() uint64 { return f.alloc4K() }

// Alloc allocates a frame of the given size and returns its base address.
func (f *FrameAlloc) Alloc(s addr.PageSize) uint64 {
	if s == addr.Page1G {
		a := f.nextHuge
		if a <= f.nextLarge {
			panic("virt: huge-frame region exhausted")
		}
		f.nextHuge -= addr.Bytes1G
		f.allocated += addr.Bytes1G
		return a
	}
	if s == addr.Page2M {
		a := f.nextLarge
		f.nextLarge += addr.Bytes2M
		if f.nextLarge > f.limit {
			panic(fmt.Sprintf("virt: large-frame region exhausted at %#x", a))
		}
		f.allocated += addr.Bytes2M
		return a
	}
	return f.alloc4K()
}

func (f *FrameAlloc) alloc4K() uint64 {
	a := f.nextSmall
	f.nextSmall += addr.Bytes4K
	f.allocated += addr.Bytes4K
	return a
}

// AllocatedBytes returns the total bytes handed out.
func (f *FrameAlloc) AllocatedBytes() uint64 { return f.allocated }

// Config sizes the hypervisor's host physical layout.
type Config struct {
	// HostBase is the first host physical address available for
	// allocation; the region below it is reserved (in the paper's system,
	// for the memory-mapped POM-TLB).
	HostBase uint64
	// GuestBase is where each VM's guest physical space starts.
	GuestBase uint64
}

// DefaultConfig reserves the low 256 MB of host physical memory (ample for
// the POM-TLB partitions) and starts guest physical spaces at 16 MB.
func DefaultConfig() Config {
	return Config{HostBase: 256 << 20, GuestBase: 16 << 20}
}

// Hypervisor owns host physical memory and the set of VMs.
type Hypervisor struct {
	cfg    Config
	halloc *FrameAlloc
	vms    map[addr.VMID]*VM
	native map[addr.PID]*pagetable.Table
}

// NewHypervisor creates a hypervisor with the given layout.
func NewHypervisor(cfg Config) *Hypervisor {
	const smallSpan = 1 << 44 // generous per-region spans within 48 bits
	return &Hypervisor{
		cfg:    cfg,
		halloc: NewFrameAlloc(cfg.HostBase, alignUp(cfg.HostBase+smallSpan, addr.Bytes2M), 1<<47),
		vms:    make(map[addr.VMID]*VM),
		native: make(map[addr.PID]*pagetable.Table),
	}
}

func alignUp(x, a uint64) uint64 { return (x + a - 1) &^ (a - 1) }

// HostAlloc returns the host physical frame allocator.
func (h *Hypervisor) HostAlloc() *FrameAlloc { return h.halloc }

// NewVM registers a virtual machine. VMID 0 is reserved for native
// execution.
func (h *Hypervisor) NewVM(id addr.VMID) (*VM, error) {
	if id == 0 {
		return nil, fmt.Errorf("virt: VMID 0 is reserved for the host")
	}
	if _, dup := h.vms[id]; dup {
		return nil, fmt.Errorf("virt: VM %d already exists", id)
	}
	const guestSmallSpan = 1 << 42
	galloc := NewFrameAlloc(h.cfg.GuestBase, alignUp(h.cfg.GuestBase+guestSmallSpan, addr.Bytes2M), 1<<46)
	vm := &VM{
		id:     id,
		hyp:    h,
		galloc: galloc,
		ept:    pagetable.New(h.halloc.AllocNode),
		procs:  make(map[addr.PID]*pagetable.Table),
	}
	h.vms[id] = vm
	return vm, nil
}

// VM returns a registered VM.
func (h *Hypervisor) VM(id addr.VMID) (*VM, bool) {
	vm, ok := h.vms[id]
	return vm, ok
}

// VMs returns the number of registered VMs.
func (h *Hypervisor) VMs() int { return len(h.vms) }

// NativeProcess returns (creating if needed) the bare-metal page table for
// a host process: a single-dimension table whose nodes live directly in
// host physical memory. Used for the paper's native-execution comparisons.
func (h *Hypervisor) NativeProcess(pid addr.PID) *pagetable.Table {
	t, ok := h.native[pid]
	if !ok {
		t = pagetable.New(h.halloc.AllocNode)
		h.native[pid] = t
	}
	return t
}

// TouchNative ensures a native mapping exists, allocating a host frame on
// first touch. Returns the leaf entry and whether it was newly created.
func (h *Hypervisor) TouchNative(pid addr.PID, va addr.VA, size addr.PageSize) (pagetable.Entry, bool, error) {
	t := h.NativeProcess(pid)
	aligned := uint64(va.PageBase(size))
	if e, ok := t.Lookup(aligned); ok {
		return e, false, nil
	}
	frame := h.halloc.Alloc(size)
	if _, err := t.Map(aligned, frame>>size.Shift(), size); err != nil {
		return pagetable.Entry{}, false, err
	}
	e, _ := t.Lookup(aligned)
	return e, true, nil
}

// VM is one virtual machine: a guest physical address space, per-process
// guest page tables, and an EPT mapping guest-physical to host-physical.
type VM struct {
	id     addr.VMID
	hyp    *Hypervisor
	galloc *FrameAlloc
	ept    *pagetable.Table
	procs  map[addr.PID]*pagetable.Table
}

// ID returns the VM identifier.
func (vm *VM) ID() addr.VMID { return vm.id }

// EPT returns the VM's extended page table (nodes in host physical space).
func (vm *VM) EPT() *pagetable.Table { return vm.ept }

// GuestTable returns (creating if needed) the guest page table of a
// process. Its nodes live in guest physical space; every node frame is
// EPT-mapped when created (see Touch), since the hardware walker must be
// able to host-translate it.
func (vm *VM) GuestTable(pid addr.PID) *pagetable.Table {
	t, ok := vm.procs[pid]
	if !ok {
		t = pagetable.New(vm.galloc.AllocNode)
		vm.procs[pid] = t
	}
	return t
}

// Processes returns the number of processes with page tables.
func (vm *VM) Processes() int { return len(vm.procs) }

// eptMapNodes EPT-maps freshly created guest page-table node frames at
// 4 KB granularity.
func (vm *VM) eptMapNodes(nodes []uint64) error {
	for _, gpa := range nodes {
		if _, ok := vm.ept.Lookup(gpa); ok {
			continue
		}
		hframe := vm.hyp.halloc.Alloc(addr.Page4K)
		if _, err := vm.ept.Map(gpa, hframe>>addr.Shift4K, addr.Page4K); err != nil {
			return fmt.Errorf("virt: EPT-mapping guest node %#x: %w", gpa, err)
		}
	}
	return nil
}

// Touch ensures va is fully mapped for (pid): guest table maps the page to
// a fresh guest frame, the EPT maps that frame (and any new guest table
// nodes) to host frames. size selects 4 KB or THP-style 2 MB backing.
// Touching an already-mapped page is a cheap no-op. The returned flag is
// true when a new mapping was created.
func (vm *VM) Touch(pid addr.PID, va addr.VA, size addr.PageSize) (bool, error) {
	gt := vm.GuestTable(pid)
	aligned := uint64(va.PageBase(size))
	if e, ok := gt.Lookup(aligned); ok && e.Size == size {
		return false, nil
	}
	gframe := vm.galloc.Alloc(size)
	nodes, err := gt.Map(aligned, gframe>>size.Shift(), size)
	if err != nil {
		return false, fmt.Errorf("virt: guest map %s: %w", va, err)
	}
	if err := vm.eptMapNodes(nodes); err != nil {
		return false, err
	}
	// Back the data frame with a same-size host frame (THP on the host).
	hframe := vm.hyp.halloc.Alloc(size)
	if _, err := vm.ept.Map(gframe, hframe>>size.Shift(), size); err != nil {
		return false, fmt.Errorf("virt: EPT map gPA %#x: %w", gframe, err)
	}
	return true, nil
}

// Translate resolves a guest virtual address logically (no timing): the
// ground truth the timed translation paths must agree with.
func (vm *VM) Translate(pid addr.PID, va addr.VA) (addr.HPA, addr.PageSize, bool) {
	gt := vm.GuestTable(pid)
	ge, ok := gt.Lookup(uint64(va))
	if !ok {
		return 0, 0, false
	}
	gpa := addr.FromPFN(ge.PFN, ge.Size, va.Offset(ge.Size))
	he, ok := vm.ept.Lookup(uint64(gpa))
	if !ok {
		return 0, 0, false
	}
	hpa := addr.FromPFN(he.PFN, he.Size, uint64(gpa)&(he.Size.Bytes()-1))
	return hpa, ge.Size, true
}

// Unmap removes a guest mapping (the EPT backing stays; real hypervisors
// reclaim lazily) and returns whether anything was removed. The caller is
// responsible for the TLB shootdown.
func (vm *VM) Unmap(pid addr.PID, va addr.VA, size addr.PageSize) bool {
	gt := vm.GuestTable(pid)
	_, ok := gt.Unmap(uint64(va.PageBase(size)))
	return ok
}
