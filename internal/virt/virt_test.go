package virt

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/pagetable"
)

func newVM(t *testing.T) (*Hypervisor, *VM) {
	t.Helper()
	h := NewHypervisor(DefaultConfig())
	vm, err := h.NewVM(1)
	if err != nil {
		t.Fatal(err)
	}
	return h, vm
}

func TestFrameAllocBasics(t *testing.T) {
	f := NewFrameAlloc(0x1000, 0x20_0000, 0x1_0000_0000)
	a := f.Alloc(addr.Page4K)
	b := f.Alloc(addr.Page4K)
	if a != 0x1000 || b != 0x2000 {
		t.Errorf("small allocs = %#x, %#x", a, b)
	}
	l := f.Alloc(addr.Page2M)
	if l%addr.Bytes2M != 0 {
		t.Errorf("large alloc %#x not 2MB aligned", l)
	}
	if f.AllocatedBytes() != 2*addr.Bytes4K+addr.Bytes2M {
		t.Errorf("AllocatedBytes = %d", f.AllocatedBytes())
	}
	if n := f.AllocNode(); n != 0x3000 {
		t.Errorf("node alloc = %#x", n)
	}
}

func TestFrameAllocValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFrameAlloc(0x1000, 0x1001, 1<<30) },       // unaligned
		func() { NewFrameAlloc(0x20_0000, 0x20_0000, 1<<30) }, // base >= largeBase
		func() { NewFrameAlloc(0x1000, 0x20_0000, 0x1000) },   // limit too low
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFrameAllocExhaustion(t *testing.T) {
	f := NewFrameAlloc(0x1000, 0x20_0000, 0x40_0000)
	f.Alloc(addr.Page2M) // fills the single large slot
	defer func() {
		if recover() == nil {
			t.Error("expected panic on exhaustion")
		}
	}()
	f.Alloc(addr.Page2M)
}

func TestNewVMValidation(t *testing.T) {
	h := NewHypervisor(DefaultConfig())
	if _, err := h.NewVM(0); err == nil {
		t.Error("VMID 0 should be rejected")
	}
	if _, err := h.NewVM(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.NewVM(1); err == nil {
		t.Error("duplicate VMID should be rejected")
	}
	if h.VMs() != 1 {
		t.Errorf("VMs = %d", h.VMs())
	}
	if _, ok := h.VM(1); !ok {
		t.Error("VM(1) should exist")
	}
	if _, ok := h.VM(9); ok {
		t.Error("VM(9) should not exist")
	}
}

func TestTouchAndTranslate4K(t *testing.T) {
	_, vm := newVM(t)
	va := addr.VA(0x7f00_1234_5000)
	if _, err := vm.Touch(1, va, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	hpa, size, ok := vm.Translate(1, va+0x123)
	if !ok || size != addr.Page4K {
		t.Fatalf("Translate = %v, %v, %v", hpa, size, ok)
	}
	if uint64(hpa)&0xFFF != 0x123 {
		t.Errorf("offset not preserved: %#x", uint64(hpa))
	}
	if uint64(hpa) < DefaultConfig().HostBase {
		t.Errorf("hPA %#x below host base (reserved region)", uint64(hpa))
	}
}

func TestTouchAndTranslate2M(t *testing.T) {
	_, vm := newVM(t)
	va := addr.VA(0x4000_0000)
	if _, err := vm.Touch(1, va, addr.Page2M); err != nil {
		t.Fatal(err)
	}
	hpa, size, ok := vm.Translate(1, va+0x12_3456)
	if !ok || size != addr.Page2M {
		t.Fatalf("Translate = %v, %v, %v", hpa, size, ok)
	}
	if uint64(hpa)&(addr.Bytes2M-1) != 0x12_3456 {
		t.Errorf("2M offset not preserved: %#x", uint64(hpa))
	}
}

func TestTouchIdempotent(t *testing.T) {
	_, vm := newVM(t)
	va := addr.VA(0x1000)
	vm.Touch(1, va, addr.Page4K)
	h1, _, _ := vm.Translate(1, va)
	vm.Touch(1, va, addr.Page4K)
	h2, _, _ := vm.Translate(1, va)
	if h1 != h2 {
		t.Errorf("re-touch changed mapping: %v vs %v", h1, h2)
	}
}

func TestTranslateUnmapped(t *testing.T) {
	_, vm := newVM(t)
	if _, _, ok := vm.Translate(1, 0xdead_0000); ok {
		t.Error("unmapped VA should not translate")
	}
}

func TestGuestNodesAreEPTMapped(t *testing.T) {
	_, vm := newVM(t)
	va := addr.VA(0x7f00_0000_0000)
	if _, err := vm.Touch(1, va, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	// Every guest page-table node must be EPT-mapped or the hardware 2D
	// walker could not read guest PTEs.
	gt := vm.GuestTable(1)
	refs, _, ok := gt.Walk(uint64(va))
	if !ok || len(refs) != 4 {
		t.Fatalf("guest walk refs = %d, ok = %v", len(refs), ok)
	}
	for _, r := range refs {
		if _, ok := vm.EPT().Lookup(r.Addr); !ok {
			t.Errorf("guest node GPA %#x not EPT-mapped", r.Addr)
		}
	}
}

func TestFull2DWalkThroughVirtTables(t *testing.T) {
	_, vm := newVM(t)
	va := addr.VA(0x7f00_0000_1000)
	if _, err := vm.Touch(1, va, addr.Page4K); err != nil {
		t.Fatal(err)
	}
	w := pagetable.NewWalker(pagetable.DefaultWalkerConfig(),
		func(a addr.HPA, write bool) uint64 { return 1 })
	res := w.Translate2D(vm.GuestTable(1), vm.EPT(), uint16AsVMID(1), 1, va)
	if !res.OK {
		t.Fatal("2D walk through virt tables failed")
	}
	want, size, _ := vm.Translate(1, va)
	if res.HPFN != want.PFN(size) {
		t.Errorf("walker HPFN %#x != logical %#x", res.HPFN, want.PFN(size))
	}
	if res.Refs != 24 {
		t.Errorf("cold walk refs = %d, want 24", res.Refs)
	}
}

func uint16AsVMID(x uint16) addr.VMID { return addr.VMID(x) }

func TestProcessIsolation(t *testing.T) {
	_, vm := newVM(t)
	va := addr.VA(0x1000)
	vm.Touch(1, va, addr.Page4K)
	vm.Touch(2, va, addr.Page4K)
	h1, _, _ := vm.Translate(1, va)
	h2, _, _ := vm.Translate(2, va)
	if h1 == h2 {
		t.Error("different processes should get different frames")
	}
	if vm.Processes() != 2 {
		t.Errorf("Processes = %d", vm.Processes())
	}
}

func TestVMIsolation(t *testing.T) {
	h := NewHypervisor(DefaultConfig())
	vm1, _ := h.NewVM(1)
	vm2, _ := h.NewVM(2)
	va := addr.VA(0x1000)
	vm1.Touch(1, va, addr.Page4K)
	vm2.Touch(1, va, addr.Page4K)
	h1, _, _ := vm1.Translate(1, va)
	h2, _, _ := vm2.Translate(1, va)
	if h1 == h2 {
		t.Error("different VMs should get different host frames")
	}
}

func TestNativeProcess(t *testing.T) {
	h := NewHypervisor(DefaultConfig())
	e, created, err := h.TouchNative(1, 0x1234_5000, addr.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Valid || !created {
		t.Fatal("native touch should create a valid entry")
	}
	// Idempotent.
	e2, created2, err := h.TouchNative(1, 0x1234_5000, addr.Page4K)
	if err != nil || e2.PFN != e.PFN || created2 {
		t.Errorf("second TouchNative = %+v, created=%v, %v", e2, created2, err)
	}
	// Walkable with 4 refs.
	tab := h.NativeProcess(1)
	refs, _, ok := tab.Walk(0x1234_5000)
	if !ok || len(refs) != 4 {
		t.Errorf("native walk refs = %d, ok = %v", len(refs), ok)
	}
}

func TestUnmap(t *testing.T) {
	_, vm := newVM(t)
	va := addr.VA(0x1000)
	vm.Touch(1, va, addr.Page4K)
	if !vm.Unmap(1, va, addr.Page4K) {
		t.Error("Unmap should succeed")
	}
	if _, _, ok := vm.Translate(1, va); ok {
		t.Error("mapping survived Unmap")
	}
	if vm.Unmap(1, va, addr.Page4K) {
		t.Error("double Unmap should fail")
	}
}

// Property: any touched address translates, preserves its in-page offset,
// and lands in non-reserved host memory; the timed 2D walker agrees with
// the logical translation.
func TestTouchTranslateProperty(t *testing.T) {
	_, vm := newVM(t)
	w := pagetable.NewWalker(pagetable.DefaultWalkerConfig(),
		func(a addr.HPA, write bool) uint64 { return 1 })
	f := func(raw uint64, large bool) bool {
		size := addr.Page4K
		if large {
			size = addr.Page2M
		}
		va := addr.Canonical(raw)
		if _, err := vm.Touch(1, va, size); err != nil {
			return true // geometry conflict from a prior iteration's size
		}
		hpa, gotSize, ok := vm.Translate(1, va)
		if !ok || uint64(hpa)&(gotSize.Bytes()-1) != va.Offset(gotSize) {
			return false
		}
		res := w.Translate2D(vm.GuestTable(1), vm.EPT(), 1, 1, va)
		return res.OK && res.HPFN == hpa.PFN(gotSize) && res.Size == gotSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
