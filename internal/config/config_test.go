package config

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestRoundtrip(t *testing.T) {
	f := Default()
	f.Workload = "gups"
	f.Config.Cores = 4
	f.Config.POM.SizeBytes = 32 << 20

	data, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "gups" || got.Config.Cores != 4 || got.Config.POM.SizeBytes != 32<<20 {
		t.Errorf("roundtrip lost fields: %+v", got)
	}
	if got.Config.Mode != core.POMTLB {
		t.Errorf("mode = %v", got.Config.Mode)
	}
}

func TestParsePartialKeepsDefaults(t *testing.T) {
	got, err := Parse([]byte(`{"workload":"mcf","config":{"Cores":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Config.Cores != 2 {
		t.Errorf("Cores = %d", got.Config.Cores)
	}
	// Unspecified fields keep Table 1 defaults.
	if got.Config.L2TLB.Entries != 1536 {
		t.Errorf("partial parse lost defaults: %+v", got.Config.L2TLB)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse([]byte(`{"workload":"","config":{}}`)); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Parse([]byte(`{"workload":"mcf","config":{"Cores":0}}`)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	f := Default()
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != f.Workload || got.Config.Cores != f.Config.Cores {
		t.Error("save/load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
