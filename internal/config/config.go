// Package config provides JSON round-tripping for simulator
// configurations, so experiments can be pinned in version-controlled
// files and replayed exactly (cmd/pomsim -config).
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
)

// File is the on-disk configuration: the full core.Config plus a workload
// selection.
type File struct {
	// Workload names a Table 2 benchmark.
	Workload string `json:"workload"`
	// Config is the simulated machine.
	Config core.Config `json:"config"`
}

// Default returns a File with the paper's defaults and mcf selected.
func Default() File {
	return File{Workload: "mcf", Config: core.DefaultConfig()}
}

// Load reads and validates a configuration file.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates configuration JSON.
func Parse(data []byte) (File, error) {
	f := Default() // unspecified fields keep their defaults
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("config: parsing: %w", err)
	}
	if err := f.Config.Validate(); err != nil {
		return File{}, fmt.Errorf("config: %w", err)
	}
	if f.Workload == "" {
		return File{}, fmt.Errorf("config: no workload named")
	}
	return f, nil
}

// Save writes the configuration as indented JSON.
func Save(path string, f File) error {
	data, err := Marshal(f)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// Marshal encodes the configuration as indented JSON.
func Marshal(f File) ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("config: encoding: %w", err)
	}
	return append(data, '\n'), nil
}
