package oracle

import (
	"repro/internal/addr"
	"repro/internal/pomtlb"
)

// refWay is one way of the reference POM-TLB partition.
type refWay struct {
	valid bool
	vm    addr.VMID
	pid   addr.PID
	vpn   uint64
	pfn   uint64
	age   uint8 // 2-bit age, 3 = most recent
}

// RefPOM is the reference model for one POM-TLB partition. Because the
// production 2-bit LRU breaks ties by way scan order, the reference must
// mirror way positions exactly: each set is a fixed-size slice indexed
// by way, with the aging and victim rules restated independently. The
// Equation (1) set index is likewise recomputed with division/modulo.
// It implements pomtlb.Shadow.
type RefPOM struct {
	h       *Harness
	name    string
	size    addr.PageSize
	ways    int
	numSets uint64
	sets    [][]refWay
}

// NewRefPOM builds the reference for partition p's geometry and attaches
// it.
func NewRefPOM(h *Harness, p *pomtlb.Partition) *RefPOM {
	ways := int(p.Entries() / p.Sets())
	r := &RefPOM{
		h:       h,
		name:    "pom-" + p.PageSize.String(),
		size:    p.PageSize,
		ways:    ways,
		numSets: p.Sets(),
		sets:    make([][]refWay, p.Sets()),
	}
	for i := range r.sets {
		r.sets[i] = make([]refWay, ways)
	}
	p.SetShadow(r)
	return r
}

// set restates Equation (1): four consecutive pages share a set, the VM
// ID spread by the Knuth hash, modulo the set count.
func (r *RefPOM) set(vpn uint64, vm addr.VMID) uint64 {
	return (vpn/4 ^ uint64(vm)*2654435761) % r.numSets
}

func (r *RefPOM) find(set []refWay, vm addr.VMID, pid addr.PID, vpn uint64) int {
	for i, w := range set {
		if w.valid && w.vm == vm && w.pid == pid && w.vpn == vpn {
			return i
		}
	}
	return -1
}

// age applies the 2-bit update: the touched way becomes 3, every other
// valid way decays toward 0.
func age(set []refWay, touched int) {
	for i := range set {
		switch {
		case i == touched:
			set[i].age = 3
		case set[i].valid && set[i].age > 0:
			set[i].age--
		}
	}
}

// Search implements pomtlb.Shadow.
func (r *RefPOM) Search(vm addr.VMID, pid addr.PID, va addr.VA, hit bool, e pomtlb.Entry) {
	r.h.Decision()
	vpn := va.VPN(r.size)
	set := r.sets[r.set(vpn, vm)]
	i := r.find(set, vm, pid, vpn)
	if (i >= 0) != hit {
		r.h.Reportf("%s: search (vm=%d pid=%d vpn=%#x) production hit=%v, reference hit=%v",
			r.name, vm, pid, vpn, hit, i >= 0)
		return
	}
	if !hit {
		return
	}
	if set[i].pfn != e.PFN {
		r.h.Reportf("%s: search (vm=%d pid=%d vpn=%#x) returned PFN %#x, reference holds %#x",
			r.name, vm, pid, vpn, e.PFN, set[i].pfn)
	}
	age(set, i)
}

// Insert implements pomtlb.Shadow.
func (r *RefPOM) Insert(e pomtlb.Entry, victim pomtlb.Entry, evicted bool) {
	r.h.Decision()
	set := r.sets[r.set(e.VPN, e.VM)]
	if i := r.find(set, e.VM, e.PID, e.VPN); i >= 0 {
		if evicted {
			r.h.Reportf("%s: refresh of vpn %#x evicted %v, reference expected no eviction", r.name, e.VPN, victim)
		}
		set[i].pfn = e.PFN
		age(set, i)
		return
	}
	// Victim: the first invalid way, else the first way holding the
	// minimum age.
	vi := -1
	for i, w := range set {
		if !w.valid {
			vi = i
			break
		}
		if vi < 0 || w.age < set[vi].age {
			vi = i
		}
	}
	switch {
	case !set[vi].valid:
		if evicted {
			r.h.Reportf("%s: insert vpn %#x evicted %v, reference way %d is free", r.name, e.VPN, victim, vi)
		}
	case !evicted:
		r.h.Reportf("%s: insert vpn %#x into full set did not evict; reference victim way %d (vpn %#x)",
			r.name, e.VPN, vi, set[vi].vpn)
	case victim.VM != set[vi].vm || victim.PID != set[vi].pid || victim.VPN != set[vi].vpn || victim.PFN != set[vi].pfn:
		r.h.Reportf("%s: insert vpn %#x evicted (vm=%d pid=%d vpn=%#x pfn=%#x), reference victim (vm=%d pid=%d vpn=%#x pfn=%#x)",
			r.name, e.VPN, victim.VM, victim.PID, victim.VPN, victim.PFN,
			set[vi].vm, set[vi].pid, set[vi].vpn, set[vi].pfn)
	}
	set[vi] = refWay{valid: true, vm: e.VM, pid: e.PID, vpn: e.VPN, pfn: e.PFN}
	age(set, vi)
}

// InvalidatePage implements pomtlb.Shadow.
func (r *RefPOM) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, found bool) {
	r.h.Decision()
	set := r.sets[r.set(vpn, vm)]
	i := r.find(set, vm, pid, vpn)
	if (i >= 0) != found {
		r.h.Reportf("%s: shootdown (vm=%d pid=%d vpn=%#x) production found=%v, reference found=%v",
			r.name, vm, pid, vpn, found, i >= 0)
	}
	if i >= 0 {
		set[i] = refWay{}
	}
}

// InvalidateProcess implements pomtlb.Shadow.
func (r *RefPOM) InvalidateProcess(vm addr.VMID, pid addr.PID, n int) {
	r.sweep(func(w refWay) bool { return w.vm == vm && w.pid == pid }, n, "process flush")
}

// InvalidateVM implements pomtlb.Shadow.
func (r *RefPOM) InvalidateVM(vm addr.VMID, n int) {
	r.sweep(func(w refWay) bool { return w.vm == vm }, n, "VM flush")
}

func (r *RefPOM) sweep(drop func(refWay) bool, n int, what string) {
	r.h.Decision()
	removed := 0
	for _, set := range r.sets {
		for i := range set {
			if set[i].valid && drop(set[i]) {
				set[i] = refWay{}
				removed++
			}
		}
	}
	if removed != n {
		r.h.Reportf("%s: %s dropped %d production entries, %d reference entries", r.name, what, n, removed)
	}
}
