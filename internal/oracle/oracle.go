// Package oracle is the simulator's differential-testing subsystem: a set
// of small, obviously-correct reference models (map+LRU-list TLB,
// recency-stack cache, naive per-bank DRAM row tracker, way-mirroring
// 2-bit-LRU POM-TLB partition) that run in lockstep with the production
// models via the Shadow hooks each model package exposes, diffing every
// hit/miss, eviction, placement and latency decision.
//
// The reference models deliberately share no code with the production
// structures: indexes are recomputed with division/modulo instead of
// masks, recency is an explicit ordered stack instead of clock stamps,
// and the DRAM tracker keeps only open-row state. A bug in either side
// shows up as a divergence; agreement across millions of decisions is
// the evidence the paper's figures rest on (enable with `pomsim
// -selfcheck`).
package oracle

import (
	"fmt"
	"sync"
)

// maxStored bounds how many divergence messages a harness keeps; the
// count keeps rising past the cap, only the text is dropped.
const maxStored = 32

// Harness collects divergences from every reference model attached to
// one simulated system. It is safe for concurrent use (the experiments
// runner simulates different systems on different goroutines, each with
// its own harness, but the locking also makes a shared harness safe).
type Harness struct {
	mu        sync.Mutex
	decisions uint64
	diverged  int
	msgs      []string
}

// NewHarness creates an empty harness.
func NewHarness() *Harness { return &Harness{} }

// Decision records one production decision that was checked and agreed.
func (h *Harness) Decision() {
	h.mu.Lock()
	h.decisions++
	h.mu.Unlock()
}

// Reportf records one divergence between a production model and its
// reference. The first maxStored messages are retained verbatim.
func (h *Harness) Reportf(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.diverged++
	if len(h.msgs) < maxStored {
		h.msgs = append(h.msgs, fmt.Sprintf(format, args...))
	}
}

// Decisions returns how many checked decisions agreed or diverged.
func (h *Harness) Decisions() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.decisions
}

// Divergences returns how many decisions disagreed.
func (h *Harness) Divergences() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.diverged
}

// Messages returns the retained divergence descriptions.
func (h *Harness) Messages() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.msgs))
	copy(out, h.msgs)
	return out
}

// Err returns nil when every checked decision agreed, and otherwise an
// error summarising the divergence count and the first recorded message.
func (h *Harness) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.diverged == 0 {
		return nil
	}
	first := "(messages dropped)"
	if len(h.msgs) > 0 {
		first = h.msgs[0]
	}
	return fmt.Errorf("oracle: %d of %d checked decisions diverged; first: %s",
		h.diverged, h.decisions, first)
}
