package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/pomtlb"
	"repro/internal/tlb"
	"repro/internal/victima"
)

// randVA returns a page-aligned VA inside a small footprint so lookups
// collide, sets fill, and evictions fire.
func randVA(rng *rand.Rand, size addr.PageSize) addr.VA {
	const pages = 1 << 12
	return addr.VA(uint64(rng.Intn(pages)) << size.Shift())
}

func randSize(rng *rand.Rand) addr.PageSize {
	if rng.Intn(10) == 0 {
		return addr.Page2M
	}
	return addr.Page4K
}

func TestRefTLBAgreement(t *testing.T) {
	h := NewHarness()
	prod := tlb.MustNew(tlb.Config{Name: "test", Entries: 64, Ways: 4})
	NewRefTLB(h, prod)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200_000; i++ {
		vm := addr.VMID(rng.Intn(2))
		pid := addr.PID(rng.Intn(3))
		size := randSize(rng)
		va := randVA(rng, size)
		switch op := rng.Intn(100); {
		case op < 55:
			prod.Lookup(vm, pid, va)
		case op < 90:
			prod.Insert(tlb.Entry{
				VM: vm, PID: pid, VPN: va.VPN(size), PFN: uint64(rng.Int63n(1 << 30)),
				Size: size, Valid: true,
			})
		case op < 96:
			prod.InvalidatePage(vm, pid, va.VPN(size), size)
		case op < 98:
			prod.InvalidateProcess(vm, pid)
		case op < 99:
			prod.InvalidateVM(vm)
		default:
			prod.InvalidateAll()
		}
	}
	if err := h.Err(); err != nil {
		t.Fatalf("reference diverged from production TLB: %v", err)
	}
	if err := prod.CheckInvariants(); err != nil {
		t.Fatalf("production TLB invariants: %v", err)
	}
	if h.Decisions() == 0 {
		t.Fatal("no decisions checked")
	}
}

func TestRefCacheAgreement(t *testing.T) {
	for _, prio := range []cache.Priority{cache.NoPriority, cache.PreferTLB, cache.PreferData} {
		t.Run(prio.String(), func(t *testing.T) {
			h := NewHarness()
			prod := cache.MustNew(cache.Config{
				Name: "test", SizeBytes: 16 << 10, Ways: 4, Latency: 1, Priority: prio,
			})
			NewRefCache(h, prod)
			rng := rand.New(rand.NewSource(2))
			for i := 0; i < 200_000; i++ {
				line := uint64(rng.Intn(1 << 11))
				write := rng.Intn(3) == 0
				kind := cache.Data
				if rng.Intn(4) == 0 {
					kind = cache.TLBEntry
				}
				switch op := rng.Intn(100); {
				case op < 80:
					if !prod.Access(line, write, kind) {
						prod.Fill(line, write, kind)
					}
				case op < 95:
					prod.Invalidate(line)
				default:
					prod.InvalidateKind(kind)
				}
			}
			if err := h.Err(); err != nil {
				t.Fatalf("reference diverged from production cache: %v", err)
			}
			if err := prod.CheckInvariants(); err != nil {
				t.Fatalf("production cache invariants: %v", err)
			}
		})
	}
}

func TestRefDRAMAgreement(t *testing.T) {
	for _, cfg := range []dram.Config{dram.DieStacked(), dram.DDR4_2133()} {
		t.Run(cfg.Name, func(t *testing.T) {
			h := NewHarness()
			prod := dram.MustNew(cfg)
			NewRefDRAM(h, prod)
			rng := rand.New(rand.NewSource(3))
			now := uint64(0)
			for i := 0; i < 200_000; i++ {
				// Mix of streaming (row hits) and random (misses/conflicts),
				// advancing time far enough to cross refresh intervals.
				a := addr.HPA(uint64(rng.Intn(1<<20)) * addr.CacheLineSize)
				prod.Access(now, a, rng.Intn(4) == 0)
				now += uint64(rng.Intn(200))
			}
			if err := h.Err(); err != nil {
				t.Fatalf("reference diverged from production DRAM: %v", err)
			}
			if err := prod.CheckInvariants(); err != nil {
				t.Fatalf("production DRAM invariants: %v", err)
			}
			if prod.Stats().Refreshes == 0 {
				t.Fatal("test never crossed a refresh interval")
			}
		})
	}
}

func TestRefPOMAgreement(t *testing.T) {
	h := NewHarness()
	cfg := pomtlb.DefaultConfig()
	cfg.SizeBytes = 1 << 20 // small enough that sets fill and evict
	prod := pomtlb.New(cfg)
	NewRefPOM(h, prod.Small)
	NewRefPOM(h, prod.Large)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300_000; i++ {
		vm := addr.VMID(rng.Intn(2))
		pid := addr.PID(rng.Intn(3))
		size := randSize(rng)
		part := prod.Partition(size)
		va := addr.VA(uint64(rng.Intn(1<<17)) << size.Shift())
		switch op := rng.Intn(100); {
		case op < 50:
			part.Search(vm, pid, va)
		case op < 92:
			part.Insert(pomtlb.Entry{
				Valid: true, VM: vm, PID: pid, VPN: va.VPN(size),
				PFN: uint64(rng.Int63n(1 << 30)), Size: size,
			})
		case op < 97:
			part.InvalidatePage(vm, pid, va.VPN(size))
		case op < 99:
			part.InvalidateProcess(vm, pid)
		default:
			part.InvalidateVM(vm)
		}
	}
	if err := h.Err(); err != nil {
		t.Fatalf("reference diverged from production POM-TLB: %v", err)
	}
	if err := prod.CheckInvariants(); err != nil {
		t.Fatalf("production POM-TLB invariants: %v", err)
	}
}

func TestRefVictimaAgreement(t *testing.T) {
	h := NewHarness()
	prod := victima.MustNew(victima.Config{Name: "test", Sets: 64, DonatedWays: 2}, 1<<52)
	NewRefVictima(h, prod)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200_000; i++ {
		vm := addr.VMID(rng.Intn(2))
		pid := addr.PID(rng.Intn(3))
		size := randSize(rng)
		va := randVA(rng, size)
		switch op := rng.Intn(100); {
		case op < 50:
			prod.Lookup(vm, pid, va)
		case op < 88:
			prod.Insert(tlb.Entry{
				VM: vm, PID: pid, VPN: va.VPN(size), PFN: uint64(rng.Int63n(1 << 30)),
				Size: size, Valid: true,
			})
		case op < 94:
			prod.InvalidatePage(vm, pid, va.VPN(size), size)
		case op < 97:
			prod.InvalidateProcess(vm, pid)
		case op < 99:
			// The L2 evicted one of the store's lines out from under it.
			prod.DropLine(1<<52 + uint64(rng.Intn(64)))
		default:
			prod.InvalidateAll()
		}
	}
	if err := h.Err(); err != nil {
		t.Fatalf("reference diverged from production victima store: %v", err)
	}
	if err := prod.CheckInvariants(); err != nil {
		t.Fatalf("production victima invariants: %v", err)
	}
	if h.Decisions() == 0 {
		t.Fatal("no decisions checked")
	}
}

// The watchdog must itself be tested: attaching a reference to a model
// that already holds state the reference never saw must produce
// divergences, proving the oracle actually detects drift.

func TestRefTLBDetectsDrift(t *testing.T) {
	prod := tlb.MustNew(tlb.Config{Name: "test", Entries: 64, Ways: 4})
	e := tlb.Entry{VM: 1, PID: 2, VPN: 0x42, PFN: 0x99, Size: addr.Page4K, Valid: true}
	prod.Insert(e) // before the shadow attaches: invisible to the reference
	h := NewHarness()
	NewRefTLB(h, prod)
	prod.Lookup(1, 2, addr.VA(0x42<<12))
	if h.Divergences() == 0 {
		t.Fatal("oracle missed a production entry the reference never saw")
	}
}

func TestRefCacheDetectsDrift(t *testing.T) {
	prod := cache.MustNew(cache.Config{Name: "test", SizeBytes: 16 << 10, Ways: 4, Latency: 1})
	prod.Fill(0x42, false, cache.Data)
	h := NewHarness()
	NewRefCache(h, prod)
	prod.Access(0x42, false, cache.Data)
	if h.Divergences() == 0 {
		t.Fatal("oracle missed a production line the reference never saw")
	}
}

func TestRefDRAMDetectsDrift(t *testing.T) {
	prod := dram.MustNew(dram.DieStacked())
	prod.Access(0, 0x1000, false) // opens a row before the shadow attaches
	h := NewHarness()
	NewRefDRAM(h, prod)
	prod.Access(100, 0x1000, false) // production row hit, reference expects closed
	if h.Divergences() == 0 {
		t.Fatal("oracle missed an open row the reference never saw")
	}
}

func TestRefPOMDetectsDrift(t *testing.T) {
	prod := pomtlb.New(pomtlb.DefaultConfig())
	e := pomtlb.Entry{Valid: true, VM: 1, PID: 2, VPN: 0x42, PFN: 0x99, Size: addr.Page4K}
	prod.Small.Insert(e)
	h := NewHarness()
	NewRefPOM(h, prod.Small)
	prod.Small.Search(1, 2, addr.VA(0x42<<12))
	if h.Divergences() == 0 {
		t.Fatal("oracle missed a production entry the reference never saw")
	}
}

func TestRefVictimaDetectsDrift(t *testing.T) {
	prod := victima.MustNew(victima.Config{Name: "test", Sets: 64, DonatedWays: 2}, 1<<52)
	e := tlb.Entry{VM: 1, PID: 2, VPN: 0x42, PFN: 0x99, Size: addr.Page4K, Valid: true}
	prod.Insert(e) // before the shadow attaches: invisible to the reference
	h := NewHarness()
	NewRefVictima(h, prod)
	prod.Lookup(1, 2, addr.VA(0x42<<12))
	if h.Divergences() == 0 {
		t.Fatal("oracle missed a production entry the reference never saw")
	}
}

func TestHarnessErrSummarises(t *testing.T) {
	h := NewHarness()
	if err := h.Err(); err != nil {
		t.Fatalf("empty harness reports error: %v", err)
	}
	for i := 0; i < maxStored+10; i++ {
		h.Reportf("divergence %d", i)
	}
	if h.Divergences() != maxStored+10 {
		t.Fatalf("got %d divergences, want %d", h.Divergences(), maxStored+10)
	}
	if got := len(h.Messages()); got != maxStored {
		t.Fatalf("stored %d messages, want cap %d", got, maxStored)
	}
	if h.Err() == nil {
		t.Fatal("diverged harness reports nil error")
	}
}
