package oracle

import (
	"repro/internal/cache"
)

// refLine is one resident line in the reference cache.
type refLine struct {
	line  uint64
	dirty bool
	kind  cache.Kind
}

// RefCache is the recency-stack reference model for one cache level: each
// set is an explicit recency-ordered slice (least recent first), so the
// LRU victim is simply the front. The Section 5.1 priority policy is
// restated independently: when a preference exists and the set holds any
// non-preferred line, the victim is the least-recent non-preferred line.
// It implements cache.Shadow.
type RefCache struct {
	h       *Harness
	name    string
	ways    int
	numSets uint64
	pref    cache.Kind
	hasPref bool
	sets    [][]refLine
}

// NewRefCache builds the reference for c's geometry and attaches it.
func NewRefCache(h *Harness, c *cache.Cache) *RefCache {
	cfg := c.Config()
	r := &RefCache{
		h:       h,
		name:    cfg.Name,
		ways:    cfg.Ways,
		numSets: cfg.Sets(),
		sets:    make([][]refLine, cfg.Sets()),
	}
	switch cfg.Priority {
	case cache.PreferTLB:
		r.pref, r.hasPref = cache.TLBEntry, true
	case cache.PreferData:
		r.pref, r.hasPref = cache.Data, true
	}
	c.SetShadow(r)
	return r
}

func (r *RefCache) set(line uint64) uint64 { return line % r.numSets }

func (r *RefCache) find(si uint64, line uint64) int {
	for i, w := range r.sets[si] {
		if w.line == line {
			return i
		}
	}
	return -1
}

func (r *RefCache) touch(si uint64, i int) {
	set := r.sets[si]
	w := set[i]
	r.sets[si] = append(append(set[:i:i], set[i+1:]...), w)
}

// Access implements cache.Shadow.
func (r *RefCache) Access(line uint64, write bool, kind cache.Kind, hit bool) {
	r.h.Decision()
	si := r.set(line)
	i := r.find(si, line)
	if (i >= 0) != hit {
		r.h.Reportf("cache %s: access line %#x production hit=%v, reference hit=%v", r.name, line, hit, i >= 0)
		return
	}
	if i < 0 {
		return
	}
	if write {
		r.sets[si][i].dirty = true
	}
	r.touch(si, i)
}

// Fill implements cache.Shadow.
func (r *RefCache) Fill(line uint64, write bool, kind cache.Kind, ev cache.Eviction) {
	r.h.Decision()
	si := r.set(line)
	set := r.sets[si]
	if i := r.find(si, line); i >= 0 {
		// Refresh of an already-present line: kind is retained.
		if ev.Valid {
			r.h.Reportf("cache %s: refresh fill of %#x evicted %#x, reference expected no eviction",
				r.name, line, ev.Line)
		}
		if write {
			set[i].dirty = true
		}
		r.touch(si, i)
		return
	}
	if len(set) < r.ways {
		if ev.Valid {
			r.h.Reportf("cache %s: fill %#x evicted %#x with only %d/%d reference ways full",
				r.name, line, ev.Line, len(set), r.ways)
		}
		r.sets[si] = append(set, refLine{line: line, dirty: write, kind: kind})
		return
	}
	vi := 0
	if r.hasPref {
		for i, w := range set {
			if w.kind != r.pref {
				vi = i
				break
			}
		}
	}
	victim := set[vi]
	switch {
	case !ev.Valid:
		r.h.Reportf("cache %s: fill %#x into full set %d did not evict; reference expected victim %#x",
			r.name, line, si, victim.line)
	case ev.Line != victim.line || ev.Dirty != victim.dirty || ev.Kind != victim.kind:
		r.h.Reportf("cache %s: fill %#x evicted {line=%#x dirty=%v %s}, reference victim {line=%#x dirty=%v %s}",
			r.name, line, ev.Line, ev.Dirty, ev.Kind, victim.line, victim.dirty, victim.kind)
	}
	set = append(set[:vi:vi], set[vi+1:]...)
	r.sets[si] = append(set, refLine{line: line, dirty: write, kind: kind})
}

// Invalidate implements cache.Shadow.
func (r *RefCache) Invalidate(line uint64, present, dirty bool) {
	r.h.Decision()
	si := r.set(line)
	i := r.find(si, line)
	if (i >= 0) != present {
		r.h.Reportf("cache %s: invalidate %#x production present=%v, reference present=%v",
			r.name, line, present, i >= 0)
	}
	if i < 0 {
		return
	}
	if r.sets[si][i].dirty != dirty {
		r.h.Reportf("cache %s: invalidate %#x production dirty=%v, reference dirty=%v",
			r.name, line, dirty, r.sets[si][i].dirty)
	}
	set := r.sets[si]
	r.sets[si] = append(set[:i:i], set[i+1:]...)
}

// InvalidateKind implements cache.Shadow.
func (r *RefCache) InvalidateKind(kind cache.Kind, n int) {
	r.h.Decision()
	removed := 0
	for si, set := range r.sets {
		kept := set[:0:len(set)]
		for _, w := range set {
			if w.kind == kind {
				removed++
			} else {
				kept = append(kept, w)
			}
		}
		r.sets[si] = kept
	}
	if removed != n {
		r.h.Reportf("cache %s: kind flush of %s dropped %d production lines, %d reference lines",
			r.name, kind, n, removed)
	}
}
