package oracle

import (
	"repro/internal/addr"
	"repro/internal/tlb"
)

// tlbKey identifies one translation in the reference TLB.
type tlbKey struct {
	vm   addr.VMID
	pid  addr.PID
	vpn  uint64
	size addr.PageSize
}

// RefTLB is the map+LRU-list reference model for a set-associative SRAM
// TLB. Each set is an explicit recency-ordered slice (least recent
// first); the set index is recomputed with modulo arithmetic rather than
// the production mask. It implements tlb.Shadow.
type RefTLB struct {
	h       *Harness
	name    string
	ways    int
	numSets uint64
	sets    [][]tlb.Entry
}

// NewRefTLB builds the reference for a TLB with cfg's geometry and
// attaches it to t.
func NewRefTLB(h *Harness, t *tlb.TLB) *RefTLB {
	cfg := t.Config()
	r := &RefTLB{
		h:       h,
		name:    cfg.Name,
		ways:    cfg.Ways,
		numSets: uint64(cfg.Entries / cfg.Ways),
		sets:    make([][]tlb.Entry, cfg.Entries/cfg.Ways),
	}
	t.SetShadow(r)
	return r
}

func (r *RefTLB) set(vpn uint64) uint64 { return vpn % r.numSets }

// find returns the position of key in the set's recency list, or -1.
func (r *RefTLB) find(si uint64, k tlbKey) int {
	for i, e := range r.sets[si] {
		if e.VM == k.vm && e.PID == k.pid && e.VPN == k.vpn && e.Size == k.size {
			return i
		}
	}
	return -1
}

// touch moves position i to the most-recent end of the set.
func (r *RefTLB) touch(si uint64, i int) {
	set := r.sets[si]
	e := set[i]
	r.sets[si] = append(append(set[:i:i], set[i+1:]...), e)
}

// LookupSize implements tlb.Shadow.
func (r *RefTLB) LookupSize(vm addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize, hit bool, e tlb.Entry) {
	r.h.Decision()
	vpn := va.VPN(size)
	si := r.set(vpn)
	i := r.find(si, tlbKey{vm, pid, vpn, size})
	if (i >= 0) != hit {
		r.h.Reportf("tlb %s: lookup (vm=%d pid=%d vpn=%#x %s) production hit=%v, reference hit=%v",
			r.name, vm, pid, vpn, size, hit, i >= 0)
		return
	}
	if !hit {
		return
	}
	if got := r.sets[si][i]; got.PFN != e.PFN || !e.Valid {
		r.h.Reportf("tlb %s: lookup (vm=%d pid=%d vpn=%#x %s) returned PFN %#x, reference holds %#x",
			r.name, vm, pid, vpn, size, e.PFN, got.PFN)
	}
	r.touch(si, i)
}

// Insert implements tlb.Shadow.
func (r *RefTLB) Insert(e tlb.Entry, victim tlb.Entry, evicted bool) {
	r.h.Decision()
	si := r.set(e.VPN)
	set := r.sets[si]
	if i := r.find(si, tlbKey{e.VM, e.PID, e.VPN, e.Size}); i >= 0 {
		if evicted {
			r.h.Reportf("tlb %s: refresh of %v evicted %v, reference expected no eviction", r.name, e, victim)
		}
		set[i] = e
		r.touch(si, i)
		return
	}
	if len(set) < r.ways {
		if evicted {
			r.h.Reportf("tlb %s: insert %v evicted %v with only %d/%d reference ways full",
				r.name, e, victim, len(set), r.ways)
		}
		r.sets[si] = append(set, e)
		return
	}
	lru := set[0]
	if !evicted {
		r.h.Reportf("tlb %s: insert %v into full set %d did not evict; reference expected victim %v",
			r.name, e, si, lru)
	} else if victim != lru {
		r.h.Reportf("tlb %s: insert %v evicted %v, reference LRU is %v", r.name, e, victim, lru)
	}
	r.sets[si] = append(set[1:len(set):len(set)], e)
}

// InvalidatePage implements tlb.Shadow.
func (r *RefTLB) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize, found bool) {
	r.h.Decision()
	si := r.set(vpn)
	i := r.find(si, tlbKey{vm, pid, vpn, size})
	if (i >= 0) != found {
		r.h.Reportf("tlb %s: shootdown (vm=%d pid=%d vpn=%#x %s) production found=%v, reference found=%v",
			r.name, vm, pid, vpn, size, found, i >= 0)
	}
	if i >= 0 {
		set := r.sets[si]
		r.sets[si] = append(set[:i:i], set[i+1:]...)
	}
}

// InvalidateProcess implements tlb.Shadow.
func (r *RefTLB) InvalidateProcess(vm addr.VMID, pid addr.PID, n int) {
	r.sweep(func(e tlb.Entry) bool { return e.VM == vm && e.PID == pid }, n, "process flush")
}

// InvalidateVM implements tlb.Shadow.
func (r *RefTLB) InvalidateVM(vm addr.VMID, n int) {
	r.sweep(func(e tlb.Entry) bool { return e.VM == vm }, n, "VM flush")
}

// InvalidateAll implements tlb.Shadow.
func (r *RefTLB) InvalidateAll() {
	r.h.Decision()
	for i := range r.sets {
		r.sets[i] = nil
	}
}

// sweep removes every entry matching drop and diffs the removal count.
func (r *RefTLB) sweep(drop func(tlb.Entry) bool, n int, what string) {
	r.h.Decision()
	removed := 0
	for si, set := range r.sets {
		kept := set[:0:len(set)]
		for _, e := range set {
			if drop(e) {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		r.sets[si] = kept
	}
	if removed != n {
		r.h.Reportf("tlb %s: %s dropped %d production entries, %d reference entries", r.name, what, n, removed)
	}
}
