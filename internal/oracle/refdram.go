package oracle

import (
	"repro/internal/addr"
	"repro/internal/dram"
)

// RefDRAM is the naive per-bank open-row tracker: it keeps nothing but
// which row each bank last opened, recomputes the (bank, row)
// decomposition with division/modulo, and rederives each access's
// row-buffer classification and minimum possible latency from the
// configured timings. Timing waits (busy banks, bus contention, refresh
// stalls) are production-only state, so latency is checked as a lower
// bound rather than diffed exactly. It implements dram.Shadow.
type RefDRAM struct {
	h        *Harness
	name     string
	rowLines uint64 // lines per row, rounded up to a power of two
	banks    uint64
	open     []int64 // open row per bank, -1 when closed
	seen     uint64  // refresh count at the last access

	// Minimum CPU-cycle cost per classification, plus burst + controller
	// overhead — recomputed from the raw timing parameters.
	hitLat, missLat, conflLat uint64
}

// NewRefDRAM builds the reference for ch's configuration and attaches it.
func NewRefDRAM(h *Harness, ch *dram.Channel) *RefDRAM {
	cfg := ch.Config()
	rowLines := uint64(1)
	for rowLines < cfg.RowBytes/addr.CacheLineSize {
		rowLines *= 2
	}
	// CPU cycles for n DRAM bus cycles, rounding up.
	cpu := func(n uint64) uint64 { return (n*cfg.CPUMHz + cfg.BusMHz - 1) / cfg.BusMHz }
	// One 64 B line over a DDR bus moving 2×BusBytes per bus cycle.
	burst := cpu((uint64(addr.CacheLineSize) + 2*cfg.BusBytes - 1) / (2 * cfg.BusBytes))
	r := &RefDRAM{
		h:        h,
		name:     cfg.Name,
		rowLines: rowLines,
		banks:    uint64(cfg.Banks),
		open:     make([]int64, cfg.Banks),
		hitLat:   cpu(cfg.TCAS) + burst + cfg.CtrlOverhead,
		missLat:  cpu(cfg.TRCD+cfg.TCAS) + burst + cfg.CtrlOverhead,
		conflLat: cpu(cfg.TRP+cfg.TRCD+cfg.TCAS) + burst + cfg.CtrlOverhead,
	}
	for i := range r.open {
		r.open[i] = -1
	}
	ch.SetShadow(r)
	return r
}

// Access implements dram.Shadow.
func (r *RefDRAM) Access(a addr.HPA, write bool, refreshes uint64, res dram.Result) {
	r.h.Decision()
	if refreshes != r.seen {
		// A refresh window closed every row.
		for i := range r.open {
			r.open[i] = -1
		}
		r.seen = refreshes
	}
	line := uint64(a) / addr.CacheLineSize
	upper := line / r.rowLines
	bank := upper % r.banks
	row := upper / r.banks
	if int(bank) != res.Bank || row != res.Row {
		r.h.Reportf("dram %s: address %#x decomposed to bank %d row %#x, reference bank %d row %#x",
			r.name, uint64(a), res.Bank, res.Row, bank, row)
		return
	}
	var hit bool
	var floor uint64
	switch {
	case r.open[bank] == int64(row):
		hit, floor = true, r.hitLat
	case r.open[bank] < 0:
		hit, floor = false, r.missLat
	default:
		hit, floor = false, r.conflLat
	}
	if hit != res.RowBufferHit {
		r.h.Reportf("dram %s: access %#x (bank %d row %#x) production rowhit=%v, reference rowhit=%v",
			r.name, uint64(a), bank, row, res.RowBufferHit, hit)
	}
	if res.Latency < floor {
		r.h.Reportf("dram %s: access %#x latency %d below the %d-cycle floor for its classification",
			r.name, uint64(a), res.Latency, floor)
	}
	r.open[bank] = int64(row)
}
