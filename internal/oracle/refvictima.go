package oracle

import (
	"repro/internal/addr"
	"repro/internal/tlb"
	"repro/internal/victima"
)

// RefVictima is the reference model for the cache-resident Victima TLB
// store: per-set recency-ordered slices (least recent first) with the
// PTE-aware victim policy recomputed independently — the expected victim
// of a full set is its least-recent 4 KB entry while one exists, and the
// overall LRU entry only in an all-2 MB set. It implements victima.Shadow.
type RefVictima struct {
	h       *Harness
	name    string
	ways    int
	numSets uint64
	sets    [][]tlb.Entry
}

// NewRefVictima builds the reference for a store's geometry and attaches
// it.
func NewRefVictima(h *Harness, s *victima.Store) *RefVictima {
	cfg := s.Config()
	r := &RefVictima{
		h:       h,
		name:    cfg.Name,
		ways:    cfg.DonatedWays,
		numSets: s.Sets(),
		sets:    make([][]tlb.Entry, s.Sets()),
	}
	s.SetShadow(r)
	return r
}

func (r *RefVictima) set(vpn uint64) uint64 { return vpn % r.numSets }

// find returns the position of the entry in the set's recency list, or -1.
func (r *RefVictima) find(si uint64, vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) int {
	for i, e := range r.sets[si] {
		if e.VM == vm && e.PID == pid && e.VPN == vpn && e.Size == size {
			return i
		}
	}
	return -1
}

// touch moves position i to the most-recent end of the set.
func (r *RefVictima) touch(si uint64, i int) {
	set := r.sets[si]
	e := set[i]
	r.sets[si] = append(append(set[:i:i], set[i+1:]...), e)
}

// Lookup implements victima.Shadow: one full dual-size probe.
func (r *RefVictima) Lookup(vm addr.VMID, pid addr.PID, va addr.VA, hit bool, e tlb.Entry, si uint64) {
	r.h.Decision()
	// Reference probe order matches the production one: 4 KB, then 2 MB.
	refSI := r.set(va.VPN(addr.Page4K))
	i := r.find(refSI, vm, pid, va.VPN(addr.Page4K), addr.Page4K)
	if i < 0 {
		refSI = r.set(va.VPN(addr.Page2M))
		i = r.find(refSI, vm, pid, va.VPN(addr.Page2M), addr.Page2M)
	}
	if (i >= 0) != hit {
		r.h.Reportf("victima %s: lookup (vm=%d pid=%d va=%v) production hit=%v, reference hit=%v",
			r.name, vm, pid, va, hit, i >= 0)
		return
	}
	if !hit {
		return
	}
	if got := r.sets[refSI][i]; got.PFN != e.PFN || !e.Valid {
		r.h.Reportf("victima %s: lookup (vm=%d pid=%d va=%v) returned PFN %#x, reference holds %#x",
			r.name, vm, pid, va, e.PFN, got.PFN)
	}
	if refSI != si {
		r.h.Reportf("victima %s: lookup (vm=%d pid=%d va=%v) hit block %d, reference block %d",
			r.name, vm, pid, va, si, refSI)
	}
	r.touch(refSI, i)
}

// Insert implements victima.Shadow.
func (r *RefVictima) Insert(e tlb.Entry, si uint64, victim tlb.Entry, evicted bool) {
	r.h.Decision()
	refSI := r.set(e.VPN)
	if refSI != si {
		r.h.Reportf("victima %s: insert %v placed in block %d, reference block %d", r.name, e, si, refSI)
		return
	}
	set := r.sets[refSI]
	if i := r.find(refSI, e.VM, e.PID, e.VPN, e.Size); i >= 0 {
		if evicted {
			r.h.Reportf("victima %s: refresh of %v evicted %v, reference expected no eviction", r.name, e, victim)
		}
		set[i] = e
		r.touch(refSI, i)
		return
	}
	if len(set) < r.ways {
		if evicted {
			r.h.Reportf("victima %s: insert %v evicted %v with only %d/%d reference ways full",
				r.name, e, victim, len(set), r.ways)
		}
		r.sets[refSI] = append(set, e)
		return
	}
	// PTE-aware victim: the least-recent 4 KB entry when one exists,
	// otherwise the overall LRU (position 0 of the recency list).
	vi := 0
	for i, ee := range set {
		if ee.Size == addr.Page4K {
			vi = i
			break
		}
	}
	want := set[vi]
	if !evicted {
		r.h.Reportf("victima %s: insert %v into full block %d did not evict; reference expected victim %v",
			r.name, e, si, want)
	} else if victim != want {
		r.h.Reportf("victima %s: insert %v evicted %v, reference victim is %v", r.name, e, victim, want)
	}
	r.sets[refSI] = append(append(set[:vi:vi], set[vi+1:]...), e)
}

// InvalidatePage implements victima.Shadow.
func (r *RefVictima) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize, found bool) {
	r.h.Decision()
	si := r.set(vpn)
	i := r.find(si, vm, pid, vpn, size)
	if (i >= 0) != found {
		r.h.Reportf("victima %s: shootdown (vm=%d pid=%d vpn=%#x %s) production found=%v, reference found=%v",
			r.name, vm, pid, vpn, size, found, i >= 0)
	}
	if i >= 0 {
		set := r.sets[si]
		r.sets[si] = append(set[:i:i], set[i+1:]...)
	}
}

// InvalidateProcess implements victima.Shadow.
func (r *RefVictima) InvalidateProcess(vm addr.VMID, pid addr.PID, n int) {
	r.h.Decision()
	removed := 0
	for si, set := range r.sets {
		kept := set[:0:len(set)]
		for _, e := range set {
			if e.VM == vm && e.PID == pid {
				removed++
			} else {
				kept = append(kept, e)
			}
		}
		r.sets[si] = kept
	}
	if removed != n {
		r.h.Reportf("victima %s: process flush dropped %d production entries, %d reference entries",
			r.name, n, removed)
	}
}

// DropLine implements victima.Shadow: the L2 data cache evicted block si.
func (r *RefVictima) DropLine(si uint64, n int) {
	r.h.Decision()
	if si >= r.numSets {
		r.h.Reportf("victima %s: cache eviction flushed block %d of %d", r.name, si, r.numSets)
		return
	}
	if got := len(r.sets[si]); got != n {
		r.h.Reportf("victima %s: cache eviction of block %d dropped %d production entries, %d reference entries",
			r.name, si, n, got)
	}
	r.sets[si] = nil
}

// InvalidateAll implements victima.Shadow.
func (r *RefVictima) InvalidateAll() {
	r.h.Decision()
	for i := range r.sets {
		r.sets[i] = nil
	}
}
