// Package victima models the Victima translation scheme (Kanellopoulos
// et al., arXiv 2310.04158): on an L2 TLB miss, translations are looked
// up in TLB blocks stored in the L2 *data* cache's ways instead of a
// dedicated SRAM or DRAM structure. The Store is the logical directory of
// those cache-resident TLB blocks: one set per potential block, holding
// the translation entries the block carries. The timing half lives in
// core — the store's blocks occupy real lines of the simulated L2 data
// cache (kind TLBEntry), so TLB blocks genuinely compete with data for
// capacity, and a block evicted under data pressure takes its
// translations with it (DropLine).
//
// Replacement within a block is PTE-aware, after the paper's observation
// that retaining high-coverage entries matters more than raw recency:
// a victim is chosen among 4 KB entries (LRU within them) while any
// exist, and only an all-2 MB set falls back to plain LRU.
package victima

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/stats"
	"repro/internal/tlb"
)

// Config describes one per-core store.
type Config struct {
	// Name labels the store in error messages.
	Name string
	// Sets is the number of cache-resident TLB blocks the store may own,
	// each occupying one L2 data-cache line. 0 derives it from the L2
	// data-cache geometry (one potential block per L2 set).
	Sets uint64
	// DonatedWays is the number of translation entries each block holds —
	// the per-set way budget donated to translations. 0 disables the
	// store entirely: the scheme degenerates to the exact baseline.
	DonatedWays int
}

// DefaultConfig returns the default donation: blocks derived from the L2
// data-cache geometry, two entries per block.
func DefaultConfig() Config {
	return Config{Name: "Victima", DonatedWays: 2}
}

// Validate reports configuration errors. DonatedWays == 0 is legal (the
// degenerate baseline); a positive donation needs a power-of-two set
// count (or 0, derived later).
func (c Config) Validate() error {
	switch {
	case c.DonatedWays < 0:
		return fmt.Errorf("victima %q: negative donated ways", c.Name)
	case c.DonatedWays > 8:
		return fmt.Errorf("victima %q: %d donated ways exceed a 64B block's 8 PTE slots", c.Name, c.DonatedWays)
	case c.Sets != 0 && c.Sets&(c.Sets-1) != 0:
		return fmt.Errorf("victima %q: %d sets is not a power of two", c.Name, c.Sets)
	}
	return nil
}

// Shadow observes every decision the store makes, in program order, for
// the differential oracle. A nil shadow costs one branch per operation.
type Shadow interface {
	// Lookup reports one full (both page sizes) probe: the production
	// outcome and, on a hit, the entry and its set index.
	Lookup(vm addr.VMID, pid addr.PID, va addr.VA, hit bool, e tlb.Entry, si uint64)
	// Insert reports one insertion: the chosen set and the production
	// victim decision.
	Insert(e tlb.Entry, si uint64, victim tlb.Entry, evicted bool)
	// InvalidatePage reports a single-page shootdown and whether the page
	// was present.
	InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize, found bool)
	// InvalidateProcess reports a process flush and how many entries the
	// production model dropped.
	InvalidateProcess(vm addr.VMID, pid addr.PID, n int)
	// DropLine reports a cache-eviction flush of one block and how many
	// entries it carried.
	DropLine(si uint64, n int)
	// InvalidateAll reports a full flush.
	InvalidateAll()
}

// hook wraps an attached Shadow behind a concrete pointer so the nil
// check devirtualizes (same pattern as tlb and cache).
type hook struct{ s Shadow }

// slot is one entry position of a block.
type slot struct {
	entry tlb.Entry
	lru   uint64
}

// Store is the logical directory of one core's cache-resident TLB
// blocks. Entries of both page sizes share the sets; the set index is the
// VPN at the entry's size modulo the set count, so 4 KB and 2 MB probes
// of the same address generally land in different sets.
type Store struct {
	cfg     Config
	slots   []slot // set i occupies slots[i*ways : (i+1)*ways]
	ways    int
	setMask uint64
	tick    uint64
	// base is the synthetic line-address base: block i lives at cache
	// line base+i of the owning core's L2 data cache.
	base   uint64
	count  int
	stats  stats.HitMiss
	shadow *hook
}

// New builds a store. lineBase is the synthetic cache-line address of
// block 0; callers must keep different cores' ranges disjoint and out of
// the simulated physical address space.
func New(cfg Config, lineBase uint64) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DonatedWays > 0 && cfg.Sets == 0 {
		return nil, fmt.Errorf("victima %q: sets not resolved", cfg.Name)
	}
	return &Store{
		cfg:     cfg,
		slots:   make([]slot, cfg.Sets*uint64(cfg.DonatedWays)),
		ways:    cfg.DonatedWays,
		setMask: cfg.Sets - 1,
		base:    lineBase,
	}, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config, lineBase uint64) *Store {
	s, err := New(cfg, lineBase)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// Sets returns the block count.
func (s *Store) Sets() uint64 { return s.setMask + 1 }

// SetShadow attaches (or, with nil, detaches) a Shadow.
func (s *Store) SetShadow(sh Shadow) {
	if sh == nil {
		s.shadow = nil
		return
	}
	s.shadow = &hook{s: sh}
}

// Line returns the synthetic cache-line address of block si.
func (s *Store) Line(si uint64) uint64 { return s.base + si }

// SetOf inverts Line: the block index owning a cache-line address, if the
// line is one of this store's blocks.
func (s *Store) SetOf(line uint64) (uint64, bool) {
	if line < s.base || line > s.base+s.setMask {
		return 0, false
	}
	return line - s.base, true
}

func (s *Store) setIndex(vpn uint64) uint64 { return vpn & s.setMask }

func (s *Store) setFor(si uint64) []slot {
	return s.slots[si*uint64(s.ways) : (si+1)*uint64(s.ways)]
}

// lookupSize probes one page size without stats or shadow reporting.
func (s *Store) lookupSize(vm addr.VMID, pid addr.PID, va addr.VA, size addr.PageSize) (tlb.Entry, uint64, bool) {
	vpn := va.VPN(size)
	si := s.setIndex(vpn)
	set := s.setFor(si)
	for i := range set {
		e := set[i].entry
		if e.Valid && e.VM == vm && e.PID == pid && e.VPN == vpn && e.Size == size {
			s.tick++
			set[i].lru = s.tick
			return e, si, true
		}
	}
	return tlb.Entry{}, 0, false
}

// Lookup probes both page sizes (4 KB, then 2 MB) for va.
func (s *Store) Lookup(vm addr.VMID, pid addr.PID, va addr.VA) (tlb.Entry, uint64, bool) {
	e, si, ok := s.lookupSize(vm, pid, va, addr.Page4K)
	if !ok {
		e, si, ok = s.lookupSize(vm, pid, va, addr.Page2M)
	}
	s.stats.Record(ok)
	if s.shadow != nil {
		s.shadow.s.Lookup(vm, pid, va, ok, e, si)
	}
	return e, si, ok
}

// LookupOnly reports presence without perturbing recency, statistics or
// the shadow (the conformance probe).
func (s *Store) LookupOnly(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	set := s.setFor(s.setIndex(vpn))
	for i := range set {
		e := set[i].entry
		if e.Valid && e.VM == vm && e.PID == pid && e.VPN == vpn && e.Size == size {
			return true
		}
	}
	return false
}

// Insert installs a translation, returning the block index it landed in
// and the PTE-aware replacement decision. Inserting an entry that is
// already present refreshes it in place.
func (s *Store) Insert(e tlb.Entry) (si uint64, victim tlb.Entry, evicted bool) {
	si = s.setIndex(e.VPN)
	set := s.setFor(si)
	s.tick++
	// Refresh in place.
	for i := range set {
		ee := set[i].entry
		if ee.Valid && ee.VM == e.VM && ee.PID == e.PID && ee.VPN == e.VPN && ee.Size == e.Size {
			set[i].entry = e
			set[i].lru = s.tick
			if s.shadow != nil {
				s.shadow.s.Insert(e, si, tlb.Entry{}, false)
			}
			return si, tlb.Entry{}, false
		}
	}
	v := s.victimIndex(set)
	if set[v].entry.Valid {
		victim, evicted = set[v].entry, true
	} else {
		s.count++
	}
	set[v].entry = e
	set[v].lru = s.tick
	if s.shadow != nil {
		s.shadow.s.Insert(e, si, victim, evicted)
	}
	return si, victim, evicted
}

// victimIndex chooses the slot to replace: an invalid slot, else the LRU
// 4 KB entry (small pages cover 512× less address space, so they are the
// cheap evictions), else the LRU slot overall.
func (s *Store) victimIndex(set []slot) int {
	small, any := -1, 0
	for i := range set {
		if !set[i].entry.Valid {
			return i
		}
		if set[i].lru < set[any].lru {
			any = i
		}
		if set[i].entry.Size == addr.Page4K && (small < 0 || set[i].lru < set[small].lru) {
			small = i
		}
	}
	if small >= 0 {
		return small
	}
	return any
}

// InvalidatePage drops one page's translation, reporting whether it was
// present.
func (s *Store) InvalidatePage(vm addr.VMID, pid addr.PID, vpn uint64, size addr.PageSize) bool {
	set := s.setFor(s.setIndex(vpn))
	found := false
	for i := range set {
		e := set[i].entry
		if e.Valid && e.VM == vm && e.PID == pid && e.VPN == vpn && e.Size == size {
			set[i] = slot{}
			s.count--
			found = true
		}
	}
	if s.shadow != nil {
		s.shadow.s.InvalidatePage(vm, pid, vpn, size, found)
	}
	return found
}

// InvalidateProcess drops every entry of (vm, pid), returning the count.
func (s *Store) InvalidateProcess(vm addr.VMID, pid addr.PID) int {
	n := 0
	for i := range s.slots {
		e := s.slots[i].entry
		if e.Valid && e.VM == vm && e.PID == pid {
			s.slots[i] = slot{}
			n++
		}
	}
	s.count -= n
	if s.shadow != nil {
		s.shadow.s.InvalidateProcess(vm, pid, n)
	}
	return n
}

// DropLine invalidates the whole block backing a cache line — the
// coherence action when the L2 data cache evicts the block. Lines outside
// the store's range are ignored (defensively; core never passes one).
func (s *Store) DropLine(line uint64) int {
	si, ok := s.SetOf(line)
	if !ok {
		return 0
	}
	set := s.setFor(si)
	n := 0
	for i := range set {
		if set[i].entry.Valid {
			set[i] = slot{}
			n++
		}
	}
	s.count -= n
	if s.shadow != nil {
		s.shadow.s.DropLine(si, n)
	}
	return n
}

// InvalidateAll empties the store.
func (s *Store) InvalidateAll() {
	for i := range s.slots {
		s.slots[i] = slot{}
	}
	s.count = 0
	if s.shadow != nil {
		s.shadow.s.InvalidateAll()
	}
}

// Count returns the number of valid entries.
func (s *Store) Count() int { return s.count }

// Occupied reports whether block si holds at least one entry — the
// residency cross-check needs to know which blocks must be cache-resident.
func (s *Store) Occupied(si uint64) bool {
	for _, sl := range s.setFor(si) {
		if sl.entry.Valid {
			return true
		}
	}
	return false
}

// OccupiedSets returns how many blocks currently hold at least one entry
// — the store's L2 data-cache footprint in lines.
func (s *Store) OccupiedSets() int {
	n := 0
	for si := uint64(0); si <= s.setMask; si++ {
		set := s.setFor(si)
		for i := range set {
			if set[i].entry.Valid {
				n++
				break
			}
		}
	}
	return n
}

// CheckInvariants validates internal consistency: the count matches the
// valid slots, every entry sits in the set its VPN selects, and no set
// holds duplicate (vm, pid, vpn, size) entries.
func (s *Store) CheckInvariants() error {
	valid := 0
	for si := uint64(0); si <= s.setMask; si++ {
		set := s.setFor(si)
		for i := range set {
			e := set[i].entry
			if !e.Valid {
				continue
			}
			valid++
			if s.setIndex(e.VPN) != si {
				return fmt.Errorf("victima %q: entry vpn %#x in set %d, belongs in %d",
					s.cfg.Name, e.VPN, si, s.setIndex(e.VPN))
			}
			for j := i + 1; j < len(set); j++ {
				o := set[j].entry
				if o.Valid && o.VM == e.VM && o.PID == e.PID && o.VPN == e.VPN && o.Size == e.Size {
					return fmt.Errorf("victima %q: duplicate entry vpn %#x size %v in set %d",
						s.cfg.Name, e.VPN, e.Size, si)
				}
			}
		}
	}
	if valid != s.count {
		return fmt.Errorf("victima %q: count %d but %d valid entries", s.cfg.Name, s.count, valid)
	}
	return nil
}

// Stats returns the lookup hit/miss counters.
func (s *Store) Stats() stats.HitMiss { return s.stats }

// ResetStats clears the counters (contents and recency stay warm).
func (s *Store) ResetStats() { s.stats = stats.HitMiss{} }
